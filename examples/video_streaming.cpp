// Scenario: a video-on-demand pod — the kind of server I/O workload the
// paper's introduction motivates. A rack of 8 switches connects 32 hosts;
// four of them act as video servers streaming VBR video (bursty, but with a
// reserved mean rate and a latency bound) to clients, while every host also
// exchanges best-effort background traffic (web/mail) served from the
// low-priority table.
//
// The example shows the full lifecycle: admission of the streams, steady
// state with guarantees held despite the bursts, then stream teardown —
// releasing entries triggers the defragmentation algorithm, and a new,
// stricter stream that would not have fitted in the fragmented table is
// admitted afterwards.
#include <cstdio>
#include <vector>

#include "network/topology.hpp"
#include "qos/admission.hpp"
#include "subnet/subnet_manager.hpp"
#include "traffic/besteffort.hpp"
#include "traffic/vbr.hpp"
#include "util/rng.hpp"

using namespace ibarb;

int main() {
  network::IrregularSpec spec;
  spec.switches = 8;
  spec.seed = 2024;
  const auto fabric = network::gen::irregular(spec);
  subnet::SubnetManager sm(fabric);
  std::printf("%s\n", sm.describe().c_str());

  qos::AdmissionControl admission(fabric, sm.routes(), qos::paper_catalogue(),
                                  {});
  sim::Simulator simulator(fabric, sm.routes(), {});
  util::Xoshiro256 rng(7);

  const auto hosts = fabric.hosts();
  const std::vector<iba::NodeId> servers(hosts.begin(), hosts.begin() + 4);

  // --- Admit 24 video streams: SL5 (distance 32, 16-32 Mbps). -------------
  struct Stream {
    qos::ConnectionId conn;
    std::uint32_t flow;
  };
  std::vector<Stream> streams;
  for (int i = 0; i < 24; ++i) {
    const auto server = servers[i % servers.size()];
    auto client = hosts[rng.below(hosts.size())];
    while (client == server) client = hosts[rng.below(hosts.size())];
    qos::ConnectionRequest req;
    req.src_host = server;
    req.dst_host = client;
    req.sl = 5;
    req.max_distance = 32;
    req.wire_mbps = rng.uniform(16.0, 24.0);
    const auto id = admission.request(req);
    if (!id) continue;
    const auto& conn = admission.connection(*id);
    // VBR: 4 Mbps..24 Mbps mean, bursting at 4x the mean rate.
    const auto flow = simulator.add_flow(traffic::make_vbr_flow(
        server, client, req.sl, /*payload=*/1024, req.wire_mbps,
        conn.deadline, rng.next(), /*on_fraction=*/0.25,
        /*burst_mean_packets=*/24.0));
    streams.push_back(Stream{*id, flow});
  }
  std::printf("admitted %zu video streams\n", streams.size());

  // --- Background best-effort traffic on the low-priority table. ----------
  for (const auto h : hosts) {
    auto dst = hosts[rng.below(hosts.size())];
    while (dst == h) dst = hosts[rng.below(hosts.size())];
    simulator.add_flow(traffic::make_besteffort_flow(
        h, dst, /*sl=*/11, /*payload=*/1024, /*wire_mbps=*/120.0, rng.next()));
  }

  sm.configure_fabric(simulator, admission);
  simulator.run_paper_phases(/*warmup=*/500000, /*min_rx=*/100,
                             /*hard_limit=*/1u << 31);

  std::uint64_t rx = 0, misses = 0;
  double worst_us = 0.0;
  for (const auto& s : streams) {
    const auto& c = simulator.metrics().connections[s.flow];
    rx += c.rx_packets;
    misses += c.deadline_misses;
    worst_us =
        std::max(worst_us, c.delay.max() * iba::kNsPerCycle / 1000.0);
  }
  std::uint64_t be_rx = 0;
  for (const auto& c : simulator.metrics().connections)
    if (!c.qos) be_rx += c.rx_packets;
  std::printf("steady state: %llu video packets delivered, %llu deadline "
              "misses, worst latency %.1f us\n",
              static_cast<unsigned long long>(rx),
              static_cast<unsigned long long>(misses), worst_us);
  std::printf("best-effort packets delivered alongside: %llu\n",
              static_cast<unsigned long long>(be_rx));

  // --- Teardown half the streams; defragmentation makes room. -------------
  const auto probe_port = fabric.host_uplink(hosts[0]);
  const auto& manager =
      admission.port_manager(probe_port.node, probe_port.port);
  const auto moves_before = manager.stats().defrag_moves;
  for (std::size_t i = 0; i < streams.size(); i += 2)
    admission.release(streams[i].conn);
  std::printf("released %zu streams; defragmenter relocated %llu sequences "
              "on host0's uplink alone\n",
              (streams.size() + 1) / 2,
              static_cast<unsigned long long>(manager.stats().defrag_moves -
                                              moves_before));

  // A tight distance-2 connection now fits where the fragmented table might
  // have refused it.
  qos::ConnectionRequest tight;
  tight.src_host = hosts[0];
  tight.dst_host = hosts[hosts.size() - 1];
  tight.sl = 0;
  tight.max_distance = 2;
  tight.wire_mbps = 2.0;
  const auto strict = admission.request(tight);
  std::printf("strict distance-2 connection after teardown: %s\n",
              strict ? "admitted" : "rejected");
  return misses == 0 && strict ? 0 : 1;
}
