// Scenario: the problem the paper sets out to fix (§3.1), on a fabric small
// enough to read the numbers directly.
//
// Three hosts hang off one switch. Host A holds a DBTS connection (SL2,
// tight deadline) to host C; host B holds a DB connection (SL7, bandwidth
// only) to the same host C. Then host A's application goes rogue and sends
// FIVE times what it reserved.
//
//  * Legacy configuration (DB weight in the low-priority table): the rogue
//    high-priority class starves B's DB traffic at the shared output port.
//  * The paper's configuration (both classes in the high-priority table,
//    one VL each): B keeps its full reservation; only A's own VL suffers
//    the backlog A created.
#include <cstdio>

#include "network/topology.hpp"
#include "qos/admission.hpp"
#include "subnet/subnet_manager.hpp"
#include "traffic/cbr.hpp"

using namespace ibarb;

namespace {

struct Result {
  double db_delivered_mbps = 0.0;
  std::uint64_t db_rx = 0;
};

Result run_scheme(qos::Scheme scheme, double oversend) {
  const auto fabric = network::gen::single_switch(3);
  subnet::SubnetManager sm(fabric);

  qos::AdmissionControl::Config cfg;
  cfg.scheme = scheme;
  qos::AdmissionControl admission(fabric, sm.routes(), qos::paper_catalogue(),
                                  cfg);
  const auto hosts = fabric.hosts();

  qos::ConnectionRequest dbts;
  dbts.src_host = hosts[0];
  dbts.dst_host = hosts[2];
  dbts.sl = 2;
  dbts.max_distance = 8;
  dbts.wire_mbps = 400.0;  // a fat time-sensitive reservation
  const auto a = admission.request(dbts);

  qos::ConnectionRequest db;
  db.src_host = hosts[1];
  db.dst_host = hosts[2];
  db.sl = 7;
  db.max_distance = 64;
  db.wire_mbps = 200.0;
  const auto b = admission.request(db);
  if (!a || !b) {
    std::printf("admission failed unexpectedly\n");
    return {};
  }

  sim::Simulator simulator(fabric, sm.routes(), {});
  sm.configure_fabric(simulator, admission);

  simulator.add_flow(traffic::make_cbr_flow(
      hosts[0], hosts[2], 2, 2048, dbts.wire_mbps,
      admission.connection(*a).deadline, 1, /*oversend=*/oversend));
  const auto db_flow = simulator.add_flow(traffic::make_cbr_flow(
      hosts[1], hosts[2], 7, 2048, db.wire_mbps,
      admission.connection(*b).deadline, 2));

  simulator.metrics().start_window(0);
  simulator.run_until(30'000'000);  // 120 ms
  simulator.metrics().stop_window(simulator.now());

  const auto& c = simulator.metrics().connections[db_flow];
  Result r;
  r.db_rx = c.rx_packets;
  r.db_delivered_mbps = static_cast<double>(c.rx_wire_bytes) * 8.0 * 1000.0 /
                        (static_cast<double>(simulator.metrics().window_length()) *
                         iba::kNsPerCycle);
  return r;
}

}  // namespace

int main() {
  std::printf("DB connection reserves 200 Mbps; DBTS neighbour reserves 400 "
              "Mbps but sends 5x (2000 Mbps) into the same output port.\n\n");
  const struct {
    const char* name;
    qos::Scheme scheme;
  } schemes[] = {{"legacy (DB in low-priority table)", qos::Scheme::kLegacy},
                 {"paper  (DB in high-priority table)",
                  qos::Scheme::kNewProposal}};
  double results[2] = {};
  for (int i = 0; i < 2; ++i) {
    const auto honest = run_scheme(schemes[i].scheme, 1.0);
    const auto rogue = run_scheme(schemes[i].scheme, 5.0);
    results[i] = rogue.db_delivered_mbps;
    std::printf("%s\n  DB delivered, compliant neighbour: %7.1f Mbps\n"
                "  DB delivered, rogue neighbour:     %7.1f Mbps\n\n",
                schemes[i].name, honest.db_delivered_mbps,
                rogue.db_delivered_mbps);
  }
  std::printf("With the paper's configuration the DB class keeps its "
              "reservation under attack;\nthe legacy configuration lets the "
              "rogue class starve it.\n");
  // Sanity for CI-style use: paper scheme must keep >= 90% of the
  // reservation, legacy must have lost a large share of it.
  const bool ok = results[1] > 180.0 && results[0] < results[1] * 0.7;
  return ok ? 0 : 1;
}
