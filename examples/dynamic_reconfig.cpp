// Scenario: a day in the life of the management plane — connections arrive
// and leave while traffic flows, the arbitration tables are reprogrammed in
// place (the arbiters keep their round-robin position), the defragmenter
// re-coalesces entries behind departures, and the packet trace records one
// packet's journey through the reconfigured fabric.
#include <cstdio>
#include <sstream>

#include "network/topology.hpp"
#include "qos/dynamic.hpp"
#include "subnet/subnet_manager.hpp"

using namespace ibarb;

int main() {
  // A 2-level fat tree: 2 spines, 4 leaves, 4 hosts per leaf.
  const auto fabric = network::gen::fat_tree2(2, 4, 4);
  subnet::SubnetManager sm(fabric);
  std::printf("%s\n", sm.describe().c_str());

  qos::AdmissionControl admission(fabric, sm.routes(), qos::paper_catalogue(),
                                  {});
  sim::SimConfig sc;
  sc.trace_capacity = 1 << 16;
  sim::Simulator simulator(fabric, sm.routes(), sc);
  sm.configure_fabric(simulator, admission);

  qos::DynamicScenario scenario(simulator, admission);
  const auto hosts = fabric.hosts();

  // Phase 1 (t=0): a morning shift of eight video-ish streams.
  for (int k = 0; k < 8; ++k) {
    qos::ScheduledConnection sc1;
    sc1.arrive = 1000 + 100 * k;
    sc1.depart = 5'000'000;  // they all log off at "noon"
    sc1.request.src_host = hosts[k % 4];
    sc1.request.dst_host = hosts[4 + k % 8];
    sc1.request.sl = 5;
    sc1.request.max_distance = 32;
    sc1.request.wire_mbps = 25.0;
    sc1.payload_bytes = 1024;
    scenario.add(sc1);
  }
  // Phase 2 (mid-run): latency-critical control traffic arrives while the
  // streams are still up.
  qos::ScheduledConnection ctrl;
  ctrl.arrive = 2'000'000;
  ctrl.depart = iba::kNeverCycle;
  ctrl.request.src_host = hosts[0];
  ctrl.request.dst_host = hosts[15];
  ctrl.request.sl = 0;
  ctrl.request.max_distance = 2;
  ctrl.request.wire_mbps = 2.0;
  const auto ctrl_idx = scenario.add(ctrl);
  // Phase 3 (afternoon): a second wave after the morning streams depart.
  qos::ScheduledConnection wave;
  wave.arrive = 6'000'000;
  wave.depart = iba::kNeverCycle;
  wave.request.src_host = hosts[1];
  wave.request.dst_host = hosts[14];
  wave.request.sl = 2;
  wave.request.max_distance = 8;
  wave.request.wire_mbps = 8.0;
  const auto wave_idx = scenario.add(wave);

  simulator.metrics().start_window(0);
  scenario.run_until(10'000'000);  // 40 ms of fabric time

  std::printf("script outcome: %llu admitted, %llu rejected, %llu released\n",
              (unsigned long long)scenario.admitted(),
              (unsigned long long)scenario.rejected(),
              (unsigned long long)scenario.released());

  const auto report = [&](const char* name, std::size_t idx) {
    const auto& e = scenario.entry(idx);
    if (!e.flow) {
      std::printf("%s: not admitted\n", name);
      return;
    }
    const auto& c = simulator.metrics().connections[*e.flow];
    std::printf("%s: %llu packets, worst delay %.1f us, misses %llu\n", name,
                (unsigned long long)c.rx_packets,
                c.delay.max() * iba::kNsPerCycle / 1000.0,
                (unsigned long long)c.deadline_misses);
  };
  report("control connection (SL0, d=2)", ctrl_idx);
  report("afternoon connection (SL2, d=8)", wave_idx);

  // Pull one packet's journey out of the trace.
  const auto recent = simulator.trace().chronological();
  std::uint64_t last_delivered = 0;
  for (const auto& r : recent)
    if (r.event == sim::TraceEvent::kDeliver) last_delivered = r.packet;
  std::printf("\njourney of packet %llu:\n",
              (unsigned long long)last_delivered);
  for (const auto& r : simulator.trace().journey(last_delivered))
    std::printf("  cycle %8llu  %-8s node %2u port %u vl %u\n",
                (unsigned long long)r.time, sim::to_string(r.event), r.node,
                r.port, r.vl);

  // Defragmentation activity across the fabric.
  std::uint64_t moves = 0;
  for (const auto h : hosts) {
    const auto& m = admission.port_manager(h, 0);
    moves += m.stats().defrag_moves;
  }
  std::printf("\ndefragmenter moves on host interfaces: %llu\n",
              (unsigned long long)moves);
  return 0;
}
