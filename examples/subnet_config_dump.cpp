// Scenario: what the subnet-management plane actually computes — a dump of
// the discovery sweep, LID assignment, the up*/down* routing decisions and
// the arbitration table the fill-in algorithm produced for one output port.
// Useful for understanding the system and as a debugging aid.
#include <cstdio>

#include "arbtable/entry_set.hpp"
#include "network/topology.hpp"
#include "qos/admission.hpp"
#include "subnet/subnet_manager.hpp"

using namespace ibarb;

int main() {
  network::IrregularSpec spec;
  spec.switches = 8;
  spec.seed = 99;
  const auto fabric = network::gen::irregular(spec);
  subnet::SubnetManager sm(fabric);
  std::printf("%s\n", sm.describe().c_str());

  std::printf("discovery sweep order (first 12 nodes): ");
  for (std::size_t i = 0; i < 12 && i < sm.sweep_order().size(); ++i)
    std::printf("%u ", sm.sweep_order()[i]);
  std::printf("\n\n");

  // Route between the two most distant hosts found.
  const auto hosts = fabric.hosts();
  iba::NodeId src = hosts.front(), dst = hosts.back();
  unsigned best = 0;
  for (const auto a : hosts)
    for (const auto b : hosts) {
      if (a == b) continue;
      const auto h = sm.routes().hops(a, b);
      if (h > best) {
        best = h;
        src = a;
        dst = b;
      }
    }
  std::printf("longest route: host %u (LID %u) -> host %u (LID %u), %u "
              "stages:\n  ",
              src, sm.lid(src), dst, sm.lid(dst), best);
  for (const auto& port : sm.routes().path(src, dst))
    std::printf("(%u:p%u) ", port.node, port.port);
  std::printf("\n\n");

  // Fill some connections in, then dump the first hop's arbitration table.
  qos::AdmissionControl admission(fabric, sm.routes(), qos::paper_catalogue(),
                                  {});
  const struct {
    iba::ServiceLevel sl;
    unsigned distance;
    double mbps;
  } mix[] = {{0, 2, 1.5}, {2, 8, 6.0}, {5, 32, 20.0}, {7, 64, 3.0},
             {7, 64, 3.0}, {9, 64, 25.0}};
  for (const auto& m : mix) {
    qos::ConnectionRequest req;
    req.src_host = src;
    req.dst_host = dst;
    req.sl = m.sl;
    req.max_distance = m.distance;
    req.wire_mbps = m.mbps;
    const auto id = admission.request(req);
    std::printf("request SL%u d=%-2u %5.1f Mbps -> %s\n", m.sl, m.distance,
                m.mbps, id ? "admitted" : "rejected");
  }

  const auto first_hop = sm.routes().path(src, dst)[0];
  const auto& manager =
      admission.port_manager(first_hop.node, first_hop.port);
  const auto& table = manager.table();
  std::printf("\nhigh-priority table of host %u's interface "
              "(slot: VL/weight, '.' = free):\n",
              src);
  for (unsigned row = 0; row < 4; ++row) {
    std::printf("  ");
    for (unsigned col = 0; col < 16; ++col) {
      const auto& e = table.high()[row * 16 + col];
      if (e.active())
        std::printf("%2u/%-3u ", e.vl, e.weight);
      else
        std::printf("  .    ");
    }
    std::printf("\n");
  }
  std::printf("\nlow-priority table entries (best-effort classes): ");
  for (const auto& e : table.low())
    if (e.active()) std::printf("VL%u/w%u ", e.vl, e.weight);
  std::printf("\n\nper-VL worst-case gaps (latency guarantee): ");
  for (iba::VirtualLane vl = 0; vl < 10; ++vl) {
    const auto gap = arbtable::max_gap_for_vl(table.high(), vl);
    if (gap < iba::kArbTableEntries || table.vl_weight_high(vl) > 0)
      std::printf("VL%u<=%u ", vl, gap);
  }
  std::printf("\nreserved on this port: %.1f of %.1f Mbps\n",
              manager.reserved_mbps(), manager.reservable_mbps());
  return 0;
}
