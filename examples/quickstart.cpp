// Quickstart: the library's public API end to end on a toy fabric.
//
//   1. Build a fabric (one 8-port switch, four hosts).
//   2. Let the SubnetManager discover it and compute up*/down* routes.
//   3. Ask AdmissionControl for a guaranteed connection (bandwidth +
//      deadline): this fills the IBA VLArbitrationTables along the path
//      with the paper's bit-reversal algorithm.
//   4. Program the simulator and send CBR traffic over the connection.
//   5. Check the guarantee: every packet arrived before its deadline.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
// With --json, the same run is emitted as an obs::Report (the machine
// format every bench shares) including the simulator's telemetry snapshot.
#include <cstdio>

#include <iostream>

#include "network/topology.hpp"
#include "obs/report.hpp"
#include "qos/admission.hpp"
#include "subnet/subnet_manager.hpp"
#include "traffic/cbr.hpp"
#include "util/cli.hpp"
#include "util/json_writer.hpp"

using namespace ibarb;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool json = cli.get_bool("json", false);
  // 1. Fabric.
  const auto fabric = network::gen::single_switch(/*hosts=*/4);

  // 2. Subnet management plane.
  subnet::SubnetManager sm(fabric);
  if (!json) std::printf("%s\n", sm.describe().c_str());

  // 3. A connection with QoS: 20 Mbps (wire) and a deadline tight enough to
  //    need entries every 8 slots of the arbitration table.
  qos::AdmissionControl admission(fabric, sm.routes(), qos::paper_catalogue(),
                                  {});
  const auto hosts = fabric.hosts();
  qos::ConnectionRequest request;
  request.src_host = hosts[0];
  request.dst_host = hosts[2];
  request.sl = 2;            // Table-1 class: distance 8, 1-8 Mbps
  request.max_distance = 8;
  request.wire_mbps = 8.0;
  const auto conn = admission.request(request);
  if (!conn) {
    std::printf("connection rejected?!\n");
    return 1;
  }
  if (!json)
    std::printf("connection %u admitted, end-to-end deadline %.1f us\n", *conn,
                double(admission.connection(*conn).deadline) *
                    iba::kNsPerCycle / 1000.0);

  // 4. Simulate CBR traffic on it.
  sim::Simulator simulator(fabric, sm.routes(), {});
  sm.configure_fabric(simulator, admission);
  const auto flow = simulator.add_flow(traffic::make_cbr_flow(
      hosts[0], hosts[2], request.sl, /*payload=*/256, request.wire_mbps,
      admission.connection(*conn).deadline, /*seed=*/1));
  simulator.run_paper_phases(/*warmup=*/100000, /*min_rx=*/200,
                             /*hard_limit=*/1u << 30);

  // 5. Verify the guarantee.
  const auto& stats = simulator.metrics().connections[flow];
  if (json) {
    obs::Report report("quickstart");
    report.config("sl", static_cast<std::uint64_t>(request.sl));
    report.config("wire_mbps", request.wire_mbps);
    report.telemetry(simulator.telemetry_snapshot());
    report.figure("connection", [&](util::JsonWriter& w) {
      w.begin_object();
      w.kv("rx_packets", stats.rx_packets);
      w.kv("mean_delay_us", stats.delay.mean() * iba::kNsPerCycle / 1000.0);
      w.kv("worst_delay_us", stats.delay.max() * iba::kNsPerCycle / 1000.0);
      w.kv("deadline_misses", stats.deadline_misses);
      w.kv("guarantee_held", stats.deadline_misses == 0);
      w.end_object();
    });
    report.write(std::cout);
  } else {
    std::printf("delivered %llu packets, mean delay %.1f us, worst %.1f us, "
                "deadline misses: %llu\n",
                static_cast<unsigned long long>(stats.rx_packets),
                stats.delay.mean() * iba::kNsPerCycle / 1000.0,
                stats.delay.max() * iba::kNsPerCycle / 1000.0,
                static_cast<unsigned long long>(stats.deadline_misses));
    std::printf("%s\n", stats.deadline_misses == 0 ? "QoS guarantee held."
                                                   : "QoS guarantee VIOLATED");
  }
  return stats.deadline_misses == 0 ? 0 : 1;
}
