// Quickstart: the library's public API end to end on a toy fabric.
//
//   1. Build a fabric (one 8-port switch, four hosts).
//   2. Let the SubnetManager discover it and compute up*/down* routes.
//   3. Ask AdmissionControl for a guaranteed connection (bandwidth +
//      deadline): this fills the IBA VLArbitrationTables along the path
//      with the paper's bit-reversal algorithm.
//   4. Program the simulator and send CBR traffic over the connection.
//   5. Check the guarantee: every packet arrived before its deadline.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "network/topology.hpp"
#include "qos/admission.hpp"
#include "subnet/subnet_manager.hpp"
#include "traffic/cbr.hpp"

using namespace ibarb;

int main() {
  // 1. Fabric.
  const auto fabric = network::make_single_switch(/*hosts=*/4);

  // 2. Subnet management plane.
  subnet::SubnetManager sm(fabric);
  std::printf("%s\n", sm.describe().c_str());

  // 3. A connection with QoS: 20 Mbps (wire) and a deadline tight enough to
  //    need entries every 8 slots of the arbitration table.
  qos::AdmissionControl admission(fabric, sm.routes(), qos::paper_catalogue(),
                                  {});
  const auto hosts = fabric.hosts();
  qos::ConnectionRequest request;
  request.src_host = hosts[0];
  request.dst_host = hosts[2];
  request.sl = 2;            // Table-1 class: distance 8, 1-8 Mbps
  request.max_distance = 8;
  request.wire_mbps = 8.0;
  const auto conn = admission.request(request);
  if (!conn) {
    std::printf("connection rejected?!\n");
    return 1;
  }
  std::printf("connection %u admitted, end-to-end deadline %.1f us\n", *conn,
              double(admission.connection(*conn).deadline) * iba::kNsPerCycle /
                  1000.0);

  // 4. Simulate CBR traffic on it.
  sim::Simulator simulator(fabric, sm.routes(), {});
  sm.configure_fabric(simulator, admission);
  const auto flow = simulator.add_flow(traffic::make_cbr_flow(
      hosts[0], hosts[2], request.sl, /*payload=*/256, request.wire_mbps,
      admission.connection(*conn).deadline, /*seed=*/1));
  simulator.run_paper_phases(/*warmup=*/100000, /*min_rx=*/200,
                             /*hard_limit=*/1u << 30);

  // 5. Verify the guarantee.
  const auto& stats = simulator.metrics().connections[flow];
  std::printf("delivered %llu packets, mean delay %.1f us, worst %.1f us, "
              "deadline misses: %llu\n",
              static_cast<unsigned long long>(stats.rx_packets),
              stats.delay.mean() * iba::kNsPerCycle / 1000.0,
              stats.delay.max() * iba::kNsPerCycle / 1000.0,
              static_cast<unsigned long long>(stats.deadline_misses));
  std::printf("%s\n", stats.deadline_misses == 0 ? "QoS guarantee held."
                                                 : "QoS guarantee VIOLATED");
  return stats.deadline_misses == 0 ? 0 : 1;
}
