// End-to-end integration: the paper's full pipeline on a small (8-switch)
// irregular network — discovery, routing, Table-1 workload, admission,
// fabric programming, simulation — then the QoS assertions of §4.3:
// every guaranteed connection receives all packets within its deadline and
// jitter stays within one inter-arrival time.
#include <gtest/gtest.h>

#include "network/topology.hpp"
#include "qos/admission.hpp"
#include "subnet/subnet_manager.hpp"
#include "traffic/workload.hpp"

namespace ibarb {
namespace {

struct Scenario {
  network::FabricGraph graph;
  subnet::SubnetManager sm;
  qos::AdmissionControl admission;
  sim::Simulator sim;
  traffic::Workload workload;
  sim::RunSummary summary;

  explicit Scenario(iba::Mtu mtu, std::uint64_t seed = 21,
                    qos::Scheme scheme = qos::Scheme::kNewProposal)
      : graph(network::gen::irregular(spec(seed))),
        sm(graph),
        admission(graph, sm.routes(), qos::paper_catalogue(),
                  acfg(scheme, mtu)),
        sim(graph, sm.routes(), scfg(mtu)) {
    traffic::WorkloadConfig wc;
    wc.mtu = mtu;
    wc.seed = seed;
    wc.besteffort_load = 0.08;
    workload = traffic::build_paper_workload(graph, sm.routes(), admission,
                                             sim, wc);
    sm.configure_fabric(sim, admission);
    summary = sim.run_paper_phases(/*warmup=*/400000, /*min_rx=*/12,
                                   /*hard_limit=*/400000000);
  }

  static network::IrregularSpec spec(std::uint64_t seed) {
    network::IrregularSpec s;
    s.switches = 8;
    s.seed = seed;
    return s;
  }
  static qos::AdmissionControl::Config acfg(qos::Scheme scheme,
                                            iba::Mtu mtu) {
    qos::AdmissionControl::Config c;
    c.seed = 2;
    c.scheme = scheme;
    c.max_packet_wire_bytes = iba::mtu_bytes(mtu) + iba::kPacketOverheadBytes;
    return c;
  }
  static sim::SimConfig scfg(iba::Mtu mtu) {
    sim::SimConfig c;
    c.max_payload_bytes = iba::mtu_bytes(mtu);
    c.seed = 77;
    return c;
  }
};

class QosIntegration : public ::testing::TestWithParam<iba::Mtu> {};

TEST_P(QosIntegration, AllGuaranteedConnectionsMeetDeadlines) {
  Scenario s(GetParam());
  ASSERT_FALSE(s.summary.hit_hard_limit);
  ASSERT_GT(s.workload.accepted, 50u);

  std::uint64_t total_rx = 0;
  for (const auto& ec : s.workload.connections) {
    const auto& c = s.sim.metrics().connections[ec.flow];
    ASSERT_GE(c.rx_packets, 12u) << "SL " << int(ec.sl);
    total_rx += c.rx_packets;
    EXPECT_EQ(c.deadline_misses, 0u)
        << "SL " << int(ec.sl) << " flow " << ec.flow << " max delay "
        << c.delay.max() << " vs deadline " << c.deadline;
    // The D/1 threshold is 100% for every connection (Figure 4's headline).
    EXPECT_DOUBLE_EQ(c.fraction_within(sim::kDelayThresholds - 1), 1.0);
  }
  EXPECT_GT(total_rx, 1000u);
  EXPECT_TRUE(s.admission.check_all_invariants());
}

TEST_P(QosIntegration, JitterStaysWithinOneInterArrivalTime) {
  Scenario s(GetParam());
  std::uint64_t inside = 0;
  std::uint64_t outside = 0;
  for (const auto& ec : s.workload.connections) {
    const auto& c = s.sim.metrics().connections[ec.flow];
    for (std::size_t b = 0; b < sim::kJitterBins; ++b) {
      const bool overflow = b == 0 || b == sim::kJitterBins - 1;
      (overflow ? outside : inside) += c.jitter_bins[b];
    }
  }
  ASSERT_GT(inside, 0u);
  // Figure 5: jitter "never exceeding +-IAT".
  EXPECT_LE(static_cast<double>(outside),
            0.01 * static_cast<double>(inside + outside));
}

TEST_P(QosIntegration, BestEffortStillProgresses) {
  Scenario s(GetParam());
  std::uint64_t be_rx = 0;
  for (const auto& c : s.sim.metrics().connections)
    if (!c.qos) be_rx += c.rx_packets;
  EXPECT_GT(be_rx, 0u) << "low-priority table must drain when links idle";
}

TEST_P(QosIntegration, UtilizationIsPhysical) {
  Scenario s(GetParam());
  const auto window = s.sim.metrics().window_length();
  ASSERT_GT(window, 0u);
  for (const auto& p : s.sim.metrics().ports) {
    EXPECT_LE(p.utilization(window), 1.0 + 1e-9);
    EXPECT_LE(p.reserved_mbps, 0.8 * p.link_mbps + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(PacketSizes, QosIntegration,
                         ::testing::Values(iba::Mtu::kMtu256,
                                           iba::Mtu::kMtu2048));

TEST(QosIntegrationMisbehavior, OversendingOnlyHurtsItsOwnVl) {
  // A compliant run vs one where SL9 sources send 3x their reservation.
  // Under the paper's scheme, connections on other VLs keep their
  // guarantees; the damage stays inside SL9's VL.
  const auto build = [](double factor) {
    network::IrregularSpec ns;
    ns.switches = 8;
    ns.seed = 21;
    auto graph = network::gen::irregular(ns);
    auto routes = network::compute_routes(graph);
    qos::AdmissionControl::Config ac;
    ac.seed = 2;
    auto admission = std::make_unique<qos::AdmissionControl>(
        graph, routes, qos::paper_catalogue(), ac);
    sim::SimConfig sc;
    sc.seed = 77;
    auto sim = std::make_unique<sim::Simulator>(graph, routes, sc);
    traffic::WorkloadConfig wc;
    wc.seed = 21;
    wc.besteffort_load = 0.0;
    wc.oversend_sl_mask = 1u << 9;
    wc.oversend_factor = factor;
    auto workload =
        traffic::build_paper_workload(graph, routes, *admission, *sim, wc);
    admission->program(*sim);
    sim->run_paper_phases(400000, 12, 400000000);
    std::uint64_t misses_other = 0;
    std::uint64_t rx_other = 0;
    for (const auto& ec : workload.connections) {
      if (ec.sl == 9) continue;
      const auto& c = sim->metrics().connections[ec.flow];
      misses_other += c.deadline_misses;
      rx_other += c.rx_packets;
    }
    return std::pair{misses_other, rx_other};
  };
  const auto [misses, rx] = build(3.0);
  EXPECT_GT(rx, 500u);
  EXPECT_EQ(misses, 0u)
      << "victim SLs on other VLs lost guarantees to a misbehaving SL9";
}

}  // namespace
}  // namespace ibarb
