#include "qos/vl_planning.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "network/topology.hpp"
#include "qos/admission.hpp"
#include "subnet/subnet_manager.hpp"
#include "traffic/workload.hpp"

namespace ibarb::qos {
namespace {

TEST(VlPlanning, IdentityWhenEnoughLanes) {
  const auto plan = plan_vl_folding(paper_catalogue(), 13);
  const auto original = paper_catalogue();
  ASSERT_EQ(plan.catalogue.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(plan.catalogue[i].vl, original[i].vl);
    EXPECT_EQ(plan.catalogue[i].max_distance, original[i].max_distance);
  }
}

TEST(VlPlanning, FoldsOntoRequestedLanes) {
  for (const unsigned lanes : {2u, 4u, 6u, 8u}) {
    const auto plan = plan_vl_folding(paper_catalogue(), lanes);
    for (const auto& p : plan.catalogue) {
      EXPECT_LT(p.vl, lanes) << "lane overflow at " << lanes << " lanes";
      EXPECT_EQ(plan.mapping.map(p.sl), p.vl);
    }
    EXPECT_TRUE(plan.mapping.valid_for(lanes));
  }
}

TEST(VlPlanning, DistancesNeverLoosen) {
  const auto original = paper_catalogue();
  for (const unsigned lanes : {2u, 3u, 5u, 8u}) {
    const auto plan = plan_vl_folding(original, lanes);
    for (std::size_t i = 0; i < original.size(); ++i) {
      if (original[i].max_distance == 0) continue;  // best effort
      EXPECT_LE(plan.catalogue[i].max_distance, original[i].max_distance)
          << "folding must only tighten guarantees";
      EXPECT_GE(plan.catalogue[i].max_distance, 2u);
    }
  }
}

TEST(VlPlanning, LaneMatesShareOneDistance) {
  const auto plan = plan_vl_folding(paper_catalogue(), 4);
  std::map<iba::VirtualLane, std::set<unsigned>> distances;
  for (const auto& p : plan.catalogue)
    if (p.max_distance != 0) distances[p.vl].insert(p.max_distance);
  for (const auto& [vl, ds] : distances)
    EXPECT_EQ(ds.size(), 1u) << "VL " << int(vl)
                             << " mixes latency requirements";
}

TEST(VlPlanning, BestEffortKeptApartFromQosWhenPossible) {
  const auto plan = plan_vl_folding(paper_catalogue(), 4);
  std::set<iba::VirtualLane> qos_lanes;
  std::set<iba::VirtualLane> be_lanes;
  for (const auto& p : plan.catalogue)
    (p.max_distance != 0 ? qos_lanes : be_lanes).insert(p.vl);
  for (const auto vl : be_lanes)
    EXPECT_FALSE(qos_lanes.contains(vl))
        << "best effort shares a lane with guaranteed traffic";
}

TEST(VlPlanning, RejectsBadLaneCounts) {
  EXPECT_THROW(plan_vl_folding(paper_catalogue(), 0), std::invalid_argument);
  EXPECT_THROW(plan_vl_folding(paper_catalogue(), 15), std::invalid_argument);
}

TEST(VlPlanning, GuaranteesHoldOnAFourLaneFabric) {
  // End to end: run the paper workload on a fabric whose devices only have
  // 4 data VLs. Folded SLs adopt tightened distances; every delivered
  // packet must still make its (tightened) deadline.
  network::IrregularSpec spec;
  spec.switches = 8;
  spec.seed = 5;
  const auto graph = network::gen::irregular(spec);
  subnet::SubnetManager sm(graph);

  const auto plan = plan_vl_folding(paper_catalogue(), 4);
  AdmissionControl admission(graph, sm.routes(), plan.catalogue, {});
  sim::Simulator sim(graph, sm.routes(), {});

  traffic::WorkloadConfig wc;
  wc.seed = 5;
  wc.besteffort_load = 0.05;
  const auto workload =
      traffic::build_paper_workload(graph, sm.routes(), admission, sim, wc);
  ASSERT_GT(workload.accepted, 50u);

  admission.program(sim);
  sim.set_sl_to_vl_all(plan.mapping);
  const auto summary = sim.run_paper_phases(300000, 10, 400000000);
  ASSERT_FALSE(summary.hit_hard_limit);

  std::uint64_t rx = 0;
  std::uint64_t misses = 0;
  for (const auto& ec : workload.connections) {
    const auto& c = sim.metrics().connections[ec.flow];
    rx += c.rx_packets;
    misses += c.deadline_misses;
  }
  EXPECT_GT(rx, 1000u);
  EXPECT_EQ(misses, 0u) << "folded fabric broke a guarantee";
}

}  // namespace
}  // namespace ibarb::qos
