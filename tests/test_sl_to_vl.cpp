#include "iba/sl_to_vl.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ibarb::iba {
namespace {

TEST(SlToVl, DefaultMapsEverythingToVl0) {
  SlToVlMappingTable t;
  for (unsigned sl = 0; sl < kMaxServiceLevels; ++sl)
    EXPECT_EQ(t.map(static_cast<ServiceLevel>(sl)), 0);
}

TEST(SlToVl, IdentityWithFullLanes) {
  const auto t = SlToVlMappingTable::identity(15);
  for (unsigned sl = 0; sl < 15; ++sl)
    EXPECT_EQ(t.map(static_cast<ServiceLevel>(sl)), sl);
  EXPECT_EQ(t.map(15), 0);  // SL15 folds back onto VL0 (data traffic)
}

TEST(SlToVl, IdentityFoldsWhenFewerLanes) {
  const auto t = SlToVlMappingTable::identity(4);
  EXPECT_EQ(t.map(0), 0);
  EXPECT_EQ(t.map(5), 1);
  EXPECT_EQ(t.map(11), 3);
}

TEST(SlToVl, SetAndGet) {
  SlToVlMappingTable t;
  t.set(3, 7);
  EXPECT_EQ(t.map(3), 7);
}

TEST(SlToVl, RejectsVl15ForData) {
  SlToVlMappingTable t;
  EXPECT_THROW(t.set(0, 15), std::invalid_argument);
}

TEST(SlToVl, RejectsOutOfRangeSl) {
  SlToVlMappingTable t;
  EXPECT_THROW(t.set(16, 0), std::invalid_argument);
}

TEST(SlToVl, RejectsZeroOrTooManyLanesForIdentity) {
  EXPECT_THROW(SlToVlMappingTable::identity(0), std::invalid_argument);
  EXPECT_THROW(SlToVlMappingTable::identity(16), std::invalid_argument);
}

TEST(SlToVl, ValidForChecksLaneCount) {
  const auto t = SlToVlMappingTable::identity(8);
  EXPECT_TRUE(t.valid_for(8));
  EXPECT_FALSE(t.valid_for(4));
}

TEST(SlToVl, InvalidVlMarksSlNotAdmitted) {
  SlToVlMappingTable t;
  t.set(2, kInvalidVl);
  EXPECT_FALSE(t.valid_for(15));
}

}  // namespace
}  // namespace ibarb::iba
