#include "iba/arbiter.hpp"

#include <gtest/gtest.h>

#include <map>

namespace ibarb::iba {
namespace {

VlArbitrationTable two_vl_table(std::uint8_t w0, std::uint8_t w1) {
  VlArbitrationTable t;
  t.high()[0] = ArbTableEntry{0, w0};
  t.high()[1] = ArbTableEntry{1, w1};
  return t;
}

TEST(VlArbiter, NothingReadyReturnsNullopt) {
  VlArbiter arb(two_vl_table(10, 10));
  ReadyBytes ready{};
  EXPECT_FALSE(arb.arbitrate(ready).has_value());
}

TEST(VlArbiter, Vl15AlwaysWins) {
  VlArbiter arb(two_vl_table(10, 10));
  ReadyBytes ready{};
  ready[0] = 100;
  ready[kManagementVl] = 64;
  const auto d = arb.arbitrate(ready);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->vl, kManagementVl);
  EXPECT_TRUE(d->management);
}

TEST(VlArbiter, PicksOnlyReadyVl) {
  VlArbiter arb(two_vl_table(10, 10));
  ReadyBytes ready{};
  ready[1] = 100;
  const auto d = arb.arbitrate(ready);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->vl, 1);
  EXPECT_TRUE(d->from_high);
}

TEST(VlArbiter, UnconfiguredVlNeverSelected) {
  VlArbiter arb(two_vl_table(10, 10));
  ReadyBytes ready{};
  ready[7] = 100;  // VL7 appears in no table entry
  EXPECT_FALSE(arb.arbitrate(ready).has_value());
}

TEST(VlArbiter, WeightedSharesApproximateWeights) {
  // VL0 weight 200, VL1 weight 100 -> bytes served should be ~2:1.
  VlArbitrationTable t;
  t.high()[0] = ArbTableEntry{0, 200};
  t.high()[1] = ArbTableEntry{1, 100};
  VlArbiter arb(t);

  ReadyBytes ready{};
  ready[0] = 640;  // 10 weight units each
  ready[1] = 640;
  std::map<VirtualLane, std::uint64_t> bytes;
  for (int i = 0; i < 3000; ++i) {
    const auto d = arb.arbitrate(ready);
    ASSERT_TRUE(d.has_value());
    bytes[d->vl] += ready[d->vl];
  }
  const double ratio = static_cast<double>(bytes[0]) /
                       static_cast<double>(bytes[1]);
  EXPECT_NEAR(ratio, 2.0, 0.1);
}

TEST(VlArbiter, EqualWeightsAlternate) {
  VlArbiter arb(two_vl_table(5, 5));
  ReadyBytes ready{};
  ready[0] = 320;  // exactly 5 units: one packet exhausts the entry
  ready[1] = 320;
  const auto a = arb.arbitrate(ready);
  const auto b = arb.arbitrate(ready);
  const auto c = arb.arbitrate(ready);
  const auto d = arb.arbitrate(ready);
  ASSERT_TRUE(a && b && c && d);
  EXPECT_EQ(a->vl, 0);
  EXPECT_EQ(b->vl, 1);
  EXPECT_EQ(c->vl, 0);
  EXPECT_EQ(d->vl, 1);
}

TEST(VlArbiter, WholePacketChargeOverdraftForfeited) {
  // Entry weight 1 unit; packet of 10 units still goes out, then the entry
  // is exhausted (no carrying of the overdraft into the next round).
  VlArbitrationTable t;
  t.high()[0] = ArbTableEntry{0, 1};
  t.high()[1] = ArbTableEntry{1, 200};
  VlArbiter arb(t);
  ReadyBytes ready{};
  ready[0] = 640;
  ready[1] = 64;
  const auto first = arb.arbitrate(ready);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->vl, 0);
  // Next pick must come from VL1's entry.
  const auto second = arb.arbitrate(ready);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->vl, 1);
}

TEST(VlArbiter, WorkConservingLowRunsWhenHighEmpty) {
  VlArbitrationTable t;
  t.high()[0] = ArbTableEntry{0, 100};
  t.low()[0] = ArbTableEntry{5, 10};
  VlArbiter arb(t);
  ReadyBytes ready{};
  ready[5] = 128;
  const auto d = arb.arbitrate(ready);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->vl, 5);
  EXPECT_FALSE(d->from_high);
}

TEST(VlArbiter, UnlimitedHighStarvesLowWhileHighReady) {
  VlArbitrationTable t;
  t.high()[0] = ArbTableEntry{0, 10};
  t.low()[0] = ArbTableEntry{5, 10};
  t.set_limit_of_high_priority(kUnlimitedHighPriority);
  VlArbiter arb(t);
  ReadyBytes ready{};
  ready[0] = 640;
  ready[5] = 640;
  for (int i = 0; i < 200; ++i) {
    const auto d = arb.arbitrate(ready);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->vl, 0) << "low VL must wait while high is ready";
  }
}

TEST(VlArbiter, BoundedLimitLetsLowThrough) {
  VlArbitrationTable t;
  t.high()[0] = ArbTableEntry{0, 255};
  t.low()[0] = ArbTableEntry{5, 10};
  t.set_limit_of_high_priority(1);  // 4096 bytes of high per low packet
  VlArbiter arb(t);
  ReadyBytes ready{};
  ready[0] = 1024;
  ready[5] = 1024;
  int low_picks = 0;
  int high_picks = 0;
  for (int i = 0; i < 500; ++i) {
    const auto d = arb.arbitrate(ready);
    ASSERT_TRUE(d.has_value());
    (d->from_high ? high_picks : low_picks)++;
  }
  // Every ~4 high packets (4096/1024) one low packet must be let through.
  EXPECT_GT(low_picks, 80);
  EXPECT_GT(high_picks, low_picks);
}

TEST(VlArbiter, LimitMeterResetsWhenNoLowPending) {
  VlArbitrationTable t;
  t.high()[0] = ArbTableEntry{0, 255};
  t.set_limit_of_high_priority(1);
  VlArbiter arb(t);
  ReadyBytes ready{};
  ready[0] = 4096;
  for (int i = 0; i < 10; ++i) {
    const auto d = arb.arbitrate(ready);
    ASSERT_TRUE(d.has_value());
    EXPECT_TRUE(d->from_high);
  }
  EXPECT_EQ(arb.high_bytes_since_low(), 0u);
}

TEST(VlArbiter, InactiveEntriesAreSkipped) {
  VlArbitrationTable t;
  t.high()[10] = ArbTableEntry{3, 50};  // the only active entry, mid-table
  VlArbiter arb(t);
  ReadyBytes ready{};
  ready[3] = 200;
  const auto d = arb.arbitrate(ready);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->vl, 3);
}

TEST(VlArbiter, SetTableKeepsServingAfterReconfiguration) {
  VlArbiter arb(two_vl_table(10, 10));
  ReadyBytes ready{};
  ready[0] = 64;
  ASSERT_TRUE(arb.arbitrate(ready).has_value());

  VlArbitrationTable bigger;
  bigger.high()[0] = ArbTableEntry{0, 10};
  bigger.high()[1] = ArbTableEntry{1, 10};
  bigger.high()[2] = ArbTableEntry{2, 10};
  arb.set_table(bigger);
  ready[2] = 64;
  bool saw_vl2 = false;
  for (int i = 0; i < 10; ++i) {
    const auto d = arb.arbitrate(ready);
    ASSERT_TRUE(d.has_value());
    saw_vl2 |= d->vl == 2;
  }
  EXPECT_TRUE(saw_vl2);
}

TEST(VlArbiter, DistanceBoundsServiceInterval) {
  // A VL whose entries sit every 4 slots in an otherwise full table must be
  // served at least once per 4 entry activations: measure worst-case bytes
  // of other traffic between consecutive services.
  VlArbitrationTable t;
  for (unsigned i = 0; i < kArbTableEntries; ++i)
    t.high()[i] = ArbTableEntry{0, 255};  // background VL0 everywhere...
  for (unsigned i = 0; i < kArbTableEntries; i += 4)
    t.high()[i] = ArbTableEntry{1, 16};  // ...except VL1 every 4th slot
  VlArbiter arb(t);
  ReadyBytes ready{};
  ready[0] = 1024;
  ready[1] = 1024;
  std::uint64_t other_bytes = 0;
  std::uint64_t worst = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto d = arb.arbitrate(ready);
    ASSERT_TRUE(d.has_value());
    if (d->vl == 1) {
      worst = std::max(worst, other_bytes);
      other_bytes = 0;
    } else {
      other_bytes += ready[0];
    }
  }
  // Between VL1 services: at most 3 entries, each of up to 255 units plus
  // one whole-packet overdraft (packets are 1024 B = 16 units).
  EXPECT_LE(worst, 3u * (255u + 16u - 1u) * 64u);
  EXPECT_GT(worst, 0u);
}

}  // namespace
}  // namespace ibarb::iba
