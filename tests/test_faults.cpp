// Fault-injection & recovery subsystem: plan grammar and storm determinism,
// end-to-end link-flap recovery (re-sweep, reroute, graceful degradation),
// CRC-backed corruption recovered by the RC transport, and bit-identical
// replay of a full faulty run.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "faults/fault_injector.hpp"
#include "faults/fault_plan.hpp"
#include "faults/rc_session.hpp"
#include "faults/recovery.hpp"
#include "network/topology.hpp"
#include "qos/admission.hpp"
#include "subnet/subnet_manager.hpp"
#include "traffic/cbr.hpp"

namespace ibarb::faults {
namespace {

// --------------------------------------------------------------------------
// Plan grammar

TEST(FaultPlan, ParseDescribeRoundTrip) {
  const auto plan = FaultPlan::parse(
      "linkflap@200000+300000:3.2;"
      "corrupt@100000+50000:5.0:0.25,"
      "drop@150000+10000:4.1:0.5;"
      "stuck@400000+20000:2.7;"
      "slow@500000+30000:1.3:4;"
      "overload@600000+100000:f12:8");
  ASSERT_EQ(plan.events().size(), 6u);
  // Sorted by activation time.
  EXPECT_EQ(plan.events().front().kind, FaultKind::kCorrupt);
  EXPECT_EQ(plan.events().back().kind, FaultKind::kOverload);
  EXPECT_EQ(plan.events().back().flow, 12u);
  EXPECT_DOUBLE_EQ(plan.events().back().factor, 8.0);

  const auto text = plan.describe();
  const auto reparsed = FaultPlan::parse(text);
  EXPECT_EQ(reparsed.describe(), text) << "describe() must round-trip";
}

TEST(FaultPlan, ParseRejectsMalformedSpecs) {
  for (const auto* bad :
       {"flap@1:0.0",              // unknown kind
        "linkflap@:3.2",           // missing time
        "linkflap@100",            // missing target
        "corrupt@100:3.2:1.5",     // probability out of range
        "slow@100:3.2:0",          // non-positive factor
        "overload@100:3.2:2",      // overload needs an fN target
        "linkflap@100:f3",         // port fault needs node.port
        "linkflap@100:3"}) {       // missing port
    EXPECT_THROW((void)FaultPlan::parse(bad), std::invalid_argument) << bad;
  }
}

TEST(FaultPlan, ParseErrorsNameTokenAndOffset) {
  const auto message_of = [](const char* spec) {
    try {
      (void)FaultPlan::parse(spec);
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  // Unknown kind: the kind token sits at offset 0.
  auto msg = message_of("frobnicate@100:3.2");
  EXPECT_NE(msg.find("unknown fault kind"), std::string::npos) << msg;
  EXPECT_NE(msg.find("at offset 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'frobnicate'"), std::string::npos) << msg;
  // Malformed number mid-spec: the offset points at the numeric token, not
  // the start of the spec.
  msg = message_of("linkflap@1x0:3.2");
  EXPECT_NE(msg.find("expected an unsigned integer"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("at offset 9"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'1x0'"), std::string::npos) << msg;
  // Out-of-range probability: the value token is named with its position.
  msg = message_of("corrupt@100+5:3.2:1.5");
  EXPECT_NE(msg.find("probability outside [0, 1]"), std::string::npos) << msg;
  EXPECT_NE(msg.find("at offset 18"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'1.5'"), std::string::npos) << msg;
}

TEST(FaultPlan, RandomStormIsDeterministicAndInBounds) {
  network::IrregularSpec ns;
  ns.switches = 8;
  ns.seed = 21;
  const auto graph = network::gen::irregular(ns);

  StormConfig cfg;
  cfg.seed = 7;
  cfg.start = 100'000;
  cfg.length = 900'000;
  cfg.first_flow = 4;
  cfg.flows = 3;

  const auto a = FaultPlan::random_storm(graph, cfg);
  const auto b = FaultPlan::random_storm(graph, cfg);
  EXPECT_EQ(a.describe(), b.describe()) << "same seed, same storm";

  cfg.seed = 8;
  const auto c = FaultPlan::random_storm(graph, cfg);
  EXPECT_NE(a.describe(), c.describe()) << "different seed, different storm";

  ASSERT_FALSE(a.empty());
  for (const auto& ev : a.events()) {
    EXPECT_GE(ev.at, cfg.start);
    EXPECT_LT(ev.at, cfg.start + cfg.length);
    if (ev.kind == FaultKind::kOverload) {
      EXPECT_GE(ev.flow, cfg.first_flow);
      EXPECT_LT(ev.flow, cfg.first_flow + cfg.flows);
    } else {
      // Port faults only ever target switch-switch wiring.
      ASSERT_TRUE(graph.is_switch(ev.node));
      const auto peer = graph.peer(ev.node, ev.port);
      ASSERT_TRUE(peer.has_value());
      EXPECT_TRUE(graph.is_switch(peer->node));
    }
  }
}

// --------------------------------------------------------------------------
// Full-stack rig: fat tree (redundant spines, so a downed uplink is
// route-aroundable), subnet manager, admission, coordinator.

struct Rig {
  network::FabricGraph graph;
  subnet::SubnetManager sm;
  qos::AdmissionControl admission;
  sim::Simulator sim;
  std::vector<qos::ConnectionId> guaranteed_ids;
  std::vector<std::uint32_t> guaranteed_flows;
  std::vector<qos::ConnectionId> be_ids;
  std::vector<std::uint32_t> be_flows;

  explicit Rig(std::uint64_t seed)
      : graph(network::gen::fat_tree2(/*spines=*/2, /*leaves=*/4,
                                     /*hosts_per_leaf=*/2)),
        sm(graph),
        admission(graph, sm.routes(), qos::paper_catalogue(), acfg(seed)),
        sim(graph, sm.routes(), scfg(seed)) {}

  static qos::AdmissionControl::Config acfg(std::uint64_t seed) {
    qos::AdmissionControl::Config c;
    c.seed = seed;
    return c;
  }
  static sim::SimConfig scfg(std::uint64_t seed) {
    sim::SimConfig c;
    c.seed = seed ^ 0x51Dull;
    return c;
  }

  void add_guaranteed(iba::NodeId src, iba::NodeId dst, iba::ServiceLevel sl,
                      double wire_mbps, std::uint64_t seed) {
    qos::ConnectionRequest req;
    req.src_host = src;
    req.dst_host = dst;
    req.sl = sl;
    req.max_distance = qos::find_sl(admission.catalogue(), sl)->max_distance;
    req.wire_mbps = wire_mbps;
    const auto id = admission.request(req);
    ASSERT_TRUE(id.has_value());
    auto spec = traffic::make_cbr_flow(src, dst, sl, /*payload=*/256,
                                       wire_mbps,
                                       admission.connection(*id).deadline,
                                       seed);
    guaranteed_ids.push_back(*id);
    guaranteed_flows.push_back(sim.add_flow(spec));
  }

  void add_best_effort(iba::NodeId src, iba::NodeId dst, iba::ServiceLevel sl,
                       double wire_mbps, std::uint64_t seed) {
    qos::ConnectionRequest req;
    req.src_host = src;
    req.dst_host = dst;
    req.sl = sl;
    req.wire_mbps = wire_mbps;
    const auto id = admission.request_best_effort(req);
    ASSERT_TRUE(id.has_value());
    auto spec = traffic::make_cbr_flow(src, dst, sl, /*payload=*/256,
                                       wire_mbps, /*deadline=*/0, seed);
    spec.qos = false;
    be_ids.push_back(*id);
    be_flows.push_back(sim.add_flow(spec));
  }
};

TEST(FaultRecovery, LinkFlapTriggersResweepRerouteAndRepair) {
  Rig rig(11);
  const auto hosts = rig.graph.hosts();
  ASSERT_GE(hosts.size(), 6u);
  // Cross-leaf guaranteed connections (paths traverse a spine).
  rig.add_guaranteed(hosts[0], hosts[2], /*sl=*/8, /*mbps=*/40, 100);
  rig.add_guaranteed(hosts[1], hosts[4], /*sl=*/9, /*mbps=*/40, 101);
  rig.add_best_effort(hosts[3], hosts[5], /*sl=*/10, /*mbps=*/60, 102);

  // Down the first connection's leaf→spine uplink for 300k cycles.
  const auto& hops = rig.admission.connection(rig.guaranteed_ids[0]).hops;
  ASSERT_GE(hops.size(), 3u) << "expected a host->leaf->spine->leaf path";
  const auto trunk = hops[1].port;
  ASSERT_TRUE(rig.graph.is_switch(trunk.node));

  FaultEvent flap;
  flap.kind = FaultKind::kLinkFlap;
  flap.at = 200'000;
  flap.duration = 300'000;
  flap.node = trunk.node;
  flap.port = trunk.port;
  FaultInjector injector(rig.sim, rig.graph, FaultPlan({flap}), /*seed=*/5);
  RecoveryCoordinator coordinator(rig.sim, rig.graph, rig.sm, rig.admission,
                                  injector, RecoveryConfig{});
  for (std::size_t i = 0; i < rig.guaranteed_ids.size(); ++i)
    coordinator.track(rig.guaranteed_ids[i], rig.guaranteed_flows[i]);
  for (std::size_t i = 0; i < rig.be_ids.size(); ++i)
    coordinator.track_best_effort(rig.be_ids[i], rig.be_flows[i]);

  rig.sm.configure_fabric(rig.sim, rig.admission);
  injector.arm();
  rig.sim.metrics().start_window(0);

  rig.sim.run_until(195'000);
  std::vector<std::uint64_t> rx_before;
  for (const auto flow : rig.guaranteed_flows)
    rx_before.push_back(rig.sim.metrics().connections[flow].rx_packets);

  rig.sim.run_until(1'000'000);

  EXPECT_EQ(injector.stats().link_down_events, 1u);
  EXPECT_EQ(injector.stats().link_up_events, 1u);
  const auto& rs = coordinator.stats();
  EXPECT_GE(rs.resweeps, 2u) << "one for the fault, one for the repair";
  EXPECT_EQ(rs.failed_resweeps, 0u) << "a fat tree survives one downed link";
  EXPECT_GE(rs.rerouted, 1u) << "the broken path must move to the other spine";
  EXPECT_EQ(rs.guarantee_revocations, 0u);
  EXPECT_GT(rs.smps_sent, 0u);
  EXPECT_GT(rs.max_recovery_latency, 0u);
  EXPECT_EQ(coordinator.suspended_now(), 0u) << "everything readmitted";

  // Guaranteed traffic kept flowing through fault and repair.
  for (std::size_t i = 0; i < rig.guaranteed_flows.size(); ++i) {
    const auto& c = rig.sim.metrics().connections[rig.guaranteed_flows[i]];
    // ~57 packets fit in the remaining 800k cycles at this rate; well over
    // half must land despite 300k cycles of downed link plus two reroutes.
    EXPECT_GT(c.rx_packets, rx_before[i] + 30)
        << "guaranteed flow " << i << " starved across the fault";
    EXPECT_TRUE(rig.admission.is_live(rig.guaranteed_ids[i]) ||
                rs.rerouted > 0);
  }
  std::string why;
  EXPECT_TRUE(rig.admission.audit_tables(&why)) << why;
}

TEST(FaultRecovery, PurgeBarrierDropsStragglersUntilCleared) {
  Rig rig(17);
  const auto hosts = rig.graph.hosts();
  ASSERT_GE(hosts.size(), 4u);
  // Cross-leaf, so the path has a leaf->spine trunk hop to abandon.
  rig.add_guaranteed(hosts[0], hosts[2], /*sl=*/8, /*mbps=*/80, 200);
  rig.sm.configure_fabric(rig.sim, rig.admission);
  rig.sim.metrics().start_window(0);

  const auto flow = rig.guaranteed_flows[0];
  const auto& hops = rig.admission.connection(rig.guaranteed_ids[0]).hops;
  ASSERT_GE(hops.size(), 3u);
  const auto trunk = hops[1].port;
  ASSERT_TRUE(rig.graph.is_switch(trunk.node));

  rig.sim.run_until(200'000);
  const auto rx_mid = rig.sim.metrics().connections[flow].rx_packets;
  EXPECT_GT(rx_mid, 10u);

  // Abandon the flow on its trunk: anything queued purges now, and the
  // barrier keeps dropping stragglers that were in flight towards the port.
  rig.sim.purge_flow_from_output(trunk.node, trunk.port, flow);
  rig.sim.run_until(400'000);
  const auto& c = rig.sim.metrics().connections[flow];
  EXPECT_LE(c.rx_packets, rx_mid + 2)
      << "only packets already past the trunk may still land";
  EXPECT_GT(c.dropped_packets, 5u) << "arrivals at the barrier must drop";
  EXPECT_GT(rig.sim.purged_in_flight_late(), 0u);

  // Lifting the barrier restores the data path end to end.
  rig.sim.clear_flow_purge(trunk.node, trunk.port, flow);
  const auto rx_cleared = c.rx_packets;
  rig.sim.run_until(600'000);
  EXPECT_GT(c.rx_packets, rx_cleared + 10u)
      << "flow must resume once the purge is cleared";
}

TEST(FaultRecovery, CorruptionIsCrcDetectedAndRecoveredByRcRetransmit) {
  Rig rig(13);
  const auto hosts = rig.graph.hosts();
  ASSERT_GE(hosts.size(), 2u);

  RcSession::Config rc;
  rc.src_host = hosts[0];
  rc.dst_host = hosts[2];
  rc.message_bytes = 1024;  // 4 MTU-256 packets each
  rc.messages = 24;
  rc.message_interval = 20'000;
  rc.rc.mtu_payload = 256;
  rc.rc.retransmit_timeout = 40'000;
  rc.rc.max_retries = 20;
  RcSession session(rig.sim, rc);
  rig.sim.set_delivery_listener(
      [&session](const iba::Packet& p, iba::Cycle now) {
        if (session.wants(p)) session.on_delivery(p, now);
      });

  // Corrupt *everything* arriving at the destination host for a while: the
  // CRC path must reject each damaged packet and go-back-N must repair.
  FaultEvent ev;
  ev.kind = FaultKind::kCorrupt;
  ev.at = 60'000;
  ev.duration = 80'000;
  ev.node = hosts[2];
  ev.port = 0;
  ev.probability = 1.0;
  FaultInjector injector(rig.sim, rig.graph, FaultPlan({ev}), /*seed=*/3);

  rig.sm.configure_fabric(rig.sim, rig.admission);
  injector.arm();
  rig.sim.metrics().start_window(0);
  rig.sim.run_until(3'000'000);

  EXPECT_GT(injector.stats().corrupt_attempts, 0u);
  EXPECT_GT(injector.stats().crc_rejected, 0u);
  EXPECT_EQ(injector.stats().crc_escaped, 0u)
      << "ICRC+VCRC must catch every injected damage pattern";
  EXPECT_EQ(injector.stats().crc_rejected, injector.stats().corrupt_attempts);

  EXPECT_FALSE(session.failed()) << "retry budget exhausted";
  EXPECT_TRUE(session.complete())
      << session.session_stats().messages_completed << " of " << rc.messages;
  EXPECT_GT(session.tx_stats().retransmitted_packets, 0u);
  const auto ss = session.session_stats();
  EXPECT_GT(ss.recovered_packets, 0u);
  EXPECT_GT(ss.max_recovery_latency, 0u);
  // Backoff keeps the worst recovery bounded by the retry budget.
  const iba::Cycle cap_timeout = rc.rc.retransmit_timeout
                                 << rc.rc.backoff_shift_cap;
  EXPECT_LT(ss.max_recovery_latency,
            static_cast<iba::Cycle>(rc.rc.max_retries + 1) * cap_timeout);
  EXPECT_EQ(session.rx_stats().messages,
            static_cast<std::uint64_t>(rc.messages));
}

// --------------------------------------------------------------------------
// Determinism: one full storm, run twice, must be bit-identical.

std::string storm_fingerprint(std::uint64_t seed) {
  Rig rig(seed);
  const auto hosts = rig.graph.hosts();
  rig.add_guaranteed(hosts[0], hosts[3], 8, 30, 200);
  rig.add_guaranteed(hosts[1], hosts[5], 9, 30, 201);
  rig.add_best_effort(hosts[2], hosts[6], 10, 50, 202);
  rig.add_best_effort(hosts[4], hosts[7], 11, 50, 203);

  StormConfig sc;
  sc.seed = seed * 11 + 1;
  sc.start = 100'000;
  sc.length = 700'000;
  sc.first_flow = rig.be_flows.front();
  sc.flows = static_cast<std::uint32_t>(rig.be_flows.size());
  FaultInjector injector(rig.sim, rig.graph,
                         FaultPlan::random_storm(rig.graph, sc), seed);
  RecoveryCoordinator coordinator(rig.sim, rig.graph, rig.sm, rig.admission,
                                  injector, RecoveryConfig{});
  for (std::size_t i = 0; i < rig.guaranteed_ids.size(); ++i)
    coordinator.track(rig.guaranteed_ids[i], rig.guaranteed_flows[i]);
  for (std::size_t i = 0; i < rig.be_ids.size(); ++i)
    coordinator.track_best_effort(rig.be_ids[i], rig.be_flows[i]);

  rig.sm.configure_fabric(rig.sim, rig.admission);
  injector.arm();
  rig.sim.metrics().start_window(0);
  rig.sim.run_until(1'200'000);

  std::ostringstream out;
  out << "events=" << rig.sim.events_processed();
  const auto& fs = injector.stats();
  out << " down=" << fs.link_down_events << " up=" << fs.link_up_events
      << " stuck=" << fs.stuck_windows << " slow=" << fs.slow_windows
      << " corrupt=" << fs.corrupt_attempts << " rej=" << fs.crc_rejected
      << " esc=" << fs.crc_escaped << " drop=" << fs.dropped_packets
      << " flushed=" << fs.flushed_packets;
  const auto& rs = coordinator.stats();
  out << " resweeps=" << rs.resweeps << " rerouted=" << rs.rerouted
      << " suspended=" << rs.suspended << " restored=" << rs.restored
      << " shed=" << rs.shed_best_effort
      << " revoked=" << rs.guarantee_revocations
      << " lat=" << rs.max_recovery_latency;
  for (const auto& c : rig.sim.metrics().connections)
    out << " [" << c.tx_packets << "/" << c.rx_packets << "/"
        << c.dropped_packets << "/" << c.deadline_misses << "]";

  // The storm must not have broken the degradation contract or the tables.
  EXPECT_EQ(rs.guarantee_revocations, 0u);
  std::string why;
  EXPECT_TRUE(rig.admission.audit_tables(&why)) << why;
  return out.str();
}

TEST(FaultRecovery, SameSeedStormReplaysBitIdentically) {
  const auto a = storm_fingerprint(29);
  const auto b = storm_fingerprint(29);
  EXPECT_EQ(a, b);
  const auto c = storm_fingerprint(30);
  EXPECT_NE(a, c) << "different seed should perturb the run";
}

// --------------------------------------------------------------------------
// Graceful degradation at the admission level.

TEST(GracefulDegradation, ShedsBestEffortFirstAndNeverGuaranteed) {
  auto graph = network::gen::single_switch(/*hosts=*/4);
  subnet::SubnetManager sm(graph);
  qos::AdmissionControl::Config ac;
  ac.seed = 3;
  qos::AdmissionControl admission(graph, sm.routes(), qos::paper_catalogue(),
                                  ac);
  const auto hosts = graph.hosts();

  // A guaranteed baseline connection that must survive everything.
  qos::ConnectionRequest keeper;
  keeper.src_host = hosts[0];
  keeper.dst_host = hosts[1];
  keeper.sl = 8;
  keeper.max_distance =
      qos::find_sl(admission.catalogue(), 8)->max_distance;
  keeper.wire_mbps = 60;
  const auto keeper_id = admission.request(keeper);
  ASSERT_TRUE(keeper_id.has_value());

  // Saturate the same path with best-effort reservations.
  std::vector<qos::ConnectionId> be;
  for (int i = 0; i < 1000; ++i) {
    qos::ConnectionRequest req;
    req.src_host = hosts[0];
    req.dst_host = hosts[1];
    req.sl = static_cast<iba::ServiceLevel>(10 + i % 3);
    req.wire_mbps = 90;
    const auto id = admission.request_best_effort(req);
    if (!id) break;
    be.push_back(*id);
  }
  ASSERT_GE(be.size(), 3u) << "path never saturated";

  // A straight request now fails...
  qos::ConnectionRequest req = keeper;
  req.sl = 9;
  req.max_distance = qos::find_sl(admission.catalogue(), 9)->max_distance;
  req.wire_mbps = 120;
  ASSERT_FALSE(admission.request(req).has_value());

  // ...but the degrading request sheds best-effort load and succeeds.
  const auto result = admission.request_degrading(req);
  ASSERT_TRUE(result.id.has_value());
  EXPECT_FALSE(result.shed.empty());
  for (const auto id : result.shed) {
    EXPECT_FALSE(admission.is_live(id));
    const auto cat = admission.connection(id).category;
    EXPECT_TRUE(cat == qos::TrafficCategory::kPbe ||
                cat == qos::TrafficCategory::kBe ||
                cat == qos::TrafficCategory::kCh)
        << "shed a guaranteed-class connection";
  }
  EXPECT_TRUE(admission.is_live(*keeper_id))
      << "degradation revoked a guaranteed connection";
  EXPECT_TRUE(admission.is_live(*result.id));
  std::string why;
  EXPECT_TRUE(admission.audit_tables(&why)) << why;
}

}  // namespace
}  // namespace ibarb::faults
