#include <gtest/gtest.h>

#include "traffic/besteffort.hpp"
#include "traffic/cbr.hpp"
#include "traffic/vbr.hpp"
#include "traffic/workload.hpp"

#include "network/topology.hpp"

namespace ibarb::traffic {
namespace {

TEST(IntervalForRate, FullLinkEqualsSerialization) {
  EXPECT_EQ(interval_for_rate(282, iba::kBaseLinkMbps), 282u);
}

TEST(IntervalForRate, ScalesInverselyWithRate) {
  EXPECT_EQ(interval_for_rate(282, 1000.0), 564u);
  EXPECT_EQ(interval_for_rate(282, 1.0), 564000u);
}

TEST(IntervalForRate, RejectsNonPositiveRate) {
  EXPECT_THROW(interval_for_rate(100, 0.0), std::invalid_argument);
  EXPECT_THROW(interval_for_rate(100, -2.0), std::invalid_argument);
}

TEST(WireRate, AccountsForOverhead) {
  EXPECT_DOUBLE_EQ(wire_rate_for_payload_rate(256.0, 256), 282.0);
  EXPECT_NEAR(wire_rate_for_payload_rate(100.0, 4096), 100.6, 0.1);
}

TEST(MakeCbr, FieldsAndOversend) {
  const auto a = make_cbr_flow(1, 2, 3, 256, 10.0, 999, 7);
  EXPECT_EQ(a.kind, sim::GeneratorKind::kCbr);
  EXPECT_EQ(a.sl, 3);
  EXPECT_EQ(a.payload_bytes, 256u);
  EXPECT_EQ(a.deadline, 999u);
  EXPECT_TRUE(a.qos);
  const auto b = make_cbr_flow(1, 2, 3, 256, 10.0, 999, 7, /*oversend=*/2.0);
  EXPECT_NEAR(static_cast<double>(a.interval) / b.interval, 2.0, 0.01);
}

TEST(MakeVbr, ShapeParameters) {
  const auto v = make_vbr_flow(1, 2, 4, 512, 8.0, 100, 3, 0.5, 12.0);
  EXPECT_EQ(v.kind, sim::GeneratorKind::kOnOffVbr);
  EXPECT_DOUBLE_EQ(v.on_fraction, 0.5);
  EXPECT_DOUBLE_EQ(v.burst_mean_packets, 12.0);
}

TEST(MakeBestEffort, IsPoissonNonQos) {
  const auto f = make_besteffort_flow(1, 2, 11, 256, 50.0, 9);
  EXPECT_EQ(f.kind, sim::GeneratorKind::kPoisson);
  EXPECT_FALSE(f.qos);
  EXPECT_EQ(f.deadline, 0u);
}

class WorkloadFixture : public ::testing::Test {
 protected:
  WorkloadFixture()
      : graph_(network::gen::irregular(spec())),
        routes_(network::compute_routes(graph_)),
        admission_(graph_, routes_, qos::paper_catalogue(), acfg()),
        sim_(graph_, routes_, sim::SimConfig{}) {}

  static network::IrregularSpec spec() {
    network::IrregularSpec s;
    s.switches = 8;
    s.seed = 33;
    return s;
  }
  static qos::AdmissionControl::Config acfg() {
    qos::AdmissionControl::Config c;
    c.seed = 33;
    return c;
  }

  network::FabricGraph graph_;
  network::Routes routes_;
  qos::AdmissionControl admission_;
  sim::Simulator sim_;
};

TEST_F(WorkloadFixture, FillsNetworkUntilSaturation) {
  WorkloadConfig cfg;
  cfg.seed = 5;
  cfg.besteffort_load = 0.0;
  const auto w = build_paper_workload(graph_, routes_, admission_, sim_, cfg);
  EXPECT_GT(w.accepted, 100u) << "expected a well-loaded 8-switch network";
  EXPECT_GT(w.offered, w.accepted) << "saturation implies rejections";
  EXPECT_EQ(w.connections.size(), w.accepted);
  EXPECT_TRUE(admission_.check_all_invariants());
  // Flows registered one-to-one with accepted connections.
  EXPECT_EQ(sim_.metrics().connections.size(), w.accepted);
}

TEST_F(WorkloadFixture, ConnectionsRespectTheirSlRanges) {
  WorkloadConfig cfg;
  cfg.seed = 6;
  cfg.besteffort_load = 0.0;
  const auto w = build_paper_workload(graph_, routes_, admission_, sim_, cfg);
  const auto cat = qos::paper_catalogue();
  for (const auto& c : w.connections) {
    const auto* p = qos::find_sl(cat, c.sl);
    ASSERT_NE(p, nullptr);
    EXPECT_GE(c.payload_mbps, p->min_mbps);
    EXPECT_LE(c.payload_mbps, p->max_mbps);
    EXPECT_GT(c.wire_mbps, c.payload_mbps);  // overhead included
    EXPECT_GT(c.deadline, 0u);
    EXPECT_GE(c.stages, 2u);  // host + at least one switch
  }
}

TEST_F(WorkloadFixture, EverySlGetsConnections) {
  WorkloadConfig cfg;
  cfg.seed = 7;
  cfg.besteffort_load = 0.0;
  const auto w = build_paper_workload(graph_, routes_, admission_, sim_, cfg);
  std::array<unsigned, 10> per_sl{};
  for (const auto& c : w.connections) {
    ASSERT_LT(c.sl, 10);
    ++per_sl[c.sl];
  }
  for (unsigned sl = 0; sl < 10; ++sl)
    EXPECT_GT(per_sl[sl], 0u) << "SL " << sl << " never admitted";
}

TEST_F(WorkloadFixture, BestEffortFlowsAdded) {
  WorkloadConfig cfg;
  cfg.seed = 8;
  cfg.besteffort_load = 0.1;
  const auto w = build_paper_workload(graph_, routes_, admission_, sim_, cfg);
  // 3 background flows per host on top of the QoS flows.
  EXPECT_EQ(sim_.metrics().connections.size(),
            w.accepted + 3 * graph_.hosts().size());
  unsigned be = 0;
  for (const auto& c : sim_.metrics().connections)
    if (!c.qos) ++be;
  EXPECT_EQ(be, 3 * graph_.hosts().size());
}

TEST_F(WorkloadFixture, DeterministicForSeed) {
  WorkloadConfig cfg;
  cfg.seed = 9;
  cfg.besteffort_load = 0.0;
  const auto a = build_paper_workload(graph_, routes_, admission_, sim_, cfg);

  // Fresh state, same seed.
  qos::AdmissionControl admission2(graph_, routes_, qos::paper_catalogue(),
                                   acfg());
  sim::Simulator sim2(graph_, routes_, sim::SimConfig{});
  const auto b = build_paper_workload(graph_, routes_, admission2, sim2, cfg);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_DOUBLE_EQ(a.reserved_wire_mbps, b.reserved_wire_mbps);
}

TEST_F(WorkloadFixture, OversendFactorShortensIntervals) {
  WorkloadConfig cfg;
  cfg.seed = 10;
  cfg.besteffort_load = 0.0;
  cfg.oversend_sl_mask = 1u << 9;
  cfg.oversend_factor = 3.0;
  const auto w = build_paper_workload(graph_, routes_, admission_, sim_, cfg);
  // Compare a compliant run with the oversending one: SL9 flows must be
  // ~3x faster; reservations unchanged.
  qos::AdmissionControl admission2(graph_, routes_, qos::paper_catalogue(),
                                   acfg());
  sim::Simulator sim2(graph_, routes_, sim::SimConfig{});
  WorkloadConfig honest = cfg;
  honest.oversend_sl_mask = 0;
  const auto v = build_paper_workload(graph_, routes_, admission2, sim2,
                                      honest);
  ASSERT_EQ(w.accepted, v.accepted);
  for (std::size_t i = 0; i < w.connections.size(); ++i) {
    if (w.connections[i].sl != 9) continue;
    const auto fast = sim_.metrics().connections[w.connections[i].flow];
    const auto slow = sim2.metrics().connections[v.connections[i].flow];
    EXPECT_NEAR(static_cast<double>(slow.nominal_iat) / fast.nominal_iat, 3.0,
                0.05);
  }
}

}  // namespace
}  // namespace ibarb::traffic
