#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace ibarb::sim {
namespace {

Event at(iba::Cycle t) {
  Event e;
  e.time = t;
  return e;
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push(at(30));
  q.push(at(10));
  q.push(at(20));
  EXPECT_EQ(q.pop().time, 10u);
  EXPECT_EQ(q.pop().time, 20u);
  EXPECT_EQ(q.pop().time, 30u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesAreFifo) {
  EventQueue q;
  for (std::uint32_t i = 0; i < 10; ++i) {
    Event e = at(5);
    e.aux = i;
    q.push(e);
  }
  for (std::uint32_t i = 0; i < 10; ++i) {
    const auto e = q.pop();
    EXPECT_EQ(e.time, 5u);
    EXPECT_EQ(e.aux, i) << "same-cycle events must keep insertion order";
  }
}

TEST(EventQueue, MixedTimesAndTies) {
  EventQueue q;
  Event a = at(7);
  a.aux = 1;
  Event b = at(3);
  b.aux = 2;
  Event c = at(7);
  c.aux = 3;
  q.push(a);
  q.push(b);
  q.push(c);
  EXPECT_EQ(q.pop().aux, 2u);
  EXPECT_EQ(q.pop().aux, 1u);
  EXPECT_EQ(q.pop().aux, 3u);
}

TEST(EventQueue, SizeTracksContents) {
  EventQueue q;
  EXPECT_EQ(q.size(), 0u);
  q.push(at(1));
  q.push(at(2));
  EXPECT_EQ(q.size(), 2u);
  q.pop();
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, TopDoesNotPop) {
  EventQueue q;
  q.push(at(9));
  EXPECT_EQ(q.top().time, 9u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, PacketPayloadSurvives) {
  EventQueue q;
  Event e = at(4);
  e.type = EventType::kLinkDeliver;
  e.packet.id = 1234;
  e.packet.payload_bytes = 256;
  q.push(e);
  const auto out = q.pop();
  EXPECT_EQ(out.packet.id, 1234u);
  EXPECT_EQ(out.packet.payload_bytes, 256u);
}

// --- Differential suite: wheel vs legacy heap vs a reference model ---------
//
// Both implementations must produce the exact same (time, insertion-order)
// event sequence under any interleaving of pushes and pops — that equality is
// what lets benches diff old-vs-new queue runs byte-for-byte.

/// Runs the same operation script against both implementations and a sorted
/// reference, then checks all three agree on every popped (time, aux) pair.
/// A script step with `pop == false` pushes an event at `time`; `pop == true`
/// pops (skipped when empty).
struct Step {
  bool pop = false;
  iba::Cycle time = 0;
};

void run_differential(const std::vector<Step>& script) {
  EventQueue wheel(EventQueueImpl::kWheel);
  EventQueue heap(EventQueueImpl::kBinaryHeap);
  std::vector<std::pair<iba::Cycle, std::uint32_t>> reference;  // unpopped
  std::uint32_t stamp = 0;
  std::size_t checked = 0;

  for (const Step& s : script) {
    if (!s.pop) {
      Event e = at(s.time);
      e.aux = stamp++;
      wheel.push(e);
      heap.push(e);
      reference.emplace_back(s.time, e.aux);
      continue;
    }
    if (reference.empty()) {
      EXPECT_TRUE(wheel.empty());
      EXPECT_TRUE(heap.empty());
      continue;
    }
    // Reference order: earliest time, ties by insertion stamp. aux stamps
    // increase monotonically, so min over (time, aux) is exactly that.
    const auto it = std::min_element(reference.begin(), reference.end());
    const Event w = wheel.pop();
    const Event h = heap.pop();
    ASSERT_EQ(w.time, it->first) << "wheel time diverged at pop " << checked;
    ASSERT_EQ(w.aux, it->second) << "wheel order diverged at pop " << checked;
    ASSERT_EQ(h.time, it->first) << "heap time diverged at pop " << checked;
    ASSERT_EQ(h.aux, it->second) << "heap order diverged at pop " << checked;
    ASSERT_EQ(w.seq, h.seq) << "sequence stamps diverged at pop " << checked;
    reference.erase(it);
    ++checked;
  }
  while (!reference.empty()) {
    const auto it = std::min_element(reference.begin(), reference.end());
    const Event w = wheel.pop();
    const Event h = heap.pop();
    ASSERT_EQ(w.aux, it->second);
    ASSERT_EQ(h.aux, it->second);
    reference.erase(it);
  }
  EXPECT_TRUE(wheel.empty());
  EXPECT_TRUE(heap.empty());
}

TEST(EventQueueDifferential, RandomizedPushPop) {
  util::Xoshiro256 rng(404);
  std::vector<Step> script;
  iba::Cycle now = 0;
  for (int i = 0; i < 20'000; ++i) {
    if (rng.chance(0.45)) {
      script.push_back(Step{true, 0});
      now += static_cast<iba::Cycle>(rng.below(40));
    } else {
      // Mostly near-future times; `now` only advances so some pushes land
      // behind the wheel's sliding window (the defensive overflow path).
      script.push_back(
          Step{false, now + static_cast<iba::Cycle>(rng.below(5'000))});
    }
  }
  run_differential(script);
}

TEST(EventQueueDifferential, SameCycleTieStorm) {
  // Bursts of dozens of events on one cycle, interleaved with pops — the
  // crossbar-completion pattern where FIFO-within-cycle is load-bearing.
  util::Xoshiro256 rng(405);
  std::vector<Step> script;
  for (iba::Cycle t = 100; t < 2'000; t += 100) {
    const auto burst = 20 + rng.below(40);
    for (std::uint64_t i = 0; i < burst; ++i) script.push_back(Step{false, t});
    for (std::uint64_t i = 0; i < burst / 2; ++i)
      script.push_back(Step{true, 0});
  }
  run_differential(script);
}

TEST(EventQueueDifferential, FarFutureOverflow) {
  // Events beyond the 2^16-cycle wheel horizon must overflow to the heap yet
  // merge back into the global order once the window reaches them.
  util::Xoshiro256 rng(406);
  std::vector<Step> script;
  for (int i = 0; i < 3'000; ++i) {
    const auto r = rng.uniform();
    iba::Cycle t;
    if (r < 0.5) {
      t = rng.below(1u << 16);                       // in-window
    } else if (r < 0.8) {
      t = (1u << 16) + rng.below(1u << 18);          // beyond horizon
    } else {
      t = (1u << 20) + rng.below(1u << 22);          // far future
    }
    script.push_back(Step{false, t});
    if (rng.chance(0.4)) script.push_back(Step{true, 0});
  }
  run_differential(script);
}

TEST(EventQueueDifferential, DrainAndRefillCrossesTheHorizon) {
  // Repeated full drains force the wheel's base to slide far, so refills
  // exercise bucket reuse after wrap-around.
  util::Xoshiro256 rng(407);
  std::vector<Step> script;
  iba::Cycle base = 0;
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 500; ++i)
      script.push_back(
          Step{false, base + static_cast<iba::Cycle>(rng.below(90'000))});
    for (int i = 0; i < 500; ++i) script.push_back(Step{true, 0});
    base += 70'000;  // next round starts past most of the previous window
  }
  run_differential(script);
}

}  // namespace
}  // namespace ibarb::sim
