#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace ibarb::sim {
namespace {

Event at(iba::Cycle t) {
  Event e;
  e.time = t;
  return e;
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push(at(30));
  q.push(at(10));
  q.push(at(20));
  EXPECT_EQ(q.pop().time, 10u);
  EXPECT_EQ(q.pop().time, 20u);
  EXPECT_EQ(q.pop().time, 30u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesAreFifo) {
  EventQueue q;
  for (std::uint32_t i = 0; i < 10; ++i) {
    Event e = at(5);
    e.aux = i;
    q.push(e);
  }
  for (std::uint32_t i = 0; i < 10; ++i) {
    const auto e = q.pop();
    EXPECT_EQ(e.time, 5u);
    EXPECT_EQ(e.aux, i) << "same-cycle events must keep insertion order";
  }
}

TEST(EventQueue, MixedTimesAndTies) {
  EventQueue q;
  Event a = at(7);
  a.aux = 1;
  Event b = at(3);
  b.aux = 2;
  Event c = at(7);
  c.aux = 3;
  q.push(a);
  q.push(b);
  q.push(c);
  EXPECT_EQ(q.pop().aux, 2u);
  EXPECT_EQ(q.pop().aux, 1u);
  EXPECT_EQ(q.pop().aux, 3u);
}

TEST(EventQueue, SizeTracksContents) {
  EventQueue q;
  EXPECT_EQ(q.size(), 0u);
  q.push(at(1));
  q.push(at(2));
  EXPECT_EQ(q.size(), 2u);
  q.pop();
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, TopDoesNotPop) {
  EventQueue q;
  q.push(at(9));
  EXPECT_EQ(q.top().time, 9u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, PacketPayloadSurvives) {
  EventQueue q;
  Event e = at(4);
  e.type = EventType::kLinkDeliver;
  e.packet.id = 1234;
  e.packet.payload_bytes = 256;
  q.push(e);
  const auto out = q.pop();
  EXPECT_EQ(out.packet.id, 1234u);
  EXPECT_EQ(out.packet.payload_bytes, 256u);
}

}  // namespace
}  // namespace ibarb::sim
