#include "qos/deadline.hpp"

#include <gtest/gtest.h>

namespace ibarb::qos {
namespace {

TEST(Deadline, PerSwitchFormula) {
  // d entries x 255 weight x 64 bytes of link time.
  EXPECT_EQ(per_switch_deadline(2), 2u * 255u * 64u);
  EXPECT_EQ(per_switch_deadline(64), 64u * 255u * 64u);
}

TEST(Deadline, EndToEndScalesWithStages) {
  EXPECT_EQ(end_to_end_deadline(8, 4), 4u * per_switch_deadline(8));
  EXPECT_EQ(end_to_end_deadline(8, 1), per_switch_deadline(8));
}

TEST(Deadline, DistanceForDeadlinePicksLargestAdmissible) {
  EXPECT_EQ(distance_for_deadline(per_switch_deadline(16)), 16u);
  EXPECT_EQ(distance_for_deadline(per_switch_deadline(16) + 1), 16u);
  EXPECT_EQ(distance_for_deadline(per_switch_deadline(32) - 1), 16u);
  EXPECT_EQ(distance_for_deadline(per_switch_deadline(64) * 10), 64u);
}

TEST(Deadline, InfeasibleDeadlineGivesZero) {
  EXPECT_EQ(distance_for_deadline(per_switch_deadline(2) - 1), 0u);
  EXPECT_EQ(distance_for_deadline(0), 0u);
}

TEST(Deadline, E2eVariantDividesByStages) {
  const auto d = per_switch_deadline(8);
  EXPECT_EQ(distance_for_e2e_deadline(d * 4, 4), 8u);
  EXPECT_EQ(distance_for_e2e_deadline(d * 4, 8), 4u);
  EXPECT_EQ(distance_for_e2e_deadline(d, 0), 0u);
}

TEST(Deadline, RoundTripDistanceDeadlineDistance) {
  for (unsigned d = 2; d <= 64; d *= 2)
    EXPECT_EQ(distance_for_deadline(per_switch_deadline(d)), d);
}

}  // namespace
}  // namespace ibarb::qos
