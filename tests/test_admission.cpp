#include "qos/admission.hpp"

#include <gtest/gtest.h>

#include "arbtable/entry_set.hpp"
#include "network/topology.hpp"

namespace ibarb::qos {
namespace {

AdmissionControl::Config cfg() {
  AdmissionControl::Config c;
  c.seed = 5;
  return c;
}

struct Fixture {
  network::FabricGraph graph;
  network::Routes routes;

  explicit Fixture(network::FabricGraph g)
      : graph(std::move(g)), routes(network::compute_routes(graph)) {}
};

ConnectionRequest req(iba::NodeId src, iba::NodeId dst, iba::ServiceLevel sl,
                      unsigned distance, double mbps) {
  ConnectionRequest r;
  r.src_host = src;
  r.dst_host = dst;
  r.sl = sl;
  r.max_distance = distance;
  r.wire_mbps = mbps;
  return r;
}

TEST(Admission, ReservesOnEveryHop) {
  Fixture f(network::gen::line(3, 1));
  AdmissionControl ac(f.graph, f.routes, paper_catalogue(), cfg());
  const auto hosts = f.graph.hosts();
  const auto id = ac.request(req(hosts[0], hosts[2], 2, 8, 10.0));
  ASSERT_TRUE(id.has_value());
  const auto& conn = ac.connection(*id);
  EXPECT_EQ(conn.hops.size(), 4u);  // host + 3 switches
  for (const auto& hop : conn.hops) {
    const auto& m = ac.port_manager(hop.port.node, hop.port.port);
    EXPECT_DOUBLE_EQ(m.reserved_mbps(), 10.0);
    EXPECT_EQ(m.table().vl_weight_high(2),
              hop.requirement.total_weight);
  }
  EXPECT_TRUE(ac.check_all_invariants());
}

TEST(Admission, DeadlineUsesPathLength) {
  Fixture f(network::gen::line(4, 1));
  AdmissionControl ac(f.graph, f.routes, paper_catalogue(), cfg());
  const auto hosts = f.graph.hosts();
  const auto near = ac.request(req(hosts[0], hosts[1], 3, 16, 4.0));
  const auto far = ac.request(req(hosts[0], hosts[3], 3, 16, 4.0));
  ASSERT_TRUE(near && far);
  EXPECT_EQ(ac.connection(*near).deadline, end_to_end_guarantee(16, 3));
  EXPECT_EQ(ac.connection(*far).deadline, end_to_end_guarantee(16, 5));
}

TEST(Admission, RejectionRollsBackAllHops) {
  Fixture f(network::gen::line(2, 2));
  AdmissionControl ac(f.graph, f.routes, paper_catalogue(), cfg());
  const auto hosts = f.graph.hosts();  // h0,h1 on sw0; h2,h3 on sw1
  // Saturate the trunk: 1600 Mbps reservable on the sw0->sw1 port.
  ASSERT_TRUE(ac.request(req(hosts[0], hosts[2], 9, 64, 900.0)).has_value());
  ASSERT_TRUE(ac.request(req(hosts[1], hosts[3], 9, 64, 650.0)).has_value());
  // This one fits its host interface but not the trunk -> must roll back.
  const auto before = ac.port_manager(hosts[0], 0).reserved_mbps();
  EXPECT_FALSE(ac.request(req(hosts[0], hosts[3], 9, 64, 200.0)).has_value());
  EXPECT_DOUBLE_EQ(ac.port_manager(hosts[0], 0).reserved_mbps(), before);
  EXPECT_EQ(ac.rejected(), 1u);
  EXPECT_TRUE(ac.check_all_invariants());
}

TEST(Admission, ReleaseFreesEveryHop) {
  Fixture f(network::gen::line(3, 1));
  AdmissionControl ac(f.graph, f.routes, paper_catalogue(), cfg());
  const auto hosts = f.graph.hosts();
  const auto id = ac.request(req(hosts[0], hosts[2], 4, 32, 6.0));
  ASSERT_TRUE(id.has_value());
  const auto hops = ac.connection(*id).hops;
  ac.release(*id);
  EXPECT_FALSE(ac.is_live(*id));
  for (const auto& hop : hops) {
    const auto& m = ac.port_manager(hop.port.node, hop.port.port);
    EXPECT_DOUBLE_EQ(m.reserved_mbps(), 0.0);
    EXPECT_EQ(m.free_entries(), 64u);
  }
  EXPECT_THROW(ac.release(*id), std::invalid_argument);
}

TEST(Admission, SameSlConnectionsShareEntriesAcrossTheFabric) {
  Fixture f(network::gen::single_switch(4));
  AdmissionControl ac(f.graph, f.routes, paper_catalogue(), cfg());
  const auto hosts = f.graph.hosts();
  // Two SL7 connections into the same destination share the switch port's
  // sequence (accumulated weight), not two separate sequences.
  ASSERT_TRUE(ac.request(req(hosts[0], hosts[3], 7, 64, 2.0)).has_value());
  ASSERT_TRUE(ac.request(req(hosts[1], hosts[3], 7, 64, 2.0)).has_value());
  const auto up = f.graph.host_uplink(hosts[3]);
  const auto& m = ac.port_manager(up.node, up.port);
  EXPECT_EQ(m.live_sequences(), 1u);
  EXPECT_EQ(m.stats().shares, 1u);
}

TEST(Admission, DistanceGuaranteeHoldsOnEveryHopTable) {
  Fixture f(network::gen::line(3, 1));
  AdmissionControl ac(f.graph, f.routes, paper_catalogue(), cfg());
  const auto hosts = f.graph.hosts();
  const auto id = ac.request(req(hosts[0], hosts[2], 0, 2, 1.5));
  ASSERT_TRUE(id.has_value());
  for (const auto& hop : ac.connection(*id).hops) {
    const auto& table =
        ac.port_manager(hop.port.node, hop.port.port).table().high();
    EXPECT_LE(arbtable::max_gap_for_vl(table, 0), 2u);
  }
}

TEST(Admission, ThrowsOnBestEffortSl) {
  Fixture f(network::gen::single_switch(2));
  AdmissionControl ac(f.graph, f.routes, paper_catalogue(), cfg());
  const auto hosts = f.graph.hosts();
  EXPECT_THROW(ac.request(req(hosts[0], hosts[1], 11, 64, 1.0)),
               std::invalid_argument);
}

TEST(Admission, LegacySchemePutsDbInLowTable) {
  Fixture f(network::gen::single_switch(3));
  auto c = cfg();
  c.scheme = Scheme::kLegacy;
  AdmissionControl ac(f.graph, f.routes, paper_catalogue(), c);
  const auto hosts = f.graph.hosts();
  // SL7 is DB -> low table under the legacy scheme.
  const auto db = ac.request(req(hosts[0], hosts[2], 7, 64, 5.0));
  ASSERT_TRUE(db.has_value());
  // SL2 is DBTS -> still high table.
  const auto dbts = ac.request(req(hosts[1], hosts[2], 2, 8, 5.0));
  ASSERT_TRUE(dbts.has_value());
  const auto up = f.graph.host_uplink(hosts[2]);
  const auto& m = ac.port_manager(up.node, up.port);
  EXPECT_GT(m.table().vl_weight_low(7), 0u);
  EXPECT_EQ(m.table().vl_weight_high(7), 0u);
  EXPECT_GT(m.table().vl_weight_high(2), 0u);
  ac.release(*db);
  EXPECT_EQ(m.table().vl_weight_low(7), 0u);
  EXPECT_TRUE(ac.check_all_invariants());
}

TEST(Admission, NewSchemePutsEverythingInHighTable) {
  Fixture f(network::gen::single_switch(3));
  AdmissionControl ac(f.graph, f.routes, paper_catalogue(), cfg());
  const auto hosts = f.graph.hosts();
  ASSERT_TRUE(ac.request(req(hosts[0], hosts[2], 7, 64, 5.0)).has_value());
  const auto up = f.graph.host_uplink(hosts[2]);
  const auto& m = ac.port_manager(up.node, up.port);
  EXPECT_GT(m.table().vl_weight_high(7), 0u);
  // Only the static best-effort entries occupy the low table.
  EXPECT_EQ(m.table().vl_weight_low(7), 0u);
}

TEST(Admission, ProgramConfiguresSimulatorPorts) {
  Fixture f(network::gen::single_switch(2));
  AdmissionControl ac(f.graph, f.routes, paper_catalogue(), cfg());
  const auto hosts = f.graph.hosts();
  ASSERT_TRUE(ac.request(req(hosts[0], hosts[1], 3, 16, 8.0)).has_value());
  sim::Simulator s(f.graph, f.routes, sim::SimConfig{});
  ac.program(s);
  const auto up = f.graph.host_uplink(hosts[1]);
  const auto id = s.flat_port_id(up.node, up.port);
  EXPECT_DOUBLE_EQ(s.metrics().ports[id].reserved_mbps, 8.0);
}

TEST(Admission, EightyPercentCapAcrossManyConnections) {
  Fixture f(network::gen::single_switch(2));
  AdmissionControl ac(f.graph, f.routes, paper_catalogue(), cfg());
  const auto hosts = f.graph.hosts();
  double total = 0.0;
  for (int i = 0; i < 2000; ++i) {
    if (ac.request(req(hosts[0], hosts[1], 7, 64, 4.0)).has_value())
      total += 4.0;
  }
  EXPECT_LE(total, 0.8 * 2000.0 + 1e-9);
  EXPECT_GT(total, 0.8 * 2000.0 - 8.0);  // fills right up to the cap
}

}  // namespace
}  // namespace ibarb::qos
