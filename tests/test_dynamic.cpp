#include "qos/dynamic.hpp"

#include <gtest/gtest.h>

#include "network/topology.hpp"
#include "qos/traffic_classes.hpp"

namespace ibarb::qos {
namespace {

struct Fixture {
  network::FabricGraph graph;
  network::Routes routes;
  AdmissionControl admission;
  sim::Simulator sim;
  DynamicScenario scenario;

  explicit Fixture(network::FabricGraph g)
      : graph(std::move(g)),
        routes(network::compute_routes(graph)),
        admission(graph, routes, paper_catalogue(), {}),
        sim(graph, routes, sim::SimConfig{}),
        scenario(sim, admission) {}
};

ScheduledConnection conn(iba::Cycle arrive, iba::Cycle depart, iba::NodeId src,
                         iba::NodeId dst, iba::ServiceLevel sl,
                         unsigned distance, double mbps) {
  ScheduledConnection sc;
  sc.arrive = arrive;
  sc.depart = depart;
  sc.request.src_host = src;
  sc.request.dst_host = dst;
  sc.request.sl = sl;
  sc.request.max_distance = distance;
  sc.request.wire_mbps = mbps;
  return sc;
}

TEST(DynamicScenario, AdmitsRunsAndReleases) {
  Fixture f(network::gen::single_switch(3));
  const auto hosts = f.graph.hosts();
  const auto i = f.scenario.add(
      conn(1000, 2'000'000, hosts[0], hosts[1], 2, 8, 10.0));
  f.sim.metrics().start_window(0);
  f.scenario.run_until(3'000'000);

  const auto& sc = f.scenario.entry(i);
  EXPECT_EQ(sc.state, ScheduledConnection::State::kDeparted);
  ASSERT_TRUE(sc.flow.has_value());
  const auto& c = f.sim.metrics().connections[*sc.flow];
  // 10 Mbps of 282 B wire packets for 2M cycles ~ 35 packets.
  EXPECT_GT(c.rx_packets, 30u);
  EXPECT_EQ(c.deadline_misses, 0u);
  EXPECT_EQ(f.scenario.admitted(), 1u);
  EXPECT_EQ(f.scenario.released(), 1u);
  // Table fully free again on every hop.
  const auto up = f.graph.host_uplink(hosts[1]);
  EXPECT_EQ(f.admission.port_manager(up.node, up.port).free_entries(), 64u);
}

TEST(DynamicScenario, GeneratorStopsAtDeparture) {
  Fixture f(network::gen::single_switch(3));
  const auto hosts = f.graph.hosts();
  const auto i =
      f.scenario.add(conn(0, 500'000, hosts[0], hosts[1], 7, 64, 20.0));
  f.sim.metrics().start_window(0);
  f.scenario.run_until(500'000);
  const auto tx_at_departure =
      f.sim.metrics().connections[*f.scenario.entry(i).flow].tx_packets;
  f.scenario.run_until(2'000'000);
  const auto tx_after =
      f.sim.metrics().connections[*f.scenario.entry(i).flow].tx_packets;
  EXPECT_EQ(tx_after, tx_at_departure);
}

TEST(DynamicScenario, RejectedWhenFullThenAdmittedAfterDepartures) {
  Fixture f(network::gen::single_switch(3));
  const auto hosts = f.graph.hosts();
  // Two fat connections saturate the 80% cap of host0's interface...
  f.scenario.add(conn(0, 900'000, hosts[0], hosts[1], 9, 64, 800.0));
  f.scenario.add(conn(0, iba::kNeverCycle, hosts[0], hosts[2], 9, 64, 790.0));
  // ...so this arrival must be rejected...
  const auto blocked =
      f.scenario.add(conn(400'000, iba::kNeverCycle, hosts[0], hosts[1], 9,
                          64, 100.0));
  // ...but an identical one after the departure is admitted.
  const auto late =
      f.scenario.add(conn(1'000'000, iba::kNeverCycle, hosts[0], hosts[1], 9,
                          64, 100.0));
  f.scenario.run_until(1'500'000);
  EXPECT_EQ(f.scenario.entry(blocked).state,
            ScheduledConnection::State::kRejected);
  EXPECT_EQ(f.scenario.entry(late).state,
            ScheduledConnection::State::kActive);
  EXPECT_EQ(f.scenario.rejected(), 1u);
}

TEST(DynamicScenario, DefragHappensLiveAndStrictRequestFitsAfterChurn) {
  Fixture f(network::gen::single_switch(3));
  const auto hosts = f.graph.hosts();
  // Four distance-4 sequences (heavy enough not to share) fill the table of
  // host0's interface; free two of them, then a distance-2 request arrives.
  for (int k = 0; k < 4; ++k) {
    const iba::Cycle depart =
        (k % 2 == 0) ? 600'000 + 1000 * k : iba::kNeverCycle;
    f.scenario.add(
        conn(0, depart, hosts[0], hosts[1 + k % 2], 1, 4, 390.0));
  }
  const auto strict = f.scenario.add(
      conn(1'000'000, iba::kNeverCycle, hosts[0], hosts[2], 0, 2, 100.0));
  f.scenario.run_until(1'200'000);

  // 4 x 390 exceeds the 1600 Mbps cap: the 4th arrival is rejected, so the
  // count checks admission and bandwidth interplay too.
  EXPECT_GE(f.scenario.admitted(), 3u);
  EXPECT_EQ(f.scenario.entry(strict).state,
            ScheduledConnection::State::kActive)
      << "defragmentation must have made a distance-2 sequence possible";
  const auto up = f.graph.host_uplink(hosts[0]);
  (void)up;
  const auto& manager = f.admission.port_manager(hosts[0], 0);
  EXPECT_GT(manager.stats().defrag_runs, 0u);
  std::string why;
  EXPECT_TRUE(f.admission.check_all_invariants(&why)) << why;
}

TEST(DynamicScenario, RejectsMalformedScript) {
  Fixture f(network::gen::single_switch(2));
  const auto hosts = f.graph.hosts();
  EXPECT_THROW(
      f.scenario.add(conn(1000, 1000, hosts[0], hosts[1], 2, 8, 1.0)),
      std::invalid_argument);
  f.scenario.run_until(5000);
  EXPECT_THROW(f.scenario.add(conn(10, iba::kNeverCycle, hosts[0], hosts[1],
                                   2, 8, 1.0)),
               std::invalid_argument);
}

TEST(DynamicScenario, GuaranteesHoldAcrossChurn) {
  Fixture f(network::gen::line(3, 2));
  const auto hosts = f.graph.hosts();
  util::Xoshiro256 rng(4);
  const auto catalogue = paper_catalogue();
  std::vector<std::size_t> idx;
  for (int k = 0; k < 30; ++k) {
    const auto src = hosts[rng.below(hosts.size())];
    auto dst = hosts[rng.below(hosts.size())];
    while (dst == src) dst = hosts[rng.below(hosts.size())];
    const iba::Cycle arrive = 10'000 * k;
    const iba::Cycle depart =
        rng.chance(0.5) ? arrive + 300'000 + rng.below(400'000)
                        : iba::kNeverCycle;
    const unsigned dist = 1u << (1 + rng.below(6));  // 2..64
    const auto* profile = pick_sl(catalogue, dist, 4.0);
    ASSERT_NE(profile, nullptr);
    idx.push_back(f.scenario.add(
        conn(arrive, depart, src, dst, profile->sl, profile->max_distance,
             rng.uniform(2.0, 12.0))));
  }
  f.sim.metrics().start_window(0);
  f.scenario.run_until(2'000'000);

  for (const auto i : idx) {
    const auto& sc = f.scenario.entry(i);
    if (!sc.flow) continue;  // rejected arrivals have no traffic
    const auto& c = f.sim.metrics().connections[*sc.flow];
    EXPECT_EQ(c.deadline_misses, 0u)
        << "connection " << i << " missed deadlines during churn";
  }
  std::string why;
  EXPECT_TRUE(f.admission.check_all_invariants(&why)) << why;
}

}  // namespace
}  // namespace ibarb::qos
