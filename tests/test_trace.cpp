#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "network/topology.hpp"
#include "sim/simulator.hpp"

namespace ibarb::sim {
namespace {

iba::Packet pkt(std::uint64_t id, iba::ConnectionId conn = 0) {
  iba::Packet p;
  p.id = id;
  p.connection = conn;
  return p;
}

TEST(PacketTrace, DisabledByDefaultRecordsNothing) {
  PacketTrace t;
  EXPECT_FALSE(t.enabled());
  t.record(1, TraceEvent::kInject, 0, 0, 0, pkt(1));
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.total_recorded(), 0u);
}

TEST(PacketTrace, RecordsInOrder) {
  PacketTrace t(16);
  for (std::uint64_t i = 0; i < 5; ++i)
    t.record(i * 10, TraceEvent::kLinkTx, 1, 2, 3, pkt(i));
  const auto recs = t.chronological();
  ASSERT_EQ(recs.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(recs[i].time, i * 10);
    EXPECT_EQ(recs[i].packet, i);
  }
}

TEST(PacketTrace, RingOverwritesOldest) {
  PacketTrace t(4);
  for (std::uint64_t i = 0; i < 10; ++i)
    t.record(i, TraceEvent::kXbar, 0, 0, 0, pkt(i));
  EXPECT_EQ(t.total_recorded(), 10u);
  const auto recs = t.chronological();
  ASSERT_EQ(recs.size(), 4u);
  EXPECT_EQ(recs.front().packet, 6u);
  EXPECT_EQ(recs.back().packet, 9u);
}

TEST(PacketTrace, JourneyFiltersOnePacket) {
  PacketTrace t(16);
  t.record(0, TraceEvent::kInject, 0, 0, 0, pkt(7));
  t.record(1, TraceEvent::kInject, 0, 0, 0, pkt(8));
  t.record(2, TraceEvent::kDeliver, 1, 0, 0, pkt(7));
  const auto j = t.journey(7);
  ASSERT_EQ(j.size(), 2u);
  EXPECT_EQ(j[0].event, TraceEvent::kInject);
  EXPECT_EQ(j[1].event, TraceEvent::kDeliver);
}

TEST(PacketTrace, CsvDump) {
  PacketTrace t(4);
  t.record(5, TraceEvent::kDeliver, 2, 1, 3, pkt(42, 9));
  std::ostringstream os;
  t.dump_csv(os);
  EXPECT_NE(os.str().find("cycle,event,node"), std::string::npos);
  EXPECT_NE(os.str().find("5,deliver,2,1,3,42,9"), std::string::npos);
}

TEST(PacketTrace, SimulatorJourneyIsPhysicallyOrdered) {
  const auto g = network::gen::line(3, 1);
  const auto routes = network::compute_routes(g);
  SimConfig cfg;
  cfg.trace_capacity = 4096;
  Simulator sim(g, routes, cfg);
  iba::VlArbitrationTable table;
  table.high()[0] = iba::ArbTableEntry{0, 100};
  for (iba::NodeId n = 0; n < g.node_count(); ++n) {
    const unsigned ports = g.is_switch(n) ? g.port_count(n) : 1;
    for (unsigned p = 0; p < ports; ++p)
      if (g.peer(n, static_cast<iba::PortIndex>(p)))
        sim.set_output_arbitration(n, static_cast<iba::PortIndex>(p), table);
  }
  const auto hosts = g.hosts();
  FlowSpec f;
  f.src_host = hosts[0];
  f.dst_host = hosts[2];  // 4 stages: host + 3 switches
  f.payload_bytes = 256;
  f.interval = 100000;
  sim.add_flow(f);
  sim.run_until(250000);

  // The first generated packet of flow 0 (id = (flow+1)<<32 | sequence+1):
  // inject, then alternating link-tx / xbar along three switches, ending
  // with a delivery; times must be non-decreasing.
  const auto j = sim.trace().journey((1ull << 32) | 1u);
  ASSERT_GE(j.size(), 3u);
  EXPECT_EQ(j.front().event, TraceEvent::kInject);
  EXPECT_EQ(j.back().event, TraceEvent::kDeliver);
  unsigned xbars = 0;
  unsigned txs = 0;
  for (std::size_t i = 1; i < j.size(); ++i) {
    EXPECT_GE(j[i].time, j[i - 1].time);
    if (j[i].event == TraceEvent::kXbar) ++xbars;
    if (j[i].event == TraceEvent::kLinkTx) ++txs;
  }
  EXPECT_EQ(xbars, 3u);  // three switches crossed
  EXPECT_EQ(txs, 4u);    // host link + three switch links
}

}  // namespace
}  // namespace ibarb::sim
