#include "iba/headers.hpp"

#include <gtest/gtest.h>

#include "iba/crc.hpp"
#include "util/rng.hpp"

namespace ibarb::iba {
namespace {

Lrh sample_lrh() {
  Lrh lrh;
  lrh.vl = 5;
  lrh.sl = 9;
  lrh.lnh = Lnh::kBth;
  lrh.dlid = 0x1234;
  lrh.slid = 0xABCD;
  lrh.packet_length = 77;
  return lrh;
}

Bth sample_bth() {
  Bth bth;
  bth.opcode = 0x04;
  bth.solicited_event = true;
  bth.pad_count = 2;
  bth.p_key = 0xFFFF;
  bth.dest_qp = 0x00ABCDEF;
  bth.ack_req = true;
  bth.psn = 0x00123456;
  return bth;
}

TEST(Headers, LrhRoundTrip) {
  const auto lrh = sample_lrh();
  const auto decoded = decode_lrh(encode(lrh));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, lrh);
}

TEST(Headers, BthRoundTrip) {
  const auto bth = sample_bth();
  const auto decoded = decode_bth(encode(bth));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, bth);
}

TEST(Headers, LrhSizesAreSpec) {
  EXPECT_EQ(kLrhBytes, 8u);
  EXPECT_EQ(kBthBytes, 12u);
  // The library-wide overhead constant matches LRH+BTH+ICRC+VCRC.
  EXPECT_EQ(kPacketOverheadBytes, kLrhBytes + kBthBytes + 4 + 2);
}

TEST(Headers, DecodeRejectsBadVersionAndReservedBits) {
  auto bytes = encode(sample_lrh());
  bytes[0] |= 0x01;  // lver != 0
  EXPECT_FALSE(decode_lrh(bytes).has_value());

  auto bytes2 = encode(sample_lrh());
  bytes2[1] |= 0x04;  // reserved bits between SL and LNH
  EXPECT_FALSE(decode_lrh(bytes2).has_value());

  auto bth = encode(sample_bth());
  bth[4] = 1;  // reserved byte before DestQP
  EXPECT_FALSE(decode_bth(bth).has_value());
}

TEST(Headers, DecodeRejectsShortBuffers) {
  const std::uint8_t tiny[3] = {};
  EXPECT_FALSE(decode_lrh(tiny).has_value());
  EXPECT_FALSE(decode_bth(tiny).has_value());
}

TEST(WireFormat, SerializeParseRoundTrip) {
  std::vector<std::uint8_t> payload(256);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i * 7);
  const auto wire = serialize_packet(sample_lrh(), sample_bth(), payload);
  EXPECT_EQ(wire.size(), payload.size() + kPacketOverheadBytes);

  const auto parsed = parse_packet(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->payload, payload);
  EXPECT_EQ(parsed->lrh.dlid, 0x1234);
  EXPECT_EQ(parsed->bth.psn, 0x00123456u);
}

TEST(WireFormat, UnalignedPayloadIsPadded) {
  const std::vector<std::uint8_t> payload(13, 0xAA);
  const auto wire = serialize_packet(sample_lrh(), sample_bth(), payload);
  EXPECT_EQ(wire.size() % 4, 2u);  // body 4-aligned + 2-byte VCRC
  const auto parsed = parse_packet(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->payload, payload);  // pad stripped on parse
  EXPECT_EQ(parsed->bth.pad_count, 3);
}

TEST(WireFormat, CorruptionIsDetectedEverywhere) {
  const std::vector<std::uint8_t> payload(64, 0x5C);
  const auto wire = serialize_packet(sample_lrh(), sample_bth(), payload);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    auto copy = wire;
    copy[i] ^= 0x01;
    EXPECT_FALSE(parse_packet(copy).has_value())
        << "flip at byte " << i << " went undetected";
  }
}

TEST(WireFormat, VlRewriteSurvivesIcrc) {
  // The ICRC masks the VL nibble: a switch re-marking the VL (SLtoVL at
  // each link) must only have to recompute the VCRC, not the ICRC.
  const std::vector<std::uint8_t> payload(32, 1);
  auto wire = serialize_packet(sample_lrh(), sample_bth(), payload);
  wire[0] = static_cast<std::uint8_t>((11 << 4) | (wire[0] & 0x0F));  // VL=11
  // Fix up the VCRC only.
  const auto body = std::span<const std::uint8_t>(wire).first(wire.size() - 2);
  const auto vc = vcrc(body);
  wire[wire.size() - 2] = static_cast<std::uint8_t>(vc >> 8);
  wire[wire.size() - 1] = static_cast<std::uint8_t>(vc);
  const auto parsed = parse_packet(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->lrh.vl, 11);
}

TEST(WireFormat, ParserSurvivesRandomGarbage) {
  util::Xoshiro256 rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> garbage(rng.below(120));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    (void)parse_packet(garbage);  // must not crash; result almost surely null
  }
  SUCCEED();
}

TEST(WireFormat, ToWireMatchesSimulatorAccounting) {
  Packet p;
  p.sl = 3;
  p.source = 7;
  p.destination = 9;
  p.payload_bytes = 256;
  p.sequence = 42;
  const auto wire = to_wire(p);
  EXPECT_EQ(wire.size(), p.wire_bytes());
  const auto parsed = parse_packet(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->lrh.sl, 3);
  EXPECT_EQ(parsed->lrh.slid, 7);
  EXPECT_EQ(parsed->lrh.dlid, 9);
  EXPECT_EQ(parsed->bth.psn, 42u);
  EXPECT_EQ(parsed->payload.size(), 256u);
}

}  // namespace
}  // namespace ibarb::iba
