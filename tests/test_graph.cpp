#include "network/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ibarb::network {
namespace {

TEST(FabricGraph, AddNodes) {
  FabricGraph g;
  const auto s = g.add_switch(8);
  const auto h = g.add_host();
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_TRUE(g.is_switch(s));
  EXPECT_FALSE(g.is_switch(h));
  EXPECT_EQ(g.port_count(s), 8u);
  EXPECT_EQ(g.port_count(h), 1u);
}

TEST(FabricGraph, ConnectWiresBothEnds) {
  FabricGraph g;
  const auto a = g.add_switch(4);
  const auto b = g.add_switch(4);
  g.connect(a, 2, b, 3, iba::Link{iba::LinkRate::k4x, 7});
  const auto pa = g.peer(a, 2);
  const auto pb = g.peer(b, 3);
  ASSERT_TRUE(pa && pb);
  EXPECT_EQ(pa->node, b);
  EXPECT_EQ(pa->port, 3);
  EXPECT_EQ(pb->node, a);
  EXPECT_EQ(pb->port, 2);
  EXPECT_EQ(g.link(a, 2).rate, iba::LinkRate::k4x);
  EXPECT_EQ(g.link(b, 3).propagation_delay, 7u);
}

TEST(FabricGraph, RejectsSelfLink) {
  FabricGraph g;
  const auto a = g.add_switch(4);
  EXPECT_THROW(g.connect(a, 0, a, 1), std::logic_error);
}

TEST(FabricGraph, RejectsDoubleWiring) {
  FabricGraph g;
  const auto a = g.add_switch(4);
  const auto b = g.add_switch(4);
  const auto c = g.add_switch(4);
  g.connect(a, 0, b, 0);
  EXPECT_THROW(g.connect(a, 0, c, 0), std::logic_error);
  EXPECT_THROW(g.connect(c, 1, b, 0), std::logic_error);
}

TEST(FabricGraph, RejectsZeroPortSwitch) {
  FabricGraph g;
  EXPECT_THROW(g.add_switch(0), std::invalid_argument);
}

TEST(FabricGraph, SwitchAndHostLists) {
  FabricGraph g;
  const auto s0 = g.add_switch(4);
  const auto h0 = g.add_host();
  const auto s1 = g.add_switch(4);
  const auto h1 = g.add_host();
  const auto sw = g.switches();
  const auto ho = g.hosts();
  ASSERT_EQ(sw.size(), 2u);
  ASSERT_EQ(ho.size(), 2u);
  EXPECT_EQ(sw[0], s0);
  EXPECT_EQ(sw[1], s1);
  EXPECT_EQ(ho[0], h0);
  EXPECT_EQ(ho[1], h1);
}

TEST(FabricGraph, HostUplink) {
  FabricGraph g;
  const auto s = g.add_switch(4);
  const auto h = g.add_host();
  g.connect(h, 0, s, 2);
  const auto up = g.host_uplink(h);
  EXPECT_EQ(up.node, s);
  EXPECT_EQ(up.port, 2);
  EXPECT_THROW(g.host_uplink(s), std::logic_error);
}

TEST(FabricGraph, UnwiredHostUplinkThrows) {
  FabricGraph g;
  const auto h = g.add_host();
  EXPECT_THROW(g.host_uplink(h), std::logic_error);
}

TEST(FabricGraph, FreePorts) {
  FabricGraph g;
  const auto a = g.add_switch(4);
  const auto b = g.add_switch(4);
  EXPECT_EQ(g.free_ports(a), 4u);
  g.connect(a, 0, b, 0);
  EXPECT_EQ(g.free_ports(a), 3u);
}

TEST(FabricGraph, Connectivity) {
  FabricGraph g;
  EXPECT_TRUE(g.connected());  // vacuous
  const auto a = g.add_switch(4);
  const auto b = g.add_switch(4);
  EXPECT_FALSE(g.connected());
  g.connect(a, 0, b, 0);
  EXPECT_TRUE(g.connected());
  g.add_host();  // unwired host
  EXPECT_FALSE(g.connected());
}

}  // namespace
}  // namespace ibarb::network
