// The string-keyed topology registry (ISSUE 9): the `--topo` grammar, its
// parse-time rejection contract (unknown families/keys fail with the valid
// set, mirroring --crossbar), the per-family defaults, the canonical
// spelling reports echo, and the shapes of the generators it builds —
// including the new large-scale families (k-ary n-tree, dragonfly, 3-D
// torus) at their ISSUE 9 acceptance sizes.
#include "network/registry.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "network/topology.hpp"

namespace ibarb::network {
namespace {

TEST(TopologySpec, BareFamilyParsesWithDefaults) {
  const auto spec = TopologySpec::parse("torus2d");
  EXPECT_EQ(spec.family(), "torus2d");
  EXPECT_FALSE(spec.has("cols"));
  EXPECT_EQ(spec.param("cols"), 4u);  // family default
  EXPECT_EQ(spec.canonical(), "torus2d:cols=4,rows=4,hosts=1,rate=1");
}

TEST(TopologySpec, ExplicitParametersOverrideDefaults) {
  auto spec = TopologySpec::parse("fattree:k=8,n=3");
  EXPECT_TRUE(spec.has("k"));
  EXPECT_EQ(spec.param("k"), 8u);
  EXPECT_EQ(spec.param("n"), 3u);
  EXPECT_EQ(spec.param("rate"), 1u);
  spec.set("rate", 4);
  EXPECT_EQ(spec.canonical(), "fattree:k=8,n=3,rate=4");
}

TEST(TopologySpec, CanonicalIsStableAcrossSpellings) {
  EXPECT_EQ(TopologySpec::parse("torus2d:rows=5,cols=3").canonical(),
            TopologySpec::parse("torus2d:cols=3,rows=5").canonical());
}

TEST(TopologySpec, UnknownFamilyRejectedWithValidList) {
  try {
    TopologySpec::parse("hypercube:d=4");
    FAIL() << "unknown family accepted";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("hypercube"), std::string::npos) << msg;
    EXPECT_NE(msg.find(kTopologyFamilyNames), std::string::npos) << msg;
  }
}

TEST(TopologySpec, UnknownKeyRejectedWithValidKeys) {
  try {
    TopologySpec::parse("torus2d:cols=4,depth=2");
    FAIL() << "unknown key accepted";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("depth"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cols"), std::string::npos)
        << "message must list the valid keys: " << msg;
  }
}

TEST(TopologySpec, MalformedPairsRejected) {
  EXPECT_THROW(TopologySpec::parse("torus2d:cols"), std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("torus2d:cols="), std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("torus2d:cols=four"),
               std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("torus2d:cols=4x"),
               std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse(""), std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("irregular:rate=3"),
               std::invalid_argument);  // rate takes 1|4|12
}

TEST(TopologySpec, FamilyPredicateAndNameList) {
  EXPECT_TRUE(is_topology_family("dragonfly"));
  EXPECT_FALSE(is_topology_family("butterfly"));
  EXPECT_EQ(topology_family_names().size(), 9u);
}

TEST(TopologySpec, EnvReaderFallsBackAndRejects) {
  unsetenv("IBARB_TOPO");
  EXPECT_EQ(topology_spec_from_env().family(), "irregular");
  setenv("IBARB_TOPO", "torus3d:x=3,y=3,z=3", 1);
  EXPECT_EQ(topology_spec_from_env().family(), "torus3d");
  setenv("IBARB_TOPO", "nope", 1);
  try {
    topology_spec_from_env();
    FAIL() << "malformed IBARB_TOPO accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("IBARB_TOPO"), std::string::npos);
  }
  unsetenv("IBARB_TOPO");
}

// --- Generator shapes -----------------------------------------------------

TEST(Generators, EveryFamilyBuildsAndCarriesItsHint) {
  for (const auto family : topology_family_names()) {
    const auto g = TopologySpec::parse(std::string(family)).build();
    EXPECT_GT(g.hosts().size(), 0u) << family;
    EXPECT_TRUE(g.connected()) << family;
    EXPECT_EQ(g.topology_hint().family, family);
  }
}

TEST(Generators, KaryFattreeShape) {
  // k-ary n-tree: n levels of k^(n-1) switches, k^n hosts on the leaves.
  const auto g = TopologySpec::parse("fattree:k=4,n=3").build();
  EXPECT_EQ(g.switches().size(), 3u * 16u);
  EXPECT_EQ(g.hosts().size(), 64u);
  // Leaves carry k hosts + k up links; top level has only k down ports.
  const auto sws = g.switches();
  unsigned leaf_wired = 0;
  for (unsigned p = 0; p < g.port_count(sws[0]); ++p)
    if (g.peer(sws[0], static_cast<iba::PortIndex>(p))) ++leaf_wired;
  EXPECT_EQ(leaf_wired, 8u);
}

TEST(Generators, DragonflyShapeAndDefaults) {
  // Canonical maximal size: g defaults to a*h+1 groups, p to h.
  const auto spec = TopologySpec::parse("dragonfly:a=4,h=2");
  EXPECT_EQ(spec.param("g"), 0u);  // 0 = derive at build
  const auto g = spec.build();
  EXPECT_EQ(g.switches().size(), 4u * 9u);
  EXPECT_EQ(g.hosts().size(), 4u * 9u * 2u);
  // Every router: a-1 local + h global + p host ports, all wired except
  // possibly spare global ports (balanced wiring uses all of them here).
  const auto r0 = g.switches()[0];
  unsigned wired = 0;
  for (unsigned p = 0; p < g.port_count(r0); ++p)
    if (g.peer(r0, static_cast<iba::PortIndex>(p))) ++wired;
  EXPECT_EQ(wired, 3u + 2u + 2u);
}

TEST(Generators, Torus3dShape) {
  const auto g = TopologySpec::parse("torus3d:x=3,y=4,z=5,hosts=2").build();
  EXPECT_EQ(g.switches().size(), 60u);
  EXPECT_EQ(g.hosts().size(), 120u);
  // Every switch has exactly 6 switch neighbours (distinct per dim >= 3).
  for (const auto sw : g.switches()) {
    unsigned nbrs = 0;
    for (unsigned p = 0; p < 6; ++p)
      if (g.peer(sw, static_cast<iba::PortIndex>(p))) ++nbrs;
    EXPECT_EQ(nbrs, 6u) << "switch " << sw;
  }
}

TEST(Generators, AcceptanceSizesBuildFast) {
  // ISSUE 9: structured families must be constructible at 1k-100k hosts.
  const auto dragonfly =
      TopologySpec::parse("dragonfly:a=8,h=4,g=33,p=4").build();
  EXPECT_EQ(dragonfly.hosts().size(), 1056u);
  const auto fattree = TopologySpec::parse("fattree:k=16,n=3").build();
  EXPECT_EQ(fattree.hosts().size(), 4096u);
  EXPECT_EQ(fattree.switches().size(), 768u);
}

TEST(Generators, LinkRateParameterIsApplied) {
  const auto g = TopologySpec::parse("single:hosts=2,rate=12").build();
  const auto up = g.host_uplink(g.hosts()[0]);
  EXPECT_EQ(g.link(up.node, up.port).rate, iba::LinkRate::k12x);
}

// --- Satellite: descriptive validation messages ---------------------------

void expect_message_contains(const char* spec, const char* needle) {
  try {
    TopologySpec::parse(spec).build();
    FAIL() << spec << " accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << spec << " -> " << e.what();
  }
}

TEST(GeneratorValidation, MessagesNameTheOffendingParameter) {
  expect_message_contains("torus2d:cols=2", "cols=2");
  expect_message_contains("torus2d:rows=1", "rows=1");
  expect_message_contains("torus3d:y=2", "y=2");
  expect_message_contains("mesh2d:cols=0", "cols=0");
  expect_message_contains("fattree:k=1", "k=1");
  expect_message_contains("fattree:n=0", "n=0");
  expect_message_contains("dragonfly:a=1", "a=1");
  expect_message_contains("dragonfly:a=2,h=1,g=9", "g=9");
  expect_message_contains("line:switches=0", "switches=0");
}

TEST(GeneratorValidation, IrregularSpecValidated) {
  // ports must exceed hosts-per-switch (each switch needs switch-to-switch
  // links left over), and a single-switch "irregular" fabric is not one.
  expect_message_contains("irregular:hosts=8,ports=8", "hosts_per_switch=8");
  expect_message_contains("irregular:switches=1", "switches=1");
  IrregularSpec spec;
  spec.switches = 1;
  EXPECT_THROW(gen::irregular(spec), std::invalid_argument);
  spec.switches = 16;
  spec.hosts_per_switch = spec.ports_per_switch;
  EXPECT_THROW(gen::irregular(spec), std::invalid_argument);
}

TEST(GeneratorValidation, NodeBudgetGuardsRunawaySpecs) {
  // The budget rejects absurd sizes before allocation, naming the family.
  try {
    TopologySpec::parse("torus3d:x=200,y=200,z=200").build();
    FAIL() << "8M-switch torus accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("torus3d"), std::string::npos);
  }
}

}  // namespace
}  // namespace ibarb::network
