#include "arbtable/bit_reversal.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ibarb::arbtable {
namespace {

TEST(BitReversal, PaperExampleDistance8) {
  // §3.3: for d = 8 the inspection order is 0, 4, 2, 6, 1, 5, 3, 7.
  const unsigned expected[] = {0, 4, 2, 6, 1, 5, 3, 7};
  for (unsigned j = 0; j < 8; ++j) EXPECT_EQ(reverse_bits(j, 3), expected[j]);
}

TEST(BitReversal, ZeroBitsIsIdentityOnZero) {
  EXPECT_EQ(reverse_bits(0, 0), 0u);
}

TEST(BitReversal, SingleBit) {
  EXPECT_EQ(reverse_bits(0, 1), 0u);
  EXPECT_EQ(reverse_bits(1, 1), 1u);
}

TEST(BitReversal, IsAnInvolution) {
  for (unsigned bits = 1; bits <= 6; ++bits)
    for (unsigned v = 0; v < (1u << bits); ++v)
      EXPECT_EQ(reverse_bits(reverse_bits(v, bits), bits), v);
}

TEST(BitReversal, IsAPermutation) {
  for (unsigned bits = 1; bits <= 6; ++bits) {
    std::set<unsigned> seen;
    for (unsigned v = 0; v < (1u << bits); ++v)
      seen.insert(reverse_bits(v, bits));
    EXPECT_EQ(seen.size(), 1u << bits);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), (1u << bits) - 1);
  }
}

TEST(BitReversal, EvenOffsetsComeFirst) {
  // The first half of the bit-reversal order must be the even offsets —
  // this is what preserves distance-2 capability (§3.3).
  for (unsigned bits = 2; bits <= 6; ++bits) {
    const unsigned d = 1u << bits;
    for (unsigned j = 0; j < d / 2; ++j)
      EXPECT_EQ(reverse_bits(j, bits) % 2, 0u)
          << "offset order position " << j << " at distance " << d;
  }
}

TEST(Pow2Helpers, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(63));
}

TEST(Pow2Helpers, Log2) {
  EXPECT_EQ(log2_pow2(1), 0u);
  EXPECT_EQ(log2_pow2(2), 1u);
  EXPECT_EQ(log2_pow2(64), 6u);
}

TEST(Pow2Helpers, FloorPow2) {
  EXPECT_EQ(floor_pow2(1), 1u);
  EXPECT_EQ(floor_pow2(2), 2u);
  EXPECT_EQ(floor_pow2(3), 2u);
  EXPECT_EQ(floor_pow2(63), 32u);
  EXPECT_EQ(floor_pow2(64), 64u);
  EXPECT_EQ(floor_pow2(100), 64u);
}

TEST(Pow2Helpers, CeilPow2) {
  EXPECT_EQ(ceil_pow2(1), 1u);
  EXPECT_EQ(ceil_pow2(2), 2u);
  EXPECT_EQ(ceil_pow2(3), 4u);
  EXPECT_EQ(ceil_pow2(33), 64u);
  EXPECT_EQ(ceil_pow2(64), 64u);
}

}  // namespace
}  // namespace ibarb::arbtable
