// The routing-engine registry (ISSUE 9): the `updown` engine must be
// table-for-table identical to the pre-registry compute_updown_routes pass
// (transliterated below as the oracle), every registered engine must leave
// the channel-dependency graph of every topology it accepts cycle-free
// (Dally/Seitz deadlock freedom), and structure-aware engines must refuse
// graphs without their hint so the SubnetManager can fall back to updown
// on degraded fabrics.
#include "network/routing_engine.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "network/topology.hpp"
#include "network/registry.hpp"
#include "subnet/subnet_manager.hpp"

namespace ibarb::network {
namespace {

constexpr unsigned kUnreached = std::numeric_limits<unsigned>::max();

// --- Oracle: the pre-registry up*/down* pass, kept verbatim ---------------
// This is the exact algorithm `compute_updown_routes` ran before the engine
// registry existed (root = highest-degree switch, BFS levels, per-sink
// down-BFS + up-Dijkstra, all-down preferred when optimal). The refactor
// promised table-for-table identity; this copy is the proof's fixed point.

struct LegacyTable {
  std::vector<iba::NodeId> switch_ids, host_ids;
  std::vector<std::uint32_t> dense;
  std::vector<std::vector<iba::PortIndex>> table;  // [sw][host]
  iba::NodeId root = 0;
  std::vector<unsigned> level;

  bool is_up_hop(iba::NodeId a, iba::NodeId b) const {
    const unsigned la = level[dense[a]], lb = level[dense[b]];
    if (lb != la) return lb < la;
    return b < a;
  }
};

LegacyTable legacy_updown(const FabricGraph& g) {
  LegacyTable r;
  r.switch_ids = g.switches();
  r.host_ids = g.hosts();
  r.dense.assign(g.node_count(), 0);
  for (std::uint32_t i = 0; i < r.switch_ids.size(); ++i)
    r.dense[r.switch_ids[i]] = i;
  for (std::uint32_t i = 0; i < r.host_ids.size(); ++i)
    r.dense[r.host_ids[i]] = i;
  const auto n_sw = r.switch_ids.size();
  const auto n_host = r.host_ids.size();

  r.root = r.switch_ids[0];
  unsigned best_degree = 0;
  for (const auto s : r.switch_ids) {
    unsigned deg = 0;
    for (unsigned p = 0; p < g.port_count(s); ++p) {
      const auto peer = g.peer(s, static_cast<iba::PortIndex>(p));
      if (peer && g.is_switch(peer->node)) ++deg;
    }
    if (deg > best_degree) {
      best_degree = deg;
      r.root = s;
    }
  }

  r.level.assign(n_sw, kUnreached);
  std::queue<iba::NodeId> frontier;
  r.level[r.dense[r.root]] = 0;
  frontier.push(r.root);
  while (!frontier.empty()) {
    const auto at = frontier.front();
    frontier.pop();
    for (unsigned p = 0; p < g.port_count(at); ++p) {
      const auto peer = g.peer(at, static_cast<iba::PortIndex>(p));
      if (!peer || !g.is_switch(peer->node)) continue;
      auto& lvl = r.level[r.dense[peer->node]];
      if (lvl == kUnreached) {
        lvl = r.level[r.dense[at]] + 1;
        frontier.push(peer->node);
      }
    }
  }

  r.table.assign(n_sw, std::vector<iba::PortIndex>(n_host, kNoRoute));
  for (std::uint32_t h = 0; h < n_host; ++h) {
    const auto host = r.host_ids[h];
    const PortRef uplink = g.host_uplink(host);
    const auto sink = uplink.node;
    r.table[r.dense[sink]][h] = uplink.port;

    std::vector<unsigned> down_dist(n_sw, kUnreached);
    std::vector<iba::PortIndex> down_port(n_sw, kNoRoute);
    std::queue<iba::NodeId> bfs;
    down_dist[r.dense[sink]] = 0;
    bfs.push(sink);
    while (!bfs.empty()) {
      const auto x = bfs.front();
      bfs.pop();
      for (unsigned p = 0; p < g.port_count(x); ++p) {
        const auto peer = g.peer(x, static_cast<iba::PortIndex>(p));
        if (!peer || !g.is_switch(peer->node)) continue;
        const auto s = peer->node;
        if (!r.is_up_hop(x, s)) continue;
        if (down_dist[r.dense[s]] != kUnreached) continue;
        down_dist[r.dense[s]] = down_dist[r.dense[x]] + 1;
        down_port[r.dense[s]] = peer->port;
        bfs.push(s);
      }
    }

    std::vector<unsigned> dist(down_dist);
    std::vector<iba::PortIndex> up_port(n_sw, kNoRoute);
    using Item = std::pair<unsigned, iba::NodeId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    for (std::uint32_t s = 0; s < n_sw; ++s)
      if (dist[s] != kUnreached) pq.emplace(dist[s], r.switch_ids[s]);
    while (!pq.empty()) {
      const auto [d, m] = pq.top();
      pq.pop();
      if (d != dist[r.dense[m]]) continue;
      for (unsigned p = 0; p < g.port_count(m); ++p) {
        const auto peer = g.peer(m, static_cast<iba::PortIndex>(p));
        if (!peer || !g.is_switch(peer->node)) continue;
        const auto s = peer->node;
        if (!r.is_up_hop(s, m)) continue;
        if (dist[r.dense[s]] <= d + 1) continue;
        dist[r.dense[s]] = d + 1;
        up_port[r.dense[s]] = peer->port;
        pq.emplace(d + 1, s);
      }
    }

    for (std::uint32_t s = 0; s < n_sw; ++s) {
      const auto sw = r.switch_ids[s];
      if (sw == sink) continue;
      r.table[s][h] =
          down_dist[s] == dist[s] ? down_port[s] : up_port[s];
    }
  }
  return r;
}

void expect_identical_to_legacy(const FabricGraph& g) {
  const auto legacy = legacy_updown(g);
  const auto routes = compute_routes(g, "updown");
  EXPECT_EQ(routes.root(), legacy.root);
  for (std::uint32_t s = 0; s < legacy.switch_ids.size(); ++s) {
    const auto sw = legacy.switch_ids[s];
    EXPECT_EQ(routes.level(sw), legacy.level[s]);
    for (std::uint32_t h = 0; h < legacy.host_ids.size(); ++h) {
      ASSERT_EQ(routes.out_port(sw, legacy.host_ids[h]), legacy.table[s][h])
          << "switch " << sw << " -> host " << legacy.host_ids[h];
    }
  }
}

TEST(UpdownEngine, TableForTableIdenticalToLegacyPassIrregular) {
  for (const std::uint64_t seed : {1u, 7u, 21u, 99u}) {
    IrregularSpec spec;
    spec.switches = 16;
    spec.seed = seed;
    expect_identical_to_legacy(gen::irregular(spec));
  }
}

TEST(UpdownEngine, TableForTableIdenticalToLegacyPassStructured) {
  expect_identical_to_legacy(gen::mesh2d(4, 3, 2));
  expect_identical_to_legacy(gen::torus2d(4, 4, 1));
  expect_identical_to_legacy(gen::fat_tree2(4, 8, 4));
  expect_identical_to_legacy(gen::kary_fattree(4, 2));
  expect_identical_to_legacy(gen::dragonfly(4, 2, 9, 2));
}

TEST(UpdownEngine, DeprecatedShimStillForwards) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const auto g = gen::single_switch(4);
  const auto via_shim = compute_updown_routes(g);
#pragma GCC diagnostic pop
  const auto via_registry = compute_routes(g, "updown");
  for (const auto h : g.hosts())
    EXPECT_EQ(via_shim.out_port(g.switches()[0], h),
              via_registry.out_port(g.switches()[0], h));
}

// --- Registry surface ----------------------------------------------------

TEST(RoutingRegistry, ListsAllEnginesAndRejectsUnknown) {
  const auto& engines = routing_engines();
  ASSERT_EQ(engines.size(), 3u);
  EXPECT_EQ(engines[0]->name(), "updown");
  EXPECT_EQ(engines[1]->name(), "minimal-vl-escape");
  EXPECT_EQ(engines[2]->name(), "fattree-dmodk");
  EXPECT_TRUE(is_routing_engine("updown"));
  EXPECT_FALSE(is_routing_engine("ecmp"));
  try {
    routing_engine("ecmp");
    FAIL() << "unknown engine accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("updown|minimal-vl-escape"),
              std::string::npos)
        << e.what();
  }
}

TEST(RoutingRegistry, EnvSelectionAndRejection) {
  unsetenv("IBARB_ROUTING");
  EXPECT_EQ(routing_engine_from_env(), "updown");
  setenv("IBARB_ROUTING", "fattree-dmodk", 1);
  EXPECT_EQ(routing_engine_from_env(), "fattree-dmodk");
  setenv("IBARB_ROUTING", "bogus", 1);
  try {
    routing_engine_from_env();
    FAIL() << "unknown engine accepted from env";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("IBARB_ROUTING"), std::string::npos);
  }
  unsetenv("IBARB_ROUTING");
}

TEST(RoutingRegistry, StructureAwareEnginesRefuseHintlessGraphs) {
  IrregularSpec spec;
  spec.switches = 8;
  auto g = gen::irregular(spec);
  EXPECT_THROW(compute_routes(g, "minimal-vl-escape"), std::runtime_error);
  EXPECT_THROW(compute_routes(g, "fattree-dmodk"), std::runtime_error);
  // A graph whose hint was stripped (degraded-fabric copies) is refused
  // even if its wiring happens to still be a torus.
  auto torus = gen::torus2d(4, 4, 1);
  torus.set_topology_hint({});
  EXPECT_THROW(compute_routes(torus, "minimal-vl-escape"),
               std::runtime_error);
}

// --- Deadlock freedom: CDG acyclicity over the full registry matrix ------

/// Directed (switch, out-port, VL) channel-dependency acyclicity from the
/// switch-level tables. Paths toward a destination switch form a tree, so
/// the edge set is generated per (source, destination) switch pair without
/// walking paths — this scales to the 4k-host instances below.
bool cdg_acyclic(const Routes& r) {
  const auto& g = r.graph();
  const auto& sws = r.switch_ids();
  std::vector<std::uint32_t> dense(g.node_count(), 0);
  unsigned max_ports = 1;
  for (std::uint32_t i = 0; i < sws.size(); ++i) {
    dense[sws[i]] = i;
    max_ports = std::max(max_ports, g.port_count(sws[i]));
  }
  const auto chan = [&](iba::NodeId sw, iba::PortIndex port,
                        iba::VirtualLane vl) -> std::uint64_t {
    return (std::uint64_t(dense[sw]) * max_ports + port) * r.vl_layers() +
           vl;
  };
  std::unordered_set<std::uint64_t> edges;
  for (const auto t : sws) {
    for (const auto s : sws) {
      if (s == t) continue;
      const auto port = r.switch_out_port(s, t);
      if (port == kNoRoute) continue;
      const auto peer = g.peer(s, port);
      if (!peer || peer->node == t || !g.is_switch(peer->node)) continue;
      const auto next = r.switch_out_port(peer->node, t);
      if (next == kNoRoute) continue;
      edges.insert(chan(s, port, r.switch_vl(s, t)) << 32 |
                   chan(peer->node, next, r.switch_vl(peer->node, t)));
    }
  }
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> adj;
  std::unordered_map<std::uint64_t, std::uint32_t> indeg;
  for (const auto e : edges) {
    const std::uint64_t a = e >> 32, b = e & 0xFFFFFFFFu;
    adj[a].push_back(b);
    ++indeg[b];
    indeg.try_emplace(a, 0);
  }
  std::vector<std::uint64_t> ready;
  for (const auto& [c, d] : indeg)
    if (d == 0) ready.push_back(c);
  std::size_t seen = 0;
  while (!ready.empty()) {
    const auto c = ready.back();
    ready.pop_back();
    ++seen;
    const auto it = adj.find(c);
    if (it == adj.end()) continue;
    for (const auto n : it->second)
      if (--indeg[n] == 0) ready.push_back(n);
  }
  return seen == indeg.size();
}

/// Every route must actually arrive: walk the table hop by hop from each
/// sampled source switch and count hops against a generous diameter bound.
void expect_delivers(const Routes& r, std::size_t max_pairs = 4096) {
  const auto& g = r.graph();
  const auto& hosts = r.host_ids();
  const auto& sws = r.switch_ids();
  const std::size_t stride =
      std::max<std::size_t>(1, sws.size() * hosts.size() / max_pairs);
  std::size_t n = 0;
  for (const auto sw : sws) {
    for (const auto h : hosts) {
      if (n++ % stride != 0) continue;
      iba::NodeId at = sw;
      unsigned hops = 0;
      while (true) {
        const auto port = r.out_port(at, h);
        const auto peer = g.peer(at, port);
        ASSERT_TRUE(peer.has_value());
        if (peer->node == h) break;
        ASSERT_TRUE(g.is_switch(peer->node));
        at = peer->node;
        ASSERT_LT(++hops, sws.size() + 2) << "routing loop toward " << h;
      }
    }
  }
}

struct Combo {
  const char* spec;
  const char* engine;
};

class EngineMatrix : public ::testing::TestWithParam<Combo> {};

TEST_P(EngineMatrix, CdgAcyclicAndDelivers) {
  const auto& [spec, engine] = GetParam();
  const auto g = TopologySpec::parse(spec).build();
  const auto routes = compute_routes(g, engine);
  EXPECT_EQ(routes.engine(), engine);
  EXPECT_TRUE(cdg_acyclic(routes)) << spec << " x " << engine
                                   << ": channel dependency cycle";
  expect_delivers(routes);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, EngineMatrix,
    ::testing::Values(
        // updown accepts every family.
        Combo{"irregular:switches=16,seed=11", "updown"},
        Combo{"irregular:switches=32,seed=3", "updown"},
        Combo{"single", "updown"}, Combo{"line:switches=5", "updown"},
        Combo{"mesh2d:cols=4,rows=3", "updown"},
        Combo{"torus2d:cols=4,rows=4", "updown"},
        Combo{"torus3d:x=3,y=3,z=3", "updown"},
        Combo{"fattree:k=4,n=2", "updown"},
        Combo{"fattree2:spines=4,leaves=8", "updown"},
        Combo{"dragonfly:a=4,h=2", "updown"},
        // minimal-vl-escape: the mesh/torus/dragonfly structures.
        Combo{"mesh2d:cols=5,rows=4", "minimal-vl-escape"},
        Combo{"torus2d:cols=4,rows=4", "minimal-vl-escape"},
        Combo{"torus2d:cols=5,rows=3", "minimal-vl-escape"},
        Combo{"torus3d:x=3,y=4,z=5", "minimal-vl-escape"},
        Combo{"torus3d:x=8,y=8,z=8,hosts=2", "minimal-vl-escape"},
        Combo{"dragonfly:a=4,h=2,g=9,p=2", "minimal-vl-escape"},
        // ISSUE 9 acceptance: the 1k-host dragonfly.
        Combo{"dragonfly:a=8,h=4,g=33,p=4", "minimal-vl-escape"},
        // fattree-dmodk: k-ary n-trees and 2-level spine/leaf.
        Combo{"fattree:k=4,n=2", "fattree-dmodk"},
        Combo{"fattree:k=4,n=3", "fattree-dmodk"},
        Combo{"fattree2:spines=4,leaves=8", "fattree-dmodk"},
        // ISSUE 9 acceptance: the 4k-host fat-tree.
        Combo{"fattree:k=16,n=3", "fattree-dmodk"}),
    [](const auto& info) {
      std::string name = std::string(info.param.spec) + "_" +
                         info.param.engine;
      for (auto& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

// --- Engine-specific properties ------------------------------------------

TEST(MinimalVlEscape, TorusUsesTwoVlLayersAndDatelineVls) {
  const auto g = gen::torus2d(4, 4, 1);
  const auto routes = compute_routes(g, "minimal-vl-escape");
  EXPECT_EQ(routes.vl_layers(), 2u);
  // Some switch pair must ride the escape layer (VL1) and some the dateline
  // layer (VL0) — a torus route set that never crosses a dateline minimally
  // does not exist at this size.
  bool saw_vl0 = false, saw_vl1 = false;
  for (const auto s : routes.switch_ids())
    for (const auto t : routes.switch_ids()) {
      if (s == t) continue;
      const auto vl = routes.switch_vl(s, t);
      saw_vl0 |= vl == 0;
      saw_vl1 |= vl == 1;
    }
  EXPECT_TRUE(saw_vl0);
  EXPECT_TRUE(saw_vl1);
}

TEST(MinimalVlEscape, MeshIsSingleLayerDimensionOrder) {
  const auto g = gen::mesh2d(4, 4, 1);
  const auto routes = compute_routes(g, "minimal-vl-escape");
  EXPECT_EQ(routes.vl_layers(), 1u);
  // Minimality on a mesh: hop count equals Manhattan distance.
  const auto hosts = g.hosts();
  const auto coord = [&](iba::NodeId h) {
    const auto sw = g.host_uplink(h).node;
    return std::pair<unsigned, unsigned>(unsigned(sw) % 4,
                                         unsigned(sw) / 4);
  };
  for (const auto a : hosts)
    for (const auto b : hosts) {
      if (a == b) continue;
      const auto [ax, ay] = coord(a);
      const auto [bx, by] = coord(b);
      const unsigned manhattan =
          (ax > bx ? ax - bx : bx - ax) + (ay > by ? ay - by : by - ay);
      // hops() counts path() entries minus one: the source-host entry plus
      // one entry per switch, so a minimal route is manhattan + 1.
      EXPECT_EQ(routes.hops(a, b), manhattan + 1) << a << "->" << b;
    }
}

TEST(FattreeDmodk, SpreadsDestinationsAcrossUpPorts) {
  const auto g = gen::kary_fattree(4, 3);
  const auto routes = compute_routes(g, "fattree-dmodk");
  // From any leaf switch, destinations behind the other 15 leaves must use
  // all k up ports (d-mod-k: the up port is a function of the destination
  // leaf index, which covers every residue class mod k here).
  const auto leaf = routes.switch_ids()[0];
  std::unordered_set<unsigned> up_ports_used;
  for (const auto h : g.hosts()) {
    if (g.host_uplink(h).node == leaf) continue;
    up_ports_used.insert(routes.out_port(leaf, h));
  }
  EXPECT_EQ(up_ports_used.size(), 4u);
}

TEST(RoutesTable, FlatTableIsMemoryLeanAtScale) {
  // ISSUE 9 acceptance: destination-switch CSR keeps a 4k-host fat-tree
  // table under a megabyte (the per-host table it replaced needed
  // n_sw x n_host = 3.1 MB of ports alone).
  const auto g = TopologySpec::parse("fattree:k=16,n=3").build();
  const auto routes = compute_routes(g, "fattree-dmodk");
  EXPECT_EQ(g.hosts().size(), 4096u);
  EXPECT_LT(routes.table_bytes(), 1'000'000u);
  // hops() walks the table without materializing the path.
  const auto a = g.hosts().front(), b = g.hosts().back();
  EXPECT_EQ(routes.hops(a, b), routes.path(a, b).size() - 1);
}

// --- Degraded-fabric fallback --------------------------------------------

TEST(SubnetManagerFallback, StructureAwareEngineFallsBackToUpdownOnFault) {
  const auto g = gen::torus2d(4, 4, 1);
  subnet::SubnetManager sm(g, "minimal-vl-escape");
  EXPECT_EQ(sm.routing_engine(), "minimal-vl-escape");
  EXPECT_EQ(sm.routes().vl_layers(), 2u);

  sim::Simulator sim(g, sm.routes(), {});
  // Kill one torus ring link: the degraded copy carries no hint, the
  // structured engine refuses it, and the manager reroutes with updown.
  const auto sw = g.switches()[0];
  const auto report = sm.resweep(sim, {{sw, 0}});
  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(report.routes_changed);
  EXPECT_EQ(sm.routing_engine(), "updown");
  EXPECT_TRUE(sm.routes().has_levels());

  // Repair: an empty mask restores the full fabric, but the manager stays
  // on updown (the hintless rebuilt copy is indistinguishable from an
  // irregular fabric — re-selecting the structured engine would guess).
  const auto repaired = sm.resweep(sim, {});
  EXPECT_TRUE(repaired.routes_changed);
  EXPECT_EQ(sm.routing_engine(), "updown");
}

}  // namespace
}  // namespace ibarb::network
