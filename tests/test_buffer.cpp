#include "sim/buffer.hpp"

#include <gtest/gtest.h>

namespace ibarb::sim {
namespace {

iba::Packet pkt(std::uint32_t payload, std::uint64_t id = 0) {
  iba::Packet p;
  p.id = id;
  p.payload_bytes = payload;
  return p;
}

TEST(VlFifo, FifoOrder) {
  VlFifo f;
  f.push(pkt(100, 1));
  f.push(pkt(100, 2));
  EXPECT_EQ(f.pop().id, 1u);
  EXPECT_EQ(f.pop().id, 2u);
}

TEST(VlFifo, ByteAccounting) {
  VlFifo f;
  f.set_capacity(1000);
  f.push(pkt(100));  // wire 126
  EXPECT_EQ(f.used_bytes(), 126u);
  EXPECT_TRUE(f.can_accept(874));
  EXPECT_FALSE(f.can_accept(875));
  f.pop();
  EXPECT_EQ(f.used_bytes(), 0u);
}

TEST(VlFifo, UnboundedByDefault) {
  VlFifo f;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(f.can_accept(1u << 20));
    f.push(pkt(1u << 20));
  }
  EXPECT_EQ(f.size(), 100u);
}

TEST(PortBuffers, OccupancyMaskTracksVls) {
  PortBuffers b;
  EXPECT_TRUE(b.all_empty());
  b.push(3, pkt(10));
  b.push(7, pkt(10));
  EXPECT_EQ(b.occupancy(), (1u << 3) | (1u << 7));
  b.pop(3);
  EXPECT_EQ(b.occupancy(), 1u << 7);
  b.pop(7);
  EXPECT_TRUE(b.all_empty());
}

TEST(PortBuffers, OccupancyStaysSetWhileNonEmpty) {
  PortBuffers b;
  b.push(2, pkt(10, 1));
  b.push(2, pkt(10, 2));
  b.pop(2);
  EXPECT_EQ(b.occupancy(), 1u << 2);
  b.pop(2);
  EXPECT_EQ(b.occupancy(), 0u);
}

TEST(PortBuffers, PerVlIsolation) {
  PortBuffers b;
  b.set_capacity_all(200);
  b.push(0, pkt(150));  // wire 176 on VL0
  EXPECT_FALSE(b.can_accept(0, 176));
  EXPECT_TRUE(b.can_accept(1, 176));  // VL1 space untouched
}

TEST(PortBuffers, TotalPackets) {
  PortBuffers b;
  b.push(0, pkt(1));
  b.push(5, pkt(1));
  b.push(5, pkt(1));
  EXPECT_EQ(b.total_packets(), 3u);
}

TEST(PortBuffers, FrontPeeksWithoutRemoving) {
  PortBuffers b;
  b.push(4, pkt(10, 42));
  EXPECT_EQ(b.front(4).id, 42u);
  EXPECT_EQ(b.total_packets(), 1u);
}

iba::Packet conn_pkt(std::uint32_t conn, std::uint64_t id) {
  iba::Packet p;
  p.payload_bytes = 100;
  p.connection = conn;
  p.id = id;
  return p;
}

TEST(VlFifo, ExtractConnectionRemovesOnlyThatFlowInOrder) {
  VlFifo f;
  f.push(conn_pkt(1, 10));
  f.push(conn_pkt(2, 11));
  f.push(conn_pkt(1, 12));
  const auto bytes_before = f.used_bytes();
  auto out = f.extract_connection(1);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 10u);
  EXPECT_EQ(out[1].id, 12u);
  EXPECT_EQ(f.size(), 1u);
  EXPECT_EQ(f.used_bytes(), bytes_before - out[0].wire_bytes() -
                                out[1].wire_bytes());
  EXPECT_EQ(f.pop().id, 11u);
}

TEST(VlFifo, ExtractConnectionNoMatchLeavesQueueIntact) {
  VlFifo f;
  f.push(conn_pkt(1, 10));
  EXPECT_TRUE(f.extract_connection(9).empty());
  EXPECT_EQ(f.size(), 1u);
}

TEST(PortBuffers, ExtractConnectionClearsOccupancyWhenVlDrains) {
  PortBuffers b;
  b.push(2, conn_pkt(5, 1));
  b.push(2, conn_pkt(6, 2));
  EXPECT_EQ(b.extract_connection(2, 5).size(), 1u);
  EXPECT_EQ(b.occupancy(), 1u << 2) << "other flow still queued";
  EXPECT_EQ(b.extract_connection(2, 6).size(), 1u);
  EXPECT_TRUE(b.all_empty()) << "occupancy bit must clear with the VL";
}

}  // namespace
}  // namespace ibarb::sim
