#include "network/topology.hpp"

#include <gtest/gtest.h>

namespace ibarb::network {
namespace {

TEST(Topology, SingleSwitchShape) {
  const auto g = gen::single_switch(4);
  EXPECT_EQ(g.switches().size(), 1u);
  EXPECT_EQ(g.hosts().size(), 4u);
  EXPECT_TRUE(g.connected());
}

TEST(Topology, LineShape) {
  const auto g = gen::line(3, 2);
  EXPECT_EQ(g.switches().size(), 3u);
  EXPECT_EQ(g.hosts().size(), 6u);
  EXPECT_TRUE(g.connected());
}

TEST(Topology, IrregularPaperShape) {
  IrregularSpec spec;
  spec.switches = 16;
  spec.seed = 42;
  const auto g = gen::irregular(spec);
  EXPECT_EQ(g.switches().size(), 16u);
  EXPECT_EQ(g.hosts().size(), 64u);  // 4 hosts per switch
  EXPECT_TRUE(g.connected());
}

TEST(Topology, EverySwitchHasFourHostsAndFourTrunks) {
  IrregularSpec spec;
  spec.switches = 8;
  spec.seed = 9;
  const auto g = gen::irregular(spec);
  for (const auto s : g.switches()) {
    unsigned host_ports = 0;
    unsigned trunk_ports = 0;
    for (unsigned p = 0; p < g.port_count(s); ++p) {
      const auto peer = g.peer(s, static_cast<iba::PortIndex>(p));
      if (!peer) continue;
      (g.is_switch(peer->node) ? trunk_ports : host_ports)++;
    }
    EXPECT_EQ(host_ports, 4u);
    EXPECT_LE(trunk_ports, 4u);
    EXPECT_GE(trunk_ports, 1u);
  }
}

TEST(Topology, DeterministicInSeed) {
  IrregularSpec spec;
  spec.switches = 12;
  spec.seed = 77;
  const auto a = gen::irregular(spec);
  const auto b = gen::irregular(spec);
  ASSERT_EQ(a.node_count(), b.node_count());
  for (iba::NodeId n = 0; n < a.node_count(); ++n) {
    ASSERT_EQ(a.port_count(n), b.port_count(n));
    for (unsigned p = 0; p < a.port_count(n); ++p) {
      const auto pa = a.peer(n, static_cast<iba::PortIndex>(p));
      const auto pb = b.peer(n, static_cast<iba::PortIndex>(p));
      ASSERT_EQ(pa.has_value(), pb.has_value());
      if (pa) {
        EXPECT_EQ(pa->node, pb->node);
        EXPECT_EQ(pa->port, pb->port);
      }
    }
  }
}

TEST(Topology, DifferentSeedsDiffer) {
  IrregularSpec a;
  a.switches = 16;
  a.seed = 1;
  IrregularSpec b = a;
  b.seed = 2;
  const auto ga = gen::irregular(a);
  const auto gb = gen::irregular(b);
  bool differ = false;
  for (iba::NodeId n = 0; n < ga.node_count() && !differ; ++n)
    for (unsigned p = 0; p < ga.port_count(n) && !differ; ++p) {
      const auto pa = ga.peer(n, static_cast<iba::PortIndex>(p));
      const auto pb = gb.peer(n, static_cast<iba::PortIndex>(p));
      if (pa.has_value() != pb.has_value()) differ = true;
      else if (pa && (pa->node != pb->node || pa->port != pb->port))
        differ = true;
    }
  EXPECT_TRUE(differ);
}

TEST(Topology, PaperSizesAllConnected) {
  for (const unsigned n : {8u, 16u, 32u, 64u}) {
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
      IrregularSpec spec;
      spec.switches = n;
      spec.seed = seed;
      const auto g = gen::irregular(spec);
      EXPECT_TRUE(g.connected()) << n << " switches, seed " << seed;
      EXPECT_EQ(g.hosts().size(), 4u * n);
    }
  }
}

TEST(Topology, NoSelfLinks) {
  IrregularSpec spec;
  spec.switches = 16;
  spec.seed = 5;
  const auto g = gen::irregular(spec);
  for (iba::NodeId n = 0; n < g.node_count(); ++n)
    for (unsigned p = 0; p < g.port_count(n); ++p) {
      const auto peer = g.peer(n, static_cast<iba::PortIndex>(p));
      if (peer) EXPECT_NE(peer->node, n);
    }
}

TEST(Topology, RejectsBadSpecs) {
  IrregularSpec spec;
  spec.switches = 1;
  EXPECT_THROW(gen::irregular(spec), std::invalid_argument);
  spec.switches = 4;
  spec.hosts_per_switch = 8;  // no trunk ports left
  EXPECT_THROW(gen::irregular(spec), std::invalid_argument);
  EXPECT_THROW(gen::single_switch(9, 8), std::invalid_argument);
  EXPECT_THROW(gen::line(0), std::invalid_argument);
}

}  // namespace
}  // namespace ibarb::network

namespace ibarb::network {
namespace {

TEST(Mesh2d, ShapeAndConnectivity) {
  const auto g = gen::mesh2d(4, 3, 2);
  EXPECT_EQ(g.switches().size(), 12u);
  EXPECT_EQ(g.hosts().size(), 24u);
  EXPECT_TRUE(g.connected());
  // Corner switch has degree 2 (+hosts), centre degree 4 (+hosts).
  unsigned corner_trunks = 0;
  for (unsigned p = 0; p < 4; ++p)
    if (g.peer(g.switches()[0], static_cast<iba::PortIndex>(p)))
      ++corner_trunks;
  EXPECT_EQ(corner_trunks, 2u);
}

TEST(Torus2d, EverySwitchHasFourTrunks) {
  const auto g = gen::torus2d(3, 3, 1);
  EXPECT_TRUE(g.connected());
  for (const auto s : g.switches()) {
    unsigned trunks = 0;
    for (unsigned p = 0; p < 4; ++p)
      if (g.peer(s, static_cast<iba::PortIndex>(p))) ++trunks;
    EXPECT_EQ(trunks, 4u);
  }
}

TEST(Torus2d, RejectsTooSmall) {
  EXPECT_THROW(gen::torus2d(2, 3, 1), std::invalid_argument);
}

TEST(FatTree, FullBipartiteCore) {
  const auto g = gen::fat_tree2(4, 6, 4);
  EXPECT_EQ(g.switches().size(), 10u);
  EXPECT_EQ(g.hosts().size(), 24u);
  EXPECT_TRUE(g.connected());
  // Every leaf reaches every spine directly.
  const auto sw = g.switches();
  for (unsigned l = 0; l < 6; ++l)
    for (unsigned t = 0; t < 4; ++t) {
      const auto peer = g.peer(sw[4 + l], static_cast<iba::PortIndex>(t));
      ASSERT_TRUE(peer.has_value());
      EXPECT_EQ(peer->node, sw[t]);
    }
}

TEST(Dot, ExportMentionsEveryNodeAndEachCableOnce) {
  const auto g = gen::line(2, 1);
  const auto dot = to_dot(g);
  EXPECT_NE(dot.find("graph fabric"), std::string::npos);
  EXPECT_NE(dot.find("n0"), std::string::npos);
  EXPECT_NE(dot.find("n3"), std::string::npos);
  // 3 cables: sw0-sw1, h-sw0, h-sw1.
  std::size_t edges = 0;
  for (std::size_t at = dot.find(" -- "); at != std::string::npos;
       at = dot.find(" -- ", at + 1))
    ++edges;
  EXPECT_EQ(edges, 3u);
}

}  // namespace
}  // namespace ibarb::network
