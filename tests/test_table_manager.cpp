#include "arbtable/table_manager.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace ibarb::arbtable {
namespace {

TableManager::Config cfg(FillPolicy policy = FillPolicy::kBitReversal,
                         bool defrag = true) {
  TableManager::Config c;
  c.link_data_mbps = 2000.0;
  c.reservable_fraction = 0.8;
  c.policy = policy;
  c.defrag_on_release = defrag;
  c.seed = 11;
  return c;
}

Requirement req_for(double mbps, unsigned distance) {
  const auto r = compute_requirement(mbps, 2000.0, distance);
  EXPECT_TRUE(r.has_value());
  return *r;
}

TEST(TableManager, AllocateWritesSequenceIntoTable) {
  TableManager m(cfg());
  const auto r = req_for(10.0, 8);
  const auto h = m.allocate(3, r, 10.0);
  ASSERT_TRUE(h.has_value());
  const auto& table = m.table().high();
  unsigned active = 0;
  for (const auto& e : table)
    if (e.active()) {
      ++active;
      EXPECT_EQ(e.vl, 3);
      EXPECT_EQ(e.weight, r.weight_per_entry);
    }
  EXPECT_EQ(active, 8u);
  EXPECT_TRUE(m.check_invariants());
  EXPECT_DOUBLE_EQ(m.reserved_mbps(), 10.0);
}

TEST(TableManager, SameSlConnectionsShareSequence) {
  TableManager m(cfg());
  const auto r = req_for(4.0, 16);
  const auto a = m.allocate(2, r, 4.0);
  const auto b = m.allocate(2, r, 4.0);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(*a, *b);  // same sequence handle
  EXPECT_EQ(m.live_sequences(), 1u);
  EXPECT_EQ(m.stats().shares, 1u);
  EXPECT_EQ(m.sequence(*a).connections, 2u);
  EXPECT_EQ(m.sequence(*a).weight_per_entry, 2 * r.weight_per_entry);
  EXPECT_TRUE(m.check_invariants());
}

TEST(TableManager, SharingStopsAtEntryWeightCap) {
  TableManager m(cfg());
  const auto r = req_for(30.0, 64);  // weight 245 on one entry
  const auto a = m.allocate(9, r, 30.0);
  ASSERT_TRUE(a.has_value());
  const auto b = m.allocate(9, r, 30.0);  // 245+245 > 255: new sequence
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(m.live_sequences(), 2u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(TableManager, DifferentVlsNeverShare) {
  TableManager m(cfg());
  const auto r = req_for(1.0, 32);
  const auto a = m.allocate(4, r, 1.0);
  const auto b = m.allocate(5, r, 1.0);
  ASSERT_TRUE(a && b);
  EXPECT_NE(*a, *b);
  EXPECT_EQ(m.live_sequences(), 2u);
}

TEST(TableManager, BandwidthCapRejects) {
  TableManager m(cfg());
  const auto r = req_for(1000.0, 64);
  EXPECT_TRUE(m.allocate(0, r, 1000.0).has_value());
  // 1000 + 700 > 0.8 * 2000.
  const auto r2 = req_for(700.0, 64);
  EXPECT_FALSE(m.allocate(0, r2, 700.0).has_value());
  EXPECT_EQ(m.stats().reject_bandwidth, 1u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(TableManager, EntryExhaustionRejects) {
  TableManager m(cfg());
  // 64 distance-64 sequences on distinct VLs... only 15 data VLs; use the
  // same VL but saturate each entry's weight first so sharing cannot absorb.
  const auto r = req_for(30.0, 64);  // 245 per entry: no two share
  unsigned accepted = 0;
  for (int i = 0; i < 80; ++i)
    if (m.allocate(1, r, 0.1).has_value()) ++accepted;  // tiny mbps: cap easy
  EXPECT_EQ(accepted, 64u);
  EXPECT_GT(m.stats().reject_entries, 0u);
  EXPECT_EQ(m.free_entries(), 0u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(TableManager, ReleaseRestoresEverything) {
  TableManager m(cfg());
  const auto r = req_for(10.0, 8);
  const auto h = m.allocate(3, r, 10.0);
  ASSERT_TRUE(h.has_value());
  m.release(*h, r, 10.0);
  EXPECT_EQ(m.free_entries(), 64u);
  EXPECT_EQ(m.live_sequences(), 0u);
  EXPECT_DOUBLE_EQ(m.reserved_mbps(), 0.0);
  EXPECT_TRUE(m.check_invariants());
}

TEST(TableManager, PartialReleaseKeepsSharedSequence) {
  TableManager m(cfg());
  const auto r = req_for(4.0, 16);
  const auto a = m.allocate(2, r, 4.0);
  const auto b = m.allocate(2, r, 4.0);
  ASSERT_TRUE(a && b);
  m.release(*a, r, 4.0);
  EXPECT_EQ(m.live_sequences(), 1u);
  EXPECT_EQ(m.sequence(*b).connections, 1u);
  EXPECT_EQ(m.sequence(*b).weight_per_entry, r.weight_per_entry);
  EXPECT_TRUE(m.check_invariants());
}

TEST(TableManager, HandlesAreRecycled) {
  TableManager m(cfg());
  const auto r = req_for(30.0, 64);
  const auto a = m.allocate(1, r, 1.0);
  ASSERT_TRUE(a.has_value());
  m.release(*a, r, 1.0);
  const auto b = m.allocate(1, r, 1.0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, *b);
}

TEST(TableManager, LowPriorityConfiguration) {
  TableManager m(cfg());
  const std::vector<std::pair<iba::VirtualLane, std::uint8_t>> low{
      {10, 128}, {11, 64}, {12, 16}};
  m.configure_low_priority(low);
  EXPECT_EQ(m.table().vl_weight_low(10), 128u);
  EXPECT_EQ(m.table().vl_weight_low(11), 64u);
  EXPECT_EQ(m.table().vl_weight_low(12), 16u);
  EXPECT_EQ(m.table().total_weight_low(), 208u);
}

TEST(TableManager, LowWeightAccumulatesAcrossEntries) {
  TableManager m(cfg());
  EXPECT_TRUE(m.add_low_weight(6, 200, 100.0));
  EXPECT_TRUE(m.add_low_weight(6, 100, 20.0));  // 300 spreads over 2 entries
  EXPECT_EQ(m.table().vl_weight_low(6), 300u);
  unsigned entries = 0;
  for (const auto& e : m.table().low())
    if (e.active()) {
      ++entries;
      EXPECT_LE(e.weight, iba::kMaxEntryWeight);
    }
  EXPECT_EQ(entries, 2u);
  m.remove_low_weight(6, 100, 20.0);
  EXPECT_EQ(m.table().vl_weight_low(6), 200u);
  EXPECT_DOUBLE_EQ(m.reserved_mbps(), 100.0);
  EXPECT_TRUE(m.check_invariants());
}

TEST(TableManager, LowTableEntryExhaustionRejects) {
  TableManager m(cfg());
  // 64 entries of 255 fill the low table exactly.
  EXPECT_TRUE(m.add_low_weight(6, 64 * 255, 100.0));
  EXPECT_FALSE(m.add_low_weight(7, 1, 1.0));
  m.remove_low_weight(6, 64 * 255, 100.0);
  EXPECT_TRUE(m.add_low_weight(7, 1, 1.0));
  EXPECT_TRUE(m.check_invariants());
}

TEST(TableManager, LowWeightCountsAgainstBandwidthCap) {
  TableManager m(cfg());
  EXPECT_TRUE(m.add_low_weight(6, 10, 1500.0));
  const auto r = req_for(200.0, 64);
  EXPECT_FALSE(m.allocate(0, r, 200.0).has_value());  // 1500+200 > 1600
}

TEST(TableManager, ScatteredPolicyAllocatesAnyFreeSlots) {
  TableManager m(cfg(FillPolicy::kScattered, false));
  const auto r = req_for(10.0, 8);  // 8 entries
  const auto h = m.allocate(3, r, 10.0);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(m.sequence(*h).distance, 0u);
  EXPECT_EQ(m.sequence(*h).positions.size(), 8u);
  EXPECT_EQ(m.free_entries(), 56u);
  EXPECT_TRUE(m.check_invariants());
}

// Randomized churn property test: thousands of interleaved allocate /
// share / release / defrag steps against a shadow model that predicts the
// manager's exact behaviour — which handle an admission lands on, whether
// it shares or allocates fresh, which rejection counter a refusal hits —
// and revalidates the Theorem-1 free-set invariant plus the full stats
// accounting after every single step.
TEST(TableManagerProperty, RandomChurnPreservesInvariantsAndStats) {
  TableManager m(cfg());  // bit-reversal fill, defrag-on-release
  util::Xoshiro256 rng(20260808);

  struct LiveConn {
    SeqHandle handle = 0;
    iba::VirtualLane vl = 0;
    Requirement req;
    double mbps = 0.0;
  };
  std::vector<LiveConn> live;
  // Shadow of the manager's handle recycling: a LIFO free stack plus the
  // append cursor. Predicts the exact handle of every fresh sequence.
  std::vector<SeqHandle> shadow_free;
  SeqHandle shadow_next = 0;
  TableManager::Stats want{};

  constexpr unsigned kDistances[] = {1, 2, 4, 8, 16, 32, 64};
  for (int step = 0; step < 4000; ++step) {
    std::string why;
    if (!live.empty() && rng.below(10) < 4) {
      // --- Release a random live connection --------------------------------
      const auto idx = rng.below(live.size());
      const LiveConn c = live[idx];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
      m.release(c.handle, c.req, c.mbps);
      ++want.releases;
      const bool was_last =
          std::none_of(live.begin(), live.end(), [&](const LiveConn& o) {
            return o.handle == c.handle;
          });
      if (was_last) {
        // The sequence died: its handle is recycled and defrag runs.
        shadow_free.push_back(c.handle);
        ++want.defrag_runs;
      }
    } else {
      // --- Admit a connection ----------------------------------------------
      const auto vl = static_cast<iba::VirtualLane>(rng.below(6));
      const unsigned dist = kDistances[rng.below(std::size(kDistances))];
      const double mbps = 1.0 + static_cast<double>(rng.below(25));
      const auto req = compute_requirement(mbps, 2000.0, dist);
      ASSERT_TRUE(req.has_value()) << "step " << step;

      // Predict the outcome from the shadow model before touching state.
      const bool over_cap =
          m.reserved_mbps() + mbps > m.reservable_mbps() * (1.0 + 1e-12);
      std::optional<SeqHandle> predicted;
      bool predicted_share = false;
      if (!over_cap) {
        // try_share scans handles in ascending order.
        std::vector<SeqHandle> handles;
        for (const auto& o : live)
          if (std::find(handles.begin(), handles.end(), o.handle) ==
              handles.end())
            handles.push_back(o.handle);
        std::sort(handles.begin(), handles.end());
        for (const auto h : handles) {
          const auto& seq = m.sequence(h);
          if (seq.vl == vl && seq.distance == req->distance &&
              seq.weight_per_entry + req->weight_per_entry <=
                  iba::kMaxEntryWeight) {
            predicted = h;
            predicted_share = true;
            break;
          }
        }
        if (!predicted &&
            m.free_entries() >= iba::kArbTableEntries / req->distance)
          // Theorem 1: enough free entries guarantees a spaced free set.
          predicted = shadow_free.empty() ? shadow_next : shadow_free.back();
      }
      ASSERT_EQ(m.can_admit(vl, *req, mbps), predicted.has_value())
          << "step " << step << ": can_admit disagrees with the shadow model";

      const auto got = m.allocate(vl, *req, mbps);
      ASSERT_EQ(got, predicted) << "step " << step;
      if (got) {
        live.push_back({*got, vl, *req, mbps});
        if (predicted_share) {
          ++want.shares;
        } else {
          ++want.allocations;
          if (shadow_free.empty())
            ++shadow_next;
          else
            shadow_free.pop_back();
        }
      } else if (over_cap) {
        ++want.reject_bandwidth;
      } else {
        ++want.reject_entries;
      }
    }

    // --- Every step: invariants, Theorem 1, exact accounting ---------------
    ASSERT_TRUE(m.check_invariants(&why)) << "step " << step << ": " << why;
    ASSERT_TRUE(m.audit_free_set_optimality(&why))
        << "step " << step << ": " << why;
    const auto& s = m.stats();
    ASSERT_EQ(s.allocations, want.allocations) << "step " << step;
    ASSERT_EQ(s.shares, want.shares) << "step " << step;
    ASSERT_EQ(s.reject_bandwidth, want.reject_bandwidth) << "step " << step;
    ASSERT_EQ(s.reject_entries, want.reject_entries) << "step " << step;
    ASSERT_EQ(s.releases, want.releases) << "step " << step;
    ASSERT_EQ(s.defrag_runs, want.defrag_runs) << "step " << step;
    ASSERT_EQ(m.live_sequences(),
              static_cast<unsigned>([&] {
                std::vector<SeqHandle> h;
                for (const auto& o : live) h.push_back(o.handle);
                std::sort(h.begin(), h.end());
                return std::unique(h.begin(), h.end()) - h.begin();
              }()))
        << "step " << step;
  }
  // Drain everything: the table must return to pristine.
  while (!live.empty()) {
    const LiveConn c = live.back();
    live.pop_back();
    m.release(c.handle, c.req, c.mbps);
  }
  EXPECT_EQ(m.free_entries(), iba::kArbTableEntries);
  EXPECT_EQ(m.live_sequences(), 0u);
  EXPECT_DOUBLE_EQ(m.reserved_mbps(), 0.0);
  EXPECT_TRUE(m.check_invariants());
  EXPECT_TRUE(m.audit_free_set_optimality());
}

TEST(TableManager, InvariantCheckerCatchesCorruption) {
  TableManager m(cfg());
  const auto r = req_for(10.0, 8);
  ASSERT_TRUE(m.allocate(3, r, 10.0).has_value());
  // Corrupt the table behind the manager's back via const_cast (test only).
  auto& table = const_cast<iba::VlArbitrationTable&>(m.table());
  table.high()[0].weight = 0;
  std::string why;
  EXPECT_FALSE(m.check_invariants(&why));
  EXPECT_FALSE(why.empty());
}

}  // namespace
}  // namespace ibarb::arbtable
