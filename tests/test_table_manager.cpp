#include "arbtable/table_manager.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ibarb::arbtable {
namespace {

TableManager::Config cfg(FillPolicy policy = FillPolicy::kBitReversal,
                         bool defrag = true) {
  TableManager::Config c;
  c.link_data_mbps = 2000.0;
  c.reservable_fraction = 0.8;
  c.policy = policy;
  c.defrag_on_release = defrag;
  c.seed = 11;
  return c;
}

Requirement req_for(double mbps, unsigned distance) {
  const auto r = compute_requirement(mbps, 2000.0, distance);
  EXPECT_TRUE(r.has_value());
  return *r;
}

TEST(TableManager, AllocateWritesSequenceIntoTable) {
  TableManager m(cfg());
  const auto r = req_for(10.0, 8);
  const auto h = m.allocate(3, r, 10.0);
  ASSERT_TRUE(h.has_value());
  const auto& table = m.table().high();
  unsigned active = 0;
  for (const auto& e : table)
    if (e.active()) {
      ++active;
      EXPECT_EQ(e.vl, 3);
      EXPECT_EQ(e.weight, r.weight_per_entry);
    }
  EXPECT_EQ(active, 8u);
  EXPECT_TRUE(m.check_invariants());
  EXPECT_DOUBLE_EQ(m.reserved_mbps(), 10.0);
}

TEST(TableManager, SameSlConnectionsShareSequence) {
  TableManager m(cfg());
  const auto r = req_for(4.0, 16);
  const auto a = m.allocate(2, r, 4.0);
  const auto b = m.allocate(2, r, 4.0);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(*a, *b);  // same sequence handle
  EXPECT_EQ(m.live_sequences(), 1u);
  EXPECT_EQ(m.stats().shares, 1u);
  EXPECT_EQ(m.sequence(*a).connections, 2u);
  EXPECT_EQ(m.sequence(*a).weight_per_entry, 2 * r.weight_per_entry);
  EXPECT_TRUE(m.check_invariants());
}

TEST(TableManager, SharingStopsAtEntryWeightCap) {
  TableManager m(cfg());
  const auto r = req_for(30.0, 64);  // weight 245 on one entry
  const auto a = m.allocate(9, r, 30.0);
  ASSERT_TRUE(a.has_value());
  const auto b = m.allocate(9, r, 30.0);  // 245+245 > 255: new sequence
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(m.live_sequences(), 2u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(TableManager, DifferentVlsNeverShare) {
  TableManager m(cfg());
  const auto r = req_for(1.0, 32);
  const auto a = m.allocate(4, r, 1.0);
  const auto b = m.allocate(5, r, 1.0);
  ASSERT_TRUE(a && b);
  EXPECT_NE(*a, *b);
  EXPECT_EQ(m.live_sequences(), 2u);
}

TEST(TableManager, BandwidthCapRejects) {
  TableManager m(cfg());
  const auto r = req_for(1000.0, 64);
  EXPECT_TRUE(m.allocate(0, r, 1000.0).has_value());
  // 1000 + 700 > 0.8 * 2000.
  const auto r2 = req_for(700.0, 64);
  EXPECT_FALSE(m.allocate(0, r2, 700.0).has_value());
  EXPECT_EQ(m.stats().reject_bandwidth, 1u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(TableManager, EntryExhaustionRejects) {
  TableManager m(cfg());
  // 64 distance-64 sequences on distinct VLs... only 15 data VLs; use the
  // same VL but saturate each entry's weight first so sharing cannot absorb.
  const auto r = req_for(30.0, 64);  // 245 per entry: no two share
  unsigned accepted = 0;
  for (int i = 0; i < 80; ++i)
    if (m.allocate(1, r, 0.1).has_value()) ++accepted;  // tiny mbps: cap easy
  EXPECT_EQ(accepted, 64u);
  EXPECT_GT(m.stats().reject_entries, 0u);
  EXPECT_EQ(m.free_entries(), 0u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(TableManager, ReleaseRestoresEverything) {
  TableManager m(cfg());
  const auto r = req_for(10.0, 8);
  const auto h = m.allocate(3, r, 10.0);
  ASSERT_TRUE(h.has_value());
  m.release(*h, r, 10.0);
  EXPECT_EQ(m.free_entries(), 64u);
  EXPECT_EQ(m.live_sequences(), 0u);
  EXPECT_DOUBLE_EQ(m.reserved_mbps(), 0.0);
  EXPECT_TRUE(m.check_invariants());
}

TEST(TableManager, PartialReleaseKeepsSharedSequence) {
  TableManager m(cfg());
  const auto r = req_for(4.0, 16);
  const auto a = m.allocate(2, r, 4.0);
  const auto b = m.allocate(2, r, 4.0);
  ASSERT_TRUE(a && b);
  m.release(*a, r, 4.0);
  EXPECT_EQ(m.live_sequences(), 1u);
  EXPECT_EQ(m.sequence(*b).connections, 1u);
  EXPECT_EQ(m.sequence(*b).weight_per_entry, r.weight_per_entry);
  EXPECT_TRUE(m.check_invariants());
}

TEST(TableManager, HandlesAreRecycled) {
  TableManager m(cfg());
  const auto r = req_for(30.0, 64);
  const auto a = m.allocate(1, r, 1.0);
  ASSERT_TRUE(a.has_value());
  m.release(*a, r, 1.0);
  const auto b = m.allocate(1, r, 1.0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, *b);
}

TEST(TableManager, LowPriorityConfiguration) {
  TableManager m(cfg());
  const std::vector<std::pair<iba::VirtualLane, std::uint8_t>> low{
      {10, 128}, {11, 64}, {12, 16}};
  m.configure_low_priority(low);
  EXPECT_EQ(m.table().vl_weight_low(10), 128u);
  EXPECT_EQ(m.table().vl_weight_low(11), 64u);
  EXPECT_EQ(m.table().vl_weight_low(12), 16u);
  EXPECT_EQ(m.table().total_weight_low(), 208u);
}

TEST(TableManager, LowWeightAccumulatesAcrossEntries) {
  TableManager m(cfg());
  EXPECT_TRUE(m.add_low_weight(6, 200, 100.0));
  EXPECT_TRUE(m.add_low_weight(6, 100, 20.0));  // 300 spreads over 2 entries
  EXPECT_EQ(m.table().vl_weight_low(6), 300u);
  unsigned entries = 0;
  for (const auto& e : m.table().low())
    if (e.active()) {
      ++entries;
      EXPECT_LE(e.weight, iba::kMaxEntryWeight);
    }
  EXPECT_EQ(entries, 2u);
  m.remove_low_weight(6, 100, 20.0);
  EXPECT_EQ(m.table().vl_weight_low(6), 200u);
  EXPECT_DOUBLE_EQ(m.reserved_mbps(), 100.0);
  EXPECT_TRUE(m.check_invariants());
}

TEST(TableManager, LowTableEntryExhaustionRejects) {
  TableManager m(cfg());
  // 64 entries of 255 fill the low table exactly.
  EXPECT_TRUE(m.add_low_weight(6, 64 * 255, 100.0));
  EXPECT_FALSE(m.add_low_weight(7, 1, 1.0));
  m.remove_low_weight(6, 64 * 255, 100.0);
  EXPECT_TRUE(m.add_low_weight(7, 1, 1.0));
  EXPECT_TRUE(m.check_invariants());
}

TEST(TableManager, LowWeightCountsAgainstBandwidthCap) {
  TableManager m(cfg());
  EXPECT_TRUE(m.add_low_weight(6, 10, 1500.0));
  const auto r = req_for(200.0, 64);
  EXPECT_FALSE(m.allocate(0, r, 200.0).has_value());  // 1500+200 > 1600
}

TEST(TableManager, ScatteredPolicyAllocatesAnyFreeSlots) {
  TableManager m(cfg(FillPolicy::kScattered, false));
  const auto r = req_for(10.0, 8);  // 8 entries
  const auto h = m.allocate(3, r, 10.0);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(m.sequence(*h).distance, 0u);
  EXPECT_EQ(m.sequence(*h).positions.size(), 8u);
  EXPECT_EQ(m.free_entries(), 56u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(TableManager, InvariantCheckerCatchesCorruption) {
  TableManager m(cfg());
  const auto r = req_for(10.0, 8);
  ASSERT_TRUE(m.allocate(3, r, 10.0).has_value());
  // Corrupt the table behind the manager's back via const_cast (test only).
  auto& table = const_cast<iba::VlArbitrationTable&>(m.table());
  table.high()[0].weight = 0;
  std::string why;
  EXPECT_FALSE(m.check_invariants(&why));
  EXPECT_FALSE(why.empty());
}

}  // namespace
}  // namespace ibarb::arbtable
