#include "arbtable/fill_algorithm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace ibarb::arbtable {
namespace {

void occupy(iba::ArbTable& table, const EntrySet& set) {
  for (const auto p : set.positions()) table[p] = iba::ArbTableEntry{0, 1};
}

TEST(ScanOrder, BitReversalMatchesPaper) {
  const auto order = scan_order(8, FillPolicy::kBitReversal);
  const std::vector<unsigned> expected{0, 4, 2, 6, 1, 5, 3, 7};
  EXPECT_EQ(order, expected);
}

TEST(ScanOrder, SequentialIsIota) {
  const auto order = scan_order(4, FillPolicy::kSequential);
  const std::vector<unsigned> expected{0, 1, 2, 3};
  EXPECT_EQ(order, expected);
}

TEST(ScanOrder, RandomIsAPermutation) {
  util::Xoshiro256 rng(5);
  const auto order = scan_order(16, FillPolicy::kRandom, &rng);
  std::set<unsigned> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), 16u);
  EXPECT_EQ(*seen.rbegin(), 15u);
}

TEST(ScanOrder, ScatteredHasNoOrder) {
  EXPECT_TRUE(scan_order(8, FillPolicy::kScattered).empty());
}

TEST(FindFreeSet, EmptyTableGivesOffsetZero) {
  iba::ArbTable table{};
  for (unsigned d = 1; d <= 64; d *= 2) {
    const auto set = find_free_set(table, d, FillPolicy::kBitReversal);
    ASSERT_TRUE(set.has_value());
    EXPECT_EQ(set->offset, 0u);
    EXPECT_EQ(set->distance, d);
  }
}

TEST(FindFreeSet, SkipsOccupiedSets) {
  iba::ArbTable table{};
  occupy(table, EntrySet{8, 0});
  occupy(table, EntrySet{8, 4});
  const auto set = find_free_set(table, 8, FillPolicy::kBitReversal);
  ASSERT_TRUE(set.has_value());
  EXPECT_EQ(set->offset, 2u);  // next in bit-reversal order after 0, 4
}

TEST(FindFreeSet, FullTableGivesNothing) {
  iba::ArbTable table{};
  for (auto& e : table) e = iba::ArbTableEntry{0, 1};
  for (unsigned d = 1; d <= 64; d *= 2)
    EXPECT_FALSE(find_free_set(table, d, FillPolicy::kBitReversal));
}

TEST(FindFreeSet, BitReversalPreservesDistance2Capability) {
  // Fill two distance-4 sequences; a distance-2 request must still fit —
  // the core §3.3 property. The sequential baseline fails the same setup.
  iba::ArbTable bitrev{};
  iba::ArbTable seq{};
  for (int k = 0; k < 2; ++k) {
    const auto a = find_free_set(bitrev, 4, FillPolicy::kBitReversal);
    ASSERT_TRUE(a.has_value());
    occupy(bitrev, *a);
    const auto b = find_free_set(seq, 4, FillPolicy::kSequential);
    ASSERT_TRUE(b.has_value());
    occupy(seq, *b);
  }
  // 32 of 64 entries used in both tables.
  EXPECT_EQ(free_entries(bitrev), 32u);
  EXPECT_EQ(free_entries(seq), 32u);
  // Bit-reversal filled offsets 0 and 2 (both even): odd slots stay free and
  // E_{1,1} (distance 2) is available.
  EXPECT_TRUE(find_free_set(bitrev, 2, FillPolicy::kBitReversal).has_value());
  // Sequential filled offsets 0 and 1: every distance-2 set now collides.
  EXPECT_FALSE(find_free_set(seq, 2, FillPolicy::kSequential).has_value());
}

TEST(FindFreeSet, ReturnedSetIsActuallyFree) {
  util::Xoshiro256 rng(99);
  iba::ArbTable table{};
  // Randomly occupy ~half the table.
  for (unsigned p = 0; p < iba::kArbTableEntries; ++p)
    if (rng.chance(0.5)) table[p] = iba::ArbTableEntry{0, 1};
  for (unsigned d = 1; d <= 64; d *= 2) {
    for (const auto policy :
         {FillPolicy::kBitReversal, FillPolicy::kSequential}) {
      if (const auto set = find_free_set(table, d, policy)) {
        EXPECT_TRUE(set_is_free(table, *set));
      }
    }
  }
}

TEST(FindScattered, PicksFirstFreeSlots) {
  iba::ArbTable table{};
  table[0] = iba::ArbTableEntry{0, 1};
  table[2] = iba::ArbTableEntry{0, 1};
  const auto picks = find_scattered(table, 3);
  ASSERT_TRUE(picks.has_value());
  const std::vector<std::uint8_t> expected{1, 3, 4};
  EXPECT_EQ(*picks, expected);
}

TEST(FindScattered, FailsWhenNotEnoughFree) {
  iba::ArbTable table{};
  for (unsigned p = 0; p < 62; ++p) table[p] = iba::ArbTableEntry{0, 1};
  EXPECT_TRUE(find_scattered(table, 2).has_value());
  EXPECT_FALSE(find_scattered(table, 3).has_value());
}

TEST(PolicyNames, AreDistinct) {
  std::set<std::string> names;
  for (const auto p : {FillPolicy::kBitReversal, FillPolicy::kSequential,
                       FillPolicy::kRandom, FillPolicy::kScattered})
    names.insert(to_string(p));
  EXPECT_EQ(names.size(), 4u);
}

}  // namespace
}  // namespace ibarb::arbtable
