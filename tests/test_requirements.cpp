#include "arbtable/requirements.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "arbtable/bit_reversal.hpp"
#include "iba/link.hpp"

namespace ibarb::arbtable {
namespace {

constexpr double kLink = iba::kBaseLinkMbps;  // 2000 Mbps (1x data rate)

TEST(BandwidthToWeight, FullLinkIsFullTable) {
  EXPECT_EQ(bandwidth_to_weight(kLink, kLink), iba::kFullTableWeight);
}

TEST(BandwidthToWeight, TinyRateGetsAtLeastOneUnit) {
  EXPECT_EQ(bandwidth_to_weight(0.0001, kLink), 1u);
  EXPECT_EQ(bandwidth_to_weight(0.0, kLink), 1u);
}

TEST(BandwidthToWeight, ProportionalAndCeiled) {
  // 1 Mbps of 2000 -> 16320/2000 = 8.16 -> 9 units.
  EXPECT_EQ(bandwidth_to_weight(1.0, kLink), 9u);
  // Half the link.
  EXPECT_EQ(bandwidth_to_weight(kLink / 2, kLink), iba::kFullTableWeight / 2);
}

TEST(WeightToBandwidth, InverseOnExactPoints) {
  EXPECT_DOUBLE_EQ(weight_to_bandwidth(iba::kFullTableWeight, kLink), kLink);
  EXPECT_DOUBLE_EQ(weight_to_bandwidth(iba::kFullTableWeight / 2, kLink),
                   kLink / 2);
}

TEST(ComputeRequirement, LatencyDominatedRequest) {
  // 1 Mbps, distance 8: latency needs 8 entries; weight 9 fits in them.
  const auto req = compute_requirement(1.0, kLink, 8);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->distance, 8u);
  EXPECT_EQ(req->entries, 8u);
  EXPECT_EQ(req->weight_per_entry, 2u);  // ceil(9/8)
}

TEST(ComputeRequirement, BandwidthDominatedRequestShrinksDistance) {
  // 500 Mbps -> weight 4080 -> ceil(4080/255) = 16 entries minimum, even
  // though distance 64 would only need one.
  const auto req = compute_requirement(500.0, kLink, 64);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->entries, 16u);
  EXPECT_EQ(req->distance, 4u);
  EXPECT_EQ(req->weight_per_entry, 255u);
}

TEST(ComputeRequirement, EntriesTimesDistanceIsTableSize) {
  for (unsigned d = 1; d <= 64; d *= 2)
    for (const double mbps : {0.5, 1.0, 10.0, 100.0, 900.0}) {
      const auto req = compute_requirement(mbps, kLink, d);
      ASSERT_TRUE(req.has_value());
      EXPECT_EQ(req->entries * req->distance, iba::kArbTableEntries);
      EXPECT_LE(req->distance, d);
      EXPECT_LE(req->weight_per_entry, iba::kMaxEntryWeight);
      EXPECT_GE(req->weight_per_entry, 1u);
    }
}

TEST(ComputeRequirement, NonPowerOfTwoDistanceRoundsDown) {
  const auto req = compute_requirement(1.0, kLink, 50);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->distance, 32u);  // floor_pow2(50)
}

TEST(ComputeRequirement, ReservationCoversRequest) {
  // total reserved weight must represent at least the requested bandwidth.
  for (const double mbps : {0.3, 1.7, 12.0, 64.0, 333.3, 1500.0}) {
    const auto req = compute_requirement(mbps, kLink, 64);
    ASSERT_TRUE(req.has_value());
    EXPECT_GE(weight_to_bandwidth(req->total_weight, kLink), mbps);
  }
}

TEST(ComputeRequirement, InfeasibleBeyondLink) {
  EXPECT_FALSE(compute_requirement(kLink * 1.01, kLink, 64).has_value());
}

TEST(ComputeRequirement, FullLinkIsFeasible) {
  const auto req = compute_requirement(kLink, kLink, 64);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->entries, 64u);
  EXPECT_EQ(req->weight_per_entry, 255u);
}

TEST(ComputeRequirement, FasterLinkNeedsLessWeight) {
  const auto on_1x = compute_requirement(100.0, 2000.0, 64);
  const auto on_4x = compute_requirement(100.0, 8000.0, 64);
  ASSERT_TRUE(on_1x && on_4x);
  EXPECT_GT(on_1x->total_weight, on_4x->total_weight);
}

// Parameterized sweep: distance x bandwidth grid, structural invariants.
class RequirementSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, double>> {};

TEST_P(RequirementSweep, StructurallySound) {
  const auto [distance, mbps] = GetParam();
  const auto req = compute_requirement(mbps, kLink, distance);
  ASSERT_TRUE(req.has_value());
  EXPECT_TRUE(is_pow2(req->distance));
  EXPECT_EQ(req->entries, iba::kArbTableEntries / req->distance);
  EXPECT_EQ(req->total_weight, req->entries * req->weight_per_entry);
  // Latency never degraded, bandwidth never shorted.
  EXPECT_LE(req->distance, distance);
  EXPECT_GE(req->total_weight, bandwidth_to_weight(mbps, kLink));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RequirementSweep,
    ::testing::Combine(::testing::Values(2u, 4u, 8u, 16u, 32u, 64u),
                       ::testing::Values(0.25, 1.0, 4.0, 16.0, 31.9, 128.0,
                                         511.0, 1999.0)));

}  // namespace
}  // namespace ibarb::arbtable
