// The sweep engine's hard requirement (ISSUE 1): running the same sweep
// with any --jobs value yields bit-identical results. Each experiment owns
// every piece of mutable state it touches (graph, RNG streams, simulator,
// metrics), per-run seeds are pure functions of (base seed, run index), and
// aggregation happens in run-index order — so nothing may depend on how the
// runs were scheduled. These tests run one small sweep sequentially and
// once on four lanes and compare every aggregate exactly (no tolerances).
#include <gtest/gtest.h>

#include <cstddef>

#include "sweep_runner.hpp"

namespace ibarb::bench {
namespace {

/// Smallest fabric the generator supports, few packets: the point is
/// scheduling coverage, not statistics.
std::vector<PaperRunConfig> tiny_sweep() {
  PaperRunConfig base;
  base.switches = 2;
  base.min_rx_packets = 5;
  base.warmup = 100'000;
  std::vector<PaperRunConfig> cfgs(4, base);
  cfgs[1].mtu = iba::Mtu::kMtu1024;
  cfgs[2].besteffort_load = 0.0;
  cfgs[3].buffer_packets = 2;
  return cfgs;
}

SweepResult sweep_with_jobs(unsigned jobs) {
  SweepOptions opts;
  opts.jobs = jobs;
  opts.base_seed = 77;  // exercise the SplitMix64 per-run derivation too
  opts.timing = false;
  return run_sweep(tiny_sweep(), opts);
}

void expect_bit_identical(const PaperRun& a, const PaperRun& b) {
  // RunSummary: the full phase protocol must have unfolded identically.
  EXPECT_EQ(a.summary.warmup_end, b.summary.warmup_end);
  EXPECT_EQ(a.summary.window_cycles, b.summary.window_cycles);
  EXPECT_EQ(a.summary.hit_hard_limit, b.summary.hit_hard_limit);
  EXPECT_EQ(a.summary.events, b.summary.events);

  EXPECT_EQ(a.workload.offered, b.workload.offered);
  EXPECT_EQ(a.workload.accepted, b.workload.accepted);

  // Merged per-SL aggregations, exact double equality: identical inputs in
  // identical order must produce identical bits.
  const auto sa = a.per_sl();
  const auto sb = b.per_sl();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t sl = 0; sl < sa.size(); ++sl) {
    EXPECT_EQ(sa[sl].connections, sb[sl].connections);
    EXPECT_EQ(sa[sl].rx_packets, sb[sl].rx_packets);
    EXPECT_EQ(sa[sl].deadline_misses, sb[sl].deadline_misses);
    for (std::size_t k = 0; k < sim::kDelayThresholds; ++k)
      EXPECT_EQ(sa[sl].within[k], sb[sl].within[k]) << "sl " << sl;
    for (std::size_t j = 0; j < sim::kJitterBins; ++j)
      EXPECT_EQ(sa[sl].jitter[j], sb[sl].jitter[j]) << "sl " << sl;
  }

  const auto ta = a.table2();
  const auto tb = b.table2();
  EXPECT_EQ(ta.injected_bytes_per_cycle_per_node,
            tb.injected_bytes_per_cycle_per_node);
  EXPECT_EQ(ta.delivered_bytes_per_cycle_per_node,
            tb.delivered_bytes_per_cycle_per_node);
  EXPECT_EQ(ta.host_utilization, tb.host_utilization);
  EXPECT_EQ(ta.switch_utilization, tb.switch_utilization);
  EXPECT_EQ(ta.host_reserved_mbps, tb.host_reserved_mbps);
  EXPECT_EQ(ta.switch_reserved_mbps, tb.switch_reserved_mbps);
}

TEST(SweepDeterminism, FourJobsMatchesSequentialBitForBit) {
  const auto seq = sweep_with_jobs(1);
  const auto par = sweep_with_jobs(4);
  ASSERT_EQ(seq.runs.size(), par.runs.size());
  EXPECT_EQ(seq.jobs, 1u);
  EXPECT_EQ(par.jobs, 4u);
  for (std::size_t i = 0; i < seq.runs.size(); ++i) {
    SCOPED_TRACE("run " + std::to_string(i));
    ASSERT_NE(seq.runs[i], nullptr);
    ASSERT_NE(par.runs[i], nullptr);
    EXPECT_EQ(seq.runs[i]->cfg.seed, par.runs[i]->cfg.seed);
    expect_bit_identical(*seq.runs[i], *par.runs[i]);
  }
}

TEST(SweepDeterminism, DerivedSeedsAreScheduleFreeAndDistinct) {
  // Pure function of (base, index)...
  EXPECT_EQ(derive_run_seed(77, 3), derive_run_seed(77, 3));
  // ...and distinct across indices and bases (replicas decorrelate).
  EXPECT_NE(derive_run_seed(77, 0), derive_run_seed(77, 1));
  EXPECT_NE(derive_run_seed(77, 0), derive_run_seed(78, 0));
  // Run 0 is NOT the base seed itself: replicas never alias a plain run.
  EXPECT_NE(derive_run_seed(77, 0), 77u);
}

TEST(SweepDeterminism, ConfigSeedsKeptWhenNoBaseSeed) {
  PaperRunConfig base;
  base.switches = 2;
  base.min_rx_packets = 2;
  base.warmup = 50'000;
  base.seed = 4242;
  SweepOptions opts;
  opts.jobs = 2;
  opts.timing = false;
  const auto sweep = run_sweep({base}, opts);
  ASSERT_EQ(sweep.runs.size(), 1u);
  EXPECT_EQ(sweep.runs[0]->cfg.seed, 4242u);
}

}  // namespace
}  // namespace ibarb::bench
