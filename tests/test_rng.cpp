#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

namespace ibarb::util {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(1234);
  SplitMix64 b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, Deterministic) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, ReseedRestartsSequence) {
  Xoshiro256 a(42);
  const auto first = a.next();
  a.next();
  a.reseed(42);
  EXPECT_EQ(a.next(), first);
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Xoshiro256, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256, BelowIsRoughlyUniform) {
  Xoshiro256 rng(11);
  std::array<int, 8> counts{};
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(8)];
  for (const int c : counts) {
    EXPECT_GT(c, kDraws / 8 - 600);
    EXPECT_LT(c, kDraws / 8 + 600);
  }
}

TEST(Xoshiro256, BetweenInclusiveBounds) {
  Xoshiro256 rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Xoshiro256, UniformRange) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(3.0, 7.0);
    ASSERT_GE(u, 3.0);
    ASSERT_LT(u, 7.0);
  }
}

TEST(Xoshiro256, ExponentialHasRequestedMean) {
  Xoshiro256 rng(17);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(25.0);
  EXPECT_NEAR(sum / kDraws, 25.0, 0.5);
}

TEST(Xoshiro256, ExponentialIsNonNegative) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(Xoshiro256, NormalMoments) {
  Xoshiro256 rng(19);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Xoshiro256, ChanceExtremes) {
  Xoshiro256 rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Xoshiro256, SplitProducesIndependentStream) {
  Xoshiro256 parent(29);
  Xoshiro256 child = parent.split();
  // The two streams should not be identical.
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.next() == child.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  SUCCEED();
}

}  // namespace
}  // namespace ibarb::util
