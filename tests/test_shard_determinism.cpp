// The parallel core's determinism contract (ISSUE 7, docs/PARALLEL.md):
// running the same experiment with any --shards value yields byte-identical
// results — same RunSummary, same per-SL aggregations, same telemetry
// envelope (queue.*, xbar.*, credit.* counters included), under both event
// queue implementations. Observers (series sampling, packet tracing, the
// profiler) ride the parallel path on per-shard planes and must stay
// byte-invariant too. The remaining hazards (fault hooks, delivery
// listeners, pending controls, purge barriers) fall back to the sequential
// core with a named reason; an unshardable topology must pin --shards 1
// instead of crashing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>

#include "faults/fault_injector.hpp"
#include "faults/fault_plan.hpp"
#include "faults/recovery.hpp"
#include "network/topology.hpp"
#include "paper_runner.hpp"
#include "qos/admission.hpp"
#include "subnet/subnet_manager.hpp"
#include "traffic/cbr.hpp"
#include "util/json_writer.hpp"

namespace ibarb::bench {
namespace {

/// Paper-shaped but quick: the full 16-switch fabric (so 4 shards own 4
/// switches each and every window crosses shard boundaries), few packets.
PaperRunConfig quick_cfg(unsigned shards) {
  PaperRunConfig c;
  c.switches = 16;
  c.min_rx_packets = 5;
  c.warmup = 100'000;
  c.shards = shards;
  return c;
}

std::string snapshot_json(PaperRun& r) {
  std::ostringstream os;
  util::JsonWriter w(os);
  r.sim->telemetry_snapshot().write_json(w);
  return os.str();
}

void expect_bit_identical(PaperRun& a, PaperRun& b) {
  EXPECT_EQ(a.summary.warmup_end, b.summary.warmup_end);
  EXPECT_EQ(a.summary.window_cycles, b.summary.window_cycles);
  EXPECT_EQ(a.summary.hit_hard_limit, b.summary.hit_hard_limit);
  EXPECT_EQ(a.summary.events, b.summary.events);

  const auto sa = a.per_sl();
  const auto sb = b.per_sl();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t sl = 0; sl < sa.size(); ++sl) {
    EXPECT_EQ(sa[sl].rx_packets, sb[sl].rx_packets) << "sl " << sl;
    EXPECT_EQ(sa[sl].deadline_misses, sb[sl].deadline_misses) << "sl " << sl;
    for (std::size_t k = 0; k < sim::kDelayThresholds; ++k)
      EXPECT_EQ(sa[sl].within[k], sb[sl].within[k]) << "sl " << sl;
    for (std::size_t j = 0; j < sim::kJitterBins; ++j)
      EXPECT_EQ(sa[sl].jitter[j], sb[sl].jitter[j]) << "sl " << sl;
  }

  const auto ta = a.table2();
  const auto tb = b.table2();
  EXPECT_EQ(ta.injected_bytes_per_cycle_per_node,
            tb.injected_bytes_per_cycle_per_node);
  EXPECT_EQ(ta.delivered_bytes_per_cycle_per_node,
            tb.delivered_bytes_per_cycle_per_node);
  EXPECT_EQ(ta.host_utilization, tb.host_utilization);
  EXPECT_EQ(ta.switch_utilization, tb.switch_utilization);

  // The full instrument envelope: every counter, gauge and histogram —
  // event-queue residency, crossbar grants, credit stalls — must match down
  // to the byte, not just the headline aggregations.
  EXPECT_EQ(snapshot_json(a), snapshot_json(b));
}

TEST(ShardDeterminism, ShardedRunsMatchSequentialBitForBit) {
  const auto s1 = run_paper_experiment(quick_cfg(1));
  const auto s2 = run_paper_experiment(quick_cfg(2));
  const auto s4 = run_paper_experiment(quick_cfg(4));
  // The engine really engaged — no silent topology fallback.
  EXPECT_EQ(s1->sim->effective_shards(), 1u);
  EXPECT_EQ(s2->sim->effective_shards(), 2u);
  EXPECT_EQ(s4->sim->effective_shards(), 4u);
  {
    SCOPED_TRACE("shards 1 vs 2");
    expect_bit_identical(*s1, *s2);
  }
  {
    SCOPED_TRACE("shards 1 vs 4");
    expect_bit_identical(*s1, *s4);
  }
}

TEST(ShardDeterminism, HeapEventQueueMatchesToo) {
  // The replayed key order must be total under the binary-heap comparator
  // as well (the wheel buckets by time first; the heap compares (time, seq)
  // directly — both must see the exact sequential order).
  ASSERT_EQ(setenv("IBARB_EVENT_QUEUE", "heap", 1), 0);
  const auto s1 = run_paper_experiment(quick_cfg(1));
  const auto s4 = run_paper_experiment(quick_cfg(4));
  unsetenv("IBARB_EVENT_QUEUE");
  EXPECT_EQ(s4->sim->effective_shards(), 4u);
  expect_bit_identical(*s1, *s4);
}

TEST(ShardDeterminism, ObserversRideTheParallelPathAndStayInvariant) {
  // Series sampling and packet tracing are no longer hazards: each shard
  // records on its own telemetry plane and the orchestrator folds the
  // planes at window barriers in serial-replay order, so the engine stays
  // engaged and the full series (windows, QoS audit, per-SL delay
  // timelines) and the trace ring are invariant in the flag.
  const auto observed_cfg = [](unsigned shards) {
    auto c = quick_cfg(shards);
    c.sample_every = 50'000;
    c.trace_capacity = 1u << 16;
    return c;
  };
  const auto s1 = run_paper_experiment(observed_cfg(1));
  const auto s2 = run_paper_experiment(observed_cfg(2));
  const auto s4 = run_paper_experiment(observed_cfg(4));
  EXPECT_EQ(s2->sim->effective_shards(), 2u);
  EXPECT_EQ(s4->sim->effective_shards(), 4u);
  EXPECT_TRUE(s4->sim->shard_fallback_reason().empty())
      << s4->sim->shard_fallback_reason();
  ASSERT_TRUE(s1->series.has_value());
  ASSERT_TRUE(s2->series.has_value());
  ASSERT_TRUE(s4->series.has_value());
  // Compare the serialized form: per-connection deadline margins are NaN
  // for windows without a delivery, which poisons operator== (NaN != NaN)
  // even on identical data; the JSON writer maps NaN to null.
  const auto series_json = [](const obs::SeriesData& s) {
    std::ostringstream os;
    util::JsonWriter w(os);
    s.write_json(w);
    return os.str();
  };
  const auto trace_csv = [](const PaperRun& r) {
    std::ostringstream os;
    r.sim->trace().dump_csv(os);
    return os.str();
  };
  {
    SCOPED_TRACE("shards 1 vs 2");
    EXPECT_EQ(series_json(*s1->series), series_json(*s2->series));
    EXPECT_EQ(trace_csv(*s1), trace_csv(*s2));
    expect_bit_identical(*s1, *s2);
  }
  {
    SCOPED_TRACE("shards 1 vs 4");
    EXPECT_EQ(series_json(*s1->series), series_json(*s4->series));
    EXPECT_EQ(trace_csv(*s1), trace_csv(*s4));
    expect_bit_identical(*s1, *s4);
  }
}

TEST(ShardDeterminism, FaultHooksFallBackWithNamedReason) {
  // Fault hooks remain a genuine hazard (arbitrary callbacks observe
  // mid-window state): the simulator must take the sequential path and
  // name the hazard via shard_fallback_reason().
  network::FabricGraph g;
  const auto sw = g.add_switch(4);
  const auto sw2 = g.add_switch(4);
  g.connect(sw, 3, sw2, 3);
  for (unsigned h = 0; h < 2; ++h) {
    g.connect(g.add_host(), 0, sw, h);
    g.connect(g.add_host(), 0, sw2, h);
  }
  subnet::SubnetManager sm(g);
  sim::SimConfig cfg;
  cfg.shards = 2;
  sim::Simulator sim(g, sm.routes(), cfg);
  sim::FaultHooks healthy;
  sim.attach_fault_hooks(&healthy);
  sim.run_until(10'000);
  EXPECT_EQ(sim.shard_fallback_reason(), "fault-hooks");
  // Detaching the hooks clears the hazard: the engine engages on the next
  // run_until and the reason resets.
  sim.attach_fault_hooks(nullptr);
  sim.run_until(20'000);
  EXPECT_TRUE(sim.shard_fallback_reason().empty())
      << sim.shard_fallback_reason();
}

// --------------------------------------------------------------------------
// Fault storm: hooks + recovery are hazards, so the sharded run falls back
// to the sequential core — and the whole faulty trajectory (injector and
// coordinator statistics, per-connection outcomes) must not notice the flag.

std::string storm_fingerprint(std::uint64_t seed, unsigned shards) {
  auto graph = network::gen::fat_tree2(/*spines=*/2, /*leaves=*/4,
                                      /*hosts_per_leaf=*/2);
  subnet::SubnetManager sm(graph);
  qos::AdmissionControl::Config acfg;
  acfg.seed = seed;
  qos::AdmissionControl admission(graph, sm.routes(), qos::paper_catalogue(),
                                  acfg);
  sim::SimConfig scfg;
  scfg.seed = seed ^ 0x51Dull;
  scfg.shards = shards;
  sim::Simulator sim(graph, sm.routes(), scfg);

  const auto hosts = graph.hosts();
  std::vector<qos::ConnectionId> ids;
  std::vector<std::uint32_t> flows;
  const auto add = [&](iba::NodeId src, iba::NodeId dst, iba::ServiceLevel sl,
                       std::uint64_t flow_seed) {
    qos::ConnectionRequest req;
    req.src_host = src;
    req.dst_host = dst;
    req.sl = sl;
    req.max_distance = qos::find_sl(admission.catalogue(), sl)->max_distance;
    req.wire_mbps = 30;
    const auto id = admission.request(req);
    ASSERT_TRUE(id.has_value());
    auto spec = traffic::make_cbr_flow(src, dst, sl, /*payload=*/256,
                                       /*wire_mbps=*/30,
                                       admission.connection(*id).deadline,
                                       flow_seed);
    ids.push_back(*id);
    flows.push_back(sim.add_flow(spec));
  };
  add(hosts[0], hosts[3], 8, 300);
  add(hosts[1], hosts[5], 9, 301);
  add(hosts[4], hosts[7], 8, 302);

  faults::StormConfig sc;
  sc.seed = seed * 11 + 1;
  sc.start = 100'000;
  sc.length = 600'000;
  sc.first_flow = flows.front();
  sc.flows = static_cast<std::uint32_t>(flows.size());
  faults::FaultInjector injector(
      sim, graph, faults::FaultPlan::random_storm(graph, sc), seed);
  faults::RecoveryCoordinator coordinator(sim, graph, sm, admission, injector,
                                          faults::RecoveryConfig{});
  for (std::size_t i = 0; i < ids.size(); ++i)
    coordinator.track(ids[i], flows[i]);

  sm.configure_fabric(sim, admission);
  injector.arm();
  sim.metrics().start_window(0);
  sim.run_until(1'000'000);

  std::ostringstream out;
  out << "events=" << sim.events_processed();
  const auto& fs = injector.stats();
  out << " down=" << fs.link_down_events << " up=" << fs.link_up_events
      << " corrupt=" << fs.corrupt_attempts << " rej=" << fs.crc_rejected
      << " drop=" << fs.dropped_packets << " flushed=" << fs.flushed_packets;
  const auto& rs = coordinator.stats();
  out << " resweeps=" << rs.resweeps << " rerouted=" << rs.rerouted
      << " suspended=" << rs.suspended << " restored=" << rs.restored;
  for (const auto& c : sim.metrics().connections)
    out << " [" << c.tx_packets << "/" << c.rx_packets << "/"
        << c.dropped_packets << "/" << c.deadline_misses << "]";
  {
    util::JsonWriter w(out);
    sim.telemetry_snapshot().write_json(w);
  }
  return out.str();
}

TEST(ShardDeterminism, FaultStormIsShardFlagInvariant) {
  const auto sequential = storm_fingerprint(29, 1);
  const auto sharded = storm_fingerprint(29, 4);
  EXPECT_EQ(sequential, sharded);
}

TEST(ShardDeterminism, UnshardableTopologyPinsSequentialFallback) {
  // One switch cannot be partitioned: the simulator must warn once, pin
  // --shards 1 and keep running on the sequential core.
  network::FabricGraph g;
  const auto sw = g.add_switch(4);
  for (unsigned h = 0; h < 2; ++h) {
    const auto host = g.add_host();
    g.connect(host, 0, sw, h);
  }
  subnet::SubnetManager sm(g);
  sim::SimConfig cfg;
  cfg.shards = 4;
  sim::Simulator sim(g, sm.routes(), cfg);
  EXPECT_EQ(sim.effective_shards(), 4u);
  sim.run_until(10'000);
  EXPECT_EQ(sim.effective_shards(), 1u);
  EXPECT_EQ(sim.shard_fallback_reason(), "unshardable-topology");
}

}  // namespace
}  // namespace ibarb::bench
