#include "util/table_printer.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ibarb::util {
namespace {

TEST(TablePrinter, RendersHeaderAndRows) {
  TablePrinter t({"SL", "Distance"});
  t.add_row({"0", "2"});
  t.add_row({"1", "4"});
  std::ostringstream os;
  t.print(os);
  const auto out = os.str();
  EXPECT_NE(out.find("SL"), std::string::npos);
  EXPECT_NE(out.find("Distance"), std::string::npos);
  EXPECT_NE(out.find("| 0"), std::string::npos);
  EXPECT_NE(out.find("| 4"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TablePrinter, ColumnsAlignToWidestCell) {
  TablePrinter t({"a"});
  t.add_row({"wide-cell-content"});
  std::ostringstream os;
  t.print(os);
  // Every line of the box should have equal length.
  std::istringstream in(os.str());
  std::string line;
  std::size_t len = 0;
  while (std::getline(in, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len);
  }
}

TEST(TablePrinter, CsvOutput) {
  TablePrinter t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(TablePrinter, NumFormatsFixedPrecision) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
}

TEST(TablePrinter, PctFormatsFractionAsPercent) {
  EXPECT_EQ(TablePrinter::pct(0.5, 1), "50.0%");
  EXPECT_EQ(TablePrinter::pct(1.0, 0), "100%");
}

}  // namespace
}  // namespace ibarb::util
