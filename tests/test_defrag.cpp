#include "arbtable/defrag.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "arbtable/table_manager.hpp"

namespace ibarb::arbtable {
namespace {

TableManager::Config cfg(bool defrag) {
  TableManager::Config c;
  c.link_data_mbps = 2000.0;
  c.reservable_fraction = 1.0;  // bandwidth never the limit in these tests
  c.policy = FillPolicy::kBitReversal;
  c.defrag_on_release = defrag;
  c.seed = 3;
  return c;
}

Requirement fat_req(unsigned distance) {
  // weight_per_entry close to the cap so sequences never share.
  Requirement r;
  r.distance = distance;
  r.entries = iba::kArbTableEntries / distance;
  r.weight_per_entry = 200;
  r.total_weight = r.entries * r.weight_per_entry;
  return r;
}

TEST(Defrag, CoalescesFreedSetsIntoLargerOnes) {
  // Without defrag: allocate four distance-4 sequences (the whole table),
  // free two non-buddy ones; a distance-2 request (32 entries) has exactly
  // 32 free entries but they do not form one E_{1,j}. With defrag they must.
  TableManager no_defrag(cfg(false));
  TableManager with_defrag(cfg(true));
  const auto r4 = fat_req(4);
  std::vector<SeqHandle> h1, h2;
  for (int i = 0; i < 4; ++i) {
    auto a = no_defrag.allocate(1, r4, 1.0);
    auto b = with_defrag.allocate(1, r4, 1.0);
    ASSERT_TRUE(a && b);
    h1.push_back(*a);
    h2.push_back(*b);
  }
  // Bit-reversal fill order for d=4 is offsets 0, 2, 1, 3. Free offsets
  // 0 and 1 (handles 0 and 2): the free entries are not a single E_{1,j}.
  no_defrag.release(h1[0], r4, 1.0);
  no_defrag.release(h1[2], r4, 1.0);
  with_defrag.release(h2[0], r4, 1.0);
  with_defrag.release(h2[2], r4, 1.0);

  EXPECT_EQ(no_defrag.free_entries(), 32u);
  EXPECT_EQ(with_defrag.free_entries(), 32u);

  const auto r2 = fat_req(2);
  EXPECT_FALSE(no_defrag.allocate(2, r2, 1.0).has_value())
      << "fragmented table should not fit a distance-2 sequence";
  EXPECT_TRUE(with_defrag.allocate(2, r2, 1.0).has_value())
      << "defragmentation must have coalesced the two freed sets";
  EXPECT_TRUE(with_defrag.check_invariants());
}

TEST(Defrag, PreservesSequenceContents) {
  TableManager m(cfg(true));
  const auto r8 = fat_req(8);
  const auto r16 = fat_req(16);
  const auto a = m.allocate(1, r8, 1.0);
  const auto b = m.allocate(2, r16, 1.0);
  const auto c = m.allocate(3, r8, 1.0);
  ASSERT_TRUE(a && b && c);
  m.release(*a, r8, 1.0);  // triggers defrag; b and c may move

  std::string why;
  ASSERT_TRUE(m.check_invariants(&why)) << why;
  // VL2 still owns a distance-16 sequence and VL3 a distance-8 one.
  EXPECT_EQ(m.sequence(*b).distance, 16u);
  EXPECT_EQ(m.sequence(*b).weight_per_entry, 200u);
  EXPECT_EQ(m.sequence(*c).distance, 8u);
  const auto& table = m.table().high();
  unsigned vl2 = 0, vl3 = 0;
  for (const auto& e : table) {
    if (!e.active()) continue;
    if (e.vl == 2) ++vl2;
    if (e.vl == 3) ++vl3;
  }
  EXPECT_EQ(vl2, 4u);
  EXPECT_EQ(vl3, 8u);
}

TEST(Defrag, NoMovesWhenAlreadyPacked) {
  TableManager m(cfg(true));
  const auto r = fat_req(8);
  const auto a = m.allocate(1, r, 1.0);
  const auto b = m.allocate(1, r, 1.0);
  ASSERT_TRUE(a && b);
  const auto moves_before = m.stats().defrag_moves;
  m.defragment();
  EXPECT_EQ(m.stats().defrag_moves, moves_before)
      << "a bit-reversal-packed table needs no relocation";
  EXPECT_TRUE(m.check_invariants());
}

TEST(Defrag, MaxGapNeverWorseAfterDefrag) {
  // Relocation must never loosen a sequence's spacing: the guarantee is on
  // the distance, which defrag preserves exactly.
  TableManager m(cfg(true));
  const auto r4 = fat_req(4);
  const auto r32 = fat_req(32);
  const auto a = m.allocate(1, r4, 1.0);
  const auto b = m.allocate(2, r32, 1.0);
  const auto c = m.allocate(3, r32, 1.0);
  ASSERT_TRUE(a && b && c);
  m.release(*b, r32, 1.0);
  EXPECT_LE(max_gap_for_vl(m.table().high(), 1), 4u);
  EXPECT_LE(max_gap_for_vl(m.table().high(), 3), 32u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(Defrag, EveryFaultStyleReleaseLeavesAuditableTables) {
  // Fault recovery releases connections in bursts (reroute after a re-sweep
  // sheds and re-admits whole path sets). After *every* release-triggered
  // defragmentation the full invariant set AND the arbiter aggregate cache
  // must check out — this is the audit debug builds run inside the recovery
  // path itself.
  TableManager m(cfg(true));
  struct Live {
    SeqHandle h;
    Requirement r;
  };
  std::vector<Live> live;
  const unsigned distances[] = {4, 8, 16, 32, 64};
  // Deterministic mixed-distance load, then tear it down in an interleaved
  // order so defrag sees both buddy and non-buddy frees.
  for (int round = 0; round < 4; ++round) {
    for (const auto d : distances) {
      Requirement r;
      r.distance = d;
      r.entries = iba::kArbTableEntries / d;
      r.weight_per_entry = 10 + d;
      r.total_weight = r.entries * r.weight_per_entry;
      if (const auto h = m.allocate(
              static_cast<iba::VirtualLane>(1 + round % 7), r, 1.0))
        live.push_back(Live{*h, r});
    }
  }
  ASSERT_GE(live.size(), 8u);
  // Release even indices first, then the rest (maximally non-contiguous).
  for (std::size_t pass = 0; pass < 2; ++pass) {
    for (std::size_t i = pass; i < live.size(); i += 2) {
      m.release(live[i].h, live[i].r, 1.0);
      std::string why;
      ASSERT_TRUE(m.check_invariants(&why))
          << "release " << i << " pass " << pass << ": " << why;
      ASSERT_TRUE(m.table().cache_in_sync())
          << "aggregate cache desynced by defrag after release " << i;
    }
  }
  EXPECT_EQ(m.table().active_entries_high(), 0u);
  EXPECT_EQ(m.free_entries(), iba::kArbTableEntries);
}

TEST(Defrag, ScatteredSequencesDisableDefrag) {
  TableManager::Config c = cfg(true);
  c.policy = FillPolicy::kScattered;
  TableManager m(c);
  const auto r = fat_req(8);
  const auto a = m.allocate(1, r, 1.0);
  const auto b = m.allocate(2, r, 1.0);
  ASSERT_TRUE(a && b);
  m.release(*a, r, 1.0);  // triggers defragment(), which must bail out
  EXPECT_EQ(m.stats().defrag_moves, 0u);
  EXPECT_TRUE(m.check_invariants());
}

}  // namespace
}  // namespace ibarb::arbtable
