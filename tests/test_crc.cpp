#include "iba/crc.hpp"

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

namespace ibarb::iba {
namespace {

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

TEST(Crc32, KnownVectors) {
  // The classic CRC-32 check value.
  EXPECT_EQ(icrc(bytes_of("123456789")), 0xCBF43926u);
  EXPECT_EQ(icrc(bytes_of("")), 0x00000000u);
  EXPECT_EQ(icrc(bytes_of("a")), 0xE8B7BE43u);
}

TEST(Crc16, KnownVectors) {
  // CRC-16/CCITT with init 0xFFFF, reflected, no final xor = CRC-16/MCRF4XX.
  EXPECT_EQ(vcrc(bytes_of("123456789")), 0x6F91u);
  EXPECT_EQ(vcrc(bytes_of("")), 0xFFFFu);
}

TEST(Crc, SingleBitFlipChangesBoth) {
  auto data = bytes_of("The quick brown fox jumps over the lazy dog");
  const auto c32 = icrc(data);
  const auto c16 = vcrc(data);
  for (std::size_t i = 0; i < data.size(); i += 7) {
    auto copy = data;
    copy[i] ^= 0x10;
    EXPECT_NE(icrc(copy), c32);
    EXPECT_NE(vcrc(copy), c16);
  }
}

TEST(Crc, Deterministic) {
  const auto data = bytes_of("abcdef");
  EXPECT_EQ(icrc(data), icrc(data));
  EXPECT_EQ(vcrc(data), vcrc(data));
}

TEST(Crc, ConstexprUsable) {
  static constexpr std::uint8_t kData[] = {1, 2, 3};
  constexpr auto c = vcrc(kData);
  static_assert(c != 0);
  SUCCEED();
}

}  // namespace
}  // namespace ibarb::iba
