#include "iba/crc.hpp"

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "faults/fault_injector.hpp"
#include "iba/headers.hpp"
#include "iba/packet.hpp"

namespace ibarb::iba {
namespace {

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

TEST(Crc32, KnownVectors) {
  // The classic CRC-32 check value.
  EXPECT_EQ(icrc(bytes_of("123456789")), 0xCBF43926u);
  EXPECT_EQ(icrc(bytes_of("")), 0x00000000u);
  EXPECT_EQ(icrc(bytes_of("a")), 0xE8B7BE43u);
}

TEST(Crc16, KnownVectors) {
  // CRC-16/CCITT with init 0xFFFF, reflected, no final xor = CRC-16/MCRF4XX.
  EXPECT_EQ(vcrc(bytes_of("123456789")), 0x6F91u);
  EXPECT_EQ(vcrc(bytes_of("")), 0xFFFFu);
}

TEST(Crc, SingleBitFlipChangesBoth) {
  auto data = bytes_of("The quick brown fox jumps over the lazy dog");
  const auto c32 = icrc(data);
  const auto c16 = vcrc(data);
  for (std::size_t i = 0; i < data.size(); i += 7) {
    auto copy = data;
    copy[i] ^= 0x10;
    EXPECT_NE(icrc(copy), c32);
    EXPECT_NE(vcrc(copy), c16);
  }
}

TEST(Crc, Deterministic) {
  const auto data = bytes_of("abcdef");
  EXPECT_EQ(icrc(data), icrc(data));
  EXPECT_EQ(vcrc(data), vcrc(data));
}

TEST(Crc, ConstexprUsable) {
  static constexpr std::uint8_t kData[] = {1, 2, 3};
  constexpr auto c = vcrc(kData);
  static_assert(c != 0);
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Corrupted-packet rejection: the fault injector damages real wire images
// (iba::to_wire) and the real receive path (iba::parse_packet, which checks
// structure, the LRH length field, ICRC and VCRC) must refuse every one.

Packet sample_packet() {
  Packet p;
  p.connection = 7;
  p.sl = 3;
  p.source = 12;
  p.destination = 34;
  p.payload_bytes = 96;
  p.sequence = 41;
  return p;
}

TEST(CrcPacket, EverySingleBitFlipIsRejected) {
  const auto image = to_wire(sample_packet());
  ASSERT_TRUE(parse_packet(image).has_value()) << "pristine image must parse";
  for (std::size_t bit = 0; bit < image.size() * 8; ++bit) {
    auto copy = image;
    copy[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(parse_packet(copy).has_value())
        << "flip of bit " << bit << " went undetected";
  }
}

TEST(CrcPacket, EveryTruncationIsRejected) {
  const auto image = to_wire(sample_packet());
  for (std::size_t keep = 0; keep < image.size(); ++keep) {
    auto copy = image;
    copy.resize(keep);
    EXPECT_FALSE(parse_packet(copy).has_value())
        << "truncation to " << keep << " bytes went undetected";
  }
}

TEST(CrcPacket, InjectorBurstDamageIsRejected) {
  // Bursts of <= 32 damaged bits are within CRC32's guaranteed detection
  // length; exercise the injector's own damage generator across seeds.
  const auto pristine = to_wire(sample_packet());
  for (std::uint64_t entropy = 1; entropy <= 200; ++entropy) {
    auto copy = pristine;
    faults::FaultInjector::damage_wire_image(
        copy, faults::FaultInjector::Corruption::kBurst, entropy);
    ASSERT_NE(copy, pristine) << "damage generator produced a no-op";
    EXPECT_FALSE(parse_packet(copy).has_value()) << "entropy " << entropy;
  }
}

TEST(CrcPacket, InjectorVerdictMatchesReceivePath) {
  // corruption_detected() is exactly "damage the wire image, run the
  // receive-path parser": all three damage modes must report detection on
  // this packet for a spread of entropies.
  const auto p = sample_packet();
  using Corruption = faults::FaultInjector::Corruption;
  for (const auto how :
       {Corruption::kBitFlip, Corruption::kTruncate, Corruption::kBurst}) {
    for (std::uint64_t entropy = 1; entropy <= 50; ++entropy)
      EXPECT_TRUE(faults::FaultInjector::corruption_detected(p, how, entropy));
  }
}

}  // namespace
}  // namespace ibarb::iba
