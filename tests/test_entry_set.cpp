#include "arbtable/entry_set.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ibarb::arbtable {
namespace {

TEST(EntrySet, PositionsAreEquallySpaced) {
  const EntrySet e{8, 3};
  const auto pos = e.positions();
  ASSERT_EQ(pos.size(), 8u);
  for (std::size_t k = 0; k < pos.size(); ++k)
    EXPECT_EQ(pos[k], 3u + 8u * k);
}

TEST(EntrySet, SizeIsTableOverDistance) {
  EXPECT_EQ((EntrySet{2, 0}.size()), 32u);
  EXPECT_EQ((EntrySet{64, 5}.size()), 1u);
}

TEST(EntrySet, Validity) {
  EXPECT_TRUE((EntrySet{2, 1}.valid()));
  EXPECT_TRUE((EntrySet{64, 63}.valid()));
  EXPECT_FALSE((EntrySet{3, 0}.valid()));    // not a power of two
  EXPECT_FALSE((EntrySet{128, 0}.valid()));  // beyond the table
  EXPECT_FALSE((EntrySet{8, 8}.valid()));    // offset >= distance
}

TEST(EntrySet, SetsOfOneDistancePartitionTheTable) {
  for (unsigned d = 1; d <= 64; d *= 2) {
    std::set<unsigned> seen;
    for (unsigned j = 0; j < d; ++j)
      for (const auto p : EntrySet{d, j}.positions()) {
        EXPECT_TRUE(seen.insert(p).second) << "overlap at " << p;
      }
    EXPECT_EQ(seen.size(), iba::kArbTableEntries);
  }
}

TEST(EntrySet, BuddyBlockIsBitReversedOffset) {
  EXPECT_EQ((EntrySet{8, 0}.buddy_block_index()), 0u);
  EXPECT_EQ((EntrySet{8, 4}.buddy_block_index()), 1u);
  EXPECT_EQ((EntrySet{8, 2}.buddy_block_index()), 2u);
  EXPECT_EQ((EntrySet{8, 1}.buddy_block_index()), 4u);
}

TEST(EntrySet, BuddyBlockRoundTrips) {
  for (unsigned d = 1; d <= 64; d *= 2)
    for (unsigned j = 0; j < d; ++j) {
      const EntrySet e{d, j};
      const auto back = EntrySet::from_buddy_block(d, e.buddy_block_index());
      EXPECT_EQ(back, e);
    }
}

TEST(EntrySet, BuddyBlocksOfOneDistanceAreDisjointIntervals) {
  // The defragmenter relies on E_{i,j} mapping to aligned contiguous blocks
  // in bit-reversed space: verify positions of consecutive blocks are the
  // bit-reversed images of consecutive aligned ranges.
  const unsigned d = 16;
  const unsigned block_size = iba::kArbTableEntries / d;
  for (unsigned b = 0; b < d; ++b) {
    const auto set = EntrySet::from_buddy_block(d, b);
    std::set<unsigned> q_addresses;
    for (const auto p : set.positions())
      q_addresses.insert(reverse_bits(p, 6));
    EXPECT_EQ(*q_addresses.begin(), b * block_size);
    EXPECT_EQ(*q_addresses.rbegin(), (b + 1) * block_size - 1);
    EXPECT_EQ(q_addresses.size(), block_size);
  }
}

TEST(SetIsFree, DetectsOccupiedEntry) {
  iba::ArbTable table{};
  EXPECT_TRUE(set_is_free(table, EntrySet{4, 1}));
  table[5] = iba::ArbTableEntry{0, 9};  // 5 = 1 + 4*1 -> in E_{2,1}
  EXPECT_FALSE(set_is_free(table, EntrySet{4, 1}));
  EXPECT_TRUE(set_is_free(table, EntrySet{4, 0}));
}

TEST(FreeEntries, Counts) {
  iba::ArbTable table{};
  EXPECT_EQ(free_entries(table), 64u);
  table[0] = iba::ArbTableEntry{0, 1};
  table[63] = iba::ArbTableEntry{1, 1};
  EXPECT_EQ(free_entries(table), 62u);
}

TEST(MaxGap, SingleEntryWrapsWholeTable) {
  iba::ArbTable table{};
  table[10] = iba::ArbTableEntry{2, 5};
  EXPECT_EQ(max_gap_for_vl(table, 2), iba::kArbTableEntries);
}

TEST(MaxGap, EquallySpacedSequenceHasGapEqualToDistance) {
  iba::ArbTable table{};
  for (const auto p : EntrySet{8, 2}.positions())
    table[p] = iba::ArbTableEntry{3, 10};
  EXPECT_EQ(max_gap_for_vl(table, 3), 8u);
}

TEST(MaxGap, IgnoresOtherVls) {
  iba::ArbTable table{};
  for (const auto p : EntrySet{4, 0}.positions())
    table[p] = iba::ArbTableEntry{1, 10};
  for (const auto p : EntrySet{16, 1}.positions())
    table[p] = iba::ArbTableEntry{2, 10};
  EXPECT_EQ(max_gap_for_vl(table, 1), 4u);
  EXPECT_EQ(max_gap_for_vl(table, 2), 16u);
}

TEST(MaxGap, AbsentVl) {
  iba::ArbTable table{};
  EXPECT_EQ(max_gap_for_vl(table, 9), iba::kArbTableEntries);
}

}  // namespace
}  // namespace ibarb::arbtable
