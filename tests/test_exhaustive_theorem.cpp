// Exhaustive verification of the paper's optimality theorem.
//
// With defragmentation enabled, every reachable table state is equivalent
// (up to the canonical compaction) to a multiset of live sequence sizes:
// after any allocate/release history the defragmenter leaves the same
// left-packed buddy layout. The randomized trace tests (test_fill_properties)
// sample histories; this test instead *enumerates every canonical state* —
// all multisets of sequence sizes {1,2,4,8,16,32} entries that fit the
// 64-entry table (with small-size counts capped to keep the run fast) —
// and checks, in each state, for every admissible distance d:
//
//     allocate(d) succeeds  <=>  free entries >= 64/d
//
// together with the manager's internal invariants. This covers tens of
// thousands of states exactly, a stronger statement than sampling.
#include <gtest/gtest.h>

#include <string>

#include "arbtable/table_manager.hpp"

namespace ibarb::arbtable {
namespace {

Requirement fat_req(unsigned distance) {
  Requirement r;
  r.distance = distance;
  r.entries = iba::kArbTableEntries / distance;
  r.weight_per_entry = 200;  // no sharing: placement is what we test
  r.total_weight = r.entries * r.weight_per_entry;
  return r;
}

TableManager fresh_manager() {
  TableManager::Config c;
  c.reservable_fraction = 1.0;
  c.defrag_on_release = true;
  c.seed = 1;
  return TableManager(c);
}

/// Builds the canonical state for the given per-size sequence counts.
/// counts[i] sequences of size 2^i entries (distance 64 >> i).
bool build_state(TableManager& m, const std::array<unsigned, 6>& counts) {
  for (int i = 5; i >= 0; --i) {  // big first: always placeable if it fits
    const unsigned entries = 1u << i;
    const unsigned distance = iba::kArbTableEntries / entries;
    const auto req = fat_req(distance);
    for (unsigned k = 0; k < counts[static_cast<std::size_t>(i)]; ++k) {
      const auto vl = static_cast<iba::VirtualLane>(i);
      if (!m.allocate(vl, req, 0.0001)) return false;
    }
  }
  return true;
}

TEST(ExhaustiveTheorem, EveryCanonicalStateSatisfiesSuccessIffEnoughFree) {
  std::uint64_t states = 0;
  std::uint64_t checks = 0;
  // counts[i] = sequences of 2^i entries. Small sizes capped at 8 (beyond
  // that the states add no new structure, only more of the same blocks).
  std::array<unsigned, 6> counts{};
  for (counts[5] = 0; counts[5] <= 2; ++counts[5])
    for (counts[4] = 0; counts[4] <= 4; ++counts[4])
      for (counts[3] = 0; counts[3] <= 8; ++counts[3])
        for (counts[2] = 0; counts[2] <= 8; ++counts[2])
          for (counts[1] = 0; counts[1] <= 8; ++counts[1])
            for (counts[0] = 0; counts[0] <= 8; ++counts[0]) {
              unsigned used = 0;
              for (int i = 0; i < 6; ++i) used += counts[i] << i;
              if (used > iba::kArbTableEntries) continue;

              TableManager m = fresh_manager();
              ASSERT_TRUE(build_state(m, counts))
                  << "canonical state must be constructible";
              ASSERT_EQ(m.free_entries(), iba::kArbTableEntries - used);
              ++states;

              for (unsigned d = 2; d <= 64; d *= 2) {
                const auto req = fat_req(d);
                const bool enough = m.free_entries() >= req.entries;
                const auto got = m.allocate(9, req, 0.0001);
                ++checks;
                ASSERT_EQ(got.has_value(), enough)
                    << "state used=" << used << " distance=" << d;
                if (got) {
                  // Restore the state; defrag re-canonicalizes it.
                  m.release(*got, req, 0.0001);
                  ASSERT_EQ(m.free_entries(),
                            iba::kArbTableEntries - used);
                }
                std::string why;
                ASSERT_TRUE(m.check_invariants(&why)) << why;
              }
            }
  // The enumeration must have actually covered a large space.
  EXPECT_GT(states, 8000u);
  EXPECT_GT(checks, 48000u);
}

TEST(ExhaustiveTheorem, MixedOrderConstructionReachesTheSameCanonicalState) {
  // Allocating the same multiset in ascending instead of descending size
  // order must succeed too and, after one defrag, land in the same layout.
  const std::array<unsigned, 6> counts{2, 1, 1, 1, 1, 1};  // 2+2+4+8+16+32=64
  TableManager desc = fresh_manager();
  ASSERT_TRUE(build_state(desc, counts));

  TableManager asc = fresh_manager();
  for (int i = 0; i <= 5; ++i) {
    const unsigned entries = 1u << i;
    const unsigned distance = iba::kArbTableEntries / entries;
    const auto req = fat_req(distance);
    for (unsigned k = 0; k < counts[static_cast<std::size_t>(i)]; ++k)
      ASSERT_TRUE(asc.allocate(static_cast<iba::VirtualLane>(i), req, 0.0001)
                      .has_value());
  }
  asc.defragment();
  desc.defragment();
  for (unsigned p = 0; p < iba::kArbTableEntries; ++p) {
    EXPECT_EQ(asc.table().high()[p].vl, desc.table().high()[p].vl)
        << "slot " << p;
    EXPECT_EQ(asc.table().high()[p].weight, desc.table().high()[p].weight);
  }
}

}  // namespace
}  // namespace ibarb::arbtable
