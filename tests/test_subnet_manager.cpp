#include "subnet/subnet_manager.hpp"

#include <gtest/gtest.h>

#include "network/topology.hpp"
#include "qos/admission.hpp"

namespace ibarb::subnet {
namespace {

TEST(SubnetManager, DiscoveryCountsMatchFabric) {
  network::IrregularSpec spec;
  spec.switches = 16;
  spec.seed = 6;
  const auto g = network::gen::irregular(spec);
  SubnetManager sm(g);
  EXPECT_TRUE(sm.discovery().complete);
  EXPECT_EQ(sm.discovery().switches, 16u);
  EXPECT_EQ(sm.discovery().hosts, 64u);
  // 8-port switches, 4 hosts each: 64 host links + trunk links.
  EXPECT_GE(sm.discovery().links, 64u + 15u);  // at least a spanning tree
  EXPECT_EQ(sm.sweep_order().size(), g.node_count());
}

TEST(SubnetManager, SweepVisitsEveryNodeOnce) {
  const auto g = network::gen::line(5, 2);
  SubnetManager sm(g);
  std::vector<bool> seen(g.node_count(), false);
  for (const auto n : sm.sweep_order()) {
    EXPECT_FALSE(seen[n]);
    seen[n] = true;
  }
  for (const auto s : seen) EXPECT_TRUE(s);
}

TEST(SubnetManager, LidsFollowConvention) {
  const auto g = network::gen::single_switch(3);
  SubnetManager sm(g);
  for (const auto h : g.hosts())
    EXPECT_EQ(sm.lid(h), static_cast<iba::Lid>(h + 1));
}

TEST(SubnetManager, LinkCountExactOnLine) {
  const auto g = network::gen::line(4, 1);
  SubnetManager sm(g);
  // 3 trunk links + 4 host links.
  EXPECT_EQ(sm.discovery().links, 7u);
}

TEST(SubnetManager, DescribeMentionsShape) {
  const auto g = network::gen::line(2, 1);
  SubnetManager sm(g);
  const auto text = sm.describe();
  EXPECT_NE(text.find("2 switches"), std::string::npos);
  EXPECT_NE(text.find("2 hosts"), std::string::npos);
  EXPECT_NE(text.find("complete"), std::string::npos);
  // The default engine keeps the historical up*/down* root line.
  EXPECT_NE(text.find("up*/down* root: switch"), std::string::npos);
}

TEST(SubnetManager, AcceptsInjectedRoutingEngine) {
  const auto g = network::gen::torus2d(4, 4, 1);
  SubnetManager sm(g, "minimal-vl-escape");
  EXPECT_EQ(sm.routing_engine(), "minimal-vl-escape");
  EXPECT_EQ(sm.routes().engine(), "minimal-vl-escape");
  EXPECT_EQ(sm.routes().vl_layers(), 2u);
  const auto text = sm.describe();
  EXPECT_NE(text.find("routing engine: minimal-vl-escape"),
            std::string::npos)
      << text;
  EXPECT_THROW(SubnetManager(g, "bogus"), std::invalid_argument);
}

TEST(SubnetManager, RecordedDrPathsReplayToTheirNodes) {
  network::IrregularSpec spec;
  spec.switches = 8;
  spec.seed = 11;
  const auto g = network::gen::irregular(spec);
  SubnetManager sm(g);
  DirectedRouteWalker walker(g);
  for (iba::NodeId n = 0; n < g.node_count(); ++n) {
    const auto& path = sm.dr_path(n);
    DrSmp smp;
    smp.hop_count = static_cast<std::uint8_t>(path.size());
    for (std::size_t k = 0; k < path.size(); ++k)
      smp.initial_path[k + 1] = path[k];
    const auto reached = walker.deliver(0, smp);
    ASSERT_TRUE(reached.has_value());
    EXPECT_EQ(*reached, n) << "recorded directed route does not reach node";
  }
}

TEST(SubnetManager, DiscoveryUsesSmps) {
  const auto g = network::gen::line(4, 1);
  SubnetManager sm(g);
  // One probe per (node, port) plus the origin probe; every probe of a
  // wired port contributes at least one hop except the origin's.
  EXPECT_GT(sm.discovery().smps_sent, g.node_count());
  EXPECT_GT(sm.discovery().sweep_hops, 0u);
}

TEST(SubnetManager, RoutesAreUsable) {
  network::IrregularSpec spec;
  spec.switches = 8;
  spec.seed = 19;
  const auto g = network::gen::irregular(spec);
  SubnetManager sm(g);
  const auto hosts = g.hosts();
  EXPECT_GE(sm.routes().hops(hosts.front(), hosts.back()), 1u);
}

}  // namespace
}  // namespace ibarb::subnet

namespace ibarb::subnet {
namespace {

TEST(SubnetManager, ProgramsLftsThatRouteTraffic) {
  // configure_fabric installs per-switch LFTs via MAD round trips; traffic
  // must still reach every destination using them (the simulator consults
  // the LFT, not the Routes object, once programmed).
  const auto g = network::gen::line(3, 1);
  SubnetManager sm(g);
  qos::AdmissionControl admission(g, sm.routes(), qos::paper_catalogue(), {});
  sim::Simulator sim(g, sm.routes(), {});

  qos::ConnectionRequest req;
  const auto hosts = g.hosts();
  req.src_host = hosts[0];
  req.dst_host = hosts[2];
  req.sl = 7;
  req.max_distance = 64;
  req.wire_mbps = 20.0;
  ASSERT_TRUE(admission.request(req).has_value());

  sm.configure_fabric(sim, admission);
  sim::FlowSpec f;
  f.src_host = hosts[0];
  f.dst_host = hosts[2];
  f.sl = 7;
  f.payload_bytes = 256;
  f.interval = 10000;
  const auto flow = sim.add_flow(f);
  sim.metrics().start_window(0);
  sim.run_until(500000);
  EXPECT_GT(sim.metrics().connections[flow].rx_packets, 40u);
}

}  // namespace
}  // namespace ibarb::subnet

namespace ibarb::subnet {
namespace {

TEST(SubnetManager, LftsAgreeWithRoutesEverywhere) {
  network::IrregularSpec spec;
  spec.switches = 16;
  spec.seed = 31;
  const auto g = network::gen::irregular(spec);
  SubnetManager sm(g);
  qos::AdmissionControl admission(g, sm.routes(), qos::paper_catalogue(), {});
  sim::Simulator sim(g, sm.routes(), {});
  sm.configure_fabric(sim, admission);
  // A packet injected between the two most distant hosts must arrive: this
  // exercises the MAD-programmed LFT at every hop -- a single wrong entry
  // would either loop (debug assert) or strand the packet.
  const auto hosts = g.hosts();
  sim::FlowSpec f;
  f.src_host = hosts.front();
  f.dst_host = hosts.back();
  f.sl = 7;
  f.payload_bytes = 256;
  f.interval = 20000;
  iba::VlArbitrationTable t;
  t.high()[0] = iba::ArbTableEntry{7, 100};
  for (iba::NodeId n = 0; n < g.node_count(); ++n) {
    const unsigned ports = g.is_switch(n) ? g.port_count(n) : 1;
    for (unsigned p = 0; p < ports; ++p)
      if (g.peer(n, static_cast<iba::PortIndex>(p)))
        sim.set_output_arbitration(n, static_cast<iba::PortIndex>(p), t);
  }
  const auto flow = sim.add_flow(f);
  sim.metrics().start_window(0);
  sim.run_until(600000);
  EXPECT_GT(sim.metrics().connections[flow].rx_packets, 20u);
}

}  // namespace
}  // namespace ibarb::subnet
