#include "iba/flow_control.hpp"

#include <gtest/gtest.h>

namespace ibarb::iba {
namespace {

TEST(BytesToBlocks, RoundsUp) {
  EXPECT_EQ(bytes_to_blocks(0), 0u);
  EXPECT_EQ(bytes_to_blocks(1), 1u);
  EXPECT_EQ(bytes_to_blocks(64), 1u);
  EXPECT_EQ(bytes_to_blocks(65), 2u);
  EXPECT_EQ(bytes_to_blocks(282), 5u);
}

TEST(CreditTracker, StartsAtCapacity) {
  CreditTracker t(100);
  for (unsigned vl = 0; vl < kMaxVirtualLanes; ++vl) {
    EXPECT_EQ(t.available(static_cast<VirtualLane>(vl)), 100u);
    EXPECT_EQ(t.capacity(static_cast<VirtualLane>(vl)), 100u);
  }
}

TEST(CreditTracker, ConsumeAndRelease) {
  CreditTracker t(10);
  EXPECT_TRUE(t.can_send(0, 640));   // 10 blocks
  EXPECT_FALSE(t.can_send(0, 641));  // 11 blocks
  t.consume(0, 640);
  EXPECT_EQ(t.available(0), 0u);
  EXPECT_FALSE(t.can_send(0, 64));
  t.release(0, 640);
  EXPECT_EQ(t.available(0), 10u);
}

TEST(CreditTracker, VlsAreIndependent) {
  CreditTracker t(4);
  t.consume(2, 256);
  EXPECT_EQ(t.available(2), 0u);
  EXPECT_EQ(t.available(3), 4u);
  EXPECT_TRUE(t.can_send(3, 256));
  EXPECT_FALSE(t.can_send(2, 64));
}

TEST(CreditTracker, PartialConsumption) {
  CreditTracker t(8);
  t.consume(1, 100);  // 2 blocks
  EXPECT_EQ(t.available(1), 6u);
  t.consume(1, 100);
  EXPECT_EQ(t.available(1), 4u);
  t.release(1, 100);
  EXPECT_EQ(t.available(1), 6u);
}

TEST(CreditTracker, SetCapacityResets) {
  CreditTracker t;
  t.set_capacity(5, 20);
  EXPECT_EQ(t.available(5), 20u);
  EXPECT_EQ(t.capacity(5), 20u);
  EXPECT_EQ(t.available(6), 0u);  // untouched lanes have no credits
}

}  // namespace
}  // namespace ibarb::iba
