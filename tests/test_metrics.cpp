#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ibarb::sim {
namespace {

iba::Packet pkt(std::uint32_t payload, iba::Cycle injected) {
  iba::Packet p;
  p.payload_bytes = payload;
  p.injected_at = injected;
  return p;
}

Metrics fresh(iba::Cycle deadline, iba::Cycle iat) {
  Metrics m;
  ConnectionMetrics c;
  c.deadline = deadline;
  c.nominal_iat = iat;
  m.connections.push_back(c);
  m.ports.push_back(PortMetrics{});
  return m;
}

TEST(Metrics, RecordsNothingOutsideWindow) {
  auto m = fresh(1000, 100);
  m.record_injection(0, pkt(256, 0));
  m.record_delivery(0, pkt(256, 0), 10);
  m.record_tx(0, 256, 10);
  EXPECT_EQ(m.connections[0].tx_packets, 0u);
  EXPECT_EQ(m.connections[0].rx_packets, 0u);
  EXPECT_EQ(m.ports[0].packets, 0u);
}

TEST(Metrics, WindowGatesAndMeasuresLength) {
  auto m = fresh(1000, 100);
  m.start_window(500);
  EXPECT_TRUE(m.enabled());
  m.record_injection(0, pkt(256, 500));
  m.stop_window(1500);
  EXPECT_FALSE(m.enabled());
  EXPECT_EQ(m.window_length(), 1000u);
  EXPECT_EQ(m.connections[0].tx_packets, 1u);
  m.record_injection(0, pkt(256, 1600));  // after the window
  EXPECT_EQ(m.connections[0].tx_packets, 1u);
}

TEST(Metrics, ThresholdCountsFollowDeadlineFractions) {
  auto m = fresh(/*deadline=*/3000, /*iat=*/0);
  m.start_window(0);
  // Delay 100 = D/30 exactly: inside every threshold.
  m.record_delivery(0, pkt(10, 0), 100);
  // Delay 1000 = D/3: inside D/3, D/2, D/1.5, D only.
  m.record_delivery(0, pkt(10, 0), 1000);
  // Delay 3001 > D: inside none, and a deadline miss.
  m.record_delivery(0, pkt(10, 0), 3001);
  const auto& c = m.connections[0];
  EXPECT_EQ(c.rx_packets, 3u);
  EXPECT_EQ(c.deadline_misses, 1u);
  // kDelayThresholdDivisors = {30,25,20,15,10,5,3,2,1.5,1}
  EXPECT_EQ(c.within_threshold[0], 1u);                       // D/30
  EXPECT_EQ(c.within_threshold[kDelayThresholds - 4], 2u);    // D/3
  EXPECT_EQ(c.within_threshold[kDelayThresholds - 1], 2u);    // D
  EXPECT_DOUBLE_EQ(c.fraction_within(kDelayThresholds - 1), 2.0 / 3.0);
}

TEST(Metrics, FractionWithinIsNanWithoutReceivedPackets) {
  // "No data" must not read as "every packet missed": an empty cell is NaN
  // (null in JSON, a dash in the table benches), never 0.0.
  auto m = fresh(/*deadline=*/3000, /*iat=*/0);
  m.start_window(0);
  const auto& c = m.connections[0];
  EXPECT_EQ(c.rx_packets, 0u);
  for (std::size_t k = 0; k < kDelayThresholds; ++k)
    EXPECT_TRUE(std::isnan(c.fraction_within(k)));
}

TEST(Metrics, JitterBinsCentreAndTails) {
  auto m = fresh(/*deadline=*/0, /*iat=*/1000);
  m.start_window(0);
  m.record_delivery(0, pkt(10, 0), 1000);   // first arrival: no gap yet
  m.record_delivery(0, pkt(10, 0), 2000);   // gap 1000 = IAT: deviation 0
  m.record_delivery(0, pkt(10, 0), 3600);   // gap 1600: deviation +0.6
  m.record_delivery(0, pkt(10, 0), 3700);   // gap 100: deviation -0.9
  m.record_delivery(0, pkt(10, 0), 9999);   // gap >> IAT: beyond +IAT
  const auto& c = m.connections[0];
  // Bins: 0 <-IAT | 1 [-1,-3/4) | ... | 5 centre | ... | 9 [3/4,1) | 10 >+IAT
  EXPECT_EQ(c.jitter_bins[5], 1u);   // deviation 0
  EXPECT_EQ(c.jitter_bins[8], 1u);   // +0.6 in [1/2, 3/4)
  EXPECT_EQ(c.jitter_bins[1], 1u);   // -0.9 in [-1, -3/4)
  EXPECT_EQ(c.jitter_bins[10], 1u);  // beyond +IAT
  EXPECT_DOUBLE_EQ(c.fraction_jitter_bin(5), 0.25);
}

TEST(Metrics, TxAccountingPerPort) {
  auto m = fresh(0, 0);
  m.start_window(0);
  m.record_tx(0, 282, 282);
  m.record_tx(0, 282, 282);
  m.stop_window(1000);
  EXPECT_EQ(m.ports[0].packets, 2u);
  EXPECT_EQ(m.ports[0].wire_bytes, 564u);
  EXPECT_DOUBLE_EQ(m.ports[0].utilization(m.window_length()), 0.564);
}

TEST(Metrics, MinQosRxIgnoresBestEffort) {
  Metrics m;
  ConnectionMetrics qos1;
  qos1.qos = true;
  ConnectionMetrics be;
  be.qos = false;
  ConnectionMetrics qos2;
  qos2.qos = true;
  m.connections = {qos1, be, qos2};
  m.start_window(0);
  m.record_delivery(0, pkt(10, 0), 1);
  m.record_delivery(0, pkt(10, 0), 2);
  m.record_delivery(2, pkt(10, 0), 3);
  EXPECT_EQ(m.min_qos_rx(), 1u) << "slowest QoS connection has 1 packet";
}

TEST(Metrics, MinQosRxZeroWhenNoQosConnections) {
  Metrics m;
  ConnectionMetrics be;
  be.qos = false;
  m.connections = {be};
  EXPECT_EQ(m.min_qos_rx(), 0u);
}

TEST(Metrics, DelayStatsAccumulate) {
  auto m = fresh(0, 0);
  m.start_window(0);
  m.record_delivery(0, pkt(10, 100), 150);
  m.record_delivery(0, pkt(10, 100), 250);
  const auto& d = m.connections[0].delay;
  EXPECT_EQ(d.count(), 2u);
  EXPECT_DOUBLE_EQ(d.mean(), 100.0);
  EXPECT_DOUBLE_EQ(d.min(), 50.0);
  EXPECT_DOUBLE_EQ(d.max(), 150.0);
}

TEST(Metrics, PacketDeadlineOverridesConnectionDeadline) {
  auto m = fresh(/*deadline=*/3000, /*iat=*/0);
  m.start_window(0);
  // Stamped at injection under a tighter (pre-reroute) contract: judged
  // against the stamp, not the connection's current deadline.
  auto stamped = pkt(10, 0);
  stamped.deadline = 500;
  m.record_delivery(0, stamped, 600);
  // Unstamped packet falls back to the connection deadline.
  m.record_delivery(0, pkt(10, 0), 600);
  EXPECT_EQ(m.connections[0].deadline_misses, 1u);
  EXPECT_EQ(m.connections[0].rx_packets, 2u);
}

}  // namespace
}  // namespace ibarb::sim
