// Differential fuzz of the VlArbiter against an independent executable
// specification of IBA §7.6.9, written directly from the spec text rather
// than from the production code. Any divergence over randomized tables and
// traffic patterns is a bug in one of the two — the kind of error a
// line-by-line unit test can miss.
#include <gtest/gtest.h>

#include "iba/arbiter.hpp"
#include "util/rng.hpp"

namespace ibarb::iba {
namespace {

/// The reference model: a deliberately naive transliteration of the spec.
class SpecArbiter {
 public:
  explicit SpecArbiter(const VlArbitrationTable& t) : table_(t) {}

  std::optional<ArbDecision> arbitrate(const ReadyBytes& ready) {
    if (ready[kManagementVl] > 0)
      return ArbDecision{kManagementVl, false, true};

    const bool high_ready = any_ready(table_.high(), ready);
    const bool low_ready = any_ready(table_.low(), ready);
    const unsigned limit = table_.limit_of_high_priority();
    const bool exhausted =
        limit != kUnlimitedHighPriority &&
        high_bytes_ >= std::uint64_t(limit) * kHighPriorityLimitUnitBytes;

    if (high_ready && !(exhausted && low_ready)) {
      const auto vl = pick(table_.high(), high_idx_, high_rem_, ready);
      if (vl) {
        if (low_ready)
          high_bytes_ += ready[*vl];
        else
          high_bytes_ = 0;
        return ArbDecision{*vl, true, false};
      }
    }
    if (low_ready) {
      const auto vl = pick(table_.low(), low_idx_, low_rem_, ready);
      if (vl) {
        high_bytes_ = 0;
        return ArbDecision{*vl, false, false};
      }
    }
    return std::nullopt;
  }

 private:
  static bool any_ready(const ArbTable& t, const ReadyBytes& ready) {
    for (const auto& e : t)
      if (e.active() && ready[e.vl] > 0) return true;
    return false;
  }

  static std::optional<VirtualLane> pick(const ArbTable& t, unsigned& idx,
                                         int& rem, const ReadyBytes& ready) {
    for (unsigned step = 0; step <= kArbTableEntries; ++step) {
      const auto& e = t[idx];
      if (!e.active() || rem <= 0 || ready[e.vl] == 0) {
        idx = (idx + 1) % kArbTableEntries;
        rem = t[idx].weight;
        continue;
      }
      const int units =
          int((ready[e.vl] + kWeightUnitBytes - 1) / kWeightUnitBytes);
      rem -= units;
      const auto vl = e.vl;
      if (rem <= 0) {
        idx = (idx + 1) % kArbTableEntries;
        rem = t[idx].weight;
      }
      return vl;
    }
    return std::nullopt;
  }

  VlArbitrationTable table_;
  unsigned high_idx_ = 0;
  int high_rem_ = 0;
  unsigned low_idx_ = 0;
  int low_rem_ = 0;
  std::uint64_t high_bytes_ = 0;

 public:
  void prime() {  // mirror VlArbiter's fresh-cursor reload semantics
    high_rem_ = table_.high()[0].weight;
    low_rem_ = table_.low()[0].weight;
  }
};

VlArbitrationTable random_table(util::Xoshiro256& rng) {
  VlArbitrationTable t;
  const unsigned high_entries = 1 + rng.below(kArbTableEntries);
  for (unsigned i = 0; i < high_entries; ++i) {
    const auto slot = rng.below(kArbTableEntries);
    t.high()[slot] = ArbTableEntry{
        static_cast<VirtualLane>(rng.below(10)),
        static_cast<std::uint8_t>(rng.chance(0.2) ? 0 : 1 + rng.below(255))};
  }
  const unsigned low_entries = rng.below(8);
  for (unsigned i = 0; i < low_entries; ++i)
    t.low()[i] = ArbTableEntry{
        static_cast<VirtualLane>(10 + rng.below(4)),
        static_cast<std::uint8_t>(1 + rng.below(255))};
  const unsigned limits[] = {255u, 1u, 4u, 32u};
  t.set_limit_of_high_priority(
      static_cast<std::uint8_t>(limits[rng.below(4)]));
  return t;
}

class ArbiterDifferentialFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArbiterDifferentialFuzz, MatchesSpecModelOverRandomTraffic) {
  util::Xoshiro256 rng(GetParam());
  for (int round = 0; round < 25; ++round) {
    const auto table = random_table(rng);
    VlArbiter impl(table);
    SpecArbiter spec(table);
    spec.prime();

    for (int step = 0; step < 400; ++step) {
      ReadyBytes ready{};
      for (unsigned vl = 0; vl < kMaxVirtualLanes; ++vl)
        if (rng.chance(0.35))
          ready[vl] = 64 * (1 + static_cast<std::uint32_t>(rng.below(64)));
      if (rng.chance(0.02)) ready[kManagementVl] = 256;

      const auto a = impl.arbitrate(ready);
      const auto b = spec.arbitrate(ready);
      ASSERT_EQ(a.has_value(), b.has_value())
          << "seed " << GetParam() << " round " << round << " step " << step;
      if (a) {
        ASSERT_EQ(a->vl, b->vl)
            << "seed " << GetParam() << " round " << round << " step "
            << step;
        ASSERT_EQ(a->from_high, b->from_high);
        ASSERT_EQ(a->management, b->management);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArbiterDifferentialFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

}  // namespace
}  // namespace ibarb::iba
