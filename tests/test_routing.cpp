#include "network/routing.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "network/topology.hpp"

namespace ibarb::network {
namespace {

/// Verifies the up*/down* condition on one path of switch hops: once a down
/// hop is taken, no later hop may go up.
void expect_updown_legal(const Routes& routes,
                         const std::vector<iba::NodeId>& switch_chain) {
  bool descended = false;
  for (std::size_t i = 0; i + 1 < switch_chain.size(); ++i) {
    const bool up = routes.is_up_hop(switch_chain[i], switch_chain[i + 1]);
    if (descended)
      ASSERT_FALSE(up) << "up hop after a down hop: deadlock-prone path";
    if (!up) descended = true;
  }
}

std::vector<iba::NodeId> switch_chain_of_path(const FabricGraph& g,
                                              const std::vector<PortRef>& p) {
  std::vector<iba::NodeId> chain;
  for (std::size_t i = 1; i < p.size(); ++i) chain.push_back(p[i].node);
  (void)g;
  return chain;
}

TEST(Routing, SingleSwitchDirect) {
  const auto g = gen::single_switch(4);
  const auto routes = compute_routes(g);
  const auto hosts = g.hosts();
  const auto path = routes.path(hosts[0], hosts[1]);
  ASSERT_EQ(path.size(), 2u);  // host port + one switch port
  EXPECT_EQ(path[0].node, hosts[0]);
  EXPECT_EQ(routes.hops(hosts[0], hosts[1]), 1u);
}

TEST(Routing, LineHopCounts) {
  const auto g = gen::line(4, 1);
  const auto routes = compute_routes(g);
  const auto hosts = g.hosts();  // one per switch, in switch order
  EXPECT_EQ(routes.hops(hosts[0], hosts[3]), 4u);
  EXPECT_EQ(routes.hops(hosts[0], hosts[1]), 2u);
  EXPECT_EQ(routes.hops(hosts[2], hosts[0]), 3u);
}

TEST(Routing, PathEndsAtDestination) {
  IrregularSpec spec;
  spec.switches = 16;
  spec.seed = 4;
  const auto g = gen::irregular(spec);
  const auto routes = compute_routes(g);
  const auto hosts = g.hosts();
  for (std::size_t i = 0; i < 20; ++i) {
    const auto src = hosts[(i * 7) % hosts.size()];
    const auto dst = hosts[(i * 13 + 1) % hosts.size()];
    if (src == dst) continue;
    const auto path = routes.path(src, dst);
    ASSERT_GE(path.size(), 2u);
    const auto& last = path.back();
    const auto peer = g.peer(last.node, last.port);
    ASSERT_TRUE(peer.has_value());
    EXPECT_EQ(peer->node, dst);
  }
}

TEST(Routing, AllPairsLegalOnPaperNetworks) {
  for (const std::uint64_t seed : {1ull, 7ull, 23ull}) {
    IrregularSpec spec;
    spec.switches = 16;
    spec.seed = seed;
    const auto g = gen::irregular(spec);
    const auto routes = compute_routes(g);
    const auto hosts = g.hosts();
    for (const auto src : hosts)
      for (const auto dst : hosts) {
        if (src == dst) continue;
        const auto path = routes.path(src, dst);  // asserts on loops
        expect_updown_legal(routes, switch_chain_of_path(g, path));
      }
  }
}

TEST(Routing, ChannelDependencyGraphIsAcyclic) {
  // Build the channel dependency graph over directed switch-to-switch links
  // induced by all host-pair routes; up*/down* must leave it cycle-free.
  IrregularSpec spec;
  spec.switches = 16;
  spec.seed = 11;
  const auto g = gen::irregular(spec);
  const auto routes = compute_routes(g);
  const auto hosts = g.hosts();

  using Channel = std::pair<iba::NodeId, iba::NodeId>;  // directed sw->sw
  std::map<Channel, std::set<Channel>> deps;
  for (const auto src : hosts)
    for (const auto dst : hosts) {
      if (src == dst) continue;
      const auto path = routes.path(src, dst);
      // Collect consecutive switch-to-switch channels.
      std::vector<Channel> channels;
      for (std::size_t i = 1; i < path.size(); ++i) {
        const auto peer = g.peer(path[i].node, path[i].port);
        ASSERT_TRUE(peer.has_value());
        if (g.is_switch(peer->node))
          channels.emplace_back(path[i].node, peer->node);
      }
      for (std::size_t i = 0; i + 1 < channels.size(); ++i)
        deps[channels[i]].insert(channels[i + 1]);
    }

  // DFS cycle detection.
  std::map<Channel, int> color;  // 0 white, 1 grey, 2 black
  bool cyclic = false;
  std::vector<std::pair<Channel, bool>> stack;
  for (const auto& [ch, _] : deps) {
    if (color[ch] != 0) continue;
    stack.push_back({ch, false});
    while (!stack.empty() && !cyclic) {
      auto [at, done] = stack.back();
      stack.pop_back();
      if (done) {
        color[at] = 2;
        continue;
      }
      if (color[at] == 1) continue;
      color[at] = 1;
      stack.push_back({at, true});
      for (const auto& next : deps[at]) {
        if (color[next] == 1) cyclic = true;
        if (color[next] == 0) stack.push_back({next, false});
      }
    }
  }
  EXPECT_FALSE(cyclic) << "routing function permits a deadlock cycle";
}

TEST(Routing, HostsOnSameSwitchRouteLocally) {
  IrregularSpec spec;
  spec.switches = 8;
  spec.seed = 2;
  const auto g = gen::irregular(spec);
  const auto routes = compute_routes(g);
  // Find two hosts on the same switch.
  std::map<iba::NodeId, std::vector<iba::NodeId>> by_switch;
  for (const auto h : g.hosts())
    by_switch[g.host_uplink(h).node].push_back(h);
  for (const auto& [sw, hosts] : by_switch) {
    ASSERT_GE(hosts.size(), 2u);
    EXPECT_EQ(routes.hops(hosts[0], hosts[1]), 1u);
  }
}

TEST(Routing, DisconnectedFabricThrows) {
  FabricGraph g;
  g.add_switch(4);
  g.add_switch(4);
  EXPECT_THROW(compute_routes(g), std::runtime_error);
}

TEST(Routing, PathsAreShortestAmongLegal) {
  // On a line, legal == physical shortest; verify hop counts equal BFS
  // distance + 1 (the host stage).
  const auto g = gen::line(6, 1);
  const auto routes = compute_routes(g);
  const auto hosts = g.hosts();
  for (std::size_t a = 0; a < hosts.size(); ++a)
    for (std::size_t b = 0; b < hosts.size(); ++b) {
      if (a == b) continue;
      const auto expect =
          static_cast<unsigned>(a > b ? a - b : b - a) + 1;
      EXPECT_EQ(routes.hops(hosts[a], hosts[b]), expect);
    }
}

}  // namespace
}  // namespace ibarb::network

namespace ibarb::network {
namespace {

TEST(Routing, TorusIsDeadlockFreeAndReachable) {
  const auto g = gen::torus2d(3, 3, 1);
  const auto routes = compute_routes(g);
  const auto hosts = g.hosts();
  for (const auto a : hosts)
    for (const auto b : hosts) {
      if (a == b) continue;
      const auto path = routes.path(a, b);  // loop assertion inside
      // Verify up*/down* legality across the switch chain.
      bool descended = false;
      for (std::size_t i = 1; i + 1 < path.size(); ++i) {
        const bool up = routes.is_up_hop(path[i].node, path[i + 1].node);
        ASSERT_FALSE(descended && up);
        if (!up) descended = true;
      }
    }
}

TEST(Routing, FatTreePathsAreTwoOrFourStages) {
  const auto g = gen::fat_tree2(2, 4, 2);
  const auto routes = compute_routes(g);
  const auto hosts = g.hosts();
  for (const auto a : hosts)
    for (const auto b : hosts) {
      if (a == b) continue;
      const auto h = routes.hops(a, b);
      // Same leaf: one switch. Different leaves: leaf + spine + leaf.
      EXPECT_TRUE(h == 1 || h == 3) << "unexpected fat-tree path length " << h;
    }
}

TEST(Routing, MeshPathsAreMinimalOnSmallMesh) {
  const auto g = gen::mesh2d(3, 3, 1);
  const auto routes = compute_routes(g);
  const auto hosts = g.hosts();  // host i on switch i (x=i%3, y=i/3)
  for (unsigned a = 0; a < hosts.size(); ++a)
    for (unsigned b = 0; b < hosts.size(); ++b) {
      if (a == b) continue;
      const unsigned manhattan =
          (a % 3 > b % 3 ? a % 3 - b % 3 : b % 3 - a % 3) +
          (a / 3 > b / 3 ? a / 3 - b / 3 : b / 3 - a / 3);
      // Legal up*/down* paths may detour around the root, but never by more
      // than the mesh diameter.
      const auto h = routes.hops(hosts[a], hosts[b]);
      EXPECT_GE(h, manhattan + 1);
      EXPECT_LE(h, manhattan + 1 + 4);
    }
}

}  // namespace
}  // namespace ibarb::network
