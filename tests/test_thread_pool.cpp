// util::ThreadPool / util::parallel_for — the substrate of the parallel
// sweep engine (ISSUE 1). The tests pin down the contracts the sweeps rely
// on: submit/future semantics, drain-on-destruction, exception propagation,
// and parallel_for covering every index exactly once for empty / single /
// larger-than-pool ranges with deterministic error selection.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/parallel.hpp"
#include "util/thread_pool.hpp"

namespace ibarb::util {
namespace {

TEST(ThreadPool, SubmitReturnsTaskResultThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitVoidTaskCompletes) {
  ThreadPool pool(1);
  std::atomic<int> hits{0};
  auto f = pool.submit([&]() { hits.fetch_add(1); });
  f.wait();
  EXPECT_EQ(hits.load(), 1);
}

TEST(ThreadPool, ManyTasksAllRunExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kTasks = 200;
  std::atomic<int> hits{0};
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i)
    futures.push_back(pool.submit([&]() { hits.fetch_add(1); }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(hits.load(), kTasks);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([]() { return 1; }).get(), 1);
}

TEST(ThreadPool, ExceptionFromWorkerPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(
      {
        try {
          f.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "boom");
          throw;
        }
      },
      std::runtime_error);
  // The worker survives the throw and keeps serving tasks.
  EXPECT_EQ(pool.submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> hits{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(1);
    for (int i = 0; i < 16; ++i) {
      futures.push_back(pool.submit([&]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        hits.fetch_add(1);
      }));
    }
    // Destructor runs here with most of the queue still pending.
  }
  EXPECT_EQ(hits.load(), 16);
  for (auto& f : futures)
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
}

TEST(ThreadPool, DefaultJobsIsAtLeastOne) { EXPECT_GE(default_jobs(), 1u); }

TEST(ParallelFor, EmptyRangeNeverCallsBody) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  parallel_for(pool, 0, [&](std::size_t) { calls.fetch_add(1); });
  parallel_for(4u, 0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, SingleItemRuns) {
  ThreadPool pool(3);
  std::vector<int> hits(1, 0);
  parallel_for(pool, 1, [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(hits[0], 1);
}

TEST(ParallelFor, MoreItemsThanThreadsCoverEveryIndexOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(pool, kN,
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, JobsOneRunsInlineOnCallingThread) {
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  parallel_for(1u, seen.size(),
               [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto id : seen) EXPECT_EQ(id, caller);
}

TEST(ParallelFor, ResultsAreIndependentOfJobCount) {
  // The determinism contract in miniature: body(i) depends only on i.
  auto compute = [](unsigned jobs) {
    std::vector<std::uint64_t> out(64);
    parallel_for(jobs, out.size(),
                 [&](std::size_t i) { out[i] = i * 2654435761u; });
    return out;
  };
  const auto seq = compute(1);
  EXPECT_EQ(seq, compute(2));
  EXPECT_EQ(seq, compute(8));
}

TEST(ParallelFor, RethrowsLowestIndexExceptionAfterDraining) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100;
  std::vector<std::atomic<int>> hits(kN);
  try {
    parallel_for(pool, kN, [&](std::size_t i) {
      hits[i].fetch_add(1);
      if (i % 7 == 3) throw std::runtime_error("idx " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    // Deterministic selection: index 3 is the lowest thrower.
    EXPECT_STREQ(e.what(), "idx 3");
  }
  // Every index was still attempted despite the failures.
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, InlinePathPropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(1u, 4, [](std::size_t i) {
        if (i == 2) throw std::logic_error("inline");
      }),
      std::logic_error);
}

}  // namespace
}  // namespace ibarb::util
