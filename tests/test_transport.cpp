#include "transport/rc.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "util/rng.hpp"

namespace ibarb::transport {
namespace {

RcConfig small_cfg() {
  RcConfig c;
  c.mtu_payload = 256;
  c.window_packets = 8;
  c.retransmit_timeout = 1000;
  c.max_retries = 3;
  return c;
}

TEST(Psn, SerialArithmetic) {
  EXPECT_EQ(psn_add(0, 1), 1u);
  EXPECT_EQ(psn_add(kPsnMask, 1), 0u);  // wrap
  EXPECT_TRUE(psn_before(5, 6));
  EXPECT_FALSE(psn_before(6, 5));
  EXPECT_FALSE(psn_before(6, 6));
  // Wrap-around ordering.
  EXPECT_TRUE(psn_before(kPsnMask, 0));
  EXPECT_TRUE(psn_before(kPsnMask - 2, 3));
  EXPECT_FALSE(psn_before(3, kPsnMask - 2));
}

TEST(RcSender, SegmentsMessageIntoPsnSequence) {
  RcSender tx(small_cfg());
  tx.post_send(600);  // 256 + 256 + 88
  auto a = tx.next_packet(0);
  auto b = tx.next_packet(0);
  auto c = tx.next_packet(0);
  ASSERT_TRUE(a && b && c);
  EXPECT_TRUE(a->first);
  EXPECT_FALSE(a->last);
  EXPECT_FALSE(b->first);
  EXPECT_TRUE(c->last);
  EXPECT_EQ(a->psn, 0u);
  EXPECT_EQ(b->psn, 1u);
  EXPECT_EQ(c->psn, 2u);
  EXPECT_EQ(c->payload_bytes, 88u);
  EXPECT_FALSE(tx.next_packet(0).has_value());  // nothing else queued
}

TEST(RcSender, WindowLimitsInFlight) {
  RcSender tx(small_cfg());  // window 8
  tx.post_send(256 * 20);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(tx.next_packet(0).has_value());
  EXPECT_FALSE(tx.next_packet(0).has_value()) << "window must close at 8";
  tx.on_ack(3, 10);  // frees 4 slots
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(tx.next_packet(10).has_value());
  EXPECT_FALSE(tx.next_packet(10).has_value());
}

TEST(RcSender, CompletionOnlyWhenLastPacketAcked) {
  RcSender tx(small_cfg());
  const auto id = tx.post_send(600);
  (void)tx.next_packet(0);
  (void)tx.next_packet(0);
  (void)tx.next_packet(0);
  tx.on_ack(1, 5);
  EXPECT_TRUE(tx.drain_completions().empty());
  tx.on_ack(2, 6);
  const auto done = tx.drain_completions();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], id);
  EXPECT_TRUE(tx.idle());
}

TEST(RcSender, NakRewindsGoBackN) {
  RcSender tx(small_cfg());
  tx.post_send(256 * 5);
  for (int i = 0; i < 5; ++i) (void)tx.next_packet(0);
  // Receiver got 0,1 then a gap: NAK expecting 2.
  tx.on_nak(2, 10);
  auto r = tx.next_packet(10);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->psn, 2u);
  EXPECT_TRUE(r->retransmission);
  EXPECT_EQ(tx.stats().naks, 1u);
  // 3 and 4 follow, also marked retransmissions.
  EXPECT_EQ(tx.next_packet(10)->psn, 3u);
  EXPECT_EQ(tx.next_packet(10)->psn, 4u);
  // New data after the high-water mark would not be a retransmission.
  tx.post_send(10);
  const auto fresh = tx.next_packet(11);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_FALSE(fresh->retransmission);
}

TEST(RcSender, TimeoutRetransmitsAndEventuallyFails) {
  RcSender tx(small_cfg());  // timeout 1000, 3 retries
  tx.post_send(256);
  (void)tx.next_packet(0);
  // Each consecutive timeout waits current_timeout() — the exponential
  // backoff schedule — so the clock must follow it, not a fixed period.
  iba::Cycle now = 0;
  for (unsigned k = 1; k <= 3; ++k) {
    now += tx.current_timeout();
    tx.on_timer(now + 1);
    EXPECT_EQ(tx.stats().timeouts, k);
    ASSERT_FALSE(tx.failed());
    const auto r = tx.next_packet(now + 1);
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(r->retransmission);
  }
  now += tx.current_timeout();
  tx.on_timer(now + 1);
  EXPECT_TRUE(tx.failed());
  EXPECT_FALSE(tx.next_packet(now + 1).has_value());
}

TEST(RcSender, BackoffDoublesPerTimeoutAndCaps) {
  RcConfig cfg = small_cfg();  // base timeout 1000
  cfg.max_retries = 100;
  cfg.backoff_shift_cap = 3;   // cap at 8x
  RcSender tx(cfg);
  tx.post_send(256);
  (void)tx.next_packet(0);
  EXPECT_EQ(tx.current_timeout(), 1000u);
  iba::Cycle now = 0;
  const iba::Cycle expected[] = {2000, 4000, 8000, 8000, 8000};
  for (const auto next : expected) {
    now += tx.current_timeout();
    tx.on_timer(now);          // exactly at the deadline: fires
    (void)tx.next_packet(now);
    EXPECT_EQ(tx.current_timeout(), next);
  }
  // A timer tick strictly inside the backed-off wait must NOT fire.
  const auto timeouts_before = tx.stats().timeouts;
  tx.on_timer(now + tx.current_timeout() - 1);
  EXPECT_EQ(tx.stats().timeouts, timeouts_before);
}

TEST(RcSender, StaleAckIsNotProgress) {
  RcSender tx(small_cfg());
  tx.post_send(256 * 3);
  (void)tx.next_packet(0);
  (void)tx.next_packet(0);
  (void)tx.next_packet(0);
  tx.on_ack(1, 10);  // packets 0,1 acked
  EXPECT_EQ(tx.packets_in_flight(), 1u);
  tx.on_timer(1011);  // timeout on packet 2
  EXPECT_EQ(tx.current_timeout(), 2000u);
  // A duplicate of the old cumulative ACK acknowledges nothing new: the
  // window must not move and the backoff schedule must not restart.
  tx.on_ack(1, 1500);
  tx.on_ack(0, 1500);
  EXPECT_EQ(tx.packets_in_flight(), 0u) << "timeout rewound the cursor";
  EXPECT_EQ(tx.current_timeout(), 2000u)
      << "stale ACK must not count as forward progress";
  // The real (new) ACK still completes the message afterwards.
  (void)tx.next_packet(1500);
  tx.on_ack(2, 1600);
  EXPECT_TRUE(tx.idle());
  EXPECT_EQ(tx.drain_completions().size(), 1u);
}

TEST(RcSender, NakRestartsBackoffSchedule) {
  RcConfig cfg = small_cfg();
  cfg.max_retries = 10;
  RcSender tx(cfg);
  tx.post_send(256 * 4);
  for (int i = 0; i < 4; ++i) (void)tx.next_packet(0);
  iba::Cycle now = 0;
  for (int k = 0; k < 3; ++k) {
    now += tx.current_timeout();
    tx.on_timer(now);
    (void)tx.next_packet(now);
  }
  EXPECT_EQ(tx.current_timeout(), 8000u);
  // A NAK proves the peer is alive: backoff restarts from the base value
  // and the retry budget resets.
  tx.on_nak(1, now + 10);
  EXPECT_EQ(tx.current_timeout(), 1000u);
  const auto r = tx.next_packet(now + 10);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->psn, 1u);
  EXPECT_TRUE(r->retransmission);
  EXPECT_FALSE(tx.failed());
}

TEST(RcSender, RetryExhaustionIsTerminalErrorState) {
  RcSender tx(small_cfg());  // 3 retries
  tx.post_send(256);
  (void)tx.next_packet(0);
  iba::Cycle now = 0;
  while (!tx.failed()) {
    now += tx.current_timeout();
    tx.on_timer(now);
    (void)tx.next_packet(now);
  }
  EXPECT_EQ(tx.stats().timeouts, 4u);  // 3 retries + the fatal one
  // The QP is in error state: nothing goes out, late ACKs are ignored,
  // the flag never clears.
  EXPECT_FALSE(tx.next_packet(now).has_value());
  tx.on_ack(0, now + 1);
  tx.on_nak(0, now + 2);
  EXPECT_TRUE(tx.failed());
  EXPECT_TRUE(tx.drain_completions().empty());
  tx.post_send(256);
  EXPECT_FALSE(tx.next_packet(now + 3).has_value());
}

TEST(RcSender, AckResetsRetryBudget) {
  RcSender tx(small_cfg());
  tx.post_send(256 * 2);
  (void)tx.next_packet(0);
  (void)tx.next_packet(0);
  tx.on_timer(1001);
  (void)tx.next_packet(1001);
  tx.on_ack(0, 1500);  // progress: budget resets
  tx.on_timer(2501);
  tx.on_timer(3502);
  tx.on_timer(4503);
  EXPECT_FALSE(tx.failed()) << "progress must reset the retry counter";
}

TEST(RcReceiver, InOrderDeliveryAndAcks) {
  RcReceiver rx;
  for (std::uint32_t psn = 0; psn < 5; ++psn) {
    const auto a = rx.on_packet(psn, 256, psn == 4);
    EXPECT_TRUE(a.deliver);
    EXPECT_TRUE(a.send_ack);
    EXPECT_EQ(a.ack_psn, psn);
    EXPECT_EQ(a.message_done, psn == 4);
  }
  EXPECT_EQ(rx.stats().delivered_packets, 5u);
  EXPECT_EQ(rx.stats().messages, 1u);
}

TEST(RcReceiver, DuplicateReAcked) {
  RcReceiver rx;
  (void)rx.on_packet(0, 10, false);
  (void)rx.on_packet(1, 10, false);
  const auto dup = rx.on_packet(0, 10, false);
  EXPECT_TRUE(dup.duplicate);
  EXPECT_FALSE(dup.deliver);
  EXPECT_TRUE(dup.send_ack);
  EXPECT_EQ(dup.ack_psn, 1u);  // cumulative: highest delivered
  EXPECT_EQ(rx.stats().duplicates, 1u);
}

TEST(RcReceiver, GapTriggersNak) {
  RcReceiver rx;
  (void)rx.on_packet(0, 10, false);
  const auto gap = rx.on_packet(2, 10, false);
  EXPECT_FALSE(gap.deliver);
  EXPECT_TRUE(gap.send_nak);
  EXPECT_EQ(gap.nak_psn, 1u);
  EXPECT_EQ(rx.stats().out_of_order, 1u);
}

TEST(RcTransport, PsnWrapAroundWorks) {
  RcSender tx(small_cfg(), kPsnMask - 1);  // two packets to wrap
  RcReceiver rx(kPsnMask - 1);
  tx.post_send(256 * 4);
  for (int i = 0; i < 4; ++i) {
    const auto p = tx.next_packet(i);
    ASSERT_TRUE(p.has_value());
    const auto a = rx.on_packet(p->psn, p->payload_bytes, p->last);
    ASSERT_TRUE(a.deliver);
    tx.on_ack(a.ack_psn, i);
  }
  EXPECT_TRUE(tx.idle());
  EXPECT_EQ(tx.drain_completions().size(), 1u);
}

/// Property: over a lossy, reordering-free channel (IBA links preserve
/// order; loss models CRC-dropped packets), every message is delivered
/// exactly once, in order, regardless of the loss pattern.
class LossyChannelSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LossyChannelSweep, AllMessagesDeliveredExactlyOnceInOrder) {
  util::Xoshiro256 rng(GetParam());
  RcConfig cfg = small_cfg();
  cfg.window_packets = 16;
  cfg.retransmit_timeout = 3000;
  cfg.max_retries = 100;  // the channel is lossy but not dead
  RcSender tx(cfg);
  RcReceiver rx;

  constexpr int kMessages = 40;
  std::vector<std::uint64_t> posted;
  for (int m = 0; m < kMessages; ++m)
    posted.push_back(tx.post_send(1 + rng.below(1200)));

  std::uint64_t delivered_messages = 0;
  std::uint32_t last_delivered_psn = kPsnMask;  // "-1"
  std::vector<std::uint64_t> completions;

  const double loss = 0.05 + 0.25 * rng.uniform();
  iba::Cycle now = 0;
  for (int step = 0; step < 2000000 && !tx.idle(); ++step) {
    now += 50;
    tx.on_timer(now);
    const auto p = tx.next_packet(now);
    if (!p) continue;
    if (rng.chance(loss)) continue;  // data packet lost on the wire
    const auto a = rx.on_packet(p->psn, p->payload_bytes, p->last);
    if (a.deliver) {
      // Strictly in order, no duplicates.
      ASSERT_EQ(p->psn, psn_add(last_delivered_psn, 1));
      last_delivered_psn = p->psn;
      if (a.message_done) ++delivered_messages;
    }
    if (rng.chance(loss)) continue;  // the ACK/NAK can be lost too
    if (a.send_ack) tx.on_ack(a.ack_psn, now);
    if (a.send_nak) tx.on_nak(a.nak_psn, now);
    for (const auto id : tx.drain_completions()) completions.push_back(id);
  }

  ASSERT_FALSE(tx.failed());
  ASSERT_TRUE(tx.idle()) << "channel loss " << loss;
  EXPECT_EQ(delivered_messages, static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(rx.stats().messages, static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(completions, posted) << "sender completions in posting order";
  EXPECT_GT(tx.stats().retransmitted_packets, 0u) << "loss never exercised";
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossyChannelSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace ibarb::transport
