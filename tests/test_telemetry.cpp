#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "util/json_writer.hpp"
#include "util/parallel.hpp"

namespace ibarb::obs {
namespace {

std::string snapshot_json(const Snapshot& s) {
  std::ostringstream os;
  util::JsonWriter w(os);
  s.write_json(w);
  return os.str();
}

TEST(Telemetry, CounterFindOrCreate) {
  TelemetryRegistry reg;
  Counter& c = reg.counter("arb.decisions");
  c.inc();
  c.inc(4);
  // Same name returns the same instrument.
  EXPECT_EQ(&reg.counter("arb.decisions"), &c);
  EXPECT_EQ(reg.counter("arb.decisions").value(), 5u);
  const auto snap = reg.snapshot();
  ASSERT_TRUE(snap.counters.contains("arb.decisions"));
  EXPECT_EQ(snap.counters.at("arb.decisions"), 5u);
}

TEST(Telemetry, GaugePolicies) {
  TelemetryRegistry reg;
  auto& peak = reg.gauge("buf.peak", MergePolicy::kMax);
  peak.set_max(3.0);
  peak.set_max(1.0);  // Lower value must not win.
  EXPECT_DOUBLE_EQ(peak.value(), 3.0);
  auto& level = reg.gauge("buf.level");  // kSum default.
  level.set(2.5);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.gauges.at("buf.peak").second, MergePolicy::kMax);
  EXPECT_DOUBLE_EQ(snap.gauges.at("buf.peak").first, 3.0);
  EXPECT_EQ(snap.gauges.at("buf.level").second, MergePolicy::kSum);
}

TEST(Telemetry, HistogramSaturatesLastBin) {
  TelemetryRegistry reg;
  auto& h = reg.histogram("queue.residency_log2", 4);
  h.record(0);
  h.record(3, 2);
  h.record(17);  // Out of range clamps into the last bin.
  EXPECT_EQ(h.total(), 4u);
  const auto snap = reg.snapshot();
  const auto& bins = snap.histograms.at("queue.residency_log2");
  ASSERT_EQ(bins.size(), 4u);
  EXPECT_EQ(bins[0], 1u);
  EXPECT_EQ(bins[3], 3u);
}

TEST(Telemetry, ProbesAccumulateAdditively) {
  // Several publishers of one name (e.g. every RcSession) must aggregate,
  // not overwrite each other.
  TelemetryRegistry reg;
  std::uint64_t sent_a = 7, sent_b = 5;
  reg.add_probe([&](Snapshot& s) { s.add_counter("rc.packets_sent", sent_a); });
  reg.add_probe([&](Snapshot& s) { s.add_counter("rc.packets_sent", sent_b); });
  EXPECT_EQ(reg.snapshot().counters.at("rc.packets_sent"), 12u);
}

TEST(Telemetry, SnapshotIsIdempotent) {
  TelemetryRegistry reg;
  reg.counter("c").inc(9);
  reg.gauge("g", MergePolicy::kMax).set_max(2.0);
  std::uint64_t probe_val = 3;
  reg.add_probe([&](Snapshot& s) {
    s.add_counter("p", probe_val);
    s.merge_gauge("pg", 1.5, MergePolicy::kMax);
  });
  const auto first = reg.snapshot();
  const auto second = reg.snapshot();
  EXPECT_EQ(first, second);
  EXPECT_EQ(second.counters.at("p"), 3u);
}

TEST(Telemetry, RemoveProbeStopsPublishing) {
  TelemetryRegistry reg;
  const auto id = reg.add_probe([](Snapshot& s) { s.add_counter("x", 1); });
  EXPECT_TRUE(reg.snapshot().counters.contains("x"));
  reg.remove_probe(id);
  EXPECT_FALSE(reg.snapshot().counters.contains("x"));
}

TEST(Telemetry, MergeGaugeHonorsPolicy) {
  Snapshot s;
  s.merge_gauge("sum", 1.0, MergePolicy::kSum);
  s.merge_gauge("sum", 2.0, MergePolicy::kSum);
  s.merge_gauge("max", 1.0, MergePolicy::kMax);
  s.merge_gauge("max", 5.0, MergePolicy::kMax);
  s.merge_gauge("max", 2.0, MergePolicy::kMax);
  s.merge_gauge("min", 4.0, MergePolicy::kMin);
  s.merge_gauge("min", -1.0, MergePolicy::kMin);
  EXPECT_DOUBLE_EQ(s.gauges.at("sum").first, 3.0);
  EXPECT_DOUBLE_EQ(s.gauges.at("max").first, 5.0);
  EXPECT_DOUBLE_EQ(s.gauges.at("min").first, -1.0);
}

TEST(Telemetry, AddHistogramGrowsToLongest) {
  Snapshot s;
  const std::uint64_t short_bins[] = {1, 2};
  const std::uint64_t long_bins[] = {10, 10, 10, 10};
  s.add_histogram("h", short_bins, 2);
  s.add_histogram("h", long_bins, 4);
  const auto& bins = s.histograms.at("h");
  ASSERT_EQ(bins.size(), 4u);
  EXPECT_EQ(bins[0], 11u);
  EXPECT_EQ(bins[1], 12u);
  EXPECT_EQ(bins[2], 10u);
  EXPECT_EQ(bins[3], 10u);
}

TEST(Telemetry, AddHistogramSaturatesInsteadOfWrapping) {
  // Merging near-full bins must clamp at UINT64_MAX, never wrap to a small
  // count that would silently corrupt percentile math.
  Snapshot s;
  const std::uint64_t a[] = {UINT64_MAX - 5, 1};
  const std::uint64_t b[] = {10, 2};
  s.add_histogram("h", a, 2);
  s.add_histogram("h", b, 2);
  const auto& bins = s.histograms.at("h");
  EXPECT_EQ(bins[0], UINT64_MAX);
  EXPECT_EQ(bins[1], 3u);
}

TEST(Telemetry, MergeDisjointKeySets) {
  // Runs that never observed each other's instruments: the union must carry
  // every key with its own value untouched.
  Snapshot a;
  a.add_counter("only.a", 7);
  a.merge_gauge("gauge.a", 1.5, MergePolicy::kSum);
  const std::uint64_t bins_a[] = {1, 2, 3};
  a.add_histogram("hist.a", bins_a, 3);
  Snapshot b;
  b.add_counter("only.b", 9);
  b.merge_gauge("gauge.b", -2.0, MergePolicy::kMin);
  const std::uint64_t bins_b[] = {4};
  b.add_histogram("hist.b", bins_b, 1);

  const auto merged = Snapshot::merge({a, b});
  EXPECT_EQ(merged.counters.size(), 2u);
  EXPECT_EQ(merged.counters.at("only.a"), 7u);
  EXPECT_EQ(merged.counters.at("only.b"), 9u);
  EXPECT_DOUBLE_EQ(merged.gauges.at("gauge.a").first, 1.5);
  EXPECT_DOUBLE_EQ(merged.gauges.at("gauge.b").first, -2.0);
  EXPECT_EQ(merged.gauges.at("gauge.b").second, MergePolicy::kMin);
  EXPECT_EQ(merged.histograms.at("hist.a"),
            (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(merged.histograms.at("hist.b"), (std::vector<std::uint64_t>{4}));
}

Snapshot make_run_snapshot(std::size_t i) {
  TelemetryRegistry reg;
  reg.counter("arb.decisions").inc(100 + i);
  reg.gauge("buf.peak", MergePolicy::kMax).set_max(double(i % 3));
  auto& h = reg.histogram("queue.residency_log2", 4);
  h.record(i % 4, i + 1);
  // Instrument present only in some runs: must carry through a merge.
  if (i % 2 == 0) reg.counter("faults.injected").inc(i);
  return reg.snapshot();
}

TEST(Telemetry, MergeCombinesAcrossRuns) {
  std::vector<Snapshot> parts;
  for (std::size_t i = 0; i < 4; ++i) parts.push_back(make_run_snapshot(i));
  const auto merged = Snapshot::merge(parts);
  EXPECT_EQ(merged.counters.at("arb.decisions"), 100u + 101 + 102 + 103);
  EXPECT_EQ(merged.counters.at("faults.injected"), 0u + 2);
  EXPECT_DOUBLE_EQ(merged.gauges.at("buf.peak").first, 2.0);
  std::uint64_t total = 0;
  for (const auto b : merged.histograms.at("queue.residency_log2")) total += b;
  EXPECT_EQ(total, 1u + 2 + 3 + 4);
}

TEST(Telemetry, MergedSnapshotDeterministicAcrossJobs) {
  // The --jobs contract: per-run registries filled in parallel, merged in
  // run-index order, must serialize byte-identically for any worker count.
  constexpr std::size_t kRuns = 16;
  auto run_with_jobs = [&](unsigned jobs) {
    std::vector<Snapshot> parts(kRuns);
    util::parallel_for(jobs, kRuns,
                       [&](std::size_t i) { parts[i] = make_run_snapshot(i); });
    return Snapshot::merge(parts);
  };
  const auto seq = run_with_jobs(1);
  const auto par = run_with_jobs(4);
  EXPECT_EQ(seq, par);
  EXPECT_EQ(snapshot_json(seq), snapshot_json(par));
}

TEST(Telemetry, WriteJsonSortsKeys) {
  Snapshot s;
  s.add_counter("zeta", 1);
  s.add_counter("alpha", 2);
  const auto json = snapshot_json(s);
  EXPECT_LT(json.find("alpha"), json.find("zeta"));
  EXPECT_EQ(json.find("\"gauges\":{}") != std::string::npos ||
                json.find("\"gauges\": {}") != std::string::npos,
            true);
}

}  // namespace
}  // namespace ibarb::obs
