#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "iba/packet.hpp"
#include "obs/chrome_trace.hpp"
#include "sim/trace.hpp"
#include "util/json_writer.hpp"

namespace ibarb::obs {
namespace {

std::string render(const Report& r, bool pretty = false) {
  std::ostringstream os;
  r.write(os, pretty);
  return os.str();
}

TEST(Report, EnvelopeStructure) {
  Report r("demo");
  const auto s = render(r);
  EXPECT_EQ(s,
            "{\"schema\":\"ibarb.report/2\",\"bench\":\"demo\","
            "\"meta\":{},\"config\":{},\"figures\":{}}\n");
}

TEST(Report, ConfigKeepsInsertionOrder) {
  Report r("demo");
  r.config("zeta", std::uint64_t{1});
  r.config("alpha", std::string("x"));
  r.config("ratio", 0.5);
  r.config("flag", true);
  const auto s = render(r);
  EXPECT_NE(s.find("\"config\":{\"zeta\":1,\"alpha\":\"x\","
                   "\"ratio\":0.5,\"flag\":true}"),
            std::string::npos);
}

TEST(Report, TelemetrySectionOnlyWhenAttached) {
  Report r("demo");
  EXPECT_EQ(render(r).find("telemetry"), std::string::npos);
  Snapshot snap;
  snap.add_counter("arb.decisions", 3);
  r.telemetry(std::move(snap));
  const auto s = render(r);
  EXPECT_NE(s.find("\"telemetry\":{\"counters\":{\"arb.decisions\":3}"),
            std::string::npos);
}

TEST(Report, FiguresStreamThroughCallback) {
  Report r("demo");
  r.figure("series", [](util::JsonWriter& w) {
    w.begin_array();
    w.value(1).value(2);
    w.end_array();
  });
  r.figure("scalar", [](util::JsonWriter& w) { w.value(7); });
  const auto s = render(r);
  EXPECT_NE(s.find("\"figures\":{\"series\":[1,2],\"scalar\":7}"),
            std::string::npos);
}

TEST(Report, EndsWithSingleNewline) {
  const auto s = render(Report("demo"));
  ASSERT_FALSE(s.empty());
  EXPECT_EQ(s.back(), '\n');
  EXPECT_NE(s[s.size() - 2], '\n');
}

TEST(Report, PrettyAndCompactAgreeOnContent) {
  Report r("demo");
  r.config("seed", std::uint64_t{21});
  const auto compact = render(r, false);
  const auto pretty = render(r, true);
  EXPECT_NE(compact, pretty);
  std::string stripped;
  for (const char c : pretty)
    if (c != ' ' && c != '\n') stripped += c;
  std::string compact_stripped;
  for (const char c : compact)
    if (c != '\n') compact_stripped += c;
  EXPECT_EQ(stripped, compact_stripped);
}

sim::PacketTrace make_trace() {
  sim::PacketTrace trace(16);
  iba::Packet p;
  p.id = 1;
  p.connection = 0;
  trace.record(100, sim::TraceEvent::kInject, 0, 0, 2, p);
  trace.record(150, sim::TraceEvent::kLinkTx, 0, 1, 2, p);
  trace.record(220, sim::TraceEvent::kDeliver, 3, 0, 2, p);
  iba::Packet q;
  q.id = 2;
  q.connection = 0;
  trace.record(130, sim::TraceEvent::kInject, 0, 0, 2, q);
  trace.record(180, sim::TraceEvent::kDrop, 1, 0, 2, q);
  return trace;
}

TEST(ChromeTrace, EmitsValidEnvelopeAndEvents) {
  std::ostringstream os;
  write_chrome_trace(os, make_trace());
  const auto s = os.str();
  EXPECT_EQ(s.find("{\"traceEvents\":["), 0u);
  // Packet 1's inject→link_tx segment is a complete ("X") span.
  EXPECT_NE(s.find("\"ph\":\"X\""), std::string::npos);
  // Packet 2's drop is an instant event.
  EXPECT_NE(s.find("\"ph\":\"i\""), std::string::npos);
  // Process-name metadata rows exist.
  EXPECT_NE(s.find("\"ph\":\"M\""), std::string::npos);
}

TEST(ChromeTrace, PhaseSpansLandOnControlTrack) {
  std::ostringstream os;
  std::vector<PhaseSpan> spans;
  spans.push_back({"link_down", "link_down leaf0.2", 1000, 5000});
  write_chrome_trace(os, make_trace(), spans);
  const auto s = os.str();
  EXPECT_NE(s.find("\"link_down leaf0.2\""), std::string::npos);
  // Control-plane rows use the reserved pid, far above any connection id.
  EXPECT_NE(s.find("1000000000"), std::string::npos);
}

TEST(Report, SeriesSectionOnlyWhenAttached) {
  Report r("demo");
  EXPECT_EQ(render(r).find("\"series\""), std::string::npos);
  SeriesData data;
  data.sample_every = 4096;
  data.window_cycles = 4096;
  data.time = {4096, 8192};
  r.series(data);
  const auto s = render(r);
  EXPECT_NE(s.find("\"series\":{"), std::string::npos);
  EXPECT_NE(s.find("\"sample_every\":4096"), std::string::npos);
  EXPECT_NE(s.find("\"time\":[4096,8192]"), std::string::npos);
}

TEST(ChromeTrace, CounterTracksEmitCEvents) {
  std::ostringstream os;
  std::vector<CounterTrack> counters;
  counters.push_back({"qos.missed", {{4096, 0.0}, {8192, 3.0}}});
  write_chrome_trace(os, make_trace(), {}, counters);
  const auto s = os.str();
  EXPECT_NE(s.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(s.find("\"qos.missed\""), std::string::npos);
  EXPECT_NE(s.find("\"value\":3"), std::string::npos);
  // Counters alone must still name the control-plane process row.
  EXPECT_NE(s.find("\"control plane\""), std::string::npos);
}

TEST(ChromeTrace, DeterministicForSameInput) {
  std::ostringstream a;
  std::ostringstream b;
  write_chrome_trace(a, make_trace());
  write_chrome_trace(b, make_trace());
  EXPECT_EQ(a.str(), b.str());
}

TEST(ChromeTrace, EmptyTraceStillParses) {
  std::ostringstream os;
  write_chrome_trace(os, sim::PacketTrace{});
  const auto s = os.str();
  EXPECT_EQ(s.find("{\"traceEvents\":["), 0u);
}

}  // namespace
}  // namespace ibarb::obs
