#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/thread_pool.hpp"

#include <stdexcept>
#include <vector>

namespace ibarb::util {
namespace {

Cli make(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Cli(static_cast<int>(args.size()), args.data());
}

TEST(Cli, SpaceSeparatedValue) {
  const auto cli = make({"--switches", "16"});
  EXPECT_EQ(cli.get_int("switches", 0), 16);
}

TEST(Cli, EqualsSeparatedValue) {
  const auto cli = make({"--seed=99"});
  EXPECT_EQ(cli.get_int("seed", 0), 99);
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  const auto cli = make({});
  EXPECT_EQ(cli.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(cli.get("missing", "fallback"), "fallback");
  EXPECT_TRUE(cli.get_bool("missing", true));
}

TEST(Cli, BareFlagIsTrue) {
  const auto cli = make({"--quick"});
  EXPECT_TRUE(cli.has("quick"));
  EXPECT_TRUE(cli.get_bool("quick", false));
}

TEST(Cli, DoubleParsing) {
  const auto cli = make({"--load", "0.75"});
  EXPECT_DOUBLE_EQ(cli.get_double("load", 0.0), 0.75);
}

TEST(Cli, StringValue) {
  const auto cli = make({"--mtu", "large"});
  EXPECT_EQ(cli.get("mtu", "small"), "large");
}

TEST(Cli, RejectsPositionalArguments) {
  EXPECT_THROW(make({"oops"}), std::invalid_argument);
}

TEST(Cli, RejectsMalformedInteger) {
  const auto cli = make({"--n", "12x"});
  EXPECT_THROW(cli.get_int("n", 0), std::invalid_argument);
}

TEST(Cli, RejectsMalformedDouble) {
  const auto cli = make({"--x", "abc"});
  EXPECT_THROW(cli.get_double("x", 0.0), std::invalid_argument);
}

TEST(Cli, UnusedFlagsReported) {
  const auto cli = make({"--used", "1", "--typo", "2"});
  (void)cli.get_int("used", 0);
  EXPECT_EQ(cli.unused_flags(), "--typo");
}

TEST(Cli, JobsParsesExplicitCount) {
  const auto cli = make({"--jobs", "3"});
  EXPECT_EQ(cli.jobs(), 3u);
}

TEST(Cli, JobsDefaultsToHardwareConcurrency) {
  const auto cli = make({});
  EXPECT_EQ(cli.jobs(), default_jobs());
  EXPECT_GE(cli.jobs(), 1u);
  // --jobs 0 means "auto", same as the default.
  EXPECT_EQ(make({"--jobs", "0"}).jobs(), default_jobs());
}

TEST(Cli, JobsRejectsNegativeCounts) {
  const auto cli = make({"--jobs=-2"});
  EXPECT_THROW(cli.jobs(), std::invalid_argument);
}

TEST(Cli, NegativeNumbersAsValues) {
  // A negative value does not start with "--", so space form works.
  const auto cli = make({"--offset", "-5"});
  EXPECT_EQ(cli.get_int("offset", 0), -5);
}

TEST(Cli, StdFlagsDefaults) {
  const auto cli = make({});
  const auto sf = cli.std_flags(/*default_seed=*/21);
  EXPECT_EQ(sf.jobs, cli.jobs());
  EXPECT_FALSE(sf.json);
  EXPECT_EQ(sf.seed, 21u);
  EXPECT_TRUE(sf.trace_out.empty());
  EXPECT_EQ(sf.sample_every, 0u);
  EXPECT_TRUE(sf.series_csv.empty());
  EXPECT_FALSE(sf.profile);
  EXPECT_FALSE(sf.quiet);
}

TEST(Cli, StdFlagsParsesFullBlock) {
  const auto cli = make({"--jobs", "2", "--json", "--seed", "7",
                         "--trace-out", "t.json", "--sample-every", "4096",
                         "--series-csv", "out", "--profile", "--quiet"});
  const auto sf = cli.std_flags();
  EXPECT_EQ(sf.jobs, 2u);
  EXPECT_TRUE(sf.json);
  EXPECT_EQ(sf.seed, 7u);
  EXPECT_EQ(sf.trace_out, "t.json");
  EXPECT_EQ(sf.sample_every, 4096u);
  EXPECT_EQ(sf.series_csv, "out");
  EXPECT_TRUE(sf.profile);
  EXPECT_TRUE(sf.quiet);
}

TEST(Cli, StdFlagsValidatesTopoAtParseTime) {
  EXPECT_EQ(make({}).std_flags().topo, "");
  EXPECT_EQ(make({"--topo", "torus3d:x=3,y=3,z=3"}).std_flags().topo,
            "torus3d:x=3,y=3,z=3");
  // Unknown family, unknown key, and bad value all fail before any bench
  // logic runs, naming the flag.
  for (const char* bad :
       {"hypercube", "torus3d:w=3", "torus3d:x=zero", "single:rate=3"}) {
    try {
      make({"--topo", bad}).std_flags();
      FAIL() << bad << " accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("--topo"), std::string::npos)
          << e.what();
    }
  }
}

TEST(Cli, StdFlagsValidatesRoutingAtParseTime) {
  EXPECT_EQ(make({}).std_flags().routing, "");
  EXPECT_EQ(make({"--routing", "fattree-dmodk"}).std_flags().routing,
            "fattree-dmodk");
  try {
    make({"--routing", "ecmp"}).std_flags();
    FAIL() << "unknown engine accepted";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--routing"), std::string::npos) << msg;
    EXPECT_NE(msg.find("updown|minimal-vl-escape|fattree-dmodk"),
              std::string::npos)
        << msg;
  }
}

TEST(Cli, StdFlagsRejectsNegativeSampleEvery) {
  const auto cli = make({"--sample-every=-1"});
  EXPECT_THROW(cli.std_flags(), std::invalid_argument);
}

TEST(Cli, StdFlagsRejectsMissingOutputParents) {
  // A typo'd directory must fail at flag parse, not after the simulation.
  EXPECT_THROW(make({"--trace-out", "/nonexistent-dir-xyz/t.json"})
                   .std_flags(),
               std::invalid_argument);
  EXPECT_THROW(make({"--series-csv", "/nonexistent-dir-xyz/series"})
                   .std_flags(),
               std::invalid_argument);
  // Bare filenames and "." parents resolve against the cwd, which exists.
  EXPECT_NO_THROW(make({"--trace-out", "t.json"}).std_flags());
  EXPECT_NO_THROW(make({"--series-csv", "./series"}).std_flags());
}

TEST(Cli, StdFlagsMarksBlockAsQueried) {
  // std_flags must consume the whole standard block so warn_unused only
  // fires on genuinely unknown flags.
  const auto cli = make({"--json", "--trace-out=t.json", "--oops", "1"});
  (void)cli.std_flags();
  EXPECT_EQ(cli.unused_flags(), "--oops");
}

}  // namespace
}  // namespace ibarb::util
