#include "qos/traffic_classes.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ibarb::qos {
namespace {

TEST(Catalogue, HasTenQosAndThreeBestEffortClasses) {
  const auto cat = paper_catalogue();
  unsigned qos = 0;
  unsigned be = 0;
  for (const auto& p : cat) (p.max_distance != 0 ? qos : be)++;
  EXPECT_EQ(qos, 10u);
  EXPECT_EQ(be, 3u);
}

TEST(Catalogue, DistancesMatchPaperStructure) {
  const auto cat = paper_catalogue();
  // Table 1: one SL each at distances 2/4/8/16; two at 32; four at 64.
  std::multiset<unsigned> distances;
  for (const auto& p : cat)
    if (p.max_distance != 0) distances.insert(p.max_distance);
  EXPECT_EQ(distances.count(2), 1u);
  EXPECT_EQ(distances.count(4), 1u);
  EXPECT_EQ(distances.count(8), 1u);
  EXPECT_EQ(distances.count(16), 1u);
  EXPECT_EQ(distances.count(32), 2u);
  EXPECT_EQ(distances.count(64), 4u);
}

TEST(Catalogue, EverySlHasItsOwnVl) {
  const auto cat = paper_catalogue();
  std::set<iba::VirtualLane> vls;
  for (const auto& p : cat) {
    EXPECT_EQ(p.vl, p.sl);  // the paper's assignment with 16 VLs
    EXPECT_LT(p.vl, iba::kManagementVl);
    vls.insert(p.vl);
  }
  EXPECT_EQ(vls.size(), cat.size());
}

TEST(Catalogue, QosBandwidthRangesAreSane) {
  for (const auto& p : paper_catalogue()) {
    if (p.max_distance == 0) continue;
    EXPECT_GT(p.min_mbps, 0.0);
    EXPECT_GE(p.max_mbps, p.min_mbps);
    EXPECT_LE(p.max_mbps, 32.0);  // Table 1 tops out at 32 Mbps
  }
}

TEST(Catalogue, GuaranteedCategoriesSplitByDeadline) {
  for (const auto& p : paper_catalogue()) {
    if (p.max_distance == 0) continue;
    if (p.max_distance < 64)
      EXPECT_EQ(p.category, TrafficCategory::kDbts);
    else
      EXPECT_EQ(p.category, TrafficCategory::kDb);
  }
}

TEST(PickSl, ExactDistanceAndRange) {
  const auto cat = paper_catalogue();
  const auto* p = pick_sl(cat, 8, 4.0);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->max_distance, 8u);
}

TEST(PickSl, NeverPicksLaxerDistance) {
  const auto cat = paper_catalogue();
  for (unsigned d = 2; d <= 64; d *= 2) {
    const auto* p = pick_sl(cat, d, 2.0);
    ASSERT_NE(p, nullptr);
    EXPECT_LE(p->max_distance, d);
  }
}

TEST(PickSl, BandwidthSubclassSelection) {
  const auto cat = paper_catalogue();
  // Distance 64, 20 Mbps: must land on SL9 (16-32 range), not SL6/7/8.
  const auto* p = pick_sl(cat, 64, 20.0);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->sl, 9);
  // Distance 64, 2 Mbps: one of the small-bandwidth DB classes.
  const auto* q = pick_sl(cat, 64, 2.0);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->max_distance, 64u);
  EXPECT_LE(q->min_mbps, 2.0);
  EXPECT_GE(q->max_mbps, 2.0);
}

TEST(PickSl, NothingForImpossibleDistance) {
  const auto cat = paper_catalogue();
  EXPECT_EQ(pick_sl(cat, 1, 1.0), nullptr);
}

TEST(FindSl, LooksUpBySl) {
  const auto cat = paper_catalogue();
  const auto* p = find_sl(cat, 5);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->sl, 5);
  EXPECT_EQ(find_sl(cat, 15), nullptr);
}

TEST(LowPriorityConfig, CoversBestEffortFamilyWithOrderedWeights) {
  const auto cat = paper_catalogue();
  const auto low = low_priority_config(cat);
  ASSERT_EQ(low.size(), 3u);
  std::uint8_t pbe = 0, be = 0, ch = 0;
  for (const auto& [vl, w] : low) {
    const auto* p = find_sl(cat, static_cast<iba::ServiceLevel>(vl));
    ASSERT_NE(p, nullptr);
    if (p->category == TrafficCategory::kPbe) pbe = w;
    if (p->category == TrafficCategory::kBe) be = w;
    if (p->category == TrafficCategory::kCh) ch = w;
  }
  EXPECT_GT(pbe, be);
  EXPECT_GT(be, ch);
}

TEST(CategoryNames, Distinct) {
  std::set<std::string> names;
  for (const auto c : {TrafficCategory::kDbts, TrafficCategory::kDb,
                       TrafficCategory::kPbe, TrafficCategory::kBe,
                       TrafficCategory::kCh})
    names.insert(to_string(c));
  EXPECT_EQ(names.size(), 5u);
}

}  // namespace
}  // namespace ibarb::qos
