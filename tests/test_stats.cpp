#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ibarb::util {
namespace {

TEST(RunningStats, EmptyIsZeroed) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 100; ++i) {
    const double x = 0.37 * i * i - 3.0 * i + 1.0;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(Histogram, BinsAndFractions) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 10u);
  for (std::size_t b = 0; b < 10; ++b) {
    EXPECT_EQ(h.bin(b), 1u);
    EXPECT_DOUBLE_EQ(h.fraction(b), 0.1);
  }
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

TEST(Histogram, OutOfRangeClampsIntoEdgeBins) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(2.0);
  h.add(1.0);  // exactly hi -> last bin
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(3), 2u);
}

TEST(Histogram, CdfMonotoneAndBounded) {
  Histogram h(0.0, 100.0, 20);
  for (int i = 0; i < 1000; ++i) h.add((i * 37) % 100);
  double prev = -1.0;
  for (double x = -10.0; x <= 110.0; x += 5.0) {
    const double c = h.cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(h.cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.cdf(100.0), 1.0);
}

TEST(Percentile, NearestRank) {
  const std::vector<double> v{15, 20, 35, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 15.0);
  EXPECT_DOUBLE_EQ(percentile(v, 30), 20.0);
  EXPECT_DOUBLE_EQ(percentile(v, 40), 20.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 35.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 50.0);
}

TEST(Percentile, EmptyGivesZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Percentile, UnsortedInput) {
  const std::vector<double> v{9, 1, 5, 3, 7};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 9.0);
}

TEST(RunningStats, SumIsCompensated) {
  // Classic Kahan stress: one huge value among many tiny ones. A naive
  // running sum (and mean()*count reconstruction) loses the tiny terms.
  RunningStats s;
  s.add(1e16);
  for (int i = 0; i < 1000; ++i) s.add(1.0);
  s.add(-1e16);
  EXPECT_DOUBLE_EQ(s.sum(), 1000.0);
}

TEST(RunningStats, SumBeatsMeanTimesCount) {
  RunningStats s;
  double exact = 0.0;
  for (int i = 1; i <= 100000; ++i) {
    const double x = 1.0 / double(i);
    s.add(x);
    exact += x;  // Ascending magnitudes keep this reference accurate enough.
  }
  const double via_sum = s.sum();
  const double via_mean = s.mean() * double(s.count());
  EXPECT_LE(std::abs(via_sum - exact), std::abs(via_mean - exact) + 1e-12);
  EXPECT_NEAR(via_sum, exact, 1e-9);
}

TEST(RunningStats, MergePreservesCompensatedSum) {
  RunningStats a;
  RunningStats b;
  a.add(1e16);
  for (int i = 0; i < 500; ++i) a.add(1.0);
  for (int i = 0; i < 500; ++i) b.add(1.0);
  b.add(-1e16);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.sum(), 1000.0);
}

TEST(RunningStats, ResetClearsCompensation) {
  RunningStats s;
  s.add(1e16);
  s.add(1.0);
  s.reset();
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.sum(), 2.0);
}

}  // namespace
}  // namespace ibarb::util
