// Tests for the admission-control churn service (src/control/): the binary
// stream primitives, the snapshot envelope, save/load round-trips at every
// layer, engine determinism and overload protection, and the headline
// property — a world restored from a mid-run snapshot finishes the run with
// exactly the same control-plane state as the uninterrupted world.
#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "arbtable/table_manager.hpp"
#include "control/churn_engine.hpp"
#include "control/snapshot.hpp"
#include "network/graph.hpp"
#include "qos/admission.hpp"
#include "qos/traffic_classes.hpp"
#include "sim/simulator.hpp"
#include "subnet/subnet_manager.hpp"
#include "util/binary.hpp"

namespace ibarb {
namespace {

// --------------------------------------------------------------------------
// Binary stream primitives

TEST(Binary, RoundTripAllTypes) {
  util::BinWriter w;
  w.put_u8(0xAB);
  w.put_bool(true);
  w.put_bool(false);
  w.put_u16(0xBEEF);
  w.put_u32(0xDEADBEEFu);
  w.put_u64(0x0123456789ABCDEFull);
  w.put_double(-1234.5678);
  w.put_bytes(std::vector<std::uint8_t>{1, 2, 3});
  w.put_string("hello");

  util::BinReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_TRUE(r.get_bool());
  EXPECT_FALSE(r.get_bool());
  EXPECT_EQ(r.get_u16(), 0xBEEF);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(r.get_double(), -1234.5678);
  EXPECT_EQ(r.get_bytes(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_TRUE(r.at_end());
}

TEST(Binary, UnderrunThrows) {
  util::BinWriter w;
  w.put_u16(7);
  util::BinReader r(w.bytes());
  (void)r.get_u8();
  (void)r.get_u8();
  EXPECT_THROW((void)r.get_u8(), std::runtime_error);
}

TEST(Binary, OversizedLengthPrefixThrows) {
  util::BinWriter w;
  w.put_u64(1ull << 40);  // length prefix far beyond the payload
  util::BinReader r(w.bytes());
  EXPECT_THROW((void)r.get_bytes(), std::runtime_error);
}

// --------------------------------------------------------------------------
// Snapshot envelope

TEST(SnapshotEnvelope, SealOpenRoundTrip) {
  const std::vector<std::uint8_t> payload{5, 4, 3, 2, 1};
  const auto blob = control::seal_envelope(payload);
  EXPECT_EQ(control::open_envelope(blob), payload);
}

TEST(SnapshotEnvelope, DetectsDamage) {
  const std::vector<std::uint8_t> payload{9, 8, 7, 6};
  auto blob = control::seal_envelope(payload);

  auto flipped = blob;
  flipped.back() ^= 0x01;  // payload bit damage -> CRC mismatch
  EXPECT_THROW((void)control::open_envelope(flipped), std::runtime_error);

  auto truncated = blob;
  truncated.pop_back();
  EXPECT_THROW((void)control::open_envelope(truncated), std::runtime_error);

  auto wrong_magic = blob;
  wrong_magic[0] ^= 0xFF;
  EXPECT_THROW((void)control::open_envelope(wrong_magic), std::runtime_error);

  EXPECT_THROW((void)control::open_envelope({}), std::runtime_error);
}

// --------------------------------------------------------------------------
// TableManager save/load

TEST(TableManagerSnapshot, RoundTripIsBitExact) {
  arbtable::TableManager::Config cfg;
  cfg.link_data_mbps = 2000.0;
  cfg.seed = 5;
  arbtable::TableManager m(cfg);
  // Leave the manager mid-churn: live sequences, a recycled handle, stats.
  const auto r8 = *arbtable::compute_requirement(10.0, 2000.0, 8);
  const auto r16 = *arbtable::compute_requirement(4.0, 2000.0, 16);
  const auto a = *m.allocate(3, r8, 10.0);
  const auto b = *m.allocate(2, r16, 4.0);
  (void)*m.allocate(2, r16, 4.0);  // shares with b
  m.release(a, r8, 10.0);          // frees a handle, triggers defrag
  (void)b;

  util::BinWriter w;
  m.save_state(w);

  arbtable::TableManager loaded(cfg);
  util::BinReader r(w.bytes());
  loaded.load_state(r);
  EXPECT_TRUE(r.at_end());
  EXPECT_TRUE(loaded.check_invariants());
  EXPECT_TRUE(loaded.audit_free_set_optimality());
  EXPECT_EQ(loaded.free_entries(), m.free_entries());
  EXPECT_EQ(loaded.live_sequences(), m.live_sequences());
  EXPECT_DOUBLE_EQ(loaded.reserved_mbps(), m.reserved_mbps());
  EXPECT_EQ(loaded.stats().allocations, m.stats().allocations);
  EXPECT_EQ(loaded.stats().shares, m.stats().shares);

  util::BinWriter again;
  loaded.save_state(again);
  EXPECT_EQ(again.bytes(), w.bytes()) << "save/load must be a true inverse";
}

TEST(TableManagerSnapshot, ConfigMismatchThrows) {
  arbtable::TableManager::Config cfg;
  cfg.seed = 5;
  arbtable::TableManager m(cfg);
  util::BinWriter w;
  m.save_state(w);

  cfg.seed = 6;
  arbtable::TableManager other(cfg);
  util::BinReader r(w.bytes());
  EXPECT_THROW(other.load_state(r), std::runtime_error);
}

// --------------------------------------------------------------------------
// Full-world harness

/// One spine, two leaves, two hosts per leaf.
network::FabricGraph make_small_fabric() {
  network::FabricGraph g;
  const iba::Link link{iba::LinkRate::k4x, 2};
  const auto spine = g.add_switch(2);
  const iba::NodeId leaf[2] = {g.add_switch(3), g.add_switch(3)};
  for (unsigned l = 0; l < 2; ++l)
    g.connect(leaf[l], 0, spine, static_cast<iba::PortIndex>(l), link);
  for (const auto l : leaf)
    for (unsigned h = 0; h < 2; ++h) {
      const auto host = g.add_host();
      g.connect(host, 0, l, static_cast<iba::PortIndex>(1 + h), link);
    }
  return g;
}

control::ChurnConfig quick_churn(std::uint64_t seed) {
  control::ChurnConfig c;
  c.tick = 1'000;
  c.horizon = 150'000;
  c.seed = seed;
  return c;
}

struct TestWorld {
  network::FabricGraph graph;
  subnet::SubnetManager sm;
  qos::AdmissionControl admission;
  sim::Simulator sim;
  std::optional<control::ChurnEngine> engine;

  explicit TestWorld(std::uint64_t seed, const control::ChurnConfig& ccfg)
      : graph(make_small_fabric()), sm(graph),
        admission(graph, sm.routes(), qos::paper_catalogue(),
                  [&] {
                    qos::AdmissionControl::Config ac;
                    ac.seed = seed;
                    return ac;
                  }()),
        sim(graph, sm.routes(), [&] {
          sim::SimConfig scfg;
          scfg.seed = seed ^ 0x5117ull;
          return scfg;
        }()) {
    admission.attach_telemetry(sim.telemetry());
    engine.emplace(sim, admission, graph, nullptr, nullptr, ccfg);
  }

  control::World refs() {
    return control::World{&admission, nullptr, nullptr, &*engine};
  }

  /// The deterministic control-plane families (ctl.*, tm.*) only: data-plane
  /// counters legitimately differ between an uninterrupted world and one
  /// rebuilt from a snapshot.
  obs::Snapshot control_telemetry() {
    obs::Snapshot out;
    const auto full = sim.telemetry_snapshot();
    for (const auto& [k, v] : full.counters)
      if (k.starts_with("ctl.") || k.starts_with("tm."))
        out.counters.emplace(k, v);
    for (const auto& [k, v] : full.gauges)
      if (k.starts_with("ctl.") || k.starts_with("tm."))
        out.gauges.emplace(k, v);
    return out;
  }
};

// --------------------------------------------------------------------------
// ChurnEngine behaviour

TEST(ChurnEngine, RunsDeterministically) {
  const auto run = [](std::uint64_t seed) {
    TestWorld w(seed, quick_churn(seed));
    w.engine->start();
    w.sm.configure_fabric(w.sim, w.admission);
    w.sim.run_until(150'000);
    std::string why;
    EXPECT_TRUE(w.admission.audit_full(&why)) << why;
    return w.control_telemetry();
  };
  const auto a = run(11);
  const auto b = run(11);
  const auto c = run(12);
  EXPECT_EQ(a, b) << "same seed must reproduce the identical run";
  EXPECT_NE(a, c) << "different seeds must actually differ";
  EXPECT_GT(a.counters.at("ctl.submitted"), 0u);
  EXPECT_GT(a.counters.at("ctl.admitted_guaranteed"), 0u);
  EXPECT_GT(a.counters.at("ctl.teardowns"), 0u);
  EXPECT_EQ(a.counters.at("ctl.false_rejects"), 0u);
}

TEST(ChurnEngine, OverloadProtectionEngages) {
  // Tiny queues + heavy arrivals + one-op service: guaranteed setups must
  // be backpressured into retries and best-effort shed at the watermark,
  // yet nothing may turn into a Theorem-1 false reject.
  auto ccfg = quick_churn(31);
  ccfg.arrivals_per_tick = 12;
  ccfg.serve_budget = 1;
  ccfg.queue_capacity = 4;
  TestWorld w(31, ccfg);
  w.engine->start();
  w.sm.configure_fabric(w.sim, w.admission);
  w.sim.run_until(150'000);
  const auto& s = w.engine->stats();
  EXPECT_GT(s.backpressured, 0u);
  EXPECT_GT(s.retries, 0u);
  EXPECT_GT(s.load_shed, 0u);
  EXPECT_EQ(s.false_rejects, 0u);
}

TEST(ChurnEngine, SnapshotRestoreReplaysIdentically) {
  const std::uint64_t seed = 77;
  const iba::Cycle end = 150'000;

  // World A: uninterrupted, with a snapshot taken mid-run.
  TestWorld a(seed, quick_churn(seed));
  std::vector<std::uint8_t> blob;
  iba::Cycle snap_time = 0;
  a.engine->arm_snapshot(end / 2, [&](iba::Cycle now) {
    blob = control::save_world(now, seed, a.refs());
    snap_time = now;
  });
  a.engine->start();
  a.sm.configure_fabric(a.sim, a.admission);
  a.sim.run_until(end);
  ASSERT_FALSE(blob.empty());
  ASSERT_GE(snap_time, end / 2);
  EXPECT_EQ(control::peek_snapshot_time(blob), snap_time);

  // World B: fresh build, restore, replay the tail.
  TestWorld b(seed, quick_churn(seed));
  EXPECT_EQ(control::restore_world(blob, seed, b.refs()), snap_time);
  b.sm.configure_fabric(b.sim, b.admission);
  b.sim.run_until(end);

  EXPECT_EQ(a.control_telemetry(), b.control_telemetry())
      << "restored world must finish byte-identical to the uninterrupted one";
  EXPECT_EQ(a.admission.live_count(), b.admission.live_count());
  EXPECT_EQ(a.admission.accepted(), b.admission.accepted());
  EXPECT_EQ(a.admission.rejected(), b.admission.rejected());
}

TEST(ChurnEngine, RestoreGuardsRejectMismatches) {
  const std::uint64_t seed = 99;
  TestWorld a(seed, quick_churn(seed));
  std::vector<std::uint8_t> blob;
  a.engine->arm_snapshot(50'000, [&](iba::Cycle now) {
    blob = control::save_world(now, seed, a.refs());
  });
  a.engine->start();
  a.sm.configure_fabric(a.sim, a.admission);
  a.sim.run_until(150'000);
  ASSERT_FALSE(blob.empty());

  {
    // Wrong run seed.
    TestWorld b(seed, quick_churn(seed));
    EXPECT_THROW((void)control::restore_world(blob, seed + 1, b.refs()),
                 std::runtime_error);
  }
  {
    // Different engine config fingerprint.
    auto other = quick_churn(seed);
    other.arrivals_per_tick += 1;
    TestWorld b(seed, other);
    EXPECT_THROW((void)control::restore_world(blob, seed, b.refs()),
                 std::runtime_error);
  }
}

}  // namespace
}  // namespace ibarb
