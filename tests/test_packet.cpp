#include "iba/packet.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace ibarb::iba {
namespace {

TEST(Packet, WireBytesAddsOverhead) {
  Packet p;
  p.payload_bytes = 256;
  EXPECT_EQ(p.wire_bytes(), 256u + kPacketOverheadBytes);
}

TEST(Packet, WeightUnitsRoundUpWholePacket) {
  Packet p;
  p.payload_bytes = 256;  // wire = 282 -> ceil(282/64) = 5 units
  EXPECT_EQ(p.weight_units(), 5u);
  p.payload_bytes = 38;  // wire = 64 exactly -> 1 unit
  EXPECT_EQ(p.weight_units(), 1u);
  p.payload_bytes = 39;  // wire = 65 -> 2 units
  EXPECT_EQ(p.weight_units(), 2u);
}

TEST(Segmentation, ExactMultiple) {
  const auto sizes = segment_message(512, Mtu::kMtu256);
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 256u);
  EXPECT_EQ(sizes[1], 256u);
}

TEST(Segmentation, RemainderInLastPacket) {
  const auto sizes = segment_message(600, Mtu::kMtu256);
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[2], 88u);
}

TEST(Segmentation, SmallMessageSinglePacket) {
  const auto sizes = segment_message(10, Mtu::kMtu4096);
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_EQ(sizes[0], 10u);
}

TEST(Segmentation, ZeroByteMessageStillSendsOnePacket) {
  const auto sizes = segment_message(0, Mtu::kMtu256);
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_EQ(sizes[0], 0u);
}

TEST(Segmentation, PayloadConserved) {
  for (const auto mtu : {Mtu::kMtu256, Mtu::kMtu1024, Mtu::kMtu2048,
                         Mtu::kMtu4096}) {
    for (const std::uint32_t bytes : {1u, 255u, 4096u, 10000u, 65536u}) {
      const auto sizes = segment_message(bytes, mtu);
      const auto sum = std::accumulate(sizes.begin(), sizes.end(), 0u);
      EXPECT_EQ(sum, bytes);
      for (const auto s : sizes) EXPECT_LE(s, mtu_bytes(mtu));
    }
  }
}

TEST(Segmentation, WireBytesIncludePerPacketOverhead) {
  // 512 bytes over 256-MTU: 2 packets -> 2 overheads.
  EXPECT_EQ(message_wire_bytes(512, Mtu::kMtu256),
            512u + 2u * kPacketOverheadBytes);
}

TEST(MtuEfficiency, LargerMtuIsMoreEfficient) {
  EXPECT_LT(mtu_efficiency(Mtu::kMtu256), mtu_efficiency(Mtu::kMtu1024));
  EXPECT_LT(mtu_efficiency(Mtu::kMtu1024), mtu_efficiency(Mtu::kMtu4096));
  EXPECT_NEAR(mtu_efficiency(Mtu::kMtu256), 256.0 / 282.0, 1e-12);
}

}  // namespace
}  // namespace ibarb::iba
