// Per-shard observability planes (ISSUE 10, docs/OBSERVABILITY.md): the
// building blocks that let --sample-every / --trace-out / --profile run
// under --shards N. Snapshot::merge must fold per-shard parts in sorted key
// order (disjoint keys interleave, histogram bins add, gauges follow their
// policy); SeriesRecorder lanes must fold to the same bytes as a
// single-lane recording; the shard.* and profile.* families must stay
// quarantined out of series columns; PhaseProfiler::merge must sum totals.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/profile.hpp"
#include "obs/series.hpp"
#include "obs/telemetry.hpp"
#include "util/json_writer.hpp"

namespace ibarb::obs {
namespace {

std::string to_json(const Snapshot& s) {
  std::ostringstream os;
  util::JsonWriter w(os);
  s.write_json(w);
  return os.str();
}

TEST(SnapshotFold, DisjointKeysInterleaveInSortedOrder) {
  Snapshot a;
  a.add_counter("shard.windows", 3);
  a.add_counter("xbar.grants", 10);
  Snapshot b;
  b.add_counter("credit.stalls", 7);
  b.add_counter("queue.pops", 42);
  const auto merged = Snapshot::merge({a, b});
  ASSERT_EQ(merged.counters.size(), 4u);
  // std::map keeps the fold order deterministic: lexicographic, regardless
  // of which part contributed which key.
  auto it = merged.counters.begin();
  EXPECT_EQ(it->first, "credit.stalls");
  EXPECT_EQ((++it)->first, "queue.pops");
  EXPECT_EQ((++it)->first, "shard.windows");
  EXPECT_EQ((++it)->first, "xbar.grants");
  // Part order must not matter for the serialized bytes.
  EXPECT_EQ(to_json(merged), to_json(Snapshot::merge({b, a})));
}

TEST(SnapshotFold, SharedKeysAddAndGaugesFollowPolicy) {
  Snapshot a;
  a.add_counter("shard.events", 100);
  a.merge_gauge("shard.window_cycles", 4096, MergePolicy::kMax);
  a.merge_gauge("sim.rate", 1.5, MergePolicy::kSum);
  const std::uint64_t bins_a[4] = {1, 2, 0, 0};
  a.add_histogram("shard.events_by_shard", bins_a, 4);
  Snapshot b;
  b.add_counter("shard.events", 50);
  b.merge_gauge("shard.window_cycles", 8192, MergePolicy::kMax);
  b.merge_gauge("sim.rate", 0.5, MergePolicy::kSum);
  const std::uint64_t bins_b[4] = {0, 0, 3, 4};
  b.add_histogram("shard.events_by_shard", bins_b, 4);

  const auto m = Snapshot::merge({a, b});
  EXPECT_EQ(m.counters.at("shard.events"), 150u);
  EXPECT_EQ(m.gauges.at("shard.window_cycles").first, 8192.0);
  EXPECT_EQ(m.gauges.at("sim.rate").first, 2.0);
  const auto& h = m.histograms.at("shard.events_by_shard");
  ASSERT_GE(h.size(), 4u);
  EXPECT_EQ(h[0], 1u);
  EXPECT_EQ(h[1], 2u);
  EXPECT_EQ(h[2], 3u);
  EXPECT_EQ(h[3], 4u);
}

TEST(Quarantine, ShardAndProfileFamiliesAreQuarantined) {
  EXPECT_TRUE(is_quarantined_name("profile.dispatch_ms"));
  EXPECT_TRUE(is_quarantined_name("shard.windows"));
  EXPECT_TRUE(is_quarantined_name("shard.barrier_wait_ns"));
  EXPECT_FALSE(is_quarantined_name("queue.pops"));
  EXPECT_FALSE(is_quarantined_name("xbar.grants"));
  // Prefix match, not substring: families elsewhere in the name stay in.
  EXPECT_FALSE(is_quarantined_name("queue.shard.depth"));
}

TEST(Quarantine, QuarantinedCountersStayOutOfSeriesColumns) {
  TelemetryRegistry reg;
  reg.counter("arb.decisions").inc(5);
  reg.counter("shard.windows").inc(9);
  reg.counter("profile.samples").inc(2);
  SeriesRecorder::Config cfg;
  cfg.sample_every = 100;
  SeriesRecorder rec(reg, cfg);
  rec.advance_to(201);
  const auto data = rec.finalize(200);
  std::ostringstream os;
  util::JsonWriter w(os);
  data.write_json(w);
  const auto json = os.str();
  EXPECT_NE(json.find("arb.decisions"), std::string::npos);
  EXPECT_EQ(json.find("shard.windows"), std::string::npos);
  EXPECT_EQ(json.find("profile.samples"), std::string::npos);
}

TEST(SeriesLanes, MultiLaneFoldMatchesSingleLaneBytes) {
  // The same 120 deliveries recorded on one lane versus scattered across
  // four lanes (as four shard workers would) must serialize identically:
  // the per-SL fold is commutative and associative.
  const auto run = [](std::size_t lanes) {
    TelemetryRegistry reg;
    SeriesRecorder::Config cfg;
    cfg.sample_every = 100;
    SeriesRecorder rec(reg, cfg);
    rec.set_lanes(lanes);
    rec.note_connection(0, 1, true, 500);
    rec.note_connection(1, 3, true, 700);
    for (std::uint64_t t = 10; t <= 1200; t += 10) {
      if (t > rec.next_due()) rec.advance_to(t);
      t_series_lane = lanes > 1 ? (t / 10) % lanes : 0;
      rec.record_delivery(t % 2, t % 2 ? 3 : 1, t % 97, t % 2 ? 700 : 500);
    }
    t_series_lane = 0;
    const auto data = rec.finalize(1200);
    std::ostringstream os;
    util::JsonWriter w(os);
    data.write_json(w);
    return os.str();
  };
  const auto single = run(1);
  const auto sharded = run(4);
  EXPECT_FALSE(single.empty());
  EXPECT_EQ(single, sharded);
}

TEST(SeriesLanes, SetLanesGrowsOnlyAndLaneZeroIsDefault) {
  TelemetryRegistry reg;
  SeriesRecorder::Config cfg;
  cfg.sample_every = 100;
  SeriesRecorder rec(reg, cfg);
  rec.note_connection(0, 2, false, 0);
  rec.set_lanes(4);
  rec.set_lanes(2);  // must not drop lanes 2..3
  t_series_lane = 3;
  rec.record_delivery(0, 2, 40, 0);
  t_series_lane = 0;
  rec.advance_to(101);
  const auto data = rec.finalize(100);
  // The lane-3 delivery survived the shrink request and folded into the
  // committed window's SL-2 delay row.
  ASSERT_FALSE(data.sl_delay.empty());
  std::uint64_t rx = 0;
  for (const auto& row : data.sl_delay)
    for (const auto v : row.rx) rx += v;
  EXPECT_EQ(rx, 1u);
}

TEST(ProfilerMerge, SumsNanosecondsAndCallsPerPhase) {
  PhaseProfiler a;
  a.add(PhaseProfiler::kDispatch, 100);
  a.add(PhaseProfiler::kSeries, 50);
  PhaseProfiler b;
  b.add(PhaseProfiler::kDispatch, 200);
  b.add(PhaseProfiler::kArbitration, 30);
  a.merge(b);
  EXPECT_EQ(a.calls(PhaseProfiler::kDispatch), 2u);
  EXPECT_EQ(a.total_ms(PhaseProfiler::kDispatch), 300.0 / 1e6);
  EXPECT_EQ(a.calls(PhaseProfiler::kArbitration), 1u);
  EXPECT_EQ(a.calls(PhaseProfiler::kSeries), 1u);
  EXPECT_EQ(a.calls(PhaseProfiler::kMetrics), 0u);
}

}  // namespace
}  // namespace ibarb::obs
