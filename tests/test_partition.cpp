// Switch-affine partitioning and the lookahead window (src/sim/partition.*):
// affinity rules (a host always lands on its uplink switch's shard),
// contiguous switch blocks, cut-edge enumeration, the forward/reverse
// latency model behind the safe parallel window, and the zero-lookahead
// guard that forces the --shards 1 fallback.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "iba/link.hpp"
#include "network/graph.hpp"
#include "sim/partition.hpp"

namespace ibarb::sim {
namespace {

/// A ring of `switches` (port 0 -> next, port 1 <- previous) with
/// `hosts_per` hosts hanging off ports 2.. of each switch.
network::FabricGraph ring_fabric(unsigned switches, unsigned hosts_per,
                                 iba::Link ring_link = {}) {
  network::FabricGraph g;
  std::vector<iba::NodeId> sw;
  for (unsigned i = 0; i < switches; ++i)
    sw.push_back(g.add_switch(2 + hosts_per));
  for (unsigned i = 0; i < switches; ++i)
    g.connect(sw[i], 0, sw[(i + 1) % switches], 1, ring_link);
  for (unsigned i = 0; i < switches; ++i)
    for (unsigned h = 0; h < hosts_per; ++h) {
      const iba::NodeId host = g.add_host();
      g.connect(host, 0, sw[i], 2 + h);
    }
  return g;
}

TEST(Partition, HostsFollowTheirUplinkSwitch) {
  const auto g = ring_fabric(/*switches=*/4, /*hosts_per=*/3);
  const auto r = make_switch_affine(g, 2);
  ASSERT_TRUE(r.ok) << r.error;
  const Partition& p = r.partition;
  EXPECT_EQ(p.shards, 2u);
  ASSERT_EQ(p.shard_of.size(), g.node_count());
  for (const iba::NodeId host : g.hosts())
    EXPECT_EQ(p.shard_of[host], p.shard_of[g.host_uplink(host).node])
        << "host " << host << " not affine with its uplink switch";
}

TEST(Partition, SwitchBlocksAreContiguousAndEveryShardNonEmpty) {
  const auto g = ring_fabric(/*switches=*/7, /*hosts_per=*/1);
  const auto r = make_switch_affine(g, 3);
  ASSERT_TRUE(r.ok) << r.error;
  const Partition& p = r.partition;
  std::vector<unsigned> population(p.shards, 0);
  std::uint32_t prev = 0;
  for (const iba::NodeId sw : g.switches()) {
    const std::uint32_t shard = p.shard_of[sw];
    EXPECT_GE(shard, prev) << "switch blocks must be contiguous in id order";
    EXPECT_LT(shard, p.shards);
    prev = shard;
    ++population[shard];
  }
  for (std::uint32_t s = 0; s < p.shards; ++s)
    EXPECT_GT(population[s], 0u) << "shard " << s << " owns no switch";
}

TEST(Partition, CutsAreExactlyTheCrossShardSwitchWires) {
  const auto g = ring_fabric(/*switches=*/4, /*hosts_per=*/2);
  const auto r = make_switch_affine(g, 2);
  ASSERT_TRUE(r.ok) << r.error;
  const Partition& p = r.partition;
  // Splitting a 4-ring 2+2 severs two full-duplex wires = 4 directed cuts.
  EXPECT_EQ(p.cuts.size(), 4u);
  for (const Partition::Cut& cut : p.cuts) {
    EXPECT_TRUE(g.is_switch(cut.node));
    const auto peer = g.peer(cut.node, cut.port);
    ASSERT_TRUE(peer.has_value());
    EXPECT_TRUE(g.is_switch(peer->node))
        << "host links must never be cut edges";
    EXPECT_EQ(cut.from, p.shard_of[cut.node]);
    EXPECT_EQ(cut.to, p.shard_of[peer->node]);
    EXPECT_NE(cut.from, cut.to);
  }
}

TEST(Partition, ShardsClampToTheSwitchCount) {
  const auto g = ring_fabric(/*switches=*/3, /*hosts_per=*/1);
  const auto r = make_switch_affine(g, 64);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.partition.shards, 3u);
}

TEST(Partition, RejectsDegenerateRequests) {
  const auto g = ring_fabric(/*switches=*/4, /*hosts_per=*/1);
  const auto one = make_switch_affine(g, 1);
  EXPECT_FALSE(one.ok);
  EXPECT_NE(one.error.find("at least 2 shards"), std::string::npos)
      << one.error;

  network::FabricGraph lone;
  lone.add_switch(4);
  const auto r = make_switch_affine(lone, 4);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("fewer than 2 switches"), std::string::npos)
      << r.error;
}

TEST(Partition, RejectsFabricsBeyondTheNodeLimit) {
  network::FabricGraph g;
  for (std::size_t i = 0; i < kMaxPartitionNodes + 1; ++i) g.add_host();
  const auto r = make_switch_affine(g, 4);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find(std::to_string(kMaxPartitionNodes)),
            std::string::npos)
      << r.error;
}

TEST(Partition, RejectsAHostWithoutAnUplink) {
  auto g = ring_fabric(/*switches=*/2, /*hosts_per=*/1);
  const iba::NodeId orphan = g.add_host();  // never wired
  const auto r = make_switch_affine(g, 2);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("host " + std::to_string(orphan)),
            std::string::npos)
      << r.error;
}

// --------------------------------------------------------------------------
// Lookahead model.

TEST(Lookahead, ForwardLatencyIsSerializationPlusPropagation) {
  iba::Link link;
  link.rate = iba::LinkRate::k4x;
  link.propagation_delay = 7;
  EXPECT_EQ(forward_latency(link, 32),
            iba::serialization_cycles(32, link.rate) + 7);
  // Monotone in the wire size: admitting a smaller packet can only shrink
  // the window, never grow it.
  EXPECT_LE(forward_latency(link, 32), forward_latency(link, 4096));
  // Any physical wire size keeps at least the propagation delay.
  EXPECT_GE(forward_latency(link, 1), link.propagation_delay + 1);
}

TEST(Lookahead, ReverseLatencyTracksCrossbarDelayAndSpeedup) {
  Partition::Cut cut;
  cut.best_downstream_rate = iba::LinkRate::k1x;
  LookaheadModel m;
  m.min_wire_bytes = 64;
  m.crossbar_delay = 5;
  m.crossbar_speedup = 1.0;
  EXPECT_EQ(reverse_latency(cut, m),
            5 + iba::serialization_cycles(64, cut.best_downstream_rate));
  // A faster crossbar bounces credits sooner, but never in zero cycles.
  m.crossbar_speedup = 1e9;
  EXPECT_EQ(reverse_latency(cut, m), 5 + 1);
  m.crossbar_delay = 0;
  EXPECT_EQ(reverse_latency(cut, m), 1u);
}

TEST(Lookahead, SafeWindowIsTheMinOverAllCutLatencies) {
  iba::Link slow;  // 1x: serialization dominates
  slow.propagation_delay = 3;
  const auto g = ring_fabric(/*switches=*/4, /*hosts_per=*/1, slow);
  const auto r = make_switch_affine(g, 2);
  ASSERT_TRUE(r.ok) << r.error;

  LookaheadModel m;
  m.min_wire_bytes = 26;
  iba::Cycle expect = std::numeric_limits<iba::Cycle>::max();
  for (const Partition::Cut& cut : r.partition.cuts) {
    expect = std::min(expect, forward_latency(cut.link, m.min_wire_bytes));
    expect = std::min(expect, reverse_latency(cut, m));
  }
  EXPECT_EQ(safe_window(r.partition, m), expect);
  EXPECT_GE(safe_window(r.partition, m), 1u);

  // No cuts (degenerate single-shard partition): the window defaults to 1.
  Partition cutless;
  EXPECT_EQ(safe_window(cutless, m), 1u);
}

TEST(Lookahead, ZeroLookaheadGuardNamesTheOffendingCut) {
  const auto g = ring_fabric(/*switches=*/4, /*hosts_per=*/1);
  const auto r = make_switch_affine(g, 2);
  ASSERT_TRUE(r.ok) << r.error;
  const Partition& p = r.partition;
  ASSERT_FALSE(p.cuts.empty());

  // A healthy link model passes.
  EXPECT_EQ(zero_lookahead_error(
                p, [](const Partition::Cut&) { return iba::Cycle{1}; }),
            "");

  // A pathological model (injected — the real link model cannot produce 0)
  // is rejected with a diagnostic naming the first zero-latency cut and the
  // fallback the caller must take.
  const Partition::Cut& first = p.cuts.front();
  const auto err = zero_lookahead_error(
      p, [&](const Partition::Cut& c) -> iba::Cycle {
        return c.node == first.node && c.port == first.port ? 0 : 1;
      });
  EXPECT_NE(err.find("zero lookahead"), std::string::npos) << err;
  EXPECT_NE(err.find(std::to_string(first.node) + ":" +
                     std::to_string(first.port)),
            std::string::npos)
      << err;
  EXPECT_NE(err.find("--shards 1"), std::string::npos) << err;
}

}  // namespace
}  // namespace ibarb::sim
