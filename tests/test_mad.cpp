#include "subnet/mad.hpp"

#include <gtest/gtest.h>

#include "network/topology.hpp"

namespace ibarb::subnet {
namespace {

DrSmp sample_smp() {
  DrSmp smp;
  smp.method = MadMethod::kGet;
  smp.attribute = SmpAttribute::kNodeInfo;
  smp.attribute_modifier = 0xDEADBEEF;
  smp.transaction_id = 0x0123456789ABCDEFull;
  smp.hop_count = 3;
  smp.initial_path[1] = 4;
  smp.initial_path[2] = 1;
  smp.initial_path[3] = 7;
  smp.payload[0] = 0x55;
  return smp;
}

TEST(Mad, EncodeIsFixedSize) {
  EXPECT_EQ(encode(sample_smp()).size(), kMadBytes);
}

TEST(Mad, RoundTrip) {
  const auto smp = sample_smp();
  const auto decoded = decode_smp(encode(smp));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, smp);
}

TEST(Mad, RejectsWrongClassOrVersion) {
  auto bytes = encode(sample_smp());
  bytes[1] = 0x01;  // not the directed-route SM class
  EXPECT_FALSE(decode_smp(bytes).has_value());
  auto bytes2 = encode(sample_smp());
  bytes2[0] = 9;  // base version
  EXPECT_FALSE(decode_smp(bytes2).has_value());
}

TEST(Mad, RejectsWrongSize) {
  const std::vector<std::uint8_t> small(100);
  EXPECT_FALSE(decode_smp(small).has_value());
}

TEST(Mad, RejectsUnknownMethodOrAttribute) {
  auto bytes = encode(sample_smp());
  bytes[3] = 0x55;
  EXPECT_FALSE(decode_smp(bytes).has_value());
  auto bytes2 = encode(sample_smp());
  bytes2[16] = 0x77;
  EXPECT_FALSE(decode_smp(bytes2).has_value());
}

TEST(NodeInfoPayload, RoundTrip) {
  NodeInfo info;
  info.is_switch = true;
  info.ports = 8;
  info.node_guid = 0xCAFE;
  std::array<std::uint8_t, kSmpPayloadBytes> buf{};
  write_node_info(info, buf);
  const auto back = read_node_info(buf);
  EXPECT_EQ(back.is_switch, info.is_switch);
  EXPECT_EQ(back.ports, info.ports);
  EXPECT_EQ(back.node_guid, info.node_guid);
}

TEST(DirectedRouteWalker, ZeroHopsReachesOrigin) {
  const auto g = network::gen::line(3, 1);
  DirectedRouteWalker walker(g);
  DrSmp smp;
  smp.hop_count = 0;
  const auto reached = walker.deliver(0, smp);
  ASSERT_TRUE(reached.has_value());
  EXPECT_EQ(*reached, 0u);
  EXPECT_EQ(smp.method, MadMethod::kGetResp);
  const auto info = read_node_info(
      std::span<const std::uint8_t, kSmpPayloadBytes>(smp.payload.data(),
                                                      kSmpPayloadBytes));
  EXPECT_TRUE(info.is_switch);
}

TEST(DirectedRouteWalker, WalksMultiHopPath) {
  const auto g = network::gen::line(3, 1);  // sw0 -p1-> sw1 -p1-> sw2
  DirectedRouteWalker walker(g);
  DrSmp smp;
  smp.hop_count = 2;
  smp.initial_path[1] = 1;
  smp.initial_path[2] = 1;
  const auto reached = walker.deliver(0, smp);
  ASSERT_TRUE(reached.has_value());
  EXPECT_EQ(*reached, 2u);
  EXPECT_EQ(walker.hops_walked(), 2u);
}

TEST(DirectedRouteWalker, UnwiredPortTimesOut) {
  const auto g = network::gen::single_switch(2, 8);  // ports 2..7 unwired
  DirectedRouteWalker walker(g);
  DrSmp smp;
  smp.hop_count = 1;
  smp.initial_path[1] = 6;
  EXPECT_FALSE(walker.deliver(0, smp).has_value());
}

TEST(DirectedRouteWalker, OutOfRangePortTimesOut) {
  const auto g = network::gen::single_switch(2, 4);
  DirectedRouteWalker walker(g);
  DrSmp smp;
  smp.hop_count = 1;
  smp.initial_path[1] = 99;
  EXPECT_FALSE(walker.deliver(0, smp).has_value());
}

}  // namespace
}  // namespace ibarb::subnet

namespace ibarb::subnet {
namespace {

TEST(LftCodec, RoundTripsBlock) {
  std::array<iba::PortIndex, kLftLidsPerBlock> ports{};
  for (std::size_t i = 0; i < ports.size(); ++i)
    ports[i] = static_cast<iba::PortIndex>(i % 8);
  std::array<std::uint8_t, kSmpPayloadBytes> payload{};
  write_lft_block(ports, payload);
  const auto back = read_lft_block(payload);
  EXPECT_EQ(back, ports);
}

TEST(LftCodec, ShortBlockPadsWithInvalid) {
  const iba::PortIndex three[] = {1, 2, 3};
  std::array<std::uint8_t, kSmpPayloadBytes> payload{};
  write_lft_block(three, payload);
  const auto back = read_lft_block(payload);
  EXPECT_EQ(back[0], 1);
  EXPECT_EQ(back[2], 3);
  EXPECT_EQ(back[3], 0xFF);
  EXPECT_EQ(back[63], 0xFF);
}

TEST(VlArbCodec, FourSmpsRoundTripWholeTable) {
  iba::VlArbitrationTable table;
  for (unsigned i = 0; i < iba::kArbTableEntries; ++i) {
    table.high()[i] = iba::ArbTableEntry{
        static_cast<iba::VirtualLane>(i % 10),
        static_cast<std::uint8_t>(i * 3 % 256)};
    table.low()[i] = iba::ArbTableEntry{
        static_cast<iba::VirtualLane>(i % 5),
        static_cast<std::uint8_t>(255 - i % 200)};
  }
  auto smps = vlarb_program_smps(table);
  ASSERT_EQ(smps.size(), 4u);
  // Wire round trip for each block.
  for (auto& smp : smps) {
    const auto parsed = decode_smp(encode(smp));
    ASSERT_TRUE(parsed.has_value());
    smp = *parsed;
  }
  // Reassemble in a shuffled order.
  std::swap(smps[0], smps[3]);
  std::swap(smps[1], smps[2]);
  const auto back = vlarb_from_smps(smps);
  ASSERT_TRUE(back.has_value());
  for (unsigned i = 0; i < iba::kArbTableEntries; ++i) {
    EXPECT_EQ(back->high()[i], table.high()[i]);
    EXPECT_EQ(back->low()[i], table.low()[i]);
  }
}

TEST(VlArbCodec, MissingBlockRejected) {
  auto smps = vlarb_program_smps(iba::VlArbitrationTable{});
  smps.pop_back();
  EXPECT_FALSE(vlarb_from_smps(smps).has_value());
}

TEST(VlArbCodec, WrongAttributeRejected) {
  auto smps = vlarb_program_smps(iba::VlArbitrationTable{});
  smps[1].attribute = SmpAttribute::kNodeInfo;
  EXPECT_FALSE(vlarb_from_smps(smps).has_value());
}

}  // namespace
}  // namespace ibarb::subnet
