#include "obs/series.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/telemetry.hpp"
#include "util/json_writer.hpp"

namespace ibarb::obs {
namespace {

// --- Log2Histogram ----------------------------------------------------------

TEST(Log2Histogram, BucketBoundaries) {
  EXPECT_EQ(Log2Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Log2Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Log2Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Log2Histogram::bucket_of(UINT64_MAX), 63u);
  EXPECT_EQ(Log2Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_upper(5), 31u);
}

TEST(Log2Histogram, NearestRankPercentiles) {
  Log2Histogram h;
  for (int i = 0; i < 99; ++i) h.record(3);   // bucket 2, upper bound 3
  h.record(1000);                             // bucket 10, upper bound 1023
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.percentile(0.50), 3u);
  // Rank 99 of 100 still lands in the low bucket...
  EXPECT_EQ(h.percentile(0.99), 3u);
  // ...and the maximum rank reaches the outlier's bucket.
  EXPECT_EQ(h.percentile(1.0), 1023u);
  EXPECT_EQ(Log2Histogram{}.percentile(0.5), 0u);
}

TEST(Log2Histogram, MergeSaturatesInsteadOfWrapping) {
  Log2Histogram a;
  Log2Histogram b;
  for (int i = 0; i < 3; ++i) a.record(5);
  b.record(5);
  a.merge(b);
  EXPECT_EQ(a.buckets()[Log2Histogram::bucket_of(5)], 4u);

  // Force near-overflow counts through repeated self-merges: counts double
  // each time, so 64 merges would wrap without the saturation clamp.
  Log2Histogram c;
  c.record(9);
  for (int i = 0; i < 64; ++i) c.merge(c);
  EXPECT_EQ(c.buckets()[Log2Histogram::bucket_of(9)], UINT64_MAX);
  // A saturated bucket still dominates percentile ranks without UB.
  EXPECT_EQ(c.percentile(1.0),
            Log2Histogram::bucket_upper(Log2Histogram::bucket_of(9)));
}

// --- SeriesRecorder ---------------------------------------------------------

constexpr std::uint64_t kEvery = 100;

SeriesRecorder::Config small_cfg(std::size_t capacity = 8) {
  SeriesRecorder::Config cfg;
  cfg.sample_every = kEvery;
  cfg.capacity = capacity;
  return cfg;
}

TEST(SeriesRecorder, DisabledWhenCadenceZero) {
  TelemetryRegistry reg;
  SeriesRecorder rec(reg, SeriesRecorder::Config{});
  EXPECT_FALSE(rec.enabled());
}

TEST(SeriesRecorder, BoundarySampleReflectsEventsAtOrBeforeIt) {
  TelemetryRegistry reg;
  auto& c = reg.counter("arb.decisions");
  SeriesRecorder rec(reg, small_cfg());
  EXPECT_TRUE(rec.enabled());
  EXPECT_EQ(rec.next_due(), kEvery);

  c.inc(3);  // happens at some time <= 100
  rec.advance_to(101);  // first event past the boundary arrives
  c.inc(2);  // time in (100, 200]
  rec.advance_to(201);
  const auto data = rec.finalize(200);

  ASSERT_EQ(data.windows(), 2u);
  EXPECT_EQ(data.time, (std::vector<std::uint64_t>{100, 200}));
  ASSERT_EQ(data.counters.size(), 1u);
  EXPECT_EQ(data.counters[0].first, "arb.decisions");
  // Cumulative at each boundary: 3 after window 1, 5 after window 2.
  EXPECT_EQ(data.counters[0].second, (std::vector<std::uint64_t>{3, 5}));
}

TEST(SeriesRecorder, AdvanceToIsIdempotent) {
  TelemetryRegistry reg;
  reg.counter("c").inc(1);
  SeriesRecorder rec(reg, small_cfg());
  rec.advance_to(301);
  rec.advance_to(301);
  rec.advance_to(250);  // lower limit: nothing new to commit
  const auto data = rec.finalize(300);
  EXPECT_EQ(data.windows(), 3u);
}

TEST(SeriesRecorder, LateAppearingCounterBackfillsZeros) {
  TelemetryRegistry reg;
  reg.counter("early").inc(1);
  SeriesRecorder rec(reg, small_cfg());
  rec.advance_to(101);
  reg.counter("late").inc(7);  // instrument born in window 2
  rec.advance_to(201);
  const auto data = rec.finalize(200);
  ASSERT_EQ(data.counters.size(), 2u);
  EXPECT_EQ(data.counters[0].first, "early");
  EXPECT_EQ(data.counters[1].first, "late");
  EXPECT_EQ(data.counters[1].second, (std::vector<std::uint64_t>{0, 7}));
}

TEST(SeriesRecorder, ProfileInstrumentsAreExcluded) {
  TelemetryRegistry reg;
  reg.counter("profile.dispatch_calls").inc(5);
  reg.gauge("profile.dispatch_ms").set(1.25);
  reg.counter("arb.decisions").inc(1);
  SeriesRecorder rec(reg, small_cfg());
  rec.advance_to(101);
  const auto data = rec.finalize(100);
  ASSERT_EQ(data.counters.size(), 1u);
  EXPECT_EQ(data.counters[0].first, "arb.decisions");
  EXPECT_TRUE(data.gauges.empty());
}

TEST(SeriesRecorder, DecimationHalvesWindowsAndDoublesWidth) {
  TelemetryRegistry reg;
  auto& c = reg.counter("c");
  SeriesRecorder rec(reg, small_cfg(/*capacity=*/4));
  // Commit 5 boundaries: the 4th fills the ring, triggering one decimation
  // (4 windows -> 2 at double width); the 5th lands at the coarser cadence.
  for (std::uint64_t b = 1; b <= 4; ++b) {
    c.inc(1);
    rec.advance_to(b * kEvery + 1);
  }
  EXPECT_EQ(rec.next_due(), 600u);  // 400 + doubled width
  c.inc(1);
  rec.advance_to(601);
  const auto data = rec.finalize(600);

  EXPECT_EQ(data.decimations, 1u);
  EXPECT_EQ(data.window_cycles, 2 * kEvery);
  ASSERT_EQ(data.windows(), 3u);
  EXPECT_EQ(data.time, (std::vector<std::uint64_t>{200, 400, 600}));
  // Counters keep the later (cumulative) sample of each merged pair.
  EXPECT_EQ(data.counters[0].second, (std::vector<std::uint64_t>{2, 4, 5}));
}

TEST(SeriesRecorder, DecimationIsRunLengthConsistent) {
  // The decimated series of a long run must equal the series a coarser
  // cadence would have produced — the power-of-two alignment guarantee.
  const auto run = [](std::uint64_t every, std::size_t capacity,
                      std::uint64_t boundaries) {
    TelemetryRegistry reg;
    auto& c = reg.counter("c");
    SeriesRecorder::Config cfg;
    cfg.sample_every = every;
    cfg.capacity = capacity;
    SeriesRecorder rec(reg, cfg);
    const std::uint64_t end = every * boundaries;
    for (std::uint64_t t = 50; t <= end; t += 50) {
      c.inc(1);
      rec.advance_to(t + 1);
    }
    return rec.finalize(end);
  };
  const auto fine = run(100, 4, 8);    // decimates twice: width 400
  const auto coarse = run(400, 4, 2);  // native width 400
  EXPECT_EQ(fine.window_cycles, coarse.window_cycles);
  EXPECT_EQ(fine.time, coarse.time);
  EXPECT_EQ(fine.counters, coarse.counters);
}

TEST(SeriesRecorder, FinalizeFlushesTrailingPartialWindowOnce) {
  TelemetryRegistry reg;
  auto& c = reg.counter("c");
  SeriesRecorder rec(reg, small_cfg());
  c.inc(1);
  rec.advance_to(101);
  c.inc(1);  // lands in the partial window (100, 150]
  const auto first = rec.finalize(150);
  ASSERT_EQ(first.windows(), 2u);
  EXPECT_EQ(first.time, (std::vector<std::uint64_t>{100, 150}));
  EXPECT_EQ(first.counters[0].second, (std::vector<std::uint64_t>{1, 2}));
  // Finalize is safe to repeat without duplicating the partial window.
  const auto second = rec.finalize(150);
  EXPECT_EQ(first, second);
}

TEST(SeriesRecorder, QosAuditCountsOnlyDeadlineCarryingConnections) {
  TelemetryRegistry reg;
  SeriesRecorder rec(reg, small_cfg());
  rec.note_connection(0, /*sl=*/2, /*qos=*/true, /*deadline=*/50);
  rec.note_connection(1, /*sl=*/11, /*qos=*/false, /*deadline=*/0);

  rec.record_delivery(0, 2, /*delay=*/40, /*contracted=*/50);  // on time
  rec.record_delivery(0, 2, /*delay=*/60, /*contracted=*/50);  // late
  rec.record_drop(0);
  rec.record_delivery(1, 11, /*delay=*/500, /*contracted=*/0);  // best effort
  rec.record_drop(1);
  rec.advance_to(101);
  const auto data = rec.finalize(100);

  ASSERT_EQ(data.windows(), 1u);
  EXPECT_EQ(data.qos.late, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(data.qos.drops, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(data.qos.missed, (std::vector<std::uint64_t>{2}));

  ASSERT_EQ(data.connections.size(), 2u);
  const auto& audited = data.connections[0];
  EXPECT_EQ(audited.rx, (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(audited.missed, (std::vector<std::uint64_t>{2}));
  EXPECT_DOUBLE_EQ(audited.margin_min[0], -10.0);
  EXPECT_DOUBLE_EQ(audited.margin_mean[0], 0.0);  // (10 + -10) / 2
  const auto& best_effort = data.connections[1];
  EXPECT_EQ(best_effort.rx, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(best_effort.drops, (std::vector<std::uint64_t>{1}));
  // Best-effort traffic never counts as missed, and has no margin.
  EXPECT_EQ(best_effort.missed, (std::vector<std::uint64_t>{0}));
  EXPECT_TRUE(std::isnan(best_effort.margin_min[0]));
}

TEST(SeriesRecorder, SlDelayPercentilesPerWindow) {
  TelemetryRegistry reg;
  SeriesRecorder rec(reg, small_cfg());
  rec.note_connection(0, 3, true, 1000);
  for (int i = 0; i < 10; ++i) rec.record_delivery(0, 3, 7, 1000);
  rec.advance_to(101);
  rec.record_delivery(0, 3, 500, 1000);
  rec.advance_to(201);
  const auto data = rec.finalize(200);

  ASSERT_EQ(data.sl_delay.size(), 1u);
  const auto& sl = data.sl_delay[0];
  EXPECT_EQ(sl.sl, 3u);
  EXPECT_EQ(sl.rx, (std::vector<std::uint64_t>{10, 1}));
  EXPECT_EQ(sl.p50[0], Log2Histogram::bucket_upper(Log2Histogram::bucket_of(7)));
  EXPECT_EQ(sl.max, (std::vector<std::uint64_t>{7, 500}));
  // Window 2 contains only the slow packet.
  EXPECT_EQ(sl.p99[1],
            Log2Histogram::bucket_upper(Log2Histogram::bucket_of(500)));
}

TEST(SeriesRecorder, TransitionsRecordedAndCapped) {
  TelemetryRegistry reg;
  SeriesRecorder::Config cfg = small_cfg();
  cfg.max_transitions = 2;
  SeriesRecorder rec(reg, cfg);
  rec.record_transition(10, SeriesTransition::Kind::kLinkDown, -1, 4, 1);
  rec.record_transition(20, SeriesTransition::Kind::kShed, 7);
  rec.record_transition(30, SeriesTransition::Kind::kLinkUp, -1, 4, 1);
  const auto data = rec.finalize(100);
  ASSERT_EQ(data.transitions.size(), 2u);
  EXPECT_EQ(data.transitions[0].kind, SeriesTransition::Kind::kLinkDown);
  EXPECT_EQ(data.transitions[0].node, 4);
  EXPECT_EQ(data.transitions[1].conn, 7);
  EXPECT_EQ(data.transitions_dropped, 1u);
  EXPECT_STREQ(SeriesTransition::kind_name(data.transitions[1].kind), "shed");
}

TEST(SeriesRecorder, DeterministicForIdenticalInputs) {
  const auto run = [] {
    TelemetryRegistry reg;
    auto& c = reg.counter("arb.decisions");
    SeriesRecorder rec(reg, small_cfg(/*capacity=*/4));
    rec.note_connection(0, 1, true, 80);
    for (std::uint64_t t = 10; t <= 900; t += 10) {
      if (t > rec.next_due()) rec.advance_to(t);
      c.inc(1);
      rec.record_delivery(0, 1, t % 120, 80);
      if (t % 300 == 0)
        rec.record_transition(t, SeriesTransition::Kind::kRerouted, 0);
    }
    const auto data = rec.finalize(900);
    std::ostringstream os;
    util::JsonWriter w(os);
    data.write_json(w);
    return os.str();
  };
  const auto a = run();
  const auto b = run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(SeriesData, CsvExportWritesAllFourFiles) {
  TelemetryRegistry reg;
  reg.counter("arb.decisions").inc(2);
  SeriesRecorder rec(reg, small_cfg());
  rec.note_connection(0, 1, true, 80);
  rec.record_delivery(0, 1, 40, 80);
  rec.record_transition(50, SeriesTransition::Kind::kLinkDown, -1, 2, 0);
  rec.advance_to(101);
  const auto data = rec.finalize(100);

  const std::filesystem::path dir = "ibarb_test_series_csv";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(write_series_csv(data, dir.string()));
  for (const char* name :
       {"samples.csv", "sl_delay.csv", "connections.csv", "transitions.csv"}) {
    std::ifstream f(dir / name);
    ASSERT_TRUE(f.good()) << name;
    std::string header;
    std::getline(f, header);
    EXPECT_FALSE(header.empty()) << name;
  }
  std::ifstream samples(dir / "samples.csv");
  std::string header, row;
  std::getline(samples, header);
  std::getline(samples, row);
  EXPECT_NE(header.find("arb.decisions"), std::string::npos);
  EXPECT_EQ(row.substr(0, 4), "100,");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ibarb::obs
