// The lock-free SPSC ring under the parallel core's cross-shard channels
// (util::SpscQueue) and the spill-backed channel wrapper (sim::ShardChannel):
// FIFO order, power-of-two capacity rounding, full/empty edges, wraparound,
// and a producer/consumer thread stress. The rest of the parallel engine is
// covered end-to-end by test_shard_determinism.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "sim/shard.hpp"
#include "util/spsc_queue.hpp"

namespace ibarb::util {
namespace {

TEST(SpscQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(8).capacity(), 8u);
  EXPECT_EQ(SpscQueue<int>(1000).capacity(), 1024u);
}

TEST(SpscQueue, FifoOrderAndEmptyEdge) {
  SpscQueue<int> q(8);
  int out = -1;
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.try_pop(out));
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(int{i}));
  EXPECT_FALSE(q.empty());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.try_pop(out));
}

TEST(SpscQueue, FullRingRejectsWithoutClobbering) {
  SpscQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(int{i}));
  EXPECT_FALSE(q.try_push(99));  // full: nothing written
  int out = -1;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(q.try_push(4));  // slot freed, push succeeds again
  for (int want = 1; want <= 4; ++want) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, want);
  }
}

TEST(SpscQueue, WrapsAroundManyGenerations) {
  // Cursors keep counting past the capacity; the mask must keep mapping
  // them onto live slots with FIFO order intact.
  SpscQueue<std::uint64_t> q(4);
  std::uint64_t next_pop = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(q.try_push(std::uint64_t{i}));
    if (i % 3 == 2) {  // drain in a different rhythm than the pushes
      std::uint64_t out = 0;
      while (q.try_pop(out)) EXPECT_EQ(out, next_pop++);
    }
  }
  std::uint64_t out = 0;
  while (q.try_pop(out)) EXPECT_EQ(out, next_pop++);
  EXPECT_EQ(next_pop, 1000u);
}

TEST(SpscQueue, DrainMovesEverythingInOrder) {
  SpscQueue<std::unique_ptr<int>> q(8);  // move-only payloads survive drain
  for (int i = 0; i < 6; ++i)
    ASSERT_TRUE(q.try_push(std::make_unique<int>(i)));
  std::vector<std::unique_ptr<int>> out;
  EXPECT_EQ(q.drain(out), 6u);
  EXPECT_TRUE(q.empty());
  ASSERT_EQ(out.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(*out[i], i);
}

TEST(SpscQueue, ProducerConsumerThreadsKeepSequence) {
  // One producer, one consumer, a ring much smaller than the payload count:
  // every value must arrive exactly once, in order, through many wraps.
  constexpr std::uint64_t kCount = 200'000;
  SpscQueue<std::uint64_t> q(64);

  std::thread producer([&q] {
    for (std::uint64_t i = 0; i < kCount; ++i)
      while (!q.try_push(std::uint64_t{i})) std::this_thread::yield();
  });
  std::uint64_t expect = 0;
  while (expect < kCount) {
    std::uint64_t v = 0;
    if (q.try_pop(v)) {
      ASSERT_EQ(v, expect) << "reordered or duplicated in flight";
      ++expect;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(q.empty());
}

TEST(ShardChannel, SpillAbsorbsBurstsBeyondTheRing) {
  // The channel wrapper never drops: pushes beyond the ring capacity land
  // in the producer-local spill, and drain returns ring-then-spill — the
  // original push order when the consumer (as in the engine) only drains
  // after the producer's window ended.
  sim::ShardChannel ch(4);
  std::vector<sim::Push> journal(10);
  for (std::size_t i = 0; i < journal.size(); ++i) {
    journal[i].idx = static_cast<std::uint32_t>(i);
    ch.push(&journal[i]);
  }
  std::vector<sim::Push*> out;
  ch.drain(out);
  ASSERT_EQ(out.size(), journal.size());
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i]->idx, i);

  // The spill is cleared by drain: a second window starts from empty.
  out.clear();
  ch.drain(out);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace ibarb::util
