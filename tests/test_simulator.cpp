#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "network/topology.hpp"

namespace ibarb::sim {
namespace {

/// Arbitration table serving the given VLs round-robin with the given
/// weights from the high-priority table.
iba::VlArbitrationTable table_for(
    std::initializer_list<std::pair<iba::VirtualLane, std::uint8_t>> vls) {
  iba::VlArbitrationTable t;
  unsigned i = 0;
  for (const auto& [vl, w] : vls) t.high()[i++] = iba::ArbTableEntry{vl, w};
  return t;
}

/// Programs every wired output port of the fabric with the same table.
void program_all(Simulator& sim, const network::FabricGraph& g,
                 const iba::VlArbitrationTable& t) {
  for (iba::NodeId n = 0; n < g.node_count(); ++n) {
    const unsigned ports = g.is_switch(n) ? g.port_count(n) : 1;
    for (unsigned p = 0; p < ports; ++p)
      if (g.peer(n, static_cast<iba::PortIndex>(p)))
        sim.set_output_arbitration(n, static_cast<iba::PortIndex>(p), t);
  }
}

FlowSpec cbr(iba::NodeId src, iba::NodeId dst, iba::ServiceLevel sl,
             std::uint32_t payload, iba::Cycle interval) {
  FlowSpec f;
  f.src_host = src;
  f.dst_host = dst;
  f.sl = sl;
  f.payload_bytes = payload;
  f.interval = interval;
  f.deadline = 1u << 20;
  return f;
}

TEST(Simulator, DeliversCbrPackets) {
  const auto g = network::gen::single_switch(2);
  const auto routes = network::compute_routes(g);
  Simulator sim(g, routes, SimConfig{});
  program_all(sim, g, table_for({{0, 100}}));
  const auto hosts = g.hosts();
  const auto flow = sim.add_flow(cbr(hosts[0], hosts[1], 0, 256, 2000));
  sim.metrics().start_window(0);
  sim.run_until(200000);
  const auto& c = sim.metrics().connections[flow];
  // 200000/2000 = 100 packets generated; nearly all should have landed.
  EXPECT_GE(c.rx_packets, 95u);
  EXPECT_LE(c.rx_packets, 101u);
  EXPECT_EQ(c.rx_payload_bytes, c.rx_packets * 256u);
  EXPECT_GT(c.delay.mean(), 0.0);
}

TEST(Simulator, PacketConservation) {
  const auto g = network::gen::line(3, 1);
  const auto routes = network::compute_routes(g);
  Simulator sim(g, routes, SimConfig{});
  program_all(sim, g, table_for({{0, 100}, {1, 100}}));
  const auto hosts = g.hosts();
  const auto f1 = sim.add_flow(cbr(hosts[0], hosts[2], 0, 512, 1500));
  const auto f2 = sim.add_flow(cbr(hosts[2], hosts[0], 1, 256, 900));
  sim.metrics().start_window(0);
  sim.run_until(500000);
  const auto& m = sim.metrics();
  const auto tx = m.connections[f1].tx_packets + m.connections[f2].tx_packets;
  const auto rx = m.connections[f1].rx_packets + m.connections[f2].rx_packets;
  ASSERT_GE(tx, rx);
  // Everything generated is delivered, queued, or in flight on a link; the
  // line has 5 links x 2 directions, at most ~2 packets in flight each.
  const auto queued = sim.packets_in_network();
  ASSERT_GE(tx, rx + queued);
  EXPECT_LE(tx - rx - queued, 20u);
}

TEST(Simulator, MultiHopDelayGrowsWithDistance) {
  const auto g = network::gen::line(4, 1);
  const auto routes = network::compute_routes(g);
  Simulator sim(g, routes, SimConfig{});
  program_all(sim, g, table_for({{0, 100}, {1, 100}}));
  const auto hosts = g.hosts();
  const auto near = sim.add_flow(cbr(hosts[0], hosts[1], 0, 256, 3000));
  const auto far = sim.add_flow(cbr(hosts[0], hosts[3], 1, 256, 3000));
  sim.metrics().start_window(0);
  sim.run_until(300000);
  const auto& m = sim.metrics();
  ASSERT_GT(m.connections[near].rx_packets, 10u);
  ASSERT_GT(m.connections[far].rx_packets, 10u);
  EXPECT_GT(m.connections[far].delay.mean(),
            m.connections[near].delay.mean());
}

TEST(Simulator, ArbitrationWeightsShapeContendedBandwidth) {
  // Two sources flood one destination; table weights 2:1 on their VLs must
  // shape the delivered bytes accordingly.
  const auto g = network::gen::single_switch(3);
  const auto routes = network::compute_routes(g);
  Simulator sim(g, routes, SimConfig{});
  program_all(sim, g, table_for({{0, 200}, {1, 100}}));
  const auto hosts = g.hosts();
  // Each source offers ~90% of the link: the shared output saturates.
  const auto fa = sim.add_flow(cbr(hosts[0], hosts[2], 0, 1024, 1160));
  const auto fb = sim.add_flow(cbr(hosts[1], hosts[2], 1, 1024, 1160));
  sim.metrics().start_window(0);
  sim.run_until(3000000);
  const auto& m = sim.metrics();
  const auto ra = m.connections[fa].rx_wire_bytes;
  const auto rb = m.connections[fb].rx_wire_bytes;
  ASSERT_GT(rb, 0u);
  EXPECT_NEAR(static_cast<double>(ra) / static_cast<double>(rb), 2.0, 0.15);
}

TEST(Simulator, ManagementTrafficPreemptsData) {
  const auto g = network::gen::single_switch(3);
  const auto routes = network::compute_routes(g);
  Simulator sim(g, routes, SimConfig{});
  program_all(sim, g, table_for({{0, 100}}));
  const auto hosts = g.hosts();
  // Saturating data flow and a trickle of management MADs to the same dst.
  const auto data = sim.add_flow(cbr(hosts[0], hosts[2], 0, 4096, 4200));
  auto mad = cbr(hosts[1], hosts[2], 0, 64, 50000);
  mad.management = true;
  const auto mgmt = sim.add_flow(mad);
  sim.metrics().start_window(0);
  sim.run_until(2000000);
  const auto& m = sim.metrics();
  EXPECT_GT(m.connections[data].rx_packets, 100u);
  // Management packets are tiny and few: all of them must get through.
  EXPECT_GE(m.connections[mgmt].rx_packets, 38u);
  EXPECT_LT(m.connections[mgmt].delay.max(), 100000.0);
}

TEST(Simulator, DeterministicAcrossRuns) {
  const auto run = [] {
    const auto g = network::gen::line(3, 2);
    const auto routes = network::compute_routes(g);
    Simulator sim(g, routes, SimConfig{});
    iba::VlArbitrationTable t = iba::VlArbitrationTable();
    t.high()[0] = iba::ArbTableEntry{0, 50};
    t.high()[1] = iba::ArbTableEntry{1, 30};
    t.high()[2] = iba::ArbTableEntry{2, 20};
    for (iba::NodeId n = 0; n < g.node_count(); ++n) {
      const unsigned ports = g.is_switch(n) ? g.port_count(n) : 1;
      for (unsigned p = 0; p < ports; ++p)
        if (g.peer(n, static_cast<iba::PortIndex>(p)))
          sim.set_output_arbitration(n, static_cast<iba::PortIndex>(p), t);
    }
    const auto hosts = g.hosts();
    sim.add_flow(cbr(hosts[0], hosts[5], 0, 256, 700));
    sim.add_flow(cbr(hosts[1], hosts[4], 1, 512, 900));
    sim.add_flow(cbr(hosts[5], hosts[0], 2, 1024, 1100));
    sim.metrics().start_window(0);
    sim.run_until(800000);
    std::uint64_t digest = sim.events_processed();
    for (const auto& c : sim.metrics().connections) {
      digest = digest * 31 + c.rx_packets;
      digest = digest * 31 + static_cast<std::uint64_t>(c.delay.mean() * 16);
    }
    return digest;
  };
  EXPECT_EQ(run(), run());
}

TEST(Simulator, PaperPhasesStopAtTargetPackets) {
  const auto g = network::gen::single_switch(2);
  const auto routes = network::compute_routes(g);
  Simulator sim(g, routes, SimConfig{});
  program_all(sim, g, table_for({{0, 100}}));
  const auto hosts = g.hosts();
  const auto flow = sim.add_flow(cbr(hosts[0], hosts[1], 0, 256, 5000));
  const auto summary =
      sim.run_paper_phases(/*warmup=*/50000, /*min_rx=*/50,
                           /*hard_limit=*/100000000);
  EXPECT_FALSE(summary.hit_hard_limit);
  EXPECT_GE(sim.metrics().connections[flow].rx_packets, 50u);
  EXPECT_GT(summary.window_cycles, 0u);
  // Warm-up deliveries must not appear in the window stats.
  EXPECT_LT(sim.metrics().connections[flow].rx_packets, 120u);
}

TEST(Simulator, HardLimitStopsStarvedRun) {
  const auto g = network::gen::single_switch(2);
  const auto routes = network::compute_routes(g);
  Simulator sim(g, routes, SimConfig{});
  // No arbitration entries programmed: the flow's VL is never scheduled.
  const auto hosts = g.hosts();
  sim.add_flow(cbr(hosts[0], hosts[1], 3, 256, 5000));
  const auto summary = sim.run_paper_phases(1000, 10, /*hard_limit=*/300000);
  EXPECT_TRUE(summary.hit_hard_limit);
}

TEST(Simulator, UtilizationMatchesOfferedLoad) {
  const auto g = network::gen::single_switch(2);
  const auto routes = network::compute_routes(g);
  Simulator sim(g, routes, SimConfig{});
  program_all(sim, g, table_for({{0, 100}}));
  const auto hosts = g.hosts();
  // 282-byte wire packets every 1128 cycles = 25% of a 1x link.
  sim.add_flow(cbr(hosts[0], hosts[1], 0, 256, 1128));
  sim.metrics().start_window(0);
  sim.run_until(2000000);
  sim.metrics().stop_window(sim.now());
  const auto id = sim.flat_port_id(hosts[0], 0);
  const auto& pm = sim.metrics().ports[id];
  EXPECT_TRUE(pm.is_host_interface);
  EXPECT_NEAR(pm.utilization(sim.metrics().window_length()), 0.25, 0.01);
}

TEST(Simulator, RejectsBadFlows) {
  const auto g = network::gen::single_switch(2);
  const auto routes = network::compute_routes(g);
  Simulator sim(g, routes, SimConfig{});
  const auto hosts = g.hosts();
  auto self = cbr(hosts[0], hosts[0], 0, 256, 100);
  EXPECT_THROW(sim.add_flow(self), std::invalid_argument);
  auto zero = cbr(hosts[0], hosts[1], 0, 256, 100);
  zero.interval = 0;
  EXPECT_THROW(sim.add_flow(zero), std::invalid_argument);
  auto sw = cbr(g.switches()[0], hosts[1], 0, 256, 100);
  EXPECT_THROW(sim.add_flow(sw), std::invalid_argument);
}

TEST(Simulator, PoissonFlowApproximatesRate) {
  const auto g = network::gen::single_switch(2);
  const auto routes = network::compute_routes(g);
  Simulator sim(g, routes, SimConfig{});
  program_all(sim, g, table_for({{0, 100}}));
  const auto hosts = g.hosts();
  auto f = cbr(hosts[0], hosts[1], 0, 256, 2000);
  f.kind = GeneratorKind::kPoisson;
  const auto flow = sim.add_flow(f);
  sim.metrics().start_window(0);
  sim.run_until(4000000);
  const auto& c = sim.metrics().connections[flow];
  EXPECT_NEAR(static_cast<double>(c.rx_packets), 2000.0, 150.0);
}

TEST(Simulator, VbrFlowKeepsLongRunMeanRate) {
  const auto g = network::gen::single_switch(2);
  const auto routes = network::compute_routes(g);
  Simulator sim(g, routes, SimConfig{});
  program_all(sim, g, table_for({{0, 100}}));
  const auto hosts = g.hosts();
  auto f = cbr(hosts[0], hosts[1], 0, 256, 2000);
  f.kind = GeneratorKind::kOnOffVbr;
  f.on_fraction = 0.25;
  f.burst_mean_packets = 8.0;
  const auto flow = sim.add_flow(f);
  sim.metrics().start_window(0);
  sim.run_until(8000000);
  const auto& c = sim.metrics().connections[flow];
  // 8e6 / 2000 = 4000 expected; allow generous slack for burst variance.
  EXPECT_NEAR(static_cast<double>(c.rx_packets), 4000.0, 600.0);
}

}  // namespace
}  // namespace ibarb::sim

namespace ibarb::sim {
namespace {

TEST(Simulator, FourXLinksMoveFourTimesTheData) {
  // Same saturating workload on a 1x and a 4x single-switch fabric: the 4x
  // fabric must deliver ~4x the bytes in the same simulated time.
  const auto run = [](iba::LinkRate rate) {
    const auto g = network::gen::single_switch(2, 8, rate);
    const auto routes = network::compute_routes(g);
    Simulator sim(g, routes, SimConfig{});
    program_all(sim, g, table_for({{0, 200}}));
    const auto hosts = g.hosts();
    auto f = cbr(hosts[0], hosts[1], 0, 2048, 100);  // far beyond 1x capacity
    sim.add_flow(f);
    sim.metrics().start_window(0);
    sim.run_until(3'000'000);
    return sim.metrics().connections[0].rx_wire_bytes;
  };
  const auto bytes_1x = run(iba::LinkRate::k1x);
  const auto bytes_4x = run(iba::LinkRate::k4x);
  EXPECT_NEAR(static_cast<double>(bytes_4x) / static_cast<double>(bytes_1x),
              4.0, 0.2);
  // And the 1x run is itself at line rate (1 byte/cycle, minus overheads).
  EXPECT_GT(static_cast<double>(bytes_1x) / 3'000'000.0, 0.9);
}

}  // namespace
}  // namespace ibarb::sim
