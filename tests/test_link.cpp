#include "iba/link.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ibarb::iba {
namespace {

TEST(Link, WidthsMatchSpec) {
  EXPECT_EQ(link_width(LinkRate::k1x), 1u);
  EXPECT_EQ(link_width(LinkRate::k4x), 4u);
  EXPECT_EQ(link_width(LinkRate::k12x), 12u);
}

TEST(Link, DataBandwidth) {
  EXPECT_DOUBLE_EQ(link_mbps(LinkRate::k1x), 2000.0);
  EXPECT_DOUBLE_EQ(link_mbps(LinkRate::k4x), 8000.0);
  EXPECT_DOUBLE_EQ(link_mbps(LinkRate::k12x), 24000.0);
}

TEST(Link, SerializationRoundsUp) {
  EXPECT_EQ(serialization_cycles(282, LinkRate::k1x), 282u);
  EXPECT_EQ(serialization_cycles(282, LinkRate::k4x), 71u);   // ceil(282/4)
  EXPECT_EQ(serialization_cycles(282, LinkRate::k12x), 24u);  // ceil(282/12)
  EXPECT_EQ(serialization_cycles(0, LinkRate::k1x), 0u);
}

TEST(Link, TransferAddsPropagation) {
  Link l{LinkRate::k1x, 5};
  EXPECT_EQ(l.transfer_cycles(100), 105u);
}

TEST(Link, ParseRoundTrip) {
  EXPECT_EQ(parse_link_rate("1x"), LinkRate::k1x);
  EXPECT_EQ(parse_link_rate("4x"), LinkRate::k4x);
  EXPECT_EQ(parse_link_rate("12x"), LinkRate::k12x);
  EXPECT_EQ(to_string(LinkRate::k4x), "4x");
  EXPECT_THROW(parse_link_rate("8x"), std::invalid_argument);
}

TEST(Link, FasterLinksNeverSlower) {
  for (std::uint32_t bytes = 1; bytes < 5000; bytes += 37) {
    EXPECT_LE(serialization_cycles(bytes, LinkRate::k4x),
              serialization_cycles(bytes, LinkRate::k1x));
    EXPECT_LE(serialization_cycles(bytes, LinkRate::k12x),
              serialization_cycles(bytes, LinkRate::k4x));
  }
}

}  // namespace
}  // namespace ibarb::iba
