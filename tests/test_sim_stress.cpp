// Stress and failure-injection scenarios for the network simulator:
// hotspots, saturation, starvation regimes — the places where flow control,
// backpressure and arbitration interact hardest.
#include <gtest/gtest.h>

#include "network/topology.hpp"
#include "sim/simulator.hpp"

namespace ibarb::sim {
namespace {

iba::VlArbitrationTable rr_table(unsigned vls, std::uint8_t weight) {
  iba::VlArbitrationTable t;
  for (unsigned v = 0; v < vls; ++v)
    t.high()[v] = iba::ArbTableEntry{static_cast<iba::VirtualLane>(v), weight};
  return t;
}

void program_all(Simulator& sim, const network::FabricGraph& g,
                 const iba::VlArbitrationTable& t) {
  for (iba::NodeId n = 0; n < g.node_count(); ++n) {
    const unsigned ports = g.is_switch(n) ? g.port_count(n) : 1;
    for (unsigned p = 0; p < ports; ++p)
      if (g.peer(n, static_cast<iba::PortIndex>(p)))
        sim.set_output_arbitration(n, static_cast<iba::PortIndex>(p), t);
  }
}

FlowSpec flow(iba::NodeId src, iba::NodeId dst, iba::ServiceLevel sl,
              std::uint32_t payload, iba::Cycle interval) {
  FlowSpec f;
  f.src_host = src;
  f.dst_host = dst;
  f.sl = sl;
  f.payload_bytes = payload;
  f.interval = interval;
  return f;
}

TEST(SimStress, SevenWayHotspotSaturatesOneLinkWithoutLosingPackets) {
  const auto g = network::gen::single_switch(8);
  const auto routes = network::compute_routes(g);
  Simulator sim(g, routes, SimConfig{});
  program_all(sim, g, rr_table(8, 100));
  const auto hosts = g.hosts();
  // Hosts 1..7 all flood host 0 at ~60% each: 4.2x oversubscription.
  std::vector<std::uint32_t> flows;
  for (unsigned h = 1; h < 8; ++h)
    flows.push_back(sim.add_flow(
        flow(hosts[h], hosts[0], static_cast<iba::ServiceLevel>(h), 1024,
             1750)));
  sim.metrics().start_window(0);
  sim.run_until(5'000'000);
  sim.metrics().stop_window(sim.now());

  // The hot output port (switch -> host 0) must be essentially saturated.
  const auto up = g.host_uplink(hosts[0]);
  const auto& pm = sim.metrics().ports[sim.flat_port_id(up.node, up.port)];
  EXPECT_GT(pm.utilization(sim.metrics().window_length()), 0.97);
  EXPECT_LE(pm.utilization(sim.metrics().window_length()), 1.0 + 1e-9);

  // Conservation: nothing generated may vanish.
  std::uint64_t tx = 0, rx = 0;
  for (const auto f : flows) {
    tx += sim.metrics().connections[f].tx_packets;
    rx += sim.metrics().connections[f].rx_packets;
  }
  EXPECT_GE(tx, rx);
  EXPECT_LE(tx - rx - sim.packets_in_network(), 40u);  // in flight on links

  // Round-robin equal weights: the seven victims share within ~15%.
  std::uint64_t lo = UINT64_MAX, hi = 0;
  for (const auto f : flows) {
    lo = std::min(lo, sim.metrics().connections[f].rx_packets);
    hi = std::max(hi, sim.metrics().connections[f].rx_packets);
  }
  EXPECT_LT(static_cast<double>(hi - lo) / static_cast<double>(hi), 0.15);
}

TEST(SimStress, UnlimitedHighPriorityStarvesLowTableUnderSaturation) {
  const auto g = network::gen::single_switch(3);
  const auto routes = network::compute_routes(g);
  Simulator sim(g, routes, SimConfig{});
  iba::VlArbitrationTable t;
  t.high()[0] = iba::ArbTableEntry{0, 100};
  t.low()[0] = iba::ArbTableEntry{5, 100};
  t.set_limit_of_high_priority(iba::kUnlimitedHighPriority);
  program_all(sim, g, t);
  const auto hosts = g.hosts();
  // High-priority flow saturates the shared output; low-priority competes.
  const auto hp = sim.add_flow(flow(hosts[0], hosts[2], 0, 2048, 2074));
  const auto lp = sim.add_flow(flow(hosts[1], hosts[2], 5, 2048, 4000));
  sim.metrics().start_window(0);
  sim.run_until(8'000'000);
  const auto& m = sim.metrics();
  EXPECT_GT(m.connections[hp].rx_packets, 3000u);
  // The low VL gets only the leftovers of an ~100%-offered high load: a
  // tiny trickle at most.
  EXPECT_LT(m.connections[lp].rx_packets,
            m.connections[hp].rx_packets / 20);
}

TEST(SimStress, BoundedLimitRescuesLowTable) {
  const auto g = network::gen::single_switch(3);
  const auto routes = network::compute_routes(g);
  Simulator sim(g, routes, SimConfig{});
  iba::VlArbitrationTable t;
  t.high()[0] = iba::ArbTableEntry{0, 100};
  t.low()[0] = iba::ArbTableEntry{5, 100};
  t.set_limit_of_high_priority(1);  // one low packet per ~4096 B of high
  program_all(sim, g, t);
  const auto hosts = g.hosts();
  const auto hp = sim.add_flow(flow(hosts[0], hosts[2], 0, 2048, 2074));
  const auto lp = sim.add_flow(flow(hosts[1], hosts[2], 5, 2048, 4000));
  sim.metrics().start_window(0);
  sim.run_until(8'000'000);
  const auto& m = sim.metrics();
  // ~1 low packet per 2 high packets (4096 B limit / 2074 B packets).
  const auto hp_rx = m.connections[hp].rx_packets;
  const auto lp_rx = m.connections[lp].rx_packets;
  ASSERT_GT(lp_rx, 0u);
  const double ratio = static_cast<double>(hp_rx) / static_cast<double>(lp_rx);
  EXPECT_NEAR(ratio, 2.0, 0.5);
}

TEST(SimStress, ZeroWeightVlNeverTransmitsButOthersDo) {
  const auto g = network::gen::single_switch(3);
  const auto routes = network::compute_routes(g);
  Simulator sim(g, routes, SimConfig{});
  iba::VlArbitrationTable t;
  t.high()[0] = iba::ArbTableEntry{0, 100};
  t.high()[1] = iba::ArbTableEntry{1, 0};  // inactive entry
  program_all(sim, g, t);
  const auto hosts = g.hosts();
  const auto ok = sim.add_flow(flow(hosts[0], hosts[2], 0, 256, 5000));
  const auto stuck = sim.add_flow(flow(hosts[1], hosts[2], 1, 256, 5000));
  sim.metrics().start_window(0);
  sim.run_until(1'000'000);
  EXPECT_GT(sim.metrics().connections[ok].rx_packets, 150u);
  EXPECT_EQ(sim.metrics().connections[stuck].rx_packets, 0u);
}

TEST(SimStress, BidirectionalFullDuplexDoesNotInterfere) {
  const auto g = network::gen::line(2, 1);
  const auto routes = network::compute_routes(g);
  Simulator sim(g, routes, SimConfig{});
  program_all(sim, g, rr_table(2, 100));
  const auto hosts = g.hosts();
  // Both directions at ~90% simultaneously: full duplex must carry both.
  const auto ab = sim.add_flow(flow(hosts[0], hosts[1], 0, 2048, 2304));
  const auto ba = sim.add_flow(flow(hosts[1], hosts[0], 1, 2048, 2304));
  sim.metrics().start_window(0);
  sim.run_until(5'000'000);
  const auto& m = sim.metrics();
  const auto expected = 5'000'000 / 2304;
  EXPECT_NEAR(double(m.connections[ab].rx_packets), double(expected),
              double(expected) * 0.05);
  EXPECT_NEAR(double(m.connections[ba].rx_packets), double(expected),
              double(expected) * 0.05);
}

TEST(SimStress, LongRunDeterminismUnderSaturation) {
  const auto run = [] {
    const auto g = network::gen::single_switch(6);
    const auto routes = network::compute_routes(g);
    Simulator sim(g, routes, SimConfig{});
    iba::VlArbitrationTable t;
    for (unsigned v = 0; v < 6; ++v)
      t.high()[v] = iba::ArbTableEntry{static_cast<iba::VirtualLane>(v),
                                       static_cast<std::uint8_t>(30 + v * 10)};
    for (iba::NodeId n = 0; n < g.node_count(); ++n) {
      const unsigned ports = g.is_switch(n) ? g.port_count(n) : 1;
      for (unsigned p = 0; p < ports; ++p)
        if (g.peer(n, static_cast<iba::PortIndex>(p)))
          sim.set_output_arbitration(n, static_cast<iba::PortIndex>(p), t);
    }
    const auto hosts = g.hosts();
    for (unsigned k = 0; k < 6; ++k) {
      FlowSpec f = flow(hosts[k], hosts[(k + 1) % 6],
                        static_cast<iba::ServiceLevel>(k), 512,
                        600 + 37 * k);
      f.kind = k % 2 ? GeneratorKind::kPoisson : GeneratorKind::kCbr;
      sim.add_flow(f);
    }
    sim.metrics().start_window(0);
    sim.run_until(4'000'000);
    std::uint64_t digest = sim.events_processed();
    for (const auto& c : sim.metrics().connections)
      digest = digest * 1099511628211ull + c.rx_packets * 31 +
               c.rx_wire_bytes;
    return digest;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace ibarb::sim
