#include "iba/vl_arbitration.hpp"

#include <gtest/gtest.h>

#include "iba/arbiter.hpp"

namespace ibarb::iba {
namespace {

TEST(VlArbitrationTable, StartsEmptyAndValid) {
  VlArbitrationTable t;
  EXPECT_EQ(t.total_weight_high(), 0u);
  EXPECT_EQ(t.total_weight_low(), 0u);
  EXPECT_EQ(t.active_entries_high(), 0u);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.limit_of_high_priority(), kUnlimitedHighPriority);
}

TEST(VlArbitrationTable, WeightAccounting) {
  VlArbitrationTable t;
  t.high()[0] = ArbTableEntry{2, 100};
  t.high()[5] = ArbTableEntry{2, 50};
  t.high()[9] = ArbTableEntry{3, 20};
  t.low()[0] = ArbTableEntry{4, 60};
  EXPECT_EQ(t.vl_weight_high(2), 150u);
  EXPECT_EQ(t.vl_weight_high(3), 20u);
  EXPECT_EQ(t.vl_weight_high(4), 0u);
  EXPECT_EQ(t.vl_weight_low(4), 60u);
  EXPECT_EQ(t.total_weight_high(), 170u);
  EXPECT_EQ(t.total_weight_low(), 60u);
  EXPECT_EQ(t.active_entries_high(), 3u);
}

TEST(VlArbitrationTable, ZeroWeightEntryIsInactive) {
  ArbTableEntry e{3, 0};
  EXPECT_FALSE(e.active());
  VlArbitrationTable t;
  t.high()[0] = e;
  EXPECT_EQ(t.active_entries_high(), 0u);
  EXPECT_EQ(t.vl_weight_high(3), 0u);
}

TEST(VlArbitrationTable, Vl15EntriesAreInvalid) {
  VlArbitrationTable t;
  t.high()[0] = ArbTableEntry{kManagementVl, 10};
  EXPECT_FALSE(t.valid());
  VlArbitrationTable t2;
  t2.low()[0] = ArbTableEntry{kManagementVl, 10};
  EXPECT_FALSE(t2.valid());
}

TEST(VlArbitrationTable, FullTableWeightConstant) {
  VlArbitrationTable t;
  for (auto& e : t.high()) e = ArbTableEntry{0, kMaxEntryWeight};
  EXPECT_EQ(t.total_weight_high(), kFullTableWeight);
}

TEST(VlArbitrationTable, LimitRoundTrips) {
  VlArbitrationTable t;
  t.set_limit_of_high_priority(10);
  EXPECT_EQ(t.limit_of_high_priority(), 10);
}

TEST(VlArbiter, LimitBoundaryFiresTheLowPriorityEscape) {
  // IBA §7.6.9: LimitOfHighPriority = L allows L×4096 bytes of high-table
  // data while a low-priority packet waits; at the boundary the arbiter
  // must yield one low-table slot. Exact-boundary case: two 2048-byte high
  // packets reach exactly 1×4096 — the meter trips at >=, so the THIRD
  // decision is the escape, not the fourth.
  VlArbitrationTable t;
  t.high()[0] = ArbTableEntry{0, 255};
  t.low()[0] = ArbTableEntry{1, 1};
  t.set_limit_of_high_priority(1);
  VlArbiter arb(t);

  ReadyBytes ready{};
  ready[0] = 2048;  // high-table head (VL0)
  ready[1] = 512;   // low-priority packet pending throughout (VL1)

  const auto d1 = arb.arbitrate(ready);
  ASSERT_TRUE(d1.has_value());
  EXPECT_EQ(d1->vl, 0);
  EXPECT_TRUE(d1->from_high);
  const auto d2 = arb.arbitrate(ready);
  ASSERT_TRUE(d2.has_value());
  EXPECT_EQ(d2->vl, 0);
  EXPECT_EQ(arb.stats().limit_blocks, 0u) << "limit tripped before 4096 B";

  const auto d3 = arb.arbitrate(ready);
  ASSERT_TRUE(d3.has_value());
  EXPECT_EQ(d3->vl, 1) << "the low-priority escape must fire at the limit";
  EXPECT_FALSE(d3->from_high);
  EXPECT_EQ(arb.stats().limit_blocks, 1u);

  // The low pick reset the meter: high-priority service resumes at once.
  const auto d4 = arb.arbitrate(ready);
  ASSERT_TRUE(d4.has_value());
  EXPECT_EQ(d4->vl, 0);
  EXPECT_TRUE(d4->from_high);
}

TEST(VlArbiter, LimitMetersOnlyWhileLowTrafficWaits) {
  // The spec meters high-priority data sent WHILE low-priority packets
  // wait. High data alone — no low packet pending — must never accumulate
  // toward the limit, no matter how much is sent.
  VlArbitrationTable t;
  t.high()[0] = ArbTableEntry{0, 255};
  t.low()[0] = ArbTableEntry{1, 1};
  t.set_limit_of_high_priority(1);
  VlArbiter arb(t);

  ReadyBytes high_only{};
  high_only[0] = 4096;
  for (int i = 0; i < 8; ++i) {
    const auto d = arb.arbitrate(high_only);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->vl, 0);
  }

  // A low packet appears: the meter starts from zero, so the next decision
  // is still high (an eagerly-metering arbiter would block immediately).
  ReadyBytes both = high_only;
  both[1] = 512;
  const auto d = arb.arbitrate(both);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->vl, 0);
  EXPECT_TRUE(d->from_high);
  EXPECT_EQ(arb.stats().limit_blocks, 0u);

  // ...and exactly one more 4096-byte pick trips the boundary.
  const auto d2 = arb.arbitrate(both);
  ASSERT_TRUE(d2.has_value());
  EXPECT_EQ(d2->vl, 1);
  EXPECT_EQ(arb.stats().limit_blocks, 1u);
}

}  // namespace
}  // namespace ibarb::iba
