#include "iba/vl_arbitration.hpp"

#include <gtest/gtest.h>

namespace ibarb::iba {
namespace {

TEST(VlArbitrationTable, StartsEmptyAndValid) {
  VlArbitrationTable t;
  EXPECT_EQ(t.total_weight_high(), 0u);
  EXPECT_EQ(t.total_weight_low(), 0u);
  EXPECT_EQ(t.active_entries_high(), 0u);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.limit_of_high_priority(), kUnlimitedHighPriority);
}

TEST(VlArbitrationTable, WeightAccounting) {
  VlArbitrationTable t;
  t.high()[0] = ArbTableEntry{2, 100};
  t.high()[5] = ArbTableEntry{2, 50};
  t.high()[9] = ArbTableEntry{3, 20};
  t.low()[0] = ArbTableEntry{4, 60};
  EXPECT_EQ(t.vl_weight_high(2), 150u);
  EXPECT_EQ(t.vl_weight_high(3), 20u);
  EXPECT_EQ(t.vl_weight_high(4), 0u);
  EXPECT_EQ(t.vl_weight_low(4), 60u);
  EXPECT_EQ(t.total_weight_high(), 170u);
  EXPECT_EQ(t.total_weight_low(), 60u);
  EXPECT_EQ(t.active_entries_high(), 3u);
}

TEST(VlArbitrationTable, ZeroWeightEntryIsInactive) {
  ArbTableEntry e{3, 0};
  EXPECT_FALSE(e.active());
  VlArbitrationTable t;
  t.high()[0] = e;
  EXPECT_EQ(t.active_entries_high(), 0u);
  EXPECT_EQ(t.vl_weight_high(3), 0u);
}

TEST(VlArbitrationTable, Vl15EntriesAreInvalid) {
  VlArbitrationTable t;
  t.high()[0] = ArbTableEntry{kManagementVl, 10};
  EXPECT_FALSE(t.valid());
  VlArbitrationTable t2;
  t2.low()[0] = ArbTableEntry{kManagementVl, 10};
  EXPECT_FALSE(t2.valid());
}

TEST(VlArbitrationTable, FullTableWeightConstant) {
  VlArbitrationTable t;
  for (auto& e : t.high()) e = ArbTableEntry{0, kMaxEntryWeight};
  EXPECT_EQ(t.total_weight_high(), kFullTableWeight);
}

TEST(VlArbitrationTable, LimitRoundTrips) {
  VlArbitrationTable t;
  t.set_limit_of_high_priority(10);
  EXPECT_EQ(t.limit_of_high_priority(), 10);
}

}  // namespace
}  // namespace ibarb::iba
