// The crossbar-scheduler zoo (src/sched/): differential, property and
// invariant tests.
//
//  * Differential: WrrCrossbar against a verbatim transliteration of the
//    pre-refactor Simulator loop, over randomized arrival/release schedules
//    — the grant sequence must match exactly (the simulator-level half of
//    this is the golden-file comparison in CI against seed-build output).
//  * iSLIP properties: maximal matching within N iterations, no double
//    grant inside a match, pointer desynchronization reaching 100%
//    throughput on saturated uniform traffic within N cells.
//  * Matrix property: a persistent requester is never starved — it wins
//    within N-1 losses, and contended service is exactly fair.
//  * ABR properties: guaranteed heads are never throttled; best-effort
//    served bytes converge to equal shares (max-min on a single
//    bottleneck); the rate view decays.
//  * Cross-scheduler probes: work conservation after every full matching
//    round, grant-eligibility at commit time (asserted inside the mock),
//    deterministic replay, Theorem 1 (zero deadline misses end-to-end)
//    under every implementation.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdlib>
#include <deque>
#include <numeric>
#include <vector>

#include "paper_runner.hpp"
#include "sched/abr_crossbar.hpp"
#include "sched/crossbar.hpp"
#include "sched/islip_crossbar.hpp"
#include "sched/matrix_crossbar.hpp"
#include "sched/wrr_crossbar.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace ibarb::sched {
namespace {

struct MockPacket {
  iba::PortIndex out = 0;
  std::uint32_t bytes = 288;
  bool guaranteed = true;
};

struct Grant {
  unsigned in = 0;
  iba::VirtualLane vl = 0;
  unsigned out = 0;

  bool operator==(const Grant&) const = default;
};

/// A one-switch fabric stub. grant() enforces the commit-time contract
/// (input ready, output free, space downstream) with test assertions, so
/// every scheduler test doubles as an eligibility-invariant probe.
/// Copyable on purpose: the differential test replays one arrival schedule
/// against two engines.
class MockFabric : public CrossbarPorts {
 public:
  explicit MockFabric(unsigned ports)
      : ports_(ports), q_(ports), in_busy_(ports, false),
        out_busy_(ports, false), out_full_(ports, false) {}

  // --- test controls ------------------------------------------------------
  void push(unsigned in, iba::VirtualLane vl, MockPacket p) {
    q_[in][vl].push_back(p);
  }
  void set_output_full(unsigned out, bool full) { out_full_[out] = full; }
  /// Cell boundary: every in-flight transfer completes.
  void release_all() {
    std::fill(in_busy_.begin(), in_busy_.end(), false);
    std::fill(out_busy_.begin(), out_busy_.end(), false);
  }
  void advance(iba::Cycle cycles) { time_ += cycles; }
  const std::vector<Grant>& grants() const { return grants_; }
  std::uint64_t queued() const {
    std::uint64_t n = 0;
    for (const auto& input : q_)
      for (const auto& vl : input) n += vl.size();
    return n;
  }

  /// True when some transfer could still start — i.e. the previous
  /// schedule() was NOT work-conserving.
  bool has_eligible_pair() const {
    for (unsigned i = 0; i < ports_; ++i) {
      if (!input_ready(i)) continue;
      for (unsigned v = 0; v < iba::kMaxVirtualLanes; ++v) {
        const auto vl = static_cast<iba::VirtualLane>(v);
        if (q_[i][v].empty()) continue;
        const auto out = head_output(i, vl);
        if (output_free(out) && output_accepts(i, vl, out)) return true;
      }
    }
    return false;
  }

  // --- CrossbarPorts ------------------------------------------------------
  unsigned port_count() const override { return ports_; }
  iba::Cycle now() const override { return time_; }
  bool input_ready(iba::PortIndex in) const override {
    return !in_busy_[in] && input_occupancy(in) != 0;
  }
  std::uint16_t input_occupancy(iba::PortIndex in) const override {
    std::uint16_t occ = 0;
    for (unsigned v = 0; v < iba::kMaxVirtualLanes; ++v)
      if (!q_[in][v].empty()) occ |= static_cast<std::uint16_t>(1u << v);
    return occ;
  }
  iba::PortIndex head_output(iba::PortIndex in,
                             iba::VirtualLane vl) const override {
    return q_[in][vl].front().out;
  }
  std::uint32_t head_bytes(iba::PortIndex in,
                           iba::VirtualLane vl) const override {
    return q_[in][vl].front().bytes;
  }
  bool output_free(iba::PortIndex out) const override {
    return !out_busy_[out];
  }
  bool output_accepts(iba::PortIndex, iba::VirtualLane,
                      iba::PortIndex out) const override {
    return !out_full_[out];
  }
  bool head_guaranteed(iba::PortIndex in, iba::VirtualLane vl,
                       iba::PortIndex) const override {
    return q_[in][vl].front().guaranteed;
  }
  void grant(iba::PortIndex in, iba::VirtualLane vl,
             iba::PortIndex out) override {
    // Commit-time contract: every grant must be eligible right now. A
    // double grant within one match trips the busy checks.
    EXPECT_TRUE(input_ready(in)) << "grant from busy/empty input " << in;
    EXPECT_FALSE(q_[in][vl].empty()) << "grant from empty (in,vl)";
    EXPECT_EQ(q_[in][vl].front().out, out) << "grant to wrong output";
    EXPECT_TRUE(output_free(out)) << "grant to busy output " << out;
    EXPECT_TRUE(output_accepts(in, vl, out)) << "grant past a full output";
    q_[in][vl].pop_front();
    in_busy_[in] = true;
    out_busy_[out] = true;
    grants_.push_back({in, vl, static_cast<unsigned>(out)});
  }

 private:
  unsigned ports_;
  std::vector<std::array<std::deque<MockPacket>, iba::kMaxVirtualLanes>> q_;
  std::vector<bool> in_busy_;
  std::vector<bool> out_busy_;
  std::vector<bool> out_full_;
  std::vector<Grant> grants_;
  iba::Cycle time_ = 0;
};

// ---------------------------------------------------------------------------
// Differential: WrrCrossbar vs the pre-refactor Simulator loop, verbatim.
// ---------------------------------------------------------------------------

/// Transliteration of the pre-refactor Simulator::try_start_transfer /
/// schedule_crossbar pair (see git history of src/sim/simulator.cpp),
/// with the port-state accesses routed through the view. Kept deliberately
/// close to the original text so a divergence in WrrCrossbar is a bug in
/// the extraction, not in this reference.
struct ReferenceWrr {
  unsigned rr_input = 0;
  std::vector<iba::VirtualLane> rr_vl;

  explicit ReferenceWrr(unsigned ports) : rr_vl(ports, 0) {}

  bool try_start_transfer(MockFabric& f, iba::PortIndex in_port) {
    if (!f.input_ready(in_port)) return false;
    const std::uint16_t occ = f.input_occupancy(in_port);
    for (unsigned k = 0; k < iba::kMaxVirtualLanes; ++k) {
      const auto vl = static_cast<iba::VirtualLane>(
          (rr_vl[in_port] + k) % iba::kMaxVirtualLanes);
      if (!(occ & (1u << vl))) continue;
      const auto out_port = f.head_output(in_port, vl);
      if (!f.output_free(out_port)) continue;
      if (!f.output_accepts(in_port, vl, out_port)) continue;
      rr_vl[in_port] =
          static_cast<iba::VirtualLane>((vl + 1) % iba::kMaxVirtualLanes);
      f.grant(in_port, vl, out_port);
      return true;
    }
    return false;
  }

  void schedule(MockFabric& f, int only_input) {
    if (only_input >= 0) {
      try_start_transfer(f, static_cast<iba::PortIndex>(only_input));
      return;
    }
    const unsigned ports = f.port_count();
    bool progress = true;
    while (progress) {
      progress = false;
      for (unsigned k = 0; k < ports; ++k) {
        const auto p = static_cast<iba::PortIndex>((rr_input + k) % ports);
        if (try_start_transfer(f, p)) {
          rr_input = (p + 1) % ports;
          progress = true;
        }
      }
    }
  }
};

TEST(WrrDifferential, MatchesPreRefactorReferenceOnRandomSchedules) {
  constexpr unsigned kPorts = 8;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::Xoshiro256 rng(seed);
    MockFabric fa(kPorts);
    MockFabric fb(kPorts);
    WrrCrossbar impl(kPorts);
    ReferenceWrr ref(kPorts);

    for (unsigned step = 0; step < 400; ++step) {
      const double r = rng.uniform();
      if (r < 0.55) {
        // Arrival at a random (input, VL) — the single-arrival trigger.
        const auto in = static_cast<unsigned>(rng.uniform(0, kPorts));
        const auto vl = static_cast<iba::VirtualLane>(
            rng.uniform(0, iba::kMaxVirtualLanes));
        MockPacket p;
        p.out = static_cast<iba::PortIndex>(rng.uniform(0, kPorts));
        p.bytes = 64 + static_cast<std::uint32_t>(rng.uniform(0, 4096));
        fa.push(in, vl, p);
        fb.push(in, vl, p);
        impl.schedule(fa, static_cast<int>(in));
        ref.schedule(fb, static_cast<int>(in));
      } else if (r < 0.8) {
        // Transfer completions: full rescan.
        fa.release_all();
        fb.release_all();
        impl.schedule(fa, -1);
        ref.schedule(fb, -1);
      } else {
        // Downstream congestion flips.
        const auto out = static_cast<unsigned>(rng.uniform(0, kPorts));
        const bool full = rng.chance(0.5);
        fa.set_output_full(out, full);
        fb.set_output_full(out, full);
        impl.schedule(fa, -1);
        ref.schedule(fb, -1);
      }
      ASSERT_EQ(fa.grants().size(), fb.grants().size())
          << "seed " << seed << " step " << step;
    }
    // The whole grant sequence — order included — must be identical.
    ASSERT_EQ(fa.grants(), fb.grants()) << "seed " << seed;
    EXPECT_GT(fa.grants().size(), 100u) << "scenario too idle to be probative";
  }
}

// ---------------------------------------------------------------------------
// iSLIP properties.
// ---------------------------------------------------------------------------

TEST(Islip, MatchIsMaximalWithinPortCountIterations) {
  constexpr unsigned kPorts = 8;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    util::Xoshiro256 rng(seed);
    MockFabric f(kPorts);
    IslipCrossbar islip(kPorts);
    // Random sparse backlog, some outputs congested.
    for (unsigned i = 0; i < kPorts; ++i)
      for (unsigned v = 0; v < 4; ++v)
        if (rng.chance(0.6)) {
          MockPacket p;
          p.out = static_cast<iba::PortIndex>(rng.uniform(0, kPorts));
          f.push(i, static_cast<iba::VirtualLane>(v), p);
        }
    for (unsigned o = 0; o < kPorts; ++o)
      if (rng.chance(0.2)) f.set_output_full(o, true);

    const auto iterations_before = islip.stats().iterations;
    islip.schedule(f, -1);
    // Maximality: nothing startable may remain.
    EXPECT_FALSE(f.has_eligible_pair()) << "seed " << seed;
    // And the match converged within N = port-count iterations.
    EXPECT_LE(islip.stats().iterations - iterations_before, kPorts)
        << "seed " << seed;
  }
}

TEST(Islip, NoInputOrOutputGrantedTwiceWithinOneMatch) {
  constexpr unsigned kPorts = 8;
  MockFabric f(kPorts);
  IslipCrossbar islip(kPorts);
  // Saturated all-to-all: VL v of every input holds a packet for output v.
  for (unsigned i = 0; i < kPorts; ++i)
    for (unsigned v = 0; v < kPorts; ++v)
      f.push(i, static_cast<iba::VirtualLane>(v),
             {static_cast<iba::PortIndex>(v), 288, true});

  islip.schedule(f, -1);
  // One matching round on an idle fabric: at most one grant per input and
  // per output (the mock's busy asserts enforce it; count it too).
  std::array<unsigned, kPorts> in_count{};
  std::array<unsigned, kPorts> out_count{};
  for (const Grant& g : f.grants()) {
    ++in_count[g.in];
    ++out_count[g.out];
  }
  for (unsigned p = 0; p < kPorts; ++p) {
    EXPECT_LE(in_count[p], 1u);
    EXPECT_LE(out_count[p], 1u);
  }
  // Saturated uniform traffic: the very first match must already be perfect
  // (maximal matching on a complete bipartite request graph).
  EXPECT_EQ(f.grants().size(), kPorts);
}

TEST(Islip, PointersDesynchronizeToFullThroughputWithinNCells) {
  // McKeown's headline property: under saturated traffic the grant/accept
  // pointers desynchronize and every cell carries a full permutation.
  constexpr unsigned kPorts = 8;
  constexpr unsigned kCells = 3 * kPorts;
  MockFabric f(kPorts);
  IslipCrossbar islip(kPorts);

  const auto refill = [&f] {
    for (unsigned i = 0; i < kPorts; ++i)
      for (unsigned v = 0; v < kPorts; ++v)
        while (f.input_occupancy(i) == 0 ||
               !(f.input_occupancy(i) & (1u << v)))
          f.push(i, static_cast<iba::VirtualLane>(v),
                 {static_cast<iba::PortIndex>(v), 288, true});
  };

  std::size_t prev = 0;
  for (unsigned cell = 0; cell < kCells; ++cell) {
    refill();
    islip.schedule(f, -1);
    const std::size_t granted = f.grants().size() - prev;
    prev = f.grants().size();
    if (cell >= kPorts) {
      EXPECT_EQ(granted, kPorts)
          << "cell " << cell << ": pointers failed to desynchronize";
    }
    f.release_all();
  }
}

TEST(Islip, RandomPermutationServedCompletelyWithinNCells) {
  // Satellite property: any persistent permutation workload reaches 100%
  // throughput within N cells — after that, every cell moves one packet of
  // every input.
  constexpr unsigned kPorts = 8;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    util::Xoshiro256 rng(seed);
    std::array<unsigned, kPorts> perm{};
    std::iota(perm.begin(), perm.end(), 0u);
    for (unsigned i = kPorts - 1; i > 0; --i)
      std::swap(perm[i],
                perm[static_cast<unsigned>(rng.uniform(0, i + 1))]);

    MockFabric f(kPorts);
    IslipCrossbar islip(kPorts);
    for (unsigned i = 0; i < kPorts; ++i)
      for (unsigned n = 0; n < 2 * kPorts; ++n)
        f.push(i, 0, {static_cast<iba::PortIndex>(perm[i]), 288, true});

    std::size_t prev = 0;
    for (unsigned cell = 0; cell < 2 * kPorts; ++cell) {
      islip.schedule(f, -1);
      const std::size_t granted = f.grants().size() - prev;
      prev = f.grants().size();
      // Conflict-free requests: the match must be perfect from cell 0.
      EXPECT_EQ(granted, kPorts) << "seed " << seed << " cell " << cell;
      f.release_all();
    }
  }
}

// ---------------------------------------------------------------------------
// Matrix-arbiter properties.
// ---------------------------------------------------------------------------

TEST(Matrix, PersistentRequesterIsNeverStarved) {
  constexpr unsigned kPorts = 8;
  constexpr unsigned kRounds = 64;  // 8 full service cycles
  MockFabric f(kPorts);
  MatrixCrossbar matrix(kPorts);
  // Every input hammers output 0 forever.
  for (unsigned i = 0; i < kPorts; ++i)
    for (unsigned n = 0; n < kRounds; ++n)
      f.push(i, 0, {0, 288, true});

  std::array<unsigned, kPorts> served{};
  for (unsigned cell = 0; cell < kRounds; ++cell) {
    matrix.schedule(f, -1);
    ASSERT_EQ(f.grants().size(), cell + 1) << "output 0 must serve 1/cell";
    ++served[f.grants().back().in];
    f.release_all();

    if (cell + 1 == kPorts) {
      // Least-recently-served: within the first N cells every requester
      // has been granted exactly once — nobody starves, nobody doubles.
      for (unsigned i = 0; i < kPorts; ++i)
        EXPECT_EQ(served[i], 1u) << "input " << i;
    }
  }
  // And over k*N cells, exactly k each: perfect long-run fairness.
  for (unsigned i = 0; i < kPorts; ++i)
    EXPECT_EQ(served[i], kRounds / kPorts) << "input " << i;
}

TEST(Matrix, NewRequesterCannotBargeAheadForever) {
  // An input that loses keeps rising in priority, so a latecomer can win at
  // most once before the veteran is served.
  constexpr unsigned kPorts = 4;
  MockFabric f(kPorts);
  MatrixCrossbar matrix(kPorts);

  // Input 3 waits alone first; then input 0 (higher seed priority: the
  // matrix is seeded with index order) joins every cell.
  for (unsigned n = 0; n < 8; ++n) f.push(3, 0, {0, 288, true});
  matrix.schedule(f, -1);
  ASSERT_EQ(f.grants().back().in, 3u);  // alone: wins immediately
  f.release_all();

  for (unsigned n = 0; n < 8; ++n) f.push(0, 0, {0, 288, true});
  // From here both contend. 3 was just served (lowest priority), so 0 wins
  // once; then strict alternation — neither ever waits more than one cell.
  std::vector<unsigned> order;
  for (unsigned cell = 0; cell < 8; ++cell) {
    matrix.schedule(f, -1);
    order.push_back(f.grants().back().in);
    f.release_all();
  }
  const std::vector<unsigned> expected{0, 3, 0, 3, 0, 3, 0, 3};
  EXPECT_EQ(order, expected);
}

// ---------------------------------------------------------------------------
// ABR-lane properties.
// ---------------------------------------------------------------------------

TEST(Abr, GuaranteedHeadsAreNeverThrottled) {
  constexpr unsigned kPorts = 4;
  constexpr unsigned kCells = 32;
  MockFabric f(kPorts);
  AbrCrossbar abr(kPorts);
  // Input 0: guaranteed backlog to output 0. Inputs 1..3: best-effort
  // backlog contending for output 1.
  for (unsigned n = 0; n < kCells; ++n) {
    f.push(0, 0, {0, 288, true});
    for (unsigned i = 1; i < kPorts; ++i)
      f.push(i, 1, {1, 288, false});
  }

  for (unsigned cell = 0; cell < kCells; ++cell) {
    const std::size_t before = f.grants().size();
    abr.schedule(f, -1);
    // Work conservation across both lanes: the guaranteed head AND one
    // best-effort contender start every cell.
    ASSERT_EQ(f.grants().size() - before, 2u) << "cell " << cell;
    EXPECT_EQ(f.grants()[before].in, 0u)
        << "guaranteed lane must be scheduled first";
    f.release_all();
  }
  // The two losing best-effort contenders were throttled every cell; the
  // guaranteed flow never was (it is scheduled before the rate lane runs).
  EXPECT_EQ(abr.stats().throttled, (kPorts - 2) * kCells);
}

TEST(Abr, BestEffortSharesConvergeToMaxMinEquality) {
  constexpr unsigned kPorts = 4;
  constexpr unsigned kCells = 600;
  MockFabric f(kPorts);
  AbrCrossbar abr(kPorts);
  // Three best-effort flows into output 0 with very different packet
  // sizes. Equal packet COUNTS would skew bytes 1:4:16; the explicit-rate
  // lane must equalize BYTES instead.
  const std::array<std::uint32_t, 3> sizes{128, 512, 2048};
  const auto refill = [&] {
    for (unsigned i = 0; i < 3; ++i)
      if (!(f.input_occupancy(i) & 1u)) f.push(i, 0, {0, sizes[i], false});
  };

  for (unsigned cell = 0; cell < kCells; ++cell) {
    refill();
    abr.schedule(f, -1);
    f.release_all();
  }

  std::array<std::uint64_t, 3> served{};
  for (unsigned i = 0; i < 3; ++i) served[i] = abr.served_bytes(i, 0);
  const auto [lo, hi] = std::minmax_element(served.begin(), served.end());
  EXPECT_GT(*lo, 0u);
  // Max-min on one bottleneck: equal shares, to within one largest packet.
  EXPECT_LE(*hi - *lo, 2048u) << served[0] << " " << served[1] << " "
                              << served[2];
}

TEST(Abr, RateViewDecaysAcrossEpochs) {
  constexpr unsigned kPorts = 2;
  MockFabric f(kPorts);
  AbrCrossbar abr(kPorts);
  f.push(0, 0, {0, 1000, false});
  abr.schedule(f, -1);
  ASSERT_EQ(abr.served_bytes(0, 0), 1000u);
  f.release_all();

  // Two epochs later the counter has halved twice: old service stops
  // dominating the allocation forever.
  f.advance(2 * AbrCrossbar::kRateEpochCycles);
  abr.schedule(f, -1);  // empty round; just rolls the epoch
  EXPECT_EQ(abr.served_bytes(0, 0), 250u);
}

// ---------------------------------------------------------------------------
// Cross-scheduler invariant probes.
// ---------------------------------------------------------------------------

class EverySchedulerTest : public ::testing::TestWithParam<CrossbarImpl> {};

INSTANTIATE_TEST_SUITE_P(Zoo, EverySchedulerTest,
                         ::testing::Values(CrossbarImpl::kWrr,
                                           CrossbarImpl::kIslip,
                                           CrossbarImpl::kMatrix,
                                           CrossbarImpl::kAbr),
                         [](const auto& info) {
                           return crossbar_impl_name(info.param);
                         });

/// Randomized arrival/release/congestion schedule against one scheduler;
/// returns the fabric for post-hoc assertions.
MockFabric drive_random(CrossbarScheduler& sched, unsigned ports,
                        std::uint64_t seed, unsigned steps) {
  util::Xoshiro256 rng(seed);
  MockFabric f(ports);
  for (unsigned step = 0; step < steps; ++step) {
    const double r = rng.uniform();
    if (r < 0.5) {
      const auto in = static_cast<unsigned>(rng.uniform(0, ports));
      const auto vl = static_cast<iba::VirtualLane>(
          rng.uniform(0, iba::kMaxVirtualLanes));
      MockPacket p;
      p.out = static_cast<iba::PortIndex>(rng.uniform(0, ports));
      p.bytes = 64 + static_cast<std::uint32_t>(rng.uniform(0, 4096));
      p.guaranteed = rng.chance(0.5);
      f.push(in, vl, p);
      sched.schedule(f, static_cast<int>(in));
    } else if (r < 0.8) {
      f.release_all();
      f.advance(1 + static_cast<iba::Cycle>(rng.uniform(0, 5000)));
      sched.schedule(f, -1);
    } else {
      f.set_output_full(static_cast<unsigned>(rng.uniform(0, ports)),
                        rng.chance(0.4));
      sched.schedule(f, -1);
    }
  }
  // Finish with a full rescan so work conservation is assessable.
  f.release_all();
  sched.schedule(f, -1);
  return f;
}

TEST_P(EverySchedulerTest, WorkConservingAfterFullRescan) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto sched = make_crossbar(GetParam(), 8);
    const MockFabric f = drive_random(*sched, 8, seed, 300);
    // After schedule(-1) returns, no startable transfer may remain — for
    // ANY policy in the zoo. (Eligibility at commit time was asserted by
    // the mock on every grant along the way.)
    EXPECT_FALSE(f.has_eligible_pair()) << "seed " << seed;
    EXPECT_GT(f.grants().size(), 50u) << "scenario too idle to be probative";
  }
}

TEST_P(EverySchedulerTest, DeterministicReplay) {
  const auto a = make_crossbar(GetParam(), 8);
  const auto b = make_crossbar(GetParam(), 8);
  const MockFabric fa = drive_random(*a, 8, 42, 400);
  const MockFabric fb = drive_random(*b, 8, 42, 400);
  // Same schedule, same decisions, bit for bit — schedulers may keep no
  // hidden nondeterministic state (this is what --jobs reproducibility
  // rests on).
  EXPECT_EQ(fa.grants(), fb.grants());
  EXPECT_EQ(a->stats().grants, b->stats().grants);
  EXPECT_EQ(a->stats().iterations, b->stats().iterations);
}

TEST_P(EverySchedulerTest, StatsCountGrantsExactly) {
  const auto sched = make_crossbar(GetParam(), 8);
  const MockFabric f = drive_random(*sched, 8, 7, 300);
  EXPECT_EQ(sched->stats().grants, f.grants().size());
  EXPECT_GT(sched->stats().rounds, 0u);
}

// ---------------------------------------------------------------------------
// End-to-end: Theorem 1 holds under every scheduler.
// ---------------------------------------------------------------------------

TEST_P(EverySchedulerTest, TheoremOneNoDeadlineMissEndToEnd) {
  // The paper's no-miss guarantee stems from the VL arbitration tables at
  // the OUTPUT ports; the crossbar policy upstream of them must not be able
  // to break it on an admitted workload.
  bench::PaperRunConfig cfg;
  cfg.switches = 4;
  cfg.min_rx_packets = 8;
  cfg.warmup = 200'000;
  cfg.crossbar = GetParam();
  const auto run = bench::run_paper_experiment(cfg);
  ASSERT_FALSE(run->summary.hit_hard_limit);
  ASSERT_GT(run->workload.accepted, 0u);
  for (const auto& ec : run->workload.connections) {
    const auto& c = run->sim->metrics().connections[ec.flow];
    ASSERT_GT(c.rx_packets, 0u) << "SL " << int(ec.sl);
    EXPECT_EQ(c.deadline_misses, 0u)
        << crossbar_impl_name(GetParam()) << " SL " << int(ec.sl);
    EXPECT_DOUBLE_EQ(c.fraction_within(sim::kDelayThresholds - 1), 1.0);
  }
}

// ---------------------------------------------------------------------------
// Selection plumbing: flag and env are validated at parse time.
// ---------------------------------------------------------------------------

TEST(CrossbarSelection, ParseKnowsEveryName) {
  EXPECT_EQ(parse_crossbar_impl("wrr"), CrossbarImpl::kWrr);
  EXPECT_EQ(parse_crossbar_impl("islip"), CrossbarImpl::kIslip);
  EXPECT_EQ(parse_crossbar_impl("matrix"), CrossbarImpl::kMatrix);
  EXPECT_EQ(parse_crossbar_impl("abr"), CrossbarImpl::kAbr);
  EXPECT_FALSE(parse_crossbar_impl("WRR").has_value());
  EXPECT_FALSE(parse_crossbar_impl("islip2").has_value());
  EXPECT_FALSE(parse_crossbar_impl("").has_value());
  for (const auto impl :
       {CrossbarImpl::kWrr, CrossbarImpl::kIslip, CrossbarImpl::kMatrix,
        CrossbarImpl::kAbr})
    EXPECT_EQ(parse_crossbar_impl(crossbar_impl_name(impl)), impl);
}

class CrossbarEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* old = std::getenv("IBARB_CROSSBAR");
    if (old != nullptr) saved_ = old;
  }
  void TearDown() override {
    if (saved_.empty())
      unsetenv("IBARB_CROSSBAR");
    else
      setenv("IBARB_CROSSBAR", saved_.c_str(), 1);
  }

 private:
  std::string saved_;
};

TEST_F(CrossbarEnvTest, UnsetAndEmptyMeanWrr) {
  unsetenv("IBARB_CROSSBAR");
  EXPECT_EQ(crossbar_impl_from_env(), CrossbarImpl::kWrr);
  setenv("IBARB_CROSSBAR", "", 1);
  EXPECT_EQ(crossbar_impl_from_env(), CrossbarImpl::kWrr);
}

TEST_F(CrossbarEnvTest, KnownValuesSelectTheScheduler) {
  for (const char* name : {"wrr", "islip", "matrix", "abr"}) {
    setenv("IBARB_CROSSBAR", name, 1);
    EXPECT_EQ(crossbar_impl_from_env(), *parse_crossbar_impl(name));
  }
}

TEST_F(CrossbarEnvTest, UnknownValueThrowsWithTheValidList) {
  setenv("IBARB_CROSSBAR", "roundrobin", 1);
  try {
    (void)crossbar_impl_from_env();
    FAIL() << "a typo'd scheduler must never fall back silently";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("roundrobin"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("wrr|islip|matrix|abr"),
              std::string::npos);
  }
}

TEST(CrossbarSelection, CliFlagRejectsUnknownAtParseTime) {
  const char* argv[] = {"bench", "--crossbar", "fifo"};
  const util::Cli cli(3, argv);
  try {
    (void)cli.std_flags();
    FAIL() << "--crossbar fifo must be rejected before any run starts";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("fifo"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("wrr|islip|matrix|abr"),
              std::string::npos);
  }
}

TEST(CrossbarSelection, CliFlagAcceptsEveryKnownName) {
  for (const char* name : {"wrr", "islip", "matrix", "abr"}) {
    const char* argv[] = {"bench", "--crossbar", name};
    const util::Cli cli(3, argv);
    EXPECT_EQ(cli.std_flags().crossbar, name);
  }
  const char* bare[] = {"bench"};
  EXPECT_TRUE(util::Cli(1, bare).std_flags().crossbar.empty());
}

TEST_F(CrossbarEnvTest, FlagBeatsEnvInPaperRunConfig) {
  setenv("IBARB_CROSSBAR", "matrix", 1);
  {
    const char* argv[] = {"bench", "--crossbar", "islip"};
    const util::Cli cli(3, argv);
    const auto cfg = bench::config_from_cli(cli);
    ASSERT_TRUE(cfg.crossbar.has_value());
    EXPECT_EQ(*cfg.crossbar, CrossbarImpl::kIslip);
  }
  {
    // No flag: config stays empty and the runner defers to the env.
    const char* argv[] = {"bench"};
    const util::Cli cli(1, argv);
    EXPECT_FALSE(bench::config_from_cli(cli).crossbar.has_value());
  }
}

TEST(CrossbarSelection, ConfigFromCliRejectsUnknown) {
  const char* argv[] = {"bench", "--crossbar", "maxmin"};
  const util::Cli cli(3, argv);
  EXPECT_THROW((void)bench::config_from_cli(cli), std::invalid_argument);
}

}  // namespace
}  // namespace ibarb::sched
