// Audit of the VlArbitrationTable aggregate caches under realistic mutation:
// the incremental values maintained by set_high_entry/set_low_entry (and the
// lazy rebuild after non-const high()/low() access) must always equal a fresh
// scan of the underlying table, through arbitrary TableManager churn —
// allocate, share, release, re-render of the low table, and defragmentation.
#include <gtest/gtest.h>

#include <vector>

#include "arbtable/table_manager.hpp"
#include "iba/vl_arbitration.hpp"
#include "network/topology.hpp"
#include "qos/admission.hpp"
#include "qos/traffic_classes.hpp"
#include "subnet/subnet_manager.hpp"
#include "util/rng.hpp"

namespace ibarb {
namespace {

struct ScanResult {
  std::array<unsigned, iba::kMaxVirtualLanes> vl_weight{};
  unsigned total = 0;
  unsigned active = 0;
  std::uint16_t vl_mask = 0;
};

ScanResult scan(const iba::ArbTable& t) {
  ScanResult r;
  for (const auto& e : t) {
    if (!e.active()) continue;
    r.vl_weight[e.vl] += e.weight;
    r.total += e.weight;
    r.active += 1;
    r.vl_mask |= static_cast<std::uint16_t>(1u << e.vl);
  }
  return r;
}

void expect_caches_match(const iba::VlArbitrationTable& table,
                         const char* when) {
  EXPECT_TRUE(table.cache_in_sync()) << when;
  const ScanResult high = scan(table.high());
  const ScanResult low = scan(table.low());
  EXPECT_EQ(table.total_weight_high(), high.total) << when;
  EXPECT_EQ(table.total_weight_low(), low.total) << when;
  EXPECT_EQ(table.active_entries_high(), high.active) << when;
  EXPECT_EQ(table.active_entries_low(), low.active) << when;
  EXPECT_EQ(table.vl_mask_high(), high.vl_mask) << when;
  EXPECT_EQ(table.vl_mask_low(), low.vl_mask) << when;
  for (unsigned vl = 0; vl < iba::kMaxVirtualLanes; ++vl) {
    EXPECT_EQ(table.vl_weight_high(static_cast<iba::VirtualLane>(vl)),
              high.vl_weight[vl])
        << when << " vl " << vl;
    EXPECT_EQ(table.vl_weight_low(static_cast<iba::VirtualLane>(vl)),
              low.vl_weight[vl])
        << when << " vl " << vl;
  }
}

arbtable::Requirement req_for_distance(unsigned d, unsigned weight) {
  arbtable::Requirement r;
  r.distance = d;
  r.entries = iba::kArbTableEntries / d;
  r.weight_per_entry = weight;
  r.total_weight = r.entries * r.weight_per_entry;
  return r;
}

TEST(ArbiterAggregateCache, IncrementalSingleEntryWrites) {
  iba::VlArbitrationTable t;
  util::Xoshiro256 rng(31);
  for (int i = 0; i < 2'000; ++i) {
    const auto index = static_cast<unsigned>(rng.below(iba::kArbTableEntries));
    const iba::ArbTableEntry e{
        static_cast<iba::VirtualLane>(rng.below(iba::kManagementVl)),
        static_cast<std::uint8_t>(rng.below(256))};  // weight 0 = erase
    if (rng.chance(0.5)) {
      t.set_high_entry(index, e);
    } else {
      t.set_low_entry(index, e);
    }
    ASSERT_TRUE(t.cache_in_sync()) << "after write " << i;
  }
  expect_caches_match(t, "after incremental churn");
}

TEST(ArbiterAggregateCache, DirtyReferenceAccessRebuildsLazily) {
  iba::VlArbitrationTable t;
  t.set_high_entry(0, {2, 50});
  t.set_low_entry(1, {3, 10});
  expect_caches_match(t, "before dirtying");
  // Wholesale rewrite through the mutable reference (the fill algorithms'
  // access pattern) — the next aggregate query must see the new contents.
  auto& high = t.high();
  for (unsigned i = 0; i < 8; ++i) high[i] = iba::ArbTableEntry{5, 7};
  expect_caches_match(t, "after mutable-reference rewrite");
  EXPECT_EQ(t.vl_weight_high(5), 8u * 7u);
  EXPECT_EQ(t.vl_weight_high(2), 0u);
}

TEST(ArbiterAggregateCache, TableManagerChurnWithDefrag) {
  arbtable::TableManager::Config cfg;
  cfg.reservable_fraction = 1.0;
  cfg.defrag_on_release = true;
  arbtable::TableManager m(cfg);
  m.configure_low_priority(
      std::vector<std::pair<iba::VirtualLane, std::uint8_t>>{{14, 32},
                                                             {13, 16}});
  expect_caches_match(m.table(), "after low-priority config");

  util::Xoshiro256 rng(47);
  constexpr unsigned kDistances[] = {2, 4, 8, 16, 32, 64};
  struct Live {
    arbtable::SeqHandle h;
    arbtable::Requirement r;
  };
  std::vector<Live> live;
  for (int i = 0; i < 600; ++i) {
    if (!live.empty() && rng.chance(0.45)) {
      const auto k = rng.below(live.size());
      m.release(live[k].h, live[k].r, 0.001);  // may trigger defragmentation
      live[k] = live.back();
      live.pop_back();
    } else {
      const auto vl = static_cast<iba::VirtualLane>(rng.below(8));
      const auto r = req_for_distance(
          kDistances[rng.below(6)],
          1 + static_cast<unsigned>(rng.below(60)));
      if (const auto h = m.allocate(vl, r, 0.001)) live.push_back(Live{*h, r});
    }
    ASSERT_TRUE(m.table().cache_in_sync()) << "after churn step " << i;
    if (i % 50 == 0) expect_caches_match(m.table(), "during churn");
    std::string why;
    ASSERT_TRUE(m.check_invariants(&why)) << why;
  }
  for (const auto& l : live) m.release(l.h, l.r, 0.001);
  expect_caches_match(m.table(), "after full teardown");
  EXPECT_EQ(m.table().active_entries_high(), 0u);
}

TEST(ArbiterAggregateCache, SurvivesFaultStyleAdmissionChurn) {
  // The recovery coordinator's exact mutation pattern: release a batch of
  // connections (defrag fires per release), re-admit over possibly different
  // paths with graceful degradation shedding best-effort load in between.
  // audit_tables() — every port's invariants plus the aggregate-cache
  // cross-check — must hold after every single release-shaped step.
  const auto graph = network::gen::fat_tree2(2, 3, 2);
  subnet::SubnetManager sm(graph);
  qos::AdmissionControl::Config ac;
  ac.seed = 9;
  qos::AdmissionControl admission(graph, sm.routes(), qos::paper_catalogue(),
                                  ac);
  const auto hosts = graph.hosts();

  util::Xoshiro256 rng(53);
  std::vector<qos::ConnectionId> guaranteed;
  std::vector<qos::ConnectionId> besteffort;
  const auto random_pair = [&](qos::ConnectionRequest& req) {
    req.src_host = hosts[rng.below(hosts.size())];
    do {
      req.dst_host = hosts[rng.below(hosts.size())];
    } while (req.dst_host == req.src_host);
  };

  for (int step = 0; step < 400; ++step) {
    const auto dice = rng.below(10);
    if (dice < 3 && !guaranteed.empty()) {
      const auto k = rng.below(guaranteed.size());
      admission.release(guaranteed[k]);
      guaranteed[k] = guaranteed.back();
      guaranteed.pop_back();
    } else if (dice < 5 && !besteffort.empty()) {
      const auto k = rng.below(besteffort.size());
      if (admission.is_live(besteffort[k]))  // may have been shed already
        admission.release(besteffort[k]);
      besteffort[k] = besteffort.back();
      besteffort.pop_back();
    } else if (dice < 8) {
      qos::ConnectionRequest req;
      random_pair(req);
      req.sl = static_cast<iba::ServiceLevel>(rng.below(10));
      req.max_distance =
          qos::find_sl(admission.catalogue(), req.sl)->max_distance;
      req.wire_mbps = 5 + static_cast<double>(rng.below(40));
      const auto result = admission.request_degrading(req);
      if (result.id) guaranteed.push_back(*result.id);
    } else {
      qos::ConnectionRequest req;
      random_pair(req);
      req.sl = static_cast<iba::ServiceLevel>(10 + rng.below(3));
      req.wire_mbps = 10 + static_cast<double>(rng.below(80));
      if (const auto id = admission.request_best_effort(req))
        besteffort.push_back(*id);
    }
    std::string why;
    ASSERT_TRUE(admission.audit_tables(&why)) << "step " << step << ": " << why;
  }
  for (const auto id : guaranteed) admission.release(id);
  for (const auto id : besteffort)
    if (admission.is_live(id)) admission.release(id);
  std::string why;
  EXPECT_TRUE(admission.audit_tables(&why)) << why;
}

TEST(ArbiterAggregateCache, DynamicLowTableWeights) {
  arbtable::TableManager::Config cfg;
  cfg.reservable_fraction = 1.0;
  arbtable::TableManager m(cfg);
  ASSERT_TRUE(m.add_low_weight(4, 100, 1.0));
  expect_caches_match(m.table(), "after add_low_weight");
  ASSERT_TRUE(m.add_low_weight(5, 300, 1.0));  // spans two 255-capped entries
  expect_caches_match(m.table(), "after second add_low_weight");
  EXPECT_EQ(m.table().vl_weight_low(5), 300u);
  m.remove_low_weight(5, 300, 1.0);
  expect_caches_match(m.table(), "after remove_low_weight");
  EXPECT_EQ(m.table().vl_weight_low(5), 0u);
}

}  // namespace
}  // namespace ibarb
