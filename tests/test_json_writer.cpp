#include "util/json_writer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

namespace ibarb::util {
namespace {

std::string dump(bool pretty, void (*body)(JsonWriter&)) {
  std::ostringstream os;
  JsonWriter w(os, pretty);
  body(w);
  EXPECT_TRUE(w.done());
  return os.str();
}

TEST(JsonWriter, EmptyObjectAndArray) {
  EXPECT_EQ(dump(false, [](JsonWriter& w) { w.begin_object().end_object(); }),
            "{}");
  EXPECT_EQ(dump(false, [](JsonWriter& w) { w.begin_array().end_array(); }),
            "[]");
}

TEST(JsonWriter, ScalarTypes) {
  const auto s = dump(false, [](JsonWriter& w) {
    w.begin_object();
    w.kv("s", "hi");
    w.kv("b", true);
    w.kv("i", std::int64_t{-7});
    w.kv("u", std::uint64_t{18446744073709551615ull});
    w.kv("d", 0.5);
    w.key("n");
    w.null();
    w.end_object();
  });
  EXPECT_EQ(s,
            "{\"s\":\"hi\",\"b\":true,\"i\":-7,"
            "\"u\":18446744073709551615,\"d\":0.5,\"n\":null}");
}

TEST(JsonWriter, EscapesControlAndSpecialChars) {
  std::string out;
  JsonWriter::escape("a\"b\\c\n\t\r\b\f", out);
  EXPECT_EQ(out, "a\\\"b\\\\c\\n\\t\\r\\b\\f");
  out.clear();
  // Control characters without shorthand escapes use \u00XX.
  JsonWriter::escape(std::string_view("\x01\x1f\x00", 3), out);
  EXPECT_EQ(out, "\\u0001\\u001f\\u0000");
  out.clear();
  // Multi-byte UTF-8 passes through untouched.
  JsonWriter::escape("µs → ok", out);
  EXPECT_EQ(out, "µs → ok");
}

TEST(JsonWriter, EscapedStringValue) {
  const auto s = dump(false, [](JsonWriter& w) {
    w.begin_object();
    w.kv("k\n", "v\"");
    w.end_object();
  });
  EXPECT_EQ(s, "{\"k\\n\":\"v\\\"\"}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  const auto s = dump(false, [](JsonWriter& w) {
    w.begin_array();
    w.value(std::numeric_limits<double>::quiet_NaN());
    w.value(std::numeric_limits<double>::infinity());
    w.value(-std::numeric_limits<double>::infinity());
    w.value(1.5);
    w.end_array();
  });
  EXPECT_EQ(s, "[null,null,null,1.5]");
}

TEST(JsonWriter, DoublesRoundTripShortest) {
  // Shortest round-trip form: no trailing zeros, parses back exactly.
  for (const double v : {0.1, 1.0 / 3.0, 1e-300, 6.02214076e23, -0.0}) {
    std::ostringstream os;
    JsonWriter w(os);
    w.value(v);
    const double back = std::stod(os.str());
    EXPECT_EQ(back, v) << os.str();
  }
}

TEST(JsonWriter, NestingRoundTrip) {
  // Deep mixed nesting emits balanced, parseable JSON.
  const auto s = dump(false, [](JsonWriter& w) {
    w.begin_object();
    w.key("runs");
    w.begin_array();
    for (int i = 0; i < 3; ++i) {
      w.begin_object();
      w.kv("idx", i);
      w.key("bins");
      w.begin_array();
      w.value(1).value(2).value(3);
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.key("empty");
    w.begin_object();
    w.end_object();
    w.end_object();
  });
  EXPECT_EQ(s,
            "{\"runs\":[{\"idx\":0,\"bins\":[1,2,3]},"
            "{\"idx\":1,\"bins\":[1,2,3]},"
            "{\"idx\":2,\"bins\":[1,2,3]}],\"empty\":{}}");
  // Structural sanity: balanced braces/brackets.
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\')
        ++i;
      else if (c == '"')
        in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(JsonWriter, PrettyMatchesCompactModuloWhitespace) {
  const auto body = [](JsonWriter& w) {
    w.begin_object();
    w.kv("a", 1);
    w.key("l");
    w.begin_array();
    w.value("x").value("y");
    w.end_array();
    w.end_object();
  };
  const auto compact = dump(false, body);
  const auto pretty = dump(true, body);
  EXPECT_NE(compact, pretty);
  // Stripping structural whitespace from pretty output recovers compact.
  std::string stripped;
  bool in_string = false;
  for (std::size_t i = 0; i < pretty.size(); ++i) {
    const char c = pretty[i];
    if (in_string) {
      stripped += c;
      if (c == '\\' && i + 1 < pretty.size()) stripped += pretty[++i];
      if (c == '"') in_string = false;
      continue;
    }
    if (c == ' ' || c == '\n') continue;
    stripped += c;
    if (c == '"') in_string = true;
  }
  EXPECT_EQ(stripped, compact);
}

TEST(JsonWriter, DoneTracksCompletion) {
  std::ostringstream os;
  JsonWriter w(os);
  EXPECT_FALSE(w.done());
  w.begin_object();
  EXPECT_FALSE(w.done());
  w.kv("a", 1);
  EXPECT_FALSE(w.done());
  w.end_object();
  EXPECT_TRUE(w.done());
}

}  // namespace
}  // namespace ibarb::util
