// Property tests for the paper's central theorems (§3.3, companion TR [1]):
//
//  T1. Bit-reversal fill, arrivals only: a request of distance d succeeds
//      IFF at least 64/d entries are free.
//  T2. Bit-reversal fill + defragmentation on release: T1 holds across any
//      allocate/release trace.
//  T3. Without defragmentation, releases can fragment the table so that T1
//      fails — demonstrating the defragmenter is load-bearing.
//  T4. Every live sequence keeps its VL's worst-case gap within its
//      distance at all times (the latency guarantee survives defrag moves).
//
// Sequences use near-cap per-entry weights so the sharing path cannot mask
// placement failures.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "arbtable/entry_set.hpp"
#include "arbtable/table_manager.hpp"
#include "util/rng.hpp"

namespace ibarb::arbtable {
namespace {

constexpr unsigned kDistances[] = {2, 4, 8, 16, 32, 64};

Requirement fat_req(unsigned distance) {
  Requirement r;
  r.distance = distance;
  r.entries = iba::kArbTableEntries / distance;
  r.weight_per_entry = 200;  // 200+200 > 255: sharing disabled
  r.total_weight = r.entries * r.weight_per_entry;
  return r;
}

TableManager::Config manager_cfg(bool defrag, std::uint64_t seed) {
  TableManager::Config c;
  c.link_data_mbps = 2000.0;
  c.reservable_fraction = 1.0;  // bandwidth is never the binding constraint
  c.policy = FillPolicy::kBitReversal;
  c.defrag_on_release = defrag;
  c.seed = seed;
  return c;
}

struct Live {
  SeqHandle handle;
  Requirement req;
};

class FillPropertySeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FillPropertySeeds, ArrivalsOnlySucceedIffEnoughFreeEntries) {
  util::Xoshiro256 rng(GetParam());
  TableManager m(manager_cfg(/*defrag=*/false, GetParam()));
  for (int step = 0; step < 64; ++step) {
    const unsigned d = kDistances[rng.below(std::size(kDistances))];
    const auto req = fat_req(d);
    const bool enough = m.free_entries() >= req.entries;
    const auto vl = static_cast<iba::VirtualLane>(log2_pow2(d));
    const auto got = m.allocate(vl, req, 0.0001);
    ASSERT_EQ(got.has_value(), enough)
        << "distance " << d << " with " << m.free_entries()
        << " free entries at step " << step;
    std::string why;
    ASSERT_TRUE(m.check_invariants(&why)) << why;
  }
}

TEST_P(FillPropertySeeds, ChurnWithDefragSucceedsIffEnoughFreeEntries) {
  util::Xoshiro256 rng(GetParam() ^ 0xABCD);
  TableManager m(manager_cfg(/*defrag=*/true, GetParam()));
  std::vector<Live> live;
  int fragmentation_opportunities = 0;
  for (int step = 0; step < 600; ++step) {
    if (!live.empty() && rng.chance(0.45)) {
      const auto idx = rng.below(live.size());
      m.release(live[idx].handle, live[idx].req, 0.0001);
      live[idx] = live.back();
      live.pop_back();
      std::string why;
      ASSERT_TRUE(m.check_invariants(&why)) << why;
      continue;
    }
    const unsigned d = kDistances[rng.below(std::size(kDistances))];
    const auto req = fat_req(d);
    const bool enough = m.free_entries() >= req.entries;
    if (enough && m.free_entries() < iba::kArbTableEntries)
      ++fragmentation_opportunities;
    const auto vl = static_cast<iba::VirtualLane>(log2_pow2(d));
    const auto got = m.allocate(vl, req, 0.0001);
    ASSERT_EQ(got.has_value(), enough)
        << "distance " << d << " with " << m.free_entries()
        << " free entries at step " << step;
    if (got) live.push_back(Live{*got, req});
    std::string why;
    ASSERT_TRUE(m.check_invariants(&why)) << why;
  }
  // The trace must actually have exercised non-trivial placements.
  EXPECT_GT(fragmentation_opportunities, 20);
}

TEST_P(FillPropertySeeds, GapNeverExceedsDistanceUnderChurn) {
  util::Xoshiro256 rng(GetParam() ^ 0x1357);
  TableManager m(manager_cfg(/*defrag=*/true, GetParam()));
  std::vector<Live> live;
  for (int step = 0; step < 400; ++step) {
    if (!live.empty() && rng.chance(0.4)) {
      const auto idx = rng.below(live.size());
      m.release(live[idx].handle, live[idx].req, 0.0001);
      live[idx] = live.back();
      live.pop_back();
    } else {
      const unsigned d = kDistances[rng.below(std::size(kDistances))];
      const auto req = fat_req(d);
      const auto vl = static_cast<iba::VirtualLane>(log2_pow2(d));
      if (const auto got = m.allocate(vl, req, 0.0001))
        live.push_back(Live{*got, req});
    }
    // Each VL holds only sequences of one distance (vl == log2(d)), so its
    // cyclic gap must stay within that distance at all times.
    for (const auto& l : live) {
      const auto& seq = m.sequence(l.handle);
      ASSERT_LE(max_gap_for_vl(m.table().high(), seq.vl), seq.distance);
    }
  }
}

TEST_P(FillPropertySeeds, EveryAdmissibleDistanceSucceedsAfterArbitraryChurn) {
  // Stronger Theorem-1 probe than the churn test above: that one only
  // checks the distance the trace happens to request next. Here, after
  // arbitrary interleaved admit/release bursts, EVERY distance is probed at
  // checkpoints — the defragmenter must have restored the invariant that an
  // admissible distance-d request succeeds whenever >= 64/d entries are
  // free, no matter which d the next tenant asks for.
  util::Xoshiro256 rng(GetParam() ^ 0x5EED);
  TableManager m(manager_cfg(/*defrag=*/true, GetParam()));
  std::vector<Live> live;
  int probed_while_fragmentable = 0;
  for (int step = 0; step < 500; ++step) {
    // Arbitrary interleaving: bursts of 1-6 operations, biased towards
    // releases when the table is crowded so the trace keeps oscillating
    // through partially-filled (fragmentation-prone) states.
    const int burst = 1 + static_cast<int>(rng.below(6));
    for (int op = 0; op < burst; ++op) {
      const double release_bias =
          m.free_entries() < iba::kArbTableEntries / 4 ? 0.7 : 0.35;
      if (!live.empty() && rng.chance(release_bias)) {
        const auto idx = rng.below(live.size());
        m.release(live[idx].handle, live[idx].req, 0.0001);
        live[idx] = live.back();
        live.pop_back();
      } else {
        const unsigned d = kDistances[rng.below(std::size(kDistances))];
        const auto req = fat_req(d);
        const auto vl = static_cast<iba::VirtualLane>(log2_pow2(d));
        if (const auto got = m.allocate(vl, req, 0.0001))
          live.push_back(Live{*got, req});
      }
    }
    if (step % 20 != 0) continue;
    for (const unsigned d : kDistances) {
      const auto req = fat_req(d);
      const bool enough = m.free_entries() >= req.entries;
      if (enough && !live.empty()) ++probed_while_fragmentable;
      const auto vl = static_cast<iba::VirtualLane>(log2_pow2(d));
      const auto got = m.allocate(vl, req, 0.0001);
      ASSERT_EQ(got.has_value(), enough)
          << "probe distance " << d << " with " << m.free_entries()
          << " free entries at step " << step;
      // Roll the probe back so it does not perturb the trace; the release
      // itself re-runs the defragmenter, which the invariant check audits.
      if (got) m.release(*got, req, 0.0001);
      std::string why;
      ASSERT_TRUE(m.check_invariants(&why)) << why;
    }
  }
  // The checkpoints must have probed non-trivial (occupied) tables.
  EXPECT_GT(probed_while_fragmentable, 50);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FillPropertySeeds,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

TEST(FillProperties, WithoutDefragChurnEventuallyFragments) {
  // T3: find at least one avoidable rejection across seeds when the
  // defragmenter is disabled — the paper's optimality genuinely depends
  // on it.
  bool found_fragmentation_failure = false;
  for (std::uint64_t seed = 1; seed <= 20 && !found_fragmentation_failure;
       ++seed) {
    util::Xoshiro256 rng(seed);
    TableManager m(manager_cfg(/*defrag=*/false, seed));
    std::vector<Live> live;
    for (int step = 0; step < 400; ++step) {
      if (!live.empty() && rng.chance(0.45)) {
        const auto idx = rng.below(live.size());
        m.release(live[idx].handle, live[idx].req, 0.0001);
        live[idx] = live.back();
        live.pop_back();
        continue;
      }
      const unsigned d = kDistances[rng.below(std::size(kDistances))];
      const auto req = fat_req(d);
      const bool enough = m.free_entries() >= req.entries;
      const auto vl = static_cast<iba::VirtualLane>(log2_pow2(d));
      const auto got = m.allocate(vl, req, 0.0001);
      if (enough && !got) {
        found_fragmentation_failure = true;
        break;
      }
      if (got) live.push_back(Live{*got, req});
    }
  }
  EXPECT_TRUE(found_fragmentation_failure)
      << "defrag-off churn never fragmented: the T2 test would be vacuous";
}

TEST(FillProperties, DefragReachesCanonicalPacking) {
  // After any churn, one more defragment() is idempotent: a second call
  // performs zero moves.
  util::Xoshiro256 rng(77);
  TableManager m(manager_cfg(/*defrag=*/true, 77));
  std::vector<Live> live;
  for (int step = 0; step < 300; ++step) {
    if (!live.empty() && rng.chance(0.5)) {
      const auto idx = rng.below(live.size());
      m.release(live[idx].handle, live[idx].req, 0.0001);
      live[idx] = live.back();
      live.pop_back();
    } else {
      const unsigned d = kDistances[rng.below(std::size(kDistances))];
      const auto req = fat_req(d);
      const auto vl = static_cast<iba::VirtualLane>(log2_pow2(d));
      if (const auto got = m.allocate(vl, req, 0.0001))
        live.push_back(Live{*got, req});
    }
  }
  m.defragment();
  const auto moves = m.stats().defrag_moves;
  m.defragment();
  EXPECT_EQ(m.stats().defrag_moves, moves) << "defragment is not idempotent";
  EXPECT_TRUE(m.check_invariants());
}

}  // namespace
}  // namespace ibarb::arbtable
