#include "obs/telemetry.hpp"

#include <algorithm>

#include "util/json_writer.hpp"

namespace ibarb::obs {

namespace {

void combine_gauge(std::pair<double, MergePolicy>& acc, double v,
                   MergePolicy policy) {
  switch (policy) {
    case MergePolicy::kSum:
      acc.first += v;
      break;
    case MergePolicy::kMax:
      acc.first = std::max(acc.first, v);
      break;
    case MergePolicy::kMin:
      acc.first = std::min(acc.first, v);
      break;
  }
}

}  // namespace

std::uint64_t Histogram::total() const noexcept {
  std::uint64_t t = 0;
  for (auto b : bins_) t += b;
  return t;
}

void Snapshot::add_counter(std::string_view name, std::uint64_t v) {
  auto it = counters.find(name);
  if (it == counters.end()) {
    counters.emplace(std::string(name), v);
  } else {
    it->second += v;
  }
}

void Snapshot::merge_gauge(std::string_view name, double v,
                           MergePolicy policy) {
  auto it = gauges.find(name);
  if (it == gauges.end()) {
    gauges.emplace(std::string(name), std::make_pair(v, policy));
  } else {
    combine_gauge(it->second, v, policy);
  }
}

void Snapshot::add_histogram(std::string_view name, const std::uint64_t* bins,
                             std::size_t n) {
  auto it = histograms.find(name);
  if (it == histograms.end()) {
    it = histograms.emplace(std::string(name),
                            std::vector<std::uint64_t>(n, 0)).first;
  }
  auto& acc = it->second;
  if (acc.size() < n) acc.resize(n, 0);
  // Saturating add: a merged overflow bucket must pin at UINT64_MAX, never
  // wrap to a small count that misreads as "almost nothing landed here".
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t sum = acc[i] + bins[i];
    acc[i] = sum < acc[i] ? UINT64_MAX : sum;
  }
}

Counter& TelemetryRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Gauge& TelemetryRegistry::gauge(std::string_view name, MergePolicy policy) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge(policy)).first;
  }
  return it->second;
}

Histogram& TelemetryRegistry::histogram(std::string_view name,
                                        std::size_t bins) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram(bins)).first;
  }
  return it->second;
}

TelemetryRegistry::ProbeId TelemetryRegistry::add_probe(ProbeFn fn) {
  ProbeId id = next_probe_id_++;
  probes_.emplace_back(id, std::move(fn));
  return id;
}

void TelemetryRegistry::remove_probe(ProbeId id) {
  std::erase_if(probes_, [id](const auto& p) { return p.first == id; });
}

Snapshot TelemetryRegistry::snapshot() const {
  Snapshot s;
  for (const auto& [name, c] : counters_) s.add_counter(name, c.value());
  for (const auto& [name, g] : gauges_) {
    s.merge_gauge(name, g.value(), g.policy());
  }
  for (const auto& [name, h] : histograms_) {
    s.add_histogram(name, h.bins().data(), h.bins().size());
  }
  for (const auto& [id, fn] : probes_) fn(s);
  return s;
}

Snapshot Snapshot::merge(const std::vector<Snapshot>& parts) {
  Snapshot out;
  for (const Snapshot& p : parts) {
    for (const auto& [name, v] : p.counters) out.add_counter(name, v);
    for (const auto& [name, gv] : p.gauges) {
      out.merge_gauge(name, gv.first, gv.second);
    }
    for (const auto& [name, bins] : p.histograms) {
      out.add_histogram(name, bins.data(), bins.size());
    }
  }
  return out;
}

void Snapshot::write_json(util::JsonWriter& w) const {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : counters) w.kv(name, v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, gv] : gauges) w.kv(name, gv.first);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, bins] : histograms) {
    w.key(name).begin_array();
    for (auto b : bins) w.value(b);
    w.end_array();
  }
  w.end_object();
  w.end_object();
}

}  // namespace ibarb::obs
