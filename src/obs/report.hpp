// obs::Report — the one reporting API for every bench's machine-readable
// output. Replaces the per-bench hand-rolled JSON printers with a single
// schema ("ibarb.report/2"):
//
//   {
//     "schema":   "ibarb.report/2",
//     "bench":    "<bench name>",
//     "meta":     { run metadata: seed, jobs, wall_ms, ... },
//     "config":   { config echo, insertion order },
//     "telemetry": { counters/gauges/histograms snapshot (optional) },
//     "series":   { windowed time-series section (optional, --sample-every) },
//     "figures":  { bench-specific payloads, insertion order }
//   }
//
// /1 -> /2: the optional "series" section (obs::SeriesData) was added and
// the schema id bumped so downstream consumers can key on it; everything
// else is unchanged, so a /1 reader that ignores unknown members still
// parses /2 output.
//
// meta/config values are scalars; figures are free-form sub-trees a bench
// emits through a JsonWriter callback, so figure payloads stay streaming
// and each bench keeps full control of its own data shape under a shared
// envelope. tools/report_schema.json validates the envelope in CI.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "obs/series.hpp"
#include "obs/telemetry.hpp"

namespace ibarb::obs {

class Report {
 public:
  using Scalar = std::variant<std::string, std::int64_t, std::uint64_t,
                              double, bool>;
  using FigureFn = std::function<void(util::JsonWriter&)>;

  explicit Report(std::string bench) : bench_(std::move(bench)) {}

  /// Run metadata (seed, jobs, wall-clock, host-independent facts only if
  /// the output must diff clean across runs).
  Report& meta(std::string_view key, Scalar v);
  /// Config echo. Insertion order preserved.
  Report& config(std::string_view key, Scalar v);
  /// Attaches the (merged) registry snapshot. At most one; later wins.
  Report& telemetry(Snapshot snapshot);
  /// Attaches the windowed time-series section. At most one; later wins.
  Report& series(SeriesData data);
  /// Registers a named figure payload; `fn` must write exactly one JSON
  /// value. Insertion order preserved.
  Report& figure(std::string_view name, FigureFn fn);

  /// Emits the whole report. `pretty` is for humans eyeballing the file;
  /// CI diffs use the default compact form.
  void write(std::ostream& os, bool pretty = false) const;

 private:
  static void write_scalar(util::JsonWriter& w, const Scalar& v);

  std::string bench_;
  std::vector<std::pair<std::string, Scalar>> meta_;
  std::vector<std::pair<std::string, Scalar>> config_;
  std::optional<Snapshot> telemetry_;
  std::optional<SeriesData> series_;
  std::vector<std::pair<std::string, FigureFn>> figures_;
};

}  // namespace ibarb::obs
