#include "obs/series.hpp"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>

#include "obs/telemetry.hpp"
#include "util/json_writer.hpp"

namespace ibarb::obs {

thread_local std::size_t t_series_lane = 0;

bool is_quarantined_name(std::string_view name) noexcept {
  return name.rfind("profile.", 0) == 0 || name.rfind("shard.", 0) == 0;
}

namespace {

constexpr std::int64_t kNoMargin = std::numeric_limits<std::int64_t>::max();

double margin_or_nan(std::int64_t value, std::uint64_t count) {
  return count == 0 ? std::numeric_limits<double>::quiet_NaN()
                    : static_cast<double>(value);
}

}  // namespace

// --- Log2Histogram ----------------------------------------------------------

std::uint64_t Log2Histogram::total() const noexcept {
  std::uint64_t t = 0;
  for (const std::uint64_t b : buckets_) t += b;
  return t;
}

std::uint64_t Log2Histogram::percentile(double fraction) const noexcept {
  const std::uint64_t n = total();
  if (n == 0) return 0;
  auto rank = static_cast<std::uint64_t>(
      std::ceil(fraction * static_cast<double>(n)));
  rank = std::clamp<std::uint64_t>(rank, 1, n);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) return bucket_upper(i);
  }
  return bucket_upper(kBuckets - 1);
}

// --- SeriesTransition -------------------------------------------------------

const char* SeriesTransition::kind_name(Kind k) noexcept {
  switch (k) {
    case Kind::kLinkDown: return "link_down";
    case Kind::kLinkUp: return "link_up";
    case Kind::kSuspended: return "suspended";
    case Kind::kShed: return "shed";
    case Kind::kRestored: return "restored";
    case Kind::kRerouted: return "rerouted";
  }
  return "unknown";
}

// --- SeriesRecorder ---------------------------------------------------------

SeriesRecorder::SeriesRecorder(const TelemetryRegistry& registry,
                               const Config& cfg)
    : registry_(registry), cfg_(cfg) {
  // Decimation pairs adjacent windows, so an odd capacity could never drain
  // back below the cap; round up rather than surprise the caller.
  if (cfg_.capacity < 2) cfg_.capacity = 2;
  if (cfg_.capacity % 2 != 0) ++cfg_.capacity;
  window_cycles_ = cfg_.sample_every;
  next_due_ = cfg_.sample_every;  // 0 when disabled; advance_to never fires.
  lanes_.resize(1);
}

void SeriesRecorder::set_lanes(std::size_t n) {
  if (n < 1) n = 1;
  if (n > lanes_.size()) lanes_.resize(n);
}

void SeriesRecorder::note_connection(std::uint32_t conn, unsigned sl,
                                     bool qos, std::uint64_t deadline) {
  if (!enabled()) return;
  if (conn >= conns_.size()) {
    conns_.resize(conn + 1);
    cur_conn_.resize(conn + 1);
  }
  ConnSeries& s = conns_[conn];
  s.sl = sl;
  s.qos = qos;
  s.deadline = deadline;
  // Backfill committed windows so every connection column stays rectangular
  // even for flows added mid-run.
  const std::size_t committed = times_.size();
  s.rx.resize(committed, 0);
  s.late.resize(committed, 0);
  s.drops.resize(committed, 0);
  s.margin_min.resize(committed, kNoMargin);
  s.margin_sum.resize(committed, 0);
  s.margin_count.resize(committed, 0);
  cur_conn_[conn] = ConnWindow{};
}

void SeriesRecorder::record_delivery(std::uint32_t conn, unsigned sl,
                                     std::uint64_t delay,
                                     std::uint64_t contracted) {
  if (!enabled()) return;
  if (conn < cur_conn_.size()) {
    ConnWindow& w = cur_conn_[conn];
    ++w.rx;
    if (contracted > 0) {
      const auto margin = static_cast<std::int64_t>(contracted) -
                          static_cast<std::int64_t>(delay);
      if (margin < w.margin_min) w.margin_min = margin;
      w.margin_sum += margin;
      ++w.margin_count;
      if (delay > contracted) ++w.late;
    }
  }
  auto& lane = lanes_[t_series_lane < lanes_.size() ? t_series_lane : 0];
  SlWindow& s = lane[sl];
  s.hist.record(delay);
  ++s.rx;
  if (delay > s.max) s.max = delay;
}

void SeriesRecorder::record_drop(std::uint32_t conn) {
  if (!enabled()) return;
  if (conn < cur_conn_.size()) ++cur_conn_[conn].drops;
}

void SeriesRecorder::record_transition(std::uint64_t at,
                                       SeriesTransition::Kind kind,
                                       std::int64_t conn, std::int64_t node,
                                       std::int64_t port) {
  if (!enabled()) return;
  if (transitions_.size() >= cfg_.max_transitions) {
    ++transitions_dropped_;
    return;
  }
  transitions_.push_back(SeriesTransition{at, kind, conn, node, port});
}

void SeriesRecorder::advance_to(std::uint64_t limit) {
  if (!enabled()) return;
  while (next_due_ < limit) commit(next_due_);
}

void SeriesRecorder::commit(std::uint64_t boundary) {
  times_.push_back(boundary);
  const std::size_t windows = times_.size();

  // Registry sample: cumulative counters and point-in-time gauges. Columns
  // for names first seen now are backfilled with zeros; names that stop
  // publishing (a probe owner died mid-run) repeat their last value so the
  // series stays cumulative rather than collapsing to zero.
  const Snapshot snap = registry_.snapshot();
  for (const auto& [name, v] : snap.counters) {
    if (is_quarantined_name(name)) continue;
    auto& col = counter_cols_[name];
    col.resize(windows - 1, 0);
    col.push_back(v);
  }
  for (auto& [name, col] : counter_cols_) {
    if (col.size() < windows) col.push_back(col.empty() ? 0 : col.back());
  }
  for (const auto& [name, gv] : snap.gauges) {
    if (is_quarantined_name(name)) continue;
    auto& col = gauge_cols_[name];
    col.resize(windows - 1, 0.0);
    col.push_back(gv.first);
  }
  for (auto& [name, col] : gauge_cols_) {
    if (col.size() < windows) col.push_back(col.empty() ? 0.0 : col.back());
  }

  // Per-connection audit accumulators.
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    ConnWindow& w = cur_conn_[i];
    ConnSeries& s = conns_[i];
    s.rx.push_back(w.rx);
    s.late.push_back(w.late);
    s.drops.push_back(w.drops);
    s.margin_min.push_back(w.margin_count == 0 ? kNoMargin : w.margin_min);
    s.margin_sum.push_back(w.margin_sum);
    s.margin_count.push_back(w.margin_count);
    w = ConnWindow{};
  }

  // Fold worker lanes into lane 0 in ascending (lane, SL) order. Each
  // per-SL merge is commutative and associative, so the folded windows are
  // byte-identical to what a single-lane recording of the same deliveries
  // would hold regardless of how deliveries were spread across lanes.
  auto& cur_sl = lanes_[0];
  for (std::size_t l = 1; l < lanes_.size(); ++l) {
    for (auto& [sl, w] : lanes_[l]) {
      SlWindow& into = cur_sl[sl];
      into.hist.merge(w.hist);
      into.rx += w.rx;
      if (w.max > into.max) into.max = w.max;
    }
    lanes_[l].clear();
  }

  // Per-SL delay windows (sparse: only SLs that delivered traffic).
  for (auto& [sl, w] : cur_sl) {
    SlSeries& s = sls_[sl];
    s.hist.resize(windows - 1);
    s.rx.resize(windows - 1, 0);
    s.max.resize(windows - 1, 0);
    s.hist.push_back(w.hist);
    s.rx.push_back(w.rx);
    s.max.push_back(w.max);
  }
  for (auto& [sl, s] : sls_) {
    if (s.hist.size() < windows) {
      s.hist.emplace_back();
      s.rx.push_back(0);
      s.max.push_back(0);
    }
  }
  cur_sl.clear();

  if (times_.size() == cfg_.capacity) {
    decimate();
    window_cycles_ *= 2;
    ++decimations_;
  }
  next_due_ = boundary + window_cycles_;
}

void SeriesRecorder::decimate() {
  const std::size_t half = times_.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    const std::size_t a = 2 * i, b = 2 * i + 1;
    times_[i] = times_[b];
    for (auto& [name, col] : counter_cols_) col[i] = col[b];
    for (auto& [name, col] : gauge_cols_) col[i] = col[b];
    for (ConnSeries& s : conns_) {
      s.rx[i] = s.rx[a] + s.rx[b];
      s.late[i] = s.late[a] + s.late[b];
      s.drops[i] = s.drops[a] + s.drops[b];
      s.margin_min[i] = std::min(s.margin_min[a], s.margin_min[b]);
      s.margin_sum[i] = s.margin_sum[a] + s.margin_sum[b];
      s.margin_count[i] = s.margin_count[a] + s.margin_count[b];
    }
    for (auto& [sl, s] : sls_) {
      Log2Histogram merged = s.hist[a];
      merged.merge(s.hist[b]);
      s.hist[i] = merged;
      s.rx[i] = s.rx[a] + s.rx[b];
      s.max[i] = std::max(s.max[a], s.max[b]);
    }
  }
  times_.resize(half);
  for (auto& [name, col] : counter_cols_) col.resize(half);
  for (auto& [name, col] : gauge_cols_) col.resize(half);
  for (ConnSeries& s : conns_) {
    s.rx.resize(half);
    s.late.resize(half);
    s.drops.resize(half);
    s.margin_min.resize(half);
    s.margin_sum.resize(half);
    s.margin_count.resize(half);
  }
  for (auto& [sl, s] : sls_) {
    s.hist.resize(half);
    s.rx.resize(half);
    s.max.resize(half);
  }
}

SeriesData SeriesRecorder::finalize(std::uint64_t end_time) {
  SeriesData d;
  d.sample_every = cfg_.sample_every;
  if (!enabled()) return d;

  if (!flushed_partial_) {
    // Commit every whole boundary at or before end_time, then one trailing
    // partial window if the run ended between boundaries. The flush flag
    // keeps finalize idempotent.
    advance_to(end_time + 1);
    if (end_time > 0 && (times_.empty() || times_.back() < end_time)) {
      commit(end_time);
    }
    flushed_partial_ = true;
  }

  d.window_cycles = window_cycles_;
  d.decimations = decimations_;
  d.time = times_;
  const std::size_t windows = times_.size();

  d.counters.reserve(counter_cols_.size());
  for (const auto& [name, col] : counter_cols_) d.counters.emplace_back(name, col);
  d.gauges.reserve(gauge_cols_.size());
  for (const auto& [name, col] : gauge_cols_) d.gauges.emplace_back(name, col);

  d.qos.missed.assign(windows, 0);
  d.qos.late.assign(windows, 0);
  d.qos.drops.assign(windows, 0);

  d.connections.reserve(conns_.size());
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    const ConnSeries& s = conns_[i];
    SeriesData::Connection c;
    c.conn = static_cast<std::uint32_t>(i);
    c.sl = s.sl;
    c.qos = s.qos;
    c.deadline = s.deadline;
    c.rx = s.rx;
    c.late = s.late;
    c.drops = s.drops;
    const bool audited = s.qos && s.deadline > 0;
    c.missed.resize(windows, 0);
    c.margin_min.resize(windows);
    c.margin_mean.resize(windows);
    for (std::size_t w = 0; w < windows; ++w) {
      if (audited) {
        c.missed[w] = s.late[w] + s.drops[w];
        d.qos.missed[w] += c.missed[w];
        d.qos.late[w] += s.late[w];
        d.qos.drops[w] += s.drops[w];
      }
      c.margin_min[w] = margin_or_nan(s.margin_min[w], s.margin_count[w]);
      c.margin_mean[w] =
          s.margin_count[w] == 0
              ? std::numeric_limits<double>::quiet_NaN()
              : static_cast<double>(s.margin_sum[w]) /
                    static_cast<double>(s.margin_count[w]);
    }
    d.connections.push_back(std::move(c));
  }

  d.sl_delay.reserve(sls_.size());
  for (const auto& [sl, s] : sls_) {
    SeriesData::SlDelay row;
    row.sl = sl;
    row.rx = s.rx;
    row.max = s.max;
    row.p50.resize(windows);
    row.p99.resize(windows);
    for (std::size_t w = 0; w < windows; ++w) {
      row.p50[w] = s.hist[w].percentile(0.50);
      row.p99[w] = s.hist[w].percentile(0.99);
    }
    d.sl_delay.push_back(std::move(row));
  }

  d.transitions = transitions_;
  d.transitions_dropped = transitions_dropped_;
  return d;
}

// --- SeriesData emission ----------------------------------------------------

namespace {

template <typename T>
void write_array(util::JsonWriter& w, const std::vector<T>& values) {
  w.begin_array();
  for (const T& v : values) w.value(v);
  w.end_array();
}

}  // namespace

void SeriesData::write_json(util::JsonWriter& w) const {
  w.begin_object();
  w.kv("sample_every", sample_every);
  w.kv("window_cycles", window_cycles);
  w.kv("decimations", decimations);
  w.kv("windows", static_cast<std::uint64_t>(time.size()));
  w.key("time");
  write_array(w, time);

  w.key("counters").begin_object();
  for (const auto& [name, col] : counters) {
    w.key(name);
    write_array(w, col);
  }
  w.end_object();

  w.key("gauges").begin_object();
  for (const auto& [name, col] : gauges) {
    w.key(name);
    write_array(w, col);
  }
  w.end_object();

  w.key("qos").begin_object();
  w.key("missed");
  write_array(w, qos.missed);
  w.key("late");
  write_array(w, qos.late);
  w.key("drops");
  write_array(w, qos.drops);
  w.end_object();

  w.key("sl_delay").begin_array();
  for (const SlDelay& row : sl_delay) {
    w.begin_object();
    w.kv("sl", row.sl);
    w.key("rx");
    write_array(w, row.rx);
    w.key("p50");
    write_array(w, row.p50);
    w.key("p99");
    write_array(w, row.p99);
    w.key("max");
    write_array(w, row.max);
    w.end_object();
  }
  w.end_array();

  w.key("connections").begin_array();
  for (const Connection& c : connections) {
    w.begin_object();
    w.kv("conn", c.conn);
    w.kv("sl", c.sl);
    w.kv("qos", c.qos);
    w.kv("deadline", c.deadline);
    w.key("rx");
    write_array(w, c.rx);
    w.key("late");
    write_array(w, c.late);
    w.key("drops");
    write_array(w, c.drops);
    w.key("missed");
    write_array(w, c.missed);
    w.key("margin_min");
    write_array(w, c.margin_min);
    w.key("margin_mean");
    write_array(w, c.margin_mean);
    w.end_object();
  }
  w.end_array();

  w.key("transitions").begin_array();
  for (const SeriesTransition& t : transitions) {
    w.begin_object();
    w.kv("at", t.at);
    w.kv("kind", SeriesTransition::kind_name(t.kind));
    w.kv("conn", t.conn);
    w.kv("node", t.node);
    w.kv("port", t.port);
    w.end_object();
  }
  w.end_array();
  w.kv("transitions_dropped", transitions_dropped);
  w.end_object();
}

// --- CSV export -------------------------------------------------------------

namespace {

// Same shortest-round-trip formatting as JsonWriter; NaN becomes an empty
// cell so spreadsheets do not choke on it.
void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) return;
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

bool open_csv(std::ofstream& os, const std::filesystem::path& p) {
  os.open(p, std::ios::binary | std::ios::trunc);
  if (!os) {
    std::fprintf(stderr, "series-csv: cannot open %s for writing\n",
                 p.string().c_str());
    return false;
  }
  return true;
}

}  // namespace

bool write_series_csv(const SeriesData& data, const std::string& dir) {
  std::error_code ec;
  const std::filesystem::path root(dir);
  std::filesystem::create_directories(root, ec);
  if (ec) {
    std::fprintf(stderr, "series-csv: cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return false;
  }

  const std::size_t windows = data.time.size();
  std::string line;

  {
    std::ofstream os;
    if (!open_csv(os, root / "samples.csv")) return false;
    line = "time";
    for (const auto& [name, col] : data.counters) line += "," + name;
    for (const auto& [name, col] : data.gauges) line += "," + name;
    line += ",qos.missed,qos.late,qos.drops\n";
    os << line;
    for (std::size_t w = 0; w < windows; ++w) {
      line = std::to_string(data.time[w]);
      for (const auto& [name, col] : data.counters) {
        line += ",";
        line += std::to_string(col[w]);
      }
      for (const auto& [name, col] : data.gauges) {
        line += ",";
        append_double(line, col[w]);
      }
      line += "," + std::to_string(data.qos.missed[w]);
      line += "," + std::to_string(data.qos.late[w]);
      line += "," + std::to_string(data.qos.drops[w]);
      line += "\n";
      os << line;
    }
    if (!os) return false;
  }

  {
    std::ofstream os;
    if (!open_csv(os, root / "sl_delay.csv")) return false;
    os << "time,sl,rx,p50,p99,max\n";
    for (const auto& row : data.sl_delay) {
      for (std::size_t w = 0; w < windows; ++w) {
        os << data.time[w] << ',' << row.sl << ',' << row.rx[w] << ','
           << row.p50[w] << ',' << row.p99[w] << ',' << row.max[w] << '\n';
      }
    }
    if (!os) return false;
  }

  {
    std::ofstream os;
    if (!open_csv(os, root / "connections.csv")) return false;
    os << "time,conn,sl,qos,deadline,rx,late,drops,missed,margin_min,"
          "margin_mean\n";
    for (const auto& c : data.connections) {
      for (std::size_t w = 0; w < windows; ++w) {
        line = std::to_string(data.time[w]);
        line += "," + std::to_string(c.conn);
        line += "," + std::to_string(c.sl);
        line += c.qos ? ",1" : ",0";
        line += "," + std::to_string(c.deadline);
        line += "," + std::to_string(c.rx[w]);
        line += "," + std::to_string(c.late[w]);
        line += "," + std::to_string(c.drops[w]);
        line += "," + std::to_string(c.missed[w]);
        line += ",";
        append_double(line, c.margin_min[w]);
        line += ",";
        append_double(line, c.margin_mean[w]);
        line += "\n";
        os << line;
      }
    }
    if (!os) return false;
  }

  {
    std::ofstream os;
    if (!open_csv(os, root / "transitions.csv")) return false;
    os << "at,kind,conn,node,port\n";
    for (const auto& t : data.transitions) {
      os << t.at << ',' << SeriesTransition::kind_name(t.kind) << ','
         << t.conn << ',' << t.node << ',' << t.port << '\n';
    }
    if (!os) return false;
  }

  return true;
}

}  // namespace ibarb::obs
