// TelemetryRegistry: named, typed counters / gauges / histograms that
// components register into at construction, plus pull-style probes that
// publish component-held stats at snapshot time.
//
// Design notes (docs/OBSERVABILITY.md has the full naming scheme):
//
//  * One registry per Simulator (and one standalone per bench harness where
//    there is no simulator). There is deliberately NO global/singleton
//    registry: the sweep engine runs many simulators concurrently under
//    --jobs N, and per-run registries keep instrument updates lock-free and
//    race-free. Cross-run aggregation happens after the fact through
//    Snapshot::merge, which is order-insensitive for counters/hist bins and
//    policy-driven for gauges — so merged output is byte-identical for any
//    --jobs value.
//
//  * Two publishing styles:
//      - push: cold-path code holds Counter&/Gauge&/Histogram& handles from
//        counter()/gauge()/histogram() and updates them inline;
//      - pull (probes): hot-path components (EventQueue, VlArbiter) keep
//        plain uint64 members; a probe registered at construction publishes
//        them into the Snapshot when one is taken. Probe contributions are
//        ADDITIVE into the snapshot (gauges combine by policy), so several
//        publishers of one name — e.g. every RcSession adding into
//        "rc.packets_sent" — aggregate naturally, and taking two snapshots
//        never double-counts.
//
//  * Snapshots store sorted maps, so emission order never depends on
//    registration order or map iteration quirks.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ibarb::util {
class JsonWriter;
}

namespace ibarb::obs {

/// Monotonic event count (packets, decisions, stalls, ...).
class Counter {
 public:
  void inc(std::uint64_t by = 1) noexcept { value_ += by; }
  void set(std::uint64_t v) noexcept { value_ = v; }
  std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// How a gauge combines across publishers and across runs.
enum class MergePolicy : std::uint8_t { kSum, kMax, kMin };

/// Point-in-time double (peak occupancy, latency high-water marks, ...).
class Gauge {
 public:
  explicit Gauge(MergePolicy policy = MergePolicy::kSum) : policy_(policy) {}

  void set(double v) noexcept { value_ = v; }
  void set_max(double v) noexcept {
    if (v > value_) value_ = v;
  }
  double value() const noexcept { return value_; }
  MergePolicy policy() const noexcept { return policy_; }

 private:
  double value_ = 0.0;
  MergePolicy policy_;
};

/// Fixed-bin histogram. Bin semantics are up to the registrant (the name
/// should say — e.g. "...residency_log2" uses bin i = events whose distance
/// had bit_width i, saturating at the last bin).
class Histogram {
 public:
  explicit Histogram(std::size_t bins) : bins_(bins, 0) {}

  void record(std::size_t bin, std::uint64_t by = 1) noexcept {
    if (bin >= bins_.size()) bin = bins_.size() - 1;
    bins_[bin] += by;
  }

  const std::vector<std::uint64_t>& bins() const noexcept { return bins_; }
  std::uint64_t total() const noexcept;

 private:
  std::vector<std::uint64_t> bins_;
};

/// Deterministic, self-contained instrument state: plain sorted maps, safe
/// to move across threads and to merge across runs. Probes accumulate into
/// one through the add_*/merge_* helpers.
struct Snapshot {
  std::map<std::string, std::uint64_t, std::less<>> counters;
  std::map<std::string, std::pair<double, MergePolicy>, std::less<>> gauges;
  std::map<std::string, std::vector<std::uint64_t>, std::less<>> histograms;

  // --- Probe-side accumulation (additive / policy-combining) ---------------

  void add_counter(std::string_view name, std::uint64_t v);
  /// Combines with any existing value per `policy` (which also becomes the
  /// cross-run policy).
  void merge_gauge(std::string_view name, double v,
                   MergePolicy policy = MergePolicy::kSum);
  /// Element-wise bin add, saturating at UINT64_MAX per bin; the stored
  /// vector grows to `n` if shorter.
  void add_histogram(std::string_view name, const std::uint64_t* bins,
                     std::size_t n);

  /// Combine per-run snapshots in run-index order. Counters and histogram
  /// bins add; gauges follow their MergePolicy. Instruments missing from
  /// one side are carried through unchanged.
  static Snapshot merge(const std::vector<Snapshot>& parts);

  /// Emits {"counters":{...},"gauges":{...},"histograms":{...}} with keys
  /// in sorted order.
  void write_json(util::JsonWriter& w) const;

  bool operator==(const Snapshot& other) const = default;
};

class TelemetryRegistry {
 public:
  using ProbeFn = std::function<void(Snapshot&)>;
  using ProbeId = std::uint32_t;

  TelemetryRegistry() = default;
  TelemetryRegistry(const TelemetryRegistry&) = delete;
  TelemetryRegistry& operator=(const TelemetryRegistry&) = delete;

  /// Find-or-create push-style instruments. Returned references stay valid
  /// for the registry's lifetime (node-based map storage).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name, MergePolicy policy = MergePolicy::kSum);
  Histogram& histogram(std::string_view name, std::size_t bins);

  /// Registers a pull callback run (in registration order) by snapshot().
  /// The caller MUST remove_probe before anything the closure captures
  /// dies — typically in its destructor.
  ProbeId add_probe(ProbeFn fn);
  void remove_probe(ProbeId id);

  /// Copies the push-style instruments into a Snapshot, then runs every
  /// probe over it. Idempotent: a second snapshot of unchanged state is
  /// equal to the first.
  Snapshot snapshot() const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::vector<std::pair<ProbeId, ProbeFn>> probes_;
  ProbeId next_probe_id_ = 0;
};

}  // namespace ibarb::obs
