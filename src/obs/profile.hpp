// Lightweight self-profiler over simulator phases: event dispatch,
// arbitration, fault hooks, metrics recording, and series sampling.
//
// This surface is deliberately wall-clock: its totals land in telemetry as
// profile.* (profile.<phase>_ms gauges and profile.<phase>_calls counters)
// and are quarantined from the determinism contract — the Simulator
// registers the profile.* probe only when SimConfig::profile is set,
// SeriesRecorder skips quarantined columns (profile.* and the shard.*
// engine-health family, obs::is_quarantined_name), and no CI byte-compare
// ever passes --profile. Phases nest (kDispatch wraps the
// inner three), so totals overlap by design; read kDispatch as inclusive.
//
// ScopedTimer on a null profiler compiles to a single branch, so the hot
// paths pay nothing when profiling is off.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>

namespace ibarb::obs {

class PhaseProfiler {
 public:
  enum Phase : std::uint8_t {
    kDispatch = 0,   ///< Simulator::handle, inclusive of the phases below.
    kArbitration,    ///< VlArbiter::arbitrate calls.
    kFaultHooks,     ///< FaultHooks::on_link_rx verdicts.
    kMetrics,        ///< Metrics delivery recording.
    kSeries,         ///< SeriesRecorder boundary commits.
    kPhaseCount,
  };

  static constexpr const char* name(Phase p) noexcept {
    switch (p) {
      case kDispatch: return "dispatch";
      case kArbitration: return "arbitration";
      case kFaultHooks: return "fault_hooks";
      case kMetrics: return "metrics";
      case kSeries: return "series";
      case kPhaseCount: break;
    }
    return "unknown";
  }

  void add(Phase p, std::uint64_t ns) noexcept {
    ns_[p] += ns;
    ++calls_[p];
  }

  /// Folds another profiler's totals into this one — used to combine the
  /// per-shard-worker profilers with the orchestrator's before publishing
  /// the profile.* probe, so one fleet-wide total survives any shard count.
  void merge(const PhaseProfiler& other) noexcept {
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      ns_[p] += other.ns_[p];
      calls_[p] += other.calls_[p];
    }
  }

  double total_ms(Phase p) const noexcept {
    return static_cast<double>(ns_[p]) / 1e6;
  }
  std::uint64_t calls(Phase p) const noexcept { return calls_[p]; }

 private:
  std::array<std::uint64_t, kPhaseCount> ns_{};
  std::array<std::uint64_t, kPhaseCount> calls_{};
};

/// RAII timer charging one PhaseProfiler phase; no-op when `profiler` is
/// null (the common, profiling-off case).
class ScopedTimer {
 public:
  ScopedTimer(PhaseProfiler* profiler, PhaseProfiler::Phase phase) noexcept
      : profiler_(profiler), phase_(phase) {
    if (profiler_) start_ = std::chrono::steady_clock::now();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (!profiler_) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    profiler_->add(phase_, static_cast<std::uint64_t>(ns));
  }

 private:
  PhaseProfiler* profiler_;
  PhaseProfiler::Phase phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ibarb::obs
