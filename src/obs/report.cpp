#include "obs/report.hpp"

#include "util/json_writer.hpp"

namespace ibarb::obs {

Report& Report::meta(std::string_view key, Scalar v) {
  meta_.emplace_back(std::string(key), std::move(v));
  return *this;
}

Report& Report::config(std::string_view key, Scalar v) {
  config_.emplace_back(std::string(key), std::move(v));
  return *this;
}

Report& Report::telemetry(Snapshot snapshot) {
  telemetry_ = std::move(snapshot);
  return *this;
}

Report& Report::series(SeriesData data) {
  series_ = std::move(data);
  return *this;
}

Report& Report::figure(std::string_view name, FigureFn fn) {
  figures_.emplace_back(std::string(name), std::move(fn));
  return *this;
}

void Report::write_scalar(util::JsonWriter& w, const Scalar& v) {
  std::visit([&w](const auto& x) { w.value(x); }, v);
}

void Report::write(std::ostream& os, bool pretty) const {
  util::JsonWriter w(os, pretty);
  w.begin_object();
  w.kv("schema", "ibarb.report/2");
  w.kv("bench", bench_);
  w.key("meta").begin_object();
  for (const auto& [k, v] : meta_) {
    w.key(k);
    write_scalar(w, v);
  }
  w.end_object();
  w.key("config").begin_object();
  for (const auto& [k, v] : config_) {
    w.key(k);
    write_scalar(w, v);
  }
  w.end_object();
  if (telemetry_) {
    w.key("telemetry");
    telemetry_->write_json(w);
  }
  if (series_) {
    w.key("series");
    series_->write_json(w);
  }
  w.key("figures").begin_object();
  for (const auto& [name, fn] : figures_) {
    w.key(name);
    fn(w);
  }
  w.end_object();
  w.end_object();
  os << '\n';
}

}  // namespace ibarb::obs
