#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <map>
#include <string>

#include "sim/trace.hpp"
#include "util/json_writer.hpp"

namespace ibarb::obs {

namespace {

/// pid for the control-plane (phase-span) rows; real connection ids are
/// dense from 0, so a large sentinel cannot collide in practice.
constexpr std::uint64_t kControlPid = 1'000'000'000;

const char* segment_name(sim::TraceEvent from, sim::TraceEvent to) {
  using E = sim::TraceEvent;
  if (from == E::kInject && to == E::kLinkTx) return "inject_queue";
  if (from == E::kLinkTx && to == E::kXbar) return "link+xbar";
  if (from == E::kXbar && to == E::kLinkTx) return "switch_queue";
  if (to == E::kDeliver) return "final_hop";
  return "segment";
}

void write_common(util::JsonWriter& w, const char* name, const char* ph,
                  std::uint64_t pid, std::uint64_t tid, std::uint64_t ts) {
  w.kv("name", name);
  w.kv("ph", ph);
  w.kv("pid", pid);
  w.kv("tid", tid);
  w.kv("ts", ts);
}

}  // namespace

void write_chrome_trace(std::ostream& os, const sim::PacketTrace& trace,
                        const std::vector<PhaseSpan>& spans,
                        const std::vector<CounterTrack>& counters) {
  // Group milestones per packet. The ring is already chronological; a
  // stable grouping keyed by (connection, packet) keeps output ordering a
  // pure function of trace contents.
  std::map<std::pair<std::uint64_t, std::uint64_t>,
           std::vector<sim::TraceRecord>>
      journeys;
  for (const sim::TraceRecord& r : trace.chronological()) {
    journeys[{r.connection, r.packet}].push_back(r);
  }

  util::JsonWriter w(os);
  w.begin_object();
  w.key("traceEvents").begin_array();

  // Name the process rows after their connections.
  std::uint64_t last_conn = ~std::uint64_t{0};
  for (const auto& [key, recs] : journeys) {
    if (key.first == last_conn) continue;
    last_conn = key.first;
    w.begin_object();
    w.kv("name", "process_name");
    w.kv("ph", "M");
    w.kv("pid", key.first);
    w.key("args").begin_object();
    w.kv("name", "connection " + std::to_string(key.first));
    w.end_object();
    w.end_object();
  }

  for (const auto& [key, recs] : journeys) {
    const auto [conn, packet] = key;
    for (std::size_t i = 0; i + 1 < recs.size(); ++i) {
      const sim::TraceRecord& a = recs[i];
      const sim::TraceRecord& b = recs[i + 1];
      if (b.event == sim::TraceEvent::kDrop) continue;  // instant below
      w.begin_object();
      write_common(w, segment_name(a.event, b.event), "X", conn, packet,
                   a.time);
      w.kv("dur", b.time - a.time);
      w.key("args").begin_object();
      w.kv("node", static_cast<std::uint64_t>(a.node));
      w.kv("port", static_cast<std::uint64_t>(a.port));
      w.kv("vl", static_cast<std::uint64_t>(a.vl));
      w.end_object();
      w.end_object();
    }
    for (const sim::TraceRecord& r : recs) {
      if (r.event != sim::TraceEvent::kDrop) continue;
      w.begin_object();
      write_common(w, "drop", "i", conn, packet, r.time);
      w.kv("s", "t");
      w.key("args").begin_object();
      w.kv("node", static_cast<std::uint64_t>(r.node));
      w.kv("port", static_cast<std::uint64_t>(r.port));
      w.kv("vl", static_cast<std::uint64_t>(r.vl));
      w.end_object();
      w.end_object();
    }
  }

  // Control-plane phase spans: one tid per distinct track, in first-seen
  // order of the (caller-sorted) span list.
  std::map<std::string, std::uint64_t> track_tids;
  for (const PhaseSpan& s : spans) {
    auto [it, inserted] =
        track_tids.emplace(s.track, track_tids.size());
    if (inserted) {
      w.begin_object();
      w.kv("name", "thread_name");
      w.kv("ph", "M");
      w.kv("pid", kControlPid);
      w.kv("tid", it->second);
      w.key("args").begin_object();
      w.kv("name", s.track);
      w.end_object();
      w.end_object();
    }
    w.begin_object();
    w.kv("name", s.name);
    w.kv("ph", "X");
    w.kv("pid", kControlPid);
    w.kv("tid", it->second);
    w.kv("ts", s.begin);
    w.kv("dur", s.end >= s.begin ? s.end - s.begin : 0);
    w.end_object();
  }

  // Counter tracks: Perfetto draws one step plot per distinct event name
  // on the control-plane process row.
  for (const CounterTrack& c : counters) {
    for (const auto& [ts, value] : c.points) {
      w.begin_object();
      w.kv("name", c.name);
      w.kv("ph", "C");
      w.kv("pid", kControlPid);
      w.kv("ts", ts);
      w.key("args").begin_object();
      w.kv("value", value);
      w.end_object();
      w.end_object();
    }
  }

  if (!spans.empty() || !counters.empty()) {
    w.begin_object();
    w.kv("name", "process_name");
    w.kv("ph", "M");
    w.kv("pid", kControlPid);
    w.key("args").begin_object();
    w.kv("name", "control plane");
    w.end_object();
    w.end_object();
  }

  w.end_array();
  w.end_object();
  os << '\n';
}

}  // namespace ibarb::obs
