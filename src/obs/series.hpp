// Time-series telemetry: windowed sampling of the TelemetryRegistry plus
// per-SL delay percentiles and a per-connection QoS audit timeline.
//
// The whole-run Snapshot (telemetry.hpp) answers "what happened"; this layer
// answers "when". A SeriesRecorder owned by the Simulator samples every
// registered counter/gauge at a fixed simulated-time cadence
// (SimConfig::sample_every cycles -> --sample-every on every bench) and
// accumulates per-window delay histograms and deadline-audit counts fed by
// Metrics and the fault/recovery subsystem.
//
// Determinism contract (docs/OBSERVABILITY.md): the emitted series is a pure
// function of configuration and seed — byte-identical for any --jobs value
// and any run length. Three mechanisms make that hold:
//
//  * window boundaries live on the simulated clock, never the wall clock; a
//    boundary B's sample reflects state after all events with time <= B;
//  * when the ring reaches capacity (even, default 512) adjacent windows are
//    pairwise-merged and the window width doubles — power-of-two decimation,
//    so a 10x longer run yields the same bytes at a coarser cadence rather
//    than a truncated tail;
//  * delay statistics use Log2Histogram — exact integer bucket counts, no
//    floating accumulation — so merging windows is associative and lossless.
//
// profile.* instruments (wall-clock self-profiler, profile.hpp) and shard.*
// instruments (shard-engine health, sim/shard.cpp) are excluded from the
// sampled columns: they are the two quarantined telemetry families allowed
// to differ between identical runs (wall-clock) or between shard counts
// (engine internals).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ibarb::util {
class JsonWriter;
}

namespace ibarb::obs {

class TelemetryRegistry;

/// True for instrument names in a quarantined family — `profile.*`
/// (wall-clock self-profiler) and `shard.*` (parallel-engine health, which
/// includes wall-clock waits and shard-count-dependent internals). These
/// names never enter the sampled series columns and are excluded from
/// determinism byte-compares.
bool is_quarantined_name(std::string_view name) noexcept;

/// The calling thread's delivery lane (see SeriesRecorder::set_lanes).
/// Lane 0 is the default; shard workers set it to their shard id for the
/// duration of a parallel window so concurrent record_delivery calls never
/// touch the same window map.
extern thread_local std::size_t t_series_lane;

/// 64-bucket base-2 histogram with exact integer counts. Bucket i holds
/// values whose bit_width is i (bucket 0 = the value 0, bucket 1 = 1,
/// bucket 2 = 2..3, ...), saturating at bucket 63. Merging adds bucket
/// counts with saturation at UINT64_MAX — decimation must never wrap.
class Log2Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  static constexpr std::size_t bucket_of(std::uint64_t v) noexcept {
    const auto w = static_cast<std::size_t>(std::bit_width(v));
    return w < kBuckets ? w : kBuckets - 1;
  }

  /// Inclusive upper bound of bucket i (0 for bucket 0, else 2^i - 1).
  /// Bucket 63 reports 2^63 - 1 even though it also absorbs larger values.
  static constexpr std::uint64_t bucket_upper(std::size_t i) noexcept {
    return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
  }

  void record(std::uint64_t v) noexcept { ++buckets_[bucket_of(v)]; }

  void merge(const Log2Histogram& other) noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      const std::uint64_t sum = buckets_[i] + other.buckets_[i];
      buckets_[i] = sum < buckets_[i] ? UINT64_MAX : sum;
    }
  }

  std::uint64_t total() const noexcept;

  /// Nearest-rank percentile (fraction in [0,1]), reported as the inclusive
  /// upper bound of the bucket holding that rank. 0 when the histogram is
  /// empty.
  std::uint64_t percentile(double fraction) const noexcept;

  const std::array<std::uint64_t, kBuckets>& buckets() const noexcept {
    return buckets_;
  }
  bool empty() const noexcept { return total() == 0; }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
};

/// A fault/recovery state change stamped onto the timeline. `conn`, `node`
/// and `port` are -1 when not applicable to the kind.
struct SeriesTransition {
  enum class Kind : std::uint8_t {
    kLinkDown,   ///< FaultInjector took a link out of service.
    kLinkUp,     ///< FaultInjector restored a link.
    kSuspended,  ///< RecoveryCoordinator suspended a guaranteed connection.
    kShed,       ///< RecoveryCoordinator shed a best-effort connection.
    kRestored,   ///< A suspended connection was re-admitted.
    kRerouted,   ///< A connection was moved to a new path.
  };

  std::uint64_t at = 0;
  Kind kind = Kind::kLinkDown;
  std::int64_t conn = -1;
  std::int64_t node = -1;
  std::int64_t port = -1;

  static const char* kind_name(Kind k) noexcept;
  bool operator==(const SeriesTransition&) const = default;
};

/// Finalized, copyable result of a recording: parallel arrays indexed by
/// window, one entry in `time` per committed window holding the window-end
/// boundary (cycles). Serialized as the report envelope's "series" section
/// (schema ibarb.report/2) and exportable as CSV for plotting.
struct SeriesData {
  std::uint64_t sample_every = 0;   ///< Configured cadence (0 = disabled).
  std::uint64_t window_cycles = 0;  ///< Effective width after decimation.
  std::uint64_t decimations = 0;    ///< How many times the width doubled.

  std::vector<std::uint64_t> time;  ///< Window-end boundary per window.

  /// Cumulative counter value at each boundary, sorted by name.
  std::vector<std::pair<std::string, std::vector<std::uint64_t>>> counters;
  /// Point-in-time gauge value at each boundary, sorted by name.
  std::vector<std::pair<std::string, std::vector<double>>> gauges;

  /// Aggregate QoS audit across deadline-carrying guaranteed connections:
  /// per window, deliveries past deadline (`late`), packets dropped
  /// (`drops`), and their sum (`missed`) — the degrade-then-restore arc.
  struct QosTimeline {
    std::vector<std::uint64_t> missed;
    std::vector<std::uint64_t> late;
    std::vector<std::uint64_t> drops;
    bool operator==(const QosTimeline&) const = default;
  } qos;

  /// Windowed delay distribution per service level (delivered packets).
  struct SlDelay {
    unsigned sl = 0;
    std::vector<std::uint64_t> rx;
    std::vector<std::uint64_t> p50;  ///< Log2 bucket upper bounds.
    std::vector<std::uint64_t> p99;
    std::vector<std::uint64_t> max;  ///< Exact per-window maximum.
    bool operator==(const SlDelay&) const = default;
  };
  std::vector<SlDelay> sl_delay;

  /// Per-connection audit timeline. `missed` is nonzero only for
  /// deadline-carrying guaranteed connections (qos && deadline > 0), where
  /// it counts late deliveries plus drops. Margins (deadline - delay,
  /// cycles) are NaN for windows without a deadline-carrying delivery; the
  /// JSON writer maps NaN to null.
  struct Connection {
    std::uint32_t conn = 0;
    unsigned sl = 0;
    bool qos = false;
    std::uint64_t deadline = 0;
    std::vector<std::uint64_t> rx;
    std::vector<std::uint64_t> late;
    std::vector<std::uint64_t> drops;
    std::vector<std::uint64_t> missed;
    std::vector<double> margin_min;
    std::vector<double> margin_mean;
    bool operator==(const Connection&) const = default;
  };
  std::vector<Connection> connections;

  std::vector<SeriesTransition> transitions;
  std::uint64_t transitions_dropped = 0;  ///< Beyond the recording cap.

  std::size_t windows() const noexcept { return time.size(); }

  /// Emits the "series" object (caller supplies the surrounding key).
  void write_json(util::JsonWriter& w) const;

  bool operator==(const SeriesData&) const = default;
};

/// Writes samples.csv / sl_delay.csv / connections.csv / transitions.csv
/// into `dir` (created if absent; the parent must exist — Cli::std_flags
/// validates that up front). Returns false with a message on stderr if any
/// file cannot be written.
bool write_series_csv(const SeriesData& data, const std::string& dir);

/// Samples a TelemetryRegistry on a simulated-time cadence and accumulates
/// the windowed QoS/delay statistics above. Owned by sim::Simulator; the
/// hot hooks are O(1) and touch no maps except first-sight of a new SL.
class SeriesRecorder {
 public:
  struct Config {
    std::uint64_t sample_every = 0;     ///< Cycles per window; 0 disables.
    std::size_t capacity = 512;         ///< Max windows kept; must be even.
    std::size_t max_transitions = 4096; ///< Timeline cap (then dropped).
  };

  SeriesRecorder(const TelemetryRegistry& registry, const Config& cfg);

  bool enabled() const noexcept { return cfg_.sample_every != 0; }

  /// The next boundary awaiting commit. The simulator calls advance_to(t)
  /// before handling the first event with time > next_due(), so a
  /// boundary's sample always reflects every event at or before it.
  std::uint64_t next_due() const noexcept { return next_due_; }

  /// Commits every pending boundary strictly below `limit`. Idempotent:
  /// repeated calls with non-decreasing limits commit each boundary once.
  void advance_to(std::uint64_t limit);

  /// Splits the per-SL delivery windows into `n` independent lanes so `n`
  /// threads can call record_delivery concurrently, each under its own
  /// `t_series_lane`. commit() folds the lanes in ascending (lane, SL)
  /// order; the per-SL fold (histogram add, rx sum, max of max) is
  /// commutative and associative, so the committed bytes are identical to
  /// a single-lane recording of the same deliveries. Grows only — lanes
  /// are never dropped mid-run. Call between windows, never concurrently
  /// with the hot hooks.
  void set_lanes(std::size_t n);

  // --- Hot hooks (called by Metrics / faults; no-ops when disabled) --------

  /// Declares connection metadata before any samples land on it.
  void note_connection(std::uint32_t conn, unsigned sl, bool qos,
                       std::uint64_t deadline);
  /// A packet delivery: `contracted` is the effective deadline (0 = none).
  void record_delivery(std::uint32_t conn, unsigned sl, std::uint64_t delay,
                       std::uint64_t contracted);
  void record_drop(std::uint32_t conn);
  void record_transition(std::uint64_t at, SeriesTransition::Kind kind,
                         std::int64_t conn = -1, std::int64_t node = -1,
                         std::int64_t port = -1);

  /// Flushes the trailing partial window (if `end_time` lies past the last
  /// committed boundary) and builds the emission-ready SeriesData.
  /// Safe to call more than once; the partial window is committed once.
  SeriesData finalize(std::uint64_t end_time);

 private:
  struct ConnWindow {
    std::uint64_t rx = 0;
    std::uint64_t late = 0;
    std::uint64_t drops = 0;
    std::int64_t margin_min = INT64_MAX;  ///< Sentinel until first delivery.
    std::int64_t margin_sum = 0;
    std::uint64_t margin_count = 0;
  };
  struct ConnSeries {
    unsigned sl = 0;
    bool qos = false;
    std::uint64_t deadline = 0;
    std::vector<std::uint64_t> rx, late, drops;
    std::vector<std::int64_t> margin_min, margin_sum;
    std::vector<std::uint64_t> margin_count;
  };
  struct SlWindow {
    Log2Histogram hist;
    std::uint64_t rx = 0;
    std::uint64_t max = 0;
  };
  struct SlSeries {
    std::vector<Log2Histogram> hist;
    std::vector<std::uint64_t> rx, max;
  };

  void commit(std::uint64_t boundary);
  void decimate();

  const TelemetryRegistry& registry_;
  Config cfg_;
  std::uint64_t window_cycles_ = 0;
  std::uint64_t next_due_ = 0;
  std::uint64_t decimations_ = 0;
  bool flushed_partial_ = false;

  std::vector<std::uint64_t> times_;
  std::map<std::string, std::vector<std::uint64_t>, std::less<>> counter_cols_;
  std::map<std::string, std::vector<double>, std::less<>> gauge_cols_;

  std::vector<ConnWindow> cur_conn_;
  std::vector<ConnSeries> conns_;
  /// Per-lane current-window SL accumulators; lanes_[0] is the sequential
  /// lane, one extra per shard worker under set_lanes(). commit() folds
  /// them into one map before emission.
  std::vector<std::map<unsigned, SlWindow>> lanes_;
  std::map<unsigned, SlSeries> sls_;

  std::vector<SeriesTransition> transitions_;
  std::uint64_t transitions_dropped_ = 0;
};

}  // namespace ibarb::obs
