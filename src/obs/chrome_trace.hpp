// Chrome trace_event export: turns the simulator's PacketTrace ring (and
// optional component phase spans) into a JSON file loadable in
// chrome://tracing or https://ui.perfetto.dev.
//
// Mapping (docs/OBSERVABILITY.md#trace-viewer):
//  * pid  = connection id (one process row per connection),
//  * tid  = packet id (one thread lane per packet),
//  * each pair of consecutive milestones of a packet becomes a complete
//    ("X") event named after the segment (inject→link_tx = "queue",
//    link_tx→xbar = "hop", xbar→link_tx = "switch", ...→deliver = "final"),
//  * kDrop becomes an instant ("i") event,
//  * PhaseSpans (fault windows, recovery phases) land on a reserved
//    control-plane pid with one tid per track,
//  * CounterTracks (windowed series: qos.missed, per-SL p99, ...) become
//    counter ("C") events on the same control-plane pid, which Perfetto
//    renders as step plots next to the spans.
//
// Timestamps are simulator cycles written as microseconds; only relative
// structure matters in the viewer. Output is a pure function of the trace
// contents — byte-identical across --jobs by construction.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace ibarb::sim {
class PacketTrace;
}

namespace ibarb::obs {

/// A labelled [begin, end] interval on a named control-plane track —
/// e.g. a fault window or a recovery sweep.
struct PhaseSpan {
  std::string track;  ///< Groups spans into one viewer row.
  std::string name;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

/// A named step-plot series: (timestamp, value) points emitted as Chrome
/// "C" (counter) events. Typically built from an obs::SeriesData timeline
/// (bench/report_common.hpp: series_tracks).
struct CounterTrack {
  std::string name;
  std::vector<std::pair<std::uint64_t, double>> points;
};

/// Writes {"traceEvents":[...]} . Spans are emitted in the given order
/// after the packet journeys, counter tracks after the spans; pass both
/// pre-sorted for deterministic files.
void write_chrome_trace(std::ostream& os, const sim::PacketTrace& trace,
                        const std::vector<PhaseSpan>& spans = {},
                        const std::vector<CounterTrack>& counters = {});

}  // namespace ibarb::obs
