// Pluggable crossbar schedulers (ROADMAP item 4).
//
// The simulator's switch model is a multiplexed crossbar: at most one VL of
// each input port may be feeding the fabric, and at most one output port may
// be receiving from it, at any time (sim/switch.hpp). WHICH (input, VL,
// output) transfers start — the matching policy — used to be hard-wired into
// sim::Simulator as a rotating-priority round-robin. This subsystem extracts
// that decision behind an interface so the policy is factory-selected per
// run (SimConfig::crossbar_impl, env IBARB_CROSSBAR, flag --crossbar):
//
//   * WrrCrossbar   — the exact pre-refactor algorithm, bit-identical event
//                     order (differential goldens in tests/golden/).
//   * IslipCrossbar — iSLIP(k): iterative request/grant/accept matching with
//                     per-port pointers that desynchronize under load
//                     (McKeown, "From MWM to iSLIP").
//   * MatrixCrossbar— per-output triangular priority-matrix arbiter
//                     (Orion's RR/MATRIX Arbiter family): least-recently-
//                     served wins, so no requesting input starves.
//   * AbrCrossbar   — guaranteed VLs (those in the output's high-priority
//                     arbitration table) ride the WRR core untouched; best-
//                     effort heads go through an ATM-ABR-style explicit-rate
//                     fair-share lane (max-min over served bytes).
//
// The scheduler sees one switch through the CrossbarPorts view and owns all
// of its own pointer/matrix/rate state, so schedulers are per-switch
// instances and every decision is a pure function of simulation state —
// deterministic and byte-identical across --jobs like everything else.
//
// The per-implementation invariants (maximal matching in <= N iterations,
// no starvation, Theorem-1 preservation) are executable checks in
// tests/test_crossbar.cpp; docs/SCHEDULERS.md states the full contract.
#pragma once

#include <cstdint>
#include <memory>

#include "iba/types.hpp"
#include "sched/crossbar_impl.hpp"

namespace ibarb::sched {

/// One switch's port state as the scheduler sees it during a matching
/// round. Implemented by the simulator (and by the mock fabric in
/// tests/test_crossbar.cpp). All queries are against current state; grant()
/// commits a transfer, which immediately makes its input and output busy.
class CrossbarPorts {
 public:
  virtual ~CrossbarPorts() = default;

  virtual unsigned port_count() const = 0;

  /// Current simulated time (the ABR lane's rate epochs live on it).
  virtual iba::Cycle now() const = 0;

  /// Input may feed the crossbar: wired, not already transferring, and
  /// holding at least one packet.
  virtual bool input_ready(iba::PortIndex in) const = 0;

  /// Bit v set when input `in` holds at least one packet on VL v.
  /// Meaningful only while input_ready(in).
  virtual std::uint16_t input_occupancy(iba::PortIndex in) const = 0;

  /// Output port the head packet of (in, vl) is routed to.
  virtual iba::PortIndex head_output(iba::PortIndex in,
                                     iba::VirtualLane vl) const = 0;

  /// Wire size of the head packet of (in, vl).
  virtual std::uint32_t head_bytes(iba::PortIndex in,
                                   iba::VirtualLane vl) const = 0;

  /// Output is not currently receiving a crossbar transfer.
  virtual bool output_free(iba::PortIndex out) const = 0;

  /// Output queue has room for the head packet of (in, vl) on the VL the
  /// output's SLtoVL table assigns it.
  virtual bool output_accepts(iba::PortIndex in, iba::VirtualLane vl,
                              iba::PortIndex out) const = 0;

  /// True when the head of (in, vl) is guaranteed traffic at `out`:
  /// management (VL15), or mapped onto a VL served by the output's
  /// high-priority arbitration table. The ABR lane never throttles these.
  virtual bool head_guaranteed(iba::PortIndex in, iba::VirtualLane vl,
                               iba::PortIndex out) const = 0;

  /// Commits a transfer of the head packet of (in, vl) into `out`: marks
  /// both ports busy and schedules the completion event. The caller must
  /// have established eligibility (input_ready, output_free,
  /// output_accepts) in this round.
  virtual void grant(iba::PortIndex in, iba::VirtualLane vl,
                     iba::PortIndex out) = 0;
};

/// Matching-policy interface. One instance per switch; schedule() is invoked
/// by the simulator after any event that may enable a transfer (packet
/// arrival at an input, a transfer completing).
class CrossbarScheduler {
 public:
  /// Always-on decision accounting, folded across switches into xbar.*
  /// telemetry by the simulator's snapshot probe (plain increments — the
  /// matching loop is a hot path).
  struct Stats {
    std::uint64_t rounds = 0;      ///< schedule() calls.
    std::uint64_t grants = 0;      ///< Transfers started.
    std::uint64_t iterations = 0;  ///< Matching iterations / scan passes.
    std::uint64_t blocked_output = 0;  ///< Head deferred: output busy.
    std::uint64_t blocked_space = 0;   ///< Head deferred: output VL full.
    std::uint64_t throttled = 0;   ///< ABR lane: best-effort head deferred
                                   ///< by the explicit-rate fair share.
  };

  virtual ~CrossbarScheduler() = default;

  virtual CrossbarImpl impl() const = 0;
  const char* name() const { return crossbar_impl_name(impl()); }

  /// Runs matching rounds until no further transfer can start. When
  /// `only_input` >= 0 the round is restricted to that input — the cheap
  /// trigger after a single arrival (at most one transfer can start, since
  /// one input feeds at most one transfer).
  virtual void schedule(CrossbarPorts& ports, int only_input) = 0;

  const Stats& stats() const noexcept { return stats_; }

 protected:
  Stats stats_;
};

/// Factory (the SimConfig::queue_impl pattern): one scheduler per switch,
/// sized for `ports` crossbar ports.
std::unique_ptr<CrossbarScheduler> make_crossbar(CrossbarImpl impl,
                                                 unsigned ports);

}  // namespace ibarb::sched
