#include "sched/matrix_crossbar.hpp"

#include <cassert>

namespace ibarb::sched {

MatrixCrossbar::MatrixCrossbar(unsigned ports)
    : ports_(ports),
      beats_(static_cast<std::size_t>(ports) * ports, 0),
      rr_vl_(ports, 0),
      vl_of_(ports, 0) {
  assert(ports >= 1 && ports <= 64 && "requester masks are 64-bit");
  // Seed with the index order: i beats j iff i < j.
  for (unsigned o = 0; o < ports; ++o)
    for (unsigned i = 0; i < ports; ++i)
      for (unsigned j = i + 1; j < ports; ++j)
        row(o, i) |= std::uint64_t{1} << j;
}

void MatrixCrossbar::schedule(CrossbarPorts& v, int /*only_input*/) {
  // As with iSLIP, a single arrival can only enable transfers involving the
  // arriving input, so the full scan is sound (and losing a round leaves
  // the matrix untouched — priority only changes on grants).
  ++stats_.rounds;
  const unsigned n = ports_;
  bool progress = true;
  while (progress) {
    progress = false;
    ++stats_.iterations;
    for (unsigned o = 0; o < n; ++o) {
      const auto out = static_cast<iba::PortIndex>(o);
      if (!v.output_free(out)) continue;

      // Collect the requesters of this output: ready inputs whose VL
      // round-robin finds a head routed here with space downstream.
      std::uint64_t requesters = 0;
      for (unsigned i = 0; i < n; ++i) {
        if (!v.input_ready(static_cast<iba::PortIndex>(i))) continue;
        const std::uint16_t occ =
            v.input_occupancy(static_cast<iba::PortIndex>(i));
        for (unsigned k = 0; k < iba::kMaxVirtualLanes; ++k) {
          const auto vl = static_cast<iba::VirtualLane>(
              (rr_vl_[i] + k) % iba::kMaxVirtualLanes);
          if (!(occ & (1u << vl))) continue;
          if (v.head_output(static_cast<iba::PortIndex>(i), vl) != out)
            continue;
          if (!v.output_accepts(static_cast<iba::PortIndex>(i), vl, out)) {
            ++stats_.blocked_space;
            continue;
          }
          requesters |= std::uint64_t{1} << i;
          vl_of_[i] = vl;
          break;
        }
      }
      if (requesters == 0) continue;

      // Winner: the unique requester that beats all other requesters
      // (the matrix encodes a total order, so it always exists).
      int w = -1;
      for (unsigned i = 0; i < n; ++i) {
        if (!(requesters & (std::uint64_t{1} << i))) continue;
        const std::uint64_t rivals = requesters & ~(std::uint64_t{1} << i);
        if ((rivals & ~row(o, i)) == 0) {
          w = static_cast<int>(i);
          break;
        }
      }
      assert(w >= 0 && "priority matrix lost totality");

      // Winner drops to the bottom of the order: clear its row, set its
      // column in everyone else's row.
      row(o, static_cast<unsigned>(w)) = 0;
      for (unsigned i = 0; i < n; ++i)
        if (i != static_cast<unsigned>(w))
          row(o, i) |= std::uint64_t{1} << w;

      const auto vl = vl_of_[static_cast<unsigned>(w)];
      rr_vl_[static_cast<unsigned>(w)] =
          static_cast<iba::VirtualLane>((vl + 1) % iba::kMaxVirtualLanes);
      v.grant(static_cast<iba::PortIndex>(w), vl, out);
      ++stats_.grants;
      progress = true;
    }
  }
}

}  // namespace ibarb::sched
