// Per-output triangular priority-matrix arbitration (the MATRIX arbiter of
// Orion / Dally & Towles §18.4 — SNIPPETS.md).
//
// Each output owns an N×N bit matrix m where m[i][j] = 1 means input i beats
// input j. The matrix is kept a strict total order: it is seeded with the
// index order (m[i][j] = i < j) and on every grant the winner drops to the
// bottom of the order (its row is cleared, its column is set), which keeps
// the relation linear. The winner among a requester set is therefore unique:
// the least-recently-served requester.
//
// That "loser rises one place per loss" dynamic is the no-starvation
// argument pinned by tests/test_crossbar.cpp: an input that keeps requesting
// an output beats every possible competitor after at most N-1 losses.
#pragma once

#include <vector>

#include "sched/crossbar.hpp"

namespace ibarb::sched {

class MatrixCrossbar final : public CrossbarScheduler {
 public:
  explicit MatrixCrossbar(unsigned ports);

  CrossbarImpl impl() const override { return CrossbarImpl::kMatrix; }
  void schedule(CrossbarPorts& ports, int only_input) override;

 private:
  /// Row mask of the matrix for output `out`: bit j of beats_[out*N + i]
  /// set when input i currently beats input j at that output.
  std::uint64_t& row(unsigned out, unsigned i) {
    return beats_[static_cast<std::size_t>(out) * ports_ + i];
  }

  unsigned ports_;
  std::vector<std::uint64_t> beats_;
  std::vector<iba::VirtualLane> rr_vl_;  ///< Per-input VL round-robin.
  std::vector<iba::VirtualLane> vl_of_;  ///< Scratch: chosen VL per input.
};

}  // namespace ibarb::sched
