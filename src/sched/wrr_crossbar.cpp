#include "sched/wrr_crossbar.hpp"

namespace ibarb::sched {

bool WrrCrossbar::try_input(CrossbarPorts& v, iba::PortIndex in) {
  if (!v.input_ready(in)) return false;

  // Round-robin across occupied VLs of this input port.
  const std::uint16_t occ = v.input_occupancy(in);
  for (unsigned k = 0; k < iba::kMaxVirtualLanes; ++k) {
    const auto vl = static_cast<iba::VirtualLane>(
        (rr_vl_[in] + k) % iba::kMaxVirtualLanes);
    if (!(occ & (1u << vl))) continue;

    const auto out = v.head_output(in, vl);
    if (!v.output_free(out)) {
      ++stats_.blocked_output;
      continue;
    }
    if (!v.output_accepts(in, vl, out)) {
      ++stats_.blocked_space;
      continue;
    }

    rr_vl_[in] =
        static_cast<iba::VirtualLane>((vl + 1) % iba::kMaxVirtualLanes);
    v.grant(in, vl, out);
    ++stats_.grants;
    return true;
  }
  return false;
}

void WrrCrossbar::schedule(CrossbarPorts& v, int only_input) {
  ++stats_.rounds;
  if (only_input >= 0) {
    // Single-arrival trigger: one input, at most one new transfer, and —
    // exactly like the pre-refactor path — no rotation of the input
    // priority pointer.
    try_input(v, static_cast<iba::PortIndex>(only_input));
    return;
  }
  const unsigned ports = v.port_count();
  bool progress = true;
  while (progress) {
    progress = false;
    ++stats_.iterations;
    for (unsigned k = 0; k < ports; ++k) {
      const auto p = static_cast<iba::PortIndex>((rr_input_ + k) % ports);
      if (try_input(v, p)) {
        // Rotating priority: the granted input drops to lowest priority.
        // Updated mid-scan, so later k values shift with it — the
        // pre-refactor behaviour, kept bit-for-bit.
        rr_input_ = (p + 1) % ports;
        progress = true;
      }
    }
  }
}

}  // namespace ibarb::sched
