// Crossbar-scheduler selection: the enum, its names, and the two user-facing
// parsers (--crossbar flag, IBARB_CROSSBAR env). Kept in its own dependency-
// free header so util::Cli can validate the flag at parse time without
// pulling in the scheduler implementations.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ibarb::sched {

/// Which crossbar-scheduler implementation a switch instantiates
/// (factory-selected like sim::EventQueueImpl — see docs/SCHEDULERS.md).
enum class CrossbarImpl : std::uint8_t {
  kWrr,     ///< Rotating-priority input/VL round-robin (pre-refactor path).
  kIslip,   ///< iSLIP(k): iterative grant/accept with pointer desync.
  kMatrix,  ///< Per-output Orion-style triangular priority-matrix arbiter.
  kAbr,     ///< WRR for guaranteed VLs + ABR explicit-rate best-effort lane.
};

inline constexpr std::string_view kCrossbarImplNames = "wrr|islip|matrix|abr";

constexpr const char* crossbar_impl_name(CrossbarImpl impl) noexcept {
  switch (impl) {
    case CrossbarImpl::kWrr: return "wrr";
    case CrossbarImpl::kIslip: return "islip";
    case CrossbarImpl::kMatrix: return "matrix";
    case CrossbarImpl::kAbr: return "abr";
  }
  return "?";
}

constexpr std::optional<CrossbarImpl> parse_crossbar_impl(
    std::string_view name) noexcept {
  if (name == "wrr") return CrossbarImpl::kWrr;
  if (name == "islip") return CrossbarImpl::kIslip;
  if (name == "matrix") return CrossbarImpl::kMatrix;
  if (name == "abr") return CrossbarImpl::kAbr;
  return std::nullopt;
}

/// Reads IBARB_CROSSBAR. Unset or empty means the default (wrr); anything
/// else must name a known implementation. Throws std::invalid_argument on an
/// unknown value — a typo'd scheduler must be a startup error, never a
/// silent fallback to wrr (the ablation would measure the wrong thing).
CrossbarImpl crossbar_impl_from_env();

}  // namespace ibarb::sched
