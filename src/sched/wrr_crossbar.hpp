// The pre-refactor crossbar policy, verbatim: rotating-priority round-robin
// across input ports, round-robin across occupied VLs within an input, first
// eligible (free output with queue space) head wins. Extracted from
// sim::Simulator::schedule_crossbar / try_start_transfer; the grant sequence
// — and therefore the event order of every simulation — is bit-identical to
// the pre-refactor code (tests/golden/ + test_crossbar differential).
#pragma once

#include <vector>

#include "sched/crossbar.hpp"

namespace ibarb::sched {

class WrrCrossbar final : public CrossbarScheduler {
 public:
  explicit WrrCrossbar(unsigned ports) : rr_vl_(ports, 0) {}

  CrossbarImpl impl() const override { return CrossbarImpl::kWrr; }
  void schedule(CrossbarPorts& ports, int only_input) override;

 private:
  /// Tries to start one transfer from `in`; true when a grant was made.
  bool try_input(CrossbarPorts& v, iba::PortIndex in);

  unsigned rr_input_ = 0;  ///< Rotating priority across input ports.
  std::vector<iba::VirtualLane> rr_vl_;  ///< Per-input VL round-robin.
};

}  // namespace ibarb::sched
