// iSLIP(k) crossbar scheduling (McKeown, "From MWM to iSLIP" — PAPERS.md).
//
// Each matching round runs up to k request/grant/accept iterations:
//
//   request — every ready input requests every output for which it has an
//             eligible head packet (per-VL heads stand in for VOQs; a head
//             is eligible when its output is free and its target VL queue
//             has space);
//   grant   — every free, unmatched output grants the requesting input
//             nearest (cyclically) its grant pointer;
//   accept  — every unmatched input accepts the granting output nearest its
//             accept pointer. Pointers advance one past the matched partner
//             ONLY for matches made in the first iteration — the rule that
//             desynchronizes pointers under saturation and yields 100%
//             throughput on persistent traffic.
//
// Properties the tests pin down (tests/test_crossbar.cpp):
//   * the match is maximal after at most N = port_count iterations — no
//     unmatched (input, output) pair with an eligible request remains;
//   * no input or output is matched twice within one match;
//   * under full load the pointers desynchronize: after at most N cells
//     every cell carries a full permutation (100% throughput).
#pragma once

#include <vector>

#include "sched/crossbar.hpp"

namespace ibarb::sched {

class IslipCrossbar final : public CrossbarScheduler {
 public:
  /// `iterations` = 0 selects k = ports, which guarantees maximality.
  explicit IslipCrossbar(unsigned ports, unsigned iterations = 0);

  CrossbarImpl impl() const override { return CrossbarImpl::kIslip; }
  void schedule(CrossbarPorts& ports, int only_input) override;

  unsigned iterations_per_match() const noexcept { return k_; }

 private:
  /// One full iSLIP match + commit. Returns the number of grants made.
  unsigned match_once(CrossbarPorts& v);

  unsigned ports_;
  unsigned k_;
  std::vector<unsigned> grant_ptr_;   ///< Per-output grant pointer.
  std::vector<unsigned> accept_ptr_;  ///< Per-input accept pointer.
  std::vector<iba::VirtualLane> rr_vl_;  ///< Per-input VL round-robin.

  // Scratch (allocated once; schedule() is called per event).
  std::vector<std::uint64_t> req_;     ///< Per-input requested-output mask.
  std::vector<iba::VirtualLane> vl_for_;  ///< [in * ports + out] chosen VL.
  std::vector<int> grant_to_;          ///< Per-output granted input or -1.
  std::vector<int> match_of_in_;       ///< Per-input matched output or -1.
};

}  // namespace ibarb::sched
