#include "sched/abr_crossbar.hpp"

#include <cassert>

namespace ibarb::sched {

AbrCrossbar::AbrCrossbar(unsigned ports)
    : ports_(ports),
      rr_vl_(ports, 0),
      served_(static_cast<std::size_t>(ports) * ports, 0),
      vl_of_(ports, 0) {
  assert(ports >= 1);
}

void AbrCrossbar::roll_epochs(iba::Cycle now) {
  const iba::Cycle epoch = now / kRateEpochCycles;
  iba::Cycle elapsed = epoch - epoch_;
  epoch_ = epoch;
  if (elapsed == 0) return;
  if (elapsed > 63) elapsed = 63;
  for (auto& s : served_) s >>= elapsed;
}

bool AbrCrossbar::try_guaranteed(CrossbarPorts& v, iba::PortIndex in) {
  if (!v.input_ready(in)) return false;
  const std::uint16_t occ = v.input_occupancy(in);
  for (unsigned k = 0; k < iba::kMaxVirtualLanes; ++k) {
    const auto vl = static_cast<iba::VirtualLane>(
        (rr_vl_[in] + k) % iba::kMaxVirtualLanes);
    if (!(occ & (1u << vl))) continue;
    const auto out = v.head_output(in, vl);
    // Best-effort heads belong to the rate lane; skipping them here is not
    // a blocking event.
    if (!v.head_guaranteed(in, vl, out)) continue;
    if (!v.output_free(out)) {
      ++stats_.blocked_output;
      continue;
    }
    if (!v.output_accepts(in, vl, out)) {
      ++stats_.blocked_space;
      continue;
    }
    rr_vl_[in] =
        static_cast<iba::VirtualLane>((vl + 1) % iba::kMaxVirtualLanes);
    v.grant(in, vl, out);
    ++stats_.grants;
    return true;
  }
  return false;
}

bool AbrCrossbar::allocate_best_effort(CrossbarPorts& v, iba::PortIndex out) {
  if (!v.output_free(out)) return false;

  // Contenders: ready inputs whose VL round-robin finds a best-effort head
  // routed to this output with space downstream.
  std::uint64_t contenders = 0;
  const unsigned n = ports_;
  for (unsigned i = 0; i < n; ++i) {
    const auto in = static_cast<iba::PortIndex>(i);
    if (!v.input_ready(in)) continue;
    const std::uint16_t occ = v.input_occupancy(in);
    for (unsigned k = 0; k < iba::kMaxVirtualLanes; ++k) {
      const auto vl = static_cast<iba::VirtualLane>(
          (rr_vl_[i] + k) % iba::kMaxVirtualLanes);
      if (!(occ & (1u << vl))) continue;
      if (v.head_output(in, vl) != out) continue;
      if (v.head_guaranteed(in, vl, out)) continue;
      if (!v.output_accepts(in, vl, out)) {
        ++stats_.blocked_space;
        continue;
      }
      contenders |= std::uint64_t{1} << i;
      vl_of_[i] = vl;
      break;
    }
  }
  if (contenders == 0) return false;

  // Water-filling step: the least-served contender gets the slot (ties go
  // to the lowest port index — deterministic, and the byte counters break
  // the symmetry from the second allocation on). Everyone passed over was
  // rate-limited by the allocation, not by the fabric.
  int w = -1;
  std::uint64_t best = 0;
  for (unsigned i = 0; i < n; ++i) {
    if (!(contenders & (std::uint64_t{1} << i))) continue;
    const std::uint64_t s =
        served_[static_cast<std::size_t>(out) * n + i];
    if (w < 0 || s < best) {
      w = static_cast<int>(i);
      best = s;
    }
  }
  stats_.throttled +=
      static_cast<std::uint64_t>(__builtin_popcountll(contenders)) - 1;

  const auto vl = vl_of_[static_cast<unsigned>(w)];
  served_[static_cast<std::size_t>(out) * n + static_cast<unsigned>(w)] +=
      v.head_bytes(static_cast<iba::PortIndex>(w), vl);
  rr_vl_[static_cast<unsigned>(w)] =
      static_cast<iba::VirtualLane>((vl + 1) % iba::kMaxVirtualLanes);
  v.grant(static_cast<iba::PortIndex>(w), vl, out);
  ++stats_.grants;
  return true;
}

void AbrCrossbar::schedule(CrossbarPorts& v, int /*only_input*/) {
  ++stats_.rounds;
  roll_epochs(v.now());
  const unsigned n = ports_;
  bool progress = true;
  while (progress) {
    progress = false;
    ++stats_.iterations;
    // Guaranteed lane first: the unmodified WRR scan over guaranteed heads.
    for (unsigned k = 0; k < n; ++k) {
      const auto p = static_cast<iba::PortIndex>((rr_input_ + k) % n);
      if (try_guaranteed(v, p)) {
        rr_input_ = (p + 1) % n;
        progress = true;
      }
    }
    // Then the explicit-rate lane fills what the guaranteed lane left free.
    for (unsigned o = 0; o < n; ++o)
      if (allocate_best_effort(v, static_cast<iba::PortIndex>(o)))
        progress = true;
  }
}

}  // namespace ibarb::sched
