#include "sched/crossbar.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "sched/abr_crossbar.hpp"
#include "sched/islip_crossbar.hpp"
#include "sched/matrix_crossbar.hpp"
#include "sched/wrr_crossbar.hpp"

namespace ibarb::sched {

std::unique_ptr<CrossbarScheduler> make_crossbar(CrossbarImpl impl,
                                                 unsigned ports) {
  switch (impl) {
    case CrossbarImpl::kWrr:
      return std::make_unique<WrrCrossbar>(ports);
    case CrossbarImpl::kIslip:
      return std::make_unique<IslipCrossbar>(ports);
    case CrossbarImpl::kMatrix:
      return std::make_unique<MatrixCrossbar>(ports);
    case CrossbarImpl::kAbr:
      return std::make_unique<AbrCrossbar>(ports);
  }
  throw std::invalid_argument("make_crossbar: unknown CrossbarImpl");
}

CrossbarImpl crossbar_impl_from_env() {
  const char* raw = std::getenv("IBARB_CROSSBAR");
  if (raw == nullptr || *raw == '\0') return CrossbarImpl::kWrr;
  if (const auto impl = parse_crossbar_impl(raw)) return *impl;
  throw std::invalid_argument(
      std::string("IBARB_CROSSBAR: unknown crossbar scheduler '") + raw +
      "' (expected " + std::string(kCrossbarImplNames) + ")");
}

}  // namespace ibarb::sched
