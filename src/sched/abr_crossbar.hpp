// Two-lane scheduler: the paper's guaranteed traffic rides the exact WRR
// core; best-effort traffic goes through an ATM-ABR-style explicit-rate
// allocator (PAPERS.md: the paper's tables target CBR/VBR guarantees, and
// names ABR/UBR as the best-effort classes left to fill the residue).
//
// Lane split, decided per head packet at its output (head_guaranteed):
//   guaranteed  — management (VL15) or mapped onto a VL that the output's
//                 high-priority arbitration table serves. Scheduled first
//                 each pass by the unmodified rotating-priority WRR scan;
//                 the ABR lane can never throttle or delay them within a
//                 matching round.
//   best-effort — everything else. Per output, the allocator tracks bytes
//                 served per input and always grants the least-served
//                 contender — the water-filling step of max-min fairness,
//                 computed from simulation state only (deterministic).
//                 Contenders passed over are counted as `throttled`.
//
// The allocator is work-conserving: a best-effort head is only deferred in
// favour of another contender for the same output, never to reserve idle
// capacity. Served-byte counters halve every 2^16 cycles so the rate view
// is recent history, not all-time totals (and the counters stay bounded).
#pragma once

#include <vector>

#include "sched/crossbar.hpp"

namespace ibarb::sched {

class AbrCrossbar final : public CrossbarScheduler {
 public:
  /// History half-life of the served-byte rate counters, in cycles.
  static constexpr iba::Cycle kRateEpochCycles = 1u << 16;

  explicit AbrCrossbar(unsigned ports);

  CrossbarImpl impl() const override { return CrossbarImpl::kAbr; }
  void schedule(CrossbarPorts& ports, int only_input) override;

  /// Best-effort bytes served from `in` to `out` in the current rate view
  /// (decays with kRateEpochCycles). Exposed for the fairness tests.
  std::uint64_t served_bytes(iba::PortIndex in, iba::PortIndex out) const {
    return served_[static_cast<std::size_t>(out) * ports_ + in];
  }

 private:
  /// WRR scan restricted to guaranteed heads; true when a grant was made.
  bool try_guaranteed(CrossbarPorts& v, iba::PortIndex in);

  /// One explicit-rate allocation for output `out`; true on a grant.
  bool allocate_best_effort(CrossbarPorts& v, iba::PortIndex out);

  void roll_epochs(iba::Cycle now);

  unsigned ports_;
  unsigned rr_input_ = 0;  ///< Rotating priority of the guaranteed lane.
  std::vector<iba::VirtualLane> rr_vl_;  ///< Per-input VL round-robin.
  std::vector<std::uint64_t> served_;    ///< [out * ports + in] BE bytes.
  std::vector<iba::VirtualLane> vl_of_;  ///< Scratch: contender VL per input.
  iba::Cycle epoch_ = 0;
};

}  // namespace ibarb::sched
