#include "sched/islip_crossbar.hpp"

#include <cassert>

namespace ibarb::sched {

IslipCrossbar::IslipCrossbar(unsigned ports, unsigned iterations)
    : ports_(ports),
      k_(iterations == 0 ? ports : iterations),
      grant_ptr_(ports, 0),
      accept_ptr_(ports, 0),
      rr_vl_(ports, 0),
      req_(ports, 0),
      vl_for_(static_cast<std::size_t>(ports) * ports, 0),
      grant_to_(ports, -1),
      match_of_in_(ports, -1) {
  assert(ports >= 1 && ports <= 64 && "request masks are 64-bit");
}

unsigned IslipCrossbar::match_once(CrossbarPorts& v) {
  const unsigned n = ports_;

  // Request phase: each ready input requests every output for which it has
  // an eligible head. With several VLs routed to the same output, the
  // input's VL round-robin pointer picks which head the request stands for.
  bool any_request = false;
  for (unsigned i = 0; i < n; ++i) {
    req_[i] = 0;
    match_of_in_[i] = -1;
    if (!v.input_ready(static_cast<iba::PortIndex>(i))) continue;
    const std::uint16_t occ =
        v.input_occupancy(static_cast<iba::PortIndex>(i));
    for (unsigned k = 0; k < iba::kMaxVirtualLanes; ++k) {
      const auto vl = static_cast<iba::VirtualLane>(
          (rr_vl_[i] + k) % iba::kMaxVirtualLanes);
      if (!(occ & (1u << vl))) continue;
      const auto out = v.head_output(static_cast<iba::PortIndex>(i), vl);
      if (!v.output_free(out)) {
        ++stats_.blocked_output;
        continue;
      }
      if (!v.output_accepts(static_cast<iba::PortIndex>(i), vl, out)) {
        ++stats_.blocked_space;
        continue;
      }
      if (req_[i] & (std::uint64_t{1} << out)) continue;
      req_[i] |= std::uint64_t{1} << out;
      vl_for_[static_cast<std::size_t>(i) * n + out] = vl;
      any_request = true;
    }
  }
  if (!any_request) return 0;

  std::uint64_t matched_in = 0;
  std::uint64_t matched_out = 0;

  for (unsigned it = 0; it < k_; ++it) {
    ++stats_.iterations;

    // Grant phase: every unmatched output with requests grants the
    // requesting input nearest its grant pointer.
    bool any_grant = false;
    for (unsigned o = 0; o < n; ++o) {
      grant_to_[o] = -1;
      if (matched_out & (std::uint64_t{1} << o)) continue;
      for (unsigned k = 0; k < n; ++k) {
        const unsigned i = (grant_ptr_[o] + k) % n;
        if (matched_in & (std::uint64_t{1} << i)) continue;
        if (!(req_[i] & (std::uint64_t{1} << o))) continue;
        grant_to_[o] = static_cast<int>(i);
        any_grant = true;
        break;
      }
    }
    if (!any_grant) break;

    // Accept phase: every unmatched input with grants accepts the granting
    // output nearest its accept pointer. Pointers move only on
    // first-iteration matches (the desynchronization rule).
    unsigned new_matches = 0;
    for (unsigned i = 0; i < n; ++i) {
      if (matched_in & (std::uint64_t{1} << i)) continue;
      int accepted = -1;
      for (unsigned k = 0; k < n; ++k) {
        const unsigned o = (accept_ptr_[i] + k) % n;
        if (grant_to_[o] == static_cast<int>(i)) {
          accepted = static_cast<int>(o);
          break;
        }
      }
      if (accepted < 0) continue;
      matched_in |= std::uint64_t{1} << i;
      matched_out |= std::uint64_t{1} << accepted;
      match_of_in_[i] = accepted;
      ++new_matches;
      if (it == 0) {
        grant_ptr_[accepted] = (i + 1) % n;
        accept_ptr_[i] = (static_cast<unsigned>(accepted) + 1) % n;
      }
    }
    if (new_matches == 0) break;
  }

  // Commit the match: start every matched transfer.
  unsigned grants = 0;
  for (unsigned i = 0; i < n; ++i) {
    if (match_of_in_[i] < 0) continue;
    const auto out = static_cast<iba::PortIndex>(match_of_in_[i]);
    const auto vl = vl_for_[static_cast<std::size_t>(i) * n + out];
    rr_vl_[i] =
        static_cast<iba::VirtualLane>((vl + 1) % iba::kMaxVirtualLanes);
    v.grant(static_cast<iba::PortIndex>(i), vl, out);
    ++stats_.grants;
    ++grants;
  }
  return grants;
}

void IslipCrossbar::schedule(CrossbarPorts& v, int /*only_input*/) {
  // A single arrival only ever enables transfers involving the arriving
  // input (the fabric was quiescent before it), so running the full match
  // is both sound and simplest; unmatched requests never move pointers.
  ++stats_.rounds;
  while (match_once(v) > 0) {
  }
}

}  // namespace ibarb::sched
