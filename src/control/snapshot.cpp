#include "control/snapshot.hpp"

#include <stdexcept>
#include <string>

#include "iba/crc.hpp"

namespace ibarb::control {

namespace {

void save_payload(util::BinWriter& w, iba::Cycle now, std::uint64_t run_seed,
                  const World& world) {
  w.put_u64(now);
  w.put_u64(run_seed);
  w.put_bool(world.admission != nullptr);
  if (world.admission != nullptr) world.admission->save_state(w);
  w.put_bool(world.coordinator != nullptr);
  if (world.coordinator != nullptr) {
    const auto tracked = world.coordinator->export_tracked();
    w.put_u64(tracked.size());
    for (const auto& t : tracked) {
      w.put_u32(t.id);
      w.put_u32(t.flow);
      w.put_bool(t.guaranteed);
      w.put_bool(t.active);
      w.put_u32(t.request.src_host);
      w.put_u32(t.request.dst_host);
      w.put_u8(t.request.sl);
      w.put_u32(t.request.max_distance);
      w.put_double(t.request.wire_mbps);
    }
    const auto& rs = world.coordinator->stats();
    const std::uint64_t fields[] = {
        rs.resweeps, rs.failed_resweeps, rs.smps_sent, rs.rerouted,
        rs.suspended, rs.suspended_guaranteed, rs.suspended_best_effort,
        rs.restored, rs.shed_best_effort, rs.purged_in_flight,
        rs.guarantee_revocations, rs.last_recovery_latency,
        rs.max_recovery_latency};
    for (const auto f : fields) w.put_u64(f);
  }
  w.put_bool(world.injector != nullptr);
  if (world.injector != nullptr) {
    const auto& fs = world.injector->stats();
    const std::uint64_t fields[] = {
        fs.link_down_events, fs.link_up_events, fs.stuck_windows,
        fs.slow_windows, fs.overload_bursts, fs.corrupt_attempts,
        fs.crc_rejected, fs.crc_escaped, fs.dropped_packets,
        fs.flushed_packets};
    for (const auto f : fields) w.put_u64(f);
  }
  w.put_bool(world.engine != nullptr);
  if (world.engine != nullptr) world.engine->save_state(w);
}

/// Applies the payload minus the engine stream (the engine schedules its
/// next tick as a load side effect, so the bit-exact round-trip check
/// must run it last — see restore_world).
iba::Cycle load_payload(util::BinReader& r, std::uint64_t run_seed,
                        const World& world) {
  const auto snap_time = r.get_u64();
  if (r.get_u64() != run_seed)
    throw std::runtime_error("snapshot was taken under a different run seed");
  if (r.get_bool() != (world.admission != nullptr))
    throw std::runtime_error("snapshot/world admission shape mismatch");
  if (world.admission != nullptr) world.admission->load_state(r);
  if (r.get_bool() != (world.coordinator != nullptr))
    throw std::runtime_error("snapshot/world coordinator shape mismatch");
  if (world.coordinator != nullptr) {
    std::vector<faults::RecoveryCoordinator::TrackedState> tracked(
        r.get_length());
    for (auto& t : tracked) {
      t.id = r.get_u32();
      t.flow = r.get_u32();
      t.guaranteed = r.get_bool();
      t.active = r.get_bool();
      t.request.src_host = r.get_u32();
      t.request.dst_host = r.get_u32();
      t.request.sl = r.get_u8();
      t.request.max_distance = r.get_u32();
      t.request.wire_mbps = r.get_double();
    }
    world.coordinator->import_tracked(tracked);
    faults::RecoveryStats rs;
    std::uint64_t* const fields[] = {
        &rs.resweeps, &rs.failed_resweeps, &rs.smps_sent, &rs.rerouted,
        &rs.suspended, &rs.suspended_guaranteed, &rs.suspended_best_effort,
        &rs.restored, &rs.shed_best_effort, &rs.purged_in_flight,
        &rs.guarantee_revocations, &rs.last_recovery_latency,
        &rs.max_recovery_latency};
    for (auto* f : fields) *f = r.get_u64();
    world.coordinator->restore_stats(rs);
  }
  if (r.get_bool() != (world.injector != nullptr))
    throw std::runtime_error("snapshot/world injector shape mismatch");
  if (world.injector != nullptr) {
    faults::FaultStats fs;
    std::uint64_t* const fields[] = {
        &fs.link_down_events, &fs.link_up_events, &fs.stuck_windows,
        &fs.slow_windows, &fs.overload_bursts, &fs.corrupt_attempts,
        &fs.crc_rejected, &fs.crc_escaped, &fs.dropped_packets,
        &fs.flushed_packets};
    for (auto* f : fields) *f = r.get_u64();
    world.injector->restore_stats(fs);
  }
  if (r.get_bool() != (world.engine != nullptr))
    throw std::runtime_error("snapshot/world engine shape mismatch");
  return snap_time;
}

}  // namespace

std::vector<std::uint8_t> seal_envelope(
    const std::vector<std::uint8_t>& payload) {
  util::BinWriter w;
  w.put_u64(kSnapshotMagic);
  w.put_u32(kSnapshotVersion);
  w.put_u64(payload.size());
  w.put_u32(iba::icrc(payload));
  auto blob = std::move(w).take();
  blob.insert(blob.end(), payload.begin(), payload.end());
  return blob;
}

std::vector<std::uint8_t> open_envelope(
    const std::vector<std::uint8_t>& blob) {
  util::BinReader r(blob);
  std::uint64_t magic = 0;
  try {
    magic = r.get_u64();
  } catch (const std::runtime_error&) {
    throw std::runtime_error("snapshot envelope truncated");
  }
  if (magic != kSnapshotMagic)
    throw std::runtime_error("not an ibarb snapshot (bad magic)");
  if (const auto version = r.get_u32(); version != kSnapshotVersion)
    throw std::runtime_error("unsupported snapshot version " +
                             std::to_string(version));
  const auto payload_len = r.get_u64();
  const auto crc = r.get_u32();
  if (payload_len != r.remaining())
    throw std::runtime_error("snapshot envelope length mismatch");
  std::vector<std::uint8_t> payload(blob.end() - static_cast<long>(payload_len),
                                    blob.end());
  if (iba::icrc(payload) != crc)
    throw std::runtime_error("snapshot CRC mismatch (damaged or truncated)");
  return payload;
}

std::vector<std::uint8_t> save_world(iba::Cycle now, std::uint64_t run_seed,
                                     const World& w) {
  util::BinWriter payload;
  save_payload(payload, now, run_seed, w);
  return seal_envelope(payload.bytes());
}

iba::Cycle peek_snapshot_time(const std::vector<std::uint8_t>& blob) {
  const auto payload = open_envelope(blob);
  util::BinReader r(payload);
  return r.get_u64();
}

iba::Cycle restore_world(const std::vector<std::uint8_t>& blob,
                         std::uint64_t run_seed, const World& w) {
  const auto payload = open_envelope(blob);
  util::BinReader r(payload);
  const auto snap_time = load_payload(r, run_seed, w);
  if (w.engine != nullptr) w.engine->load_state(r);
  if (!r.at_end())
    throw std::runtime_error("snapshot payload has trailing bytes");

  // Prove the restore exact: audit every table invariant plus Theorem-1
  // free-set optimality, then re-serialize and compare bit for bit.
  if (w.admission != nullptr) {
    std::string why;
    if (!w.admission->audit_full(&why))
      throw std::runtime_error("post-restore audit failed: " + why);
  }
  util::BinWriter again;
  save_payload(again, snap_time, run_seed, w);
  if (again.bytes() != payload)
    throw std::runtime_error(
        "post-restore re-serialization differs from the snapshot");
  return snap_time;
}

}  // namespace ibarb::control
