// Crash-consistent world snapshots for the churn service.
//
// A snapshot is a sealed binary envelope:
//
//   magic u64 | version u32 | payload_len u64 | crc32 u32 | payload ...
//
// The CRC is the link layer's ICRC generator (iba/crc.hpp) over the
// payload, so truncation or bit damage is detected before a single field
// is applied; open_envelope throws on any mismatch. The payload composes
// the save_state streams of every stateful control-plane component:
//
//   snap_time | run_seed | AdmissionControl | RecoveryCoordinator tracked
//   set + stats | FaultInjector stats | ChurnEngine
//
// Restore protocol (restore_world): the caller builds a FRESH world —
// same graph, routes, catalogue, configs and seeds — arms the fault
// plan's tail (events with at > snap_time) on the new injector, and only
// then calls restore_world. Arming first matters: event-queue ties break
// by insertion order, and the snapshotted world armed its fault events
// before any engine tick was scheduled, so the restored world must too.
// After restore_world the caller reprograms the fabric
// (SubnetManager::configure_fabric) and resumes run_until; the replay is
// byte-identical to the uninterrupted run.
//
// Every restore is audited: AdmissionControl::audit_full must pass and a
// re-serialization of the restored state must equal the original payload
// bit for bit (proving save/load is a true inverse pair), or
// restore_world throws.
#pragma once

#include <cstdint>
#include <vector>

#include "control/churn_engine.hpp"
#include "faults/fault_injector.hpp"
#include "faults/recovery.hpp"
#include "qos/admission.hpp"
#include "util/binary.hpp"

namespace ibarb::control {

inline constexpr std::uint64_t kSnapshotMagic = 0x49424152'42534e50ull;
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// The stateful components one snapshot covers. injector/coordinator/
/// engine may be null (and must then be null on restore too).
struct World {
  qos::AdmissionControl* admission = nullptr;
  faults::FaultInjector* injector = nullptr;
  faults::RecoveryCoordinator* coordinator = nullptr;
  ChurnEngine* engine = nullptr;
};

/// Wraps a payload in the magic/version/length/CRC envelope.
std::vector<std::uint8_t> seal_envelope(
    const std::vector<std::uint8_t>& payload);

/// Validates the envelope and returns the payload. Throws
/// std::runtime_error naming the failure (magic, version, length, CRC).
std::vector<std::uint8_t> open_envelope(
    const std::vector<std::uint8_t>& blob);

/// Serializes the world at simulation time `now` into a sealed envelope.
/// Call only at a quiescent instant (ChurnEngine::arm_snapshot arranges
/// one); `run_seed` is stored as a restore-time guard.
std::vector<std::uint8_t> save_world(iba::Cycle now, std::uint64_t run_seed,
                                     const World& w);

/// Applies a snapshot to a freshly built world (see the restore protocol
/// above) and returns the snapshot time. Throws std::runtime_error on a
/// damaged envelope, a mismatched run seed or world shape, a failed
/// post-restore audit, or a round-trip re-serialization mismatch.
iba::Cycle restore_world(const std::vector<std::uint8_t>& blob,
                         std::uint64_t run_seed, const World& w);

/// Validates the envelope and returns only the snapshot time — needed
/// before restore_world, because the caller must first arm the fault
/// plan's tail (events after this instant) on the fresh world.
iba::Cycle peek_snapshot_time(const std::vector<std::uint8_t>& blob);

}  // namespace ibarb::control
