// ChurnEngine: a long-running admission-control service driven from a
// deterministic request stream (paper §4.2's "global frame" exercised as a
// control plane rather than a one-shot setup).
//
// Every engine tick runs through Simulator::call_at, so churn interleaves
// with fault injection and recovery in one deterministic event order. The
// stream issues connection setups (guaranteed and best-effort), teardowns
// and bandwidth modifies, with source-host popularity following a Zipf
// distribution so a few "hot" ports see most of the churn — the regime
// where defragmentation and Theorem 1 earn their keep.
//
// Three robustness layers:
//
//  * Overload protection. Arrivals land in bounded per-source-host queues.
//    Best-effort setups are load-shed once a queue passes its high-water
//    mark (3/4 full) — rejected before any guaranteed work is delayed.
//    Guaranteed setups that find the queue full are backpressured: the
//    client retries with capped exponential backoff plus seeded jitter
//    (the transport/rc backoff shape), giving up after max_retries.
//
//  * No-false-reject auditing. A guaranteed setup the admission control
//    refuses is cross-examined with AdmissionControl::can_admit_path: if
//    every hop had room, the refusal is a Theorem-1 false reject and is
//    counted (bench_churn asserts the count stays zero). On an audit
//    cadence the engine also runs AdmissionControl::audit_full, which
//    re-proves free-set optimality on every port.
//
//  * Crash-consistent snapshots. The engine exposes its complete mutable
//    state through save_state/load_state and defers a requested snapshot
//    to the next quiescent tick (no fault window engaged, no repair
//    pending), so a restored world replays the remaining churn
//    byte-identically (control/snapshot.hpp holds the envelope).
//
// When a RecoveryCoordinator is attached, its connection-id changes
// (reroute remaps, suspensions, sheds, restores) flow back through the
// change listener so the engine's teardown/modify target set never goes
// stale.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "faults/fault_injector.hpp"
#include "faults/recovery.hpp"
#include "network/graph.hpp"
#include "qos/admission.hpp"
#include "sim/simulator.hpp"
#include "util/binary.hpp"
#include "util/rng.hpp"

namespace ibarb::control {

struct ChurnConfig {
  iba::Cycle tick = 10'000;          ///< Engine cadence, cycles.
  iba::Cycle horizon = 1'000'000;    ///< No ticks are scheduled past this.
  unsigned arrivals_per_tick = 4;    ///< Mean new operations per tick.
  unsigned serve_budget = 6;         ///< Queue operations served per tick.
  unsigned queue_capacity = 16;      ///< Per-source-host queue bound.
  double zipf_s = 1.2;               ///< Source-host popularity exponent.
  double teardown_fraction = 0.30;   ///< Operation mix: teardowns ...
  double modify_fraction = 0.15;     ///< ... bandwidth modifies ...
  double best_effort_fraction = 0.35;  ///< ... and BE share of setups.
  double min_mbps = 4.0;             ///< Requested bandwidth range.
  double max_mbps = 48.0;
  iba::Cycle retry_base = 20'000;    ///< Backoff base delay.
  unsigned backoff_shift_cap = 5;    ///< retry_base << min(attempt, cap).
  unsigned max_retries = 8;          ///< Then the client gives up.
  unsigned audit_every = 8;          ///< Full-audit cadence, ticks.
  std::uint64_t seed = 1;
};

/// Everything the "ctl.*" telemetry family publishes. Counters only — all
/// deterministic functions of (config, seed, fault plan), so an
/// uninterrupted run and a snapshot/restore run report identical values.
struct ChurnStats {
  std::uint64_t submitted = 0;        ///< Operations generated.
  std::uint64_t backpressured = 0;    ///< Guaranteed setups queued-full.
  std::uint64_t load_shed = 0;        ///< BE setups shed at the watermark.
  std::uint64_t admitted_guaranteed = 0;
  std::uint64_t admitted_best_effort = 0;
  std::uint64_t be_rejected = 0;      ///< BE refused by admission (no retry).
  std::uint64_t retries = 0;          ///< Backoff retry attempts served.
  std::uint64_t gave_up = 0;          ///< Guaranteed ops out of retries.
  std::uint64_t teardowns = 0;
  std::uint64_t modifies = 0;         ///< Re-rates applied.
  std::uint64_t modify_stale = 0;     ///< Target vanished before serving.
  std::uint64_t modify_failed_restored = 0;  ///< New rate refused, old back.
  std::uint64_t degradation_shed = 0;  ///< BE victims of engine degrading.
  std::uint64_t coord_remaps = 0;     ///< Reroute id updates via listener.
  std::uint64_t coord_losses = 0;     ///< Suspend/shed removals via listener.
  std::uint64_t coord_restores = 0;   ///< Repair re-adds via listener.
  std::uint64_t audits = 0;           ///< audit_full passes completed.
  std::uint64_t false_rejects = 0;    ///< Theorem-1 violations. MUST be 0.
  std::uint64_t ticks = 0;
};

class ChurnEngine {
 public:
  /// Registers the "ctl.*" telemetry probe (removed in the destructor).
  /// `injector` and `coordinator` may be null (pure-churn runs); when a
  /// coordinator is given the engine claims its change listener.
  ChurnEngine(sim::Simulator& sim, qos::AdmissionControl& admission,
              const network::FabricGraph& graph,
              faults::FaultInjector* injector,
              faults::RecoveryCoordinator* coordinator, ChurnConfig cfg);
  ~ChurnEngine();

  ChurnEngine(const ChurnEngine&) = delete;
  ChurnEngine& operator=(const ChurnEngine&) = delete;

  /// Schedules the first tick at now + cfg.tick. Call once, before running
  /// (a restored engine schedules its own tick from load_state instead).
  void start();

  /// Requests a crash-consistent snapshot: at the first tick with
  /// sim.now() >= not_before where the world is quiescent (no fault window
  /// engaged, no repair pending), `hook` runs exactly once, at the end of
  /// the tick. The hook typically calls control::save_world.
  using SnapshotHook = std::function<void(iba::Cycle now)>;
  void arm_snapshot(iba::Cycle not_before, SnapshotHook hook);

  /// Ticks deferred past `not_before` waiting for quiescence (stderr
  /// diagnostics only — never part of the report envelope).
  std::uint64_t snapshot_deferrals() const noexcept { return deferrals_; }

  bool quiescent() const noexcept;

  const ChurnStats& stats() const noexcept { return stats_; }
  std::uint64_t live_now() const noexcept {
    return live_guaranteed_.size() + live_best_effort_.size();
  }

  /// Serializes the full engine state: RNG stream, per-host queues, retry
  /// ledger, live-connection target sets, stats and the next tick time.
  void save_state(util::BinWriter& w) const;

  /// Restores state saved by save_state into an engine built with the same
  /// config over the same fabric, and schedules the next tick. Call after
  /// the tail fault plan is armed so event insertion order matches the
  /// snapshotted world. Throws std::runtime_error on config mismatch.
  void load_state(util::BinReader& r);

 private:
  enum class OpKind : std::uint8_t {
    kSetupGuaranteed = 0,
    kSetupBestEffort = 1,
    kModify = 2,
  };
  struct Op {
    OpKind kind = OpKind::kSetupGuaranteed;
    qos::ConnectionRequest request;
    std::uint32_t attempt = 0;
    qos::ConnectionId target = 0;  ///< kModify: the connection to re-rate.
  };
  struct Retry {
    iba::Cycle due = 0;
    Op op;
  };

  void tick();
  void generate_arrivals();
  void serve_queues();
  void serve_due_retries();
  void execute(Op& op);
  void do_setup_guaranteed(Op& op);
  void do_setup_best_effort(const Op& op);
  void do_modify(const Op& op);
  void do_teardown();
  void schedule_retry(Op op);
  void run_audit();
  void maybe_snapshot();
  void schedule_next_tick(iba::Cycle at);
  void on_coordinator_change(qos::ConnectionId old_id,
                             qos::ConnectionId new_id);

  std::size_t pick_zipf_host() /*rng*/;
  qos::ConnectionRequest make_request(bool best_effort);
  void drop_live(qos::ConnectionId id);

  static void save_op(util::BinWriter& w, const Op& op);
  static Op load_op(util::BinReader& r);

  sim::Simulator& sim_;
  qos::AdmissionControl& admission_;
  faults::FaultInjector* injector_;
  faults::RecoveryCoordinator* coordinator_;
  ChurnConfig cfg_;

  std::vector<iba::NodeId> hosts_;
  std::vector<double> zipf_cdf_;
  std::vector<iba::ServiceLevel> guaranteed_sls_;
  std::vector<iba::ServiceLevel> best_effort_sls_;

  util::Xoshiro256 rng_;
  std::vector<std::deque<Op>> queues_;    ///< One per source host.
  std::vector<Retry> retries_;            ///< Kept in scheduling order.
  std::vector<qos::ConnectionId> live_guaranteed_;
  std::vector<qos::ConnectionId> live_best_effort_;
  std::size_t rr_ = 0;                    ///< Round-robin serve cursor.
  std::uint64_t tick_index_ = 0;
  iba::Cycle next_tick_ = 0;              ///< Time of the next engine tick.
  bool started_ = false;

  ChurnStats stats_;
  double queue_peak_ = 0.0;               ///< High-water queue depth.
  double retry_peak_ = 0.0;               ///< High-water retry backlog.

  SnapshotHook snapshot_hook_;
  iba::Cycle snapshot_at_ = 0;
  std::uint64_t deferrals_ = 0;

  obs::TelemetryRegistry::ProbeId probe_ = 0;
};

}  // namespace ibarb::control
