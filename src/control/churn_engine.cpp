#include "control/churn_engine.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <string>

namespace ibarb::control {

namespace {

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t config_fingerprint(const ChurnConfig& cfg) {
  std::uint64_t h = 0x11b0c7a1ull;  // stable non-zero seed
  h = mix64(h, cfg.tick);
  h = mix64(h, cfg.horizon);
  h = mix64(h, cfg.arrivals_per_tick);
  h = mix64(h, cfg.serve_budget);
  h = mix64(h, cfg.queue_capacity);
  h = mix64(h, std::bit_cast<std::uint64_t>(cfg.zipf_s));
  h = mix64(h, std::bit_cast<std::uint64_t>(cfg.teardown_fraction));
  h = mix64(h, std::bit_cast<std::uint64_t>(cfg.modify_fraction));
  h = mix64(h, std::bit_cast<std::uint64_t>(cfg.best_effort_fraction));
  h = mix64(h, std::bit_cast<std::uint64_t>(cfg.min_mbps));
  h = mix64(h, std::bit_cast<std::uint64_t>(cfg.max_mbps));
  h = mix64(h, cfg.retry_base);
  h = mix64(h, cfg.backoff_shift_cap);
  h = mix64(h, cfg.max_retries);
  h = mix64(h, cfg.audit_every);
  h = mix64(h, cfg.seed);
  return h;
}

}  // namespace

ChurnEngine::ChurnEngine(sim::Simulator& sim,
                         qos::AdmissionControl& admission,
                         const network::FabricGraph& graph,
                         faults::FaultInjector* injector,
                         faults::RecoveryCoordinator* coordinator,
                         ChurnConfig cfg)
    : sim_(sim), admission_(admission), injector_(injector),
      coordinator_(coordinator), cfg_(cfg), hosts_(graph.hosts()),
      rng_(cfg.seed ^ 0xc412c412ull) {
  if (hosts_.size() < 2)
    throw std::invalid_argument("churn engine needs at least two hosts");
  if (cfg_.queue_capacity == 0 || cfg_.tick == 0)
    throw std::invalid_argument("churn config: zero tick or queue capacity");

  // Zipf CDF over the host list: host rank i gets weight (i+1)^-s. The CDF
  // is a pure function of (host count, s), so snapshot and restore worlds
  // compute the identical table and never need to serialize it.
  zipf_cdf_.reserve(hosts_.size());
  double total = 0.0;
  for (std::size_t i = 0; i < hosts_.size(); ++i)
    total += std::pow(static_cast<double>(i + 1), -cfg_.zipf_s);
  double acc = 0.0;
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    acc += std::pow(static_cast<double>(i + 1), -cfg_.zipf_s) / total;
    zipf_cdf_.push_back(acc);
  }
  zipf_cdf_.back() = 1.0;

  for (const auto& p : admission_.catalogue())
    (p.max_distance > 0 ? guaranteed_sls_ : best_effort_sls_).push_back(p.sl);
  if (guaranteed_sls_.empty())
    throw std::invalid_argument("catalogue has no guaranteed SLs");

  queues_.resize(hosts_.size());

  if (coordinator_ != nullptr)
    coordinator_->set_change_listener(
        [this](qos::ConnectionId old_id, qos::ConnectionId new_id) {
          on_coordinator_change(old_id, new_id);
        });

  probe_ = sim_.telemetry().add_probe([this](obs::Snapshot& snap) {
    snap.add_counter("ctl.submitted", stats_.submitted);
    snap.add_counter("ctl.backpressured", stats_.backpressured);
    snap.add_counter("ctl.load_shed", stats_.load_shed);
    snap.add_counter("ctl.admitted_guaranteed", stats_.admitted_guaranteed);
    snap.add_counter("ctl.admitted_best_effort", stats_.admitted_best_effort);
    snap.add_counter("ctl.be_rejected", stats_.be_rejected);
    snap.add_counter("ctl.retries", stats_.retries);
    snap.add_counter("ctl.gave_up", stats_.gave_up);
    snap.add_counter("ctl.teardowns", stats_.teardowns);
    snap.add_counter("ctl.modifies", stats_.modifies);
    snap.add_counter("ctl.modify_stale", stats_.modify_stale);
    snap.add_counter("ctl.modify_failed_restored",
                     stats_.modify_failed_restored);
    snap.add_counter("ctl.degradation_shed", stats_.degradation_shed);
    snap.add_counter("ctl.coord_remaps", stats_.coord_remaps);
    snap.add_counter("ctl.coord_losses", stats_.coord_losses);
    snap.add_counter("ctl.coord_restores", stats_.coord_restores);
    snap.add_counter("ctl.audits", stats_.audits);
    snap.add_counter("ctl.false_rejects", stats_.false_rejects);
    snap.add_counter("ctl.ticks", stats_.ticks);
    snap.merge_gauge("ctl.live_connections",
                     static_cast<double>(live_now()));
    snap.merge_gauge("ctl.queue_peak", queue_peak_, obs::MergePolicy::kMax);
    snap.merge_gauge("ctl.retry_peak", retry_peak_, obs::MergePolicy::kMax);
  });
}

ChurnEngine::~ChurnEngine() { sim_.telemetry().remove_probe(probe_); }

void ChurnEngine::start() {
  if (started_) throw std::logic_error("churn engine started twice");
  started_ = true;
  schedule_next_tick(sim_.now() + cfg_.tick);
}

void ChurnEngine::arm_snapshot(iba::Cycle not_before, SnapshotHook hook) {
  if (snapshot_hook_) throw std::logic_error("snapshot already armed");
  snapshot_at_ = not_before;
  snapshot_hook_ = std::move(hook);
}

bool ChurnEngine::quiescent() const noexcept {
  if (injector_ != nullptr && !injector_->quiescent()) return false;
  if (coordinator_ != nullptr && !coordinator_->quiescent()) return false;
  return true;
}

void ChurnEngine::schedule_next_tick(iba::Cycle at) {
  next_tick_ = at;
  if (at > cfg_.horizon) return;
  sim_.call_at(at, [this] { tick(); });
}

void ChurnEngine::tick() {
  ++tick_index_;
  ++stats_.ticks;
  serve_due_retries();
  generate_arrivals();
  serve_queues();
  if (cfg_.audit_every != 0 && tick_index_ % cfg_.audit_every == 0)
    run_audit();
  for (const auto& q : queues_)
    queue_peak_ = std::max(queue_peak_, static_cast<double>(q.size()));
  retry_peak_ = std::max(retry_peak_, static_cast<double>(retries_.size()));
  // The next tick is scheduled before a snapshot hook may run, so the
  // serialized next_tick_ is the one a restored world must re-schedule —
  // and re-serializing restored state reproduces the field bit-exactly.
  schedule_next_tick(sim_.now() + cfg_.tick);
  maybe_snapshot();
}

void ChurnEngine::maybe_snapshot() {
  if (!snapshot_hook_ || sim_.now() < snapshot_at_) return;
  if (!quiescent()) {
    ++deferrals_;
    return;
  }
  // At this point the pending event queue holds only armed tail fault
  // events plus the just-scheduled next tick — exactly what a restored
  // world rebuilds (arm tail plan, then load_state). One-shot.
  auto hook = std::move(snapshot_hook_);
  snapshot_hook_ = nullptr;
  hook(sim_.now());
}

std::size_t ChurnEngine::pick_zipf_host() {
  const double u = rng_.uniform();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<std::size_t>(it - zipf_cdf_.begin());
}

qos::ConnectionRequest ChurnEngine::make_request(bool best_effort) {
  qos::ConnectionRequest req;
  const std::size_t src = pick_zipf_host();
  std::size_t dst = static_cast<std::size_t>(rng_.below(hosts_.size() - 1));
  if (dst >= src) ++dst;
  req.src_host = hosts_[src];
  req.dst_host = hosts_[dst];
  const auto& pool = best_effort ? best_effort_sls_ : guaranteed_sls_;
  req.sl = pool[rng_.below(pool.size())];
  req.max_distance =
      qos::find_sl(admission_.catalogue(), req.sl)->max_distance;
  if (req.max_distance == 0) req.max_distance = iba::kArbTableEntries;
  req.wire_mbps = rng_.uniform(cfg_.min_mbps, cfg_.max_mbps);
  return req;
}

void ChurnEngine::generate_arrivals() {
  // Deterministic bounded burst: 0..2*mean arrivals, uniform.
  const auto n = rng_.below(2 * cfg_.arrivals_per_tick + 1);
  for (std::uint64_t i = 0; i < n; ++i) {
    ++stats_.submitted;
    const double roll = rng_.uniform();
    if (roll < cfg_.teardown_fraction) {
      do_teardown();
      continue;
    }
    Op op;
    if (roll < cfg_.teardown_fraction + cfg_.modify_fraction &&
        !live_guaranteed_.empty()) {
      // Re-rate an existing guaranteed connection.
      op.kind = OpKind::kModify;
      op.target =
          live_guaranteed_[rng_.below(live_guaranteed_.size())];
      op.request = admission_.connection(op.target).request;
      op.request.wire_mbps = rng_.uniform(cfg_.min_mbps, cfg_.max_mbps);
    } else {
      const bool be = rng_.uniform() < cfg_.best_effort_fraction;
      op.kind = be ? OpKind::kSetupBestEffort : OpKind::kSetupGuaranteed;
      op.request = make_request(be);
    }
    // Find the queue of the operation's source host.
    const auto host_it =
        std::find(hosts_.begin(), hosts_.end(), op.request.src_host);
    auto& q = queues_[static_cast<std::size_t>(host_it - hosts_.begin())];
    if (op.kind == OpKind::kSetupBestEffort &&
        q.size() * 4 >= static_cast<std::size_t>(cfg_.queue_capacity) * 3) {
      // Load shedding: best-effort is refused at the high-water mark so a
      // storm of arrivals can never crowd out guaranteed work.
      ++stats_.load_shed;
      continue;
    }
    if (q.size() >= cfg_.queue_capacity) {
      if (op.kind == OpKind::kSetupGuaranteed) {
        // Backpressure: the client retries with capped exponential backoff.
        ++stats_.backpressured;
        schedule_retry(std::move(op));
      } else {
        ++stats_.load_shed;
      }
      continue;
    }
    q.push_back(std::move(op));
  }
}

void ChurnEngine::serve_queues() {
  if (queues_.empty()) return;
  unsigned budget = cfg_.serve_budget;
  std::size_t idle_scans = 0;
  while (budget > 0 && idle_scans < queues_.size()) {
    auto& q = queues_[rr_];
    rr_ = (rr_ + 1) % queues_.size();
    if (q.empty()) {
      ++idle_scans;
      continue;
    }
    idle_scans = 0;
    Op op = std::move(q.front());
    q.pop_front();
    execute(op);
    --budget;
  }
}

void ChurnEngine::serve_due_retries() {
  // Served strictly in ledger order; backoffs scheduled while serving land
  // in the fresh ledger and are not re-examined this tick.
  std::vector<Retry> pending;
  pending.swap(retries_);
  for (auto& r : pending) {
    if (r.due > sim_.now()) {
      retries_.push_back(std::move(r));
      continue;
    }
    ++stats_.retries;
    execute(r.op);
  }
}

void ChurnEngine::execute(Op& op) {
  switch (op.kind) {
    case OpKind::kSetupGuaranteed: do_setup_guaranteed(op); break;
    case OpKind::kSetupBestEffort: do_setup_best_effort(op); break;
    case OpKind::kModify: do_modify(op); break;
  }
}

void ChurnEngine::do_setup_guaranteed(Op& op) {
  auto res = admission_.request_degrading(op.request);
  for (const auto victim : res.shed) {
    // Engine-initiated degradation: the victim is gone for good (unlike
    // coordinator sheds, which stay tracked for post-repair restore).
    if (coordinator_ != nullptr) coordinator_->untrack(victim);
    drop_live(victim);
    admission_.forget(victim);
    ++stats_.degradation_shed;
  }
  if (res.id) {
    if (coordinator_ != nullptr)
      coordinator_->track(*res.id, faults::kNoFlow);
    live_guaranteed_.push_back(*res.id);
    ++stats_.admitted_guaranteed;
    return;
  }
  // Refused. If every hop still had room this is a Theorem-1 false reject
  // — the property the whole service exists to disprove.
  if (admission_.can_admit_path(op.request)) ++stats_.false_rejects;
  if (op.attempt >= cfg_.max_retries) {
    ++stats_.gave_up;
    return;
  }
  schedule_retry(op);
}

void ChurnEngine::do_setup_best_effort(const Op& op) {
  const auto id = admission_.request_best_effort(op.request);
  if (!id) {
    // Best-effort is never retried: rejection IS the load-shedding answer.
    ++stats_.be_rejected;
    return;
  }
  if (coordinator_ != nullptr)
    coordinator_->track_best_effort(*id, faults::kNoFlow);
  live_best_effort_.push_back(*id);
  ++stats_.admitted_best_effort;
}

void ChurnEngine::do_modify(const Op& op) {
  if (!admission_.is_live(op.target)) {
    // Torn down, suspended or shed while queued.
    ++stats_.modify_stale;
    return;
  }
  const auto old_req = admission_.connection(op.target).request;
  admission_.release(op.target);
  if (coordinator_ != nullptr) coordinator_->untrack(op.target);
  drop_live(op.target);
  admission_.forget(op.target);

  const auto id = admission_.request(op.request);
  if (id) {
    if (coordinator_ != nullptr) coordinator_->track(*id, faults::kNoFlow);
    live_guaranteed_.push_back(*id);
    ++stats_.modifies;
    return;
  }
  // The new rate did not fit. Re-admitting the old one uses exactly the
  // capacity the release freed, so by Theorem 1 it cannot fail.
  const auto back = admission_.request(old_req);
  if (!back) {
    ++stats_.false_rejects;
    return;
  }
  if (coordinator_ != nullptr) coordinator_->track(*back, faults::kNoFlow);
  live_guaranteed_.push_back(*back);
  ++stats_.modify_failed_restored;
}

void ChurnEngine::do_teardown() {
  const auto total = live_guaranteed_.size() + live_best_effort_.size();
  if (total == 0) return;
  const auto pick = rng_.below(total);
  auto& pool = pick < live_guaranteed_.size() ? live_guaranteed_
                                              : live_best_effort_;
  const auto idx = pick < live_guaranteed_.size()
                       ? pick
                       : pick - live_guaranteed_.size();
  const auto id = pool[idx];
  pool.erase(pool.begin() + static_cast<long>(idx));
  if (admission_.is_live(id)) admission_.release(id);
  if (coordinator_ != nullptr) coordinator_->untrack(id);
  admission_.forget(id);
  ++stats_.teardowns;
}

void ChurnEngine::schedule_retry(Op op) {
  const auto shift = std::min(op.attempt, cfg_.backoff_shift_cap);
  const iba::Cycle base = cfg_.retry_base << shift;
  const iba::Cycle jitter = rng_.below(std::max<iba::Cycle>(1, cfg_.retry_base));
  ++op.attempt;
  retries_.push_back(Retry{sim_.now() + base + jitter, std::move(op)});
}

void ChurnEngine::run_audit() {
  std::string why;
  if (!admission_.audit_full(&why))
    throw std::runtime_error("churn audit failed at cycle " +
                             std::to_string(sim_.now()) + ": " + why);
  ++stats_.audits;
}

void ChurnEngine::drop_live(qos::ConnectionId id) {
  for (auto* pool : {&live_guaranteed_, &live_best_effort_}) {
    const auto it = std::find(pool->begin(), pool->end(), id);
    if (it != pool->end()) {
      pool->erase(it);
      return;
    }
  }
}

void ChurnEngine::on_coordinator_change(qos::ConnectionId old_id,
                                        qos::ConnectionId new_id) {
  if (new_id == 0) {
    // Suspended or shed by the coordinator: the id is dead, but the
    // coordinator still tracks the connection and may restore it later.
    drop_live(old_id);
    ++stats_.coord_losses;
    return;
  }
  for (auto* pool : {&live_guaranteed_, &live_best_effort_}) {
    const auto it = std::find(pool->begin(), pool->end(), old_id);
    if (it != pool->end()) {
      *it = new_id;  // rerouted in place: ordering stays deterministic
      ++stats_.coord_remaps;
      return;
    }
  }
  // A connection we dropped at suspension time coming back after repair.
  const auto cat = admission_.connection(new_id).category;
  const bool guaranteed = cat == qos::TrafficCategory::kDbts ||
                          cat == qos::TrafficCategory::kDb;
  (guaranteed ? live_guaranteed_ : live_best_effort_).push_back(new_id);
  ++stats_.coord_restores;
}

// --- Snapshot state ---------------------------------------------------------

void ChurnEngine::save_op(util::BinWriter& w, const Op& op) {
  w.put_u8(static_cast<std::uint8_t>(op.kind));
  w.put_u32(op.request.src_host);
  w.put_u32(op.request.dst_host);
  w.put_u8(op.request.sl);
  w.put_u32(op.request.max_distance);
  w.put_double(op.request.wire_mbps);
  w.put_u32(op.attempt);
  w.put_u32(op.target);
}

ChurnEngine::Op ChurnEngine::load_op(util::BinReader& r) {
  Op op;
  op.kind = static_cast<OpKind>(r.get_u8());
  op.request.src_host = r.get_u32();
  op.request.dst_host = r.get_u32();
  op.request.sl = r.get_u8();
  op.request.max_distance = r.get_u32();
  op.request.wire_mbps = r.get_double();
  op.attempt = r.get_u32();
  op.target = r.get_u32();
  return op;
}

void ChurnEngine::save_state(util::BinWriter& w) const {
  w.put_u64(config_fingerprint(cfg_));
  for (const auto s : rng_.state()) w.put_u64(s);
  w.put_u64(tick_index_);
  w.put_u64(rr_);
  w.put_u64(queues_.size());
  for (const auto& q : queues_) {
    w.put_u64(q.size());
    for (const auto& op : q) save_op(w, op);
  }
  w.put_u64(retries_.size());
  for (const auto& r : retries_) {
    w.put_u64(r.due);
    save_op(w, r.op);
  }
  w.put_u64(live_guaranteed_.size());
  for (const auto id : live_guaranteed_) w.put_u32(id);
  w.put_u64(live_best_effort_.size());
  for (const auto id : live_best_effort_) w.put_u32(id);
  const std::uint64_t counters[] = {
      stats_.submitted, stats_.backpressured, stats_.load_shed,
      stats_.admitted_guaranteed, stats_.admitted_best_effort,
      stats_.be_rejected, stats_.retries, stats_.gave_up, stats_.teardowns,
      stats_.modifies, stats_.modify_stale, stats_.modify_failed_restored,
      stats_.degradation_shed, stats_.coord_remaps, stats_.coord_losses,
      stats_.coord_restores, stats_.audits, stats_.false_rejects,
      stats_.ticks};
  for (const auto c : counters) w.put_u64(c);
  w.put_double(queue_peak_);
  w.put_double(retry_peak_);
  w.put_u64(next_tick_);
}

void ChurnEngine::load_state(util::BinReader& r) {
  if (r.get_u64() != config_fingerprint(cfg_))
    throw std::runtime_error(
        "snapshot was taken under a different ChurnConfig");
  std::array<std::uint64_t, 4> state;
  for (auto& s : state) s = r.get_u64();
  rng_.set_state(state);
  tick_index_ = r.get_u64();
  rr_ = static_cast<std::size_t>(r.get_u64());
  const auto queue_count = r.get_u64();
  if (queue_count != queues_.size())
    throw std::runtime_error("snapshot host-queue count mismatch");
  for (auto& q : queues_) {
    q.clear();
    const auto n = r.get_length();
    for (std::size_t i = 0; i < n; ++i) q.push_back(load_op(r));
  }
  retries_.clear();
  const auto retry_count = r.get_length();
  for (std::size_t i = 0; i < retry_count; ++i) {
    Retry rt;
    rt.due = r.get_u64();
    rt.op = load_op(r);
    retries_.push_back(std::move(rt));
  }
  live_guaranteed_.clear();
  const auto g = r.get_length();
  for (std::size_t i = 0; i < g; ++i) live_guaranteed_.push_back(r.get_u32());
  live_best_effort_.clear();
  const auto b = r.get_length();
  for (std::size_t i = 0; i < b; ++i)
    live_best_effort_.push_back(r.get_u32());
  std::uint64_t* const counters[] = {
      &stats_.submitted, &stats_.backpressured, &stats_.load_shed,
      &stats_.admitted_guaranteed, &stats_.admitted_best_effort,
      &stats_.be_rejected, &stats_.retries, &stats_.gave_up,
      &stats_.teardowns, &stats_.modifies, &stats_.modify_stale,
      &stats_.modify_failed_restored, &stats_.degradation_shed,
      &stats_.coord_remaps, &stats_.coord_losses, &stats_.coord_restores,
      &stats_.audits, &stats_.false_rejects, &stats_.ticks};
  for (auto* c : counters) *c = r.get_u64();
  queue_peak_ = r.get_double();
  retry_peak_ = r.get_double();
  const auto next_tick = r.get_u64();
  started_ = true;
  schedule_next_tick(next_tick);
}

}  // namespace ibarb::control
