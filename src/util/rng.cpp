#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace ibarb::util {

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Lemire (2019): multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Xoshiro256::between(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Xoshiro256::exponential(double mean) noexcept {
  assert(mean > 0.0);
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -mean * std::log(1.0 - uniform());
}

double Xoshiro256::normal(double mean, double stddev) noexcept {
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace ibarb::util
