#include "util/json_writer.hpp"

#include <array>
#include <cassert>
#include <charconv>
#include <cmath>
#include <string>

namespace ibarb::util {

namespace {

constexpr char kHex[] = "0123456789abcdef";

}  // namespace

void JsonWriter::escape(std::string_view s, std::string& out) {
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

void JsonWriter::newline_indent() {
  if (!pretty_) return;
  os_ << '\n';
  for (std::size_t i = 0; i < depth(); ++i) os_ << "  ";
}

void JsonWriter::before_value() {
  if (key_pending_) {
    // key() already positioned us; the value follows the ": ".
    key_pending_ = false;
    return;
  }
  assert((stack_.empty() && !wrote_root_) ||
         (!stack_.empty() && stack_.back() == Frame::kArray));
  if (!stack_.empty()) {
    if (has_members_.back()) os_ << ',';
    has_members_.back() = true;
    newline_indent();
  }
  if (stack_.empty()) wrote_root_ = true;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  assert(!stack_.empty() && stack_.back() == Frame::kObject && !key_pending_);
  if (has_members_.back()) os_ << ',';
  has_members_.back() = true;
  newline_indent();
  std::string escaped;
  escape(name, escaped);
  os_ << '"' << escaped << (pretty_ ? "\": " : "\":");
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Frame::kObject);
  has_members_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!stack_.empty() && stack_.back() == Frame::kObject && !key_pending_);
  bool had = has_members_.back();
  stack_.pop_back();
  has_members_.pop_back();
  if (had) newline_indent();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Frame::kArray);
  has_members_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back() == Frame::kArray && !key_pending_);
  bool had = has_members_.back();
  stack_.pop_back();
  has_members_.pop_back();
  if (had) newline_indent();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  std::string escaped;
  escaped.reserve(s.size() + 2);
  escape(s, escaped);
  os_ << '"' << escaped << '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  before_value();
  os_ << (b ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  std::array<char, 24> buf;
  auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  os_.write(buf.data(), ptr - buf.data());
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  std::array<char, 24> buf;
  auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  os_.write(buf.data(), ptr - buf.data());
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  before_value();
  // Shortest form that round-trips: locale-independent and deterministic,
  // unlike ostream's precision-dependent formatting.
  std::array<char, 40> buf;
  auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  std::string_view sv(buf.data(), static_cast<std::size_t>(ptr - buf.data()));
  // to_chars may print integral doubles as "42"; that is still valid JSON.
  os_.write(sv.data(), static_cast<std::streamsize>(sv.size()));
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  return *this;
}

}  // namespace ibarb::util
