#include "util/table_printer.hpp"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace ibarb::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  assert(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TablePrinter::pct(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto rule = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    os << '\n';
  };

  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void TablePrinter::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace ibarb::util
