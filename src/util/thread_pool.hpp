// Minimal fixed-size worker pool for the experiment-sweep engine.
//
// The simulator itself stays single-threaded; parallelism lives one level
// up, at the granularity of whole seeded experiments, which share no mutable
// state. The pool therefore needs no task priorities or work stealing —
// just submit/future semantics with exception propagation, plus the
// parallel_for helper in util/parallel.hpp.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ibarb::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 is clamped to 1 so a pool is always usable
  /// even when hardware_concurrency() reports 0 (which the standard allows).
  explicit ThreadPool(unsigned threads);

  /// Drains every task already submitted, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Schedules `fn` on a worker. The returned future yields fn's result, or
  /// rethrows whatever fn threw.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// --jobs default: hardware_concurrency, with the standard-permitted 0
/// answer clamped to 1.
unsigned default_jobs() noexcept;

}  // namespace ibarb::util
