// Bounded single-producer/single-consumer ring (Lamport queue).
//
// The cross-shard event channels of the parallel simulator core
// (src/sim/shard.hpp) are SPSC by construction: shard s owns the producer
// side of channel (s -> d) and shard d the consumer side, so the only
// synchronization needed is one release store per push and one acquire load
// per pop. Head and tail live on separate cache lines to keep the producer
// and consumer from ping-ponging a line between cores.
//
// The capacity must be a power of two. try_push fails when the ring is full
// (callers keep a producer-local spill; see sim::ShardChannel) instead of
// blocking — the simulator's window barriers guarantee a full drain before
// anyone depends on delivery.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace ibarb::util {

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity = 1024)
      : slots_(capacity), mask_(capacity - 1) {
    static_assert(sizeof(std::size_t) == 8, "64-bit indices never wrap");
    if (capacity == 0 || (capacity & (capacity - 1)) != 0)
      slots_.resize(round_up(capacity)), mask_ = slots_.size() - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Producer side. False when the ring is full (nothing is written).
  bool try_push(T&& v) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) == slots_.size())
      return false;
    slots_[t & mask_] = std::move(v);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. False when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[h & mask_]);
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: appends everything currently visible to `out` and
  /// returns the number of elements moved.
  std::size_t drain(std::vector<T>& out) {
    std::size_t n = 0;
    T v;
    while (try_pop(v)) {
      out.push_back(std::move(v));
      ++n;
    }
    return n;
  }

  /// Approximate (exact when the far side is quiescent).
  bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  static std::size_t round_up(std::size_t c) {
    std::size_t p = 1;
    while (p < c) p <<= 1;
    return p < 2 ? 2 : p;
  }

  std::vector<T> slots_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< Consumer cursor.
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< Producer cursor.
};

}  // namespace ibarb::util
