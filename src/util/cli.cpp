#include "util/cli.hpp"

#include <charconv>
#include <filesystem>
#include <ostream>
#include <stdexcept>

#include "network/registry.hpp"
#include "network/routing_engine.hpp"
#include "sched/crossbar_impl.hpp"
#include "util/thread_pool.hpp"

namespace ibarb::util {

namespace {

std::string strip_dashes(std::string_view arg) {
  std::size_t i = 0;
  while (i < arg.size() && arg[i] == '-') ++i;
  return std::string(arg.substr(i));
}

/// Output paths fail fast: a typo'd directory must be a startup error, not
/// a post-run surprise after minutes of simulation.
void require_writable_parent(std::string_view flag, const std::string& path) {
  if (path.empty()) return;
  const auto parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) return;  // bare filename: the cwd always exists
  std::error_code ec;
  if (!std::filesystem::is_directory(parent, ec)) {
    throw std::invalid_argument(
        "flag --" + std::string(flag) + ": parent directory '" +
        parent.string() + "' does not exist (create it first)");
  }
}

}  // namespace

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      throw std::invalid_argument("unexpected positional argument: " +
                                  std::string(arg));
    }
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[strip_dashes(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      values_[strip_dashes(arg)] = argv[++i];
    } else {
      values_[strip_dashes(arg)] = "true";  // bare flag → boolean
    }
  }
}

bool Cli::has(std::string_view name) const {
  queried_[std::string(name)] = true;
  return values_.find(name) != values_.end();
}

std::string Cli::get(std::string_view name, std::string default_value) const {
  queried_[std::string(name)] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? std::move(default_value) : it->second;
}

std::int64_t Cli::get_int(std::string_view name,
                          std::int64_t default_value) const {
  queried_[std::string(name)] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  std::int64_t out = 0;
  const auto& s = it->second;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::invalid_argument("flag --" + std::string(name) +
                                " expects an integer, got '" + s + "'");
  }
  return out;
}

double Cli::get_double(std::string_view name, double default_value) const {
  queried_[std::string(name)] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  try {
    std::size_t pos = 0;
    const double out = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing");
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + std::string(name) +
                                " expects a number, got '" + it->second + "'");
  }
}

bool Cli::get_bool(std::string_view name, bool default_value) const {
  queried_[std::string(name)] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

unsigned Cli::jobs() const {
  const auto n = get_int("jobs", 0);
  if (n < 0) {
    throw std::invalid_argument("flag --jobs expects a count >= 0, got " +
                                std::to_string(n));
  }
  return n == 0 ? default_jobs() : static_cast<unsigned>(n);
}

StdFlags Cli::std_flags(std::uint64_t default_seed) const {
  StdFlags f;
  f.jobs = jobs();
  f.json = get_bool("json", false);
  const auto seed = get_int("seed", static_cast<std::int64_t>(default_seed));
  if (seed < 0) {
    throw std::invalid_argument("flag --seed expects a value >= 0, got " +
                                std::to_string(seed));
  }
  f.seed = static_cast<std::uint64_t>(seed);
  f.trace_out = get("trace-out", "");
  require_writable_parent("trace-out", f.trace_out);
  const auto sample = get_int("sample-every", 0);
  if (sample < 0) {
    throw std::invalid_argument(
        "flag --sample-every expects a cycle count >= 0, got " +
        std::to_string(sample));
  }
  f.sample_every = static_cast<std::uint64_t>(sample);
  f.series_csv = get("series-csv", "");
  require_writable_parent("series-csv", f.series_csv);
  f.profile = get_bool("profile", false);
  f.quiet = get_bool("quiet", false);
  f.crossbar = get("crossbar", "");
  if (!f.crossbar.empty() && !sched::parse_crossbar_impl(f.crossbar)) {
    throw std::invalid_argument(
        "flag --crossbar: unknown crossbar scheduler '" + f.crossbar +
        "' (expected " + std::string(sched::kCrossbarImplNames) + ")");
  }
  const auto shards = get_int("shards", 0);
  if (shards < 0 || shards > 64) {
    throw std::invalid_argument(
        "flag --shards expects a shard count in [0, 64], got " +
        std::to_string(shards));
  }
  f.shards = static_cast<unsigned>(shards);
  f.topo = get("topo", "");
  if (!f.topo.empty()) {
    try {
      (void)network::TopologySpec::parse(f.topo);  // full grammar check
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("flag --topo: " + std::string(e.what()));
    }
  }
  f.routing = get("routing", "");
  if (!f.routing.empty() && !network::is_routing_engine(f.routing)) {
    throw std::invalid_argument(
        "flag --routing: unknown routing engine '" + f.routing +
        "' (expected " + std::string(network::kRoutingEngineNames) + ")");
  }
  return f;
}

void Cli::warn_unused(std::ostream& err) const {
  const auto unused = unused_flags();
  if (!unused.empty()) err << "warning: unused flags " << unused << "\n";
}

std::string Cli::unused_flags() const {
  std::string out;
  for (const auto& [name, value] : values_) {
    if (!queried_.contains(name)) {
      if (!out.empty()) out += ", ";
      out += "--" + name;
    }
  }
  return out;
}

}  // namespace ibarb::util
