// parallel_for over an index range, built on util::ThreadPool.
//
// Scheduling is dynamic (shared atomic counter) and therefore
// nondeterministic; determinism is the CALLER's contract: body(i) must
// depend only on i and write only to slot i of its output. Every
// experiment-sweep in bench/ is written that way, which is what makes
// `--jobs N` bit-identical for every N.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <utility>
#include <vector>

#include "util/thread_pool.hpp"

namespace ibarb::util {

/// Runs body(i) for every i in [0, n) on the pool's workers; the calling
/// thread participates too, so a pool of size J gives J+1 lanes. If bodies
/// throw, every index still gets attempted and then the exception of the
/// LOWEST throwing index is rethrown — a deterministic choice no matter how
/// the indices were scheduled.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t n, Body&& body) {
  if (n == 0) return;
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto errors = std::make_shared<std::vector<std::exception_ptr>>(n);
  auto lane = [next, errors, n, &body]() {
    for (;;) {
      const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        (*errors)[i] = std::current_exception();
      }
    }
  };

  std::vector<std::future<void>> futures;
  futures.reserve(pool.size());
  for (unsigned w = 0; w < pool.size(); ++w) futures.push_back(pool.submit(lane));
  lane();
  for (auto& f : futures) f.get();

  for (const auto& e : *errors)
    if (e) std::rethrow_exception(e);
}

/// Convenience overload: `jobs <= 1` runs everything inline on the calling
/// thread (no pool, no threads — exactly the pre-parallel code path);
/// otherwise a transient pool of jobs-1 workers plus the caller is used.
template <typename Body>
void parallel_for(unsigned jobs, std::size_t n, Body&& body) {
  if (jobs <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool pool(jobs - 1);
  parallel_for(pool, n, std::forward<Body>(body));
}

}  // namespace ibarb::util
