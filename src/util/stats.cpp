#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ibarb::util {

void RunningStats::compensated_add(double x) noexcept {
  const double t = sum_ + x;
  // Neumaier's variant of Kahan summation: whichever addend lost low-order
  // bits in the rounding of t contributes them to the compensation term.
  if (std::abs(sum_) >= std::abs(x)) {
    comp_ += (sum_ - t) + x;
  } else {
    comp_ += (x - t) + sum_;
  }
  sum_ = t;
}

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  compensated_add(x);
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel-merge formula.
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  // Fold the other accumulator's exact sum in two compensated steps so the
  // merged sum stays exact too (order matters for bit-identical merges:
  // always principal term first, then its compensation).
  compensated_add(other.sum_);
  compensated_add(other.comp_);
}

double RunningStats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::add(double x) noexcept {
  std::size_t i;
  if (x < lo_) {
    i = 0;
  } else if (x >= hi_) {
    i = counts_.size() - 1;
  } else {
    i = static_cast<std::size_t>((x - lo_) / width_);
    i = std::min(i, counts_.size() - 1);
  }
  ++counts_[i];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::fraction(std::size_t i) const noexcept {
  return total_ ? static_cast<double>(counts_[i]) / static_cast<double>(total_)
                : 0.0;
}

double Histogram::cdf(double x) const noexcept {
  if (total_ == 0) return 0.0;
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  std::uint64_t below = 0;
  const auto full_bins = static_cast<std::size_t>((x - lo_) / width_);
  for (std::size_t i = 0; i < full_bins && i < counts_.size(); ++i)
    below += counts_[i];
  if (full_bins < counts_.size()) {
    const double frac_in_bin = (x - bin_lo(full_bins)) / width_;
    below += static_cast<std::uint64_t>(
        frac_in_bin * static_cast<double>(counts_[full_bins]));
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

double percentile(std::span<const double> samples, double q) {
  assert(q >= 0.0 && q <= 100.0);
  if (samples.empty()) return 0.0;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

}  // namespace ibarb::util
