// Streaming JSON writer — the single serialization path for every
// machine-readable artifact the repo emits (obs::Report, Chrome traces).
//
// Why not a DOM: the reports embed histograms and per-run arrays that can
// reach megabytes; streaming keeps emission O(1) in memory and — more
// importantly — makes the byte stream a pure function of the call sequence,
// which is what the byte-identical-across---jobs contract needs.
//
// Determinism rules baked in here (docs/OBSERVABILITY.md):
//  * doubles print via std::to_chars shortest-round-trip form — no locale,
//    no precision flags, identical on every run;
//  * non-finite doubles become null (JSON has no NaN/Inf);
//  * strings are escaped per RFC 8259 (control characters as \u00XX).
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace ibarb::util {

class JsonWriter {
 public:
  /// `pretty` adds two-space indentation and newlines; the compact form is
  /// the default (and the one the checked-in schemas/diffs assume).
  explicit JsonWriter(std::ostream& os, bool pretty = false)
      : os_(os), pretty_(pretty) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  // --- Structure -----------------------------------------------------------

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the member name; must be inside an object, and must be followed
  /// by exactly one value (or begin_object/begin_array).
  JsonWriter& key(std::string_view name);

  // --- Values --------------------------------------------------------------

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) {
    return value(static_cast<std::uint64_t>(v));
  }
  JsonWriter& value(long long v) {
    return value(static_cast<std::int64_t>(v));
  }
  JsonWriter& value(unsigned long long v) {
    return value(static_cast<std::uint64_t>(v));
  }
  /// Finite doubles in shortest round-trip form; NaN/Inf emit null.
  JsonWriter& value(double v);
  JsonWriter& null();

  // --- Conveniences --------------------------------------------------------

  template <typename T>
  JsonWriter& kv(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  /// True once the root value is complete and the nesting is balanced.
  bool done() const noexcept { return depth() == 0 && wrote_root_; }

  /// Appends the escaped form of `s` (without surrounding quotes) to `out`.
  /// Exposed for tests and for the rare caller building raw fragments.
  static void escape(std::string_view s, std::string& out);

 private:
  enum class Frame : std::uint8_t { kObject, kArray };

  std::size_t depth() const noexcept { return stack_.size(); }
  void before_value();
  void newline_indent();

  std::ostream& os_;
  bool pretty_;
  bool wrote_root_ = false;
  bool key_pending_ = false;          ///< key() emitted, value expected.
  std::vector<Frame> stack_;
  std::vector<bool> has_members_;     ///< Per frame: needs a comma.
};

}  // namespace ibarb::util
