// Minimal command-line flag parser for the bench/example binaries.
//
// Supports `--name value` and `--name=value`; unknown flags are reported.
// Deliberately tiny: the binaries only need a handful of numeric knobs.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace ibarb::util {

class Cli {
 public:
  /// Parses argv. Throws std::invalid_argument on malformed input
  /// (missing value, non-flag positional argument).
  Cli(int argc, const char* const* argv);

  bool has(std::string_view name) const;
  std::string get(std::string_view name, std::string default_value) const;
  std::int64_t get_int(std::string_view name, std::int64_t default_value) const;
  double get_double(std::string_view name, double default_value) const;
  bool get_bool(std::string_view name, bool default_value) const;

  /// Worker count from `--jobs N`, clamped to >= 1. The default (also used
  /// for `--jobs 0`) is the hardware concurrency, so sweeps use the whole
  /// machine unless told otherwise; `--jobs 1` forces the sequential path.
  unsigned jobs() const;

  /// Flags that were supplied but never queried — typo detection.
  std::string unused_flags() const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
  mutable std::map<std::string, bool, std::less<>> queried_;
};

}  // namespace ibarb::util
