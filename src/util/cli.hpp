// Minimal command-line flag parser for the bench/example binaries.
//
// Supports `--name value` and `--name=value`; unknown flags are reported.
// Deliberately tiny: the binaries only need a handful of numeric knobs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace ibarb::util {

/// The flag block every bench shares (parsed once via Cli::std_flags):
///   --jobs N            parallel sweep workers (0/absent = hw concurrency)
///   --json              machine-readable obs::Report to stdout (or --out)
///   --seed S            base RNG seed for the sweep
///   --trace-out F       write a Chrome trace_event JSON of run 0 to F
///   --sample-every C    sample telemetry every C simulated cycles into the
///                       report's "series" section (0/absent = off)
///   --series-csv DIR    also export run 0's series as CSV files into DIR
///   --profile           enable the wall-clock self-profiler (profile.*
///                       telemetry; nondeterministic, never byte-compared)
///   --quiet             suppress progress/timing chatter on stderr
///   --crossbar IMPL     crossbar scheduler (wrr|islip|matrix|abr); absent
///                       defers to IBARB_CROSSBAR, then wrr
///   --shards N          parallel simulation shards inside one experiment
///                       (0/absent defers to IBARB_SHARDS, then 1 =
///                       sequential); output is byte-identical for any N
///   --topo SPEC         topology spec "family:k=v,..." (irregular|single|
///                       line|mesh2d|torus2d|torus3d|fattree|fattree2|
///                       dragonfly); absent defers to IBARB_TOPO, then
///                       irregular
///   --routing NAME      routing engine (updown|minimal-vl-escape|
///                       fattree-dmodk); absent defers to IBARB_ROUTING,
///                       then updown
///
/// Output-path flags (--trace-out, --series-csv) and enum flags
/// (--crossbar) are validated up front: a typo must fail at parse time
/// instead of after (or worse, silently during) the full run.
struct StdFlags {
  unsigned jobs = 1;
  bool json = false;
  std::uint64_t seed = 1;
  std::string trace_out;    ///< Empty = tracing disabled.
  std::uint64_t sample_every = 0;  ///< 0 = series recording disabled.
  std::string series_csv;   ///< Empty = no CSV export.
  bool profile = false;
  bool quiet = false;
  /// Validated scheduler name, or empty when the flag was absent (callers
  /// then fall back to sched::crossbar_impl_from_env()).
  std::string crossbar;
  /// Simulation shard count, or 0 when the flag was absent (callers then
  /// fall back to bench::shards_from_env()).
  unsigned shards = 0;
  /// Validated topology spec string, or empty when the flag was absent
  /// (callers then fall back to network::topology_spec_from_env()).
  std::string topo;
  /// Validated routing engine name, or empty when the flag was absent
  /// (callers then fall back to network::routing_engine_from_env()).
  std::string routing;
};

class Cli {
 public:
  /// Parses argv. Throws std::invalid_argument on malformed input
  /// (missing value, non-flag positional argument).
  Cli(int argc, const char* const* argv);

  bool has(std::string_view name) const;
  std::string get(std::string_view name, std::string default_value) const;
  std::int64_t get_int(std::string_view name, std::int64_t default_value) const;
  double get_double(std::string_view name, double default_value) const;
  bool get_bool(std::string_view name, bool default_value) const;

  /// Worker count from `--jobs N`, clamped to >= 1. The default (also used
  /// for `--jobs 0`) is the hardware concurrency, so sweeps use the whole
  /// machine unless told otherwise; `--jobs 1` forces the sequential path.
  unsigned jobs() const;

  /// Queries the standard bench flag block in one shot.
  StdFlags std_flags(std::uint64_t default_seed = 1) const;

  /// Flags that were supplied but never queried — typo detection.
  std::string unused_flags() const;

  /// Prints the standard "unknown flags" warning to `err` when any supplied
  /// flag was never queried. Call after all get_* calls, right before exit.
  void warn_unused(std::ostream& err) const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
  mutable std::map<std::string, bool, std::less<>> queried_;
};

}  // namespace ibarb::util
