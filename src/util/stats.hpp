// Streaming statistics and histogram helpers used by the simulator metrics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ibarb::util {

/// Welford online accumulator: mean / variance / min / max without storing
/// the samples. Numerically stable for long simulation runs.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  std::uint64_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  double variance() const noexcept;  ///< Sample variance (n-1 denominator).
  double stddev() const noexcept;
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }
  /// Exact compensated (Kahan–Neumaier) sum of the samples. Reconstructing
  /// `mean * count` instead loses precision once counts get large: the mean
  /// is itself rounded at every add, and the error scales with the count.
  double sum() const noexcept { return sum_ + comp_; }

 private:
  /// One Neumaier step: adds x into sum_/comp_, capturing the low-order
  /// bits that the float addition rounds away.
  void compensated_add(double x) noexcept;

  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
  double comp_ = 0.0;  ///< Running compensation for lost low-order bits.
};

/// Fixed-bin histogram over [lo, hi); samples outside are clamped into the
/// first/last bin so the total count is preserved (the jitter figures need
/// exact percentages).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::uint64_t total() const noexcept { return total_; }
  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const noexcept { return counts_[i]; }
  double bin_lo(std::size_t i) const noexcept;
  double bin_hi(std::size_t i) const noexcept;
  /// Fraction (0..1) of samples in bin i.
  double fraction(std::size_t i) const noexcept;
  /// Fraction of samples with value < x (linear interpolation within bins).
  double cdf(double x) const noexcept;

 private:
  double lo_;
  double hi_;
  double width_;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> counts_;
};

/// Exact percentile of a sample set (nearest-rank). `q` in [0, 100].
/// Sorts a copy; intended for end-of-run reporting, not hot paths.
double percentile(std::span<const double> samples, double q);

}  // namespace ibarb::util
