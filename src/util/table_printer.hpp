// ASCII table and CSV emission for the benchmark harness.
//
// Every bench binary prints the same rows/series as the paper's tables and
// figures; TablePrinter keeps the formatting consistent across them.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ibarb::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 3);
  static std::string pct(double fraction, int precision = 2);

  void print(std::ostream& os) const;       ///< Boxed ASCII table.
  void print_csv(std::ostream& os) const;   ///< Same data as CSV.

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ibarb::util
