#include "util/thread_pool.hpp"

namespace ibarb::util {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this]() { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  work_available_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this]() { return stopping_ || !queue_.empty(); });
      // Drain-then-stop: pending tasks still run after the destructor sets
      // stopping_, so every future obtained from submit() becomes ready.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();  // packaged_task: exceptions land in the task's future.
  }
}

unsigned default_jobs() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace ibarb::util
