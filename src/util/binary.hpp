// Little-endian binary serialization for control-plane snapshots.
//
// BinWriter/BinReader are the one encoding used by the crash-consistent
// snapshot path (src/control/snapshot.*): fixed-width little-endian
// integers, doubles bit-cast through uint64 (so round-trips are bit-exact,
// including NaN payloads and signed zeros), and length-prefixed strings and
// byte runs. The format is deliberately dumb — no varints, no field tags —
// because snapshots must serialize deterministically: identical state in,
// identical bytes out, on every host and compiler. Versioning and CRC
// guarding live in the envelope (control/snapshot.hpp), not here.
//
// BinReader throws std::runtime_error on any underrun, so a truncated or
// corrupted payload can never be silently half-applied.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ibarb::util {

class BinWriter {
 public:
  void put_u8(std::uint8_t v) { bytes_.push_back(v); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  void put_u16(std::uint16_t v) { put_le(v); }
  void put_u32(std::uint32_t v) { put_le(v); }
  void put_u64(std::uint64_t v) { put_le(v); }

  /// Bit-exact: the double's object representation travels as a uint64.
  void put_double(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

  void put_bytes(std::span<const std::uint8_t> data) {
    put_u64(data.size());
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  void put_string(std::string_view s) {
    put_u64(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }

  const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }
  std::vector<std::uint8_t> take() && { return std::move(bytes_); }
  std::size_t size() const noexcept { return bytes_.size(); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i)
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  std::vector<std::uint8_t> bytes_;
};

class BinReader {
 public:
  explicit BinReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t get_u8() { return take_one(); }
  bool get_bool() { return get_u8() != 0; }

  std::uint16_t get_u16() { return get_le<std::uint16_t>(); }
  std::uint32_t get_u32() { return get_le<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_le<std::uint64_t>(); }

  double get_double() { return std::bit_cast<double>(get_u64()); }

  std::vector<std::uint8_t> get_bytes() {
    const auto n = checked_length(get_u64());
    std::vector<std::uint8_t> out(data_.begin() + static_cast<long>(pos_),
                                  data_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return out;
  }

  std::string get_string() {
    const auto n = checked_length(get_u64());
    std::string out(reinterpret_cast<const char*>(data_.data()) + pos_, n);
    pos_ += n;
    return out;
  }

  /// Reads a length prefix and validates it against the bytes remaining,
  /// so callers can reserve without trusting the wire value.
  std::size_t get_length() { return checked_length(get_u64()); }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool at_end() const noexcept { return pos_ == data_.size(); }

 private:
  std::uint8_t take_one() {
    if (pos_ >= data_.size())
      throw std::runtime_error("snapshot payload underrun");
    return data_[pos_++];
  }

  template <typename T>
  T get_le() {
    if (data_.size() - pos_ < sizeof(T))
      throw std::runtime_error("snapshot payload underrun");
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    pos_ += sizeof(T);
    return v;
  }

  std::size_t checked_length(std::uint64_t n) {
    if (n > remaining())
      throw std::runtime_error("snapshot length prefix exceeds payload");
    return static_cast<std::size_t>(n);
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace ibarb::util
