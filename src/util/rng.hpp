// Deterministic pseudo-random number generation for simulations.
//
// The whole library avoids std::mt19937 so that results are bit-identical
// across standard-library implementations: every experiment in the paper
// reproduction is seeded and replayable.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace ibarb::util {

/// SplitMix64: used to expand a single 64-bit seed into a full xoshiro state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, 256-bit state.
///
/// Satisfies the C++ UniformRandomBitGenerator concept so it can be handed to
/// <random> distributions, although the helpers below are preferred for
/// reproducibility.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Lemire's nearly-divisionless method.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Exponential variate with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Standard normal via Box-Muller (no state caching: two uniforms/call).
  double normal(double mean, double stddev) noexcept;

  /// Bernoulli trial.
  bool chance(double probability) noexcept { return uniform() < probability; }

  /// Independent child stream: deterministic function of this stream's next
  /// output, suitable for giving each simulation entity its own generator.
  Xoshiro256 split() noexcept { return Xoshiro256(next()); }

  /// Raw 256-bit state, for crash-consistent snapshots: a restored stream
  /// continues the exact sequence the saved one would have produced.
  std::array<std::uint64_t, 4> state() const noexcept {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    for (int i = 0; i < 4; ++i) state_[i] = s[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace ibarb::util
