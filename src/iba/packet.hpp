// Packet and message model, including MTU segmentation and wire overhead.
//
// IBA segments messages into packets whose data payload is bounded by the
// path MTU (256 B, 1 KB, 2 KB or 4 KB). Each packet additionally carries the
// local route header (LRH, 8 B), base transport header (BTH, 12 B), the
// invariant and variant CRCs (4 B + 2 B), giving 26 B of overhead per packet.
#pragma once

#include <cstdint>
#include <vector>

#include "iba/types.hpp"

namespace ibarb::iba {

/// Path MTU values permitted by the specification.
enum class Mtu : std::uint16_t {
  kMtu256 = 256,
  kMtu1024 = 1024,
  kMtu2048 = 2048,
  kMtu4096 = 4096,
};

inline constexpr std::uint32_t mtu_bytes(Mtu mtu) {
  return static_cast<std::uint32_t>(mtu);
}

/// Per-packet header + CRC overhead: LRH(8) + BTH(12) + ICRC(4) + VCRC(2).
inline constexpr std::uint32_t kPacketOverheadBytes = 26;

/// Identifier of an established connection (see qos/connection.hpp).
using ConnectionId = std::uint32_t;
inline constexpr ConnectionId kInvalidConnection = 0xFFFFFFFF;

/// A single IBA data packet as tracked by the simulator. The simulator is a
/// flit-free, packet-granularity model: only sizes and identities matter.
struct Packet {
  std::uint64_t id = 0;             ///< Globally unique, for tracing.
  ConnectionId connection = kInvalidConnection;
  ServiceLevel sl = 0;
  Lid source = kInvalidLid;
  Lid destination = kInvalidLid;
  std::uint32_t payload_bytes = 0;  ///< Transport payload carried.
  std::uint32_t sequence = 0;       ///< Packet index within its connection.
  Cycle injected_at = 0;            ///< When the source generated it.
  bool management = false;          ///< True for VL15 subnet-management MADs.
  /// RC transport opcode when this packet belongs to a reliable connection
  /// driven over the fabric (faults/rc_session): 0 = plain data stream
  /// (no transport), 1 = RC data (PSN in `sequence`), 2 = ACK, 3 = NAK.
  std::uint8_t rc_op = 0;
  bool rc_last = false;             ///< RC data: last packet of its message.
  /// The end-to-end guarantee contracted when this packet was injected
  /// (0 = none). Deadline misses are judged against this, not against the
  /// connection's current deadline: a fault-recovery reroute may tighten
  /// the contract while packets sent under the old one are still in flight.
  Cycle deadline = 0;

  /// Bytes occupying the wire (payload plus per-packet overhead).
  std::uint32_t wire_bytes() const noexcept {
    return payload_bytes + kPacketOverheadBytes;
  }

  /// Weight units (64 B) consumed from an arbitration entry, rounded up as a
  /// whole packet per IBA §7.6.9.
  std::uint32_t weight_units() const noexcept {
    return (wire_bytes() + kWeightUnitBytes - 1) / kWeightUnitBytes;
  }
};

/// Splits a message of `message_bytes` into packet payload sizes under `mtu`.
/// The last packet carries the remainder; a zero-byte message still produces
/// one (header-only) packet, as IBA sends at least one packet per message.
std::vector<std::uint32_t> segment_message(std::uint32_t message_bytes,
                                           Mtu mtu);

/// Wire bytes for a full back-to-back message transfer (all packets).
std::uint64_t message_wire_bytes(std::uint32_t message_bytes, Mtu mtu);

/// Efficiency of a given MTU: payload / wire bytes for MTU-sized packets.
double mtu_efficiency(Mtu mtu);

}  // namespace ibarb::iba
