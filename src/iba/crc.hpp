// CRC generators used by the IBA link layer (IBA 1.0 §7.8):
//
//  * ICRC — invariant CRC, 32 bits, the CRC32 polynomial 0x04C11DB7
//    (reflected form 0xEDB88320), covering the fields that do not change
//    hop by hop.
//  * VCRC — variant CRC, 16 bits, polynomial x^16 + x^12 + x^5 + 1
//    (CRC-16-CCITT, reflected 0x8408), recomputed at every link.
//
// Table-driven, reflected implementations; the tables are built at
// compile time.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace ibarb::iba {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint16_t, 256> make_crc16_table() {
  std::array<std::uint16_t, 256> table{};
  for (std::uint16_t i = 0; i < 256; ++i) {
    std::uint16_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? static_cast<std::uint16_t>(0x8408u ^ (c >> 1))
                  : static_cast<std::uint16_t>(c >> 1);
    table[i] = c;
  }
  return table;
}

inline constexpr auto kCrc32Table = make_crc32_table();
inline constexpr auto kCrc16Table = make_crc16_table();

}  // namespace detail

/// ICRC: standard reflected CRC-32 (init 0xFFFFFFFF, final xor 0xFFFFFFFF).
constexpr std::uint32_t icrc(std::span<const std::uint8_t> data) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const auto byte : data)
    crc = detail::kCrc32Table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

/// VCRC: reflected CRC-16-CCITT (init 0xFFFF, no final xor).
constexpr std::uint16_t vcrc(std::span<const std::uint8_t> data) {
  std::uint16_t crc = 0xFFFFu;
  for (const auto byte : data)
    crc = static_cast<std::uint16_t>(
        detail::kCrc16Table[(crc ^ byte) & 0xFF] ^ (crc >> 8));
  return crc;
}

}  // namespace ibarb::iba
