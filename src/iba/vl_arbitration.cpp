#include "iba/vl_arbitration.hpp"

namespace ibarb::iba {

unsigned VlArbitrationTable::vl_weight(const ArbTable& t,
                                       VirtualLane vl) noexcept {
  unsigned sum = 0;
  for (const auto& e : t)
    if (e.active() && e.vl == vl) sum += e.weight;
  return sum;
}

unsigned VlArbitrationTable::total_weight(const ArbTable& t) noexcept {
  unsigned sum = 0;
  for (const auto& e : t)
    if (e.active()) sum += e.weight;
  return sum;
}

unsigned VlArbitrationTable::vl_weight_high(VirtualLane vl) const noexcept {
  return vl_weight(high_, vl);
}

unsigned VlArbitrationTable::vl_weight_low(VirtualLane vl) const noexcept {
  return vl_weight(low_, vl);
}

unsigned VlArbitrationTable::total_weight_high() const noexcept {
  return total_weight(high_);
}

unsigned VlArbitrationTable::total_weight_low() const noexcept {
  return total_weight(low_);
}

unsigned VlArbitrationTable::active_entries_high() const noexcept {
  unsigned n = 0;
  for (const auto& e : high_)
    if (e.active()) ++n;
  return n;
}

bool VlArbitrationTable::valid() const noexcept {
  for (const auto& e : high_)
    if (e.active() && e.vl >= kManagementVl) return false;
  for (const auto& e : low_)
    if (e.active() && e.vl >= kManagementVl) return false;
  return true;
}

}  // namespace ibarb::iba
