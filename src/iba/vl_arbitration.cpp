#include "iba/vl_arbitration.hpp"

#include <cassert>

namespace ibarb::iba {

VlArbitrationTable::Aggregates VlArbitrationTable::scan(
    const ArbTable& t) noexcept {
  Aggregates a;
  for (const auto& e : t) {
    if (!e.active()) continue;
    a.vl_weight[e.vl] += e.weight;
    ++a.vl_entries[e.vl];
    a.total += e.weight;
    ++a.active;
    a.vl_mask |= static_cast<std::uint16_t>(1u << e.vl);
  }
  return a;
}

void VlArbitrationTable::set_entry(ArbTable& t, Aggregates& agg,
                                   unsigned index, ArbTableEntry e) noexcept {
  if (cache_valid_) {
    const ArbTableEntry old = t[index];
    if (old.active()) {
      agg.vl_weight[old.vl] -= old.weight;
      agg.total -= old.weight;
      --agg.active;
      if (--agg.vl_entries[old.vl] == 0)
        agg.vl_mask &= static_cast<std::uint16_t>(~(1u << old.vl));
    }
    if (e.active()) {
      agg.vl_weight[e.vl] += e.weight;
      agg.total += e.weight;
      ++agg.active;
      if (agg.vl_entries[e.vl]++ == 0)
        agg.vl_mask |= static_cast<std::uint16_t>(1u << e.vl);
    }
  }
  t[index] = e;
  assert(cache_in_sync() &&
         "incremental aggregate update diverged from a full scan");
}

bool VlArbitrationTable::cache_in_sync() const noexcept {
  if (!cache_valid_) return true;
  return agg_high_ == scan(high_) && agg_low_ == scan(low_);
}

bool VlArbitrationTable::valid() const noexcept {
  for (const auto& e : high_)
    if (e.active() && e.vl >= kManagementVl) return false;
  for (const auto& e : low_)
    if (e.active() && e.vl >= kManagementVl) return false;
  return true;
}

}  // namespace ibarb::iba
