#include "iba/arbiter.hpp"

#include <algorithm>

namespace ibarb::iba {

void VlArbiter::set_table(const VlArbitrationTable& table) {
  table_ = table;
  high_cur_.index %= kArbTableEntries;
  low_cur_.index %= kArbTableEntries;
  // Reloading gives the current entry its (possibly new) programmed weight;
  // an entry mid-consumption keeps its remaining share, clamped to the new
  // weight. A fresh or exhausted cursor starts with the full entry weight.
  const auto reload = [](Cursor& cur, const ArbTable& t) {
    const int programmed = t[cur.index].weight;
    cur.remaining = cur.remaining <= 0 ? programmed
                                       : std::min(cur.remaining, programmed);
  };
  reload(high_cur_, table_.high());
  reload(low_cur_, table_.low());
}

bool VlArbiter::any_ready(const ArbTable& t, const ReadyBytes& head_bytes) {
  for (const auto& e : t)
    if (e.active() && head_bytes[e.vl] > 0) return true;
  return false;
}

std::optional<VirtualLane> VlArbiter::pick(const ArbTable& t, Cursor& cur,
                                           const ReadyBytes& head_bytes) {
  const auto advance = [&] {
    cur.index = (cur.index + 1) % kArbTableEntries;
    cur.remaining = t[cur.index].weight;
  };

  // One full pass over the table is enough: if no entry matches in 64+1
  // steps (the current entry may be revisited with a fresh weight), nothing
  // is eligible.
  for (unsigned step = 0; step <= kArbTableEntries; ++step) {
    const ArbTableEntry& e = t[cur.index];
    if (!e.active() || cur.remaining <= 0 || head_bytes[e.vl] == 0) {
      advance();
      continue;
    }
    const auto units = static_cast<int>(
        (head_bytes[e.vl] + kWeightUnitBytes - 1) / kWeightUnitBytes);
    cur.remaining -= units;  // whole-packet charge; overdraft forfeited
    const VirtualLane vl = e.vl;
    if (cur.remaining <= 0) advance();
    return vl;
  }
  return std::nullopt;
}

std::optional<ArbDecision> VlArbiter::arbitrate(const ReadyBytes& head_bytes) {
  // VL15 absolute priority, outside both tables.
  if (head_bytes[kManagementVl] > 0)
    return ArbDecision{kManagementVl, false, true};

  const bool high_ready = any_ready(table_.high(), head_bytes);
  const bool low_ready = any_ready(table_.low(), head_bytes);

  const unsigned limit = table_.limit_of_high_priority();
  const bool limit_exhausted =
      limit != kUnlimitedHighPriority &&
      high_bytes_since_low_ >=
          static_cast<std::uint64_t>(limit) * kHighPriorityLimitUnitBytes;

  if (high_ready && !(limit_exhausted && low_ready)) {
    if (const auto vl = pick(table_.high(), high_cur_, head_bytes)) {
      if (!low_ready) {
        // Spec: the limit only meters high-priority data sent while low
        // packets wait; with no low packet pending the meter stays reset.
        high_bytes_since_low_ = 0;
      } else {
        high_bytes_since_low_ += head_bytes[*vl];
      }
      return ArbDecision{*vl, true, false};
    }
  }
  if (low_ready) {
    if (const auto vl = pick(table_.low(), low_cur_, head_bytes)) {
      high_bytes_since_low_ = 0;
      return ArbDecision{*vl, false, false};
    }
  }
  // high_ready might still hold if the limit blocked it but the low pick
  // failed (cannot happen: low_ready implies pick succeeds) — retry high for
  // robustness anyway.
  if (high_ready) {
    if (const auto vl = pick(table_.high(), high_cur_, head_bytes)) {
      high_bytes_since_low_ += head_bytes[*vl];
      return ArbDecision{*vl, true, false};
    }
  }
  return std::nullopt;
}

}  // namespace ibarb::iba
