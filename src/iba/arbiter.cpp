#include "iba/arbiter.hpp"

#include <algorithm>
#include <cassert>

namespace ibarb::iba {

void VlArbiter::TableIndex::rebuild(const ArbTable& t) noexcept {
  vl_mask = 0;
  active_count = 0;
  std::uint8_t first_active = kNoEntry;
  for (unsigned i = 0; i < kArbTableEntries; ++i) {
    if (!t[i].active()) continue;
    vl_mask |= static_cast<std::uint16_t>(1u << t[i].vl);
    ++active_count;
    if (first_active == kNoEntry) first_active = static_cast<std::uint8_t>(i);
  }
  std::uint8_t next = kNoEntry;  // next active strictly after i, no wrap yet
  for (int i = kArbTableEntries - 1; i >= 0; --i) {
    next_after[i] = next;
    if (t[i].active()) next = static_cast<std::uint8_t>(i);
  }
  for (auto& n : next_after)
    if (n == kNoEntry) n = first_active;  // wrap to the table's first entry
}

void VlArbiter::set_table(const VlArbitrationTable& table) {
  table_ = table;
  high_index_.rebuild(table_.high());
  low_index_.rebuild(table_.low());
  high_cur_.index %= kArbTableEntries;
  low_cur_.index %= kArbTableEntries;
  // Reloading gives the current entry its (possibly new) programmed weight;
  // an entry mid-consumption keeps its remaining share, clamped to the new
  // weight. A fresh or exhausted cursor starts with the full entry weight.
  const auto reload = [](Cursor& cur, const ArbTable& t) {
    const int programmed = t[cur.index].weight;
    cur.remaining = cur.remaining <= 0 ? programmed
                                       : std::min(cur.remaining, programmed);
  };
  reload(high_cur_, table_.high());
  reload(low_cur_, table_.low());
}

bool VlArbiter::any_ready(const ArbTable& t, const ReadyBytes& head_bytes) {
  for (const auto& e : t)
    if (e.active() && head_bytes[e.vl] > 0) return true;
  return false;
}

std::optional<VirtualLane> VlArbiter::pick(const ArbTable& t,
                                           const TableIndex& ti, Cursor& cur,
                                           const ReadyBytes& head_bytes,
                                           std::uint64_t& skips) {
  // Equivalent to one full advance-by-one pass over the table (64+1 steps,
  // since the current entry may be revisited with a fresh weight), but runs
  // of entries that cannot match — inactive, or active with no packet ready —
  // are skipped via the next-active chain. Each intermediate advance of the
  // plain walk only reloads `remaining`, which the next advance overwrites,
  // so jumping straight to the next candidate lands in the identical state.
  const auto charge = [&](unsigned index) {
    const ArbTableEntry& e = t[index];
    const auto units = static_cast<int>(
        (head_bytes[e.vl] + kWeightUnitBytes - 1) / kWeightUnitBytes);
    cur.index = index;
    cur.remaining -= units;  // whole-packet charge; overdraft forfeited
    const VirtualLane vl = e.vl;
    if (cur.remaining <= 0) {
      cur.index = (index + 1) % kArbTableEntries;
      cur.remaining = t[cur.index].weight;
    }
    return vl;
  };

  const unsigned start = cur.index;
  const ArbTableEntry& first = t[start];
  if (first.active() && cur.remaining > 0 && head_bytes[first.vl] > 0)
    return charge(start);  // current entry continues on its remaining weight

  // Active entries cyclically after `start` (ending with `start` itself if
  // active: a full wrap restores its programmed weight). Each candidate
  // reached by advancing starts with its full weight, which is nonzero by
  // definition of active, so readiness is the only remaining condition.
  std::uint8_t j = ti.next_after[start];
  for (unsigned k = 0; k < ti.active_count && j != kNoEntry; ++k) {
    if (head_bytes[t[j].vl] > 0) {
      skips += k;
      cur.index = j;
      cur.remaining = t[j].weight;
      return charge(j);
    }
    j = ti.next_after[j];
  }
  skips += ti.active_count;

  // Nothing eligible: the plain walk would have advanced 65 times, leaving
  // the cursor one past its starting entry with that entry's full weight.
  cur.index = (start + 1) % kArbTableEntries;
  cur.remaining = t[cur.index].weight;
  return std::nullopt;
}

std::optional<ArbDecision> VlArbiter::arbitrate(const ReadyBytes& head_bytes) {
  ++stats_.decisions;
  // VL15 absolute priority, outside both tables.
  if (head_bytes[kManagementVl] > 0) {
    ++stats_.vl15_bypasses;
    return ArbDecision{kManagementVl, false, true};
  }

  std::uint16_t ready_mask = 0;
  for (unsigned v = 0; v < kMaxVirtualLanes; ++v)
    if (head_bytes[v] > 0) ready_mask |= static_cast<std::uint16_t>(1u << v);

  const bool high_ready = (high_index_.vl_mask & ready_mask) != 0;
  const bool low_ready = (low_index_.vl_mask & ready_mask) != 0;
  assert(high_ready == any_ready(table_.high(), head_bytes) &&
         low_ready == any_ready(table_.low(), head_bytes) &&
         "cached VL masks diverged from the table scan");

  const unsigned limit = table_.limit_of_high_priority();
  const bool limit_exhausted =
      limit != kUnlimitedHighPriority &&
      high_bytes_since_low_ >=
          static_cast<std::uint64_t>(limit) * kHighPriorityLimitUnitBytes;

  if (high_ready && limit_exhausted && low_ready) ++stats_.limit_blocks;
  if (high_ready && !(limit_exhausted && low_ready)) {
    if (const auto vl = pick(table_.high(), high_index_, high_cur_,
                             head_bytes, stats_.high_skips)) {
      if (!low_ready) {
        // Spec: the limit only meters high-priority data sent while low
        // packets wait; with no low packet pending the meter stays reset.
        high_bytes_since_low_ = 0;
      } else {
        high_bytes_since_low_ += head_bytes[*vl];
      }
      ++stats_.high_picks;
      return ArbDecision{*vl, true, false};
    }
  }
  if (low_ready) {
    if (const auto vl = pick(table_.low(), low_index_, low_cur_,
                             head_bytes, stats_.low_skips)) {
      high_bytes_since_low_ = 0;
      ++stats_.low_picks;
      return ArbDecision{*vl, false, false};
    }
  }
  // high_ready might still hold if the limit blocked it but the low pick
  // failed (cannot happen: low_ready implies pick succeeds) — retry high for
  // robustness anyway.
  if (high_ready) {
    if (const auto vl = pick(table_.high(), high_index_, high_cur_,
                             head_bytes, stats_.high_skips)) {
      high_bytes_since_low_ += head_bytes[*vl];
      ++stats_.high_picks;
      return ArbDecision{*vl, true, false};
    }
  }
  ++stats_.idle;
  return std::nullopt;
}

}  // namespace ibarb::iba
