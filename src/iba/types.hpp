// Fundamental InfiniBand Architecture (IBA 1.0) types and constants used
// throughout the library.
//
// Time convention: the simulator counts in *cycles*, where one cycle is the
// time to move one byte of data across a 1x link (2.5 Gbps signalling,
// 2.0 Gbps data after 8b/10b coding → 4 ns/byte). Faster links move more
// bytes per cycle (see link.hpp).
#pragma once

#include <cstdint>
#include <limits>

namespace ibarb::iba {

/// Service Level carried in the packet LRH. IBA defines 16 SLs and leaves
/// their meaning to the fabric administrator.
using ServiceLevel = std::uint8_t;
inline constexpr ServiceLevel kMaxServiceLevels = 16;

/// Virtual lane index. VL15 is reserved for subnet management and always has
/// priority over data VLs.
using VirtualLane = std::uint8_t;
inline constexpr VirtualLane kMaxVirtualLanes = 16;
inline constexpr VirtualLane kManagementVl = 15;
inline constexpr VirtualLane kInvalidVl = 0xFF;

/// Local IDentifier assigned by the subnet manager to every endport.
using Lid = std::uint16_t;
inline constexpr Lid kInvalidLid = 0;

/// Node (switch or host/channel-adapter) index inside a fabric model.
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Port number within a node. Port 0 on switches is the management port; the
/// simulator's data ports are 1-based to match IBA conventions but stored
/// 0-based in dense arrays.
using PortIndex = std::uint8_t;

/// Simulation time in cycles (1 cycle = 1 byte-time on a 1x data link).
using Cycle = std::uint64_t;
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/// Nanoseconds per cycle with the 1x data rate (2.0 Gbps → 0.25 GB/s).
inline constexpr double kNsPerCycle = 4.0;

/// 1x data bandwidth in Mbps (2.5 Gbps signalling × 8/10 coding).
inline constexpr double kBaseLinkMbps = 2000.0;

// --- VL arbitration table constants (IBA 1.0 §7.6.9) ---

/// Each of the two priority tables has up to 64 {VL, weight} entries.
inline constexpr unsigned kArbTableEntries = 64;

/// Entry weights are 0..255 in units of 64 bytes.
inline constexpr unsigned kMaxEntryWeight = 255;
inline constexpr unsigned kWeightUnitBytes = 64;

/// LimitOfHighPriority counts units of 4096 bytes of high-priority data that
/// may be sent while a low-priority packet is pending; 255 means unlimited.
inline constexpr unsigned kHighPriorityLimitUnitBytes = 4096;
inline constexpr unsigned kUnlimitedHighPriority = 255;

/// Total weight capacity of a fully occupied 64-entry table. One "weight
/// round" of a full table moves kFullTableWeight × 64 bytes; bandwidth
/// reservations are expressed as a share of this.
inline constexpr unsigned kFullTableWeight = kArbTableEntries * kMaxEntryWeight;

}  // namespace ibarb::iba
