#include "iba/sl_to_vl.hpp"

#include <cassert>
#include <stdexcept>

namespace ibarb::iba {

SlToVlMappingTable::SlToVlMappingTable() { table_.fill(0); }

SlToVlMappingTable SlToVlMappingTable::identity(unsigned data_vls) {
  if (data_vls == 0 || data_vls > kManagementVl)
    throw std::invalid_argument("data_vls must be in 1..15");
  SlToVlMappingTable t;
  for (unsigned sl = 0; sl < kMaxServiceLevels; ++sl)
    t.table_[sl] = static_cast<VirtualLane>(sl % data_vls);
  return t;
}

void SlToVlMappingTable::set(ServiceLevel sl, VirtualLane vl) {
  if (sl >= kMaxServiceLevels)
    throw std::invalid_argument("SL out of range");
  if (vl != kInvalidVl && vl >= kManagementVl)
    throw std::invalid_argument("data SLs cannot map to VL15");
  table_[sl] = vl;
}

bool SlToVlMappingTable::valid_for(unsigned data_vls) const noexcept {
  for (const auto vl : table_)
    if (vl == kInvalidVl || vl >= data_vls) return false;
  return true;
}

}  // namespace ibarb::iba
