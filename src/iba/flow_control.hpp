// Credit-based link-level flow control (IBA 1.0 §7.9), per virtual lane.
//
// IBA advertises receive-buffer space in Flow Control Credit Limits counted
// in 64-byte blocks, independently per VL, so one blocked VL never stalls the
// others. The simulator models the steady-state effect: a sender may start a
// packet on VL v only while the peer's VL-v input buffer has room for the
// whole packet (virtual cut-through at packet granularity).
#pragma once

#include <array>
#include <cstdint>

#include "iba/types.hpp"

namespace ibarb::iba {

/// Credit block size mandated by the specification.
inline constexpr std::uint32_t kCreditBlockBytes = 64;

inline constexpr std::uint32_t bytes_to_blocks(std::uint32_t bytes) noexcept {
  return (bytes + kCreditBlockBytes - 1) / kCreditBlockBytes;
}

/// Tracks, on the *sender* side, the free space of the peer's per-VL input
/// buffers. The simulator updates it instantaneously (zero-latency FCPs);
/// the per-VL independence — the property the paper relies on — is exact.
class CreditTracker {
 public:
  CreditTracker() = default;

  /// All VLs granted `blocks_per_vl` credit blocks.
  explicit CreditTracker(std::uint32_t blocks_per_vl) {
    credits_.fill(blocks_per_vl);
    capacity_.fill(blocks_per_vl);
  }

  void set_capacity(VirtualLane vl, std::uint32_t blocks) {
    capacity_[vl] = blocks;
    credits_[vl] = blocks;
  }

  std::uint32_t available(VirtualLane vl) const noexcept {
    return credits_[vl];
  }

  std::uint32_t capacity(VirtualLane vl) const noexcept {
    return capacity_[vl];
  }

  bool can_send(VirtualLane vl, std::uint32_t wire_bytes) const noexcept {
    return credits_[vl] >= bytes_to_blocks(wire_bytes);
  }

  /// Consumes credits for a departing packet. Caller must have checked
  /// can_send; in debug builds an overdraw aborts.
  void consume(VirtualLane vl, std::uint32_t wire_bytes) noexcept;

  /// Returns credits when the receiver drains the packet onward.
  void release(VirtualLane vl, std::uint32_t wire_bytes) noexcept;

 private:
  std::array<std::uint32_t, kMaxVirtualLanes> credits_{};
  std::array<std::uint32_t, kMaxVirtualLanes> capacity_{};
};

}  // namespace ibarb::iba
