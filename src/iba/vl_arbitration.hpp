// VLArbitrationTable (IBA 1.0 §7.6.9): the per-output-port structure holding
// the high-priority and low-priority weighted-round-robin tables and the
// LimitOfHighPriority value.
//
// This header defines only the *data structure*; the arbiter that executes it
// lives in iba/arbiter.hpp and the algorithms that decide its contents (the
// paper's contribution) live under src/arbtable/.
#pragma once

#include <array>
#include <cstdint>

#include "iba/types.hpp"

namespace ibarb::iba {

/// One {VL, weight} pair. weight is in units of 64 bytes; a zero weight makes
/// the entry inactive (skipped by the arbiter) — that is also how the fill
/// algorithm encodes a *free* entry.
struct ArbTableEntry {
  VirtualLane vl = 0;
  std::uint8_t weight = 0;

  bool active() const noexcept { return weight != 0; }
  friend bool operator==(const ArbTableEntry&, const ArbTableEntry&) = default;
};

/// Fixed 64-slot table (the spec allows fewer; we always model the full 64
/// used by the paper). Index positions matter: the distance between entries
/// of a connection's sequence is what bounds its latency.
using ArbTable = std::array<ArbTableEntry, kArbTableEntries>;

class VlArbitrationTable {
 public:
  VlArbitrationTable() = default;

  ArbTable& high() noexcept { return high_; }
  const ArbTable& high() const noexcept { return high_; }
  ArbTable& low() noexcept { return low_; }
  const ArbTable& low() const noexcept { return low_; }

  std::uint8_t limit_of_high_priority() const noexcept { return limit_; }
  void set_limit_of_high_priority(std::uint8_t v) noexcept { limit_ = v; }

  /// Sum of active weights for one VL in the high (or low) table. Used by
  /// admission control to audit reservations.
  unsigned vl_weight_high(VirtualLane vl) const noexcept;
  unsigned vl_weight_low(VirtualLane vl) const noexcept;

  /// Total active weight in each table.
  unsigned total_weight_high() const noexcept;
  unsigned total_weight_low() const noexcept;

  unsigned active_entries_high() const noexcept;

  /// Structural validity: entries reference data VLs only (VL15 never
  /// appears in arbitration tables — it is arbitrated implicitly above them).
  bool valid() const noexcept;

 private:
  static unsigned vl_weight(const ArbTable& t, VirtualLane vl) noexcept;
  static unsigned total_weight(const ArbTable& t) noexcept;

  ArbTable high_{};
  ArbTable low_{};
  std::uint8_t limit_ = kUnlimitedHighPriority;
};

}  // namespace ibarb::iba
