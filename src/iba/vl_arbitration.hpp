// VLArbitrationTable (IBA 1.0 §7.6.9): the per-output-port structure holding
// the high-priority and low-priority weighted-round-robin tables and the
// LimitOfHighPriority value.
//
// This header defines only the *data structure*; the arbiter that executes it
// lives in iba/arbiter.hpp and the algorithms that decide its contents (the
// paper's contribution) live under src/arbtable/.
//
// Aggregate queries (per-VL weight sums, totals, active-entry counts, the
// per-VL activity mask) are cached instead of rescanned per call. Mutation
// through set_high_entry/set_low_entry maintains the caches incrementally in
// O(1); mutation through the non-const high()/low() references (kept for the
// fill/defrag algorithms and tests, which rewrite entries wholesale) marks
// the caches dirty and the next aggregate query rebuilds them with one O(64)
// scan per table. Debug builds cross-check every incremental update against
// the old full scans; cache_in_sync() exposes the same audit to tests.
#pragma once

#include <array>
#include <cstdint>

#include "iba/types.hpp"

namespace ibarb::iba {

/// One {VL, weight} pair. weight is in units of 64 bytes; a zero weight makes
/// the entry inactive (skipped by the arbiter) — that is also how the fill
/// algorithm encodes a *free* entry.
struct ArbTableEntry {
  VirtualLane vl = 0;
  std::uint8_t weight = 0;

  bool active() const noexcept { return weight != 0; }
  friend bool operator==(const ArbTableEntry&, const ArbTableEntry&) = default;
};

/// Fixed 64-slot table (the spec allows fewer; we always model the full 64
/// used by the paper). Index positions matter: the distance between entries
/// of a connection's sequence is what bounds its latency.
using ArbTable = std::array<ArbTableEntry, kArbTableEntries>;

class VlArbitrationTable {
 public:
  VlArbitrationTable() = default;

  /// Mutable access marks the aggregate caches dirty (the caller may write
  /// any entry through the reference); they are rebuilt lazily on the next
  /// aggregate query. Prefer set_high_entry/set_low_entry for single-entry
  /// writes — those keep the caches incrementally up to date.
  ArbTable& high() noexcept {
    cache_valid_ = false;
    return high_;
  }
  const ArbTable& high() const noexcept { return high_; }
  ArbTable& low() noexcept {
    cache_valid_ = false;
    return low_;
  }
  const ArbTable& low() const noexcept { return low_; }

  /// Single-entry writes with O(1) incremental cache maintenance.
  void set_high_entry(unsigned index, ArbTableEntry e) noexcept {
    set_entry(high_, agg_high_, index, e);
  }
  void set_low_entry(unsigned index, ArbTableEntry e) noexcept {
    set_entry(low_, agg_low_, index, e);
  }

  std::uint8_t limit_of_high_priority() const noexcept { return limit_; }
  void set_limit_of_high_priority(std::uint8_t v) noexcept { limit_ = v; }

  /// Sum of active weights for one VL in the high (or low) table. Used by
  /// admission control to audit reservations.
  unsigned vl_weight_high(VirtualLane vl) const noexcept {
    refresh();
    return agg_high_.vl_weight[vl];
  }
  unsigned vl_weight_low(VirtualLane vl) const noexcept {
    refresh();
    return agg_low_.vl_weight[vl];
  }

  /// Total active weight in each table.
  unsigned total_weight_high() const noexcept {
    refresh();
    return agg_high_.total;
  }
  unsigned total_weight_low() const noexcept {
    refresh();
    return agg_low_.total;
  }

  unsigned active_entries_high() const noexcept {
    refresh();
    return agg_high_.active;
  }
  unsigned active_entries_low() const noexcept {
    refresh();
    return agg_low_.active;
  }

  /// Bit v set when VL v has at least one active entry in the table.
  std::uint16_t vl_mask_high() const noexcept {
    refresh();
    return agg_high_.vl_mask;
  }
  std::uint16_t vl_mask_low() const noexcept {
    refresh();
    return agg_low_.vl_mask;
  }

  /// Audit: every cached aggregate equals a fresh O(64) scan. A dirty cache
  /// is vacuously in sync (it claims nothing until rebuilt).
  bool cache_in_sync() const noexcept;

  /// Structural validity: entries reference data VLs only (VL15 never
  /// appears in arbitration tables — it is arbitrated implicitly above them).
  bool valid() const noexcept;

 private:
  struct Aggregates {
    std::array<std::uint32_t, kMaxVirtualLanes> vl_weight{};
    std::array<std::uint16_t, kMaxVirtualLanes> vl_entries{};
    std::uint32_t total = 0;
    std::uint32_t active = 0;
    std::uint16_t vl_mask = 0;

    friend bool operator==(const Aggregates&, const Aggregates&) = default;
  };

  static Aggregates scan(const ArbTable& t) noexcept;

  void set_entry(ArbTable& t, Aggregates& agg, unsigned index,
                 ArbTableEntry e) noexcept;

  /// Rebuilds both caches if any mutable-reference access dirtied them.
  /// Caches are mutable so const aggregate queries stay O(1); like the rest
  /// of the class this is not safe for concurrent use of one instance (each
  /// sweep run owns its tables).
  void refresh() const noexcept {
    if (cache_valid_) return;
    agg_high_ = scan(high_);
    agg_low_ = scan(low_);
    cache_valid_ = true;
  }

  ArbTable high_{};
  ArbTable low_{};
  std::uint8_t limit_ = kUnlimitedHighPriority;
  mutable Aggregates agg_high_{};
  mutable Aggregates agg_low_{};
  mutable bool cache_valid_ = true;  ///< All-zero aggregates match an empty table.
};

}  // namespace ibarb::iba
