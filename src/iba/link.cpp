#include "iba/link.hpp"

#include <stdexcept>
#include <string>

namespace ibarb::iba {

LinkRate parse_link_rate(const std::string& s) {
  if (s == "1x") return LinkRate::k1x;
  if (s == "4x") return LinkRate::k4x;
  if (s == "12x") return LinkRate::k12x;
  throw std::invalid_argument("unknown link rate '" + s +
                              "' (expected 1x, 4x or 12x)");
}

std::string to_string(LinkRate r) {
  switch (r) {
    case LinkRate::k1x: return "1x";
    case LinkRate::k4x: return "4x";
    case LinkRate::k12x: return "12x";
  }
  return "?";
}

}  // namespace ibarb::iba
