// Bit-exact wire headers of the IBA link and transport layers (IBA 1.0
// §7.7, §9.2): the Local Route Header and the Base Transport Header, plus
// whole-packet serialization with ICRC/VCRC trailers.
//
// The simulator itself works at packet granularity and never touches these
// bytes on its hot path; they exist so the library is usable as a protocol
// substrate (wire dumps, conformance tests, fuzzable parser) and so that
// header sizes/overheads come from the real formats rather than constants
// plucked from the paper.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "iba/packet.hpp"
#include "iba/types.hpp"

namespace ibarb::iba {

/// Link Next Header field: what follows the LRH.
enum class Lnh : std::uint8_t {
  kRaw = 0,        ///< Raw (non-IBA) payload.
  kIpV6 = 1,       ///< Raw IPv6.
  kBth = 2,        ///< IBA transport without GRH — what this library sends.
  kGrhBth = 3,     ///< Global route header, then BTH.
};

/// Local Route Header — 8 bytes on the wire.
struct Lrh {
  VirtualLane vl = 0;          ///< 4 bits.
  std::uint8_t lver = 0;       ///< Link version, 4 bits (0 for IBA 1.0).
  ServiceLevel sl = 0;         ///< 4 bits.
  Lnh lnh = Lnh::kBth;         ///< 2 bits.
  Lid dlid = kInvalidLid;      ///< 16 bits.
  std::uint16_t packet_length = 0;  ///< 11 bits, in 4-byte words.
  Lid slid = kInvalidLid;      ///< 16 bits.

  friend bool operator==(const Lrh&, const Lrh&) = default;
};
inline constexpr std::size_t kLrhBytes = 8;

/// Base Transport Header — 12 bytes on the wire.
struct Bth {
  std::uint8_t opcode = 0x04;  ///< RC SEND-only by default.
  bool solicited_event = false;
  bool mig_req = false;
  std::uint8_t pad_count = 0;   ///< 2 bits: pad bytes to 4-byte alignment.
  std::uint8_t tver = 0;        ///< Transport version, 4 bits.
  std::uint16_t p_key = 0xFFFF; ///< Default partition.
  std::uint32_t dest_qp = 0;    ///< 24 bits.
  bool ack_req = false;
  std::uint32_t psn = 0;        ///< Packet sequence number, 24 bits.

  friend bool operator==(const Bth&, const Bth&) = default;
};
inline constexpr std::size_t kBthBytes = 12;

std::array<std::uint8_t, kLrhBytes> encode(const Lrh& lrh);
std::array<std::uint8_t, kBthBytes> encode(const Bth& bth);

/// Decoding validates reserved bits are zero and the version fields are 0.
std::optional<Lrh> decode_lrh(std::span<const std::uint8_t> bytes);
std::optional<Bth> decode_bth(std::span<const std::uint8_t> bytes);

/// A fully parsed wire packet.
struct WirePacket {
  Lrh lrh;
  Bth bth;
  std::vector<std::uint8_t> payload;
};

/// Serializes LRH + BTH + payload + ICRC + VCRC into wire bytes. The LRH
/// packet_length field is filled in (it covers LRH..ICRC in 4-byte words);
/// the payload is padded to a 4-byte boundary with bth.pad_count set.
std::vector<std::uint8_t> serialize_packet(Lrh lrh, Bth bth,
                                           std::span<const std::uint8_t> payload);

/// Parses and validates a wire packet (structure, length field and both
/// CRCs). Returns std::nullopt on any inconsistency — safe on hostile input.
std::optional<WirePacket> parse_packet(std::span<const std::uint8_t> bytes);

/// Bridges the simulator's Packet metadata to wire headers (payload bytes
/// are synthesized as zeros; the simulator doesn't track contents).
std::vector<std::uint8_t> to_wire(const Packet& p);

}  // namespace ibarb::iba
