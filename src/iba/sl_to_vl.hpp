// SLtoVLMappingTable (IBA 1.0 §7.6.6).
//
// At the input of every link, packets marked with a Service Level are mapped
// to the Virtual Lane they will occupy in the next device. The table is
// programmed by the subnet manager and may fold several SLs onto one VL when
// a device implements fewer data VLs than there are SLs in use.
#pragma once

#include <array>
#include <cstdint>

#include "iba/types.hpp"

namespace ibarb::iba {

class SlToVlMappingTable {
 public:
  /// Identity mapping clipped to `data_vls` operational data lanes:
  /// SL s → VL (s % data_vls). SL15 maps to VL15 only for management traffic
  /// (handled outside this table); as a data SL it folds like the others.
  static SlToVlMappingTable identity(unsigned data_vls);

  SlToVlMappingTable();  ///< All SLs on VL0 (2-VL minimal device).

  /// Programs one mapping. `vl` must be a data VL (0..14) or kInvalidVl to
  /// mark the SL as not admitted on this link (packets would be dropped).
  void set(ServiceLevel sl, VirtualLane vl);

  VirtualLane map(ServiceLevel sl) const noexcept { return table_[sl & 0x0F]; }

  /// True when every SL maps to a valid data VL below `data_vls`.
  bool valid_for(unsigned data_vls) const noexcept;

 private:
  std::array<VirtualLane, kMaxServiceLevels> table_{};
};

}  // namespace ibarb::iba
