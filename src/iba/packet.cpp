#include "iba/packet.hpp"

namespace ibarb::iba {

std::vector<std::uint32_t> segment_message(std::uint32_t message_bytes,
                                           Mtu mtu) {
  const std::uint32_t cap = mtu_bytes(mtu);
  std::vector<std::uint32_t> sizes;
  if (message_bytes == 0) {
    sizes.push_back(0);
    return sizes;
  }
  sizes.reserve((message_bytes + cap - 1) / cap);
  while (message_bytes > 0) {
    const std::uint32_t chunk = message_bytes < cap ? message_bytes : cap;
    sizes.push_back(chunk);
    message_bytes -= chunk;
  }
  return sizes;
}

std::uint64_t message_wire_bytes(std::uint32_t message_bytes, Mtu mtu) {
  std::uint64_t total = 0;
  for (const auto payload : segment_message(message_bytes, mtu))
    total += payload + kPacketOverheadBytes;
  return total;
}

double mtu_efficiency(Mtu mtu) {
  const double payload = mtu_bytes(mtu);
  return payload / (payload + kPacketOverheadBytes);
}

}  // namespace ibarb::iba
