// Output-port VL arbiter executing a VLArbitrationTable with IBA semantics:
//
//  * VL15 (subnet management) always wins over data traffic.
//  * Two weighted-round-robin tables; the high-priority table may send
//    LimitOfHighPriority × 4096 bytes while low-priority packets are pending
//    before one low-priority packet must be let through (255 = unlimited).
//  * If the high table has nothing ready, the low table transmits
//    (work-conserving), and vice versa.
//  * Within a table, up to 64 entries are cycled; the current entry keeps
//    transmitting from its VL while it has data and remaining weight. Weights
//    count units of 64 bytes and are always charged whole packets (a packet
//    may overdraw the entry; the overdraft is forfeited, not carried over).
//  * When the current entry's VL has no eligible packet, the arbiter advances
//    and the entry's unused weight is forfeited (it is restored to the full
//    programmed weight the next time the round-robin reaches it).
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "iba/types.hpp"
#include "iba/vl_arbitration.hpp"

namespace ibarb::iba {

/// Per-VL view the port gives the arbiter each decision: wire size of the
/// packet at the head of each VL's queue, or 0 when the VL has nothing
/// eligible (empty, or not enough downstream credits).
using ReadyBytes = std::array<std::uint32_t, kMaxVirtualLanes>;

struct ArbDecision {
  VirtualLane vl = kInvalidVl;
  bool from_high = false;       ///< Chosen from the high-priority table.
  bool management = false;      ///< VL15 bypass.
};

class VlArbiter {
 public:
  VlArbiter() = default;
  explicit VlArbiter(const VlArbitrationTable& table) { set_table(table); }

  /// Installs a (possibly updated) table. Round-robin positions are kept so
  /// that live reconfiguration by the subnet manager does not reset service
  /// order; the current entry's remaining weight is clamped to its new
  /// programmed weight.
  void set_table(const VlArbitrationTable& table);

  const VlArbitrationTable& table() const noexcept { return table_; }

  /// Picks the VL to transmit next, charging weights/limits as if the caller
  /// transmits that VL's head packet. Returns std::nullopt when nothing is
  /// eligible.
  std::optional<ArbDecision> arbitrate(const ReadyBytes& head_bytes);

  /// Bytes of high-priority data sent since the last low-priority packet
  /// (diagnostics; meaningful only when the limit is bounded).
  std::uint64_t high_bytes_since_low() const noexcept {
    return high_bytes_since_low_;
  }

 private:
  struct Cursor {
    unsigned index = 0;
    int remaining = 0;  ///< Weight units left in the current entry.
  };

  /// Tries to pick from one table; on success charges the entry's weight.
  std::optional<VirtualLane> pick(const ArbTable& t, Cursor& cur,
                                  const ReadyBytes& head_bytes);

  static bool any_ready(const ArbTable& t, const ReadyBytes& head_bytes);

  VlArbitrationTable table_{};
  Cursor high_cur_{};
  Cursor low_cur_{};
  std::uint64_t high_bytes_since_low_ = 0;
};

}  // namespace ibarb::iba
