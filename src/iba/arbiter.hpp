// Output-port VL arbiter executing a VLArbitrationTable with IBA semantics:
//
//  * VL15 (subnet management) always wins over data traffic.
//  * Two weighted-round-robin tables; the high-priority table may send
//    LimitOfHighPriority × 4096 bytes while low-priority packets are pending
//    before one low-priority packet must be let through (255 = unlimited).
//  * If the high table has nothing ready, the low table transmits
//    (work-conserving), and vice versa.
//  * Within a table, up to 64 entries are cycled; the current entry keeps
//    transmitting from its VL while it has data and remaining weight. Weights
//    count units of 64 bytes and are always charged whole packets (a packet
//    may overdraw the entry; the overdraft is forfeited, not carried over).
//  * When the current entry's VL has no eligible packet, the arbiter advances
//    and the entry's unused weight is forfeited (it is restored to the full
//    programmed weight the next time the round-robin reaches it).
//
// The per-decision hot path is cached: set_table() precomputes, per table, a
// mask of VLs with active entries (so the "anything ready?" test is two mask
// ANDs instead of a 64-entry scan) and a next-active-entry skip chain (so the
// round-robin advances over runs of inactive entries in O(1) per active
// entry). Every cached decision is bit-identical to the plain table walk —
// debug builds assert this against the uncached scans, and
// tests/test_arbiter_model.cpp fuzzes it against an independent spec model.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "iba/types.hpp"
#include "iba/vl_arbitration.hpp"

namespace ibarb::iba {

/// Per-VL view the port gives the arbiter each decision: wire size of the
/// packet at the head of each VL's queue, or 0 when the VL has nothing
/// eligible (empty, or not enough downstream credits).
using ReadyBytes = std::array<std::uint32_t, kMaxVirtualLanes>;

struct ArbDecision {
  VirtualLane vl = kInvalidVl;
  bool from_high = false;       ///< Chosen from the high-priority table.
  bool management = false;      ///< VL15 bypass.
};

class VlArbiter {
 public:
  /// Always-on decision accounting, published to obs::TelemetryRegistry by
  /// the simulator's snapshot probe. Plain increments — arbitrate() is a
  /// hot path (bench_micro measures Mdecisions/s) and must not touch any
  /// registry indirection.
  struct Stats {
    std::uint64_t decisions = 0;       ///< arbitrate() calls.
    std::uint64_t vl15_bypasses = 0;   ///< Management traffic preemptions.
    std::uint64_t high_picks = 0;
    std::uint64_t low_picks = 0;
    std::uint64_t high_skips = 0;      ///< Not-ready entries stepped over.
    std::uint64_t low_skips = 0;
    std::uint64_t limit_blocks = 0;    ///< High table deferred by the limit.
    std::uint64_t idle = 0;            ///< Nothing eligible anywhere.
  };

  VlArbiter() = default;
  explicit VlArbiter(const VlArbitrationTable& table) { set_table(table); }

  /// Installs a (possibly updated) table. Round-robin positions are kept so
  /// that live reconfiguration by the subnet manager does not reset service
  /// order; the current entry's remaining weight is clamped to its new
  /// programmed weight.
  void set_table(const VlArbitrationTable& table);

  const VlArbitrationTable& table() const noexcept { return table_; }

  /// Picks the VL to transmit next, charging weights/limits as if the caller
  /// transmits that VL's head packet. Returns std::nullopt when nothing is
  /// eligible.
  std::optional<ArbDecision> arbitrate(const ReadyBytes& head_bytes);

  /// Bytes of high-priority data sent since the last low-priority packet
  /// (diagnostics; meaningful only when the limit is bounded).
  std::uint64_t high_bytes_since_low() const noexcept {
    return high_bytes_since_low_;
  }

  const Stats& stats() const noexcept { return stats_; }

 private:
  struct Cursor {
    unsigned index = 0;
    int remaining = 0;  ///< Weight units left in the current entry.
  };

  static constexpr std::uint8_t kNoEntry = 0xFF;

  /// Aggregates derived from one table by set_table(), consulted (never
  /// modified) by every arbitrate() call.
  struct TableIndex {
    std::uint16_t vl_mask = 0;      ///< VLs with at least one active entry.
    std::uint8_t active_count = 0;  ///< Number of active entries.
    /// First active entry cyclically *after* position i (kNoEntry when the
    /// table has no active entries). A lone active entry points at itself.
    std::array<std::uint8_t, kArbTableEntries> next_after{};

    void rebuild(const ArbTable& t) noexcept;
  };

  /// Tries to pick from one table; on success charges the entry's weight.
  /// `ti` must be the TableIndex derived from `t`. Not-ready active entries
  /// stepped over are added to `skips`.
  std::optional<VirtualLane> pick(const ArbTable& t, const TableIndex& ti,
                                  Cursor& cur, const ReadyBytes& head_bytes,
                                  std::uint64_t& skips);

  static bool any_ready(const ArbTable& t, const ReadyBytes& head_bytes);

  VlArbitrationTable table_{};
  TableIndex high_index_{};
  TableIndex low_index_{};
  Cursor high_cur_{};
  Cursor low_cur_{};
  std::uint64_t high_bytes_since_low_ = 0;
  Stats stats_;
};

}  // namespace ibarb::iba
