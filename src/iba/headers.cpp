#include "iba/headers.hpp"

#include <cstring>

#include "iba/crc.hpp"

namespace ibarb::iba {

namespace {

void put16(std::uint8_t* at, std::uint16_t v) {
  at[0] = static_cast<std::uint8_t>(v >> 8);  // IBA wire order: big endian
  at[1] = static_cast<std::uint8_t>(v);
}

std::uint16_t get16(const std::uint8_t* at) {
  return static_cast<std::uint16_t>((at[0] << 8) | at[1]);
}

void put24(std::uint8_t* at, std::uint32_t v) {
  at[0] = static_cast<std::uint8_t>(v >> 16);
  at[1] = static_cast<std::uint8_t>(v >> 8);
  at[2] = static_cast<std::uint8_t>(v);
}

std::uint32_t get24(const std::uint8_t* at) {
  return (static_cast<std::uint32_t>(at[0]) << 16) |
         (static_cast<std::uint32_t>(at[1]) << 8) | at[2];
}

}  // namespace

std::array<std::uint8_t, kLrhBytes> encode(const Lrh& lrh) {
  std::array<std::uint8_t, kLrhBytes> out{};
  out[0] = static_cast<std::uint8_t>((lrh.vl & 0x0F) << 4 |
                                     (lrh.lver & 0x0F));
  out[1] = static_cast<std::uint8_t>(
      (lrh.sl & 0x0F) << 4 | (static_cast<std::uint8_t>(lrh.lnh) & 0x03));
  put16(&out[2], lrh.dlid);
  put16(&out[4], lrh.packet_length & 0x07FF);
  put16(&out[6], lrh.slid);
  return out;
}

std::array<std::uint8_t, kBthBytes> encode(const Bth& bth) {
  std::array<std::uint8_t, kBthBytes> out{};
  out[0] = bth.opcode;
  out[1] = static_cast<std::uint8_t>(
      (bth.solicited_event ? 0x80 : 0) | (bth.mig_req ? 0x40 : 0) |
      (bth.pad_count & 0x03) << 4 | (bth.tver & 0x0F));
  put16(&out[2], bth.p_key);
  put24(&out[5], bth.dest_qp & 0x00FFFFFF);
  out[8] = static_cast<std::uint8_t>(bth.ack_req ? 0x80 : 0);
  put24(&out[9], bth.psn & 0x00FFFFFF);
  return out;
}

std::optional<Lrh> decode_lrh(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kLrhBytes) return std::nullopt;
  Lrh lrh;
  lrh.vl = bytes[0] >> 4;
  lrh.lver = bytes[0] & 0x0F;
  if (lrh.lver != 0) return std::nullopt;  // only IBA 1.0 link version
  lrh.sl = bytes[1] >> 4;
  if ((bytes[1] & 0x0C) != 0) return std::nullopt;  // reserved bits
  lrh.lnh = static_cast<Lnh>(bytes[1] & 0x03);
  lrh.dlid = get16(&bytes[2]);
  if ((bytes[4] & 0xF8) != 0) return std::nullopt;  // 5 reserved bits
  lrh.packet_length = get16(&bytes[4]) & 0x07FF;
  lrh.slid = get16(&bytes[6]);
  return lrh;
}

std::optional<Bth> decode_bth(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kBthBytes) return std::nullopt;
  Bth bth;
  bth.opcode = bytes[0];
  bth.solicited_event = (bytes[1] & 0x80) != 0;
  bth.mig_req = (bytes[1] & 0x40) != 0;
  bth.pad_count = (bytes[1] >> 4) & 0x03;
  bth.tver = bytes[1] & 0x0F;
  if (bth.tver != 0) return std::nullopt;  // only transport version 0
  bth.p_key = get16(&bytes[2]);
  if (bytes[4] != 0) return std::nullopt;  // reserved byte
  bth.dest_qp = get24(&bytes[5]);
  bth.ack_req = (bytes[8] & 0x80) != 0;
  if ((bytes[8] & 0x7F) != 0) return std::nullopt;  // 7 reserved bits
  bth.psn = get24(&bytes[9]);
  return bth;
}

std::vector<std::uint8_t> serialize_packet(
    Lrh lrh, Bth bth, std::span<const std::uint8_t> payload) {
  const auto pad =
      static_cast<std::uint8_t>((4 - payload.size() % 4) % 4);
  bth.pad_count = pad;
  lrh.lnh = Lnh::kBth;
  const std::size_t body =
      kLrhBytes + kBthBytes + payload.size() + pad + 4 /*ICRC*/;
  lrh.packet_length = static_cast<std::uint16_t>(body / 4);

  std::vector<std::uint8_t> out;
  out.reserve(body + 2);
  const auto lrh_bytes = encode(lrh);
  out.insert(out.end(), lrh_bytes.begin(), lrh_bytes.end());
  const auto bth_bytes = encode(bth);
  out.insert(out.end(), bth_bytes.begin(), bth_bytes.end());
  out.insert(out.end(), payload.begin(), payload.end());
  out.insert(out.end(), pad, 0);

  // ICRC covers the invariant fields; per spec the variant LRH fields (VL)
  // are masked. We compute it over the packet with the VL nibble forced to
  // 1s, as the spec prescribes for LRH:VL.
  std::vector<std::uint8_t> masked(out);
  masked[0] |= 0xF0;
  const auto ic = icrc(masked);
  out.push_back(static_cast<std::uint8_t>(ic >> 24));
  out.push_back(static_cast<std::uint8_t>(ic >> 16));
  out.push_back(static_cast<std::uint8_t>(ic >> 8));
  out.push_back(static_cast<std::uint8_t>(ic));

  const auto vc = vcrc(out);
  out.push_back(static_cast<std::uint8_t>(vc >> 8));
  out.push_back(static_cast<std::uint8_t>(vc));
  return out;
}

std::optional<WirePacket> parse_packet(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kLrhBytes + kBthBytes + 4 + 2) return std::nullopt;

  // VCRC covers everything before it.
  const auto vcrc_at = bytes.size() - 2;
  if (vcrc(bytes.first(vcrc_at)) !=
      static_cast<std::uint16_t>((bytes[vcrc_at] << 8) | bytes[vcrc_at + 1]))
    return std::nullopt;

  const auto lrh = decode_lrh(bytes);
  if (!lrh || lrh->lnh != Lnh::kBth) return std::nullopt;
  // Length field: LRH..ICRC inclusive, in 4-byte words.
  if (static_cast<std::size_t>(lrh->packet_length) * 4 + 2 != bytes.size())
    return std::nullopt;

  const auto bth = decode_bth(bytes.subspan(kLrhBytes));
  if (!bth) return std::nullopt;

  const auto icrc_at = bytes.size() - 2 - 4;
  std::vector<std::uint8_t> masked(bytes.begin(), bytes.begin() + icrc_at);
  masked[0] |= 0xF0;
  const std::uint32_t want =
      (static_cast<std::uint32_t>(bytes[icrc_at]) << 24) |
      (static_cast<std::uint32_t>(bytes[icrc_at + 1]) << 16) |
      (static_cast<std::uint32_t>(bytes[icrc_at + 2]) << 8) |
      bytes[icrc_at + 3];
  if (icrc(masked) != want) return std::nullopt;

  WirePacket packet;
  packet.lrh = *lrh;
  packet.bth = *bth;
  const auto payload_begin = kLrhBytes + kBthBytes;
  const auto payload_len = icrc_at - payload_begin;
  if (payload_len < bth->pad_count) return std::nullopt;
  packet.payload.assign(bytes.begin() + payload_begin,
                        bytes.begin() + payload_begin + payload_len -
                            bth->pad_count);
  return packet;
}

std::vector<std::uint8_t> to_wire(const Packet& p) {
  Lrh lrh;
  lrh.vl = 0;  // assigned per link by the output port; 0 as a placeholder
  lrh.sl = p.sl;
  lrh.dlid = p.destination;
  lrh.slid = p.source;
  Bth bth;
  bth.psn = p.sequence & 0x00FFFFFF;
  const std::vector<std::uint8_t> payload(p.payload_bytes, 0);
  return serialize_packet(lrh, bth, payload);
}

}  // namespace ibarb::iba
