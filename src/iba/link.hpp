// Physical link model: 1x / 4x / 12x widths (IBA 1.0 §5).
//
// All rates share the 2.5 GHz signalling clock; wider links move 4 or 12
// bits per signal time in parallel. In simulator cycles (1 byte per cycle on
// 1x), a 4x link moves 4 bytes per cycle and a 12x link 12.
#pragma once

#include <cstdint>
#include <string>

#include "iba/types.hpp"

namespace ibarb::iba {

enum class LinkRate : std::uint8_t {
  k1x = 1,
  k4x = 4,
  k12x = 12,
};

inline constexpr unsigned link_width(LinkRate r) noexcept {
  return static_cast<unsigned>(r);
}

/// Data bandwidth in Mbps (after 8b/10b coding).
inline constexpr double link_mbps(LinkRate r) noexcept {
  return kBaseLinkMbps * static_cast<double>(link_width(r));
}

/// Cycles to serialize `bytes` onto a link of rate `r` (rounded up).
inline constexpr Cycle serialization_cycles(std::uint32_t bytes,
                                            LinkRate r) noexcept {
  const unsigned w = link_width(r);
  return (static_cast<Cycle>(bytes) + w - 1) / w;
}

/// Point-to-point full-duplex link attributes. Propagation delay models the
/// cable/backplane flight time (the paper's networks are single-room NOWs;
/// a handful of cycles).
struct Link {
  LinkRate rate = LinkRate::k1x;
  Cycle propagation_delay = 2;

  Cycle transfer_cycles(std::uint32_t wire_bytes) const noexcept {
    return serialization_cycles(wire_bytes, rate) + propagation_delay;
  }
};

/// Parses "1x" / "4x" / "12x"; throws std::invalid_argument otherwise.
LinkRate parse_link_rate(const std::string& s);
std::string to_string(LinkRate r);

}  // namespace ibarb::iba
