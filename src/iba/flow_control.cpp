#include "iba/flow_control.hpp"

#include <cassert>

namespace ibarb::iba {

void CreditTracker::consume(VirtualLane vl, std::uint32_t wire_bytes) noexcept {
  const auto blocks = bytes_to_blocks(wire_bytes);
  assert(credits_[vl] >= blocks && "flow-control overdraw");
  credits_[vl] -= blocks;
}

void CreditTracker::release(VirtualLane vl, std::uint32_t wire_bytes) noexcept {
  const auto blocks = bytes_to_blocks(wire_bytes);
  credits_[vl] += blocks;
  assert(credits_[vl] <= capacity_[vl] && "credit release beyond capacity");
}

}  // namespace ibarb::iba
