// Per-VL packet FIFOs with byte-capacity accounting.
//
// Input buffers are finite (their space is what link-level credits
// advertise); host source queues use kUnbounded. PortBuffers keeps a 16-bit
// occupancy mask so the crossbar and arbiter hot paths skip empty VLs.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "iba/packet.hpp"
#include "iba/types.hpp"

namespace ibarb::sim {

inline constexpr std::uint32_t kUnbounded =
    std::numeric_limits<std::uint32_t>::max();

/// FIFO of whole packets sharing one VL's buffer space.
class VlFifo {
 public:
  VlFifo() = default;

  void set_capacity(std::uint32_t capacity_bytes) noexcept {
    capacity_bytes_ = capacity_bytes;
  }

  bool empty() const noexcept { return packets_.empty(); }
  std::size_t size() const noexcept { return packets_.size(); }
  std::uint32_t used_bytes() const noexcept { return used_bytes_; }
  std::uint32_t capacity_bytes() const noexcept { return capacity_bytes_; }

  bool can_accept(std::uint32_t wire_bytes) const noexcept {
    return capacity_bytes_ == kUnbounded ||
           used_bytes_ + wire_bytes <= capacity_bytes_;
  }

  std::uint32_t peak_bytes() const noexcept { return peak_bytes_; }
  std::size_t peak_packets() const noexcept { return peak_packets_; }

  void push(iba::Packet p) {
    used_bytes_ += p.wire_bytes();
    packets_.push_back(std::move(p));
    if (used_bytes_ > peak_bytes_) peak_bytes_ = used_bytes_;
    if (packets_.size() > peak_packets_) peak_packets_ = packets_.size();
  }

  const iba::Packet& front() const { return packets_.front(); }

  iba::Packet pop() {
    iba::Packet p = std::move(packets_.front());
    packets_.pop_front();
    used_bytes_ -= p.wire_bytes();
    return p;
  }

  /// Removes and returns every queued packet of `conn`, preserving the
  /// relative order of the rest. Fault recovery uses this to abandon
  /// in-flight packets of a rerouted connection: left behind, they would
  /// starve on a VL whose arbitration weight moved away with the route.
  std::vector<iba::Packet> extract_connection(std::uint32_t conn) {
    std::vector<iba::Packet> out;
    std::deque<iba::Packet> keep;
    for (auto& p : packets_) {
      if (p.connection == conn) {
        used_bytes_ -= p.wire_bytes();
        out.push_back(std::move(p));
      } else {
        keep.push_back(std::move(p));
      }
    }
    packets_.swap(keep);
    return out;
  }

 private:
  std::deque<iba::Packet> packets_;
  std::uint32_t used_bytes_ = 0;
  std::uint32_t capacity_bytes_ = kUnbounded;
  std::uint32_t peak_bytes_ = 0;    ///< High-water mark (telemetry).
  std::size_t peak_packets_ = 0;
};

/// The 16 per-VL FIFOs of one port side (input or output).
class PortBuffers {
 public:
  void set_capacity_all(std::uint32_t capacity_bytes) {
    for (auto& f : fifos_) f.set_capacity(capacity_bytes);
  }

  bool empty(iba::VirtualLane v) const noexcept { return fifos_[v].empty(); }
  bool all_empty() const noexcept { return occupancy_ == 0; }

  /// Bit v set when VL v holds at least one packet.
  std::uint16_t occupancy() const noexcept { return occupancy_; }

  bool can_accept(iba::VirtualLane v, std::uint32_t wire_bytes) const {
    return fifos_[v].can_accept(wire_bytes);
  }

  void push(iba::VirtualLane v, iba::Packet p) {
    fifos_[v].push(std::move(p));
    occupancy_ |= static_cast<std::uint16_t>(1u << v);
  }

  const iba::Packet& front(iba::VirtualLane v) const {
    return fifos_[v].front();
  }

  iba::Packet pop(iba::VirtualLane v) {
    iba::Packet p = fifos_[v].pop();
    if (fifos_[v].empty())
      occupancy_ &= static_cast<std::uint16_t>(~(1u << v));
    return p;
  }

  /// Removes every queued packet of `conn` on VL `v` (see VlFifo).
  std::vector<iba::Packet> extract_connection(iba::VirtualLane v,
                                              std::uint32_t conn) {
    auto out = fifos_[v].extract_connection(conn);
    if (fifos_[v].empty())
      occupancy_ &= static_cast<std::uint16_t>(~(1u << v));
    return out;
  }

  const VlFifo& vl(iba::VirtualLane v) const { return fifos_[v]; }

  std::size_t total_packets() const noexcept {
    std::size_t n = 0;
    for (const auto& f : fifos_) n += f.size();
    return n;
  }

 private:
  std::array<VlFifo, iba::kMaxVirtualLanes> fifos_;
  std::uint16_t occupancy_ = 0;
};

}  // namespace ibarb::sim
