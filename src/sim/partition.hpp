// Switch-affine network partitioning for the parallel simulator core.
//
// The fabric is split into `shards` contiguous blocks of switches (switch id
// order); every host is assigned to the shard of its uplink switch, so a
// host<->switch link is never a cut edge and the only cross-shard traffic is
// switch-to-switch packet delivery plus the matching upstream credit
// returns. The cut edges and the link model give the conservative
// synchronization window ("lookahead"): no event executed at time t on one
// shard can schedule an event before t + lookahead on another, so shards may
// run [W, W + lookahead) windows in parallel with a barrier in between and
// still merge cross-shard events in deterministic (time, seq) order.
//
// See docs/PARALLEL.md for the derivation and the determinism contract.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "iba/link.hpp"
#include "iba/packet.hpp"
#include "network/graph.hpp"

namespace ibarb::sim {

/// Hosts per shard follow their uplink switch; make_switch_affine rejects
/// fabrics larger than this — a sanity bound far above the paper's network
/// sizes, so a mis-scaled generator fails loudly instead of silently
/// building gigantic per-node tables.
inline constexpr std::size_t kMaxPartitionNodes = 4096;

struct Partition {
  unsigned shards = 1;
  /// node id -> owning shard.
  std::vector<std::uint32_t> shard_of;

  /// One directed cut edge: the wire from `node`'s output `port` into a
  /// switch owned by another shard.
  struct Cut {
    iba::NodeId node = 0;
    iba::PortIndex port = 0;
    iba::Link link{};
    std::uint32_t from = 0;  ///< Producing shard.
    std::uint32_t to = 0;    ///< Consuming shard.
    /// Fastest wire rate among the *downstream* switch's connected output
    /// ports — bounds how soon a packet entering that switch can finish a
    /// crossbar transfer and release credits back across the cut.
    iba::LinkRate best_downstream_rate = iba::LinkRate::k1x;
  };
  std::vector<Cut> cuts;
};

/// Parameters the lookahead window depends on (all from SimConfig / the
/// admitted flow set).
struct LookaheadModel {
  /// Smallest wire size (payload + header) any flow can put on a cut link.
  std::uint32_t min_wire_bytes = iba::kPacketOverheadBytes;
  iba::Cycle crossbar_delay = 0;
  double crossbar_speedup = 1.0;
};

/// Splits the graph into `shards` switch-affine blocks. Returns an engaged
/// partition, or disengages `partition` and fills `error` when the fabric
/// cannot be sharded (fewer than 2 switches per the clamp, more nodes than
/// the key width allows, or an unconnected host). `shards` is clamped to the
/// switch count; the result's `shards` field holds the effective count.
struct PartitionResult {
  bool ok = false;
  Partition partition;
  std::string error;
};
PartitionResult make_switch_affine(const network::FabricGraph& graph,
                                   unsigned shards);

/// Forward lookahead of one cut edge: cycles between the event that starts a
/// transmission on the upstream port and the earliest cross-shard delivery
/// it can cause (serialization of the smallest admitted packet plus wire
/// propagation).
iba::Cycle forward_latency(const iba::Link& link, std::uint32_t wire_bytes);

/// Reverse lookahead of one cut edge: the earliest a packet arriving at the
/// downstream switch can bounce an upstream credit release back across the
/// cut (crossbar pipeline delay plus the sped-up transfer of the smallest
/// packet on the switch's fastest output).
iba::Cycle reverse_latency(const Partition::Cut& cut, const LookaheadModel& m);

/// The safe parallel window width: min over every cut edge of
/// min(forward, reverse) latency. At least 1 for any physical link model
/// (serialization of a nonzero wire size is >= 1 cycle); callers must still
/// run the zero-lookahead guard because fault/experiment link models are
/// caller-supplied.
iba::Cycle safe_window(const Partition& p, const LookaheadModel& m);

/// Zero-lookahead guard: evaluates `latency` on every cut edge and returns a
/// non-empty diagnostic naming the first zero-latency cut (the topology must
/// then fall back to --shards 1). `latency` is injectable so tests can feed
/// a pathological link model; the simulator passes the min of
/// forward_latency and reverse_latency.
std::string zero_lookahead_error(
    const Partition& p,
    const std::function<iba::Cycle(const Partition::Cut&)>& latency);

}  // namespace ibarb::sim
