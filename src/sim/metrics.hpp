// Measurement machinery: per-connection delay/jitter/throughput and
// per-port utilization, gathered only during the steady-state window
// (paper §4.2: a transient period precedes measurement).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "iba/packet.hpp"
#include "iba/types.hpp"
#include "util/stats.hpp"

namespace ibarb::obs {
class SeriesRecorder;
}

namespace ibarb::sim {

/// Jitter interval edges, as multiples of the connection's nominal
/// inter-arrival time — the exact x-axis of the paper's Figure 5.
inline constexpr double kJitterEdges[] = {-1.0,       -3.0 / 4.0, -1.0 / 2.0,
                                          -1.0 / 4.0, -1.0 / 8.0, 1.0 / 8.0,
                                          1.0 / 4.0,  1.0 / 2.0,  3.0 / 4.0,
                                          1.0};
inline constexpr std::size_t kJitterBins =
    std::size(kJitterEdges) - 1 + 2;  // plus <-IAT and >+IAT overflow bins

/// Delay thresholds, as fractions Deadline/k — the x-axis of Figures 4/6.
inline constexpr double kDelayThresholdDivisors[] = {30, 25, 20, 15, 10,
                                                     5,  3,  2,  1.5, 1};
inline constexpr std::size_t kDelayThresholds =
    std::size(kDelayThresholdDivisors);

struct ConnectionMetrics {
  iba::ServiceLevel sl = 0;
  iba::Cycle deadline = 0;      ///< End-to-end guarantee, cycles.
  iba::Cycle nominal_iat = 0;   ///< CBR inter-arrival time, cycles.
  bool qos = true;              ///< False for best-effort background flows.

  // Measurement-window accumulators.
  std::uint64_t tx_packets = 0;
  std::uint64_t rx_packets = 0;
  std::uint64_t tx_wire_bytes = 0;
  std::uint64_t rx_wire_bytes = 0;
  std::uint64_t rx_payload_bytes = 0;
  util::RunningStats delay;     ///< End-to-end packet delay, cycles.
  /// rx counts with delay <= deadline / kDelayThresholdDivisors[i].
  std::array<std::uint64_t, kDelayThresholds> within_threshold{};
  std::array<std::uint64_t, kJitterBins> jitter_bins{};
  std::uint64_t deadline_misses = 0;
  /// Packets discarded by the fault layer (corruption, drop windows, or
  /// flushes of a downed port) during the measurement window.
  std::uint64_t dropped_packets = 0;

  iba::Cycle last_arrival = iba::kNeverCycle;  ///< For jitter pairing.

  /// Fraction of received packets meeting deadline/divisor. NaN when the
  /// connection received nothing — "no data" must stay distinguishable from
  /// "every packet missed" (the JSON writer maps NaN to null; table-format
  /// benches print a dash).
  double fraction_within(std::size_t threshold_index) const {
    return rx_packets ? static_cast<double>(within_threshold[threshold_index]) /
                            static_cast<double>(rx_packets)
                      : std::numeric_limits<double>::quiet_NaN();
  }

  double fraction_jitter_bin(std::size_t bin) const {
    std::uint64_t total = 0;
    for (const auto c : jitter_bins) total += c;
    return total ? static_cast<double>(jitter_bins[bin]) /
                       static_cast<double>(total)
                 : 0.0;
  }
};

struct PortMetrics {
  bool is_host_interface = false;  ///< Host→switch injection port.
  double link_mbps = 0.0;
  double reserved_mbps = 0.0;      ///< Filled by admission control.
  std::uint64_t busy_cycles = 0;   ///< Cycles spent serializing (window).
  std::uint64_t wire_bytes = 0;
  std::uint64_t packets = 0;

  double utilization(iba::Cycle window) const {
    return window ? static_cast<double>(busy_cycles) /
                        static_cast<double>(window)
                  : 0.0;
  }
};

/// Owned by the Simulator; the record_* hooks are called from the hot path
/// and are no-ops outside the measurement window.
class Metrics {
 public:
  void start_window(iba::Cycle now) {
    window_start_ = now;
    enabled_ = true;
  }
  void stop_window(iba::Cycle now) {
    window_end_ = now;
    enabled_ = false;
  }
  bool enabled() const noexcept { return enabled_; }
  iba::Cycle window_start() const noexcept { return window_start_; }
  iba::Cycle window_length() const noexcept {
    return window_end_ > window_start_ ? window_end_ - window_start_ : 0;
  }

  std::vector<ConnectionMetrics> connections;
  std::vector<PortMetrics> ports;  ///< Indexed by flat port id (simulator).

  void record_injection(std::uint32_t conn, const iba::Packet& p);
  void record_delivery(std::uint32_t conn, const iba::Packet& p,
                       iba::Cycle now);
  void record_tx(std::uint32_t flat_port, std::uint32_t wire_bytes,
                 iba::Cycle serialization);
  /// A packet of `conn` was discarded by the fault layer before delivery.
  void record_drop(std::uint32_t conn);

  /// rx packets delivered inside the window, cheap loop (phase control).
  std::uint64_t min_qos_rx() const;

  /// Wires the time-series recorder (null to detach). Series hooks fire for
  /// the WHOLE run, not just the measurement window — the series carries its
  /// own time axis, and the degrade/restore arc must stay visible even when
  /// a bench measures a sub-window.
  void set_series(obs::SeriesRecorder* series) noexcept { series_ = series; }

 private:
  bool enabled_ = false;
  iba::Cycle window_start_ = 0;
  iba::Cycle window_end_ = 0;
  obs::SeriesRecorder* series_ = nullptr;
};

}  // namespace ibarb::sim
