// Discrete-event core: a deterministic time-ordered queue.
//
// Ties at the same cycle are served in insertion order (monotonic sequence
// number), which makes every simulation bit-reproducible for a given seed.
//
// Two interchangeable implementations share one slab pool of Event storage
// (events are moved in on push and moved out on pop — never copied, and the
// structures themselves only shuffle 4-byte pool indices):
//
//  * kWheel (default) — a bucketed timing wheel of 2^16 one-cycle buckets
//    covering the sliding window [base, base + 2^16). Every bucket is a FIFO
//    of pool indices; because the window is no wider than the wheel, a bucket
//    holds at most one distinct timestamp at a time, so FIFO order *is*
//    sequence order. A hierarchical three-level occupancy bitmap finds the
//    next non-empty bucket in O(1). Events beyond the horizon (or, defensively,
//    behind `base`) overflow into a binary min-heap ordered by (time, seq);
//    pop is a two-way merge of the wheel head and the heap head under the
//    exact (time, seq) key, so the global order is identical to a single
//    totally-ordered queue. See docs/PERF.md for the determinism argument.
//
//  * kBinaryHeap — the pre-wheel behaviour (a std::priority_queue of whole
//    Events ordered by (time, seq), which re-copies ~sizeof(Event) bytes per
//    sift level on every push and pop), kept selectable at runtime for
//    differential tests and old-vs-new benchmarks. Its one change from the
//    pre-wheel code: pop() moves the top event out instead of copying it.
#pragma once

#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <queue>
#include <vector>

#include "iba/packet.hpp"
#include "iba/types.hpp"

namespace ibarb::sim {

enum class EventType : std::uint8_t {
  kGenerate,      ///< A flow emits its next packet (aux = flow index).
  kLinkDeliver,   ///< Packet fully received at (node, port) input.
  kTxComplete,    ///< (node, port) finished serializing onto the link.
  kXferComplete,  ///< Crossbar transfer into (node, port) output finished.
  kProbe,         ///< Periodic bookkeeping (phase control).
  kControl,       ///< Simulator::call_at callback (aux = callback id).
  /// Parallel engine only: upstream credit return for a crossbar transfer
  /// that may cross a shard boundary (node/port = upstream output, aux =
  /// wire bytes). The sequential core releases the credits inline at the
  /// start of on_xfer_complete; the shard engine reifies that half as its
  /// own event, keyed to pop immediately before the transfer-completion it
  /// belongs to (src/sim/shard.hpp).
  kCreditRelease,
};

struct Event {
  iba::Cycle time = 0;
  std::uint64_t seq = 0;  ///< Tie-breaker; assigned by the queue.
  EventType type = EventType::kProbe;
  iba::NodeId node = iba::kInvalidNode;
  iba::PortIndex port = 0;
  iba::VirtualLane vl = 0;
  std::uint32_t aux = 0;  ///< Flow index (kGenerate) / input port (kXfer).
  iba::Packet packet;     ///< Payload for kLinkDeliver / kXferComplete.
};

enum class EventQueueImpl : std::uint8_t {
  kWheel,       ///< Bucketed timing wheel + overflow heap (default).
  kBinaryHeap,  ///< Legacy binary heap (reference/differential baseline).
};

class EventQueue {
 public:
  /// Always-on plain counters published to obs::TelemetryRegistry by the
  /// simulator's snapshot probe. A handful of uint64 increments per
  /// operation keeps the hot path free of any registry indirection.
  static constexpr std::size_t kResidencyBins = 18;
  struct Stats {
    std::uint64_t pushes = 0;
    std::uint64_t pops = 0;
    /// Wheel mode only: events pushed beyond the 2^16-cycle horizon.
    std::uint64_t overflow_pushes = 0;
    std::uint64_t peak_size = 0;
    /// Wheel mode only: bin i counts pushes whose distance-to-window-start
    /// had bit_width i (bin 0 = "due now", last bin = saturated).
    std::array<std::uint64_t, kResidencyBins> residency_log2{};
  };

  explicit EventQueue(EventQueueImpl impl = EventQueueImpl::kWheel)
      : impl_(impl) {
    if (impl_ == EventQueueImpl::kWheel) {
      buckets_.resize(kWheelBuckets);
      bits0_.assign(kWheelBuckets / 64, 0);
      bits1_.assign(kWheelBuckets / (64 * 64), 0);
    }
  }

  EventQueueImpl impl() const noexcept { return impl_; }

  void push(Event e) {
    e.seq = next_seq_++;
    ++stats_.pushes;
    if (impl_ == EventQueueImpl::kBinaryHeap) {
      heap_.push(std::move(e));
      ++size_;
      if (size_ > stats_.peak_size) stats_.peak_size = size_;
      return;
    }
    const iba::Cycle t = e.time;
    const std::uint64_t seq = e.seq;
    const std::uint32_t idx = alloc_slot(std::move(e));
    if (t >= base_ && t - base_ < kWheelBuckets) {
      const auto b = static_cast<std::uint32_t>(t & kWheelMask);
      const auto bin = static_cast<std::size_t>(std::bit_width(t - base_));
      ++stats_.residency_log2[bin < kResidencyBins ? bin : kResidencyBins - 1];
      Bucket& bk = buckets_[b];
      if (bk.head == kNull) {
        bk.head = idx;
        set_bit(b);
      } else {
        next_[bk.tail] = idx;
      }
      bk.tail = idx;
      ++wheel_count_;
    } else {
      ++stats_.overflow_pushes;
      ++stats_.residency_log2[kResidencyBins - 1];
      overflow_.push_back(HeapNode{t, seq, idx});
      sift_up(overflow_.size() - 1);
    }
    peek_valid_ = false;
    ++size_;
    if (size_ > stats_.peak_size) stats_.peak_size = size_;
  }

  /// Parallel-shard push (src/sim/shard.cpp): `e.seq` arrives preset with
  /// the engine's replayed sequential key instead of being stamped from the
  /// monotone counter, and residency/overflow statistics are measured from
  /// `origin` — the cycle the event was created at — so a sharded run's
  /// telemetry matches the sequential run's no matter when a window barrier
  /// handed the event over. `count_stats` is false for engine-internal
  /// events (credit releases, queue migration) that have no sequential
  /// counterpart. Unlike push(), a wheel bucket is kept sorted by seq:
  /// same-cycle events from different creator nodes of one shard can arrive
  /// out of key order, and bucket order must *be* (time, seq) order for the
  /// merge to stay deterministic. Keys arrive nearly sorted, so the
  /// tail-append fast path dominates.
  void push_keyed(Event e, iba::Cycle origin, bool count_stats) {
    if (count_stats) ++stats_.pushes;
    if (impl_ == EventQueueImpl::kBinaryHeap) {
      heap_.push(std::move(e));
      ++size_;
      if (size_ > stats_.peak_size) stats_.peak_size = size_;
      return;
    }
    const iba::Cycle t = e.time;
    const std::uint64_t seq = e.seq;
    const std::uint32_t idx = alloc_slot(std::move(e));
    if (count_stats) {
      // The sequential core pushes with base_ == creation cycle, so its
      // residency bin and overflow counter are functions of (t - origin).
      const iba::Cycle dist = t >= origin ? t - origin : 0;
      if (dist < kWheelBuckets) {
        const auto bin = static_cast<std::size_t>(std::bit_width(dist));
        ++stats_.residency_log2[bin < kResidencyBins ? bin : kResidencyBins - 1];
      } else {
        ++stats_.overflow_pushes;
        ++stats_.residency_log2[kResidencyBins - 1];
      }
    }
    if (t >= base_ && t - base_ < kWheelBuckets) {
      const auto b = static_cast<std::uint32_t>(t & kWheelMask);
      Bucket& bk = buckets_[b];
      if (bk.head == kNull) {
        bk.head = bk.tail = idx;
        set_bit(b);
      } else if (pool_[bk.tail].seq <= seq) {
        next_[bk.tail] = idx;
        bk.tail = idx;
      } else if (pool_[bk.head].seq > seq) {
        next_[idx] = bk.head;
        bk.head = idx;
      } else {
        std::uint32_t p = bk.head;
        while (next_[p] != kNull && pool_[next_[p]].seq <= seq) p = next_[p];
        next_[idx] = next_[p];
        next_[p] = idx;
        if (next_[idx] == kNull) bk.tail = idx;
      }
      ++wheel_count_;
    } else {
      overflow_.push_back(HeapNode{t, seq, idx});
      sift_up(overflow_.size() - 1);
    }
    peek_valid_ = false;
    ++size_;
    if (size_ > stats_.peak_size) stats_.peak_size = size_;
  }

  /// Raises the monotone tie-break counter to at least `floor`, so events
  /// push()ed after a shard-engine drain-back sort after every migrated key.
  void ensure_seq_floor(std::uint64_t floor) {
    if (next_seq_ < floor) next_seq_ = floor;
  }

  /// Next value the monotone counter would stamp. The shard engine reads it
  /// on adopt() to seed its replayed counter above every existing key.
  std::uint64_t next_seq() const noexcept { return next_seq_; }

  /// Counts an event the shard engine executed without ever queueing it (a
  /// same-window "nursery" event, src/sim/shard.hpp): one push and one pop,
  /// with the residency bin the sequential core would have recorded for an
  /// event created at `origin` and due at `t`. Keeps the queue telemetry a
  /// pure function of the event order rather than of window placement.
  void count_bypass(iba::Cycle t, iba::Cycle origin) {
    ++stats_.pushes;
    ++stats_.pops;
    if (impl_ == EventQueueImpl::kBinaryHeap) return;  // heap: no residency
    const iba::Cycle dist = t >= origin ? t - origin : 0;
    if (dist < kWheelBuckets) {
      const auto bin = static_cast<std::size_t>(std::bit_width(dist));
      ++stats_.residency_log2[bin < kResidencyBins ? bin : kResidencyBins - 1];
    } else {
      ++stats_.overflow_pushes;
      ++stats_.residency_log2[kResidencyBins - 1];
    }
  }

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  const Event& top() const {
    if (impl_ == EventQueueImpl::kBinaryHeap) return heap_.top();
    return pool_[peek().idx];
  }

  const Stats& stats() const noexcept { return stats_; }

  Event pop() {
    ++stats_.pops;
    return pop_impl();
  }

  /// Shard-engine migration pop: identical order, but not counted — the
  /// event was already popped (or will be popped) once by whichever engine
  /// executes it, and telemetry must see exactly one pop per handled event.
  Event pop_uncounted() { return pop_impl(); }

 private:
  Event pop_impl() {
    if (impl_ == EventQueueImpl::kBinaryHeap) {
      // priority_queue exposes the top read-only; moving out of it is safe
      // (pop() only shuffles elements, never reads the payload) and skips one
      // whole-Event copy per pop.
      Event e = std::move(const_cast<Event&>(heap_.top()));
      heap_.pop();
      --size_;
      return e;
    }
    const Peek p = peek();
    peek_valid_ = false;
    if (p.from_wheel) {
      Bucket& bk = buckets_[p.bucket];
      bk.head = next_[p.idx];
      if (bk.head == kNull) clear_bit(p.bucket);
      --wheel_count_;
      // Nothing in either structure precedes this event, so the window may
      // slide up to it; pushes behind it would go to the overflow heap.
      base_ = pool_[p.idx].time;
    } else {
      heap_pop_root();
      if (pool_[p.idx].time > base_) base_ = pool_[p.idx].time;
    }
    --size_;
    Event out = std::move(pool_[p.idx]);
    free_.push_back(p.idx);
    return out;
  }

 private:
  // --- Shared slab pool ----------------------------------------------------

  static constexpr std::uint32_t kNull = 0xFFFF'FFFFu;

  std::uint32_t alloc_slot(Event&& e) {
    if (free_.empty()) {
      pool_.push_back(std::move(e));
      next_.push_back(kNull);
      return static_cast<std::uint32_t>(pool_.size() - 1);
    }
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    pool_[idx] = std::move(e);
    next_[idx] = kNull;
    return idx;
  }

  // --- Overflow / legacy binary heap over (time, seq, pool index) ----------

  struct HeapNode {
    iba::Cycle time;
    std::uint64_t seq;
    std::uint32_t idx;

    bool before(const HeapNode& o) const noexcept {
      return time != o.time ? time < o.time : seq < o.seq;
    }
  };

  void sift_up(std::size_t i) {
    HeapNode n = overflow_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!n.before(overflow_[parent])) break;
      overflow_[i] = overflow_[parent];
      i = parent;
    }
    overflow_[i] = n;
  }

  void heap_pop_root() {
    HeapNode last = overflow_.back();
    overflow_.pop_back();
    if (overflow_.empty()) return;
    std::size_t i = 0;
    const std::size_t n = overflow_.size();
    while (true) {
      const std::size_t l = 2 * i + 1;
      if (l >= n) break;
      const std::size_t r = l + 1;
      const std::size_t child =
          (r < n && overflow_[r].before(overflow_[l])) ? r : l;
      if (!overflow_[child].before(last)) break;
      overflow_[i] = overflow_[child];
      i = child;
    }
    overflow_[i] = last;
  }

  // --- Timing wheel --------------------------------------------------------

  static constexpr std::uint32_t kWheelBuckets = 1u << 16;
  static constexpr std::uint64_t kWheelMask = kWheelBuckets - 1;

  /// Intrusive FIFO of pool indices chained through next_; 8 bytes per bucket
  /// keeps the whole wheel at 512 KiB and one pointer chase per operation.
  struct Bucket {
    std::uint32_t head = kNull;
    std::uint32_t tail = kNull;
  };

  /// Called only for a previously-empty bucket, so the upper levels need
  /// updating only when their word was all-zero too.
  void set_bit(std::uint32_t b) {
    std::uint64_t& w0 = bits0_[b >> 6];
    if (w0 == 0) {
      std::uint64_t& w1 = bits1_[b >> 12];
      if (w1 == 0) bits2_ |= 1ull << (b >> 12);
      w1 |= 1ull << ((b >> 6) & 63);
    }
    w0 |= 1ull << (b & 63);
  }

  void clear_bit(std::uint32_t b) {
    if ((bits0_[b >> 6] &= ~(1ull << (b & 63))) != 0) return;
    if ((bits1_[b >> 12] &= ~(1ull << ((b >> 6) & 63))) != 0) return;
    bits2_ &= ~(1ull << (b >> 12));
  }

  /// Bits strictly above position k of a 64-bit word.
  static constexpr std::uint64_t above(unsigned k) noexcept {
    return k == 63 ? 0 : ~0ull << (k + 1);
  }

  /// First occupied bucket with index >= b, or -1. O(1): at most one probe
  /// per bitmap level.
  int find_from(std::uint32_t b) const {
    std::uint32_t w = b >> 6;
    if (const auto m = bits0_[w] & (~0ull << (b & 63)))
      return static_cast<int>((w << 6) | std::countr_zero(m));
    std::uint32_t s = w >> 6;
    if (const auto m1 = bits1_[s] & above(w & 63)) {
      w = (s << 6) | static_cast<std::uint32_t>(std::countr_zero(m1));
      return static_cast<int>((w << 6) | std::countr_zero(bits0_[w]));
    }
    const auto m2 = bits2_ & above(s);
    if (m2 == 0) return -1;
    s = static_cast<std::uint32_t>(std::countr_zero(m2));
    w = (s << 6) | static_cast<std::uint32_t>(std::countr_zero(bits1_[s]));
    return static_cast<int>((w << 6) | std::countr_zero(bits0_[w]));
  }

  /// First occupied bucket at or cyclically after b (the window start).
  std::uint32_t find_next(std::uint32_t b) const {
    int r = find_from(b);
    if (r < 0) r = find_from(0);
    assert(r >= 0 && "wheel_count_ > 0 but no bucket bit set");
    return static_cast<std::uint32_t>(r);
  }

  // --- Two-way (time, seq) merge of wheel head and heap head ---------------

  struct Peek {
    std::uint32_t idx = 0;
    bool from_wheel = false;
    std::uint32_t bucket = 0;
  };

  /// Memoizes the merge so the usual top()-then-pop() pattern pays for one
  /// bitmap search per event, not two. Invalidated by push and pop.
  const Peek& peek() const {
    if (!peek_valid_) {
      cached_peek_ = find_peek();
      peek_valid_ = true;
    }
    return cached_peek_;
  }

  Peek find_peek() const {
    assert(size_ > 0 && "peek/pop on an empty EventQueue");
    if (wheel_count_ == 0) return Peek{overflow_.front().idx, false, 0};
    const std::uint32_t b =
        find_next(static_cast<std::uint32_t>(base_ & kWheelMask));
    const std::uint32_t wi = buckets_[b].head;
    if (!overflow_.empty()) {
      const Event& w = pool_[wi];
      const HeapNode& h = overflow_.front();
      if (h.time < w.time || (h.time == w.time && h.seq < w.seq))
        return Peek{h.idx, false, 0};
    }
    return Peek{wi, true, b};
  }

  // --- Legacy binary-heap mode --------------------------------------------

  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  EventQueueImpl impl_;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;  ///< kBinaryHeap.
  std::vector<Event> pool_;
  std::vector<std::uint32_t> next_;  ///< Per-slot intrusive bucket link.
  std::vector<std::uint32_t> free_;
  std::vector<HeapNode> overflow_;  ///< Far-future/past events (kWheel).

  std::vector<Bucket> buckets_;      ///< Empty in kBinaryHeap mode.
  std::vector<std::uint64_t> bits0_; ///< One bit per bucket.
  std::vector<std::uint64_t> bits1_; ///< One bit per bits0_ word.
  std::uint64_t bits2_ = 0;          ///< One bit per bits1_ word.
  iba::Cycle base_ = 0;              ///< Window start; never decreases.
  std::size_t wheel_count_ = 0;
  mutable Peek cached_peek_{};
  mutable bool peek_valid_ = false;

  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
  Stats stats_;
};

}  // namespace ibarb::sim
