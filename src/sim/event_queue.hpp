// Discrete-event core: a deterministic time-ordered queue.
//
// Ties at the same cycle are served in insertion order (monotonic sequence
// number), which makes every simulation bit-reproducible for a given seed.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "iba/packet.hpp"
#include "iba/types.hpp"

namespace ibarb::sim {

enum class EventType : std::uint8_t {
  kGenerate,      ///< A flow emits its next packet (aux = flow index).
  kLinkDeliver,   ///< Packet fully received at (node, port) input.
  kTxComplete,    ///< (node, port) finished serializing onto the link.
  kXferComplete,  ///< Crossbar transfer into (node, port) output finished.
  kProbe,         ///< Periodic bookkeeping (phase control).
};

struct Event {
  iba::Cycle time = 0;
  std::uint64_t seq = 0;  ///< Tie-breaker; assigned by the queue.
  EventType type = EventType::kProbe;
  iba::NodeId node = iba::kInvalidNode;
  iba::PortIndex port = 0;
  iba::VirtualLane vl = 0;
  std::uint32_t aux = 0;  ///< Flow index (kGenerate) / input port (kXfer).
  iba::Packet packet;     ///< Payload for kLinkDeliver / kXferComplete.
};

class EventQueue {
 public:
  void push(Event e) {
    e.seq = next_seq_++;
    heap_.push(std::move(e));
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }
  const Event& top() const { return heap_.top(); }

  Event pop() {
    Event e = heap_.top();
    heap_.pop();
    return e;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ibarb::sim
