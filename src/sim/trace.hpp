// Packet event tracing: a bounded ring buffer of per-packet milestones,
// cheap enough to leave compiled in (disabled by default; enable via
// SimConfig::trace_capacity). Used for debugging table configurations and
// by the per-packet-journey assertions in the test suite.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "iba/packet.hpp"
#include "iba/types.hpp"

namespace ibarb::sim {

enum class TraceEvent : std::uint8_t {
  kInject,   ///< Generated at the source host.
  kLinkTx,   ///< Started serializing at (node, port).
  kXbar,     ///< Crossed a switch crossbar onto (node, out-port).
  kDeliver,  ///< Landed at the destination host.
  kDrop,     ///< Discarded by a fault (corruption, drop window, or flush).
};

const char* to_string(TraceEvent e);

struct TraceRecord {
  iba::Cycle time = 0;
  TraceEvent event = TraceEvent::kInject;
  iba::NodeId node = iba::kInvalidNode;
  iba::PortIndex port = 0;
  iba::VirtualLane vl = 0;
  std::uint64_t packet = 0;
  iba::ConnectionId connection = iba::kInvalidConnection;
};

class PacketTrace {
 public:
  PacketTrace() = default;  ///< Disabled.
  explicit PacketTrace(std::size_t capacity) : capacity_(capacity) {
    ring_.reserve(capacity);
  }

  bool enabled() const noexcept { return capacity_ != 0; }

  void record(iba::Cycle time, TraceEvent event, iba::NodeId node,
              iba::PortIndex port, iba::VirtualLane vl,
              const iba::Packet& p) {
    append(TraceRecord{time, event, node, port, vl, p.id, p.connection});
  }

  /// Appends an already-built record with the same ring semantics as
  /// record(). This is the shard engine's merge path: workers buffer
  /// records per window and the orchestrator appends them in final
  /// (time, replay-key) order, so the ring's contents match a sequential
  /// run byte for byte.
  void append(const TraceRecord& r) {
    if (capacity_ == 0) return;
    if (ring_.size() < capacity_) {
      ring_.push_back(r);
    } else {
      ring_[next_ % capacity_] = r;  // overwrite oldest
    }
    ++next_;
  }

  /// Records in chronological order (oldest first).
  std::vector<TraceRecord> chronological() const;

  /// The milestones of one packet, oldest first.
  std::vector<TraceRecord> journey(std::uint64_t packet_id) const;

  std::uint64_t total_recorded() const noexcept { return next_; }
  std::size_t size() const noexcept { return ring_.size(); }

  void dump_csv(std::ostream& os) const;

 private:
  std::size_t capacity_ = 0;
  std::uint64_t next_ = 0;
  std::vector<TraceRecord> ring_;
};

}  // namespace ibarb::sim
