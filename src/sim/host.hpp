// Host (channel adapter) state and traffic-flow descriptors.
//
// A host has a single port: the injection side mirrors a switch output port
// (per-VL source queues, its own VLArbitrationTable arbiter, credits toward
// the switch input buffer); the receive side is an instantaneous sink that
// returns credits as soon as a packet lands.
#pragma once

#include <cstdint>

#include "sim/switch.hpp"
#include "util/rng.hpp"

namespace ibarb::sim {

enum class GeneratorKind : std::uint8_t {
  kCbr,      ///< Fixed inter-packet interval (drift-free nominal clock).
  kPoisson,  ///< Exponential intervals with the given mean.
  kOnOffVbr, ///< Bursts at peak rate separated by silences (same mean rate).
};

struct FlowSpec {
  iba::NodeId src_host = iba::kInvalidNode;
  iba::NodeId dst_host = iba::kInvalidNode;
  iba::ServiceLevel sl = 0;
  std::uint32_t payload_bytes = 256;
  iba::Cycle interval = 1000;       ///< Nominal mean inter-packet time.
  GeneratorKind kind = GeneratorKind::kCbr;
  iba::Cycle start_offset = 0;
  iba::Cycle deadline = 0;          ///< End-to-end guarantee (metrics).
  bool qos = true;                  ///< False for best-effort background.
  bool management = false;          ///< VL15 traffic.
  /// Externally driven flow: the simulator registers the connection (so
  /// metrics and routing apply) but never self-generates packets — a
  /// transport layer injects them via Simulator::inject_external. The
  /// `interval` still serves as the nominal inter-arrival time for metrics.
  bool external = false;
  std::uint64_t seed = 0;

  // kOnOffVbr shape: packets per burst (geometric mean) and the fraction of
  // time spent bursting; peak interval = interval * on_fraction.
  double burst_mean_packets = 16.0;
  double on_fraction = 0.25;
};

struct FlowState {
  FlowSpec spec;
  util::Xoshiro256 rng{0};
  iba::Cycle next_nominal = 0;   ///< CBR drift-free clock.
  std::uint32_t next_sequence = 0;
  std::uint32_t burst_left = 0;  ///< kOnOffVbr packets left in this burst.
  bool stopped = false;          ///< Set by Simulator::stop_flow.
  /// True while a kGenerate event for this flow sits in the queue. Lets
  /// resume_flow avoid double-scheduling the generator chain.
  bool generator_scheduled = false;
  /// Misbehaving-source multiplier on the generation rate (1.0 = nominal).
  /// Set by Simulator::set_flow_overdrive during fault overload bursts.
  double overdrive = 1.0;
};

struct HostState {
  iba::NodeId node = iba::kInvalidNode;
  OutputPort out;  ///< Injection port (port 0); source queues unbounded.
};

}  // namespace ibarb::sim
