#include "sim/simulator.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "sim/shard.hpp"

namespace ibarb::sim {

namespace {

/// LID convention used across the library: host LID = node id + 1 (LID 0 is
/// reserved/invalid in IBA). The subnet manager mirrors this assignment.
iba::Lid lid_of(iba::NodeId host) { return static_cast<iba::Lid>(host + 1); }
iba::NodeId node_of(iba::Lid lid) { return static_cast<iba::NodeId>(lid - 1); }

/// True while the calling thread executes a shard window (sim/shard.cpp).
bool in_parallel() { return t_shard != nullptr; }

}  // namespace

/// Adapts one switch's port state to the sched::CrossbarPorts view. The
/// eligibility queries and grant() reproduce exactly what the pre-refactor
/// Simulator::try_start_transfer checked and committed, in the same order,
/// so WrrCrossbar over this view is bit-identical to the old hard-wired
/// loop (tests/golden/, test_crossbar differential).
class XbarView final : public sched::CrossbarPorts {
 public:
  XbarView(Simulator& sim, std::uint32_t switch_index)
      : sim_(sim), sw_(sim.switches_[switch_index]) {}

  unsigned port_count() const override {
    return static_cast<unsigned>(sw_.in.size());
  }

  iba::Cycle now() const override { return sim_.now_cur(); }

  bool input_ready(iba::PortIndex in) const override {
    const InputPort& ip = sw_.in[in];
    return ip.wired && !ip.xbar_tx_busy && !ip.buffers.all_empty();
  }

  std::uint16_t input_occupancy(iba::PortIndex in) const override {
    return sw_.in[in].buffers.occupancy();
  }

  iba::PortIndex head_output(iba::PortIndex in,
                             iba::VirtualLane vl) const override {
    return sim_.route_port(sw_, sw_.in[in].buffers.front(vl).destination);
  }

  std::uint32_t head_bytes(iba::PortIndex in,
                           iba::VirtualLane vl) const override {
    return sw_.in[in].buffers.front(vl).wire_bytes();
  }

  bool output_free(iba::PortIndex out) const override {
    return !sw_.out[out].xbar_rx_busy;
  }

  bool output_accepts(iba::PortIndex in, iba::VirtualLane vl,
                      iba::PortIndex out) const override {
    const iba::Packet& head = sw_.in[in].buffers.front(vl);
    const OutputPort& op = sw_.out[out];
    const iba::VirtualLane out_vl =
        head.management ? iba::kManagementVl : op.sl_map.map(head.sl);
    return op.queues.can_accept(out_vl, head.wire_bytes());
  }

  bool head_guaranteed(iba::PortIndex in, iba::VirtualLane vl,
                       iba::PortIndex out) const override {
    const iba::Packet& head = sw_.in[in].buffers.front(vl);
    if (head.management) return true;
    const OutputPort& op = sw_.out[out];
    const iba::VirtualLane out_vl = op.sl_map.map(head.sl);
    return (op.arbiter.table().vl_mask_high() >> out_vl) & 1u;
  }

  void grant(iba::PortIndex in, iba::VirtualLane vl,
             iba::PortIndex out) override {
    InputPort& ip = sw_.in[in];
    OutputPort& op = sw_.out[out];
    const iba::Packet& head = ip.buffers.front(vl);

    ip.xbar_tx_busy = true;
    op.xbar_rx_busy = true;

    const auto link_cycles =
        iba::serialization_cycles(head.wire_bytes(), op.link.rate);
    const auto xfer_cycles = std::max<iba::Cycle>(
        1, static_cast<iba::Cycle>(static_cast<double>(link_cycles) /
                                   sim_.cfg_.crossbar_speedup));
    const std::uint32_t wire = head.wire_bytes();
    Event done;
    done.time = sim_.now_cur() + sim_.cfg_.crossbar_delay + xfer_cycles;
    done.type = EventType::kXferComplete;
    done.node = sw_.node;
    done.port = out;
    done.vl = vl;
    done.aux = in;
    const iba::Cycle done_time = done.time;
    sim_.push_event(std::move(done));

    if (in_parallel()) {
      // The upstream credit release this transfer will perform is fully
      // determined now. on_xfer_complete applies it inline — before its
      // local work — on the sequential path; here it becomes its own event
      // so it can cross a shard boundary. The shard engine keys it
      // immediately *before* the kXferComplete above, no event anywhere can
      // order between the two halves, and they touch disjoint port state —
      // so the split is unobservable.
      const auto up = sim_.graph_.peer(sw_.node, in);
      assert(up.has_value());
      Event rel;
      rel.time = done_time;
      rel.type = EventType::kCreditRelease;
      rel.node = up->node;
      rel.port = up->port;
      rel.vl = vl;
      rel.aux = wire;
      sim_.push_event(std::move(rel));
    }
  }

 private:
  Simulator& sim_;
  SwitchState& sw_;
};

Simulator::Simulator(const network::FabricGraph& graph,
                     const network::Routes& routes, SimConfig cfg)
    : graph_(graph), routes_(routes), cfg_(cfg), queue_(cfg.queue_impl),
      trace_(cfg.trace_capacity) {
  buffer_capacity_bytes_ =
      cfg_.buffer_packets *
      (cfg_.max_payload_bytes + iba::kPacketOverheadBytes);

  index_.assign(graph_.node_count(), 0);
  std::uint32_t flat = 0;

  const auto init_output = [&](OutputPort& op, iba::NodeId node,
                               iba::PortIndex port, bool host_interface) {
    const auto peer = graph_.peer(node, port);
    if (!peer) return;
    op.wired = true;
    op.peer = network::PortRef{peer->node, peer->port};
    op.link = graph_.link(node, port);
    op.flat_id = flat++;
    op.sl_map = iba::SlToVlMappingTable::identity(iba::kManagementVl);
    op.credits = iba::CreditTracker(
        iba::bytes_to_blocks(buffer_capacity_bytes_));
    PortMetrics pm;
    pm.is_host_interface = host_interface;
    pm.link_mbps = iba::link_mbps(op.link.rate);
    metrics_.ports.push_back(pm);
  };

  for (iba::NodeId id = 0; id < graph_.node_count(); ++id) {
    if (graph_.is_switch(id)) {
      index_[id] = static_cast<std::uint32_t>(switches_.size());
      SwitchState sw;
      sw.node = id;
      const unsigned ports = graph_.port_count(id);
      sw.in.resize(ports);
      sw.out.resize(ports);
      for (unsigned p = 0; p < ports; ++p) {
        if (graph_.peer(id, static_cast<iba::PortIndex>(p))) {
          sw.in[p].wired = true;
          sw.in[p].buffers.set_capacity_all(buffer_capacity_bytes_);
        }
        init_output(sw.out[p], id, static_cast<iba::PortIndex>(p),
                    /*host_interface=*/false);
      }
      switches_.push_back(std::move(sw));
      xbar_.push_back(sched::make_crossbar(cfg_.crossbar_impl, ports));
    } else {
      index_[id] = static_cast<std::uint32_t>(hosts_.size());
      HostState host;
      host.node = id;
      init_output(host.out, id, 0, /*host_interface=*/true);
      // Source queues are unbounded; leave capacities at kUnbounded.
      hosts_.push_back(std::move(host));
    }
  }

  // Publish the simulator's always-on component counters into the registry
  // at snapshot time. Arbiter/port/buffer figures are aggregated across all
  // output ports; per-VL output occupancy peaks keep the "which VL starved?"
  // question answerable without per-port blow-up.
  telemetry_.add_probe([this](obs::Snapshot& snap) {
    EventQueue::Stats qs = queue_.stats();
    qs.pops -= serial_release_pops_;
    if (engine_) engine_->fold_stats(qs);
    snap.add_counter("queue.pushes", qs.pushes);
    snap.add_counter("queue.pops", qs.pops);
    snap.add_counter("queue.overflow_pushes", qs.overflow_pushes);
    // Pending-event census sampled at fixed kPendingSampleEvery marks — the
    // one queue-depth figure the sequential and the sharded engine compute
    // identically (a true per-push peak is tie-order-sensitive and would
    // break the shard-count-invariance of snapshots).
    snap.merge_gauge("queue.peak_size", static_cast<double>(pending_peak_),
                     obs::MergePolicy::kMax);
    snap.add_histogram("queue.residency_log2", qs.residency_log2.data(),
                       qs.residency_log2.size());

    snap.add_counter("sim.events", events_);
    snap.add_counter("sim.purged_in_flight_late", purged_late_);
    snap.add_counter("trace.records", trace_.total_recorded());

    iba::VlArbiter::Stats arb;
    std::uint64_t credit_stalls = 0;
    std::uint64_t out_peak_bytes = 0;
    std::array<std::uint64_t, iba::kMaxVirtualLanes> vl_peak_packets{};
    const auto fold = [&](const OutputPort& op) {
      if (!op.wired) return;
      const iba::VlArbiter::Stats& s = op.arbiter.stats();
      arb.decisions += s.decisions;
      arb.vl15_bypasses += s.vl15_bypasses;
      arb.high_picks += s.high_picks;
      arb.low_picks += s.low_picks;
      arb.high_skips += s.high_skips;
      arb.low_skips += s.low_skips;
      arb.limit_blocks += s.limit_blocks;
      arb.idle += s.idle;
      credit_stalls += op.credit_stalls;
      for (unsigned v = 0; v < iba::kMaxVirtualLanes; ++v) {
        const VlFifo& f = op.queues.vl(static_cast<iba::VirtualLane>(v));
        out_peak_bytes = std::max<std::uint64_t>(out_peak_bytes,
                                                 f.peak_bytes());
        vl_peak_packets[v] =
            std::max<std::uint64_t>(vl_peak_packets[v], f.peak_packets());
      }
    };
    for (const SwitchState& sw : switches_)
      for (const OutputPort& op : sw.out) fold(op);
    for (const HostState& h : hosts_) fold(h.out);

    snap.add_counter("arb.decisions", arb.decisions);
    snap.add_counter("arb.vl15_bypasses", arb.vl15_bypasses);
    snap.add_counter("arb.high_picks", arb.high_picks);
    snap.add_counter("arb.low_picks", arb.low_picks);
    snap.add_counter("arb.high_skips", arb.high_skips);
    snap.add_counter("arb.low_skips", arb.low_skips);
    snap.add_counter("arb.limit_blocks", arb.limit_blocks);
    snap.add_counter("arb.idle", arb.idle);
    snap.add_counter("port.credit_stalls", credit_stalls);
    snap.merge_gauge("buffer.out.peak_bytes",
                     static_cast<double>(out_peak_bytes),
                     obs::MergePolicy::kMax);
    snap.add_histogram("buffer.out.peak_packets_by_vl",
                       vl_peak_packets.data(), vl_peak_packets.size());

    std::uint64_t in_peak_bytes = 0;
    for (const SwitchState& sw : switches_)
      for (const InputPort& ip : sw.in) {
        if (!ip.wired) continue;
        for (unsigned v = 0; v < iba::kMaxVirtualLanes; ++v)
          in_peak_bytes = std::max<std::uint64_t>(
              in_peak_bytes,
              ip.buffers.vl(static_cast<iba::VirtualLane>(v)).peak_bytes());
      }
    snap.merge_gauge("buffer.in.peak_bytes",
                     static_cast<double>(in_peak_bytes),
                     obs::MergePolicy::kMax);

    sched::CrossbarScheduler::Stats xs;
    for (const auto& x : xbar_) {
      const sched::CrossbarScheduler::Stats& s = x->stats();
      xs.rounds += s.rounds;
      xs.grants += s.grants;
      xs.iterations += s.iterations;
      xs.blocked_output += s.blocked_output;
      xs.blocked_space += s.blocked_space;
      xs.throttled += s.throttled;
    }
    snap.add_counter("xbar.rounds", xs.rounds);
    snap.add_counter("xbar.grants", xs.grants);
    snap.add_counter("xbar.iterations", xs.iterations);
    snap.add_counter("xbar.blocked_output", xs.blocked_output);
    snap.add_counter("xbar.blocked_space", xs.blocked_space);
    snap.add_counter("xbar.throttled", xs.throttled);
  });

  if (cfg_.sample_every > 0) {
    obs::SeriesRecorder::Config sc;
    sc.sample_every = cfg_.sample_every;
    sc.capacity = cfg_.series_capacity;
    series_ = std::make_unique<obs::SeriesRecorder>(telemetry_, sc);
    metrics_.set_series(series_.get());
  }

  if (cfg_.shards == 0) cfg_.shards = 1;

  if (cfg_.profile) {
    profiler_ = std::make_unique<obs::PhaseProfiler>();
    // profile.* and shard.* are the quarantined families: published only
    // when profiling is opted into, never sampled into the series, never
    // part of a determinism byte-compare. Under --shards the per-worker
    // profilers fold into one fleet-wide total, and the shard engine
    // publishes its health counters alongside.
    telemetry_.add_probe([this](obs::Snapshot& snap) {
      obs::PhaseProfiler folded = *profiler_;
      if (engine_) engine_->fold_profile(folded);
      for (int i = 0; i < obs::PhaseProfiler::kPhaseCount; ++i) {
        const auto p = static_cast<obs::PhaseProfiler::Phase>(i);
        const std::string base =
            std::string("profile.") + obs::PhaseProfiler::name(p);
        snap.merge_gauge(base + "_ms", folded.total_ms(p),
                         obs::MergePolicy::kSum);
        snap.add_counter(base + "_calls", folded.calls(p));
      }
      if (engine_) engine_->publish_shard_stats(snap);
    });
  }
}

Simulator::~Simulator() = default;

iba::Cycle Simulator::now_cur() const {
  return t_shard != nullptr ? t_shard->now : now_;
}

void Simulator::push_event(Event e) {
  if (engine_ && engine_->active()) {
    const iba::NodeId home = event_home_node(e);
    engine_->route_push(std::move(e), home);
    return;
  }
  queue_.push(std::move(e));
}

iba::NodeId Simulator::event_home_node(const Event& e) const {
  switch (e.type) {
    case EventType::kGenerate:
      return flows_[e.aux].spec.src_host;
    case EventType::kProbe:
    case EventType::kControl:
      return 0;  // Only ever migrated, never executed in parallel.
    default:
      return e.node;
  }
}

void Simulator::sample_pending(std::uint64_t pending, iba::Cycle through) {
  if (pending > pending_peak_) pending_peak_ = pending;
  next_pending_mark_ =
      (through / kPendingSampleEvery + 1) * kPendingSampleEvery;
}

bool Simulator::parallel_ready() {
  if (cfg_.shards <= 1) return false;
  // Hazards the parallel engine cannot reproduce byte-identically: inline
  // callbacks with cross-shard visibility (fault hooks, delivery listeners,
  // call_at controls) and purge barriers whose bookkeeping is shared mutable
  // state. Observers — tracing, series sampling, profiling — are NOT
  // hazards: each shard records into its own plane and the orchestrator
  // merges them deterministically at window barriers (docs/PARALLEL.md).
  const char* hazard = nullptr;
  if (hooks_ != nullptr) {
    hazard = "fault-hooks";
  } else if (delivery_listener_ != nullptr) {
    hazard = "delivery-listener";
  } else if (!controls_.empty()) {
    hazard = "pending-controls";
  } else if (!purged_flows_.empty()) {
    hazard = "purge-barriers";
  }
  if (hazard != nullptr) {
    fallback_reason_ = hazard;
    if (!shard_fallback_warned_) {
      shard_fallback_warned_ = true;
      std::fprintf(stderr,
                   "ibarb: --shards %u requested, but %s cannot be reproduced "
                   "in parallel; using the sequential core (output is "
                   "unchanged)\n",
                   cfg_.shards, hazard);
    }
    if (engine_ && engine_->active()) engine_->surrender(queue_);
    return false;
  }
  if (!engine_) {
    std::string error;
    engine_ = ShardEngine::create(*this, cfg_.shards, error);
    if (!engine_) {
      fallback_reason_ = "unshardable-topology";
      if (!shard_fallback_warned_) {
        shard_fallback_warned_ = true;
        std::fprintf(stderr, "ibarb: %s\n", error.c_str());
      }
      cfg_.shards = 1;
      return false;
    }
  }
  if (!engine_->active()) {
    engine_->adopt(queue_);
    // Give every shard worker its own series delivery lane, folded at each
    // commit — the one SeriesRecorder hot hook that is not already
    // single-writer under the shard partition.
    if (series_) series_->set_lanes(engine_->shards());
  }
  fallback_reason_.clear();
  return true;
}

ShardLoadStats Simulator::shard_load() const {
  ShardLoadStats out;
  if (engine_) engine_->fill_load(out);
  return out;
}

void Simulator::export_shard_tracks(
    std::vector<obs::PhaseSpan>& spans,
    std::vector<obs::CounterTrack>& counters) const {
  if (engine_) engine_->export_tracks(spans, counters);
}

obs::PhaseProfiler* Simulator::cur_profiler() const {
  const ShardCtx* const c = t_shard;
  return c != nullptr ? c->profiler.get() : profiler_.get();
}

void Simulator::record_trace(iba::Cycle time, TraceEvent event,
                             iba::NodeId node, iba::PortIndex port,
                             iba::VirtualLane vl, const iba::Packet& p) {
  if (!trace_.enabled()) return;
  ShardCtx* const c = t_shard;
  if (c == nullptr) {
    trace_.record(time, event, node, port, vl, p);
    return;
  }
  // Parallel window: park the record in the shard's window-local buffer,
  // tagged with the emitting handler's identity; the orchestrator merges
  // every buffer into the shared ring in final (time, key) order after
  // barrier D, reproducing the sequential ring byte for byte.
  c->trace_buf.push_back(ShardCtx::PendingTrace{
      TraceRecord{time, event, node, port, vl, p.id, p.connection},
      c->handler_known, c->handler_seq, c->handler_self});
}

OutputPort& Simulator::output_port(iba::NodeId node, iba::PortIndex port) {
  if (graph_.is_switch(node)) return switches_[index_[node]].out.at(port);
  assert(port == 0);
  return hosts_[index_[node]].out;
}

void Simulator::set_output_arbitration(iba::NodeId node, iba::PortIndex port,
                                       const iba::VlArbitrationTable& table) {
  output_port(node, port).arbiter.set_table(table);
}

void Simulator::set_sl_to_vl(iba::NodeId node, iba::PortIndex port,
                             const iba::SlToVlMappingTable& map) {
  output_port(node, port).sl_map = map;
}

void Simulator::set_sl_to_vl_all(const iba::SlToVlMappingTable& map) {
  for (auto& sw : switches_)
    for (auto& op : sw.out)
      if (op.wired) op.sl_map = map;
  for (auto& h : hosts_)
    if (h.out.wired) h.out.sl_map = map;
}

void Simulator::set_port_reserved_mbps(iba::NodeId node, iba::PortIndex port,
                                       double mbps) {
  metrics_.ports.at(output_port(node, port).flat_id).reserved_mbps = mbps;
}

void Simulator::set_forwarding(iba::NodeId sw,
                               std::vector<iba::PortIndex> lft) {
  if (!graph_.is_switch(sw))
    throw std::invalid_argument("forwarding tables live in switches");
  switches_[index_[sw]].lft = std::move(lft);
}

iba::PortIndex Simulator::route_port(const SwitchState& sw,
                                     iba::Lid dst) const {
  if (!sw.lft.empty()) {
    assert(dst < sw.lft.size());
    const auto port = sw.lft[dst];
    assert(port != 0xFF && "destination LID not programmed in the LFT");
    return port;
  }
  return routes_.out_port(sw.node, node_of(dst));
}

std::uint32_t Simulator::flat_port_id(iba::NodeId node,
                                      iba::PortIndex port) const {
  auto& self = const_cast<Simulator&>(*this);
  return self.output_port(node, port).flat_id;
}

std::uint32_t Simulator::add_flow(const FlowSpec& spec) {
  if (!graph_.is_switch(spec.src_host) && !graph_.is_switch(spec.dst_host)) {
    // both must be hosts
  } else {
    throw std::invalid_argument("flows run host to host");
  }
  if (spec.src_host == spec.dst_host)
    throw std::invalid_argument("flow source equals destination");
  if (spec.interval == 0) throw std::invalid_argument("zero flow interval");

  const auto idx = static_cast<std::uint32_t>(flows_.size());
  FlowState fs;
  fs.spec = spec;
  fs.rng = util::Xoshiro256(cfg_.seed ^ (0x9e3779b97f4a7c15ull * (idx + 1)) ^
                            spec.seed);
  fs.next_nominal = std::max(spec.start_offset, now_);
  fs.generator_scheduled = !spec.external;
  flows_.push_back(std::move(fs));

  ConnectionMetrics cm;
  cm.sl = spec.sl;
  cm.deadline = spec.deadline;
  cm.nominal_iat = spec.interval;
  cm.qos = spec.qos;
  metrics_.connections.push_back(cm);
  if (series_) series_->note_connection(idx, spec.sl, spec.qos, spec.deadline);

  if (engine_)
    engine_->note_flow_wire(spec.external
                                ? iba::kPacketOverheadBytes
                                : spec.payload_bytes +
                                      iba::kPacketOverheadBytes);

  if (!spec.external) {
    Event e;
    e.time = std::max(spec.start_offset, now_);
    e.type = EventType::kGenerate;
    e.aux = idx;
    push_event(std::move(e));
  }
  return idx;
}

void Simulator::stop_flow(std::uint32_t flow_index) {
  flows_.at(flow_index).stopped = true;
}

void Simulator::resume_flow(std::uint32_t flow_index) {
  FlowState& f = flows_.at(flow_index);
  if (!f.stopped) return;
  f.stopped = false;
  if (f.spec.external || f.generator_scheduled) return;
  // The generator chain died while stopped: restart it from the present
  // (the CBR nominal clock must not try to catch up on the outage).
  f.next_nominal = now_;
  f.generator_scheduled = true;
  Event e;
  e.time = now_;
  e.type = EventType::kGenerate;
  e.aux = flow_index;
  push_event(std::move(e));
}

void Simulator::set_flow_overdrive(std::uint32_t flow_index, double factor) {
  if (factor <= 0.0) throw std::invalid_argument("overdrive must be > 0");
  flows_.at(flow_index).overdrive = factor;
}

void Simulator::schedule_flow(std::uint32_t flow_index,
                              iba::Cycle not_before) {
  FlowState& f = flows_[flow_index];
  // Misbehaving-source overdrive compresses every generator interval. The
  // common factor-1.0 path stays in exact integer arithmetic.
  const auto scaled = [&f](iba::Cycle interval) {
    if (f.overdrive == 1.0) return interval;
    return std::max<iba::Cycle>(
        1, static_cast<iba::Cycle>(static_cast<double>(interval) /
                                   f.overdrive));
  };
  iba::Cycle next = not_before;
  switch (f.spec.kind) {
    case GeneratorKind::kCbr:
      // Drift-free: advance the nominal clock, never the actual send time.
      f.next_nominal += scaled(f.spec.interval);
      next = f.next_nominal;
      break;
    case GeneratorKind::kPoisson:
      next = now_cur() + static_cast<iba::Cycle>(
                             f.rng.exponential(static_cast<double>(
                                 scaled(f.spec.interval))) + 1.0);
      break;
    case GeneratorKind::kOnOffVbr: {
      if (f.burst_left > 0) {
        --f.burst_left;
        const auto peak = static_cast<iba::Cycle>(
            static_cast<double>(scaled(f.spec.interval)) *
                f.spec.on_fraction + 1.0);
        next = now_cur() + peak;
      } else {
        // Draw a new burst; the silence restores the long-run mean rate.
        const double burst =
            1.0 + f.rng.exponential(f.spec.burst_mean_packets - 1.0);
        f.burst_left = static_cast<std::uint32_t>(burst);
        const double off_mean =
            static_cast<double>(scaled(f.spec.interval)) * burst *
            (1.0 - f.spec.on_fraction);
        next = now_cur() +
               static_cast<iba::Cycle>(f.rng.exponential(off_mean) + 1.0);
      }
      break;
    }
  }
  f.generator_scheduled = true;
  Event e;
  e.time = next;
  e.type = EventType::kGenerate;
  e.aux = flow_index;
  push_event(std::move(e));
}

void Simulator::on_generate(std::uint32_t flow_index) {
  FlowState& f = flows_[flow_index];
  f.generator_scheduled = false;
  if (f.stopped) return;  // torn down: neither generate nor reschedule
  const FlowSpec& spec = f.spec;
  const iba::Cycle now = now_cur();

  iba::Packet p;
  p.connection = flow_index;
  p.sl = spec.sl;
  p.source = lid_of(spec.src_host);
  p.destination = lid_of(spec.dst_host);
  p.payload_bytes = spec.payload_bytes;
  p.sequence = f.next_sequence++;
  // Generated packets derive their id from (flow, sequence) — never from a
  // shared counter — so ids are identical whether a window runs on the
  // sequential core or on any shard worker, and trace files byte-compare
  // across shard counts. External injections (inject_external) keep the
  // monotone counter; those ids stay below 2^32, so the domains never
  // collide.
  p.id = ((static_cast<std::uint64_t>(flow_index) + 1) << 32) |
         (p.sequence + 1);
  p.injected_at = now;
  p.management = spec.management;
  p.deadline = metrics_.connections[flow_index].deadline;

  metrics_.record_injection(flow_index, p);

  HostState& host = hosts_[index_[spec.src_host]];
  const iba::VirtualLane vl =
      spec.management ? iba::kManagementVl : host.out.sl_map.map(spec.sl);
  record_trace(now, TraceEvent::kInject, spec.src_host, 0, vl, p);
  host.out.queues.push(vl, std::move(p));
  try_transmit(spec.src_host, 0);

  schedule_flow(flow_index, now);
}

void Simulator::try_transmit(iba::NodeId node, iba::PortIndex port) {
  OutputPort& op = output_port(node, port);
  if (!op.wired || op.tx_busy || op.queues.all_empty()) return;
  // Downed or stuck transmitter: hold everything; the fault layer calls
  // kick_port when the condition clears.
  if (hooks_ && !hooks_->may_transmit(node, port)) return;

  const auto ready = op.ready_bytes();
  const auto decision = [&] {
    obs::ScopedTimer timer(cur_profiler(), obs::PhaseProfiler::kArbitration);
    return op.arbiter.arbitrate(ready);
  }();
  if (!decision) return;

  iba::Packet p = op.queues.pop(decision->vl);
  const auto wire = p.wire_bytes();
  op.credits.consume(decision->vl, wire);
  op.tx_busy = true;
  const iba::Cycle now = now_cur();
  record_trace(now, TraceEvent::kLinkTx, node, port, decision->vl, p);

  auto ser = iba::serialization_cycles(wire, op.link.rate);
  if (hooks_) ser = hooks_->stretch_serialization(node, port, ser);
  metrics_.record_tx(op.flat_id, wire, ser);

  Event done;
  done.time = now + ser;
  done.type = EventType::kTxComplete;
  done.node = node;
  done.port = port;
  push_event(std::move(done));

  Event arrive;
  arrive.time = now + ser + op.link.propagation_delay;
  arrive.type = EventType::kLinkDeliver;
  arrive.node = op.peer.node;
  arrive.port = op.peer.port;
  arrive.vl = decision->vl;
  arrive.packet = std::move(p);
  push_event(std::move(arrive));
}

void Simulator::on_tx_complete(iba::NodeId node, iba::PortIndex port) {
  output_port(node, port).tx_busy = false;
  try_transmit(node, port);
}

void Simulator::on_link_deliver(const Event& e) {
  const iba::Cycle now = now_cur();
  auto verdict = FaultHooks::RxVerdict::kDeliver;
  if (hooks_ && !e.packet.management) {
    obs::ScopedTimer timer(cur_profiler(), obs::PhaseProfiler::kFaultHooks);
    verdict = hooks_->on_link_rx(e.node, e.port, e.packet);
  }
  if (verdict == FaultHooks::RxVerdict::kDrop) {
    // Discarded on arrival (corrupted past the CRC, or a drop-fault window).
    // The receiver still frees the notional buffer, so upstream credits are
    // returned — a lost packet must not wedge the sender.
    record_trace(now, TraceEvent::kDrop, e.node, e.port, e.vl, e.packet);
    metrics_.record_drop(e.packet.connection);
    const auto up = graph_.peer(e.node, e.port);
    assert(up.has_value());
    OutputPort& upstream = output_port(up->node, up->port);
    upstream.credits.release(e.vl, e.packet.wire_bytes());
    try_transmit(up->node, up->port);
    return;
  }
  if (graph_.is_switch(e.node)) {
    SwitchState& sw = switches_[index_[e.node]];
    sw.in[e.port].buffers.push(e.vl, e.packet);
    schedule_crossbar(index_[e.node], static_cast<int>(e.port));
    return;
  }
  // Host sink: record, then return credits to the upstream switch port
  // immediately (hosts drain their receive buffers at line rate). The
  // upstream port is the host's own uplink switch — same shard — so this
  // stays inline in parallel windows too.
  record_trace(now, TraceEvent::kDeliver, e.node, e.port, e.vl, e.packet);
  {
    obs::ScopedTimer timer(cur_profiler(), obs::PhaseProfiler::kMetrics);
    metrics_.record_delivery(e.packet.connection, e.packet, now);
  }
  if (delivery_listener_) delivery_listener_(e.packet, now);
  const auto up = graph_.peer(e.node, 0);
  assert(up.has_value());
  OutputPort& upstream = output_port(up->node, up->port);
  upstream.credits.release(e.vl, e.packet.wire_bytes());
  try_transmit(up->node, up->port);
}

void Simulator::on_xfer_complete(const Event& e) {
  SwitchState& sw = switches_[index_[e.node]];
  const auto in_port = static_cast<iba::PortIndex>(e.aux);
  InputPort& ip = sw.in[in_port];
  OutputPort& op = sw.out[e.port];

  iba::Packet p = ip.buffers.pop(e.vl);

  // Input buffer space freed: return credits to whoever feeds this port. In
  // a parallel window the feeder may live on another shard, so the release
  // travels as the kCreditRelease event XbarView::grant emitted alongside
  // this one (keyed right before it — see on_credit_release).
  if (!in_parallel()) {
    const auto up = graph_.peer(e.node, in_port);
    assert(up.has_value());
    OutputPort& upstream = output_port(up->node, up->port);
    upstream.credits.release(e.vl, p.wire_bytes());
    try_transmit(up->node, up->port);
  }

  // Enqueue at the output on the VL this port's SLtoVL table dictates —
  // unless recovery abandoned this connection on this port (the packet was
  // in flight when the purge ran; queuing it now would strand it on a VL
  // whose arbitration weight left with the reservation).
  const iba::VirtualLane out_vl =
      p.management ? iba::kManagementVl : op.sl_map.map(p.sl);
  if (!p.management && !purged_flows_.empty() &&
      purged_flows_.count({flat_port_id(e.node, e.port), p.connection}) > 0) {
    record_trace(now_cur(), TraceEvent::kDrop, e.node, e.port, out_vl, p);
    metrics_.record_drop(p.connection);
    ++purged_late_;
  } else {
    record_trace(now_cur(), TraceEvent::kXbar, e.node, e.port, out_vl, p);
    op.queues.push(out_vl, std::move(p));
  }

  ip.xbar_tx_busy = false;
  op.xbar_rx_busy = false;

  try_transmit(e.node, e.port);
  schedule_crossbar(index_[e.node], /*only_input=*/-1);
}

void Simulator::schedule_crossbar(std::uint32_t switch_index, int only_input) {
  XbarView view(*this, switch_index);
  xbar_[switch_index]->schedule(view, only_input);
}

void Simulator::on_credit_release(const Event& e) {
  OutputPort& op = output_port(e.node, e.port);
  op.credits.release(e.vl, e.aux);
  try_transmit(e.node, e.port);
}

void Simulator::handle(const Event& e) {
  switch (e.type) {
    case EventType::kGenerate:
      on_generate(e.aux);
      break;
    case EventType::kLinkDeliver:
      on_link_deliver(e);
      break;
    case EventType::kTxComplete:
      on_tx_complete(e.node, e.port);
      break;
    case EventType::kXferComplete:
      on_xfer_complete(e);
      break;
    case EventType::kProbe:
      break;  // phase control polls state between events
    case EventType::kControl: {
      const auto it = controls_.find(e.aux);
      assert(it != controls_.end() && "control callback fired twice");
      auto fn = std::move(it->second);
      controls_.erase(it);  // erase first: fn may call_at again
      fn();
      break;
    }
    case EventType::kCreditRelease:
      on_credit_release(e);
      break;
  }
}

void Simulator::call_at(iba::Cycle t, std::function<void()> fn) {
  const auto id = next_control_id_++;
  controls_.emplace(id, std::move(fn));
  Event e;
  e.time = std::max(t, now_);
  e.type = EventType::kControl;
  e.aux = id;
  push_event(std::move(e));
}

std::uint64_t Simulator::inject_external(std::uint32_t flow_index,
                                         std::uint32_t payload_bytes,
                                         std::uint32_t sequence,
                                         std::uint8_t rc_op, bool rc_last) {
  FlowState& f = flows_.at(flow_index);
  if (!f.spec.external)
    throw std::invalid_argument("inject_external needs an external flow");
  const FlowSpec& spec = f.spec;

  iba::Packet p;
  p.id = next_packet_id_++;
  p.connection = flow_index;
  p.sl = spec.sl;
  p.source = lid_of(spec.src_host);
  p.destination = lid_of(spec.dst_host);
  p.payload_bytes = payload_bytes;
  p.sequence = sequence;
  p.injected_at = now_;
  p.management = spec.management;
  p.rc_op = rc_op;
  p.rc_last = rc_last;
  p.deadline = metrics_.connections[flow_index].deadline;
  const auto id = p.id;

  metrics_.record_injection(flow_index, p);

  HostState& host = hosts_[index_[spec.src_host]];
  const iba::VirtualLane vl =
      spec.management ? iba::kManagementVl : host.out.sl_map.map(spec.sl);
  record_trace(now_, TraceEvent::kInject, spec.src_host, 0, vl, p);
  host.out.queues.push(vl, std::move(p));
  try_transmit(spec.src_host, 0);
  return id;
}

void Simulator::kick_port(iba::NodeId node, iba::PortIndex port) {
  try_transmit(node, port);
}

std::uint64_t Simulator::flush_output_queue(iba::NodeId node,
                                            iba::PortIndex port) {
  OutputPort& op = output_port(node, port);
  std::uint64_t flushed = 0;
  // Queued packets never consumed this port's credits (that happens when
  // serialization starts), so discarding them is pure local state.
  while (!op.queues.all_empty()) {
    const auto vl = static_cast<iba::VirtualLane>(
        std::countr_zero(op.queues.occupancy()));
    iba::Packet p = op.queues.pop(vl);
    record_trace(now_, TraceEvent::kDrop, node, port, vl, p);
    metrics_.record_drop(p.connection);
    ++flushed;
  }
  return flushed;
}

std::uint64_t Simulator::purge_flow_from_output(iba::NodeId node,
                                                iba::PortIndex port,
                                                std::uint32_t flow) {
  OutputPort& op = output_port(node, port);
  std::uint64_t purged = 0;
  // Like flushed packets, queued packets hold no credits yet: removal is
  // pure local state.
  for (unsigned v = 0; v < iba::kMaxVirtualLanes; ++v) {
    const auto vl = static_cast<iba::VirtualLane>(v);
    for (auto& p : op.queues.extract_connection(vl, flow)) {
      record_trace(now_, TraceEvent::kDrop, node, port, vl, p);
      metrics_.record_drop(p.connection);
      ++purged;
    }
  }
  // Arm the barrier: anything still in flight towards this port (crossbar
  // transfer or link traversal) lands after the purge and is dropped on
  // enqueue, until clear_flow_purge re-admits the flow here.
  purged_flows_.insert({flat_port_id(node, port), flow});
  return purged;
}

void Simulator::clear_flow_purge(iba::NodeId node, iba::PortIndex port,
                                 std::uint32_t flow) {
  purged_flows_.erase({flat_port_id(node, port), flow});
}

void Simulator::run_until(iba::Cycle t) {
  if (parallel_ready()) {
    engine_->run_until(t);
    return;
  }
  while (!queue_.empty() && queue_.top().time <= t) {
    // Pending-event census at fixed marks (the queue.peak_size gauge): the
    // first event at or past a mark triggers a sample *before* it pops, so
    // the count covers everything still scheduled from the mark onwards —
    // the same census the parallel engine takes at its window barriers.
    if (queue_.top().time >= next_pending_mark_)
      sample_pending(queue_.size() - serial_pending_releases_,
                     queue_.top().time);
    // A series boundary B samples the state after every event with time
    // <= B, so commit pending boundaries before popping the first event
    // that crosses one — the pop itself belongs to the next window. This
    // is the same commit point the parallel orchestrator uses between
    // windows, which keeps sampled queue counters byte-identical.
    if (series_ && queue_.top().time > series_->next_due()) {
      obs::ScopedTimer timer(profiler_.get(), obs::PhaseProfiler::kSeries);
      series_->advance_to(queue_.top().time);
    }
    const Event e = queue_.pop();
    assert(e.time >= now_ && "time must not run backwards");
    // A credit release handed back by ShardEngine::surrender: engine
    // bookkeeping with no sequential counterpart, excluded from the pop and
    // event counters exactly like the shard workers exclude theirs.
    if (e.type == EventType::kCreditRelease) {
      ++serial_release_pops_;
      --serial_pending_releases_;
    }
    now_ = e.time;
    if (e.type != EventType::kCreditRelease) ++events_;
    obs::ScopedTimer timer(profiler_.get(), obs::PhaseProfiler::kDispatch);
    handle(e);
  }
  if (now_ < t) now_ = t;
  if (t >= next_pending_mark_)
    sample_pending(queue_.size() - serial_pending_releases_, t);
  // All events <= t are handled, so every boundary <= t is complete — flush
  // them even if no later event arrives to cross the boundary (idempotent;
  // run_paper_phases calls run_until in probe steps).
  if (series_ && t + 1 > series_->next_due()) {
    obs::ScopedTimer timer(profiler_.get(), obs::PhaseProfiler::kSeries);
    series_->advance_to(t + 1);
  }
}

RunSummary Simulator::run_paper_phases(iba::Cycle warmup,
                                       std::uint64_t min_rx_packets,
                                       iba::Cycle hard_limit) {
  RunSummary summary;
  run_until(warmup);
  summary.warmup_end = now_;

  metrics_.start_window(now_);
  const iba::Cycle window_start = now_;
  const iba::Cycle probe_step = 65536;
  iba::Cycle next_probe = now_ + probe_step;
  while (true) {
    run_until(next_probe);
    next_probe = now_ + probe_step;
    if (metrics_.min_qos_rx() >= min_rx_packets) break;
    if (now_ - window_start >= hard_limit) {
      summary.hit_hard_limit = true;
      break;
    }
  }
  metrics_.stop_window(now_);
  summary.window_cycles = now_ - window_start;
  summary.events = events_;
  return summary;
}

std::uint64_t Simulator::packets_in_network() const {
  std::uint64_t n = 0;
  for (const auto& sw : switches_) {
    for (const auto& ip : sw.in) n += ip.buffers.total_packets();
    for (const auto& op : sw.out) n += op.queues.total_packets();
  }
  for (const auto& h : hosts_) n += h.out.queues.total_packets();
  return n;
}

}  // namespace ibarb::sim
