#include "sim/metrics.hpp"

#include <algorithm>
#include <cassert>

#include "obs/series.hpp"

namespace ibarb::sim {

void Metrics::record_injection(std::uint32_t conn, const iba::Packet& p) {
  if (!enabled_) return;
  auto& c = connections[conn];
  ++c.tx_packets;
  c.tx_wire_bytes += p.wire_bytes();
}

void Metrics::record_delivery(std::uint32_t conn, const iba::Packet& p,
                              iba::Cycle now) {
  if (series_ && conn < connections.size()) {
    assert(now >= p.injected_at);
    const auto& c = connections[conn];
    series_->record_delivery(conn, c.sl, now - p.injected_at,
                             p.deadline > 0 ? p.deadline : c.deadline);
  }
  if (!enabled_) return;
  auto& c = connections[conn];
  ++c.rx_packets;
  c.rx_wire_bytes += p.wire_bytes();
  c.rx_payload_bytes += p.payload_bytes;

  assert(now >= p.injected_at);
  const auto delay = static_cast<double>(now - p.injected_at);
  c.delay.add(delay);
  // Judge against the guarantee contracted at injection time when the
  // packet carries one; reroutes may have changed the connection's deadline
  // while this packet was in flight.
  const iba::Cycle contracted = p.deadline > 0 ? p.deadline : c.deadline;
  if (contracted > 0) {
    const auto d = static_cast<double>(contracted);
    for (std::size_t i = 0; i < kDelayThresholds; ++i)
      if (delay <= d / kDelayThresholdDivisors[i]) ++c.within_threshold[i];
    if (delay > d) ++c.deadline_misses;
  }

  if (c.nominal_iat > 0) {
    if (c.last_arrival != iba::kNeverCycle && now >= c.last_arrival) {
      const double gap = static_cast<double>(now - c.last_arrival);
      const double deviation =
          (gap - static_cast<double>(c.nominal_iat)) /
          static_cast<double>(c.nominal_iat);
      // Bin 0: below -IAT. Bins 1..9 between consecutive edges. Last bin:
      // above +IAT.
      std::size_t bin = 0;
      if (deviation < kJitterEdges[0]) {
        bin = 0;
      } else if (deviation >= kJitterEdges[std::size(kJitterEdges) - 1]) {
        bin = kJitterBins - 1;
      } else {
        bin = 1;
        for (std::size_t e = 1; e < std::size(kJitterEdges); ++e) {
          if (deviation < kJitterEdges[e]) break;
          ++bin;
        }
      }
      ++c.jitter_bins[bin];
    }
    c.last_arrival = now;
  }
}

void Metrics::record_tx(std::uint32_t flat_port, std::uint32_t wire_bytes,
                        iba::Cycle serialization) {
  if (!enabled_) return;
  auto& p = ports[flat_port];
  p.busy_cycles += serialization;
  p.wire_bytes += wire_bytes;
  ++p.packets;
}

void Metrics::record_drop(std::uint32_t conn) {
  if (conn >= connections.size()) return;  // management MADs carry no conn
  if (series_) series_->record_drop(conn);
  if (!enabled_) return;
  ++connections[conn].dropped_packets;
}

std::uint64_t Metrics::min_qos_rx() const {
  std::uint64_t lo = std::numeric_limits<std::uint64_t>::max();
  bool any = false;
  for (const auto& c : connections) {
    if (!c.qos) continue;
    any = true;
    lo = std::min(lo, c.rx_packets);
  }
  return any ? lo : 0;
}

}  // namespace ibarb::sim
