#include "sim/partition.hpp"

#include <algorithm>
#include <limits>

namespace ibarb::sim {

PartitionResult make_switch_affine(const network::FabricGraph& graph,
                                   unsigned shards) {
  PartitionResult r;
  if (graph.node_count() > kMaxPartitionNodes) {
    r.error = "partition: fabric has " + std::to_string(graph.node_count()) +
              " nodes, beyond the " + std::to_string(kMaxPartitionNodes) +
              "-node limit of the switch-affine partitioner";
    return r;
  }
  const std::vector<iba::NodeId> switches = graph.switches();
  if (shards < 2) {
    r.error = "partition: need at least 2 shards";
    return r;
  }
  if (switches.size() < 2) {
    r.error = "partition: fabric has fewer than 2 switches";
    return r;
  }
  const unsigned n =
      std::min<unsigned>(shards, static_cast<unsigned>(switches.size()));

  Partition p;
  p.shards = n;
  p.shard_of.assign(graph.node_count(), 0);

  // Contiguous blocks of switches in id order: shard k owns switch indices
  // [k*S/n, (k+1)*S/n). Id order keeps the assignment stable across runs.
  const std::size_t s = switches.size();
  for (std::size_t i = 0; i < s; ++i) {
    const auto shard = static_cast<std::uint32_t>(i * n / s);
    p.shard_of[switches[i]] = shard;
  }
  for (const iba::NodeId host : graph.hosts()) {
    const auto up = graph.peer(host, 0);
    if (!up) {
      r.error = "partition: host " + std::to_string(host) +
                " has no uplink switch";
      return r;
    }
    p.shard_of[host] = p.shard_of[up->node];
  }

  // Directed cut edges: switch output ports whose peer switch lives on
  // another shard. Host links are intra-shard by construction above.
  for (const iba::NodeId sw : switches) {
    for (iba::PortIndex port = 0; port < graph.port_count(sw); ++port) {
      const auto peer = graph.peer(sw, port);
      if (!peer || p.shard_of[peer->node] == p.shard_of[sw]) continue;
      Partition::Cut cut;
      cut.node = sw;
      cut.port = port;
      cut.link = graph.link(sw, port);
      cut.from = p.shard_of[sw];
      cut.to = p.shard_of[peer->node];
      cut.best_downstream_rate = iba::LinkRate::k1x;
      bool any = false;
      for (iba::PortIndex q = 0; q < graph.port_count(peer->node); ++q) {
        if (!graph.peer(peer->node, q)) continue;
        const iba::LinkRate rate = graph.link(peer->node, q).rate;
        if (!any || iba::link_width(rate) >
                        iba::link_width(cut.best_downstream_rate)) {
          cut.best_downstream_rate = rate;
        }
        any = true;
      }
      p.cuts.push_back(cut);
    }
  }

  r.ok = true;
  r.partition = std::move(p);
  return r;
}

iba::Cycle forward_latency(const iba::Link& link, std::uint32_t wire_bytes) {
  return iba::serialization_cycles(wire_bytes, link.rate) +
         link.propagation_delay;
}

iba::Cycle reverse_latency(const Partition::Cut& cut,
                           const LookaheadModel& m) {
  // Mirrors XbarView::grant: the credit release fires crossbar_delay plus
  // the sped-up transfer (min 1 cycle) after the grant decision.
  const iba::Cycle ser =
      iba::serialization_cycles(m.min_wire_bytes, cut.best_downstream_rate);
  const auto xfer = std::max<iba::Cycle>(
      1, static_cast<iba::Cycle>(static_cast<double>(ser) /
                                 m.crossbar_speedup));
  return m.crossbar_delay + xfer;
}

iba::Cycle safe_window(const Partition& p, const LookaheadModel& m) {
  iba::Cycle window = std::numeric_limits<iba::Cycle>::max();
  for (const Partition::Cut& cut : p.cuts) {
    window = std::min(window, forward_latency(cut.link, m.min_wire_bytes));
    window = std::min(window, reverse_latency(cut, m));
  }
  return window == std::numeric_limits<iba::Cycle>::max() ? 1 : window;
}

std::string zero_lookahead_error(
    const Partition& p,
    const std::function<iba::Cycle(const Partition::Cut&)>& latency) {
  for (const Partition::Cut& cut : p.cuts) {
    if (latency(cut) == 0) {
      return "partition: cut link " + std::to_string(cut.node) + ":" +
             std::to_string(cut.port) + " (shard " + std::to_string(cut.from) +
             " -> " + std::to_string(cut.to) +
             ") has zero lookahead; parallel windows would be empty — "
             "falling back to --shards 1";
    }
  }
  return {};
}

}  // namespace ibarb::sim
