// Deterministic parallel discrete-event engine: switch-affine shards
// advancing in bounded time windows (conservative synchronization in the
// Chandy–Misra lookahead tradition, without null messages), with the
// sequential run's tie-break order replayed *exactly*.
//
// Why replay: the sequential core breaks same-cycle ties with a global
// monotone push counter, i.e. by the order handlers happened to create the
// events. That order encodes unbounded history (two phase-locked transmit
// chains keep the relative push order they acquired when they first
// synchronized, arbitrarily long ago), so no bounded structural key —
// (cycle, creator, index) or similar — can reproduce it. The engine instead
// reconstructs the counter itself.
//
// Execution model, per Simulator::run_until(t):
//
//   1. The orchestrating thread computes the next window [W, end) where
//      W = min over shards of the earliest pending event and
//      end = min(W + lookahead, t + 1, next telemetry sampling mark).
//      The lookahead (partition.hpp::safe_window) guarantees every event a
//      shard executes inside the window can only schedule *cross-shard*
//      events at or after `end`.
//   2. Barrier A releases the shard workers. Each pops its local events with
//      time < end in (time, key) order and handles them. Every push a
//      handler makes is recorded in the shard's journal (a Push entry:
//      event, creating handler, position within the handler) instead of
//      being keyed immediately. Same-shard pushes due before `end` go into
//      the shard's nursery — a heap ordered by a provisional comparator
//      (below) — and execute within the window; later same-shard pushes park
//      in a pending list; cross-shard pushes travel as journal pointers
//      through SPSC channels.
//   3. Barrier B. The orchestrator — alone — replays the sequential
//      counter: it walks handler groups in (time, key) order (a heap seeded
//      with the handlers whose own key is already final, growing as
//      in-window children acquire keys) and assigns each journaled push the
//      key the sequential run would have stamped. Keys live in a doubled
//      domain — 2x the sequential counter for ordinary pushes — so the
//      reified kCreditRelease (which the sequential core performs *inline*
//      at the start of on_xfer_complete, before the handler's local pushes)
//      gets the unique odd key `partner - 1`, ordering exactly where the
//      inline half ran: after everything keyed before the transfer, before
//      the transfer's own local effects.
//   4. Barrier C. Workers drain their incoming channels plus their pending
//      list, sort by the now-final (time, key), and insert into their local
//      EventQueue. Barrier D: queues settled; the orchestrator plans the
//      next window (or finishes the run).
//
// The provisional nursery order is the final order: within one handler,
// pushes execute in push order (releases slotting just before their
// partner); across handlers, in handler (time, key) order, where a handler
// key still unassigned is compared through its parent chain — the exact
// recursion the replay performs later. Pre-window keys are always smaller
// than any key assigned this window (the counter only grows), which settles
// every queue-vs-nursery tie. Each shard therefore pops the same events in
// the same order as the sequential loop restricted to its nodes, any two
// events handled concurrently touch disjoint shard-owned state, and the
// final state — every report, golden file, telemetry snapshot — is
// byte-identical to the sequential run for any shard count.
//
// The engine refuses configurations it cannot reproduce exactly; the
// simulator then falls back to the sequential core (see
// Simulator::parallel_ready and docs/PARALLEL.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "obs/profile.hpp"
#include "sim/event_queue.hpp"
#include "sim/partition.hpp"
#include "sim/trace.hpp"
#include "util/spsc_queue.hpp"
#include "util/thread_pool.hpp"

namespace ibarb::obs {
struct CounterTrack;
struct PhaseSpan;
struct Snapshot;
}  // namespace ibarb::obs

namespace ibarb::sim {

class Simulator;
struct ShardLoadStats;

/// One journaled push: the event plus everything the replay needs to give
/// it the sequential counter value — who pushed it (group = the handler's
/// entry in ShardCtx::groups), at which position, and whether it is a
/// reified credit release (keyed `partner - 1` instead of consuming a
/// counter value). Journal storage is a deque, so pointers handed to
/// channels stay valid while the journal grows.
struct Push {
  Event ev;                ///< Moved out on in-window execution / promotion.
  iba::Cycle origin = 0;   ///< Creating handler's cycle (residency stats).
  std::uint64_t seq = 0;   ///< Final key; assigned by the barrier-B replay.
  std::uint32_t group = 0; ///< Creating handler's group index.
  std::uint32_t idx = 0;   ///< Push position within that handler.
  /// When this event executed in-window and pushed something itself: the
  /// group it formed (its key becomes known the moment `seq` is assigned).
  std::int32_t exec_group = -1;
  bool release = false;    ///< kCreditRelease (slots before entry idx - 1).
};

/// One handler that pushed at least something this window: its cycle, its
/// own key (final from the start for handlers popped off the queue; filled
/// in by the replay for handlers executed out of the nursery) and the
/// contiguous journal range of its pushes.
struct Group {
  iba::Cycle time = 0;
  std::uint64_t seq = 0;     ///< Valid when `known`.
  bool known = false;
  std::int64_t self = -1;    ///< Journal index of the handler's own event.
  std::size_t begin = 0, end = 0;  ///< Journal range [begin, end).
};

/// Directed producer->consumer channel for cross-shard pushes: a lock-free
/// SPSC ring of journal pointers with a producer-local spill for bursts
/// beyond the ring capacity. The consumer touches it only in the promote
/// step after barrier C, which happens-after every producer push of the
/// window — and the pointed-at journals live until their owner's next
/// window.
struct ShardChannel {
  util::SpscQueue<Push*> ring;
  std::vector<Push*> spill;

  explicit ShardChannel(std::size_t capacity = 1024) : ring(capacity) {}

  /// Returns true when the ring was full and the push spilled — counted
  /// into the shard.spills instrument by the producer.
  bool push(Push* m) {
    if (ring.try_push(std::move(m))) return false;
    spill.push_back(m);
    return true;
  }

  void drain(std::vector<Push*>& out) {
    ring.drain(out);
    for (Push* m : spill) out.push_back(m);
    spill.clear();
  }
};

/// Per-worker execution state. While a worker runs a window, the
/// thread-local `t_shard` points at its context so Simulator handlers read
/// the shard clock and route pushes without plumbing a parameter through
/// every call.
struct ShardCtx {
  unsigned id = 0;
  EventQueue queue;
  iba::Cycle now = 0;        ///< Clock of the event being handled.

  // Identity of the executing handler, for journaling its pushes: a queue
  // pop carries a final key (known); a nursery pop is identified by its own
  // journal entry (self) until the replay assigns its key.
  bool handler_known = false;
  std::uint64_t handler_seq = 0;
  std::int64_t handler_self = -1;
  std::int32_t cur_group = -1;  ///< Lazily created on the handler's 1st push.

  std::deque<Push> journal;     ///< Every push of the current window.
  std::vector<Group> groups;    ///< Handlers that pushed, current window.
  std::vector<std::size_t> nursery;  ///< Min-heap: in-window journal events.
  std::vector<std::size_t> pending;  ///< Same-shard, due at/after window end.
  std::vector<Push*> inbox;     ///< Promote scratch, reused every window.

  std::uint64_t events = 0;  ///< Handled events, excluding credit releases.
  /// Credit-release pops — engine-internal, subtracted from the aggregated
  /// queue telemetry so it matches the sequential run.
  std::uint64_t internal_pops = 0;
  /// kCreditRelease events currently in `queue` — excluded from the
  /// pending-event census (the sequential run performs releases inline and
  /// never has one pending at a sampling mark).
  std::uint64_t pending_releases = 0;

  // --- Per-shard observability plane (docs/OBSERVABILITY.md, shard.*) ------

  /// This worker's wall-clock phase profiler; allocated only under
  /// SimConfig::profile and folded into the profile.* probe with the
  /// orchestrator's (ShardEngine::fold_profile).
  std::unique_ptr<obs::PhaseProfiler> profiler;

  /// A trace record emitted inside a parallel window, tagged with the
  /// emitting handler's identity. Its final replay key is `seq` when the
  /// handler came off the queue (`known`), else the key the barrier-B
  /// replay assigns to the handler's own journal entry (`self`).
  struct PendingTrace {
    TraceRecord rec;
    bool known = false;
    std::uint64_t seq = 0;
    std::int64_t self = -1;
  };
  /// Window-local trace buffer; merged into the shared PacketTrace ring in
  /// final (time, key) order by the orchestrator after barrier D.
  std::vector<PendingTrace> trace_buf;

  // Lifetime shard-health counters, published as the quarantined shard.*
  // telemetry family (never sampled into series columns, never part of a
  // determinism byte-compare).
  std::uint64_t lifetime_events = 0;   ///< Events folded across all windows.
  std::uint64_t windows = 0;           ///< Windows this worker executed.
  std::uint64_t journal_entries = 0;   ///< Journaled pushes, lifetime.
  std::uint64_t journal_peak = 0;      ///< Longest single-window journal.
  std::uint64_t nursery_events = 0;    ///< Same-window nursery executions.
  std::uint64_t promotes = 0;          ///< Events promoted after barrier C.
  std::uint64_t spills = 0;            ///< Channel pushes past ring capacity.
  std::uint64_t channel_depth_peak = 0;  ///< Max one-channel drain, lifetime.
  std::uint64_t window_channel_depth = 0;  ///< Same, this window only.
  std::uint64_t barrier_wait_ns = 0;   ///< Wall-clock barrier waits.

  explicit ShardCtx(EventQueueImpl impl) : queue(impl) {}
};

/// Current worker's shard context; null on the sequential path, between
/// windows, and on the orchestrating thread.
extern thread_local ShardCtx* t_shard;

class ShardEngine {
 public:
  /// Builds the engine (partition, channels, worker pool) or returns null
  /// with a diagnostic in `error` (too few switches, node count beyond the
  /// partition limit, zero-lookahead cut link). The engine starts inactive:
  /// it owns no events until adopt().
  static std::unique_ptr<ShardEngine> create(Simulator& sim, unsigned shards,
                                             std::string& error);
  ~ShardEngine();

  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  /// Migrates every pending event out of the sequential queue into the
  /// shard queues (preserving each event's key) and activates the engine.
  /// Seeds the replayed counter at twice the queue's, so every key assigned
  /// from here on sorts after every key that already exists.
  void adopt(EventQueue& q);

  /// Inverse of adopt(): merges all shard queues back into `q` in global
  /// (time, key) order and deactivates the engine. Used when a hazard (fault
  /// hooks, tracing, a call_at control...) forces the sequential core
  /// mid-experiment; the engine can adopt() again later.
  void surrender(EventQueue& q);

  /// True between adopt() and surrender(): the shard queues own the events
  /// and every Simulator::push_event routes through route_push.
  bool active() const noexcept { return active_; }

  /// Runs all owned events with time <= t. Only valid while active.
  void run_until(iba::Cycle t);

  /// Journals the push under the executing handler and delivers it to the
  /// shard owning `home` (nursery, pending list, or channel). From the
  /// orchestrating thread (between windows) the key is final immediately.
  void route_push(Event&& e, iba::NodeId home);

  /// A new flow can shrink the smallest wire size and with it the safe
  /// window; recomputed lazily at the next run_until.
  void note_flow_wire(std::uint32_t wire_bytes);

  /// Adds the shard queues' counters to `into` (minus engine-internal
  /// credit-release traffic), so telemetry equals the sequential run's.
  void fold_stats(EventQueue::Stats& into) const;

  /// Folds every worker's wall-clock phase totals into `into` so the
  /// profile.* probe publishes one fleet-wide total regardless of shard
  /// count. No-op when profiling is off (workers carry no profiler).
  void fold_profile(obs::PhaseProfiler& into) const;

  /// Publishes the shard.* instrument family: per-shard load, window
  /// utilization, barrier waits, channel/journal high-waters, promote and
  /// spill counts. Quarantined (obs::is_quarantined_name) — registered only
  /// under the profile.* probe so determinism byte-compares never see it.
  void publish_shard_stats(obs::Snapshot& snap) const;

  /// Per-worker Perfetto tracks recorded under SimConfig::profile: one
  /// "shard N" track of window spans plus counter tracks for events,
  /// barrier-wait ns, and channel drain depth per window (capped at
  /// kMaxTrackWindows windows per shard, oldest kept).
  void export_tracks(std::vector<obs::PhaseSpan>& spans,
                     std::vector<obs::CounterTrack>& counters) const;

  /// Copies the per-shard load counters into `out` (bench_scaling's
  /// shard_balance figure). Valid whether or not profiling is on: events
  /// and barrier waits are always measured.
  void fill_load(ShardLoadStats& out) const;

  unsigned shards() const noexcept { return part_.shards; }
  iba::Cycle window() const noexcept { return window_; }

 private:
  ShardEngine(Simulator& sim, Partition part, std::uint32_t min_wire,
              iba::Cycle window);

  void worker(unsigned s);
  void resolve_keys();
  void barrier();
  void refresh_window();
  /// Orchestrator, after barrier D: folds each worker's window event count
  /// into the simulator's (so mid-run sampled counters match the sequential
  /// run), records the per-shard track point, and merges the window's trace
  /// buffers into the shared ring in final (time, key) order.
  void end_window(iba::Cycle begin, iba::Cycle end);
  void merge_window_traces();
  /// Pending events across all shard queues, minus queued credit releases —
  /// the exact census the sequential loop takes from queue_.size().
  std::uint64_t pending_total() const;
  ShardChannel& channel(unsigned from, unsigned to) {
    return *channels_[from * part_.shards + to];
  }

  Simulator& sim_;
  Partition part_;
  std::vector<std::unique_ptr<ShardCtx>> shards_;
  std::vector<std::unique_ptr<ShardChannel>> channels_;  ///< from*N + to.
  util::ThreadPool pool_;
  bool active_ = false;

  /// The replayed sequential push counter, in the doubled key domain: an
  /// ordinary push is keyed next_key_ (even) and advances it by 2; a reified
  /// credit release takes the odd key `partner - 1`. Strictly greater than
  /// every key ever assigned.
  std::uint64_t next_key_ = 0;

  /// Replay scratch: the (time, key)-ordered heap of handler groups.
  struct GroupRef {
    iba::Cycle time;
    std::uint64_t seq;
    std::uint32_t shard;
    std::uint32_t group;
  };
  std::vector<GroupRef> resolve_heap_;

  std::uint32_t min_wire_;       ///< Smallest admitted wire size (bytes).
  bool window_dirty_ = false;
  iba::Cycle window_;            ///< Safe window width (lookahead).

  // --- Shard-health instrument state (shard.* family) -----------------------

  std::uint64_t windows_total_ = 0;   ///< Windows the orchestrator planned.
  std::uint64_t replay_groups_ = 0;   ///< Handler groups replayed (barrier B).
  std::uint64_t orch_wait_ns_ = 0;    ///< Orchestrator barrier waits.

  /// One per-shard sample per window, recorded only under SimConfig::profile
  /// and exported as Perfetto tracks. Bounded: after kMaxTrackWindows the
  /// newest windows are dropped (the cap is logged via shard.track_dropped).
  struct TrackPoint {
    iba::Cycle begin = 0, end = 0;
    std::uint64_t events = 0;
    std::uint64_t wait_ns = 0;
    std::uint64_t depth = 0;
  };
  static constexpr std::size_t kMaxTrackWindows = 4096;
  bool tracks_enabled_ = false;
  std::vector<std::vector<TrackPoint>> track_;   ///< [shard][window].
  std::vector<std::uint64_t> prev_wait_ns_;      ///< Wait delta baseline.
  std::uint64_t track_dropped_ = 0;

  /// Scratch for the per-window trace merge (orchestrator only).
  struct TraceRef {
    TraceRecord rec;
    std::uint64_t key = 0;
  };
  std::vector<TraceRef> trace_merge_;

  // Window controls: written by the orchestrator between barriers D and A,
  // read by workers after A — the barrier's acquire/release chain orders
  // these plain accesses.
  iba::Cycle window_end_ = 0;
  bool stop_ = false;

  // Sense-reversing spin barrier over shards + 1 orchestrator. Waiters spin
  // only when every party can have its own hardware thread; oversubscribed,
  // they yield immediately (spinning would steal the CPU from the very
  // party being waited for).
  const std::uint32_t parties_;
  const bool spin_waits_;
  std::atomic<std::uint32_t> arrivals_{0};
  std::atomic<std::uint32_t> generation_{0};
};

}  // namespace ibarb::sim
