// Switch and port state for the DES model (paper §4.1):
//
//  * 8-port switches; each physical port has an input side (per-VL buffers
//    whose space is advertised as credits) and an output side (per-VL queues
//    scheduled by a VLArbitrationTable arbiter).
//  * Multiplexed crossbar: at most one VL of each input port may be feeding
//    the crossbar, and at most one VL of each output port may be receiving
//    from it, at any time. Link transmission is a separate resource.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "iba/arbiter.hpp"
#include "iba/flow_control.hpp"
#include "iba/link.hpp"
#include "iba/sl_to_vl.hpp"
#include "network/graph.hpp"
#include "sim/buffer.hpp"

namespace ibarb::sim {

struct OutputPort {
  PortBuffers queues;                 ///< Per-VL output queues.
  iba::VlArbiter arbiter;
  iba::SlToVlMappingTable sl_map;     ///< Applied when enqueueing here: the
                                      ///< VL the packet uses on this link.
  iba::CreditTracker credits;         ///< Free space at the peer's input.
  iba::Link link;
  network::PortRef peer;              ///< Downstream (node, port).
  std::uint32_t flat_id = 0;          ///< Metrics index.
  bool wired = false;
  bool tx_busy = false;               ///< Serializing onto the link.
  bool xbar_rx_busy = false;          ///< Receiving from the crossbar.
  /// Head-of-VL packets held back for lack of downstream credits, summed
  /// over every readiness scan (telemetry: credit back-pressure intensity).
  std::uint64_t credit_stalls = 0;

  /// Eligible head-packet sizes per VL for the arbiter: nonempty queue with
  /// enough downstream credits.
  iba::ReadyBytes ready_bytes() {
    iba::ReadyBytes ready{};
    std::uint16_t occ = queues.occupancy();
    while (occ != 0) {
      const auto v =
          static_cast<iba::VirtualLane>(std::countr_zero(occ));
      occ &= static_cast<std::uint16_t>(occ - 1);
      const auto bytes = queues.front(v).wire_bytes();
      if (credits.can_send(v, bytes)) {
        ready[v] = bytes;
      } else {
        ++credit_stalls;
      }
    }
    return ready;
  }
};

struct InputPort {
  PortBuffers buffers;   ///< Finite; capacity == advertised credits.
  bool wired = false;
  bool xbar_tx_busy = false;        ///< Feeding the crossbar.
};

/// Which (input, VL, output) transfer starts next — and every round-robin /
/// priority pointer that decision needs — lives in the switch's
/// sched::CrossbarScheduler, not here (see src/sched/crossbar.hpp).
struct SwitchState {
  iba::NodeId node = iba::kInvalidNode;
  std::vector<InputPort> in;
  std::vector<OutputPort> out;
  /// Linear forwarding table indexed by destination LID (programmed by the
  /// subnet manager via Set(LinearForwardingTable) MADs). Empty = fall back
  /// to the shared Routes object (convenient for unit tests).
  std::vector<iba::PortIndex> lft;
};

}  // namespace ibarb::sim
