#include "sim/shard.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

#include "obs/chrome_trace.hpp"
#include "obs/series.hpp"
#include "obs/telemetry.hpp"
#include "sim/simulator.hpp"

namespace ibarb::sim {

thread_local ShardCtx* t_shard = nullptr;

namespace {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

/// A push's position within its handler, on the doubled scale the replay
/// uses: ordinary pushes at 2*idx, a reified credit release at 2*idx - 1 —
/// just before its kXferComplete partner (entry idx - 1), exactly where the
/// sequential core performs the release inline.
inline std::uint64_t eff_idx(const Push& p) {
  assert(!p.release || p.idx > 0);
  return p.release ? 2 * std::uint64_t{p.idx} - 1 : 2 * std::uint64_t{p.idx};
}

bool entry_before(const ShardCtx& c, const Push& a, const Push& b);

/// Final (time, key) order of two handler groups, computed before the keys
/// exist: known keys compare directly; a known key always precedes an
/// unknown one at the same cycle (keys assigned this window are strictly
/// larger than every earlier key); two unknown keys compare through their
/// parents — the push entries that created the handlers — which is exactly
/// the order the barrier-B replay will assign them in.
bool group_before(const ShardCtx& c, const Group& x, const Group& y) {
  if (x.time != y.time) return x.time < y.time;
  if (x.known && y.known) return x.seq < y.seq;
  if (x.known != y.known) return x.known;
  assert(x.self >= 0 && y.self >= 0);
  return entry_before(c, c.journal[static_cast<std::size_t>(x.self)],
                      c.journal[static_cast<std::size_t>(y.self)]);
}

/// Final key order of two journal entries of one shard (the nursery's
/// provisional comparator): same handler — push position; different
/// handlers — handler order.
bool entry_before(const ShardCtx& c, const Push& a, const Push& b) {
  if (a.group == b.group) return eff_idx(a) < eff_idx(b);
  return group_before(c, c.groups[a.group], c.groups[b.group]);
}

/// Nursery heap order over journal indices: event time first, then the
/// provisional (= final) key order. `std::push_heap` with this comparator
/// keeps the *earliest* entry at front.
struct NurseryLater {
  const ShardCtx& c;
  bool operator()(std::size_t ia, std::size_t ib) const {
    const Push& a = c.journal[ia];
    const Push& b = c.journal[ib];
    if (a.ev.time != b.ev.time) return b.ev.time < a.ev.time;
    return entry_before(c, b, a);
  }
};

}  // namespace

std::unique_ptr<ShardEngine> ShardEngine::create(Simulator& sim,
                                                 unsigned shards,
                                                 std::string& error) {
  PartitionResult pr = make_switch_affine(sim.graph_, shards);
  if (!pr.ok) {
    error = pr.error;
    return nullptr;
  }

  // Smallest wire size any admitted flow can put on a cut link. External
  // flows carry caller-chosen payloads per injection, so only the header is
  // a sound bound for them.
  std::uint32_t min_wire = iba::kPacketOverheadBytes + sim.cfg_.max_payload_bytes;
  for (const FlowState& f : sim.flows_) {
    const std::uint32_t wire = f.spec.external
                                   ? iba::kPacketOverheadBytes
                                   : f.spec.payload_bytes +
                                         iba::kPacketOverheadBytes;
    min_wire = std::min(min_wire, wire);
  }

  const LookaheadModel model{min_wire, sim.cfg_.crossbar_delay,
                             sim.cfg_.crossbar_speedup};
  const std::string zero = zero_lookahead_error(
      pr.partition, [&](const Partition::Cut& c) {
        return std::min(forward_latency(c.link, model.min_wire_bytes),
                        reverse_latency(c, model));
      });
  if (!zero.empty()) {
    error = zero;
    return nullptr;
  }

  const iba::Cycle window = safe_window(pr.partition, model);
  return std::unique_ptr<ShardEngine>(
      new ShardEngine(sim, std::move(pr.partition), min_wire, window));
}

ShardEngine::ShardEngine(Simulator& sim, Partition part,
                         std::uint32_t min_wire, iba::Cycle window)
    : sim_(sim), part_(std::move(part)), pool_(part_.shards),
      min_wire_(min_wire), window_(window), parties_(part_.shards + 1),
      spin_waits_(std::thread::hardware_concurrency() >= parties_) {
  shards_.reserve(part_.shards);
  for (unsigned s = 0; s < part_.shards; ++s) {
    auto ctx = std::make_unique<ShardCtx>(sim_.cfg_.queue_impl);
    ctx->id = s;
    if (sim_.cfg_.profile) ctx->profiler = std::make_unique<obs::PhaseProfiler>();
    shards_.push_back(std::move(ctx));
  }
  tracks_enabled_ = sim_.cfg_.profile;
  if (tracks_enabled_) track_.resize(part_.shards);
  prev_wait_ns_.resize(part_.shards, 0);
  channels_.resize(std::size_t{part_.shards} * part_.shards);
  for (unsigned from = 0; from < part_.shards; ++from)
    for (unsigned to = 0; to < part_.shards; ++to)
      if (from != to)
        channels_[std::size_t{from} * part_.shards + to] =
            std::make_unique<ShardChannel>();
}

ShardEngine::~ShardEngine() = default;

void ShardEngine::note_flow_wire(std::uint32_t wire_bytes) {
  if (wire_bytes < min_wire_) {
    min_wire_ = wire_bytes;
    window_dirty_ = true;
  }
}

void ShardEngine::refresh_window() {
  if (!window_dirty_) return;
  window_dirty_ = false;
  const LookaheadModel model{min_wire_, sim_.cfg_.crossbar_delay,
                             sim_.cfg_.crossbar_speedup};
  window_ = safe_window(part_, model);
}

void ShardEngine::adopt(EventQueue& q) {
  assert(!active_);
  // Every key assigned from here must sort after every existing one:
  // 2 * next_seq() is even, above 2x any stamped counter value, and above
  // any key from an earlier parallel phase (next_seq() was floored to
  // next_key_ at surrender).
  next_key_ = std::max(next_key_, 2 * q.next_seq());
  while (!q.empty()) {
    Event e = q.pop_uncounted();
    const iba::NodeId home = sim_.event_home_node(e);
    ShardCtx& c = *shards_[part_.shard_of[home]];
    if (e.type == EventType::kCreditRelease) ++c.pending_releases;
    c.queue.push_keyed(std::move(e), sim_.now_, /*count_stats=*/false);
  }
  sim_.serial_pending_releases_ = 0;
  active_ = true;
}

void ShardEngine::surrender(EventQueue& q) {
  assert(active_);
  for (;;) {
    ShardCtx* best = nullptr;
    for (auto& sc : shards_) {
      if (sc->queue.empty()) continue;
      if (best == nullptr) {
        best = sc.get();
        continue;
      }
      const Event& a = sc->queue.top();
      const Event& b = best->queue.top();
      if (a.time < b.time || (a.time == b.time && a.seq < b.seq))
        best = sc.get();
    }
    if (best == nullptr) break;
    Event e = best->queue.pop_uncounted();
    if (e.type == EventType::kCreditRelease) {
      --best->pending_releases;
      ++sim_.serial_pending_releases_;
    }
    q.push_keyed(std::move(e), 0, /*count_stats=*/false);
  }
  // Future sequential pushes must sort after every migrated key.
  q.ensure_seq_floor(next_key_);
  active_ = false;
}

void ShardEngine::route_push(Event&& e, iba::NodeId home) {
  ShardCtx* const from = t_shard;
  const std::uint32_t target = part_.shard_of[home];

  if (from == nullptr) {
    // Orchestrator context (between windows): nothing is concurrently
    // replaying, so the key is final immediately — the position the
    // sequential counter would stamp after all handled events.
    assert(e.type != EventType::kCreditRelease);
    e.seq = next_key_;
    next_key_ += 2;
    shards_[target]->queue.push_keyed(std::move(e), sim_.now_,
                                      /*count_stats=*/true);
    return;
  }

  ShardCtx& c = *from;
  if (c.cur_group < 0) {
    // The handler's first push: open its group. An in-window handler links
    // back to its own journal entry so the replay can key its children.
    c.cur_group = static_cast<std::int32_t>(c.groups.size());
    if (c.handler_self >= 0) {
      c.journal[static_cast<std::size_t>(c.handler_self)].exec_group =
          c.cur_group;
    }
    c.groups.push_back(Group{c.now, c.handler_seq, c.handler_known,
                             c.handler_self, c.journal.size(),
                             c.journal.size()});
  }
  Group& grp = c.groups[static_cast<std::size_t>(c.cur_group)];

  Push p;
  p.origin = c.now;
  p.group = static_cast<std::uint32_t>(c.cur_group);
  p.idx = static_cast<std::uint32_t>(c.journal.size() - grp.begin);
  p.release = e.type == EventType::kCreditRelease;
  // A release's key derives from the entry pushed right before it (its
  // kXferComplete partner, emitted back-to-back by XbarView::grant).
  assert(!p.release ||
         (p.idx > 0 && !c.journal[grp.begin + p.idx - 1].release));
  p.ev = std::move(e);
  c.journal.push_back(std::move(p));
  grp.end = c.journal.size();

  const std::size_t j = c.journal.size() - 1;
  if (target != c.id) {
    // The lookahead guarantees cross-shard events land at or after the
    // window end — they can never execute in their creation window, so a
    // journal pointer (keyed at barrier B, promoted after barrier C) is
    // enough.
    assert(c.journal[j].ev.time >= window_end_);
    if (channel(c.id, target).push(&c.journal[j])) ++c.spills;
  } else if (c.journal[j].ev.time < window_end_) {
    c.nursery.push_back(j);
    std::push_heap(c.nursery.begin(), c.nursery.end(), NurseryLater{c});
  } else {
    c.pending.push_back(j);
  }
}

void ShardEngine::resolve_keys() {
  auto later = [](const GroupRef& a, const GroupRef& b) {
    return a.time != b.time ? b.time < a.time : b.seq < a.seq;
  };
  auto& h = resolve_heap_;
  h.clear();
  for (unsigned s = 0; s < part_.shards; ++s) {
    const ShardCtx& c = *shards_[s];
    for (std::size_t g = 0; g < c.groups.size(); ++g)
      if (c.groups[g].known)
        h.push_back(GroupRef{c.groups[g].time, c.groups[g].seq, s,
                             static_cast<std::uint32_t>(g)});
  }
  std::make_heap(h.begin(), h.end(), later);

  std::size_t processed = 0;
#ifndef NDEBUG
  std::size_t total = 0;
  for (const auto& sc : shards_) total += sc->groups.size();
#endif
  // Replay: handlers in (time, key) order, each handler's pushes in push
  // order — precisely the order the sequential loop stamped its counter in.
  while (!h.empty()) {
    std::pop_heap(h.begin(), h.end(), later);
    const GroupRef r = h.back();
    h.pop_back();
    ++processed;
    ShardCtx& c = *shards_[r.shard];
    const Group& grp = c.groups[r.group];
    for (std::size_t j = grp.begin; j < grp.end; ++j) {
      Push& p = c.journal[j];
      if (p.release) {
        p.seq = c.journal[j - 1].seq - 1;
      } else {
        p.seq = next_key_;
        next_key_ += 2;
      }
      p.ev.seq = p.seq;
      if (p.exec_group >= 0) {
        Group& child = c.groups[static_cast<std::size_t>(p.exec_group)];
        child.seq = p.seq;
        child.known = true;
        h.push_back(GroupRef{child.time, child.seq, r.shard,
                             static_cast<std::uint32_t>(p.exec_group)});
        std::push_heap(h.begin(), h.end(), later);
      }
    }
  }
  assert(processed == total && "unreachable handler group in key replay");
  replay_groups_ += processed;
}

void ShardEngine::fold_stats(EventQueue::Stats& into) const {
  for (const auto& sc : shards_) {
    const EventQueue::Stats& s = sc->queue.stats();
    into.pushes += s.pushes;
    into.pops += s.pops - sc->internal_pops;
    into.overflow_pushes += s.overflow_pushes;
    for (std::size_t b = 0; b < EventQueue::kResidencyBins; ++b)
      into.residency_log2[b] += s.residency_log2[b];
  }
}

std::uint64_t ShardEngine::pending_total() const {
  std::uint64_t n = 0;
  for (const auto& sc : shards_)
    n += sc->queue.size() - sc->pending_releases;
  return n;
}

void ShardEngine::barrier() {
  const std::uint32_t gen = generation_.load(std::memory_order_acquire);
  if (arrivals_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
    arrivals_.store(0, std::memory_order_relaxed);
    generation_.store(gen + 1, std::memory_order_release);
    return;
  }
  // Spinning only pays when every party has its own core; oversubscribed
  // (shards + orchestrator > hardware threads), the waiter must get off the
  // CPU immediately so the party it is waiting for can run at all.
  // Wait time is charged to the waiter's shard.* instrument — wall clock,
  // so quarantined — and feeds bench_scaling's shard_balance figure; the
  // clock reads happen only on the wait path, never for the last arriver.
  const auto wait_begin = std::chrono::steady_clock::now();
  const unsigned spin_limit = spin_waits_ ? 4096 : 0;
  unsigned spins = 0;
  while (generation_.load(std::memory_order_acquire) == gen) {
    if (++spins < spin_limit) {
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - wait_begin)
                      .count();
  if (ShardCtx* const c = t_shard; c != nullptr) {
    c->barrier_wait_ns += static_cast<std::uint64_t>(ns);
  } else {
    orch_wait_ns_ += static_cast<std::uint64_t>(ns);
  }
}

void ShardEngine::worker(unsigned s) {
  ShardCtx& ctx = *shards_[s];
  t_shard = &ctx;
  // Each worker records per-SL series deliveries into its own lane; the
  // recorder folds lanes at commit (which only the orchestrator performs,
  // between windows), so the hot hook never shares a window map.
  obs::t_series_lane = s;
  const unsigned n = part_.shards;
  for (;;) {
    barrier();  // A: the orchestrator published window_end_ / stop_.
    if (stop_) break;
    const iba::Cycle end = window_end_;
    // Last window's journal was fully consumed (keys assigned at its
    // barrier B, events promoted after its barrier C, trace records merged
    // after barrier D); reuse the storage.
    ctx.journal.clear();
    ctx.groups.clear();
    ctx.nursery.clear();
    ctx.pending.clear();
    ctx.trace_buf.clear();
    ctx.window_channel_depth = 0;
    ++ctx.windows;

    EventQueue& q = ctx.queue;
    for (;;) {
      const bool has_q = !q.empty() && q.top().time < end;
      const bool has_n = !ctx.nursery.empty();
      if (!has_q && !has_n) break;
      // Queue-vs-nursery tie at the same cycle: the queue event wins — its
      // key was assigned in an earlier window and the counter only grows.
      const bool from_q =
          has_q &&
          (!has_n || q.top().time <= ctx.journal[ctx.nursery.front()].ev.time);
      Event e;
      if (from_q) {
        e = q.pop();
        ctx.handler_known = true;
        ctx.handler_seq = e.seq;
        ctx.handler_self = -1;
        if (e.type == EventType::kCreditRelease) {
          ++ctx.internal_pops;
          --ctx.pending_releases;
        }
      } else {
        std::pop_heap(ctx.nursery.begin(), ctx.nursery.end(),
                      NurseryLater{ctx});
        const std::size_t j = ctx.nursery.back();
        ctx.nursery.pop_back();
        Push& p = ctx.journal[j];
        // The sequential run pushed and popped this event through the
        // queue; mirror that in the stats even though it never queued here.
        if (!p.release) q.count_bypass(p.ev.time, p.origin);
        e = std::move(p.ev);
        ctx.handler_known = false;
        ctx.handler_seq = 0;
        ctx.handler_self = static_cast<std::int64_t>(j);
        ++ctx.nursery_events;
      }
      assert(e.time >= ctx.now && "time must not run backwards");
      ctx.now = e.time;
      ctx.cur_group = -1;
      if (e.type != EventType::kCreditRelease) ++ctx.events;
      {
        obs::ScopedTimer timer(ctx.profiler.get(),
                               obs::PhaseProfiler::kDispatch);
        sim_.handle(e);
      }
    }
    ctx.journal_entries += ctx.journal.size();
    if (ctx.journal.size() > ctx.journal_peak)
      ctx.journal_peak = ctx.journal.size();
    barrier();  // B: every producer finished pushing for this window.
    barrier();  // C: the orchestrator replayed the counter; keys final.
    ctx.inbox.clear();
    for (unsigned src = 0; src < n; ++src) {
      if (src == s) continue;
      const std::size_t before = ctx.inbox.size();
      channels_[std::size_t{src} * n + s]->drain(ctx.inbox);
      const auto depth = static_cast<std::uint64_t>(ctx.inbox.size() - before);
      if (depth > ctx.window_channel_depth) ctx.window_channel_depth = depth;
    }
    if (ctx.window_channel_depth > ctx.channel_depth_peak)
      ctx.channel_depth_peak = ctx.window_channel_depth;
    for (const std::size_t j : ctx.pending)
      ctx.inbox.push_back(&ctx.journal[j]);
    ctx.promotes += ctx.inbox.size();
    // Deterministic merge: global (time, key) order, independent of which
    // channel delivered what first. Near-sorted input, so the queue's
    // tail-append fast path dominates.
    std::sort(ctx.inbox.begin(), ctx.inbox.end(),
              [](const Push* a, const Push* b) {
                return a->ev.time != b->ev.time ? a->ev.time < b->ev.time
                                                : a->seq < b->seq;
              });
    for (Push* p : ctx.inbox) {
      if (p->release) ++ctx.pending_releases;
      q.push_keyed(std::move(p->ev), p->origin, /*count_stats=*/!p->release);
    }
    barrier();  // D: queues settled; the orchestrator may plan.
  }
  t_shard = nullptr;
  obs::t_series_lane = 0;
}

void ShardEngine::run_until(iba::Cycle t) {
  assert(active_);
  refresh_window();
  stop_ = false;
  std::vector<std::future<void>> futs;
  futs.reserve(part_.shards);
  for (unsigned s = 0; s < part_.shards; ++s)
    futs.push_back(pool_.submit([this, s] { worker(s); }));

  obs::SeriesRecorder* const series = sim_.series_.get();
  for (;;) {
    iba::Cycle min_next = iba::kNeverCycle;
    for (const auto& sc : shards_)
      if (!sc->queue.empty())
        min_next = std::min(min_next, sc->queue.top().time);
    if (min_next > t) {
      // Mirrors the sequential loop's trailing mark: every boundary <= t is
      // behind us even if no event crossed it.
      if (t >= sim_.next_pending_mark_) sim_.sample_pending(pending_total(), t);
      break;
    }
    if (min_next >= sim_.next_pending_mark_)
      sim_.sample_pending(pending_total(), min_next);
    // Series boundaries commit here, between windows, in the exact position
    // the sequential loop commits them: after the pending census (a commit's
    // registry snapshot reads the census peak) and before the next event
    // runs. The workers are parked in barrier A, so the orchestrator samples
    // alone, and window ends never cross a boundary (clamp below) — every
    // boundary < min_next reflects precisely the events at or before it.
    if (series != nullptr && min_next > series->next_due()) {
      obs::ScopedTimer timer(sim_.profiler_.get(), obs::PhaseProfiler::kSeries);
      series->advance_to(min_next);
    }
    // Windows never span a sampling mark or a series boundary, so each
    // barrier lands exactly on it and the census / sampled state matches
    // the sequential engine's.
    iba::Cycle end = std::min(
        {min_next + window_, t + 1, sim_.next_pending_mark_});
    if (series != nullptr) end = std::min(end, series->next_due() + 1);
    window_end_ = end;
    barrier();  // A
    barrier();  // B
    resolve_keys();
    barrier();  // C
    barrier();  // D
    end_window(min_next, end);
    ++windows_total_;
  }

  stop_ = true;
  barrier();  // Release the workers into their exit branch.
  for (auto& f : futs) f.get();
  if (sim_.now_ < t) sim_.now_ = t;
  // Trailing boundary flush, as at the end of the sequential run_until.
  if (series != nullptr && t + 1 > series->next_due()) {
    obs::ScopedTimer timer(sim_.profiler_.get(), obs::PhaseProfiler::kSeries);
    series->advance_to(t + 1);
  }
}

void ShardEngine::end_window(iba::Cycle begin, iba::Cycle end) {
  for (auto& sc : shards_) {
    // Fold each worker's window event count into the simulator's so a
    // mid-run registry snapshot (series commit, probe) sees the same
    // sim.events a sequential run would at this boundary.
    sim_.events_ += sc->events;
    sc->lifetime_events += sc->events;
    if (tracks_enabled_) {
      auto& tp = track_[sc->id];
      if (tp.size() < kMaxTrackWindows) {
        tp.push_back(TrackPoint{begin, end, sc->events,
                                sc->barrier_wait_ns - prev_wait_ns_[sc->id],
                                sc->window_channel_depth});
      } else {
        ++track_dropped_;
      }
      prev_wait_ns_[sc->id] = sc->barrier_wait_ns;
    }
    sc->events = 0;
  }
  if (sim_.trace_.enabled()) merge_window_traces();
}

void ShardEngine::merge_window_traces() {
  trace_merge_.clear();
  for (const auto& sc : shards_) {
    for (const ShardCtx::PendingTrace& pt : sc->trace_buf) {
      // A handler that came off the queue carried its final key; one that
      // executed out of the nursery is a journal entry whose key the
      // barrier-B replay has assigned by now.
      const std::uint64_t key =
          pt.known ? pt.seq
                   : sc->journal[static_cast<std::size_t>(pt.self)].seq;
      trace_merge_.push_back(TraceRef{pt.rec, key});
    }
  }
  // Global (time, handler-key) order is exactly the order the sequential
  // loop executed these handlers in; records within one handler keep their
  // emission order through the sort's stability. Appending in that order
  // reproduces the sequential ring byte for byte, overwrite behavior
  // included.
  std::stable_sort(trace_merge_.begin(), trace_merge_.end(),
                   [](const TraceRef& a, const TraceRef& b) {
                     return a.rec.time != b.rec.time ? a.rec.time < b.rec.time
                                                     : a.key < b.key;
                   });
  for (const TraceRef& tr : trace_merge_) sim_.trace_.append(tr.rec);
}

void ShardEngine::fold_profile(obs::PhaseProfiler& into) const {
  for (const auto& sc : shards_)
    if (sc->profiler) into.merge(*sc->profiler);
}

void ShardEngine::publish_shard_stats(obs::Snapshot& snap) const {
  const std::size_t n = shards_.size();
  std::vector<std::uint64_t> events(n), wait(n), depth(n), jpeak(n);
  std::uint64_t total_events = 0, journal_entries = 0, nursery = 0;
  std::uint64_t promotes = 0, spills = 0, wait_total = 0;
  for (std::size_t s = 0; s < n; ++s) {
    const ShardCtx& c = *shards_[s];
    events[s] = c.lifetime_events;
    wait[s] = c.barrier_wait_ns;
    depth[s] = c.channel_depth_peak;
    jpeak[s] = c.journal_peak;
    total_events += c.lifetime_events;
    journal_entries += c.journal_entries;
    nursery += c.nursery_events;
    promotes += c.promotes;
    spills += c.spills;
    wait_total += c.barrier_wait_ns;
  }
  snap.merge_gauge("shard.count", static_cast<double>(n),
                   obs::MergePolicy::kMax);
  snap.merge_gauge("shard.window_cycles", static_cast<double>(window_),
                   obs::MergePolicy::kMax);
  snap.merge_gauge("shard.events_per_window",
                   windows_total_ == 0
                       ? 0.0
                       : static_cast<double>(total_events) /
                             static_cast<double>(windows_total_),
                   obs::MergePolicy::kMax);
  snap.add_counter("shard.windows", windows_total_);
  snap.add_counter("shard.events", total_events);
  snap.add_counter("shard.journal_entries", journal_entries);
  snap.add_counter("shard.nursery_events", nursery);
  snap.add_counter("shard.promotes", promotes);
  snap.add_counter("shard.spills", spills);
  snap.add_counter("shard.replay_groups", replay_groups_);
  snap.add_counter("shard.barrier_wait_ns", wait_total);
  snap.add_counter("shard.orchestrator_wait_ns", orch_wait_ns_);
  snap.add_counter("shard.track_windows_dropped", track_dropped_);
  // Per-shard distributions as histograms, bin = shard id: load balance,
  // wall-clock waits, and structural high-waters at a glance.
  snap.add_histogram("shard.events_by_shard", events.data(), n);
  snap.add_histogram("shard.barrier_wait_ns_by_shard", wait.data(), n);
  snap.add_histogram("shard.channel_depth_peak_by_shard", depth.data(), n);
  snap.add_histogram("shard.journal_peak_by_shard", jpeak.data(), n);
}

void ShardEngine::export_tracks(
    std::vector<obs::PhaseSpan>& spans,
    std::vector<obs::CounterTrack>& counters) const {
  if (!tracks_enabled_) return;
  for (std::size_t s = 0; s < track_.size(); ++s) {
    const std::string track = "shard " + std::to_string(s);
    obs::CounterTrack ev{"shard" + std::to_string(s) + ".events", {}};
    obs::CounterTrack wait{"shard" + std::to_string(s) + ".barrier_wait_ns",
                           {}};
    obs::CounterTrack depth{"shard" + std::to_string(s) + ".channel_depth",
                            {}};
    for (const TrackPoint& tp : track_[s]) {
      spans.push_back(obs::PhaseSpan{track, "window", tp.begin, tp.end});
      ev.points.emplace_back(tp.end, static_cast<double>(tp.events));
      // Barrier waits are wall-clock ns plotted against the simulated
      // timeline (a span would misleadingly occupy simulated time), and
      // channel depth is the deepest single-channel drain of the window.
      wait.points.emplace_back(tp.end, static_cast<double>(tp.wait_ns));
      depth.points.emplace_back(tp.end, static_cast<double>(tp.depth));
    }
    counters.push_back(std::move(ev));
    counters.push_back(std::move(wait));
    counters.push_back(std::move(depth));
  }
}

void ShardEngine::fill_load(ShardLoadStats& out) const {
  out.events.clear();
  out.barrier_wait_ns.clear();
  for (const auto& sc : shards_) {
    out.events.push_back(sc->lifetime_events);
    out.barrier_wait_ns.push_back(sc->barrier_wait_ns);
  }
  out.windows = windows_total_;
  out.orchestrator_wait_ns = orch_wait_ns_;
}

}  // namespace ibarb::sim
