#include "sim/trace.hpp"

#include <ostream>

namespace ibarb::sim {

const char* to_string(TraceEvent e) {
  switch (e) {
    case TraceEvent::kInject: return "inject";
    case TraceEvent::kLinkTx: return "link-tx";
    case TraceEvent::kXbar: return "xbar";
    case TraceEvent::kDeliver: return "deliver";
    case TraceEvent::kDrop: return "drop";
  }
  return "?";
}

std::vector<TraceRecord> PacketTrace::chronological() const {
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_ || capacity_ == 0) {
    out = ring_;
  } else {
    const auto head = next_ % capacity_;  // oldest element
    out.insert(out.end(), ring_.begin() + static_cast<long>(head),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<long>(head));
  }
  return out;
}

std::vector<TraceRecord> PacketTrace::journey(std::uint64_t packet_id) const {
  std::vector<TraceRecord> out;
  for (const auto& r : chronological())
    if (r.packet == packet_id) out.push_back(r);
  return out;
}

void PacketTrace::dump_csv(std::ostream& os) const {
  os << "cycle,event,node,port,vl,packet,connection\n";
  for (const auto& r : chronological()) {
    os << r.time << ',' << to_string(r.event) << ',' << r.node << ','
       << unsigned(r.port) << ',' << unsigned(r.vl) << ',' << r.packet << ','
       << r.connection << '\n';
  }
}

}  // namespace ibarb::sim
