// The network simulator: wires SwitchState/HostState over a FabricGraph,
// executes the event loop, and drives the paper's two-phase measurement
// protocol (transient warm-up, then a steady-state window that lasts until
// the slowest QoS connection has received a target number of packets).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "iba/vl_arbitration.hpp"
#include "network/graph.hpp"
#include "network/routing.hpp"
#include "obs/profile.hpp"
#include "obs/series.hpp"
#include "obs/telemetry.hpp"
#include "sched/crossbar.hpp"
#include "sim/event_queue.hpp"
#include "sim/host.hpp"
#include "sim/metrics.hpp"
#include "sim/switch.hpp"
#include "sim/trace.hpp"

namespace ibarb::obs {
struct CounterTrack;
struct PhaseSpan;
}  // namespace ibarb::obs

namespace ibarb::sim {

struct SimConfig {
  /// Per-VL buffer depth in whole packets of the largest wire size in use
  /// (paper: "each VL is large enough to store four whole packets").
  unsigned buffer_packets = 4;
  std::uint32_t max_payload_bytes = 4096;  ///< Sizes buffers and credits.
  iba::Cycle crossbar_delay = 8;  ///< Routing/arbitration latency per hop.
  /// Internal speedup of the crossbar over the link rate. With backlog, the
  /// output queues (not the fabric) become the contention point, so the
  /// VLArbitrationTable governs the link as the architecture intends.
  double crossbar_speedup = 2.0;
  /// Ring-buffer size of the packet trace; 0 disables tracing entirely.
  std::size_t trace_capacity = 0;
  /// Time-series sampling cadence in cycles (--sample-every); 0 disables the
  /// SeriesRecorder entirely — the hot paths then pay one null check.
  std::uint64_t sample_every = 0;
  /// Max windows the series keeps before power-of-two decimation doubles
  /// the window width (kept even; see obs::SeriesRecorder).
  std::size_t series_capacity = 512;
  /// Enables the wall-clock self-profiler (obs::PhaseProfiler). Its
  /// profile.* telemetry is nondeterministic by nature and therefore
  /// excluded from series sampling and from every byte-compare in CI.
  bool profile = false;
  std::uint64_t seed = 1;
  /// Event-queue implementation. kBinaryHeap keeps the pre-wheel queue
  /// selectable for differential tests and old-vs-new benchmarks; both
  /// produce the exact same (time, seq) event order.
  EventQueueImpl queue_impl = EventQueueImpl::kWheel;
  /// Crossbar matching policy, factory-selected like queue_impl (env
  /// IBARB_CROSSBAR, flag --crossbar). kWrr reproduces the pre-refactor
  /// grant sequence — and so the whole event order — bit-for-bit.
  sched::CrossbarImpl crossbar_impl = sched::CrossbarImpl::kWrr;
  /// Number of switch-affine shard workers for the parallel engine
  /// (--shards / IBARB_SHARDS; see docs/PARALLEL.md). 1 keeps the classic
  /// sequential loop. Values > 1 engage src/sim/shard.hpp for runs the
  /// engine can reproduce byte-identically. Observers — tracing, series
  /// sampling, profiling — ride the parallel path: each shard records into
  /// its own plane and the orchestrator merges them deterministically at
  /// window barriers. Anything the engine cannot reproduce (fault hooks,
  /// delivery listeners, pending call_at controls, active purge barriers,
  /// an unshardable topology) falls back to the sequential path — with a
  /// one-shot stderr diagnostic and the reason exposed via
  /// Simulator::shard_fallback_reason() — so output is invariant in this
  /// knob by construction.
  unsigned shards = 1;
};

struct RunSummary {
  iba::Cycle warmup_end = 0;
  iba::Cycle window_cycles = 0;
  bool hit_hard_limit = false;
  std::uint64_t events = 0;
};

/// Fault-layer interception points on the simulator's data path. The
/// simulator calls these inline (single-threaded, deterministic event
/// order), so an implementation may keep its own RNG and still reproduce
/// bit-identically. All hooks default to "healthy hardware".
class FaultHooks {
 public:
  virtual ~FaultHooks() = default;

  /// False blocks (node, port) from starting a new serialization — a downed
  /// link or a stuck transmitter. The port is NOT polled; when the fault
  /// clears, the fault layer must call Simulator::kick_port.
  virtual bool may_transmit(iba::NodeId, iba::PortIndex) { return true; }

  /// Slow-port faults: return the (possibly stretched) serialization time.
  virtual iba::Cycle stretch_serialization(iba::NodeId, iba::PortIndex,
                                           iba::Cycle cycles) {
    return cycles;
  }

  enum class RxVerdict : std::uint8_t { kDeliver, kDrop };

  /// Called for every non-management packet completing link traversal into
  /// (node, port). kDrop discards it (upstream credits are still released,
  /// as real hardware frees the buffer after the CRC check fails).
  virtual RxVerdict on_link_rx(iba::NodeId, iba::PortIndex,
                               const iba::Packet&) {
    return RxVerdict::kDeliver;
  }
};

class ShardEngine;

/// Per-shard load counters for bench_scaling's shard_balance figure:
/// parallel arrays indexed by shard id. Empty when the parallel engine
/// never engaged. Events are deterministic; the wait fields are wall-clock
/// and therefore quarantined from determinism compares.
struct ShardLoadStats {
  std::vector<std::uint64_t> events;
  std::vector<std::uint64_t> barrier_wait_ns;
  std::uint64_t windows = 0;
  std::uint64_t orchestrator_wait_ns = 0;
};

class Simulator {
  friend class XbarView;  ///< sched::CrossbarPorts adapter (simulator.cpp).
  friend class ShardEngine;  ///< Parallel window engine (sim/shard.hpp).

 public:
  Simulator(const network::FabricGraph& graph, const network::Routes& routes,
            SimConfig cfg);
  ~Simulator();  ///< Out-of-line: ShardEngine is incomplete here.

  /// The telemetry probe registered at construction captures `this`.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // --- Configuration (the subnet-management plane) -----------------------

  /// Programs the VLArbitrationTable of one output port. For hosts, `port`
  /// must be 0 (the injection interface).
  void set_output_arbitration(iba::NodeId node, iba::PortIndex port,
                              const iba::VlArbitrationTable& table);

  /// Programs one port's SLtoVL table (applied to packets entering that
  /// port's link).
  void set_sl_to_vl(iba::NodeId node, iba::PortIndex port,
                    const iba::SlToVlMappingTable& map);

  /// Same SLtoVL everywhere — the common case in the paper's setup.
  void set_sl_to_vl_all(const iba::SlToVlMappingTable& map);

  /// Annotates a port's reserved bandwidth for Table-2 style reporting.
  void set_port_reserved_mbps(iba::NodeId node, iba::PortIndex port,
                              double mbps);

  /// Installs a switch's linear forwarding table (indexed by LID). When a
  /// switch has an LFT the data path consults it instead of the shared
  /// Routes object — this is what the subnet manager programs via MADs.
  void set_forwarding(iba::NodeId sw, std::vector<iba::PortIndex> lft);

  /// Registers a traffic flow; returns its connection index (also its index
  /// in metrics().connections). May be called at any time; generation
  /// starts at max(now, start_offset).
  std::uint32_t add_flow(const FlowSpec& spec);

  /// Stops a flow's generator (already-queued packets still drain). Used by
  /// the dynamic scenario driver when a connection is torn down.
  void stop_flow(std::uint32_t flow_index);

  /// Restarts a stopped (non-external) flow's generator at the current time.
  /// No-op if the flow was never stopped.
  void resume_flow(std::uint32_t flow_index);

  /// Misbehaving-source dial: the flow generates at `factor` times its
  /// nominal rate until reset to 1.0. Takes effect from the next packet.
  void set_flow_overdrive(std::uint32_t flow_index, double factor);

  // --- Fault injection & transport plumbing -------------------------------

  /// Installs (or clears, with nullptr) the fault interception hooks. The
  /// hooks object must outlive the simulator or be detached first.
  void attach_fault_hooks(FaultHooks* hooks) { hooks_ = hooks; }

  /// Schedules `fn` to run at max(t, now) through the event queue — same
  /// deterministic (time, insertion) order as every other event. One-shot.
  void call_at(iba::Cycle t, std::function<void()> fn);

  /// Observer for every host-side packet delivery (called after metrics).
  /// Used by transports (faults/rc_session) to terminate their packets.
  void set_delivery_listener(
      std::function<void(const iba::Packet&, iba::Cycle)> fn) {
    delivery_listener_ = std::move(fn);
  }

  /// Injects one packet on an `external` flow as if its generator fired at
  /// the current time. Returns the packet id.
  std::uint64_t inject_external(std::uint32_t flow_index,
                                std::uint32_t payload_bytes,
                                std::uint32_t sequence, std::uint8_t rc_op,
                                bool rc_last);

  /// Re-polls a port whose fault (down/stuck) cleared.
  void kick_port(iba::NodeId node, iba::PortIndex port);

  /// Discards everything queued at (node, port)'s output — the hardware
  /// flush when a link goes down or its routes move away. Dropped packets
  /// are recorded per connection. Returns the number of packets discarded.
  std::uint64_t flush_output_queue(iba::NodeId node, iba::PortIndex port);

  /// Discards `flow`'s packets queued at (node, port)'s output — recovery
  /// abandons in-flight packets on a rerouted connection's old path, where
  /// the VL's arbitration weight left with the reservation and anything
  /// still queued would starve until an unrelated reprogram revived it.
  /// Dropped packets are recorded per connection; returns the count.
  std::uint64_t purge_flow_from_output(iba::NodeId node, iba::PortIndex port,
                                       std::uint32_t flow);

  /// Lifts a purge_flow_from_output barrier: `flow`'s packets may enqueue at
  /// (node, port) again. Recovery calls this for every switch hop of a
  /// re-admitted path, since a later re-route may legitimately reuse a port
  /// that an earlier one abandoned.
  void clear_flow_purge(iba::NodeId node, iba::PortIndex port,
                        std::uint32_t flow);

  /// Packets dropped by a purge barrier after the purge itself — they were
  /// in flight (crossbar or link) at the purge instant and landed on the
  /// abandoned port afterwards.
  std::uint64_t purged_in_flight_late() const noexcept { return purged_late_; }

  // --- Execution ----------------------------------------------------------

  /// Runs all events with time <= t.
  void run_until(iba::Cycle t);

  /// Paper protocol: warm up (stats off), then measure until every QoS
  /// connection has received `min_rx_packets` in the window, or until
  /// `hard_limit` cycles of window. Returns what happened.
  RunSummary run_paper_phases(iba::Cycle warmup, std::uint64_t min_rx_packets,
                              iba::Cycle hard_limit);

  iba::Cycle now() const noexcept { return now_; }
  Metrics& metrics() noexcept { return metrics_; }
  const Metrics& metrics() const noexcept { return metrics_; }

  /// Flat metrics index of an output port.
  std::uint32_t flat_port_id(iba::NodeId node, iba::PortIndex port) const;

  std::uint64_t events_processed() const noexcept { return events_; }

  /// Total packets currently queued anywhere (tests: conservation checks).
  std::uint64_t packets_in_network() const;

  const PacketTrace& trace() const noexcept { return trace_; }

  /// This run's instrument registry. Components attached to the simulator
  /// (fault layer, transports) register their probes here at construction;
  /// the simulator's own probe publishes event-queue, arbiter, buffer and
  /// credit telemetry. One registry per simulator — never shared across
  /// runs — so --jobs parallelism stays race-free (see docs/OBSERVABILITY.md).
  obs::TelemetryRegistry& telemetry() noexcept { return telemetry_; }

  /// Runs all probes and returns the deterministic instrument snapshot.
  obs::Snapshot telemetry_snapshot() { return telemetry_.snapshot(); }

  /// The shard count the run is actually using: SimConfig::shards, pinned
  /// back to 1 once an unshardable topology forced the sequential fallback.
  /// Lets tests assert the parallel engine really engaged (or refused)
  /// instead of trusting the requested flag.
  unsigned effective_shards() const noexcept { return cfg_.shards; }

  /// Why the last run_until took the sequential core although --shards > 1
  /// was requested: one of "fault-hooks", "delivery-listener",
  /// "pending-controls", "purge-barriers", "unshardable-topology". Empty
  /// while the parallel engine is engaged — and always empty when only one
  /// shard was requested in the first place.
  const std::string& shard_fallback_reason() const noexcept {
    return fallback_reason_;
  }

  /// Per-shard load/wait counters for the shard_balance figure; empty
  /// vectors when the parallel engine never engaged.
  ShardLoadStats shard_load() const;

  /// Appends the per-worker Perfetto tracks (recorded under --profile with
  /// shards > 1) for obs::write_chrome_trace; no-op otherwise.
  void export_shard_tracks(std::vector<obs::PhaseSpan>& spans,
                           std::vector<obs::CounterTrack>& counters) const;

  /// The time-series recorder, or null when SimConfig::sample_every == 0.
  /// The fault/recovery layer stamps state transitions through this; benches
  /// call finalize() on it after their last run_until.
  obs::SeriesRecorder* series() noexcept { return series_.get(); }

 private:
  void handle(const Event& e);
  void on_generate(std::uint32_t flow_index);
  void on_link_deliver(const Event& e);
  void on_tx_complete(iba::NodeId node, iba::PortIndex port);
  void on_xfer_complete(const Event& e);
  /// Parallel engine only: applies a reified upstream credit return (the
  /// half of on_xfer_complete that crosses a shard boundary).
  void on_credit_release(const Event& e);

  // --- Parallel-engine plumbing (src/sim/shard.hpp) -----------------------

  /// All handler pushes go through here: straight into queue_ on the
  /// sequential path, keyed and routed to the owning shard when the engine
  /// holds the events.
  void push_event(Event e);
  /// The clock handlers must read: the executing shard's when inside a
  /// parallel window (thread-local), the global now_ otherwise.
  iba::Cycle now_cur() const;
  /// The node whose shard owns (and whose worker executes) an event.
  iba::NodeId event_home_node(const Event& e) const;
  /// Decides sequential vs parallel for the next run_until: builds/activates
  /// the engine when shards > 1 and no hazard is present, or surrenders the
  /// events back to queue_ (warning once and pinning shards = 1 when the
  /// topology itself cannot be sharded).
  bool parallel_ready();
  /// Records a pending-event census (the queue.peak_size gauge) and advances
  /// the mark past `through`. Both engines call this at identical points.
  void sample_pending(std::uint64_t pending, iba::Cycle through);
  /// Every trace emission goes through here: straight into the ring on the
  /// sequential path; inside a parallel window, into the executing shard's
  /// buffer (tagged with the handler identity) for the deterministic merge
  /// after barrier D.
  void record_trace(iba::Cycle time, TraceEvent event, iba::NodeId node,
                    iba::PortIndex port, iba::VirtualLane vl,
                    const iba::Packet& p);
  /// The profiler a ScopedTimer must charge: the executing shard worker's
  /// inside a parallel window, the simulator's otherwise. Null (timer
  /// no-ops) unless SimConfig::profile.
  obs::PhaseProfiler* cur_profiler() const;

  void try_transmit(iba::NodeId node, iba::PortIndex port);
  /// Runs the switch's crossbar scheduler (sched::CrossbarScheduler) over an
  /// XbarView of the ports. `only_input` >= 0 is the cheap single-arrival
  /// trigger hint.
  void schedule_crossbar(std::uint32_t switch_index, int only_input);

  OutputPort& output_port(iba::NodeId node, iba::PortIndex port);
  iba::PortIndex route_port(const SwitchState& sw, iba::Lid dst) const;
  void schedule_flow(std::uint32_t flow_index, iba::Cycle not_before);

  const network::FabricGraph& graph_;
  const network::Routes& routes_;
  SimConfig cfg_;
  std::uint32_t buffer_capacity_bytes_ = 0;

  EventQueue queue_;
  iba::Cycle now_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t next_packet_id_ = 1;

  /// Lazily-built parallel engine (cfg_.shards > 1); owns the pending
  /// events whenever engine_->active().
  std::unique_ptr<ShardEngine> engine_;
  bool shard_fallback_warned_ = false;
  /// See shard_fallback_reason().
  std::string fallback_reason_;
  /// Pending-event census for the queue.peak_size gauge, sampled at fixed
  /// cycle marks so sequential and sharded runs publish the same value (a
  /// true per-push peak is tie-order-sensitive).
  static constexpr iba::Cycle kPendingSampleEvery = 4096;
  std::uint64_t pending_peak_ = 0;
  iba::Cycle next_pending_mark_ = kPendingSampleEvery;
  /// kCreditRelease events executed on the sequential path (only possible
  /// after a ShardEngine::surrender handed them back): their queue pops are
  /// engine bookkeeping with no sequential counterpart, so the snapshot
  /// probe subtracts them — the serial twin of ShardCtx::internal_pops.
  std::uint64_t serial_release_pops_ = 0;
  /// kCreditRelease events currently in queue_ (same provenance), excluded
  /// from the pending-event census like ShardCtx::pending_releases.
  std::uint64_t serial_pending_releases_ = 0;

  FaultHooks* hooks_ = nullptr;
  /// Active purge barriers: (flat output port, connection). A packet of a
  /// purged connection arriving at that output is dropped on enqueue, so the
  /// crossbar/link in-flight race cannot strand it on an abandoned VL.
  std::set<std::pair<std::uint32_t, std::uint32_t>> purged_flows_;
  std::uint64_t purged_late_ = 0;
  std::function<void(const iba::Packet&, iba::Cycle)> delivery_listener_;
  /// Pending call_at callbacks, keyed by the id carried in Event::aux. An
  /// ordered map keeps destruction order deterministic.
  std::map<std::uint32_t, std::function<void()>> controls_;
  std::uint32_t next_control_id_ = 0;

  // Dense state. index_[node] is the position within switches_ or hosts_.
  std::vector<std::uint32_t> index_;
  std::vector<SwitchState> switches_;
  /// One crossbar scheduler per switch (same index as switches_); owns all
  /// matching state — pointers, priority matrices, rate counters.
  std::vector<std::unique_ptr<sched::CrossbarScheduler>> xbar_;
  std::vector<HostState> hosts_;
  std::vector<FlowState> flows_;
  Metrics metrics_;
  PacketTrace trace_;
  obs::TelemetryRegistry telemetry_;
  std::unique_ptr<obs::SeriesRecorder> series_;
  std::unique_ptr<obs::PhaseProfiler> profiler_;
};

}  // namespace ibarb::sim
