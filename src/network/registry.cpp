#include "network/registry.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "network/topology.hpp"

namespace ibarb::network {

namespace {

struct FamilyInfo {
  std::string_view name;
  std::vector<std::pair<std::string_view, std::uint64_t>> keys;  // +default
};

const std::vector<FamilyInfo>& families() {
  // Registry order == kTopologyFamilyNames == canonical() key order.
  static const std::vector<FamilyInfo> kFamilies{
      {"irregular",
       {{"switches", 16},
        {"ports", 8},
        {"hosts", 4},
        {"seed", 1},
        {"delay", 2},
        {"rate", 1}}},
      {"single", {{"hosts", 4}, {"ports", 8}, {"rate", 1}}},
      {"line", {{"switches", 4}, {"hosts", 1}, {"rate", 1}}},
      {"mesh2d", {{"cols", 4}, {"rows", 4}, {"hosts", 1}, {"rate", 1}}},
      {"torus2d", {{"cols", 4}, {"rows", 4}, {"hosts", 1}, {"rate", 1}}},
      {"torus3d",
       {{"x", 4}, {"y", 4}, {"z", 4}, {"hosts", 1}, {"rate", 1}}},
      {"fattree", {{"k", 4}, {"n", 2}, {"rate", 1}}},
      {"fattree2",
       {{"spines", 4}, {"leaves", 8}, {"hosts", 4}, {"rate", 1}}},
      // g=0 / p=0 mean "balanced defaults": g = a*h+1, p = h.
      {"dragonfly",
       {{"a", 4}, {"h", 2}, {"g", 0}, {"p", 0}, {"rate", 1}}},
  };
  return kFamilies;
}

const FamilyInfo& family_info(std::string_view name) {
  for (const auto& f : families())
    if (f.name == name) return f;
  throw std::invalid_argument("unknown topology family '" +
                              std::string(name) + "' (expected " +
                              std::string(kTopologyFamilyNames) + ")");
}

iba::LinkRate parse_rate(std::uint64_t v) {
  switch (v) {
    case 1: return iba::LinkRate::k1x;
    case 4: return iba::LinkRate::k4x;
    case 12: return iba::LinkRate::k12x;
    default:
      throw std::invalid_argument("rate=" + std::to_string(v) +
                                  " is not an IBA link width (1|4|12)");
  }
}

unsigned narrow(std::string_view key, std::uint64_t v) {
  if (v > 0xFFFFFFFFull)
    throw std::invalid_argument(std::string(key) + "=" + std::to_string(v) +
                                " does not fit in 32 bits");
  return static_cast<unsigned>(v);
}

}  // namespace

TopologySpec TopologySpec::parse(std::string_view text) {
  TopologySpec spec;
  const auto colon = text.find(':');
  const auto fam = text.substr(0, colon);
  spec.family_ = std::string(family_info(fam).name);  // validates
  if (colon == std::string_view::npos) return spec;

  auto rest = text.substr(colon + 1);
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const auto pair = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                          : rest.substr(comma + 1);
    const auto eq = pair.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 == pair.size())
      throw std::invalid_argument("malformed topology parameter '" +
                                  std::string(pair) +
                                  "' (expected key=value)");
    const auto key = pair.substr(0, eq);
    const auto value = pair.substr(eq + 1);
    std::uint64_t v = 0;
    for (const char c : value) {
      if (c < '0' || c > '9')
        throw std::invalid_argument("topology parameter '" +
                                    std::string(key) + "=" +
                                    std::string(value) +
                                    "' is not an unsigned integer");
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
      if (v > 0xFFFFFFFFFFFFull)
        throw std::invalid_argument("topology parameter '" +
                                    std::string(key) + "' overflows");
    }
    spec.set(key, v);
  }
  return spec;
}

bool TopologySpec::has(std::string_view key) const noexcept {
  return std::any_of(params_.begin(), params_.end(),
                     [&](const auto& p) { return p.first == key; });
}

std::uint64_t TopologySpec::param(std::string_view key) const {
  for (const auto& p : params_)
    if (p.first == key) return p.second;
  for (const auto& k : family_info(family_).keys)
    if (k.first == key) return k.second;
  throw std::invalid_argument("topology family '" + family_ +
                              "' has no parameter '" + std::string(key) +
                              "'");
}

void TopologySpec::set(std::string_view key, std::uint64_t value) {
  const auto& info = family_info(family_);
  const bool known =
      std::any_of(info.keys.begin(), info.keys.end(),
                  [&](const auto& k) { return k.first == key; });
  if (!known) {
    std::string valid;
    for (const auto& k : info.keys) {
      if (!valid.empty()) valid += "|";
      valid += k.first;
    }
    throw std::invalid_argument("topology family '" + family_ +
                                "' has no parameter '" + std::string(key) +
                                "' (expected " + valid + ")");
  }
  // `rate` maps to the IBA link width at build; reject bad values here so
  // `--topo` flag validation catches them before any simulation starts.
  if (key == "rate" && value != 1 && value != 4 && value != 12) {
    throw std::invalid_argument("topology parameter rate=" +
                                std::to_string(value) +
                                " is not an IBA link width (1, 4 or 12)");
  }
  for (auto& p : params_)
    if (p.first == key) {
      p.second = value;
      return;
    }
  params_.emplace_back(std::string(key), value);
}

std::string TopologySpec::canonical() const {
  std::string out = family_;
  char sep = ':';
  for (const auto& k : family_info(family_).keys) {
    out += sep;
    sep = ',';
    out += std::string(k.first) + "=" + std::to_string(param(k.first));
  }
  return out;
}

const std::vector<std::pair<std::string_view, std::uint64_t>>&
TopologySpec::keys() const {
  return family_info(family_).keys;
}

FabricGraph TopologySpec::build() const {
  const auto rate = parse_rate(param("rate"));
  if (family_ == "irregular") {
    IrregularSpec spec;
    spec.switches = narrow("switches", param("switches"));
    spec.ports_per_switch = narrow("ports", param("ports"));
    spec.hosts_per_switch = narrow("hosts", param("hosts"));
    spec.seed = param("seed");
    spec.propagation_delay = param("delay");
    spec.rate = rate;
    return gen::irregular(spec);
  }
  if (family_ == "single")
    return gen::single_switch(narrow("hosts", param("hosts")),
                              narrow("ports", param("ports")), rate);
  if (family_ == "line")
    return gen::line(narrow("switches", param("switches")),
                     narrow("hosts", param("hosts")), rate);
  if (family_ == "mesh2d")
    return gen::mesh2d(narrow("cols", param("cols")),
                       narrow("rows", param("rows")),
                       narrow("hosts", param("hosts")), rate);
  if (family_ == "torus2d")
    return gen::torus2d(narrow("cols", param("cols")),
                        narrow("rows", param("rows")),
                        narrow("hosts", param("hosts")), rate);
  if (family_ == "torus3d")
    return gen::torus3d(narrow("x", param("x")), narrow("y", param("y")),
                        narrow("z", param("z")),
                        narrow("hosts", param("hosts")), rate);
  if (family_ == "fattree")
    return gen::kary_fattree(narrow("k", param("k")),
                             narrow("n", param("n")), rate);
  if (family_ == "fattree2")
    return gen::fat_tree2(narrow("spines", param("spines")),
                          narrow("leaves", param("leaves")),
                          narrow("hosts", param("hosts")), rate);
  if (family_ == "dragonfly") {
    const unsigned a = narrow("a", param("a"));
    const unsigned h = narrow("h", param("h"));
    unsigned g = narrow("g", param("g"));
    unsigned p = narrow("p", param("p"));
    if (g == 0) g = a * h + 1;  // balanced group count
    if (p == 0) p = h;          // balanced host count
    return gen::dragonfly(a, h, g, p, rate);
  }
  throw std::logic_error("unreachable: family validated at parse");
}

std::vector<std::string_view> topology_family_names() {
  std::vector<std::string_view> out;
  out.reserve(families().size());
  for (const auto& f : families()) out.push_back(f.name);
  return out;
}

bool is_topology_family(std::string_view family) noexcept {
  return std::any_of(families().begin(), families().end(),
                     [&](const auto& f) { return f.name == family; });
}

TopologySpec topology_spec_from_env(std::string_view fallback) {
  const char* raw = std::getenv("IBARB_TOPO");
  const std::string_view text =
      (raw == nullptr || *raw == '\0') ? fallback : std::string_view(raw);
  try {
    return TopologySpec::parse(text);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("IBARB_TOPO: " + std::string(e.what()));
  }
}

}  // namespace ibarb::network
