// Deadlock-free up*/down* routing for irregular networks.
//
// A BFS spanning tree from a root switch assigns every link an "up" end
// (closer to the root; ties broken by node id). Legal paths traverse zero or
// more up hops followed by zero or more down hops — the classical condition
// that breaks every cyclic channel dependency. Forwarding is destination
// based (as in IBA switches): one output port per (switch, destination
// host); the tables are built so that every chained path is legal and
// shortest among legal paths.
#pragma once

#include <cstdint>
#include <vector>

#include "network/graph.hpp"

namespace ibarb::network {

class Routes {
 public:
  /// Output port at switch `sw` for packets addressed to `dst_host`.
  iba::PortIndex out_port(iba::NodeId sw, iba::NodeId dst_host) const;

  /// Output ports traversed from source host to destination host, in order:
  /// the host's own port 0 first, then one output port per switch crossed.
  std::vector<PortRef> path(iba::NodeId src_host, iba::NodeId dst_host) const;

  /// Switches crossed between the two hosts (path length minus the host).
  unsigned hops(iba::NodeId src_host, iba::NodeId dst_host) const;

  /// BFS level of a switch in the up*/down* tree (root = 0). Exposed for
  /// tests that verify path legality.
  unsigned level(iba::NodeId sw) const;

  /// True when hop a→b climbs toward the root (defines link direction).
  bool is_up_hop(iba::NodeId a, iba::NodeId b) const;

  iba::NodeId root() const noexcept { return root_; }

 private:
  friend Routes compute_updown_routes(const FabricGraph& g);

  const FabricGraph* graph_ = nullptr;
  iba::NodeId root_ = iba::kInvalidNode;
  std::vector<std::uint32_t> dense_;        ///< node id -> dense index
  std::vector<unsigned> switch_level_;      ///< dense switch -> BFS level
  std::vector<std::vector<iba::PortIndex>> table_;  ///< [sw][host] -> port
  std::vector<iba::NodeId> host_ids_;
  std::vector<iba::NodeId> switch_ids_;
};

/// Builds the forwarding tables. Throws std::runtime_error if the fabric is
/// disconnected.
Routes compute_updown_routes(const FabricGraph& g);

}  // namespace ibarb::network
