// Destination-based forwarding tables, engine-agnostic.
//
// A `Routes` object answers "which output port does switch S use for packets
// addressed to host H" in O(1) with zero allocation. It is produced by a
// `RoutingEngine` (see routing_engine.hpp); the classical deadlock-free
// up*/down* pass for irregular networks is the `updown` engine and remains
// the default.
//
// Memory model (the reason this scales to 100k hosts): the old
// representation was a dense `vector<vector<PortIndex>>` indexed
// [switch][host] — per-destination-host columns, one heap block per switch.
// But destination-based forwarding only ever depends on the *switch* a host
// hangs off: two hosts on the same leaf are indistinguishable to every other
// switch, and the final delivery hop is just the host's uplink port. So the
// table is stored as one flat CSR-indexed uint8_t array with a row per
// switch and a column per destination *switch*, plus two per-host arrays
// (sink switch, uplink port). A 110k-host 48-ary 3-tree has 6912 switches:
// 6912^2 = 48 MB of ports, instead of ~740 MB of per-host columns.
//
// Engines that need virtual-lane transitions for deadlock freedom (escape
// VLs on a torus, group-local VLs on a dragonfly) attach a parallel VL
// table with the same shape; `vl(sw, dst)` is the lane a packet to `dst`
// must occupy when leaving `sw`. Engines without VL requirements leave it
// absent and `vl()` returns 0.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "network/graph.hpp"

namespace ibarb::network {

inline constexpr iba::PortIndex kNoRoute = 0xFF;

class Routes {
 public:
  /// Output port at switch `sw` for packets addressed to `dst_host`.
  iba::PortIndex out_port(iba::NodeId sw, iba::NodeId dst_host) const {
    const auto s = dense_[sw];
    const auto h = dense_[dst_host];
    const auto t = host_sw_[h];
    if (s == t) return host_port_[h];
    const auto port = ports_[row_off_[s] + t];
    assert(port != kNoRoute);
    return port;
  }

  /// Output port at switch `sw` toward destination *switch* `dst_sw`
  /// (kNoRoute when the engine defined no route to that switch — e.g.
  /// spine switches, which terminate no hosts). Tests and the
  /// channel-dependency analysis walk tables switch-to-switch with this.
  iba::PortIndex switch_out_port(iba::NodeId sw, iba::NodeId dst_sw) const {
    return ports_[row_off_[dense_[sw]] + dense_[dst_sw]];
  }

  /// Virtual lane a packet to `dst_host` occupies on the link out of `sw`.
  /// Always 0 for engines that need no VL layering.
  iba::VirtualLane vl(iba::NodeId sw, iba::NodeId dst_host) const {
    if (vls_.empty()) return 0;
    const auto s = dense_[sw];
    const auto h = dense_[dst_host];
    const auto t = host_sw_[h];
    if (s == t) return 0;  // delivery hop: host buffer is a sink
    return vls_[row_off_[s] + t];
  }

  /// Same, toward a destination switch (for table-level analysis).
  iba::VirtualLane switch_vl(iba::NodeId sw, iba::NodeId dst_sw) const {
    if (vls_.empty()) return 0;
    return vls_[row_off_[dense_[sw]] + dense_[dst_sw]];
  }

  /// Output ports traversed from source host to destination host, in order:
  /// the host's own port 0 first, then one output port per switch crossed.
  std::vector<PortRef> path(iba::NodeId src_host, iba::NodeId dst_host) const;

  /// Switches crossed between the two hosts (path length minus the host).
  /// Walks the table directly — no allocation.
  unsigned hops(iba::NodeId src_host, iba::NodeId dst_host) const;

  /// True when the engine produced up*/down* levels (only the `updown`
  /// engine does); `level`, `is_up_hop`, and `root` require it.
  bool has_levels() const noexcept { return !switch_level_.empty(); }

  /// BFS level of a switch in the up*/down* tree (root = 0). Exposed for
  /// tests that verify path legality.
  unsigned level(iba::NodeId sw) const;

  /// True when hop a→b climbs toward the root (defines link direction).
  bool is_up_hop(iba::NodeId a, iba::NodeId b) const;

  iba::NodeId root() const noexcept { return root_; }

  /// Name of the engine that built this table ("updown", ...).
  const std::string& engine() const noexcept { return engine_; }

  /// Number of VL layers the table uses (1 = no escape layering).
  unsigned vl_layers() const noexcept { return vl_layers_; }

  /// Bytes held by the flat port/VL tables and per-host arrays.
  std::size_t table_bytes() const noexcept {
    return ports_.size() * sizeof(iba::PortIndex) +
           vls_.size() * sizeof(iba::VirtualLane) +
           row_off_.size() * sizeof(std::uint64_t) +
           host_sw_.size() * sizeof(std::uint32_t) +
           host_port_.size() * sizeof(iba::PortIndex);
  }

  const std::vector<iba::NodeId>& switch_ids() const noexcept {
    return switch_ids_;
  }
  const std::vector<iba::NodeId>& host_ids() const noexcept {
    return host_ids_;
  }
  const FabricGraph& graph() const noexcept { return *graph_; }

 private:
  friend class RoutesBuilder;
  const FabricGraph* graph_ = nullptr;
  iba::NodeId root_ = iba::kInvalidNode;
  std::string engine_;
  unsigned vl_layers_ = 1;
  std::vector<std::uint32_t> dense_;    ///< node id -> dense sw/host index
  std::vector<unsigned> switch_level_;  ///< dense switch -> BFS level
  std::vector<std::uint64_t> row_off_;  ///< CSR row offsets (n_sw + 1)
  std::vector<iba::PortIndex> ports_;   ///< flat [row_off_[s] + t] -> port
  std::vector<iba::VirtualLane> vls_;   ///< same shape; empty = all VL 0
  std::vector<std::uint32_t> host_sw_;  ///< dense host -> dense sink switch
  std::vector<iba::PortIndex> host_port_;  ///< dense host -> uplink port
  std::vector<iba::NodeId> host_ids_;
  std::vector<iba::NodeId> switch_ids_;
};

/// Incrementally fills a Routes object. Engines address switches by *dense
/// index* (position in FabricGraph::switches() order); the builder owns the
/// id<->dense maps and the CSR layout.
class RoutesBuilder {
 public:
  RoutesBuilder(const FabricGraph& g, std::string engine_name);

  std::uint32_t n_switches() const noexcept {
    return static_cast<std::uint32_t>(r_.switch_ids_.size());
  }
  std::uint32_t n_hosts() const noexcept {
    return static_cast<std::uint32_t>(r_.host_ids_.size());
  }
  iba::NodeId switch_id(std::uint32_t dense) const {
    return r_.switch_ids_[dense];
  }
  std::uint32_t dense_switch(iba::NodeId sw) const { return r_.dense_[sw]; }
  /// Dense index of the switch terminating the dense-indexed host.
  std::uint32_t host_switch(std::uint32_t dense_host) const {
    return r_.host_sw_[dense_host];
  }

  /// Port used at dense switch `s` toward dense destination switch `t`.
  void set_port(std::uint32_t s, std::uint32_t t, iba::PortIndex port) {
    r_.ports_[r_.row_off_[s] + t] = port;
  }
  /// VL occupied when leaving dense switch `s` toward dense switch `t`.
  /// First call allocates the VL table (all-zero).
  void set_vl(std::uint32_t s, std::uint32_t t, iba::VirtualLane vl);
  void set_vl_layers(unsigned layers) { r_.vl_layers_ = layers; }

  /// Up*/down* metadata (levels indexed by dense switch).
  void set_levels(std::vector<unsigned> levels, iba::NodeId root);

  Routes build() &&;

 private:
  Routes r_;
};

/// Builds forwarding tables with the named engine (see routing_engine.hpp
/// for the registry). Throws std::runtime_error if the fabric is
/// disconnected or the engine cannot route it, std::invalid_argument for an
/// unknown engine name.
Routes compute_routes(const FabricGraph& g, std::string_view engine = "updown");

/// Pre-registry spelling of `compute_routes(g, "updown")`; migrate.
[[deprecated("use compute_routes(g, \"updown\")")]]
inline Routes compute_updown_routes(const FabricGraph& g) {
  return compute_routes(g, "updown");
}

}  // namespace ibarb::network
