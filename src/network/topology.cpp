#include "network/topology.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace ibarb::network {

namespace {

iba::PortIndex first_free_port(const FabricGraph& g, iba::NodeId id) {
  for (unsigned p = 0; p < g.port_count(id); ++p)
    if (!g.peer(id, static_cast<iba::PortIndex>(p)).has_value())
      return static_cast<iba::PortIndex>(p);
  throw std::logic_error("no free port");
}

}  // namespace

FabricGraph make_irregular(const IrregularSpec& spec) {
  if (spec.hosts_per_switch >= spec.ports_per_switch)
    throw std::invalid_argument("need at least one inter-switch port");
  if (spec.switches < 2)
    throw std::invalid_argument("irregular networks need >= 2 switches");
  const unsigned trunk_ports = spec.ports_per_switch - spec.hosts_per_switch;
  if ((static_cast<std::uint64_t>(trunk_ports) * spec.switches) % 2 != 0)
    throw std::invalid_argument("odd total trunk port count cannot be paired");
  if (trunk_ports * spec.switches < 2 * (spec.switches - 1))
    throw std::invalid_argument("not enough trunk ports for a spanning tree");

  util::Xoshiro256 rng(spec.seed);
  const iba::Link link{spec.rate, spec.propagation_delay};

  FabricGraph g;
  std::vector<iba::NodeId> sw(spec.switches);
  for (auto& s : sw) s = g.add_switch(spec.ports_per_switch);

  // Random spanning tree (random-permutation Prim variant): attach each new
  // switch to a uniformly chosen already-connected one with free ports.
  std::vector<iba::NodeId> order = sw;
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.below(i)]);
  std::vector<iba::NodeId> in_tree{order[0]};
  for (std::size_t i = 1; i < order.size(); ++i) {
    std::vector<iba::NodeId> candidates;
    for (const auto t : in_tree)  // keep host ports out of the tree wiring
      if (g.free_ports(t) > spec.hosts_per_switch) candidates.push_back(t);
    assert(!candidates.empty());
    const auto anchor = candidates[rng.below(candidates.size())];
    g.connect(order[i], first_free_port(g, order[i]), anchor,
              first_free_port(g, anchor), link);
    in_tree.push_back(order[i]);
  }

  // Pair the leftover trunk ports at random. Try to avoid duplicating an
  // existing parallel link; fall back to accepting one after a few attempts
  // (tightly wired small fabrics may force it).
  std::vector<iba::NodeId> loose;
  for (const auto s : sw) {
    const unsigned frees = g.free_ports(s) - spec.hosts_per_switch;
    for (unsigned k = 0; k < frees; ++k) loose.push_back(s);
  }
  const auto already_linked = [&](iba::NodeId a, iba::NodeId b) {
    for (unsigned p = 0; p < g.port_count(a); ++p) {
      const auto peer = g.peer(a, static_cast<iba::PortIndex>(p));
      if (peer && peer->node == b) return true;
    }
    return false;
  };
  while (loose.size() >= 2) {
    for (std::size_t i = loose.size(); i > 1; --i)
      std::swap(loose[i - 1], loose[rng.below(i)]);
    const iba::NodeId a = loose.back();
    loose.pop_back();
    bool wired = false;
    for (unsigned attempt = 0; attempt < 8 && !wired; ++attempt) {
      const auto j = rng.below(loose.size());
      const iba::NodeId b = loose[j];
      if (b == a) continue;
      if (attempt < 7 && already_linked(a, b)) continue;
      g.connect(a, first_free_port(g, a), b, first_free_port(g, b), link);
      loose[j] = loose.back();
      loose.pop_back();
      wired = true;
    }
    if (!wired) {
      // Everything left pairs a with itself or duplicates; take any partner
      // that is not a (parallel links are legal in IBA).
      for (std::size_t j = 0; j < loose.size(); ++j) {
        if (loose[j] == a) continue;
        g.connect(a, first_free_port(g, a), loose[j],
                  first_free_port(g, loose[j]), link);
        loose[j] = loose.back();
        loose.pop_back();
        wired = true;
        break;
      }
      if (!wired) break;  // only same-switch ports remain: leave them unwired
    }
  }

  // Hosts last so host ports occupy the tail port indices of each switch.
  for (const auto s : sw) {
    for (unsigned h = 0; h < spec.hosts_per_switch; ++h) {
      const auto host = g.add_host();
      g.connect(host, 0, s, first_free_port(g, s), link);
    }
  }

  assert(g.connected());
  return g;
}

FabricGraph make_single_switch(unsigned hosts, unsigned ports,
                               iba::LinkRate rate) {
  if (hosts > ports) throw std::invalid_argument("more hosts than ports");
  FabricGraph g;
  const auto s = g.add_switch(ports);
  const iba::Link link{rate, 2};
  for (unsigned h = 0; h < hosts; ++h) {
    const auto host = g.add_host();
    g.connect(host, 0, s, static_cast<iba::PortIndex>(h), link);
  }
  return g;
}

FabricGraph make_line(unsigned switches, unsigned hosts_per_switch,
                      iba::LinkRate rate) {
  if (switches == 0) throw std::invalid_argument("empty line");
  FabricGraph g;
  const unsigned ports = 2 + hosts_per_switch;
  const iba::Link link{rate, 2};
  std::vector<iba::NodeId> sw(switches);
  for (auto& s : sw) s = g.add_switch(ports);
  for (unsigned i = 1; i < switches; ++i)
    g.connect(sw[i - 1], 1, sw[i], 0, link);
  for (const auto s : sw)
    for (unsigned h = 0; h < hosts_per_switch; ++h) {
      const auto host = g.add_host();
      g.connect(host, 0, s, static_cast<iba::PortIndex>(2 + h), link);
    }
  return g;
}

}  // namespace ibarb::network

namespace ibarb::network {

FabricGraph make_mesh2d(unsigned cols, unsigned rows,
                        unsigned hosts_per_switch, iba::LinkRate rate) {
  if (cols == 0 || rows == 0) throw std::invalid_argument("empty mesh");
  FabricGraph g;
  const iba::Link link{rate, 2};
  const unsigned ports = 4 + hosts_per_switch;
  std::vector<iba::NodeId> sw(static_cast<std::size_t>(cols) * rows);
  for (auto& s : sw) s = g.add_switch(ports);
  const auto at = [&](unsigned x, unsigned y) { return sw[y * cols + x]; };
  // Ports: 0 = west, 1 = east, 2 = north, 3 = south.
  for (unsigned y = 0; y < rows; ++y)
    for (unsigned x = 0; x + 1 < cols; ++x)
      g.connect(at(x, y), 1, at(x + 1, y), 0, link);
  for (unsigned y = 0; y + 1 < rows; ++y)
    for (unsigned x = 0; x < cols; ++x)
      g.connect(at(x, y), 3, at(x, y + 1), 2, link);
  for (const auto s : sw)
    for (unsigned h = 0; h < hosts_per_switch; ++h) {
      const auto host = g.add_host();
      g.connect(host, 0, s, static_cast<iba::PortIndex>(4 + h), link);
    }
  return g;
}

FabricGraph make_torus2d(unsigned cols, unsigned rows,
                         unsigned hosts_per_switch, iba::LinkRate rate) {
  if (cols < 3 || rows < 3)
    throw std::invalid_argument("torus needs at least 3x3 switches");
  FabricGraph g;
  const iba::Link link{rate, 2};
  const unsigned ports = 4 + hosts_per_switch;
  std::vector<iba::NodeId> sw(static_cast<std::size_t>(cols) * rows);
  for (auto& s : sw) s = g.add_switch(ports);
  const auto at = [&](unsigned x, unsigned y) { return sw[y * cols + x]; };
  for (unsigned y = 0; y < rows; ++y)
    for (unsigned x = 0; x < cols; ++x)
      g.connect(at(x, y), 1, at((x + 1) % cols, y), 0, link);
  for (unsigned y = 0; y < rows; ++y)
    for (unsigned x = 0; x < cols; ++x)
      g.connect(at(x, y), 3, at(x, (y + 1) % rows), 2, link);
  for (const auto s : sw)
    for (unsigned h = 0; h < hosts_per_switch; ++h) {
      const auto host = g.add_host();
      g.connect(host, 0, s, static_cast<iba::PortIndex>(4 + h), link);
    }
  return g;
}

FabricGraph make_fat_tree(unsigned spines, unsigned leaves,
                          unsigned hosts_per_leaf, iba::LinkRate rate) {
  if (spines == 0 || leaves == 0)
    throw std::invalid_argument("fat tree needs spines and leaves");
  FabricGraph g;
  const iba::Link link{rate, 2};
  std::vector<iba::NodeId> spine(spines);
  for (auto& s : spine) s = g.add_switch(leaves);
  std::vector<iba::NodeId> leaf(leaves);
  for (auto& s : leaf) s = g.add_switch(spines + hosts_per_leaf);
  for (unsigned l = 0; l < leaves; ++l)
    for (unsigned t = 0; t < spines; ++t)
      g.connect(leaf[l], static_cast<iba::PortIndex>(t), spine[t],
                static_cast<iba::PortIndex>(l), link);
  for (const auto s : leaf)
    for (unsigned h = 0; h < hosts_per_leaf; ++h) {
      const auto host = g.add_host();
      g.connect(host, 0, s, static_cast<iba::PortIndex>(spines + h), link);
    }
  return g;
}

std::string to_dot(const FabricGraph& graph) {
  std::string out = "graph fabric {\n  node [fontsize=10];\n";
  for (iba::NodeId n = 0; n < graph.node_count(); ++n) {
    out += "  n" + std::to_string(n);
    out += graph.is_switch(n)
               ? " [shape=box, label=\"sw" + std::to_string(n) + "\"];\n"
               : " [shape=point, xlabel=\"h" + std::to_string(n) + "\"];\n";
  }
  for (iba::NodeId n = 0; n < graph.node_count(); ++n)
    for (unsigned p = 0; p < graph.port_count(n); ++p) {
      const auto peer = graph.peer(n, static_cast<iba::PortIndex>(p));
      if (!peer || peer->node < n) continue;  // emit each cable once
      if (peer->node == n && peer->port < p) continue;
      out += "  n" + std::to_string(n) + " -- n" +
             std::to_string(peer->node) + ";\n";
    }
  out += "}\n";
  return out;
}

}  // namespace ibarb::network
