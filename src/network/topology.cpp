#include "network/topology.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace ibarb::network {

namespace {

iba::PortIndex first_free_port(const FabricGraph& g, iba::NodeId id) {
  for (unsigned p = 0; p < g.port_count(id); ++p)
    if (!g.peer(id, static_cast<iba::PortIndex>(p)).has_value())
      return static_cast<iba::PortIndex>(p);
  throw std::logic_error("no free port");
}

/// Keeps accidental 100M-node requests from silently eating the machine:
/// every registry family stays comfortably inside a ~1M-node fabric.
constexpr std::uint64_t kMaxNodes = 1u << 20;

void check_node_budget(const char* family, std::uint64_t switches,
                       std::uint64_t hosts) {
  if (switches + hosts > kMaxNodes)
    throw std::invalid_argument(
        std::string(family) + ": " + std::to_string(switches) +
        " switches + " + std::to_string(hosts) + " hosts exceeds the " +
        std::to_string(kMaxNodes) + "-node cap");
}

}  // namespace

namespace gen {

FabricGraph irregular(const IrregularSpec& spec) {
  if (spec.switches < 2)
    throw std::invalid_argument(
        "irregular: switches=" + std::to_string(spec.switches) +
        " must be >= 2 (a one-switch fabric has no trunks to wire)");
  if (spec.hosts_per_switch >= spec.ports_per_switch)
    throw std::invalid_argument(
        "irregular: hosts_per_switch=" +
        std::to_string(spec.hosts_per_switch) + " must be < ports_per_switch=" +
        std::to_string(spec.ports_per_switch) +
        " (at least one port per switch must interconnect switches)");
  const unsigned trunk_ports = spec.ports_per_switch - spec.hosts_per_switch;
  if ((static_cast<std::uint64_t>(trunk_ports) * spec.switches) % 2 != 0)
    throw std::invalid_argument(
        "irregular: " + std::to_string(trunk_ports) + " trunk ports x " +
        std::to_string(spec.switches) +
        " switches is odd and cannot be paired");
  if (trunk_ports * spec.switches < 2 * (spec.switches - 1))
    throw std::invalid_argument(
        "irregular: " + std::to_string(trunk_ports) + " trunk ports x " +
        std::to_string(spec.switches) +
        " switches cannot span a tree over all switches");
  check_node_budget("irregular", spec.switches,
                    static_cast<std::uint64_t>(spec.switches) *
                        spec.hosts_per_switch);

  util::Xoshiro256 rng(spec.seed);
  const iba::Link link{spec.rate, spec.propagation_delay};

  FabricGraph g;
  std::vector<iba::NodeId> sw(spec.switches);
  for (auto& s : sw) s = g.add_switch(spec.ports_per_switch);

  // Random spanning tree (random-permutation Prim variant): attach each new
  // switch to a uniformly chosen already-connected one with free ports.
  std::vector<iba::NodeId> order = sw;
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.below(i)]);
  std::vector<iba::NodeId> in_tree{order[0]};
  for (std::size_t i = 1; i < order.size(); ++i) {
    std::vector<iba::NodeId> candidates;
    for (const auto t : in_tree)  // keep host ports out of the tree wiring
      if (g.free_ports(t) > spec.hosts_per_switch) candidates.push_back(t);
    assert(!candidates.empty());
    const auto anchor = candidates[rng.below(candidates.size())];
    g.connect(order[i], first_free_port(g, order[i]), anchor,
              first_free_port(g, anchor), link);
    in_tree.push_back(order[i]);
  }

  // Pair the leftover trunk ports at random. Try to avoid duplicating an
  // existing parallel link; fall back to accepting one after a few attempts
  // (tightly wired small fabrics may force it).
  std::vector<iba::NodeId> loose;
  for (const auto s : sw) {
    const unsigned frees = g.free_ports(s) - spec.hosts_per_switch;
    for (unsigned k = 0; k < frees; ++k) loose.push_back(s);
  }
  const auto already_linked = [&](iba::NodeId a, iba::NodeId b) {
    for (unsigned p = 0; p < g.port_count(a); ++p) {
      const auto peer = g.peer(a, static_cast<iba::PortIndex>(p));
      if (peer && peer->node == b) return true;
    }
    return false;
  };
  while (loose.size() >= 2) {
    for (std::size_t i = loose.size(); i > 1; --i)
      std::swap(loose[i - 1], loose[rng.below(i)]);
    const iba::NodeId a = loose.back();
    loose.pop_back();
    bool wired = false;
    for (unsigned attempt = 0; attempt < 8 && !wired; ++attempt) {
      const auto j = rng.below(loose.size());
      const iba::NodeId b = loose[j];
      if (b == a) continue;
      if (attempt < 7 && already_linked(a, b)) continue;
      g.connect(a, first_free_port(g, a), b, first_free_port(g, b), link);
      loose[j] = loose.back();
      loose.pop_back();
      wired = true;
    }
    if (!wired) {
      // Everything left pairs a with itself or duplicates; take any partner
      // that is not a (parallel links are legal in IBA).
      for (std::size_t j = 0; j < loose.size(); ++j) {
        if (loose[j] == a) continue;
        g.connect(a, first_free_port(g, a), loose[j],
                  first_free_port(g, loose[j]), link);
        loose[j] = loose.back();
        loose.pop_back();
        wired = true;
        break;
      }
      if (!wired) break;  // only same-switch ports remain: leave them unwired
    }
  }

  // Hosts last so host ports occupy the tail port indices of each switch.
  for (const auto s : sw) {
    for (unsigned h = 0; h < spec.hosts_per_switch; ++h) {
      const auto host = g.add_host();
      g.connect(host, 0, s, first_free_port(g, s), link);
    }
  }

  assert(g.connected());
  g.set_topology_hint({"irregular", {spec.switches, spec.ports_per_switch,
                                     spec.hosts_per_switch}});
  return g;
}

FabricGraph single_switch(unsigned hosts, unsigned ports,
                          iba::LinkRate rate) {
  if (hosts > ports)
    throw std::invalid_argument("single: hosts=" + std::to_string(hosts) +
                                " exceeds ports=" + std::to_string(ports));
  FabricGraph g;
  const auto s = g.add_switch(ports);
  const iba::Link link{rate, 2};
  for (unsigned h = 0; h < hosts; ++h) {
    const auto host = g.add_host();
    g.connect(host, 0, s, static_cast<iba::PortIndex>(h), link);
  }
  g.set_topology_hint({"single", {hosts}});
  return g;
}

FabricGraph line(unsigned switches, unsigned hosts_per_switch,
                 iba::LinkRate rate) {
  if (switches == 0)
    throw std::invalid_argument("line: switches=0 (need at least 1)");
  check_node_budget("line", switches,
                    static_cast<std::uint64_t>(switches) * hosts_per_switch);
  FabricGraph g;
  const unsigned ports = 2 + hosts_per_switch;
  const iba::Link link{rate, 2};
  std::vector<iba::NodeId> sw(switches);
  for (auto& s : sw) s = g.add_switch(ports);
  for (unsigned i = 1; i < switches; ++i)
    g.connect(sw[i - 1], 1, sw[i], 0, link);
  for (const auto s : sw)
    for (unsigned h = 0; h < hosts_per_switch; ++h) {
      const auto host = g.add_host();
      g.connect(host, 0, s, static_cast<iba::PortIndex>(2 + h), link);
    }
  g.set_topology_hint({"line", {switches, hosts_per_switch}});
  return g;
}

FabricGraph mesh2d(unsigned cols, unsigned rows, unsigned hosts_per_switch,
                   iba::LinkRate rate) {
  if (cols == 0 || rows == 0)
    throw std::invalid_argument(
        "mesh2d: " + std::string(cols == 0 ? "cols" : "rows") +
        "=0 (both dimensions need at least 1 switch)");
  check_node_budget("mesh2d", static_cast<std::uint64_t>(cols) * rows,
                    static_cast<std::uint64_t>(cols) * rows *
                        hosts_per_switch);
  FabricGraph g;
  const iba::Link link{rate, 2};
  const unsigned ports = 4 + hosts_per_switch;
  std::vector<iba::NodeId> sw(static_cast<std::size_t>(cols) * rows);
  for (auto& s : sw) s = g.add_switch(ports);
  const auto at = [&](unsigned x, unsigned y) { return sw[y * cols + x]; };
  // Ports: 0 = west, 1 = east, 2 = north, 3 = south.
  for (unsigned y = 0; y < rows; ++y)
    for (unsigned x = 0; x + 1 < cols; ++x)
      g.connect(at(x, y), 1, at(x + 1, y), 0, link);
  for (unsigned y = 0; y + 1 < rows; ++y)
    for (unsigned x = 0; x < cols; ++x)
      g.connect(at(x, y), 3, at(x, y + 1), 2, link);
  for (const auto s : sw)
    for (unsigned h = 0; h < hosts_per_switch; ++h) {
      const auto host = g.add_host();
      g.connect(host, 0, s, static_cast<iba::PortIndex>(4 + h), link);
    }
  g.set_topology_hint({"mesh2d", {cols, rows}});
  return g;
}

FabricGraph torus2d(unsigned cols, unsigned rows, unsigned hosts_per_switch,
                    iba::LinkRate rate) {
  // Below 3 switches per ring the +dim and -dim wrap links land on the same
  // peer port — the old failure mode was a silent double-wire error from
  // FabricGraph::connect deep in the loop; reject it by name instead.
  if (cols < 3)
    throw std::invalid_argument(
        "torus2d: cols=" + std::to_string(cols) +
        " must be >= 3 (a shorter ring double-wires its wrap ports)");
  if (rows < 3)
    throw std::invalid_argument(
        "torus2d: rows=" + std::to_string(rows) +
        " must be >= 3 (a shorter ring double-wires its wrap ports)");
  check_node_budget("torus2d", static_cast<std::uint64_t>(cols) * rows,
                    static_cast<std::uint64_t>(cols) * rows *
                        hosts_per_switch);
  FabricGraph g;
  const iba::Link link{rate, 2};
  const unsigned ports = 4 + hosts_per_switch;
  std::vector<iba::NodeId> sw(static_cast<std::size_t>(cols) * rows);
  for (auto& s : sw) s = g.add_switch(ports);
  const auto at = [&](unsigned x, unsigned y) { return sw[y * cols + x]; };
  for (unsigned y = 0; y < rows; ++y)
    for (unsigned x = 0; x < cols; ++x)
      g.connect(at(x, y), 1, at((x + 1) % cols, y), 0, link);
  for (unsigned y = 0; y < rows; ++y)
    for (unsigned x = 0; x < cols; ++x)
      g.connect(at(x, y), 3, at(x, (y + 1) % rows), 2, link);
  for (const auto s : sw)
    for (unsigned h = 0; h < hosts_per_switch; ++h) {
      const auto host = g.add_host();
      g.connect(host, 0, s, static_cast<iba::PortIndex>(4 + h), link);
    }
  g.set_topology_hint({"torus2d", {cols, rows}});
  return g;
}

FabricGraph torus3d(unsigned x, unsigned y, unsigned z,
                    unsigned hosts_per_switch, iba::LinkRate rate) {
  const auto check_dim = [](const char* name, unsigned v) {
    if (v < 3)
      throw std::invalid_argument(
          "torus3d: " + std::string(name) + "=" + std::to_string(v) +
          " must be >= 3 (a shorter ring double-wires its wrap ports)");
  };
  check_dim("x", x);
  check_dim("y", y);
  check_dim("z", z);
  const std::uint64_t n_sw = static_cast<std::uint64_t>(x) * y * z;
  check_node_budget("torus3d", n_sw, n_sw * hosts_per_switch);

  FabricGraph g;
  const iba::Link link{rate, 2};
  const unsigned ports = 6 + hosts_per_switch;
  std::vector<iba::NodeId> sw(n_sw);
  for (auto& s : sw) s = g.add_switch(ports);
  const auto at = [&](unsigned cx, unsigned cy, unsigned cz) {
    return sw[(static_cast<std::size_t>(cz) * y + cy) * x + cx];
  };
  // Ports: 0,1 = -x,+x; 2,3 = -y,+y; 4,5 = -z,+z.
  for (unsigned cz = 0; cz < z; ++cz)
    for (unsigned cy = 0; cy < y; ++cy)
      for (unsigned cx = 0; cx < x; ++cx) {
        g.connect(at(cx, cy, cz), 1, at((cx + 1) % x, cy, cz), 0, link);
        g.connect(at(cx, cy, cz), 3, at(cx, (cy + 1) % y, cz), 2, link);
        g.connect(at(cx, cy, cz), 5, at(cx, cy, (cz + 1) % z), 4, link);
      }
  for (const auto s : sw)
    for (unsigned h = 0; h < hosts_per_switch; ++h) {
      const auto host = g.add_host();
      g.connect(host, 0, s, static_cast<iba::PortIndex>(6 + h), link);
    }
  g.set_topology_hint({"torus3d", {x, y, z}});
  return g;
}

FabricGraph fat_tree2(unsigned spines, unsigned leaves,
                      unsigned hosts_per_leaf, iba::LinkRate rate) {
  if (spines == 0 || leaves == 0)
    throw std::invalid_argument(
        "fattree2: " + std::string(spines == 0 ? "spines" : "leaves") +
        "=0 (need at least one of each level)");
  check_node_budget("fattree2", spines + leaves,
                    static_cast<std::uint64_t>(leaves) * hosts_per_leaf);
  FabricGraph g;
  const iba::Link link{rate, 2};
  std::vector<iba::NodeId> spine(spines);
  for (auto& s : spine) s = g.add_switch(leaves);
  std::vector<iba::NodeId> leaf(leaves);
  for (auto& s : leaf) s = g.add_switch(spines + hosts_per_leaf);
  for (unsigned l = 0; l < leaves; ++l)
    for (unsigned t = 0; t < spines; ++t)
      g.connect(leaf[l], static_cast<iba::PortIndex>(t), spine[t],
                static_cast<iba::PortIndex>(l), link);
  for (const auto s : leaf)
    for (unsigned h = 0; h < hosts_per_leaf; ++h) {
      const auto host = g.add_host();
      g.connect(host, 0, s, static_cast<iba::PortIndex>(spines + h), link);
    }
  g.set_topology_hint({"fattree2", {spines, leaves}});
  return g;
}

FabricGraph kary_fattree(unsigned k, unsigned n, iba::LinkRate rate) {
  if (k < 2)
    throw std::invalid_argument("fattree: k=" + std::to_string(k) +
                                " must be >= 2 (tree arity)");
  if (n < 1)
    throw std::invalid_argument("fattree: n=0 (need at least one level)");
  std::uint64_t per_level = 1;  // k^(n-1) switches per level
  for (unsigned i = 1; i < n; ++i) {
    per_level *= k;
    if (per_level > kMaxNodes)
      throw std::invalid_argument("fattree: k=" + std::to_string(k) +
                                  ", n=" + std::to_string(n) +
                                  " overflows the node cap");
  }
  const std::uint64_t hosts = per_level * k;
  check_node_budget("fattree", per_level * n, hosts);

  FabricGraph g;
  const iba::Link link{rate, 2};
  // Level l switch <w, l> = id l*per_level + w. Down ports 0..k-1, up ports
  // k..2k-1 (the top level has no up side).
  std::vector<std::uint64_t> pow(n, 1);
  for (unsigned i = 1; i < n; ++i) pow[i] = pow[i - 1] * k;
  for (unsigned l = 0; l < n; ++l)
    for (std::uint64_t w = 0; w < per_level; ++w)
      g.add_switch(l + 1 == n ? k : 2 * k);
  const auto sw_id = [&](unsigned l, std::uint64_t w) {
    return static_cast<iba::NodeId>(l * per_level + w);
  };
  // Parent <v, l+1> and child <u, l> are wired iff their digits agree
  // everywhere except digit l; the parent's down port is the child's digit
  // l, the child's up port is k + the parent's digit l.
  for (unsigned l = 0; l + 1 < n; ++l)
    for (std::uint64_t v = 0; v < per_level; ++v) {
      const auto vd = static_cast<unsigned>(v / pow[l] % k);
      const std::uint64_t base = v - vd * pow[l];
      for (unsigned c = 0; c < k; ++c)
        g.connect(sw_id(l, base + c * pow[l]),
                  static_cast<iba::PortIndex>(k + vd), sw_id(l + 1, v),
                  static_cast<iba::PortIndex>(c), link);
    }
  // Host j on level-0 switch j/k, down port j%k.
  for (std::uint64_t j = 0; j < hosts; ++j) {
    const auto host = g.add_host();
    g.connect(host, 0, sw_id(0, j / k),
              static_cast<iba::PortIndex>(j % k), link);
  }
  g.set_topology_hint({"fattree", {k, n}});
  return g;
}

FabricGraph dragonfly(unsigned a, unsigned h, unsigned groups,
                      unsigned hosts_per_router, iba::LinkRate rate) {
  if (a < 2)
    throw std::invalid_argument("dragonfly: a=" + std::to_string(a) +
                                " must be >= 2 (routers per group)");
  if (h < 1)
    throw std::invalid_argument(
        "dragonfly: h=0 (each router needs a global port)");
  if (groups < 2)
    throw std::invalid_argument("dragonfly: g=" + std::to_string(groups) +
                                " must be >= 2 (need a global level)");
  if (groups - 1 > static_cast<std::uint64_t>(a) * h)
    throw std::invalid_argument(
        "dragonfly: g=" + std::to_string(groups) + " needs g-1 <= a*h=" +
        std::to_string(static_cast<std::uint64_t>(a) * h) +
        " global channels per group");
  if (hosts_per_router == 0)
    throw std::invalid_argument("dragonfly: p=0 (routers need hosts)");
  const std::uint64_t n_sw = static_cast<std::uint64_t>(a) * groups;
  check_node_budget("dragonfly", n_sw, n_sw * hosts_per_router);

  FabricGraph g;
  const iba::Link link{rate, 2};
  // Router <group u, index i> = id u*a + i. Ports: 0..a-2 local (toward
  // router j on port j, minus one when j > i), a-1..a+h-2 global, then
  // hosts.
  const unsigned ports = (a - 1) + h + hosts_per_router;
  std::vector<iba::NodeId> sw(n_sw);
  for (auto& s : sw) s = g.add_switch(ports);
  const auto local_port = [](unsigned from, unsigned to) {
    return static_cast<iba::PortIndex>(to < from ? to : to - 1);
  };
  for (unsigned u = 0; u < groups; ++u)
    for (unsigned i = 0; i < a; ++i)
      for (unsigned j = i + 1; j < a; ++j)
        g.connect(sw[u * a + i], local_port(i, j), sw[u * a + j],
                  local_port(j, i), link);
  // Global channel k of group u lands in group v = (u+k+1) mod g; the
  // return channel there is g-2-k. Wire each cable from its lower group.
  for (unsigned u = 0; u < groups; ++u)
    for (unsigned k = 0; k + 1 < groups; ++k) {
      const unsigned v = (u + k + 1) % groups;
      if (v < u) continue;  // the v-side iteration wires this cable
      const unsigned back = groups - 2 - k;
      g.connect(sw[u * a + k / h],
                static_cast<iba::PortIndex>(a - 1 + k % h),
                sw[v * a + back / h],
                static_cast<iba::PortIndex>(a - 1 + back % h), link);
    }
  for (const auto s : sw)
    for (unsigned p = 0; p < hosts_per_router; ++p) {
      const auto host = g.add_host();
      g.connect(host, 0, s,
                static_cast<iba::PortIndex>(a - 1 + h + p), link);
    }
  g.set_topology_hint({"dragonfly", {a, h, groups, hosts_per_router}});
  return g;
}

}  // namespace gen

std::string to_dot(const FabricGraph& graph) {
  std::string out = "graph fabric {\n  node [fontsize=10];\n";
  for (iba::NodeId n = 0; n < graph.node_count(); ++n) {
    out += "  n" + std::to_string(n);
    out += graph.is_switch(n)
               ? " [shape=box, label=\"sw" + std::to_string(n) + "\"];\n"
               : " [shape=point, xlabel=\"h" + std::to_string(n) + "\"];\n";
  }
  for (iba::NodeId n = 0; n < graph.node_count(); ++n)
    for (unsigned p = 0; p < graph.port_count(n); ++p) {
      const auto peer = graph.peer(n, static_cast<iba::PortIndex>(p));
      if (!peer || peer->node < n) continue;  // emit each cable once
      if (peer->node == n && peer->port < p) continue;
      out += "  n" + std::to_string(n) + " -- n" +
             std::to_string(peer->node) + ";\n";
    }
  out += "}\n";
  return out;
}

}  // namespace ibarb::network
