#include "network/graph.hpp"

#include <queue>
#include <stdexcept>

namespace ibarb::network {

iba::NodeId FabricGraph::add_switch(unsigned ports) {
  if (ports == 0) throw std::invalid_argument("switch needs at least 1 port");
  Node n;
  n.kind = NodeKind::kSwitch;
  n.peers.resize(ports);
  n.links.resize(ports);
  nodes_.push_back(std::move(n));
  return static_cast<iba::NodeId>(nodes_.size() - 1);
}

iba::NodeId FabricGraph::add_host() {
  Node n;
  n.kind = NodeKind::kHost;
  n.peers.resize(1);
  n.links.resize(1);
  nodes_.push_back(std::move(n));
  return static_cast<iba::NodeId>(nodes_.size() - 1);
}

void FabricGraph::connect(iba::NodeId a, iba::PortIndex port_a, iba::NodeId b,
                          iba::PortIndex port_b, iba::Link link) {
  if (a == b) throw std::logic_error("self-links are not allowed");
  auto& na = nodes_.at(a);
  auto& nb = nodes_.at(b);
  if (na.peers.at(port_a).has_value() || nb.peers.at(port_b).has_value())
    throw std::logic_error("port already wired");
  na.peers[port_a] = PortRef{b, port_b};
  na.links[port_a] = link;
  nb.peers[port_b] = PortRef{a, port_a};
  nb.links[port_b] = link;
}

std::vector<iba::NodeId> FabricGraph::switches() const {
  std::vector<iba::NodeId> out;
  for (iba::NodeId id = 0; id < nodes_.size(); ++id)
    if (nodes_[id].kind == NodeKind::kSwitch) out.push_back(id);
  return out;
}

std::vector<iba::NodeId> FabricGraph::hosts() const {
  std::vector<iba::NodeId> out;
  for (iba::NodeId id = 0; id < nodes_.size(); ++id)
    if (nodes_[id].kind == NodeKind::kHost) out.push_back(id);
  return out;
}

PortRef FabricGraph::host_uplink(iba::NodeId host) const {
  const Node& n = nodes_.at(host);
  if (n.kind != NodeKind::kHost) throw std::logic_error("not a host");
  if (!n.peers[0].has_value()) throw std::logic_error("host is unwired");
  return *n.peers[0];
}

unsigned FabricGraph::free_ports(iba::NodeId id) const {
  unsigned n = 0;
  for (const auto& p : nodes_.at(id).peers)
    if (!p.has_value()) ++n;
  return n;
}

bool FabricGraph::connected() const {
  if (nodes_.empty()) return true;
  std::vector<bool> seen(nodes_.size(), false);
  std::queue<iba::NodeId> frontier;
  frontier.push(0);
  seen[0] = true;
  std::size_t visited = 1;
  while (!frontier.empty()) {
    const auto id = frontier.front();
    frontier.pop();
    for (const auto& peer : nodes_[id].peers) {
      if (!peer.has_value() || seen[peer->node]) continue;
      seen[peer->node] = true;
      ++visited;
      frontier.push(peer->node);
    }
  }
  return visited == nodes_.size();
}

}  // namespace ibarb::network
