// Topology generators.
//
// The paper evaluates randomly generated irregular networks whose switches
// all have 8 ports — 4 with a host attached, 4 for switch-to-switch wiring —
// with sizes from 8 to 64 switches (32 to 256 hosts). The generator below
// reproduces that family; a couple of small fixed topologies support unit
// tests and examples.
#pragma once

#include <cstdint>
#include <string>

#include "network/graph.hpp"

namespace ibarb::network {

struct IrregularSpec {
  unsigned switches = 16;
  unsigned ports_per_switch = 8;
  unsigned hosts_per_switch = 4;  ///< Remaining ports interconnect switches.
  iba::LinkRate rate = iba::LinkRate::k1x;
  iba::Cycle propagation_delay = 2;
  std::uint64_t seed = 1;
};

/// Randomly wires an irregular network per the spec. Construction: a random
/// spanning tree over the switches first (guarantees connectivity), then the
/// remaining switch ports are paired uniformly at random, avoiding self
/// links and retrying to avoid duplicate parallel links when possible.
/// Hosts are attached afterwards. Deterministic in `seed`.
FabricGraph make_irregular(const IrregularSpec& spec);

/// One switch with `hosts` hosts — the smallest QoS-meaningful fabric.
FabricGraph make_single_switch(unsigned hosts, unsigned ports = 8,
                               iba::LinkRate rate = iba::LinkRate::k1x);

/// A line of `switches` switches, `hosts_per_switch` hosts on each — handy
/// for tests that need multi-hop paths with a known hop count.
FabricGraph make_line(unsigned switches, unsigned hosts_per_switch = 1,
                      iba::LinkRate rate = iba::LinkRate::k1x);

/// A cols x rows 2-D mesh of switches, `hosts_per_switch` hosts on each.
/// Switch (x, y) = index y*cols + x; ports 0..3 = W,E,N,S.
FabricGraph make_mesh2d(unsigned cols, unsigned rows,
                        unsigned hosts_per_switch = 1,
                        iba::LinkRate rate = iba::LinkRate::k1x);

/// Same, with wrap-around links (2-D torus). Requires cols, rows >= 3 so no
/// port is double-wired.
FabricGraph make_torus2d(unsigned cols, unsigned rows,
                         unsigned hosts_per_switch = 1,
                         iba::LinkRate rate = iba::LinkRate::k1x);

/// A two-level fat tree: `spines` top switches, `leaves` edge switches,
/// every leaf wired to every spine, `hosts_per_leaf` hosts per leaf. This is
/// the classic server-room shape the paper's NOW setting implies.
FabricGraph make_fat_tree(unsigned spines, unsigned leaves,
                          unsigned hosts_per_leaf,
                          iba::LinkRate rate = iba::LinkRate::k1x);

/// Graphviz dot rendering of a fabric (switches as boxes, hosts as dots).
std::string to_dot(const FabricGraph& graph);

}  // namespace ibarb::network
