// Topology generators (the builders behind the `--topo` registry).
//
// The paper evaluates randomly generated irregular networks whose switches
// all have 8 ports — 4 with a host attached, 4 for switch-to-switch wiring —
// with sizes from 8 to 64 switches (32 to 256 hosts). That family lives on
// as `gen::irregular`; the structured families (k-ary n-trees, dragonfly,
// 2-D/3-D torus) scale the fabric to 1k-100k hosts and leave a
// TopologyHint on the graph so structure-aware routing engines
// (routing_engine.hpp) can exploit the wiring.
//
// Prefer building through the spec registry (network/registry.hpp,
// `TopologySpec::parse("dragonfly:a=8,h=4").build()`); the free functions
// here are the typed layer underneath it. The unqualified `make_*` names
// are deprecated shims for out-of-tree callers.
#pragma once

#include <cstdint>
#include <string>

#include "network/graph.hpp"

namespace ibarb::network {

struct IrregularSpec {
  unsigned switches = 16;
  unsigned ports_per_switch = 8;
  unsigned hosts_per_switch = 4;  ///< Remaining ports interconnect switches.
  iba::LinkRate rate = iba::LinkRate::k1x;
  iba::Cycle propagation_delay = 2;
  std::uint64_t seed = 1;
};

namespace gen {

/// Randomly wires an irregular network per the spec. Construction: a random
/// spanning tree over the switches first (guarantees connectivity), then the
/// remaining switch ports are paired uniformly at random, avoiding self
/// links and retrying to avoid duplicate parallel links when possible.
/// Hosts are attached afterwards. Deterministic in `seed`.
FabricGraph irregular(const IrregularSpec& spec);

/// One switch with `hosts` hosts — the smallest QoS-meaningful fabric.
FabricGraph single_switch(unsigned hosts, unsigned ports = 8,
                          iba::LinkRate rate = iba::LinkRate::k1x);

/// A line of `switches` switches, `hosts_per_switch` hosts on each — handy
/// for tests that need multi-hop paths with a known hop count.
FabricGraph line(unsigned switches, unsigned hosts_per_switch = 1,
                 iba::LinkRate rate = iba::LinkRate::k1x);

/// A cols x rows 2-D mesh of switches, `hosts_per_switch` hosts on each.
/// Switch (x, y) = index y*cols + x; ports 0..3 = W,E,N,S.
FabricGraph mesh2d(unsigned cols, unsigned rows,
                   unsigned hosts_per_switch = 1,
                   iba::LinkRate rate = iba::LinkRate::k1x);

/// Same, with wrap-around links (2-D torus). Requires cols, rows >= 3 so no
/// port is double-wired.
FabricGraph torus2d(unsigned cols, unsigned rows,
                    unsigned hosts_per_switch = 1,
                    iba::LinkRate rate = iba::LinkRate::k1x);

/// A 3-D torus of x*y*z switches. Ports 0..5 = -x,+x,-y,+y,-z,+z; switch
/// (cx, cy, cz) = index (cz*y + cy)*x + cx. Every dimension must be >= 3.
FabricGraph torus3d(unsigned x, unsigned y, unsigned z,
                    unsigned hosts_per_switch = 1,
                    iba::LinkRate rate = iba::LinkRate::k1x);

/// A two-level fat tree: `spines` top switches, `leaves` edge switches,
/// every leaf wired to every spine, `hosts_per_leaf` hosts per leaf. This is
/// the classic server-room shape the paper's NOW setting implies.
FabricGraph fat_tree2(unsigned spines, unsigned leaves,
                      unsigned hosts_per_leaf,
                      iba::LinkRate rate = iba::LinkRate::k1x);

/// A k-ary n-tree (Petrini/Vanneschi): n levels of k^(n-1) switches, k^n
/// hosts. Level-l switch <w, l> (w = n-1 base-k digits) wires its up port
/// k+d to the level-(l+1) switch agreeing with w except digit l = that
/// parent's digit; hosts hang off level 0, host j on switch j/k down port
/// j%k. 48-ary 3-trees reach 110k hosts with 6912 switches.
FabricGraph kary_fattree(unsigned k, unsigned n,
                         iba::LinkRate rate = iba::LinkRate::k1x);

/// A canonical dragonfly: `groups` groups of `a` routers, each router with
/// a-1 local ports (all-to-all in the group), `h` global ports, and
/// `hosts_per_router` host ports. Global channel k of group u (router k/h,
/// port a-1+k%h) connects to group (u+k+1) mod groups, palmtree style.
/// Requires groups-1 <= a*h.
FabricGraph dragonfly(unsigned a, unsigned h, unsigned groups,
                      unsigned hosts_per_router,
                      iba::LinkRate rate = iba::LinkRate::k1x);

}  // namespace gen

/// Graphviz dot rendering of a fabric (switches as boxes, hosts as dots).
std::string to_dot(const FabricGraph& graph);

// --- Deprecated pre-registry spellings (one release of grace) -------------

[[deprecated("use gen::irregular or TopologySpec")]]
inline FabricGraph make_irregular(const IrregularSpec& spec) {
  return gen::irregular(spec);
}

[[deprecated("use gen::single_switch or TopologySpec")]]
inline FabricGraph make_single_switch(unsigned hosts, unsigned ports = 8,
                                      iba::LinkRate rate = iba::LinkRate::k1x) {
  return gen::single_switch(hosts, ports, rate);
}

[[deprecated("use gen::line or TopologySpec")]]
inline FabricGraph make_line(unsigned switches, unsigned hosts_per_switch = 1,
                             iba::LinkRate rate = iba::LinkRate::k1x) {
  return gen::line(switches, hosts_per_switch, rate);
}

[[deprecated("use gen::mesh2d or TopologySpec")]]
inline FabricGraph make_mesh2d(unsigned cols, unsigned rows,
                               unsigned hosts_per_switch = 1,
                               iba::LinkRate rate = iba::LinkRate::k1x) {
  return gen::mesh2d(cols, rows, hosts_per_switch, rate);
}

[[deprecated("use gen::torus2d or TopologySpec")]]
inline FabricGraph make_torus2d(unsigned cols, unsigned rows,
                                unsigned hosts_per_switch = 1,
                                iba::LinkRate rate = iba::LinkRate::k1x) {
  return gen::torus2d(cols, rows, hosts_per_switch, rate);
}

[[deprecated("use gen::fat_tree2 or TopologySpec")]]
inline FabricGraph make_fat_tree(unsigned spines, unsigned leaves,
                                 unsigned hosts_per_leaf,
                                 iba::LinkRate rate = iba::LinkRate::k1x) {
  return gen::fat_tree2(spines, leaves, hosts_per_leaf, rate);
}

}  // namespace ibarb::network
