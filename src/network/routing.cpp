#include "network/routing.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <stdexcept>

namespace ibarb::network {

namespace {

constexpr unsigned kUnreached = std::numeric_limits<unsigned>::max();
constexpr iba::PortIndex kNoPort = 0xFF;

}  // namespace

iba::PortIndex Routes::out_port(iba::NodeId sw, iba::NodeId dst_host) const {
  const auto s = dense_.at(sw);
  const auto h = dense_.at(dst_host);
  const auto port = table_.at(s).at(h);
  assert(port != kNoPort);
  return port;
}

std::vector<PortRef> Routes::path(iba::NodeId src_host,
                                  iba::NodeId dst_host) const {
  assert(graph_ != nullptr);
  std::vector<PortRef> out;
  out.push_back(PortRef{src_host, 0});
  iba::NodeId at = graph_->host_uplink(src_host).node;
  while (true) {
    const auto port = out_port(at, dst_host);
    out.push_back(PortRef{at, port});
    const auto peer = graph_->peer(at, port);
    assert(peer.has_value());
    if (peer->node == dst_host) break;
    assert(graph_->is_switch(peer->node));
    at = peer->node;
    assert(out.size() <= graph_->node_count() && "routing loop");
  }
  return out;
}

unsigned Routes::hops(iba::NodeId src_host, iba::NodeId dst_host) const {
  return static_cast<unsigned>(path(src_host, dst_host).size()) - 1;
}

unsigned Routes::level(iba::NodeId sw) const {
  return switch_level_.at(dense_.at(sw));
}

bool Routes::is_up_hop(iba::NodeId a, iba::NodeId b) const {
  const unsigned la = level(a);
  const unsigned lb = level(b);
  if (lb != la) return lb < la;
  return b < a;
}

Routes compute_updown_routes(const FabricGraph& g) {
  if (!g.connected()) throw std::runtime_error("fabric is disconnected");

  Routes r;
  r.graph_ = &g;
  r.switch_ids_ = g.switches();
  r.host_ids_ = g.hosts();
  if (r.switch_ids_.empty()) throw std::runtime_error("no switches in fabric");

  r.dense_.assign(g.node_count(), 0);
  for (std::uint32_t i = 0; i < r.switch_ids_.size(); ++i)
    r.dense_[r.switch_ids_[i]] = i;
  for (std::uint32_t i = 0; i < r.host_ids_.size(); ++i)
    r.dense_[r.host_ids_[i]] = i;

  const auto n_sw = r.switch_ids_.size();
  const auto n_host = r.host_ids_.size();

  // Root: the highest-degree switch (ties -> lowest id) gives the shallowest
  // tree, the usual up*/down* heuristic.
  r.root_ = r.switch_ids_[0];
  unsigned best_degree = 0;
  for (const auto s : r.switch_ids_) {
    unsigned deg = 0;
    for (unsigned p = 0; p < g.port_count(s); ++p) {
      const auto peer = g.peer(s, static_cast<iba::PortIndex>(p));
      if (peer && g.is_switch(peer->node)) ++deg;
    }
    if (deg > best_degree) {
      best_degree = deg;
      r.root_ = s;
    }
  }

  // BFS levels over the switch-only graph.
  r.switch_level_.assign(n_sw, kUnreached);
  {
    std::queue<iba::NodeId> frontier;
    r.switch_level_[r.dense_[r.root_]] = 0;
    frontier.push(r.root_);
    while (!frontier.empty()) {
      const auto at = frontier.front();
      frontier.pop();
      for (unsigned p = 0; p < g.port_count(at); ++p) {
        const auto peer = g.peer(at, static_cast<iba::PortIndex>(p));
        if (!peer || !g.is_switch(peer->node)) continue;
        auto& lvl = r.switch_level_[r.dense_[peer->node]];
        if (lvl == kUnreached) {
          lvl = r.switch_level_[r.dense_[at]] + 1;
          frontier.push(peer->node);
        }
      }
    }
    for (const auto lvl : r.switch_level_)
      if (lvl == kUnreached)
        throw std::runtime_error("switch graph is disconnected");
  }

  r.table_.assign(n_sw, std::vector<iba::PortIndex>(n_host, kNoPort));

  // Per destination host: its switch is the sink; build legal next hops.
  for (std::uint32_t h = 0; h < n_host; ++h) {
    const auto host = r.host_ids_[h];
    const PortRef uplink = g.host_uplink(host);
    const auto sink = uplink.node;
    r.table_[r.dense_[sink]][h] = uplink.port;

    // down_dist[s]: shortest all-down path s -> sink. BFS climbing from the
    // sink: predecessor s reaches x via a down hop iff x -> s is an up hop.
    std::vector<unsigned> down_dist(n_sw, kUnreached);
    std::vector<iba::PortIndex> down_port(n_sw, kNoPort);
    {
      std::queue<iba::NodeId> frontier;
      down_dist[r.dense_[sink]] = 0;
      frontier.push(sink);
      while (!frontier.empty()) {
        const auto x = frontier.front();
        frontier.pop();
        for (unsigned p = 0; p < g.port_count(x); ++p) {
          const auto peer = g.peer(x, static_cast<iba::PortIndex>(p));
          if (!peer || !g.is_switch(peer->node)) continue;
          const auto s = peer->node;
          if (!r.is_up_hop(x, s)) continue;  // need hop s->x to be down
          if (down_dist[r.dense_[s]] != kUnreached) continue;
          down_dist[r.dense_[s]] = down_dist[r.dense_[x]] + 1;
          down_port[r.dense_[s]] = peer->port;
          frontier.push(s);
        }
      }
    }

    // dist[s]: shortest legal (up* then down*) path length. Multi-source
    // uniform-weight Dijkstra seeded with the all-down distances, expanding
    // backwards over up hops (s -> m up).
    std::vector<unsigned> dist(down_dist);
    std::vector<iba::PortIndex> up_port(n_sw, kNoPort);
    using Item = std::pair<unsigned, iba::NodeId>;  // (dist, switch)
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    for (std::uint32_t s = 0; s < n_sw; ++s)
      if (dist[s] != kUnreached) pq.emplace(dist[s], r.switch_ids_[s]);
    while (!pq.empty()) {
      const auto [d, m] = pq.top();
      pq.pop();
      if (d != dist[r.dense_[m]]) continue;  // stale
      for (unsigned p = 0; p < g.port_count(m); ++p) {
        const auto peer = g.peer(m, static_cast<iba::PortIndex>(p));
        if (!peer || !g.is_switch(peer->node)) continue;
        const auto s = peer->node;
        if (!r.is_up_hop(s, m)) continue;  // expanding s -> m up hops only
        if (dist[r.dense_[s]] <= d + 1) continue;
        dist[r.dense_[s]] = d + 1;
        up_port[r.dense_[s]] = peer->port;
        pq.emplace(d + 1, s);
      }
    }

    for (std::uint32_t s = 0; s < n_sw; ++s) {
      const auto sw = r.switch_ids_[s];
      if (sw == sink) continue;
      if (dist[s] == kUnreached)
        throw std::runtime_error("no legal up*/down* path to a destination");
      // Prefer the all-down continuation when it is optimal; once a packet
      // descends, every later switch also satisfies this and keeps
      // descending, so chained paths stay legal.
      if (down_dist[s] == dist[s]) {
        r.table_[s][h] = down_port[s];
      } else {
        r.table_[s][h] = up_port[s];
      }
    }
  }
  return r;
}

}  // namespace ibarb::network
