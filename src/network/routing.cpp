#include "network/routing.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace ibarb::network {

RoutesBuilder::RoutesBuilder(const FabricGraph& g, std::string engine_name) {
  r_.graph_ = &g;
  r_.engine_ = std::move(engine_name);
  r_.switch_ids_ = g.switches();
  r_.host_ids_ = g.hosts();
  if (r_.switch_ids_.empty())
    throw std::runtime_error("no switches in fabric");

  r_.dense_.assign(g.node_count(), 0);
  for (std::uint32_t i = 0; i < r_.switch_ids_.size(); ++i)
    r_.dense_[r_.switch_ids_[i]] = i;
  for (std::uint32_t i = 0; i < r_.host_ids_.size(); ++i)
    r_.dense_[r_.host_ids_[i]] = i;

  const std::uint64_t n_sw = r_.switch_ids_.size();
  r_.row_off_.resize(n_sw + 1);
  for (std::uint64_t s = 0; s <= n_sw; ++s) r_.row_off_[s] = s * n_sw;
  r_.ports_.assign(n_sw * n_sw, kNoRoute);

  r_.host_sw_.resize(r_.host_ids_.size());
  r_.host_port_.resize(r_.host_ids_.size());
  for (std::uint32_t h = 0; h < r_.host_ids_.size(); ++h) {
    const PortRef uplink = g.host_uplink(r_.host_ids_[h]);
    r_.host_sw_[h] = r_.dense_[uplink.node];
    r_.host_port_[h] = uplink.port;
  }
}

void RoutesBuilder::set_vl(std::uint32_t s, std::uint32_t t,
                             iba::VirtualLane vl) {
  if (r_.vls_.empty()) r_.vls_.assign(r_.ports_.size(), 0);
  r_.vls_[r_.row_off_[s] + t] = vl;
}

void RoutesBuilder::set_levels(std::vector<unsigned> levels,
                                 iba::NodeId root) {
  assert(levels.size() == r_.switch_ids_.size());
  r_.switch_level_ = std::move(levels);
  r_.root_ = root;
}

Routes RoutesBuilder::build() && {
  // Every switch must route every *host-bearing* destination switch: that
  // is what LFT programming and the data path consult. Columns for hostless
  // destinations (e.g. spines) may stay kNoRoute.
  std::vector<char> bearing(r_.switch_ids_.size(), 0);
  for (const auto t : r_.host_sw_) bearing[t] = 1;
  for (std::uint32_t t = 0; t < r_.switch_ids_.size(); ++t) {
    if (!bearing[t]) continue;
    for (std::uint32_t s = 0; s < r_.switch_ids_.size(); ++s) {
      if (s == t) continue;
      if (r_.ports_[r_.row_off_[s] + t] == kNoRoute)
        throw std::runtime_error("routing engine '" + r_.engine_ +
                                 "' left switch " +
                                 std::to_string(r_.switch_ids_[s]) +
                                 " without a route to switch " +
                                 std::to_string(r_.switch_ids_[t]));
    }
  }
  return std::move(r_);
}

std::vector<PortRef> Routes::path(iba::NodeId src_host,
                                  iba::NodeId dst_host) const {
  assert(graph_ != nullptr);
  std::vector<PortRef> out;
  out.push_back(PortRef{src_host, 0});
  iba::NodeId at = graph_->host_uplink(src_host).node;
  while (true) {
    const auto port = out_port(at, dst_host);
    out.push_back(PortRef{at, port});
    const auto peer = graph_->peer(at, port);
    assert(peer.has_value());
    if (peer->node == dst_host) break;
    assert(graph_->is_switch(peer->node));
    at = peer->node;
    assert(out.size() <= graph_->node_count() && "routing loop");
  }
  return out;
}

unsigned Routes::hops(iba::NodeId src_host, iba::NodeId dst_host) const {
  assert(graph_ != nullptr);
  const auto h = dense_[dst_host];
  const auto sink = host_sw_[h];
  std::uint32_t at = dense_[graph_->host_uplink(src_host).node];
  unsigned n = 1;  // the delivery hop out of the sink switch
  while (at != sink) {
    const auto port = ports_[row_off_[at] + sink];
    assert(port != kNoRoute);
    const auto peer = graph_->peer(switch_ids_[at], port);
    assert(peer.has_value() && graph_->is_switch(peer->node));
    at = dense_[peer->node];
    ++n;
    assert(n <= graph_->node_count() && "routing loop");
  }
  return n;
}

unsigned Routes::level(iba::NodeId sw) const {
  if (switch_level_.empty())
    throw std::logic_error("engine '" + engine_ +
                           "' defines no up*/down* levels");
  return switch_level_.at(dense_.at(sw));
}

bool Routes::is_up_hop(iba::NodeId a, iba::NodeId b) const {
  const unsigned la = level(a);
  const unsigned lb = level(b);
  if (lb != la) return lb < la;
  return b < a;
}

}  // namespace ibarb::network
