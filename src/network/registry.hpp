// String-keyed topology registry — the `--topo` / IBARB_TOPO axis.
//
// Grammar:   FAMILY[:key=value[,key=value...]]
// Examples:  irregular:switches=32,seed=7
//            fattree:k=16,n=3            (4096 hosts, 768 switches)
//            dragonfly:a=8,h=4           (g defaults to a*h+1 = 33 groups)
//            torus3d:x=8,y=8,z=8,hosts=4
//
// Every family and every per-family key has a default, so "torus2d" alone
// is a valid spec. Unknown families and unknown keys are rejected at parse
// time (std::invalid_argument naming the valid set), mirroring the
// `--crossbar` scheduler registry. Values are unsigned integers; `rate`
// takes the IBA link width (1, 4 or 12).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "network/graph.hpp"

namespace ibarb::network {

/// Valid `--topo` families, pipe-separated (error-message order).
inline constexpr std::string_view kTopologyFamilyNames =
    "irregular|single|line|mesh2d|torus2d|torus3d|fattree|fattree2|"
    "dragonfly";

/// A parsed (but not yet built) topology description: the family plus the
/// explicitly-set parameters. Defaults are applied at build() so callers
/// can tell "user asked for seed=1" from "seed was left alone" — the paper
/// runner uses that to keep `--switches`/`--seed` meaningful for the
/// default irregular family.
class TopologySpec {
 public:
  /// Parses "family:k=v,...". Throws std::invalid_argument on an unknown
  /// family or key, a malformed pair, or a non-integer value.
  static TopologySpec parse(std::string_view text);

  const std::string& family() const noexcept { return family_; }

  bool has(std::string_view key) const noexcept;
  /// Explicit value, or the family default when unset.
  std::uint64_t param(std::string_view key) const;
  /// Sets/overrides a parameter (must be a valid key for the family).
  void set(std::string_view key, std::uint64_t value);

  /// Canonical spelling: family:k=v,... with every parameter present, in
  /// registry order. Stable across spellings of the same spec — reports
  /// echo this.
  std::string canonical() const;

  /// Builds the fabric. Throws std::invalid_argument on parameter values
  /// the family rejects (each message names the offending parameter).
  FabricGraph build() const;

  /// Keys the family accepts, with defaults, in canonical order.
  const std::vector<std::pair<std::string_view, std::uint64_t>>& keys()
      const;

 private:
  std::string family_;
  std::vector<std::pair<std::string, std::uint64_t>> params_;  // explicit
};

std::vector<std::string_view> topology_family_names();

/// True when `family` names a registered topology family.
bool is_topology_family(std::string_view family) noexcept;

/// Spec from IBARB_TOPO; `fallback` when unset/empty. Throws
/// std::invalid_argument (naming the variable) on a malformed value.
TopologySpec topology_spec_from_env(std::string_view fallback = "irregular");

}  // namespace ibarb::network
