// String-keyed routing-engine registry (the `--routing` / IBARB_ROUTING
// axis), mirroring the `--crossbar` scheduler registry in src/sched/.
//
// An engine turns a FabricGraph into a Routes table. Three are registered:
//
//  * `updown`          — the classical deadlock-free up*/down* pass for
//                        irregular networks (the paper's algorithm, and the
//                        default). Works on any connected fabric.
//  * `minimal-vl-escape` — minimal/dimension-order routing with an escape
//                        virtual-lane layer that breaks ring and group
//                        dependency cycles (dateline VLs on tori, a
//                        destination-group VL on dragonflies, per the D3R
//                        design). Requires a structural TopologyHint
//                        (mesh2d, torus2d, torus3d, dragonfly).
//  * `fattree-dmodk`   — destination-mod-k up-path selection on fat trees
//                        (k-ary n-trees and 2-level spine/leaf), giving
//                        deterministic per-destination load spreading over
//                        the up ports. Requires a fattree/fattree2 hint.
//
// Unknown names are rejected at parse time with the valid list; engines
// that cannot route the given graph throw std::runtime_error.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "network/routing.hpp"

namespace ibarb::network {

class RoutingEngine {
 public:
  virtual ~RoutingEngine() = default;

  virtual std::string_view name() const noexcept = 0;

  /// One-line human description for --help style listings.
  virtual std::string_view description() const noexcept = 0;

  /// Builds the forwarding tables. Throws std::runtime_error when the graph
  /// cannot be routed (disconnected, or missing the structural hint this
  /// engine needs).
  virtual Routes compute(const FabricGraph& g) const = 0;
};

/// Valid `--routing` values, pipe-separated (error-message order).
inline constexpr std::string_view kRoutingEngineNames =
    "updown|minimal-vl-escape|fattree-dmodk";

/// All registered engines, in kRoutingEngineNames order.
const std::vector<const RoutingEngine*>& routing_engines();

/// Looks up an engine by name; throws std::invalid_argument naming the
/// valid set on an unknown name.
const RoutingEngine& routing_engine(std::string_view name);

/// True when `name` is a registered engine (parse-time validation).
bool is_routing_engine(std::string_view name) noexcept;

/// Engine selection from IBARB_ROUTING; `fallback` when unset/empty.
/// Throws std::invalid_argument on an unknown value, naming the variable.
std::string routing_engine_from_env(std::string_view fallback = "updown");

}  // namespace ibarb::network
