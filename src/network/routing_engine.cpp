#include "network/routing_engine.hpp"

#include <cstdlib>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

namespace ibarb::network {

namespace {

constexpr unsigned kUnreached = std::numeric_limits<unsigned>::max();

// ---------------------------------------------------------------------------
// updown — the paper's deadlock-free up*/down* pass for irregular networks.
//
// This is the pre-registry `compute_updown_routes` body, reorganized around
// one observation that makes it (and the CSR table) scale: the per-
// destination computation only ever depended on the destination host's
// switch, so it now runs once per destination *switch* instead of once per
// host. The per-sink math — down-BFS, then a multi-source Dijkstra over up
// hops, preferring the all-down continuation when optimal — is unchanged
// line for line, so the resulting tables are pinned table-for-table against
// the old pass by tests/test_routing_engines.cpp.
// ---------------------------------------------------------------------------
class UpdownEngine final : public RoutingEngine {
 public:
  std::string_view name() const noexcept override { return "updown"; }
  std::string_view description() const noexcept override {
    return "deadlock-free up*/down* (BFS tree from highest-degree root); "
           "routes any connected fabric";
  }

  Routes compute(const FabricGraph& g) const override {
    if (!g.connected()) throw std::runtime_error("fabric is disconnected");

    RoutesBuilder b(g, "updown");
    const std::uint32_t n_sw = b.n_switches();

    // Root: the highest-degree switch (ties -> lowest id) gives the
    // shallowest tree, the usual up*/down* heuristic.
    iba::NodeId root = b.switch_id(0);
    unsigned best_degree = 0;
    for (std::uint32_t i = 0; i < n_sw; ++i) {
      const auto s = b.switch_id(i);
      unsigned deg = 0;
      for (unsigned p = 0; p < g.port_count(s); ++p) {
        const auto peer = g.peer(s, static_cast<iba::PortIndex>(p));
        if (peer && g.is_switch(peer->node)) ++deg;
      }
      if (deg > best_degree) {
        best_degree = deg;
        root = s;
      }
    }

    // BFS levels over the switch-only graph.
    std::vector<unsigned> level(n_sw, kUnreached);
    {
      std::queue<iba::NodeId> frontier;
      level[b.dense_switch(root)] = 0;
      frontier.push(root);
      while (!frontier.empty()) {
        const auto at = frontier.front();
        frontier.pop();
        for (unsigned p = 0; p < g.port_count(at); ++p) {
          const auto peer = g.peer(at, static_cast<iba::PortIndex>(p));
          if (!peer || !g.is_switch(peer->node)) continue;
          auto& lvl = level[b.dense_switch(peer->node)];
          if (lvl == kUnreached) {
            lvl = level[b.dense_switch(at)] + 1;
            frontier.push(peer->node);
          }
        }
      }
      for (const auto lvl : level)
        if (lvl == kUnreached)
          throw std::runtime_error("switch graph is disconnected");
    }

    // Hop x -> y climbs toward the root iff y's level is smaller (ties by
    // node id). Same tie-break as Routes::is_up_hop.
    const auto is_up_hop = [&](iba::NodeId x, iba::NodeId y) {
      const unsigned lx = level[b.dense_switch(x)];
      const unsigned ly = level[b.dense_switch(y)];
      if (ly != lx) return ly < lx;
      return y < x;
    };

    // Per destination switch (the sink): build legal next hops everywhere.
    std::vector<unsigned> down_dist(n_sw), dist(n_sw);
    std::vector<iba::PortIndex> down_port(n_sw), up_port(n_sw);
    for (std::uint32_t t = 0; t < n_sw; ++t) {
      const auto sink = b.switch_id(t);

      // down_dist[s]: shortest all-down path s -> sink. BFS climbing from
      // the sink: predecessor s reaches x via a down hop iff x -> s is up.
      down_dist.assign(n_sw, kUnreached);
      down_port.assign(n_sw, kNoRoute);
      {
        std::queue<iba::NodeId> frontier;
        down_dist[t] = 0;
        frontier.push(sink);
        while (!frontier.empty()) {
          const auto x = frontier.front();
          frontier.pop();
          for (unsigned p = 0; p < g.port_count(x); ++p) {
            const auto peer = g.peer(x, static_cast<iba::PortIndex>(p));
            if (!peer || !g.is_switch(peer->node)) continue;
            const auto s = peer->node;
            if (!is_up_hop(x, s)) continue;  // need hop s->x to be down
            if (down_dist[b.dense_switch(s)] != kUnreached) continue;
            down_dist[b.dense_switch(s)] = down_dist[b.dense_switch(x)] + 1;
            down_port[b.dense_switch(s)] = peer->port;
            frontier.push(s);
          }
        }
      }

      // dist[s]: shortest legal (up* then down*) path length. Multi-source
      // uniform-weight Dijkstra seeded with the all-down distances,
      // expanding backwards over up hops (s -> m up).
      dist = down_dist;
      up_port.assign(n_sw, kNoRoute);
      using Item = std::pair<unsigned, iba::NodeId>;  // (dist, switch)
      std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
      for (std::uint32_t s = 0; s < n_sw; ++s)
        if (dist[s] != kUnreached) pq.emplace(dist[s], b.switch_id(s));
      while (!pq.empty()) {
        const auto [d, m] = pq.top();
        pq.pop();
        if (d != dist[b.dense_switch(m)]) continue;  // stale
        for (unsigned p = 0; p < g.port_count(m); ++p) {
          const auto peer = g.peer(m, static_cast<iba::PortIndex>(p));
          if (!peer || !g.is_switch(peer->node)) continue;
          const auto s = peer->node;
          if (!is_up_hop(s, m)) continue;  // expanding s -> m up hops only
          if (dist[b.dense_switch(s)] <= d + 1) continue;
          dist[b.dense_switch(s)] = d + 1;
          up_port[b.dense_switch(s)] = peer->port;
          pq.emplace(d + 1, s);
        }
      }

      for (std::uint32_t s = 0; s < n_sw; ++s) {
        if (s == t) continue;
        if (dist[s] == kUnreached)
          throw std::runtime_error(
              "no legal up*/down* path to a destination");
        // Prefer the all-down continuation when it is optimal; once a
        // packet descends, every later switch also satisfies this and
        // keeps descending, so chained paths stay legal.
        b.set_port(s, t, down_dist[s] == dist[s] ? down_port[s]
                                                 : up_port[s]);
      }
    }

    b.set_levels(std::move(level), root);
    return std::move(b).build();
  }
};

// ---------------------------------------------------------------------------
// minimal-vl-escape — dimension-order / minimal routing with escape VLs.
//
// Tori: dimension-order (x, then y, then z), shortest way around each ring
// (ties toward +). The VL on each hop is a pure function of (current
// switch, destination): VL0 while the remaining path in the current
// dimension still crosses that ring's dateline (the wrap edge), VL1 after
// (or when it never will). The dateline edge is therefore only ever
// occupied on VL0, and a VL0 packet becomes VL1 immediately after crossing,
// so each (direction, VL) channel class is a path, not a cycle; dimension
// order makes the cross-dimension dependencies acyclic. 2 VLs total.
//
// Dragonfly: canonical minimal l-g-l — local hop to the gateway router,
// one global hop, local hop inside the destination group. Global and
// source-group-local hops ride VL0; destination-group-local hops ride VL1
// (the D3R-style escape: the only local->local dependency a minimal path
// can create is through the VL bump, which orders it). 2 VLs total.
//
// Requires the generator's TopologyHint; a degraded re-sweep copy carries
// none, and dimension-order on a holey torus would blackhole — so this
// engine refuses hintless graphs and the subnet manager falls back to
// updown.
// ---------------------------------------------------------------------------
class MinimalVlEscapeEngine final : public RoutingEngine {
 public:
  std::string_view name() const noexcept override {
    return "minimal-vl-escape";
  }
  std::string_view description() const noexcept override {
    return "minimal/dimension-order with dateline (torus) or "
           "destination-group (dragonfly) escape VLs";
  }

  Routes compute(const FabricGraph& g) const override {
    const auto& hint = g.topology_hint();
    if (hint.family == "mesh2d" || hint.family == "torus2d")
      return route_torus(g, {hint.dims.at(0), hint.dims.at(1)},
                         hint.family == "torus2d");
    if (hint.family == "torus3d")
      return route_torus(g, {hint.dims.at(0), hint.dims.at(1),
                             hint.dims.at(2)},
                         true);
    if (hint.family == "dragonfly") return route_dragonfly(g, hint);
    throw std::runtime_error(
        "minimal-vl-escape needs a mesh2d|torus2d|torus3d|dragonfly "
        "topology hint; this graph has " +
        (hint.empty() ? std::string("none (irregular or degraded fabric)")
                      : "'" + hint.family + "'"));
  }

 private:
  /// Shared mesh/torus dimension-order pass. Switch with coordinates
  /// (c[0], c[1], ...) has dense index sum(c[d] * stride[d]); ports are
  /// (2d) = -dim d, (2d+1) = +dim d — matching make_mesh2d/torus wiring
  /// (0=W, 1=E, 2=N, 3=S, then -z, +z).
  static Routes route_torus(const FabricGraph& g,
                            std::vector<std::uint32_t> dim, bool wrap) {
    RoutesBuilder b(g, "minimal-vl-escape");
    std::uint64_t expect = 1;
    for (const auto d : dim) expect *= d;
    if (expect != b.n_switches())
      throw std::runtime_error("topology hint dims do not match fabric");

    const auto coord = [&](std::uint32_t s, unsigned d) {
      for (unsigned i = 0; i < d; ++i) s /= dim[i];
      return s % dim[d];
    };

    for (std::uint32_t s = 0; s < b.n_switches(); ++s) {
      for (std::uint32_t t = 0; t < b.n_switches(); ++t) {
        if (s == t) continue;
        // First dimension (lowest index) where the coordinates differ is
        // the one we route in next.
        unsigned d = 0;
        while (coord(s, d) == coord(t, d)) ++d;
        const std::uint32_t cs = coord(s, d);
        const std::uint32_t ct = coord(t, d);
        bool forward;
        bool crosses = false;  // remaining travel wraps over the dateline
        if (!wrap) {
          forward = ct > cs;
        } else {
          const std::uint32_t n = dim[d];
          const std::uint32_t df = (ct + n - cs) % n;
          forward = df <= n - df;  // tie -> +
          crosses = forward ? cs > ct : cs < ct;
        }
        b.set_port(s, t,
                   static_cast<iba::PortIndex>(2 * d + (forward ? 1 : 0)));
        if (wrap) b.set_vl(s, t, crosses ? 0 : 1);
      }
    }
    if (wrap) b.set_vl_layers(2);
    return std::move(b).build();
  }

  /// Canonical dragonfly (a routers/group, h globals/router, g groups):
  /// router ports are 0..a-2 local (port toward router j: j minus one if
  /// j > own index), a-1..a+h-2 global, then hosts. Global channel k of
  /// group u (router k/h, port a-1+k%h) lands in group (u+k+1) mod g,
  /// whose return channel is g-2-k.
  static Routes route_dragonfly(const FabricGraph& g,
                                const TopologyHint& hint) {
    const std::uint32_t a = hint.dims.at(0);
    const std::uint32_t h = hint.dims.at(1);
    const std::uint32_t groups = hint.dims.at(2);
    RoutesBuilder b(g, "minimal-vl-escape");
    if (static_cast<std::uint64_t>(a) * groups != b.n_switches())
      throw std::runtime_error("topology hint dims do not match fabric");

    const auto local_port = [&](std::uint32_t from, std::uint32_t to) {
      return static_cast<iba::PortIndex>(to < from ? to : to - 1);
    };

    for (std::uint32_t s = 0; s < b.n_switches(); ++s) {
      const std::uint32_t gs = s / a, ls = s % a;
      for (std::uint32_t t = 0; t < b.n_switches(); ++t) {
        if (s == t) continue;
        const std::uint32_t gt = t / a, lt = t % a;
        if (gs == gt) {
          // Distribution hop inside the destination group: escape VL.
          b.set_port(s, t, local_port(ls, lt));
          b.set_vl(s, t, 1);
          continue;
        }
        const std::uint32_t k = (gt + groups - gs - 1) % groups;
        const std::uint32_t gateway = k / h;
        if (ls == gateway) {
          b.set_port(s, t, static_cast<iba::PortIndex>(a - 1 + k % h));
        } else {
          b.set_port(s, t, local_port(ls, gateway));
        }
        b.set_vl(s, t, 0);
      }
    }
    b.set_vl_layers(2);
    return std::move(b).build();
  }
};

// ---------------------------------------------------------------------------
// fattree-dmodk — destination-mod-k up-path selection on fat trees.
//
// k-ary n-tree: switches are <digits w, level l>; climbing from level l,
// the up port is chosen by the *destination's* digit at that level
// (d-mod-k), so the path to a fixed destination is deterministic (packets
// stay in order) while different destinations fan out over all up ports.
// Once the forced least-common-ancestor level is reached the switch is an
// ancestor of the destination and the path descends by destination digits.
// Up-then-down => acyclic channel dependencies, no VLs needed.
//
// 2-level spine/leaf (fattree2): up port = destination-leaf mod spines,
// spine's down port = destination leaf — the degenerate n=2 case of the
// same idea, kept for the paper's original server-room shape.
// ---------------------------------------------------------------------------
class FattreeDmodkEngine final : public RoutingEngine {
 public:
  std::string_view name() const noexcept override { return "fattree-dmodk"; }
  std::string_view description() const noexcept override {
    return "destination-mod-k up-path selection on k-ary n-trees and "
           "spine/leaf fat trees";
  }

  Routes compute(const FabricGraph& g) const override {
    const auto& hint = g.topology_hint();
    if (hint.family == "fattree") return route_kary(g, hint);
    if (hint.family == "fattree2") return route_two_level(g, hint);
    throw std::runtime_error(
        "fattree-dmodk needs a fattree|fattree2 topology hint; this graph "
        "has " +
        (hint.empty() ? std::string("none (irregular or degraded fabric)")
                      : "'" + hint.family + "'"));
  }

 private:
  static Routes route_kary(const FabricGraph& g, const TopologyHint& hint) {
    const std::uint32_t k = hint.dims.at(0);
    const std::uint32_t n = hint.dims.at(1);
    std::uint64_t per_level = 1;
    for (std::uint32_t i = 1; i < n; ++i) per_level *= k;
    RoutesBuilder b(g, "fattree-dmodk");
    if (per_level * n != b.n_switches())
      throw std::runtime_error("topology hint dims do not match fabric");

    // Dense index = level * per_level + w; hosts hang off level 0. Only
    // level-0 switches are destinations (spine columns stay unrouted).
    std::vector<std::uint64_t> pow(n, 1);
    for (std::uint32_t i = 1; i < n; ++i) pow[i] = pow[i - 1] * k;

    for (std::uint32_t s = 0; s < b.n_switches(); ++s) {
      const std::uint32_t l = static_cast<std::uint32_t>(s / per_level);
      const std::uint64_t w = s % per_level;
      for (std::uint64_t wt = 0; wt < per_level; ++wt) {
        const auto t = static_cast<std::uint32_t>(wt);
        if (s == t) continue;
        iba::PortIndex port;
        if (l > 0 && w / pow[l] == wt / pow[l]) {
          // Ancestor of every host on leaf wt: descend by the destination
          // digit below this level.
          port = static_cast<iba::PortIndex>(wt / pow[l - 1] % k);
        } else {
          // Climb; the destination's digit at this level picks the parent.
          port = static_cast<iba::PortIndex>(k + wt / pow[l] % k);
        }
        b.set_port(s, t, port);
      }
    }
    return std::move(b).build();
  }

  static Routes route_two_level(const FabricGraph& g,
                                const TopologyHint& hint) {
    const std::uint32_t spines = hint.dims.at(0);
    const std::uint32_t leaves = hint.dims.at(1);
    RoutesBuilder b(g, "fattree-dmodk");
    if (spines + leaves != b.n_switches())
      throw std::runtime_error("topology hint dims do not match fabric");

    // Dense index: spines 0..spines-1 then leaves; leaf port t reaches
    // spine t, spine port l reaches leaf l (make_fat_tree wiring).
    for (std::uint32_t lt = 0; lt < leaves; ++lt) {
      const std::uint32_t t = spines + lt;
      for (std::uint32_t sp = 0; sp < spines; ++sp)
        b.set_port(sp, t, static_cast<iba::PortIndex>(lt));
      for (std::uint32_t lf = 0; lf < leaves; ++lf)
        if (lf != lt)
          b.set_port(spines + lf, t,
                     static_cast<iba::PortIndex>(lt % spines));
    }
    return std::move(b).build();
  }
};

const UpdownEngine kUpdown;
const MinimalVlEscapeEngine kMinimalVlEscape;
const FattreeDmodkEngine kFattreeDmodk;

}  // namespace

const std::vector<const RoutingEngine*>& routing_engines() {
  static const std::vector<const RoutingEngine*> kAll{
      &kUpdown, &kMinimalVlEscape, &kFattreeDmodk};
  return kAll;
}

const RoutingEngine& routing_engine(std::string_view name) {
  for (const auto* e : routing_engines())
    if (e->name() == name) return *e;
  throw std::invalid_argument("unknown routing engine '" + std::string(name) +
                              "' (expected " +
                              std::string(kRoutingEngineNames) + ")");
}

bool is_routing_engine(std::string_view name) noexcept {
  for (const auto* e : routing_engines())
    if (e->name() == name) return true;
  return false;
}

std::string routing_engine_from_env(std::string_view fallback) {
  const char* raw = std::getenv("IBARB_ROUTING");
  if (raw == nullptr || *raw == '\0') return std::string(fallback);
  if (!is_routing_engine(raw))
    throw std::invalid_argument("IBARB_ROUTING: unknown routing engine '" +
                                std::string(raw) + "' (expected " +
                                std::string(kRoutingEngineNames) + ")");
  return std::string(raw);
}

Routes compute_routes(const FabricGraph& g, std::string_view engine) {
  return routing_engine(engine).compute(g);
}

}  // namespace ibarb::network
