// Fabric graph: switches and hosts joined by full-duplex point-to-point
// links. Purely structural — the DES switch/host models live in src/sim/.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "iba/link.hpp"
#include "iba/types.hpp"

namespace ibarb::network {

enum class NodeKind : std::uint8_t { kSwitch, kHost };

/// Structural metadata a generator leaves on the graph it built, so routing
/// engines that exploit regular structure (dimension-order, d-mod-k, group
/// routing) can recover coordinates from switch indices instead of
/// rediscovering them. `family` is the registry family name ("torus3d",
/// "dragonfly", ...); `dims` is family-specific (see docs/TOPOLOGIES.md).
/// A default-constructed hint (empty family) means "no known structure" —
/// structured engines must refuse such graphs. Degraded copies built during
/// fault re-sweeps deliberately carry no hint: a holey torus is not a torus,
/// and dimension-order routing on one would blackhole traffic.
struct TopologyHint {
  std::string family;
  std::vector<std::uint32_t> dims;

  bool empty() const noexcept { return family.empty(); }
};

/// One end of a link: a (node, port) pair.
struct PortRef {
  iba::NodeId node = iba::kInvalidNode;
  iba::PortIndex port = 0;

  friend bool operator==(const PortRef&, const PortRef&) = default;
};

class FabricGraph {
 public:
  struct Node {
    NodeKind kind = NodeKind::kSwitch;
    /// peer[p] is the far end of the link on port p (nullopt = unwired).
    std::vector<std::optional<PortRef>> peers;
    std::vector<iba::Link> links;  ///< Link attributes per wired port.
  };

  iba::NodeId add_switch(unsigned ports);
  iba::NodeId add_host();  ///< Hosts have exactly one port (port 0).

  /// Wires a.port_a <-> b.port_b with the given link. Both ports must be
  /// free; throws std::logic_error otherwise.
  void connect(iba::NodeId a, iba::PortIndex port_a, iba::NodeId b,
               iba::PortIndex port_b, iba::Link link = {});

  std::size_t node_count() const noexcept { return nodes_.size(); }
  const Node& node(iba::NodeId id) const { return nodes_.at(id); }
  NodeKind kind(iba::NodeId id) const { return nodes_.at(id).kind; }
  bool is_switch(iba::NodeId id) const {
    return kind(id) == NodeKind::kSwitch;
  }

  unsigned port_count(iba::NodeId id) const {
    return static_cast<unsigned>(nodes_.at(id).peers.size());
  }

  std::optional<PortRef> peer(iba::NodeId id, iba::PortIndex port) const {
    return nodes_.at(id).peers.at(port);
  }

  const iba::Link& link(iba::NodeId id, iba::PortIndex port) const {
    return nodes_.at(id).links.at(port);
  }

  /// All switch node ids, in id order (likewise hosts).
  std::vector<iba::NodeId> switches() const;
  std::vector<iba::NodeId> hosts() const;

  /// The switch a host hangs off, with the switch-side port.
  PortRef host_uplink(iba::NodeId host) const;

  /// Number of unwired ports on a node.
  unsigned free_ports(iba::NodeId id) const;

  /// True when every node can reach every other over wired links.
  bool connected() const;

  void set_topology_hint(TopologyHint hint) { hint_ = std::move(hint); }
  const TopologyHint& topology_hint() const noexcept { return hint_; }

 private:
  std::vector<Node> nodes_;
  TopologyHint hint_;
};

}  // namespace ibarb::network
