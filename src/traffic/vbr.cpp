#include "traffic/vbr.hpp"

#include <cassert>

#include "traffic/cbr.hpp"

namespace ibarb::traffic {

sim::FlowSpec make_vbr_flow(iba::NodeId src_host, iba::NodeId dst_host,
                            iba::ServiceLevel sl, std::uint32_t payload_bytes,
                            double wire_mbps, iba::Cycle deadline,
                            std::uint64_t seed, double on_fraction,
                            double burst_mean_packets) {
  assert(on_fraction > 0.0 && on_fraction <= 1.0);
  assert(burst_mean_packets >= 1.0);
  sim::FlowSpec spec =
      make_cbr_flow(src_host, dst_host, sl, payload_bytes, wire_mbps,
                    deadline, seed);
  spec.kind = sim::GeneratorKind::kOnOffVbr;
  spec.on_fraction = on_fraction;
  spec.burst_mean_packets = burst_mean_packets;
  return spec;
}

}  // namespace ibarb::traffic
