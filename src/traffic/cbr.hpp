// CBR flow construction (the paper's traffic model: constant-bit-rate
// connections with a fixed packet size, rate drawn from the SL's range).
#pragma once

#include <cstdint>

#include "iba/packet.hpp"
#include "iba/types.hpp"
#include "sim/host.hpp"

namespace ibarb::traffic {

/// Inter-packet interval (cycles) for a stream of `wire_bytes`-sized packets
/// at `wire_mbps` mean wire bandwidth. At full 1x rate (2000 Mbps) the
/// interval equals the packet's serialization time.
iba::Cycle interval_for_rate(std::uint32_t wire_bytes, double wire_mbps);

/// Wire-level bandwidth for a payload-level rate with this packet size.
double wire_rate_for_payload_rate(double payload_mbps,
                                  std::uint32_t payload_bytes);

/// A CBR FlowSpec: fixed `payload_bytes` packets at `wire_mbps` (wire level).
/// `oversend_factor` > 1 makes the source exceed its reservation — the
/// misbehaving-source experiments use it; 1.0 is a compliant source.
sim::FlowSpec make_cbr_flow(iba::NodeId src_host, iba::NodeId dst_host,
                            iba::ServiceLevel sl, std::uint32_t payload_bytes,
                            double wire_mbps, iba::Cycle deadline,
                            std::uint64_t seed,
                            double oversend_factor = 1.0);

}  // namespace ibarb::traffic
