#include "traffic/cbr.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ibarb::traffic {

iba::Cycle interval_for_rate(std::uint32_t wire_bytes, double wire_mbps) {
  if (wire_mbps <= 0.0) throw std::invalid_argument("rate must be positive");
  const double cycles =
      static_cast<double>(wire_bytes) * iba::kBaseLinkMbps / wire_mbps;
  return static_cast<iba::Cycle>(std::llround(std::max(cycles, 1.0)));
}

double wire_rate_for_payload_rate(double payload_mbps,
                                  std::uint32_t payload_bytes) {
  assert(payload_bytes > 0);
  return payload_mbps *
         static_cast<double>(payload_bytes + iba::kPacketOverheadBytes) /
         static_cast<double>(payload_bytes);
}

sim::FlowSpec make_cbr_flow(iba::NodeId src_host, iba::NodeId dst_host,
                            iba::ServiceLevel sl, std::uint32_t payload_bytes,
                            double wire_mbps, iba::Cycle deadline,
                            std::uint64_t seed, double oversend_factor) {
  assert(oversend_factor > 0.0);
  sim::FlowSpec spec;
  spec.src_host = src_host;
  spec.dst_host = dst_host;
  spec.sl = sl;
  spec.payload_bytes = payload_bytes;
  spec.interval = interval_for_rate(payload_bytes + iba::kPacketOverheadBytes,
                                    wire_mbps * oversend_factor);
  spec.kind = sim::GeneratorKind::kCbr;
  spec.deadline = deadline;
  spec.qos = true;
  spec.seed = seed;
  return spec;
}

}  // namespace ibarb::traffic
