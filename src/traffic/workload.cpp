#include "traffic/workload.hpp"

#include <algorithm>
#include <cassert>

#include "traffic/besteffort.hpp"
#include "traffic/cbr.hpp"
#include "traffic/vbr.hpp"
#include "util/rng.hpp"

namespace ibarb::traffic {

Workload build_paper_workload(const network::FabricGraph& graph,
                              const network::Routes& routes,
                              qos::AdmissionControl& admission,
                              sim::Simulator& sim,
                              const WorkloadConfig& cfg) {
  (void)routes;  // kept in the API: future workloads may be path-aware
  util::Xoshiro256 rng(cfg.seed);
  const auto hosts = graph.hosts();
  assert(hosts.size() >= 2);
  const auto payload = iba::mtu_bytes(cfg.mtu);

  // QoS SLs offered round-robin until each has failed `give_up_after` times
  // in a row ("we have already made many attempts for each SL", §4.3).
  std::vector<const qos::SlProfile*> qos_sls;
  for (const auto& p : admission.catalogue())
    if (p.max_distance != 0) qos_sls.push_back(&p);

  Workload result;
  std::vector<unsigned> streak(qos_sls.size(), 0);
  unsigned exhausted = 0;
  std::size_t turn = 0;
  while (exhausted < qos_sls.size() &&
         result.connections.size() < cfg.max_connections) {
    const std::size_t k = turn++ % qos_sls.size();
    if (streak[k] >= cfg.give_up_after) continue;
    const qos::SlProfile& profile = *qos_sls[k];

    const auto src = hosts[rng.below(hosts.size())];
    auto dst = hosts[rng.below(hosts.size())];
    while (dst == src) dst = hosts[rng.below(hosts.size())];

    const double payload_mbps =
        rng.uniform(profile.min_mbps, profile.max_mbps);
    const double wire_mbps =
        wire_rate_for_payload_rate(payload_mbps, payload);

    qos::ConnectionRequest req;
    req.src_host = src;
    req.dst_host = dst;
    req.sl = profile.sl;
    req.max_distance = profile.max_distance;
    req.wire_mbps = wire_mbps;

    ++result.offered;
    const auto id = admission.request(req);
    if (!id) {
      if (++streak[k] >= cfg.give_up_after) ++exhausted;
      continue;
    }
    streak[k] = 0;

    const auto& conn = admission.connection(*id);
    const double oversend =
        (cfg.oversend_sl_mask >> profile.sl) & 1 ? cfg.oversend_factor : 1.0;
    auto spec =
        cfg.vbr ? make_vbr_flow(src, dst, profile.sl, payload, wire_mbps,
                                conn.deadline, rng.next(),
                                cfg.vbr_on_fraction,
                                cfg.vbr_burst_mean_packets)
                : make_cbr_flow(src, dst, profile.sl, payload, wire_mbps,
                                conn.deadline, rng.next(), oversend);
    if (cfg.randomize_start)
      spec.start_offset = rng.below(spec.interval);
    const auto flow = sim.add_flow(spec);

    EstablishedConnection ec;
    ec.id = *id;
    ec.flow = flow;
    ec.sl = profile.sl;
    ec.payload_mbps = payload_mbps;
    ec.wire_mbps = wire_mbps;
    ec.deadline = conn.deadline;
    ec.stages = static_cast<unsigned>(conn.hops.size());
    result.connections.push_back(ec);
    ++result.accepted;
    result.reserved_wire_mbps += wire_mbps;
  }

  // Best-effort background: one Poisson flow per host and BE-family SL,
  // splitting the configured load PBE:BE:CH = 2:2:1.
  if (cfg.besteffort_load > 0.0) {
    struct BeShare {
      qos::TrafficCategory category;
      double share;
    };
    const BeShare shares[] = {{qos::TrafficCategory::kPbe, 0.4},
                              {qos::TrafficCategory::kBe, 0.4},
                              {qos::TrafficCategory::kCh, 0.2}};
    for (const auto host : hosts) {
      for (const auto& [category, share] : shares) {
        const qos::SlProfile* profile = nullptr;
        for (const auto& p : admission.catalogue())
          if (p.category == category) profile = &p;
        if (profile == nullptr) continue;
        auto dst = hosts[rng.below(hosts.size())];
        while (dst == host) dst = hosts[rng.below(hosts.size())];
        const double mbps = cfg.besteffort_load * share * iba::kBaseLinkMbps;
        auto spec = make_besteffort_flow(host, dst, profile->sl, payload,
                                         mbps, rng.next());
        if (cfg.randomize_start)
          spec.start_offset = rng.below(spec.interval);
        sim.add_flow(spec);
      }
    }
  }
  return result;
}

}  // namespace ibarb::traffic
