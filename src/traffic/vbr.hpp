// VBR (on/off) flow construction — the extension evaluated in the authors'
// companion work (Alfaro et al., CCECE'02): bursty sources whose long-run
// mean matches the reservation but whose instantaneous rate peaks at
// mean / on_fraction.
#pragma once

#include <cstdint>

#include "iba/types.hpp"
#include "sim/host.hpp"

namespace ibarb::traffic {

sim::FlowSpec make_vbr_flow(iba::NodeId src_host, iba::NodeId dst_host,
                            iba::ServiceLevel sl, std::uint32_t payload_bytes,
                            double wire_mbps, iba::Cycle deadline,
                            std::uint64_t seed, double on_fraction = 0.25,
                            double burst_mean_packets = 16.0);

}  // namespace ibarb::traffic
