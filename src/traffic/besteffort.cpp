#include "traffic/besteffort.hpp"

#include "traffic/cbr.hpp"

namespace ibarb::traffic {

sim::FlowSpec make_besteffort_flow(iba::NodeId src_host, iba::NodeId dst_host,
                                   iba::ServiceLevel sl,
                                   std::uint32_t payload_bytes,
                                   double wire_mbps, std::uint64_t seed) {
  sim::FlowSpec spec;
  spec.src_host = src_host;
  spec.dst_host = dst_host;
  spec.sl = sl;
  spec.payload_bytes = payload_bytes;
  spec.interval = interval_for_rate(payload_bytes + iba::kPacketOverheadBytes,
                                    wire_mbps);
  spec.kind = sim::GeneratorKind::kPoisson;
  spec.deadline = 0;   // no guarantee
  spec.qos = false;
  spec.seed = seed;
  return spec;
}

}  // namespace ibarb::traffic
