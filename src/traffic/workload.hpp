// The paper's evaluation workload (§4.2): CBR connections drawn from the
// Table-1 SL catalogue are offered between random host pairs, SL by SL,
// until no more fit; accepted connections become simulator flows. Optional
// Poisson best-effort background exercises the low-priority table.
#pragma once

#include <cstdint>
#include <vector>

#include "iba/packet.hpp"
#include "network/graph.hpp"
#include "network/routing.hpp"
#include "qos/admission.hpp"
#include "sim/simulator.hpp"

namespace ibarb::traffic {

struct WorkloadConfig {
  iba::Mtu mtu = iba::Mtu::kMtu256;  ///< "Small" packets; kMtu4096 = large.
  std::uint64_t seed = 7;
  /// An SL stops being offered after this many consecutive rejections.
  /// Attempts are cheap (table bookkeeping only), so the default probes
  /// many random host pairs before declaring an SL saturated — this is what
  /// pushes the network into the paper's quasi-fully-loaded regime.
  unsigned give_up_after = 250;
  unsigned max_connections = 1u << 20;
  /// Per-host Poisson best-effort load, as a fraction of the 1x link, split
  /// across the PBE/BE/CH SLs (0 disables background traffic).
  double besteffort_load = 0.10;
  /// Sources start at a random offset within one interval (desynchronizes
  /// the CBR clocks as independent applications would be).
  bool randomize_start = true;
  /// Sources that send `oversend_factor` times their reservation. Applied
  /// to connections whose SL bit is set in `oversend_sl_mask`
  /// (misbehaving-source experiments). 0 = everybody compliant.
  double oversend_factor = 1.0;
  std::uint16_t oversend_sl_mask = 0;
  /// When true, QoS connections generate on/off VBR traffic instead of CBR
  /// (same mean rate; peak = mean / vbr_on_fraction) — the scenario of the
  /// authors' companion VBR evaluation (CCECE'02).
  bool vbr = false;
  double vbr_on_fraction = 0.25;
  double vbr_burst_mean_packets = 16.0;
};

struct EstablishedConnection {
  qos::ConnectionId id = 0;
  std::uint32_t flow = 0;  ///< Simulator flow / metrics index.
  iba::ServiceLevel sl = 0;
  double payload_mbps = 0.0;
  double wire_mbps = 0.0;
  iba::Cycle deadline = 0;
  unsigned stages = 0;     ///< Arbitration stages (path port count).
};

struct Workload {
  std::vector<EstablishedConnection> connections;
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  double reserved_wire_mbps = 0.0;  ///< Sum over accepted connections.
};

/// Establishes connections through `admission` and registers the matching
/// flows in `sim`. Call admission.program(sim) afterwards (the caller may
/// first want to adjust tables further).
Workload build_paper_workload(const network::FabricGraph& graph,
                              const network::Routes& routes,
                              qos::AdmissionControl& admission,
                              sim::Simulator& sim,
                              const WorkloadConfig& cfg);

}  // namespace ibarb::traffic
