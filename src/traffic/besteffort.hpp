// Best-effort background traffic: Poisson arrivals on the BE-family SLs,
// served from the low-priority table. The paper leaves 20 % of every link
// unreserved for these classes; benches offer a configurable fraction of it.
#pragma once

#include <cstdint>

#include "iba/types.hpp"
#include "sim/host.hpp"

namespace ibarb::traffic {

sim::FlowSpec make_besteffort_flow(iba::NodeId src_host, iba::NodeId dst_host,
                                   iba::ServiceLevel sl,
                                   std::uint32_t payload_bytes,
                                   double wire_mbps, std::uint64_t seed);

}  // namespace ibarb::traffic
