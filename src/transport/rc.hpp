// Reliable Connection transport (IBA 1.0 ch. 9, simplified but faithful in
// behaviour): the endnode substrate the paper presumes — "for supporting the
// usual QoS requirements applications must use reliable connections".
//
// One RcSender/RcReceiver pair models a queue pair's data path:
//  * messages are segmented into MTU-sized packets carrying consecutive
//    24-bit PSNs (serial arithmetic, wrap-safe);
//  * the receiver delivers strictly in order, acknowledges cumulatively,
//    detects duplicates (re-acks them) and answers out-of-order arrivals
//    with a NAK carrying the expected PSN;
//  * the sender keeps a bounded in-flight window, retransmits go-back-N on
//    NAK or on retransmission timeout, and reports per-message completions
//    once every packet of the message is acknowledged.
//
// The classes are pure state machines (no clock, no I/O): the caller — a
// simulator host, a test, or a fuzz harness — moves packets and time.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "iba/packet.hpp"
#include "iba/types.hpp"

namespace ibarb::transport {

/// 24-bit packet sequence numbers with serial (wrap-around) comparison.
inline constexpr std::uint32_t kPsnMask = 0x00FFFFFF;

constexpr std::uint32_t psn_add(std::uint32_t psn, std::uint32_t n) {
  return (psn + n) & kPsnMask;
}

/// a < b in serial arithmetic (window < 2^23 apart).
constexpr bool psn_before(std::uint32_t a, std::uint32_t b) {
  return ((b - a) & kPsnMask) != 0 && ((b - a) & kPsnMask) < (1u << 23);
}

struct RcConfig {
  std::uint32_t mtu_payload = 256;        ///< Path MTU (payload bytes).
  std::uint32_t window_packets = 64;      ///< Max unacknowledged packets.
  iba::Cycle retransmit_timeout = 200000; ///< Base cycles before go-back-N.
  unsigned max_retries = 7;               ///< Then the QP enters error state.
  /// Capped exponential backoff: after k consecutive timeouts the next
  /// retransmission waits retransmit_timeout << min(k, backoff_shift_cap).
  unsigned backoff_shift_cap = 5;
};

class RcSender {
 public:
  explicit RcSender(RcConfig cfg, std::uint32_t initial_psn = 0);

  /// Posts a message of `bytes` to the send queue; returns its id.
  std::uint64_t post_send(std::uint32_t bytes);

  struct OutPacket {
    std::uint32_t psn = 0;
    std::uint32_t payload_bytes = 0;
    bool first = false;                 ///< First packet of its message.
    bool last = false;                  ///< Last packet of its message.
    std::uint64_t message = 0;
    bool retransmission = false;
  };

  /// Next packet eligible for the wire at time `now` (retransmissions take
  /// precedence). std::nullopt when the window is closed or idle.
  std::optional<OutPacket> next_packet(iba::Cycle now);

  /// Cumulative acknowledgement: everything up to and including `psn`.
  void on_ack(std::uint32_t psn, iba::Cycle now);

  /// NAK (PSN sequence error): the receiver expects `expected_psn`; the
  /// sender rewinds and resends from there (go-back-N).
  void on_nak(std::uint32_t expected_psn, iba::Cycle now);

  /// Drives the retransmission timer; call periodically with the clock.
  void on_timer(iba::Cycle now);

  /// Current timeout under the capped exponential backoff schedule: grows
  /// with each consecutive timeout, resets on forward progress (ACK/NAK).
  iba::Cycle current_timeout() const noexcept;

  /// Messages whose last packet has been acknowledged since the last call.
  std::vector<std::uint64_t> drain_completions();

  bool failed() const noexcept { return failed_; }
  bool idle() const noexcept;  ///< Nothing queued or in flight.
  std::uint32_t packets_in_flight() const noexcept;

  struct Stats {
    std::uint64_t packets_sent = 0;
    std::uint64_t retransmitted_packets = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t naks = 0;
    std::uint64_t messages_completed = 0;
  };
  const Stats& stats() const noexcept { return stats_; }

 private:
  struct PendingPacket {
    std::uint32_t psn;
    std::uint32_t payload_bytes;
    bool first;
    bool last;
    std::uint64_t message;
  };

  RcConfig cfg_;
  std::deque<PendingPacket> pending_;  ///< Unacked, in PSN order.
  std::uint32_t next_new_psn_;         ///< PSN for the next fresh packet.
  std::uint32_t resend_cursor_ = 0;    ///< Index into pending_ to send next.
  std::uint32_t retransmit_high_ = 0;  ///< Transmission high-water mark;
                                       ///< sends below it are retransmits.
  std::uint64_t next_message_ = 1;
  iba::Cycle last_progress_ = 0;       ///< For the retransmission timer.
  unsigned retries_ = 0;
  bool failed_ = false;
  std::vector<std::uint64_t> completions_;
  Stats stats_;
};

class RcReceiver {
 public:
  explicit RcReceiver(std::uint32_t initial_psn = 0)
      : expected_psn_(initial_psn & kPsnMask) {}

  struct RxAction {
    bool deliver = false;        ///< Payload accepted, in order.
    bool message_done = false;   ///< This packet completed a message.
    bool send_ack = false;       ///< Respond with ACK(ack_psn).
    std::uint32_t ack_psn = 0;
    bool send_nak = false;       ///< Respond with NAK(expected_psn).
    std::uint32_t nak_psn = 0;
    bool duplicate = false;
  };

  /// Handles one arriving data packet.
  RxAction on_packet(std::uint32_t psn, std::uint32_t payload_bytes,
                     bool last);

  std::uint32_t expected_psn() const noexcept { return expected_psn_; }

  struct Stats {
    std::uint64_t delivered_packets = 0;
    std::uint64_t delivered_bytes = 0;
    std::uint64_t messages = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t out_of_order = 0;
  };
  const Stats& stats() const noexcept { return stats_; }

 private:
  std::uint32_t expected_psn_;
  Stats stats_;
};

}  // namespace ibarb::transport
