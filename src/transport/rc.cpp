#include "transport/rc.hpp"

#include <algorithm>
#include <cassert>

#include "iba/packet.hpp"

namespace ibarb::transport {

RcSender::RcSender(RcConfig cfg, std::uint32_t initial_psn)
    : cfg_(cfg), next_new_psn_(initial_psn & kPsnMask) {
  assert(cfg_.mtu_payload > 0);
  assert(cfg_.window_packets > 0 && cfg_.window_packets < (1u << 22));
}

std::uint64_t RcSender::post_send(std::uint32_t bytes) {
  const auto id = next_message_++;
  const auto chunks = iba::segment_message(
      bytes, static_cast<iba::Mtu>(cfg_.mtu_payload));
  for (std::size_t k = 0; k < chunks.size(); ++k) {
    PendingPacket p;
    p.psn = next_new_psn_;
    next_new_psn_ = psn_add(next_new_psn_, 1);
    p.payload_bytes = chunks[k];
    p.first = k == 0;
    p.last = k + 1 == chunks.size();
    p.message = id;
    pending_.push_back(p);
  }
  return id;
}

std::optional<RcSender::OutPacket> RcSender::next_packet(iba::Cycle now) {
  if (failed_) return std::nullopt;
  if (resend_cursor_ >= pending_.size()) return std::nullopt;
  if (resend_cursor_ >= cfg_.window_packets) return std::nullopt;

  const PendingPacket& p = pending_[resend_cursor_];
  OutPacket out;
  out.psn = p.psn;
  out.payload_bytes = p.payload_bytes;
  out.first = p.first;
  out.last = p.last;
  out.message = p.message;
  // A packet at a cursor position below the high-water mark of previously
  // transmitted data is a retransmission. Track via stats: cursor resets on
  // NAK/timeout mark subsequent sends as retransmissions until the cursor
  // passes the old mark again.
  out.retransmission = resend_cursor_ < retransmit_high_;
  ++resend_cursor_;
  ++stats_.packets_sent;
  if (out.retransmission) ++stats_.retransmitted_packets;
  if (packets_in_flight() == 1) last_progress_ = now;  // window was empty
  return out;
}

void RcSender::on_ack(std::uint32_t psn, iba::Cycle now) {
  if (failed_) return;
  // Pop every pending packet with PSN <= psn (serial order).
  std::uint32_t popped = 0;
  while (!pending_.empty()) {
    const auto head = pending_.front().psn;
    if (head != psn && !psn_before(head, psn)) break;
    if (pending_.front().last) {
      completions_.push_back(pending_.front().message);
      ++stats_.messages_completed;
    }
    pending_.pop_front();
    ++popped;
  }
  if (popped > 0) {
    resend_cursor_ -= std::min(resend_cursor_, popped);
    retransmit_high_ -= std::min(retransmit_high_, popped);
    retries_ = 0;
    last_progress_ = now;
  }
}

void RcSender::on_nak(std::uint32_t expected_psn, iba::Cycle now) {
  if (failed_) return;
  ++stats_.naks;
  // Everything before expected_psn is implicitly acknowledged.
  if (!pending_.empty() && psn_before(pending_.front().psn, expected_psn))
    on_ack(psn_add(expected_psn, kPsnMask), now);  // ack expected_psn - 1
  // Go-back-N: resend from the front of the remaining window. A NAK proves
  // the peer is alive, so the backoff schedule restarts from the base value.
  retransmit_high_ = std::max(retransmit_high_, resend_cursor_);
  resend_cursor_ = 0;
  retries_ = 0;
  last_progress_ = now;
}

iba::Cycle RcSender::current_timeout() const noexcept {
  const unsigned shift = std::min(static_cast<unsigned>(retries_),
                                  cfg_.backoff_shift_cap);
  return cfg_.retransmit_timeout << shift;
}

void RcSender::on_timer(iba::Cycle now) {
  if (failed_ || pending_.empty()) return;
  const bool in_flight = resend_cursor_ > 0;
  if (!in_flight) return;
  if (now - last_progress_ < current_timeout()) return;
  ++stats_.timeouts;
  if (++retries_ > cfg_.max_retries) {
    failed_ = true;  // QP error state: retry budget exhausted
    return;
  }
  retransmit_high_ = std::max(retransmit_high_, resend_cursor_);
  resend_cursor_ = 0;
  last_progress_ = now;
}

std::vector<std::uint64_t> RcSender::drain_completions() {
  auto out = std::move(completions_);
  completions_.clear();
  return out;
}

bool RcSender::idle() const noexcept { return pending_.empty(); }

std::uint32_t RcSender::packets_in_flight() const noexcept {
  return resend_cursor_;
}

RcReceiver::RxAction RcReceiver::on_packet(std::uint32_t psn,
                                           std::uint32_t payload_bytes,
                                           bool last) {
  RxAction action;
  psn &= kPsnMask;
  if (psn == expected_psn_) {
    action.deliver = true;
    action.message_done = last;
    expected_psn_ = psn_add(expected_psn_, 1);
    action.send_ack = true;
    action.ack_psn = psn;
    ++stats_.delivered_packets;
    stats_.delivered_bytes += payload_bytes;
    if (last) ++stats_.messages;
    return action;
  }
  if (psn_before(psn, expected_psn_)) {
    // Duplicate of something already delivered: re-ack so the sender can
    // move its window (its ACK may have been lost).
    action.duplicate = true;
    action.send_ack = true;
    action.ack_psn = psn_add(expected_psn_, kPsnMask);  // expected - 1
    ++stats_.duplicates;
    return action;
  }
  // Gap: ask for what we actually need.
  action.send_nak = true;
  action.nak_psn = expected_psn_;
  ++stats_.out_of_order;
  return action;
}

}  // namespace ibarb::transport
