// Defragmentation of the high-priority table (paper §3.3, companion TR [1]).
//
// The paper's description — "it puts together free small sets to form a
// larger free set" — is implemented here through the buddy-space view (see
// entry_set.hpp): every spaced sequence E_{i,j} is an aligned power-of-two
// block in bit-reversed index space. Compaction re-places all live blocks
// left-to-right in order of decreasing size; because each size is a power of
// two and sizes are non-increasing, every placement lands aligned and the
// occupied region becomes one contiguous prefix. Consequently a request for
// 64/d entries succeeds afterwards IFF at least 64/d entries are free —
// exactly the optimality property the paper claims for the pair
// (fill algorithm, defragmenter). The property tests verify this
// exhaustively against randomized allocate/release traces.
#pragma once

namespace ibarb::arbtable {

class TableManager;

/// Compacts all live spaced sequences of `manager`. Returns the number of
/// sequences that changed position. Sequences allocated by the kScattered
/// baseline (distance 0) are left untouched — the baseline deliberately has
/// no structure to restore.
unsigned defragment_sequences(TableManager& manager);

}  // namespace ibarb::arbtable
