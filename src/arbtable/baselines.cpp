#include "arbtable/baselines.hpp"

#include <cassert>
#include <numeric>

namespace ibarb::arbtable {

namespace {

constexpr unsigned kDistances[] = {2, 4, 8, 16, 32, 64};

unsigned draw_distance(util::Xoshiro256& rng,
                       const std::vector<double>& mix) {
  assert(mix.size() == std::size(kDistances));
  const double total = std::accumulate(mix.begin(), mix.end(), 0.0);
  double x = rng.uniform(0.0, total);
  for (std::size_t i = 0; i < mix.size(); ++i) {
    x -= mix[i];
    if (x <= 0.0) return kDistances[i];
  }
  return kDistances[std::size(kDistances) - 1];
}

struct LiveConnection {
  SeqHandle handle;
  Requirement req;
  double mbps;
};

}  // namespace

AcceptanceResult run_acceptance_experiment(FillPolicy policy, bool defrag,
                                           const AcceptanceWorkload& workload) {
  TableManager::Config cfg;
  cfg.link_data_mbps = workload.link_mbps;
  cfg.reservable_fraction = workload.reservable_fraction;
  cfg.policy = policy;
  cfg.defrag_on_release = defrag;
  cfg.seed = workload.seed ^ 0x5eedface;
  TableManager manager(cfg);

  // The arrival/departure trace is produced by a dedicated RNG so every
  // policy sees exactly the same offered load.
  util::Xoshiro256 trace(workload.seed);

  AcceptanceResult result;
  result.policy = policy;
  result.defrag = defrag;

  std::vector<LiveConnection> live;
  for (unsigned n = 0; n < workload.requests; ++n) {
    if (!live.empty() && trace.chance(workload.departure_probability)) {
      const auto idx = trace.below(live.size());
      const LiveConnection gone = live[idx];
      live[idx] = live.back();
      live.pop_back();
      manager.release(gone.handle, gone.req, gone.mbps);
    }

    const unsigned distance = draw_distance(trace, workload.distance_mix);
    const double mbps = trace.uniform(workload.min_mbps, workload.max_mbps);
    const auto req =
        compute_requirement(mbps, workload.link_mbps, distance);
    assert(req.has_value());
    // One VL per distance class, mirroring the paper's SL→VL assignment.
    const auto vl = static_cast<iba::VirtualLane>(log2_pow2(distance));

    ++result.offered;
    const unsigned needed = req->entries;
    const bool enough_bandwidth =
        manager.reserved_mbps() + mbps <= manager.reservable_mbps();
    const unsigned free_before = manager.free_entries();

    if (const auto handle = manager.allocate(vl, *req, mbps)) {
      ++result.accepted;
      live.push_back(LiveConnection{*handle, *req, mbps});
    } else if (!enough_bandwidth) {
      ++result.rejected_bandwidth;
    } else {
      ++result.rejected_entries;
      // Sharing could also have absorbed it, so "free entries were
      // sufficient" is a conservative lower bound on avoidability.
      if (free_before >= needed) ++result.avoidable_rejections;
    }
  }
  result.defrag_moves = manager.stats().defrag_moves;
  return result;
}

}  // namespace ibarb::arbtable
