// Bit-reversal permutation: the inspection order of candidate entry sets in
// the paper's filling algorithm (§3.3).
//
// For a request of distance d = 2^i, the algorithm tries offsets
// j = rev_i(0), rev_i(1), ..., rev_i(d-1), where rev_i reverses the low i
// bits. This fills even offsets before odd ones at every scale, which is
// precisely what keeps free entries usable by the most restrictive
// (distance-2) future request.
#pragma once

#include <cassert>
#include <cstdint>

namespace ibarb::arbtable {

/// Reverses the low `bits` bits of `value` (value < 2^bits).
constexpr std::uint32_t reverse_bits(std::uint32_t value,
                                     unsigned bits) noexcept {
  std::uint32_t out = 0;
  for (unsigned b = 0; b < bits; ++b) {
    out = (out << 1) | (value & 1u);
    value >>= 1;
  }
  return out;
}

/// True when v is a power of two (and nonzero).
constexpr bool is_pow2(unsigned v) noexcept { return v && (v & (v - 1)) == 0; }

/// log2 of a power of two.
constexpr unsigned log2_pow2(unsigned v) noexcept {
  assert(is_pow2(v));
  unsigned i = 0;
  while (v >>= 1) ++i;
  return i;
}

/// Largest power of two <= v (v >= 1). The paper rounds every requested
/// distance *down* to the closest lower power of two so that the arithmetic
/// progressions tile the 64-entry table symmetrically.
constexpr unsigned floor_pow2(unsigned v) noexcept {
  assert(v >= 1);
  unsigned p = 1;
  while (p * 2 <= v) p *= 2;
  return p;
}

/// Smallest power of two >= v (v >= 1).
constexpr unsigned ceil_pow2(unsigned v) noexcept {
  assert(v >= 1);
  unsigned p = 1;
  while (p < v) p *= 2;
  return p;
}

}  // namespace ibarb::arbtable
