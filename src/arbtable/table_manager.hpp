// Per-output-port manager of the VLArbitrationTable: sequence allocation,
// sharing, release and defragmentation (paper §3.2–3.3).
//
// Connections of the same SL (hence same VL and same distance) share an
// already-allocated sequence, accumulating per-entry weight up to 255, so
// admission is bounded by bandwidth rather than by the 64 entries. When a
// sequence's accumulated weight drops to zero its entries are freed and the
// defragmenter restores the invariant the filling algorithm relies on.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "arbtable/fill_algorithm.hpp"
#include "arbtable/requirements.hpp"
#include "iba/vl_arbitration.hpp"
#include "util/binary.hpp"
#include "util/rng.hpp"

namespace ibarb::arbtable {

/// Handle to a live sequence inside one TableManager.
using SeqHandle = std::uint32_t;

struct Sequence {
  iba::VirtualLane vl = 0;
  unsigned distance = 0;                 ///< Power of two; 0 for scattered.
  std::vector<std::uint8_t> positions;   ///< Table slots, ascending.
  unsigned weight_per_entry = 0;         ///< Accumulated across sharers.
  unsigned connections = 0;              ///< Sharing count.
  double reserved_mbps = 0.0;            ///< Accumulated bandwidth.
  bool live = false;
};

class TableManager {
 public:
  struct Config {
    double link_data_mbps = iba::kBaseLinkMbps;
    /// Fraction of the link reservable by QoS traffic; the paper keeps 20 %
    /// for best-effort/challenged traffic served from the low table.
    double reservable_fraction = 0.8;
    FillPolicy policy = FillPolicy::kBitReversal;
    bool defrag_on_release = true;
    std::uint64_t seed = 1;
  };

  struct Stats {
    std::uint64_t allocations = 0;     ///< New sequences created.
    std::uint64_t shares = 0;          ///< Requests joined to a live sequence.
    std::uint64_t reject_bandwidth = 0;
    std::uint64_t reject_entries = 0;
    std::uint64_t releases = 0;
    std::uint64_t defrag_runs = 0;
    std::uint64_t defrag_moves = 0;    ///< Sequences relocated by defrag.
  };

  explicit TableManager(Config cfg);

  /// Installs the static low-priority table used for best-effort traffic:
  /// one entry per (VL, weight) pair, round-robin.
  void configure_low_priority(
      std::span<const std::pair<iba::VirtualLane, std::uint8_t>> entries);

  void set_limit_of_high_priority(std::uint8_t limit) {
    table_.set_limit_of_high_priority(limit);
  }

  /// Admits one connection's requirement onto `vl`. Tries sharing first,
  /// then a fresh sequence under the configured fill policy. Returns the
  /// sequence handle, or std::nullopt (rejection) when either the bandwidth
  /// cap or the table would be exceeded.
  std::optional<SeqHandle> allocate(iba::VirtualLane vl, const Requirement& req,
                                    double mbps);

  /// Releases one connection previously admitted with exactly (req, mbps).
  void release(SeqHandle handle, const Requirement& req, double mbps);

  /// Legacy-scheme support (the prior-work configuration the paper argues
  /// against): dedicated-bandwidth connections are given weight in the
  /// *low-priority* table — accumulated per VL and spread over as many
  /// entries of up to 255 as needed — where nothing shields them from
  /// misbehaving high-priority sources. Returns false when the low table
  /// runs out of entries or the bandwidth cap is hit.
  bool add_low_weight(iba::VirtualLane vl, unsigned weight, double mbps);
  void remove_low_weight(iba::VirtualLane vl, unsigned weight, double mbps);

  const iba::VlArbitrationTable& table() const noexcept { return table_; }
  const Config& config() const noexcept { return cfg_; }
  const Stats& stats() const noexcept { return stats_; }

  double reserved_mbps() const noexcept { return reserved_mbps_; }
  double reservable_mbps() const noexcept {
    return cfg_.link_data_mbps * cfg_.reservable_fraction;
  }
  unsigned free_entries() const;
  unsigned live_sequences() const;

  const Sequence& sequence(SeqHandle handle) const {
    return sequences_.at(handle);
  }

  /// Audits internal consistency: the high table's weights must equal the
  /// sum over live sequences, positions must not overlap, per-entry weights
  /// must respect the 255 cap, spaced sequences must match their E_{i,j}.
  /// On failure `why` (if given) describes the first violation.
  bool check_invariants(std::string* why = nullptr) const;

  /// Theorem-1 operational audit (bit-reversal + defrag-on-release configs
  /// only; trivially true otherwise): for every distance class d, a free set
  /// must exist *iff* at least 64/d entries are free. This is the
  /// no-false-reject property the churn service re-validates after every
  /// batch and every snapshot restore.
  bool audit_free_set_optimality(std::string* why = nullptr) const;

  /// Dry-run of allocate(): would an admission with exactly (vl, req, mbps)
  /// succeed right now? Pure — consumes no RNG state, changes nothing.
  /// Used by the churn engine's false-reject auditor: a guaranteed request
  /// refused while every hop reports can_admit() is a Theorem-1 violation.
  bool can_admit(iba::VirtualLane vl, const Requirement& req,
                 double mbps) const;

  /// Runs the defragmenter immediately (normally triggered by release).
  void defragment();

  /// Serializes the complete mutable state — sequences (including dead
  /// handle slots), the free-handle stack, dynamic low-table weights,
  /// bandwidth accounting, stats and the RNG stream — plus a config
  /// fingerprint. The table itself is not written: load_state() rebuilds it
  /// from the sequences, and check_invariants() proves the rebuild exact.
  void save_state(util::BinWriter& w) const;

  /// Restores state saved by save_state() into a manager constructed with
  /// the same Config (and configure_low_priority). Throws std::runtime_error
  /// on a config-fingerprint mismatch or malformed payload.
  void load_state(util::BinReader& r);

 private:
  friend unsigned defragment_sequences(TableManager& manager);

  std::optional<SeqHandle> try_share(iba::VirtualLane vl,
                                     const Requirement& req, double mbps);
  SeqHandle create_sequence(iba::VirtualLane vl, unsigned distance,
                            std::vector<std::uint8_t> positions,
                            const Requirement& req, double mbps);
  void write_sequence(const Sequence& seq);
  void erase_sequence(Sequence& seq);

  /// Re-renders the low table from the static best-effort entries plus the
  /// dynamic per-VL weights. Returns false (leaving the table unchanged)
  /// when more than 64 entries would be needed.
  bool render_low_table();

  Config cfg_;
  util::Xoshiro256 rng_;
  iba::VlArbitrationTable table_;
  std::vector<std::pair<iba::VirtualLane, std::uint8_t>> low_static_;
  std::array<unsigned, iba::kMaxVirtualLanes> low_dynamic_weight_{};
  std::vector<Sequence> sequences_;
  std::vector<SeqHandle> free_handles_;
  double reserved_mbps_ = 0.0;      ///< High + low reservations together.
  double low_reserved_mbps_ = 0.0;  ///< Legacy low-table share of the above.
  Stats stats_;
};

}  // namespace ibarb::arbtable
