// Translation of a connection's QoS request into arbitration-table terms
// (paper §3.1–3.2).
//
//  * A mean bandwidth B on a link of data rate L becomes a weight
//    w = ceil(B/L × 16320) in 64-byte units — 16320 = 64 entries × 255 is the
//    weight moved by one full round of a completely occupied table.
//  * A maximum distance d between consecutive entries (derived from the
//    latency deadline, see qos/deadline.hpp) requires 64/d entries.
//  * The number of entries needed is max(64/d, ceil(w/255)), rounded up to a
//    power of two so the sequence tiles the table; the effective distance is
//    64/entries (never larger than requested — latency only improves).
#pragma once

#include <cstdint>
#include <optional>

#include "iba/types.hpp"

namespace ibarb::arbtable {

struct Requirement {
  unsigned distance = 0;          ///< Effective distance (power of two).
  unsigned entries = 0;           ///< 64 / distance.
  unsigned weight_per_entry = 0;  ///< Added to each entry of the sequence.
  unsigned total_weight = 0;      ///< entries × weight_per_entry.

  friend bool operator==(const Requirement&, const Requirement&) = default;
};

/// Raw weight for a bandwidth share (64-byte units per full table round).
unsigned bandwidth_to_weight(double bandwidth_mbps, double link_data_mbps);

/// Bandwidth share represented by a raw weight (inverse of the above, exact
/// on the continuous relaxation).
double weight_to_bandwidth(unsigned weight, double link_data_mbps);

/// Computes the table requirement. Returns std::nullopt when the request is
/// infeasible on this link (needs more weight than a full table provides).
/// `max_distance` is rounded down to a power of two in [1, 64].
std::optional<Requirement> compute_requirement(double bandwidth_mbps,
                                               double link_data_mbps,
                                               unsigned max_distance);

}  // namespace ibarb::arbtable
