#include "arbtable/entry_set.hpp"

#include <cassert>

namespace ibarb::arbtable {

std::vector<std::uint8_t> EntrySet::positions() const {
  assert(valid());
  std::vector<std::uint8_t> out;
  out.reserve(size());
  for (unsigned p = offset; p < iba::kArbTableEntries; p += distance)
    out.push_back(static_cast<std::uint8_t>(p));
  return out;
}

bool set_is_free(const iba::ArbTable& table, const EntrySet& set) {
  assert(set.valid());
  for (unsigned p = set.offset; p < iba::kArbTableEntries; p += set.distance)
    if (table[p].active()) return false;
  return true;
}

unsigned free_entries(const iba::ArbTable& table) {
  unsigned n = 0;
  for (const auto& e : table)
    if (!e.active()) ++n;
  return n;
}

unsigned max_gap_for_vl(const iba::ArbTable& table, iba::VirtualLane vl) {
  std::vector<unsigned> hits;
  for (unsigned p = 0; p < iba::kArbTableEntries; ++p)
    if (table[p].active() && table[p].vl == vl) hits.push_back(p);
  if (hits.size() <= 1) return iba::kArbTableEntries;
  unsigned max_gap = 0;
  for (std::size_t k = 0; k < hits.size(); ++k) {
    const unsigned next = hits[(k + 1) % hits.size()];
    const unsigned gap = (next + iba::kArbTableEntries - hits[k]) %
                         iba::kArbTableEntries;
    if (gap > max_gap) max_gap = gap;
  }
  return max_gap == 0 ? iba::kArbTableEntries : max_gap;
}

}  // namespace ibarb::arbtable
