#include "arbtable/defrag.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "arbtable/entry_set.hpp"
#include "arbtable/table_manager.hpp"

namespace ibarb::arbtable {

unsigned defragment_sequences(TableManager& manager) {
  auto& sequences = manager.sequences_;
  auto& table = manager.table_;

  // Collect live spaced sequences, largest first; ties broken by current
  // buddy address so already-packed layouts stay untouched (stability keeps
  // the number of live reconfigurations minimal).
  std::vector<SeqHandle> order;
  std::vector<unsigned> scattered_blocks;  // buddy slots pinned by kScattered
  for (SeqHandle h = 0; h < sequences.size(); ++h) {
    const Sequence& s = sequences[h];
    if (!s.live) continue;
    if (s.distance == 0) {
      return 0;  // scattered baseline in play: no defrag defined
    }
    order.push_back(h);
  }
  (void)scattered_blocks;
  std::sort(order.begin(), order.end(), [&](SeqHandle a, SeqHandle b) {
    const Sequence& sa = sequences[a];
    const Sequence& sb = sequences[b];
    if (sa.positions.size() != sb.positions.size())
      return sa.positions.size() > sb.positions.size();
    const EntrySet ea{sa.distance, sa.positions.empty() ? 0u : sa.positions[0]};
    const EntrySet eb{sb.distance, sb.positions.empty() ? 0u : sb.positions[0]};
    return ea.buddy_block_index() < eb.buddy_block_index();
  });

  // Assign target blocks first; apply moves in two phases (clear every
  // mover's old slots, then write every mover's new slots). One-phase
  // relocation would corrupt the table whenever a target region overlaps a
  // later mover's current slots.
  struct Move {
    SeqHandle handle;
    EntrySet target;
  };
  std::vector<Move> moving;
  unsigned cursor = 0;  // next free buddy-space address
  for (const SeqHandle h : order) {
    Sequence& seq = sequences[h];
    const unsigned size = static_cast<unsigned>(seq.positions.size());
    assert(cursor % size == 0 && "decreasing sizes keep the cursor aligned");
    const unsigned new_block = cursor / size;
    cursor += size;

    const EntrySet target = EntrySet::from_buddy_block(seq.distance, new_block);
    const unsigned old_offset = seq.positions.empty() ? 0 : seq.positions[0];
    if (target.offset != old_offset) moving.push_back(Move{h, target});
  }

  for (const auto& mv : moving)
    for (const auto p : sequences[mv.handle].positions)
      table.set_high_entry(p, {});
  for (const auto& mv : moving) {
    Sequence& seq = sequences[mv.handle];
    seq.positions = mv.target.positions();
    for (const auto p : seq.positions)
      table.set_high_entry(p, iba::ArbTableEntry{
          seq.vl, static_cast<std::uint8_t>(seq.weight_per_entry)});
  }
  return static_cast<unsigned>(moving.size());
}

}  // namespace ibarb::arbtable
