#include "arbtable/requirements.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "arbtable/bit_reversal.hpp"

namespace ibarb::arbtable {

unsigned bandwidth_to_weight(double bandwidth_mbps, double link_data_mbps) {
  assert(bandwidth_mbps >= 0.0 && link_data_mbps > 0.0);
  const double share = bandwidth_mbps / link_data_mbps;
  const auto w = static_cast<unsigned>(
      std::ceil(share * static_cast<double>(iba::kFullTableWeight)));
  return std::max(1u, w);  // even a tiny trickle needs one weight unit
}

double weight_to_bandwidth(unsigned weight, double link_data_mbps) {
  return static_cast<double>(weight) /
         static_cast<double>(iba::kFullTableWeight) * link_data_mbps;
}

std::optional<Requirement> compute_requirement(double bandwidth_mbps,
                                               double link_data_mbps,
                                               unsigned max_distance) {
  const unsigned d0 = floor_pow2(std::clamp(max_distance, 1u, 64u));
  const unsigned w = bandwidth_to_weight(bandwidth_mbps, link_data_mbps);
  if (w > iba::kFullTableWeight) return std::nullopt;  // exceeds the link

  const unsigned entries_for_latency = iba::kArbTableEntries / d0;
  const unsigned entries_for_weight =
      (w + iba::kMaxEntryWeight - 1) / iba::kMaxEntryWeight;
  unsigned entries =
      ceil_pow2(std::max(entries_for_latency, entries_for_weight));
  entries = std::min(entries, iba::kArbTableEntries);

  Requirement req;
  req.entries = entries;
  req.distance = iba::kArbTableEntries / entries;
  req.weight_per_entry = (w + entries - 1) / entries;
  assert(req.weight_per_entry <= iba::kMaxEntryWeight);
  req.total_weight = req.weight_per_entry * entries;
  return req;
}

}  // namespace ibarb::arbtable
