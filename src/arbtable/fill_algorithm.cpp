#include "arbtable/fill_algorithm.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace ibarb::arbtable {

const char* to_string(FillPolicy policy) {
  switch (policy) {
    case FillPolicy::kBitReversal: return "bit-reversal";
    case FillPolicy::kSequential: return "sequential";
    case FillPolicy::kRandom: return "random";
    case FillPolicy::kScattered: return "scattered";
  }
  return "?";
}

std::vector<unsigned> scan_order(unsigned distance, FillPolicy policy,
                                 util::Xoshiro256* rng) {
  assert(is_pow2(distance) && distance <= kMaxDistance);
  const unsigned bits = log2_pow2(distance);
  std::vector<unsigned> order(distance);
  switch (policy) {
    case FillPolicy::kBitReversal:
      for (unsigned j = 0; j < distance; ++j)
        order[j] = reverse_bits(j, bits);
      break;
    case FillPolicy::kSequential:
      std::iota(order.begin(), order.end(), 0u);
      break;
    case FillPolicy::kRandom: {
      std::iota(order.begin(), order.end(), 0u);
      assert(rng != nullptr);
      for (unsigned j = distance; j > 1; --j)
        std::swap(order[j - 1], order[rng->below(j)]);
      break;
    }
    case FillPolicy::kScattered:
      order.clear();
      break;
  }
  return order;
}

std::optional<EntrySet> find_free_set(const iba::ArbTable& table,
                                      unsigned distance, FillPolicy policy,
                                      util::Xoshiro256* rng) {
  assert(is_pow2(distance) && distance <= kMaxDistance);
  if (policy == FillPolicy::kScattered) {
    // No spaced structure; the caller should use find_scattered instead.
    return std::nullopt;
  }
  for (const unsigned j : scan_order(distance, policy, rng)) {
    const EntrySet candidate{distance, j};
    if (set_is_free(table, candidate)) return candidate;
  }
  return std::nullopt;
}

std::optional<std::vector<std::uint8_t>> find_scattered(
    const iba::ArbTable& table, unsigned count) {
  std::vector<std::uint8_t> picks;
  picks.reserve(count);
  for (unsigned p = 0; p < iba::kArbTableEntries && picks.size() < count; ++p)
    if (!table[p].active()) picks.push_back(static_cast<std::uint8_t>(p));
  if (picks.size() < count) return std::nullopt;
  return picks;
}

}  // namespace ibarb::arbtable
