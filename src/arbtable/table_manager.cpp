#include "arbtable/table_manager.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "arbtable/defrag.hpp"

namespace ibarb::arbtable {

TableManager::TableManager(Config cfg)
    : cfg_(cfg), rng_(cfg.seed) {
  assert(cfg_.link_data_mbps > 0.0);
  assert(cfg_.reservable_fraction > 0.0 && cfg_.reservable_fraction <= 1.0);
}

void TableManager::configure_low_priority(
    std::span<const std::pair<iba::VirtualLane, std::uint8_t>> entries) {
  low_static_.assign(entries.begin(), entries.end());
  const bool ok = render_low_table();
  assert(ok && "static low-priority config must fit the table");
  (void)ok;
}

bool TableManager::render_low_table() {
  iba::ArbTable fresh{};
  std::size_t slot = 0;
  for (const auto& [vl, weight] : low_static_) {
    if (slot >= fresh.size()) return false;
    fresh[slot++] = iba::ArbTableEntry{vl, weight};
  }
  for (unsigned vl = 0; vl < low_dynamic_weight_.size(); ++vl) {
    unsigned remaining = low_dynamic_weight_[vl];
    while (remaining > 0) {
      if (slot >= fresh.size()) return false;
      const auto chunk =
          static_cast<std::uint8_t>(std::min(remaining, iba::kMaxEntryWeight));
      fresh[slot++] =
          iba::ArbTableEntry{static_cast<iba::VirtualLane>(vl), chunk};
      remaining -= chunk;
    }
  }
  for (unsigned slot_index = 0; slot_index < fresh.size(); ++slot_index)
    table_.set_low_entry(slot_index, fresh[slot_index]);
  return true;
}

std::optional<SeqHandle> TableManager::try_share(iba::VirtualLane vl,
                                                 const Requirement& req,
                                                 double mbps) {
  for (SeqHandle h = 0; h < sequences_.size(); ++h) {
    Sequence& seq = sequences_[h];
    if (!seq.live || seq.vl != vl) continue;
    // Spaced sequences share per distance class; scattered (baseline)
    // sequences share per entry count.
    const bool compatible =
        seq.distance != 0
            ? seq.distance == req.distance
            : seq.positions.size() == req.entries;
    if (!compatible) continue;
    if (seq.weight_per_entry + req.weight_per_entry > iba::kMaxEntryWeight)
      continue;
    seq.weight_per_entry += req.weight_per_entry;
    seq.connections += 1;
    seq.reserved_mbps += mbps;
    write_sequence(seq);
    reserved_mbps_ += mbps;
    ++stats_.shares;
    return h;
  }
  return std::nullopt;
}

SeqHandle TableManager::create_sequence(iba::VirtualLane vl, unsigned distance,
                                        std::vector<std::uint8_t> positions,
                                        const Requirement& req, double mbps) {
  SeqHandle h;
  if (!free_handles_.empty()) {
    h = free_handles_.back();
    free_handles_.pop_back();
  } else {
    h = static_cast<SeqHandle>(sequences_.size());
    sequences_.emplace_back();
  }
  Sequence& seq = sequences_[h];
  seq.vl = vl;
  seq.distance = distance;
  seq.positions = std::move(positions);
  seq.weight_per_entry = req.weight_per_entry;
  seq.connections = 1;
  seq.reserved_mbps = mbps;
  seq.live = true;
  write_sequence(seq);
  reserved_mbps_ += mbps;
  ++stats_.allocations;
  return h;
}

void TableManager::write_sequence(const Sequence& seq) {
  assert(seq.weight_per_entry <= iba::kMaxEntryWeight);
  for (const auto p : seq.positions)
    table_.set_high_entry(p, iba::ArbTableEntry{
        seq.vl, static_cast<std::uint8_t>(seq.weight_per_entry)});
}

void TableManager::erase_sequence(Sequence& seq) {
  for (const auto p : seq.positions) table_.set_high_entry(p, {});
  seq.live = false;
  seq.positions.clear();
}

std::optional<SeqHandle> TableManager::allocate(iba::VirtualLane vl,
                                                const Requirement& req,
                                                double mbps) {
  assert(vl < iba::kManagementVl);
  assert(req.entries > 0 && req.weight_per_entry > 0);
  if (reserved_mbps_ + mbps > reservable_mbps() * (1.0 + 1e-12)) {
    ++stats_.reject_bandwidth;
    return std::nullopt;
  }
  if (const auto shared = try_share(vl, req, mbps)) return shared;

  if (cfg_.policy == FillPolicy::kScattered) {
    if (auto picks = find_scattered(table_.high(), req.entries)) {
      return create_sequence(vl, /*distance=*/0, std::move(*picks), req, mbps);
    }
    ++stats_.reject_entries;
    return std::nullopt;
  }

  if (const auto set =
          find_free_set(table_.high(), req.distance, cfg_.policy, &rng_)) {
    return create_sequence(vl, set->distance, set->positions(), req, mbps);
  }
  ++stats_.reject_entries;
  return std::nullopt;
}

void TableManager::release(SeqHandle handle, const Requirement& req,
                           double mbps) {
  assert(handle < sequences_.size());
  Sequence& seq = sequences_[handle];
  assert(seq.live && seq.connections > 0);
  assert(seq.weight_per_entry >= req.weight_per_entry);
  seq.weight_per_entry -= req.weight_per_entry;
  seq.connections -= 1;
  seq.reserved_mbps -= mbps;
  reserved_mbps_ -= mbps;
  ++stats_.releases;

  if (seq.connections == 0) {
    assert(seq.weight_per_entry == 0);
    erase_sequence(seq);
    free_handles_.push_back(handle);
    if (cfg_.defrag_on_release) defragment();
  } else {
    write_sequence(seq);
  }
}

bool TableManager::add_low_weight(iba::VirtualLane vl, unsigned weight,
                                  double mbps) {
  if (reserved_mbps_ + mbps > reservable_mbps() * (1.0 + 1e-12)) {
    ++stats_.reject_bandwidth;
    return false;
  }
  low_dynamic_weight_[vl] += weight;
  if (!render_low_table()) {
    low_dynamic_weight_[vl] -= weight;
    ++stats_.reject_entries;
    return false;
  }
  reserved_mbps_ += mbps;
  low_reserved_mbps_ += mbps;
  return true;
}

void TableManager::remove_low_weight(iba::VirtualLane vl, unsigned weight,
                                     double mbps) {
  assert(low_dynamic_weight_[vl] >= weight);
  low_dynamic_weight_[vl] -= weight;
  const bool ok = render_low_table();
  assert(ok && "shrinking the low table cannot fail");
  (void)ok;
  reserved_mbps_ -= mbps;
  low_reserved_mbps_ -= mbps;
}

unsigned TableManager::free_entries() const {
  return arbtable::free_entries(table_.high());
}

unsigned TableManager::live_sequences() const {
  unsigned n = 0;
  for (const auto& s : sequences_)
    if (s.live) ++n;
  return n;
}

void TableManager::defragment() {
  ++stats_.defrag_runs;
  stats_.defrag_moves += defragment_sequences(*this);
}

bool TableManager::can_admit(iba::VirtualLane vl, const Requirement& req,
                             double mbps) const {
  if (reserved_mbps_ + mbps > reservable_mbps() * (1.0 + 1e-12)) return false;
  for (const auto& seq : sequences_) {
    if (!seq.live || seq.vl != vl) continue;
    const bool compatible =
        seq.distance != 0
            ? seq.distance == req.distance
            : seq.positions.size() == req.entries;
    if (!compatible) continue;
    if (seq.weight_per_entry + req.weight_per_entry <= iba::kMaxEntryWeight)
      return true;
  }
  if (cfg_.policy == FillPolicy::kScattered)
    return find_scattered(table_.high(), req.entries).has_value();
  // Probe the exact scan allocate() would run, on a copy of the RNG so the
  // dry-run never perturbs the stream (only kRandom consults it).
  util::Xoshiro256 probe = rng_;
  return find_free_set(table_.high(), req.distance, cfg_.policy, &probe)
      .has_value();
}

bool TableManager::audit_free_set_optimality(std::string* why) const {
  if (cfg_.policy != FillPolicy::kBitReversal || !cfg_.defrag_on_release)
    return true;
  const unsigned free = free_entries();
  for (unsigned d = 1; d <= kMaxDistance; d *= 2) {
    const bool found =
        find_free_set(table_.high(), d, cfg_.policy).has_value();
    const bool theorem = free >= iba::kArbTableEntries / d;
    if (found != theorem) {
      if (why != nullptr)
        *why = "Theorem-1 violation at distance " + std::to_string(d) + ": " +
               std::to_string(free) + " entries free but find_free_set " +
               (found ? "succeeded below the bound" : "failed above the bound");
      return false;
    }
  }
  return true;
}

namespace {

/// Guards load_state against a snapshot taken under a different manager
/// configuration (which would silently corrupt bandwidth accounting).
std::uint64_t config_fingerprint(const TableManager::Config& cfg) {
  std::uint64_t h = 0x1BA2B5EEDull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(std::bit_cast<std::uint64_t>(cfg.link_data_mbps));
  mix(std::bit_cast<std::uint64_t>(cfg.reservable_fraction));
  mix(static_cast<std::uint64_t>(cfg.policy));
  mix(cfg.defrag_on_release ? 1 : 0);
  mix(cfg.seed);
  return h;
}

}  // namespace

void TableManager::save_state(util::BinWriter& w) const {
  w.put_u64(config_fingerprint(cfg_));
  for (const auto s : rng_.state()) w.put_u64(s);
  w.put_u64(sequences_.size());
  for (const auto& seq : sequences_) {
    w.put_u8(seq.vl);
    w.put_u32(seq.distance);
    w.put_bytes(seq.positions);
    w.put_u32(seq.weight_per_entry);
    w.put_u32(seq.connections);
    w.put_double(seq.reserved_mbps);
    w.put_bool(seq.live);
  }
  w.put_u64(free_handles_.size());
  for (const auto h : free_handles_) w.put_u32(h);
  w.put_u64(low_dynamic_weight_.size());
  for (const auto lw : low_dynamic_weight_) w.put_u32(lw);
  w.put_double(reserved_mbps_);
  w.put_double(low_reserved_mbps_);
  w.put_u64(stats_.allocations);
  w.put_u64(stats_.shares);
  w.put_u64(stats_.reject_bandwidth);
  w.put_u64(stats_.reject_entries);
  w.put_u64(stats_.releases);
  w.put_u64(stats_.defrag_runs);
  w.put_u64(stats_.defrag_moves);
}

void TableManager::load_state(util::BinReader& r) {
  if (r.get_u64() != config_fingerprint(cfg_))
    throw std::runtime_error(
        "snapshot was taken under a different TableManager config");
  std::array<std::uint64_t, 4> rng_state;
  for (auto& s : rng_state) s = r.get_u64();
  rng_.set_state(rng_state);

  sequences_.assign(r.get_length(), Sequence{});
  for (auto& seq : sequences_) {
    seq.vl = r.get_u8();
    seq.distance = r.get_u32();
    seq.positions = r.get_bytes();
    seq.weight_per_entry = r.get_u32();
    seq.connections = r.get_u32();
    seq.reserved_mbps = r.get_double();
    seq.live = r.get_bool();
  }
  free_handles_.resize(r.get_length());
  for (auto& h : free_handles_) h = r.get_u32();
  if (r.get_u64() != low_dynamic_weight_.size())
    throw std::runtime_error("snapshot low-table weight count mismatch");
  for (auto& lw : low_dynamic_weight_) lw = r.get_u32();
  reserved_mbps_ = r.get_double();
  low_reserved_mbps_ = r.get_double();
  stats_.allocations = r.get_u64();
  stats_.shares = r.get_u64();
  stats_.reject_bandwidth = r.get_u64();
  stats_.reject_entries = r.get_u64();
  stats_.releases = r.get_u64();
  stats_.defrag_runs = r.get_u64();
  stats_.defrag_moves = r.get_u64();

  // Rebuild the tables from the restored bookkeeping: every high slot is
  // cleared then repainted by its owning sequence, and the low table is
  // re-rendered from static + dynamic weights. check_invariants() (run by
  // the restore auditor) proves the rebuild matches the saved world.
  for (unsigned p = 0; p < iba::kArbTableEntries; ++p)
    table_.set_high_entry(p, {});
  for (const auto& seq : sequences_)
    if (seq.live) write_sequence(seq);
  if (!render_low_table())
    throw std::runtime_error("restored low table does not fit");
}

bool TableManager::check_invariants(std::string* why) const {
  const auto fail = [&](std::string msg) {
    if (why) *why = std::move(msg);
    return false;
  };

  iba::ArbTable expected{};
  std::array<bool, iba::kArbTableEntries> used{};
  for (const auto& seq : sequences_) {
    if (!seq.live) continue;
    if (seq.connections == 0) return fail("live sequence with 0 connections");
    if (seq.weight_per_entry == 0 ||
        seq.weight_per_entry > iba::kMaxEntryWeight)
      return fail("sequence weight out of range");
    if (seq.distance != 0) {
      if (!is_pow2(seq.distance) || seq.distance > kMaxDistance)
        return fail("sequence distance not a valid power of two");
      if (seq.positions.size() != iba::kArbTableEntries / seq.distance)
        return fail("sequence entry count mismatch");
      const unsigned offset = seq.positions.empty() ? 0 : seq.positions[0];
      for (std::size_t k = 0; k < seq.positions.size(); ++k)
        if (seq.positions[k] != offset + k * seq.distance)
          return fail("sequence positions not equally spaced");
    }
    for (const auto p : seq.positions) {
      if (p >= iba::kArbTableEntries) return fail("position out of range");
      if (used[p]) return fail("overlapping sequences");
      used[p] = true;
      expected[p] = iba::ArbTableEntry{
          seq.vl, static_cast<std::uint8_t>(seq.weight_per_entry)};
    }
  }
  for (unsigned p = 0; p < iba::kArbTableEntries; ++p)
    if (!(expected[p] == table_.high()[p]))
      return fail("table weight does not match sequence bookkeeping at slot " +
                  std::to_string(p));

  double sum_mbps = low_reserved_mbps_;
  for (const auto& seq : sequences_)
    if (seq.live) sum_mbps += seq.reserved_mbps;
  if (std::abs(sum_mbps - reserved_mbps_) > 1e-6)
    return fail("reserved bandwidth accounting drift");
  if (reserved_mbps_ > reservable_mbps() * (1.0 + 1e-9))
    return fail("reserved bandwidth exceeds the reservable cap");
  return true;
}

}  // namespace ibarb::arbtable
