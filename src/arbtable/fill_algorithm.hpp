// The paper's filling algorithm (§3.3) and the alternative scan orders used
// as ablation baselines.
//
// For a request of distance d = 2^i, candidate sets E_{i,j} are inspected in
// bit-reversal order of j and the first fully free one is taken. The paper's
// key theorem (proved in the companion TR and verified exhaustively by this
// repo's property tests): under this policy — and provided releases are
// followed by defragmentation — a request succeeds *iff* the table has at
// least 64/d free entries.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "arbtable/entry_set.hpp"
#include "iba/vl_arbitration.hpp"
#include "util/rng.hpp"

namespace ibarb::arbtable {

/// Scan-order policy for choosing among the free E_{i,j}.
enum class FillPolicy : std::uint8_t {
  kBitReversal,  ///< The paper's proposal.
  kSequential,   ///< Baseline: j = 0, 1, 2, ... (naive).
  kRandom,       ///< Baseline: random permutation of offsets per request.
  kScattered,    ///< Baseline: first n free entries anywhere — ignores the
                 ///< distance requirement entirely (prior-work strawman;
                 ///< breaks latency guarantees, useful for the ablation).
};

const char* to_string(FillPolicy policy);

/// Offsets of E_{i,j} candidates in the order a policy inspects them.
/// For kScattered the concept does not apply (empty result).
std::vector<unsigned> scan_order(unsigned distance, FillPolicy policy,
                                 util::Xoshiro256* rng = nullptr);

/// Finds the first free set of the given distance under `policy`.
/// `rng` is only consulted by kRandom. Returns std::nullopt when no free set
/// exists (for kScattered: when fewer than 64/distance entries are free).
std::optional<EntrySet> find_free_set(const iba::ArbTable& table,
                                      unsigned distance, FillPolicy policy,
                                      util::Xoshiro256* rng = nullptr);

/// For kScattered: the first `count` free positions in table order.
std::optional<std::vector<std::uint8_t>> find_scattered(
    const iba::ArbTable& table, unsigned count);

}  // namespace ibarb::arbtable
