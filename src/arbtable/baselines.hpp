// Randomized allocate/release driver comparing fill policies — the ablation
// behind bench_fill_ablation (experiment E7).
//
// Requests mimic the paper's SL mix: a maximum distance drawn from
// {2,4,8,16,32,64} and a bandwidth drawn from a per-distance range. Between
// arrivals, live connections may depart. The figure of merit is the
// acceptance ratio, and in particular the number of *avoidable* rejections:
// rejections that happened although enough free entries existed (the paper's
// algorithm, with defragmentation, provably has none).
#pragma once

#include <cstdint>
#include <vector>

#include "arbtable/fill_algorithm.hpp"
#include "arbtable/table_manager.hpp"

namespace ibarb::arbtable {

struct AcceptanceWorkload {
  std::uint64_t seed = 42;
  unsigned requests = 2000;
  /// Probability, per arrival, that one random live connection departs first.
  double departure_probability = 0.45;
  /// Weight of choosing each distance 2,4,8,16,32,64 (uniform by default).
  std::vector<double> distance_mix = {1, 1, 1, 1, 1, 1};
  double min_mbps = 1.0;
  double max_mbps = 32.0;
  double link_mbps = iba::kBaseLinkMbps;
  double reservable_fraction = 0.8;
};

struct AcceptanceResult {
  FillPolicy policy = FillPolicy::kBitReversal;
  bool defrag = false;
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_bandwidth = 0;  ///< Hit the 80 % cap — unavoidable.
  std::uint64_t rejected_entries = 0;    ///< No placeable sequence found.
  /// Rejections where >= 64/d entries were free — fragmentation failures
  /// that the paper's algorithm avoids by construction.
  std::uint64_t avoidable_rejections = 0;
  std::uint64_t defrag_moves = 0;

  double acceptance_ratio() const {
    return offered ? static_cast<double>(accepted) /
                         static_cast<double>(offered)
                   : 0.0;
  }
};

/// Runs the workload against a fresh TableManager with the given policy.
/// All policies see the identical arrival/departure trace (same seed).
AcceptanceResult run_acceptance_experiment(FillPolicy policy, bool defrag,
                                           const AcceptanceWorkload& workload);

}  // namespace ibarb::arbtable
