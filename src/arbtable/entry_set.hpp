// The entry-set algebra of the paper (§3.3).
//
// For a 64-entry table T = t_0..t_63 and a distance d = 2^i, the set
//   E_{i,j} = { t_{j + n·2^i} : n = 0 .. 64/2^i - 1 },  0 <= j < d
// contains the equally spaced entries able to serve a request of maximum
// distance d starting at offset j. A set is *free* when all its entries are
// free (weight 0).
//
// Buddy-space view (used by the defragmenter and by the correctness proofs
// in tests): mapping each position p to q = rev_6(p) sends E_{i,j} to the
// aligned contiguous block [rev_i(j)·2^{6-i}, (rev_i(j)+1)·2^{6-i}) — so the
// paper's bit-reversal scan is exactly a left-to-right first-fit over
// aligned power-of-two blocks, i.e. a binary buddy allocator.
#pragma once

#include <cstdint>
#include <vector>

#include "arbtable/bit_reversal.hpp"
#include "iba/types.hpp"
#include "iba/vl_arbitration.hpp"

namespace ibarb::arbtable {

/// Distances the paper admits in practice (distance 1 — every entry — is
/// considered "too strict to be practical" and excluded from the SL
/// catalogue, though the algebra supports it).
inline constexpr unsigned kMinPracticalDistance = 2;
inline constexpr unsigned kMaxDistance = iba::kArbTableEntries;

/// Identifies one E_{i,j}: distance = 2^i, offset = j.
struct EntrySet {
  unsigned distance = kMaxDistance;  ///< Power of two in [1, 64].
  unsigned offset = 0;               ///< In [0, distance).

  bool valid() const noexcept {
    return is_pow2(distance) && distance <= kMaxDistance && offset < distance;
  }

  unsigned size() const noexcept { return iba::kArbTableEntries / distance; }

  /// The table positions j, j+d, j+2d, ...
  std::vector<std::uint8_t> positions() const;

  /// Buddy-space address of the block this set maps to (see header comment).
  unsigned buddy_block_index() const noexcept {
    return reverse_bits(offset, log2_pow2(distance));
  }

  /// Inverse of buddy_block_index for a given distance.
  static EntrySet from_buddy_block(unsigned distance, unsigned block) noexcept {
    return EntrySet{distance,
                    reverse_bits(block, log2_pow2(distance))};
  }

  friend bool operator==(const EntrySet&, const EntrySet&) = default;
};

/// True when every entry of the set is free (weight 0) in `table`.
bool set_is_free(const iba::ArbTable& table, const EntrySet& set);

/// Number of free (weight 0) entries in the whole table.
unsigned free_entries(const iba::ArbTable& table);

/// Largest gap, in table slots, between consecutive *active* entries of one
/// VL in cyclic order — this is the quantity a latency guarantee bounds.
/// Returns kArbTableEntries when the VL has at most one active entry (a
/// single entry still recurs every 64 slots).
unsigned max_gap_for_vl(const iba::ArbTable& table, iba::VirtualLane vl);

}  // namespace ibarb::arbtable
