// RecoveryCoordinator: the control-plane reaction to injected faults.
//
// Subscribes to the FaultInjector's link-state transitions (the modeled
// trap). After a configurable reaction delay it drives the recovery chain:
//
//   1. SubnetManager::resweep over the degraded topology — directed-route
//      SMP discovery, fresh up*/down* routes, LFT reprogramming;
//   2. every tracked connection whose reservation path no longer matches
//      the new routes is released and re-admitted over them — through the
//      bit-reversal fill, so Theorem-1 invariants hold through the churn;
//   3. guaranteed (DBTS/DB) re-admissions use graceful degradation: they
//      may shed best-effort connections, and are suspended only when no
//      path or capacity exists at any price (counted; shedding a guaranteed
//      class while sheddable capacity remains would be a guarantee
//      revocation, and the bench asserts it never happens);
//   4. on repair, suspended and shed connections are re-admitted.
//
// Everything runs through Simulator::call_at, so recovery is part of the
// same deterministic event order as the faults and the traffic.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "faults/fault_injector.hpp"
#include "network/graph.hpp"
#include "qos/admission.hpp"
#include "sim/simulator.hpp"
#include "subnet/subnet_manager.hpp"

namespace ibarb::faults {

/// Flow sentinel for tracked connections that have no simulated packet flow
/// (the churn service admits reservations without driving traffic). All
/// sim flow operations are skipped for such connections.
inline constexpr std::uint32_t kNoFlow = 0xffffffffu;

struct RecoveryConfig {
  /// Trap propagation + SM scheduling latency before the re-sweep starts.
  iba::Cycle sm_reaction_delay = 20'000;
  /// Modeled per-SMP cost added to the recovery-latency metric (the
  /// discovery MADs are executed functionally, not on the simulated wire).
  iba::Cycle mad_cycles = 16;
};

struct RecoveryStats {
  std::uint64_t resweeps = 0;
  std::uint64_t failed_resweeps = 0;  ///< Partitioned or unroutable.
  std::uint64_t smps_sent = 0;
  std::uint64_t rerouted = 0;         ///< Released + re-admitted connections.
  std::uint64_t suspended = 0;        ///< Stopped: no path or no capacity.
  std::uint64_t suspended_guaranteed = 0;   ///< ... of which DBTS/DB.
  std::uint64_t suspended_best_effort = 0;  ///< ... of which sheddable BE.
  std::uint64_t restored = 0;         ///< Resumed after repair.
  std::uint64_t shed_best_effort = 0; ///< BE victims of degradation.
  /// In-flight packets abandoned on rerouted connections' old paths (their
  /// VL weight left with the reservation; queued packets would starve).
  std::uint64_t purged_in_flight = 0;
  /// Guaranteed connections refused while sheddable best-effort capacity
  /// remained on their path. The degradation policy makes this impossible;
  /// the fault benches assert it stays zero.
  std::uint64_t guarantee_revocations = 0;
  iba::Cycle last_recovery_latency = 0;
  iba::Cycle max_recovery_latency = 0;
};

class RecoveryCoordinator {
 public:
  /// Registers a telemetry probe publishing "recovery.*" counters into the
  /// simulator's registry; the destructor removes it.
  RecoveryCoordinator(sim::Simulator& sim, const network::FabricGraph& graph,
                      subnet::SubnetManager& sm,
                      qos::AdmissionControl& admission,
                      FaultInjector& injector, RecoveryConfig cfg);
  ~RecoveryCoordinator();

  RecoveryCoordinator(const RecoveryCoordinator&) = delete;
  RecoveryCoordinator& operator=(const RecoveryCoordinator&) = delete;

  /// Registers an admitted guaranteed (DBTS/DB) connection and its flow
  /// (kNoFlow for flowless churn-service connections).
  void track(qos::ConnectionId id, std::uint32_t flow);
  /// Registers an admitted best-effort connection (sheddable).
  void track_best_effort(qos::ConnectionId id, std::uint32_t flow);
  /// Stops tracking a connection (e.g. torn down by the churn engine, or
  /// shed by the engine's own degradation and forgotten). Order of the
  /// remaining entries — which fixes repair processing order — is preserved.
  /// Unknown ids are ignored.
  void untrack(qos::ConnectionId id);

  /// Observer for connection-id changes the coordinator makes on its own:
  /// readmission maps old_id -> new_id; suspension and shedding map
  /// old_id -> 0. The churn engine uses this to keep its target set honest.
  using ChangeListener =
      std::function<void(qos::ConnectionId old_id, qos::ConnectionId new_id)>;
  void set_change_listener(ChangeListener listener) {
    change_listener_ = std::move(listener);
  }

  const RecoveryStats& stats() const noexcept { return stats_; }

  /// Tracked connections currently suspended (no path/capacity).
  unsigned suspended_now() const;

  /// No repair scheduled and no port currently reported unhealthy: the
  /// coordinator holds no pending work a snapshot would have to capture.
  bool quiescent() const noexcept {
    return !repair_pending_ && avoid_.empty();
  }

  /// Snapshot support: the tracked set in its exact vector order (the order
  /// decides repair processing, so a restored world must reproduce it).
  struct TrackedState {
    qos::ConnectionId id = 0;
    std::uint32_t flow = kNoFlow;
    bool guaranteed = false;
    bool active = true;
    qos::ConnectionRequest request;
  };
  std::vector<TrackedState> export_tracked() const;
  /// Replaces the tracked set. Only valid while quiescent().
  void import_tracked(const std::vector<TrackedState>& tracked);
  void restore_stats(const RecoveryStats& stats) noexcept { stats_ = stats; }

 private:
  struct Tracked {
    qos::ConnectionId id = 0;
    std::uint32_t flow = kNoFlow;
    bool guaranteed = false;
    bool active = true;
    qos::ConnectionRequest request;
  };

  void on_link_state(iba::NodeId node, iba::PortIndex port, bool healthy,
                     iba::Cycle now);
  void repair(iba::Cycle fault_time);
  bool path_matches_routes(const Tracked& t) const;
  bool path_touches_blocked(const Tracked& t);
  bool readmit(Tracked& t, bool count_as_restore);
  void suspend(Tracked& t, bool routes_ok);
  void audit();

  sim::Simulator& sim_;
  const network::FabricGraph& graph_;
  subnet::SubnetManager& sm_;
  qos::AdmissionControl& admission_;
  FaultInjector& injector_;
  RecoveryConfig cfg_;

  std::vector<Tracked> tracked_;
  ChangeListener change_listener_;
  std::vector<network::PortRef> avoid_;  ///< Ports reported unhealthy.
  bool repair_pending_ = false;
  iba::Cycle first_trap_ = 0;
  RecoveryStats stats_;
  obs::TelemetryRegistry::ProbeId probe_ = 0;
};

}  // namespace ibarb::faults
