// RecoveryCoordinator: the control-plane reaction to injected faults.
//
// Subscribes to the FaultInjector's link-state transitions (the modeled
// trap). After a configurable reaction delay it drives the recovery chain:
//
//   1. SubnetManager::resweep over the degraded topology — directed-route
//      SMP discovery, fresh up*/down* routes, LFT reprogramming;
//   2. every tracked connection whose reservation path no longer matches
//      the new routes is released and re-admitted over them — through the
//      bit-reversal fill, so Theorem-1 invariants hold through the churn;
//   3. guaranteed (DBTS/DB) re-admissions use graceful degradation: they
//      may shed best-effort connections, and are suspended only when no
//      path or capacity exists at any price (counted; shedding a guaranteed
//      class while sheddable capacity remains would be a guarantee
//      revocation, and the bench asserts it never happens);
//   4. on repair, suspended and shed connections are re-admitted.
//
// Everything runs through Simulator::call_at, so recovery is part of the
// same deterministic event order as the faults and the traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "faults/fault_injector.hpp"
#include "network/graph.hpp"
#include "qos/admission.hpp"
#include "sim/simulator.hpp"
#include "subnet/subnet_manager.hpp"

namespace ibarb::faults {

struct RecoveryConfig {
  /// Trap propagation + SM scheduling latency before the re-sweep starts.
  iba::Cycle sm_reaction_delay = 20'000;
  /// Modeled per-SMP cost added to the recovery-latency metric (the
  /// discovery MADs are executed functionally, not on the simulated wire).
  iba::Cycle mad_cycles = 16;
};

struct RecoveryStats {
  std::uint64_t resweeps = 0;
  std::uint64_t failed_resweeps = 0;  ///< Partitioned or unroutable.
  std::uint64_t smps_sent = 0;
  std::uint64_t rerouted = 0;         ///< Released + re-admitted connections.
  std::uint64_t suspended = 0;        ///< Stopped: no path or no capacity.
  std::uint64_t suspended_guaranteed = 0;   ///< ... of which DBTS/DB.
  std::uint64_t suspended_best_effort = 0;  ///< ... of which sheddable BE.
  std::uint64_t restored = 0;         ///< Resumed after repair.
  std::uint64_t shed_best_effort = 0; ///< BE victims of degradation.
  /// In-flight packets abandoned on rerouted connections' old paths (their
  /// VL weight left with the reservation; queued packets would starve).
  std::uint64_t purged_in_flight = 0;
  /// Guaranteed connections refused while sheddable best-effort capacity
  /// remained on their path. The degradation policy makes this impossible;
  /// the fault benches assert it stays zero.
  std::uint64_t guarantee_revocations = 0;
  iba::Cycle last_recovery_latency = 0;
  iba::Cycle max_recovery_latency = 0;
};

class RecoveryCoordinator {
 public:
  /// Registers a telemetry probe publishing "recovery.*" counters into the
  /// simulator's registry; the destructor removes it.
  RecoveryCoordinator(sim::Simulator& sim, const network::FabricGraph& graph,
                      subnet::SubnetManager& sm,
                      qos::AdmissionControl& admission,
                      FaultInjector& injector, RecoveryConfig cfg);
  ~RecoveryCoordinator();

  RecoveryCoordinator(const RecoveryCoordinator&) = delete;
  RecoveryCoordinator& operator=(const RecoveryCoordinator&) = delete;

  /// Registers an admitted guaranteed (DBTS/DB) connection and its flow.
  void track(qos::ConnectionId id, std::uint32_t flow);
  /// Registers an admitted best-effort connection (sheddable).
  void track_best_effort(qos::ConnectionId id, std::uint32_t flow);

  const RecoveryStats& stats() const noexcept { return stats_; }

  /// Tracked connections currently suspended (no path/capacity).
  unsigned suspended_now() const;

 private:
  struct Tracked {
    qos::ConnectionId id = 0;
    std::uint32_t flow = 0;
    bool guaranteed = false;
    bool active = true;
    qos::ConnectionRequest request;
  };

  void on_link_state(iba::NodeId node, iba::PortIndex port, bool healthy,
                     iba::Cycle now);
  void repair(iba::Cycle fault_time);
  bool path_matches_routes(const Tracked& t) const;
  bool path_touches_blocked(const Tracked& t);
  bool readmit(Tracked& t, bool count_as_restore);
  void suspend(Tracked& t, bool routes_ok);
  void audit();

  sim::Simulator& sim_;
  const network::FabricGraph& graph_;
  subnet::SubnetManager& sm_;
  qos::AdmissionControl& admission_;
  FaultInjector& injector_;
  RecoveryConfig cfg_;

  std::vector<Tracked> tracked_;
  std::vector<network::PortRef> avoid_;  ///< Ports reported unhealthy.
  bool repair_pending_ = false;
  iba::Cycle first_trap_ = 0;
  RecoveryStats stats_;
  obs::TelemetryRegistry::ProbeId probe_ = 0;
};

}  // namespace ibarb::faults
