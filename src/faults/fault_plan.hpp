// Fault plans: a deterministic, seedable schedule of hardware faults.
//
// A FaultPlan is pure data — a time-sorted list of FaultEvents — parsed
// from a compact CLI spec or synthesized as a "random storm" from a seed.
// The FaultInjector arms the plan on the simulator's EventQueue, so replay
// is bit-identical for a given (plan, seed) regardless of wall-clock, job
// count, or host. docs/FAULTS.md documents the spec grammar.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "iba/types.hpp"
#include "network/graph.hpp"

namespace ibarb::faults {

enum class FaultKind : std::uint8_t {
  kLinkFlap,  ///< Link at (node, port) down at `at`, up after `duration`.
  kCorrupt,   ///< Packets received at (node, port) are corrupted on the wire
              ///< with `probability`; the CRC check decides their fate.
  kDrop,      ///< Packets received at (node, port) vanish with `probability`.
  kStuck,     ///< (node, port) stops transmitting for the window.
  kSlow,      ///< (node, port) serializes `factor` times slower.
  kOverload,  ///< Flow `flow` sends at `factor` times its nominal rate —
              ///< the paper's "misbehaving source".
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kLinkFlap;
  iba::Cycle at = 0;
  iba::Cycle duration = 0;  ///< 0 = permanent (never repairs).
  iba::NodeId node = iba::kInvalidNode;
  iba::PortIndex port = 0;
  std::uint32_t flow = 0;     ///< kOverload: simulator flow index.
  double probability = 1.0;   ///< kCorrupt / kDrop per-packet chance.
  double factor = 1.0;        ///< kSlow slowdown / kOverload rate multiple.
};

/// Shape of a synthesized fault storm (see FaultPlan::random_storm).
struct StormConfig {
  std::uint64_t seed = 1;
  iba::Cycle start = 0;
  iba::Cycle length = 1'000'000;
  /// Route-around faults (flap/stuck/slow) are laid out in disjoint time
  /// slots so the fabric never loses two links at once and each repair
  /// completes before the next fault hits.
  unsigned link_flaps = 2;
  unsigned stuck_ports = 1;
  unsigned slow_ports = 1;
  unsigned corrupt_windows = 2;
  unsigned drop_windows = 1;
  unsigned overload_bursts = 2;
  double corrupt_probability = 0.05;
  double drop_probability = 0.02;
  double slow_factor = 4.0;
  double overload_factor = 8.0;
  /// kOverload targets are drawn from flows [first_flow, first_flow+flows).
  /// With flows == 0 no overload events are generated.
  std::uint32_t first_flow = 0;
  std::uint32_t flows = 0;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  /// Stable-sorts the events by activation time.
  explicit FaultPlan(std::vector<FaultEvent> events);

  const std::vector<FaultEvent>& events() const noexcept { return events_; }
  bool empty() const noexcept { return events_.empty(); }

  /// Merges another plan's events into this one (re-sorts).
  void merge(const FaultPlan& other);

  /// Parses the compact spec grammar, e.g.
  ///   "linkflap@1000000+500000:3.2;corrupt@2000000+100000:5.1:0.02"
  /// Event:   kind '@' at ['+' duration] ':' target [':' value]
  /// Target:  node '.' port   (port faults)  |  'f' flow  (overload)
  /// Value:   probability (corrupt/drop) or factor (slow/overload).
  /// Separators: ';' or ','. Throws std::invalid_argument on bad input.
  static FaultPlan parse(std::string_view spec);

  /// The plan re-serialized in the parse() grammar (reproduction recipes).
  std::string describe() const;

  /// Deterministic storm over the fabric: targets only switch-switch links
  /// for route-around faults (hosts are single-homed, so downing a host
  /// uplink just partitions that host).
  static FaultPlan random_storm(const network::FabricGraph& graph,
                                const StormConfig& cfg);

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace ibarb::faults
