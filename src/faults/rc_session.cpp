#include "faults/rc_session.hpp"

#include <algorithm>
#include <stdexcept>

namespace ibarb::faults {

namespace {

sim::FlowSpec make_rc_flow(iba::NodeId src, iba::NodeId dst,
                           iba::ServiceLevel sl, std::uint32_t payload,
                           iba::Cycle interval, std::uint64_t seed) {
  sim::FlowSpec spec;
  spec.src_host = src;
  spec.dst_host = dst;
  spec.sl = sl;
  spec.payload_bytes = payload;
  spec.interval = interval;
  spec.kind = sim::GeneratorKind::kCbr;
  spec.qos = false;        // RC sessions ride a best-effort class
  spec.external = true;    // packets come only from inject_external
  spec.seed = seed;
  return spec;
}

}  // namespace

RcSession::RcSession(sim::Simulator& sim, Config cfg)
    : sim_(sim), cfg_(cfg), tx_(cfg.rc),
      rx_(/*initial_psn=*/0) {
  if (cfg_.messages == 0) throw std::invalid_argument("empty RC session");
  data_flow_ = sim_.add_flow(make_rc_flow(cfg_.src_host, cfg_.dst_host,
                                          cfg_.sl, cfg_.rc.mtu_payload,
                                          cfg_.message_interval, cfg_.seed));
  ack_flow_ = sim_.add_flow(make_rc_flow(cfg_.dst_host, cfg_.src_host,
                                         cfg_.sl, /*payload=*/0,
                                         cfg_.message_interval,
                                         cfg_.seed ^ 0xACull));
  sim_.call_at(cfg_.start, [this] { tick(); });
  probe_ = sim_.telemetry().add_probe([this](obs::Snapshot& snap) {
    const transport::RcSender::Stats& tx = tx_.stats();
    const transport::RcReceiver::Stats& rx = rx_.stats();
    snap.add_counter("rc.packets_sent", tx.packets_sent);
    snap.add_counter("rc.retransmitted_packets", tx.retransmitted_packets);
    snap.add_counter("rc.timeouts", tx.timeouts);
    snap.add_counter("rc.naks", tx.naks);
    snap.add_counter("rc.messages_completed", messages_completed_);
    snap.add_counter("rc.delivered_packets", rx.delivered_packets);
    snap.add_counter("rc.delivered_bytes", rx.delivered_bytes);
    snap.add_counter("rc.duplicates", rx.duplicates);
    snap.add_counter("rc.out_of_order", rx.out_of_order);
    snap.add_counter("rc.recovered_packets", recovered_packets_);
    snap.merge_gauge("rc.max_recovery_latency",
                     static_cast<double>(max_recovery_latency_),
                     obs::MergePolicy::kMax);
  });
}

RcSession::~RcSession() { sim_.telemetry().remove_probe(probe_); }

void RcSession::tick() {
  const iba::Cycle now = sim_.now();
  while (posted_ < cfg_.messages &&
         now >= cfg_.start + static_cast<iba::Cycle>(posted_) *
                                 cfg_.message_interval) {
    tx_.post_send(cfg_.message_bytes);
    ++posted_;
  }
  tx_.on_timer(now);
  pump();
  if (failed() || (complete() && tx_.idle())) return;  // stop ticking
  sim_.call_at(now + cfg_.tick, [this] { tick(); });
}

void RcSession::pump() {
  while (const auto p = tx_.next_packet(sim_.now())) {
    if (p->retransmission) {
      retransmitted_.insert(p->psn);
    } else {
      first_injected_.emplace(p->psn, sim_.now());
    }
    sim_.inject_external(data_flow_, p->payload_bytes, p->psn,
                         /*rc_op=*/1, p->last);
  }
}

void RcSession::on_delivery(const iba::Packet& p, iba::Cycle now) {
  if (p.connection == data_flow_) {
    // Data landed at the destination: run the receiver and send its verdict
    // back over the ack flow.
    const auto act = rx_.on_packet(p.sequence, p.payload_bytes, p.rc_last);
    if (act.deliver && retransmitted_.count(p.sequence) != 0) {
      ++recovered_packets_;
      const auto it = first_injected_.find(p.sequence);
      if (it != first_injected_.end())
        max_recovery_latency_ =
            std::max(max_recovery_latency_, now - it->second);
    }
    if (act.send_ack)
      sim_.inject_external(ack_flow_, 0, act.ack_psn, /*rc_op=*/2, false);
    if (act.send_nak)
      sim_.inject_external(ack_flow_, 0, act.nak_psn, /*rc_op=*/3, false);
    return;
  }
  if (p.connection != ack_flow_) return;
  if (p.rc_op == 2)
    tx_.on_ack(p.sequence, now);
  else if (p.rc_op == 3)
    tx_.on_nak(p.sequence, now);
  messages_completed_ += tx_.drain_completions().size();
  pump();  // the window may have opened
}

RcSession::SessionStats RcSession::session_stats() const {
  SessionStats s;
  s.messages_completed = messages_completed_;
  s.recovered_packets = recovered_packets_;
  s.max_recovery_latency = max_recovery_latency_;
  return s;
}

}  // namespace ibarb::faults
