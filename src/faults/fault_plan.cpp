#include "faults/fault_plan.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace ibarb::faults {

namespace {

/// Every token handed around during parsing is a substring view of the
/// original spec, so pointer arithmetic recovers the exact character offset
/// of the offending token — the error names both.
[[noreturn]] void bad_spec(std::string_view spec, std::string_view token,
                           const char* why) {
  std::string msg = "bad fault spec: ";
  msg += why;
  if (token.data() >= spec.data() &&
      token.data() <= spec.data() + spec.size()) {
    msg += " at offset ";
    msg += std::to_string(token.data() - spec.data());
  }
  msg += ": '";
  msg += token;
  msg += "' (in '";
  msg += spec;
  msg += "')";
  throw std::invalid_argument(msg);
}

std::uint64_t parse_u64(std::string_view s, std::string_view spec) {
  std::uint64_t v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size())
    bad_spec(spec, s, "expected an unsigned integer");
  return v;
}

double parse_double(std::string_view s, std::string_view spec) {
  // std::from_chars for doubles is missing on some libstdc++ versions the
  // CI matrix uses; stod on a bounded copy is fine off the hot path.
  try {
    std::size_t used = 0;
    const double v = std::stod(std::string(s), &used);
    if (used != s.size())
      bad_spec(spec, s, "trailing characters in number");
    return v;
  } catch (const std::invalid_argument&) {
    bad_spec(spec, s, "expected a number");
  } catch (const std::out_of_range&) {
    bad_spec(spec, s, "number out of range");
  }
}

FaultKind kind_from(std::string_view name, std::string_view spec) {
  if (name == "linkflap") return FaultKind::kLinkFlap;
  if (name == "corrupt") return FaultKind::kCorrupt;
  if (name == "drop") return FaultKind::kDrop;
  if (name == "stuck") return FaultKind::kStuck;
  if (name == "slow") return FaultKind::kSlow;
  if (name == "overload") return FaultKind::kOverload;
  bad_spec(spec, name, "unknown fault kind");
}

bool has_value_field(FaultKind kind) {
  return kind == FaultKind::kCorrupt || kind == FaultKind::kDrop ||
         kind == FaultKind::kSlow || kind == FaultKind::kOverload;
}

FaultEvent parse_event(std::string_view item, std::string_view spec) {
  FaultEvent ev;
  const auto at_pos = item.find('@');
  if (at_pos == std::string_view::npos) bad_spec(spec, item, "missing '@'");
  ev.kind = kind_from(item.substr(0, at_pos), spec);
  item.remove_prefix(at_pos + 1);

  // at[+duration]
  auto colon = item.find(':');
  if (colon == std::string_view::npos) bad_spec(spec, item, "missing target");
  auto when = item.substr(0, colon);
  item.remove_prefix(colon + 1);
  if (const auto plus = when.find('+'); plus != std::string_view::npos) {
    ev.duration = parse_u64(when.substr(plus + 1), spec);
    when = when.substr(0, plus);
  }
  ev.at = parse_u64(when, spec);

  // target [':' value]
  auto target = item;
  colon = item.find(':');
  std::string_view value;
  if (colon != std::string_view::npos) {
    target = item.substr(0, colon);
    value = item.substr(colon + 1);
  }
  if (ev.kind == FaultKind::kOverload) {
    if (target.empty() || target.front() != 'f')
      bad_spec(spec, target, "overload target must be fN");
    ev.flow = static_cast<std::uint32_t>(parse_u64(target.substr(1), spec));
  } else {
    const auto dot = target.find('.');
    if (dot == std::string_view::npos)
      bad_spec(spec, target, "port target must be node.port");
    ev.node = static_cast<iba::NodeId>(
        parse_u64(target.substr(0, dot), spec));
    ev.port = static_cast<iba::PortIndex>(
        parse_u64(target.substr(dot + 1), spec));
  }
  if (has_value_field(ev.kind)) {
    if (value.empty())
      bad_spec(spec, target, "missing probability/factor value");
    const double v = parse_double(value, spec);
    if (ev.kind == FaultKind::kCorrupt || ev.kind == FaultKind::kDrop) {
      if (v < 0.0 || v > 1.0)
        bad_spec(spec, value, "probability outside [0, 1]");
      ev.probability = v;
    } else {
      if (v <= 0.0) bad_spec(spec, value, "factor must be positive");
      ev.factor = v;
    }
  } else if (!value.empty()) {
    bad_spec(spec, value, "unexpected value field");
  }
  return ev;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkFlap: return "linkflap";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kStuck: return "stuck";
    case FaultKind::kSlow: return "slow";
    case FaultKind::kOverload: return "overload";
  }
  return "?";
}

FaultPlan::FaultPlan(std::vector<FaultEvent> events)
    : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
}

void FaultPlan::merge(const FaultPlan& other) {
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
}

FaultPlan FaultPlan::parse(std::string_view spec) {
  std::vector<FaultEvent> events;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const auto sep = rest.find_first_of(";,");
    const auto item = rest.substr(0, sep);
    rest = sep == std::string_view::npos ? std::string_view{}
                                         : rest.substr(sep + 1);
    if (item.empty()) continue;
    events.push_back(parse_event(item, spec));
  }
  return FaultPlan(std::move(events));
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& ev : events_) {
    if (!first) os << ';';
    first = false;
    os << to_string(ev.kind) << '@' << ev.at;
    if (ev.duration > 0) os << '+' << ev.duration;
    if (ev.kind == FaultKind::kOverload) {
      os << ":f" << ev.flow;
    } else {
      os << ':' << ev.node << '.' << unsigned(ev.port);
    }
    if (ev.kind == FaultKind::kCorrupt || ev.kind == FaultKind::kDrop) {
      os << ':' << ev.probability;
    } else if (ev.kind == FaultKind::kSlow ||
               ev.kind == FaultKind::kOverload) {
      os << ':' << ev.factor;
    }
  }
  return os.str();
}

FaultPlan FaultPlan::random_storm(const network::FabricGraph& graph,
                                  const StormConfig& cfg) {
  util::Xoshiro256 rng(cfg.seed ^ 0xfa171u);
  std::vector<FaultEvent> events;

  // Candidate targets: switch-side ports of switch-switch links (canonical
  // end only, so a link appears once) for route-around faults; any such
  // port (either end) for corruption/drop windows.
  std::vector<network::PortRef> trunk_ports;
  for (const auto sw : graph.switches()) {
    for (unsigned p = 0; p < graph.port_count(sw); ++p) {
      const auto peer = graph.peer(sw, static_cast<iba::PortIndex>(p));
      if (!peer || !graph.is_switch(peer->node)) continue;
      if (peer->node < sw || (peer->node == sw && peer->port < p)) continue;
      trunk_ports.push_back({sw, static_cast<iba::PortIndex>(p)});
    }
  }
  if (trunk_ports.empty()) return FaultPlan(std::move(events));

  // Route-around faults get disjoint slots of the storm window: at most one
  // degraded link at any time, with the last quarter of each slot left
  // fault-free so recovery (re-sweep + re-admission) completes in-slot.
  const unsigned route_around =
      cfg.link_flaps + cfg.stuck_ports + cfg.slow_ports;
  const iba::Cycle slot =
      route_around > 0 ? cfg.length / route_around : cfg.length;
  unsigned slot_index = 0;
  const auto slotted = [&](FaultKind kind, double factor) {
    FaultEvent ev;
    ev.kind = kind;
    const iba::Cycle slot_start = cfg.start + slot_index * slot;
    ++slot_index;
    const iba::Cycle margin = slot / 8;
    ev.at = slot_start + margin + rng.below(std::max<iba::Cycle>(1, slot / 8));
    ev.duration =
        std::max<iba::Cycle>(1, slot / 4 + rng.below(std::max<iba::Cycle>(
                                               1, slot / 4)));
    const auto& target = trunk_ports[rng.below(trunk_ports.size())];
    ev.node = target.node;
    ev.port = target.port;
    ev.factor = factor;
    events.push_back(ev);
  };
  for (unsigned i = 0; i < cfg.link_flaps; ++i)
    slotted(FaultKind::kLinkFlap, 1.0);
  for (unsigned i = 0; i < cfg.stuck_ports; ++i)
    slotted(FaultKind::kStuck, 1.0);
  for (unsigned i = 0; i < cfg.slow_ports; ++i)
    slotted(FaultKind::kSlow, cfg.slow_factor);

  const auto windowed = [&](FaultKind kind, double probability) {
    FaultEvent ev;
    ev.kind = kind;
    ev.at = cfg.start + rng.below(std::max<iba::Cycle>(1, cfg.length / 2));
    ev.duration = std::max<iba::Cycle>(
        1, cfg.length / 8 + rng.below(std::max<iba::Cycle>(1, cfg.length / 8)));
    const auto& anchor = trunk_ports[rng.below(trunk_ports.size())];
    // Either end of the chosen trunk link may be the sick receiver.
    if (rng.chance(0.5)) {
      ev.node = anchor.node;
      ev.port = anchor.port;
    } else {
      const auto peer = graph.peer(anchor.node, anchor.port);
      ev.node = peer->node;
      ev.port = peer->port;
    }
    ev.probability = probability;
    events.push_back(ev);
  };
  for (unsigned i = 0; i < cfg.corrupt_windows; ++i)
    windowed(FaultKind::kCorrupt, cfg.corrupt_probability);
  for (unsigned i = 0; i < cfg.drop_windows; ++i)
    windowed(FaultKind::kDrop, cfg.drop_probability);

  if (cfg.flows > 0) {
    for (unsigned i = 0; i < cfg.overload_bursts; ++i) {
      FaultEvent ev;
      ev.kind = FaultKind::kOverload;
      ev.at = cfg.start + rng.below(std::max<iba::Cycle>(1, cfg.length / 2));
      ev.duration = std::max<iba::Cycle>(
          1, cfg.length / 6 +
                 rng.below(std::max<iba::Cycle>(1, cfg.length / 6)));
      ev.flow = cfg.first_flow +
                static_cast<std::uint32_t>(rng.below(cfg.flows));
      ev.factor = cfg.overload_factor;
      events.push_back(ev);
    }
  }
  return FaultPlan(std::move(events));
}

}  // namespace ibarb::faults
